// Collaborative campus surveillance (paper §IV, Fig. 5 scenario).
//
// Eight cameras ring a campus quad. The example walks through:
//   1. brokering — Eugene discovers which cameras overlap purely from the
//      correlation of their detection-count streams;
//   2. collaborative inferencing — cameras share remapped bounding boxes,
//      raising counting accuracy and slashing per-frame latency;
//   3. resilience — one camera goes rogue; trust scores isolate it.
//
// Build & run:  ./build/examples/collaborative_campus
#include <cstdio>

#include "collab/experiment.hpp"

using namespace eugene;

int main() {
  collab::CollabExperimentConfig campus;
  campus.world.num_people = 12;
  campus.cameras = collab::ring_of_cameras(campus.world, 8, 1.2, 85.0);
  for (auto& cam : campus.cameras) {
    cam.detect_base = 0.99;
    cam.detect_range_penalty = 0.45;
    cam.occlusion_miss = 0.4;
    cam.false_positives_per_frame = 0.25;
  }
  campus.num_frames = 250;
  campus.seed = 21;

  // -- 1. brokering -----------------------------------------------------------
  std::printf("[1] collaboration brokering\n");
  const auto corr = collab::count_correlation_matrix(campus);
  const auto pairs = collab::discover_collaborators(corr, 0.25);
  std::printf("discovered %zu collaborator pairs from count correlations:", pairs.size());
  for (const auto& [a, b] : pairs) std::printf(" (C%zu,C%zu)", a, b);
  std::printf("\n\n");

  // -- 2. collaborative inferencing -------------------------------------------
  std::printf("[2] individual vs collaborative pipelines\n");
  const collab::CollabMetrics solo = collab::run_individual(campus);
  const collab::CollabMetrics together = collab::run_collaborative(campus);
  std::printf("individual:    accuracy %.1f%%, latency %.0f ms/frame, recall %.2f\n",
              100.0 * solo.detection_accuracy, solo.mean_latency_ms, solo.recall);
  std::printf("collaborative: accuracy %.1f%%, latency %.0f ms/frame, recall %.2f\n\n",
              100.0 * together.detection_accuracy, together.mean_latency_ms,
              together.recall);

  // -- 3. resilience -----------------------------------------------------------
  std::printf("[3] rogue camera & trust-based resilience\n");
  campus.rogue = collab::RogueConfig{3, 4.0};
  campus.trust_enabled = false;
  const collab::CollabMetrics attacked = collab::run_collaborative(campus);
  campus.trust_enabled = true;
  const collab::CollabMetrics defended = collab::run_collaborative(campus);
  std::printf("camera C3 injects 4 fake boxes/frame:\n");
  std::printf("  without trust:  accuracy %.1f%% (precision %.2f)\n",
              100.0 * attacked.detection_accuracy, attacked.precision);
  std::printf("  with trust:     accuracy %.1f%% (precision %.2f)\n",
              100.0 * defended.detection_accuracy, defended.precision);
  std::printf("Eugene noticed that C3's boxes keep failing local verification and\n"
              "down-weighted them before fusion (paper §IV-C resiliency service).\n");
  return 0;
}
