// Smart-camera edge server with service classes (paper §V extension).
//
// Two tenants share one Eugene edge server:
//   * "chatbot"  — interactive, tight deadline, high utility weight;
//   * "camera"   — surveillance stream, loose deadline, normal weight.
// The weighted utility scheduler gives chatbot requests priority for early
// stages while camera requests absorb the remaining capacity.
//
// Build & run:  ./build/examples/smart_camera
// Pass --metrics to also dump the process-wide metrics registry in the
// eugene-metrics v1 format.
#include <cstdio>
#include <cstring>

#include "core/eugene_service.hpp"
#include "data/synthetic_images.hpp"
#include "serving/usage.hpp"

using namespace eugene;

int main(int argc, char** argv) {
  bool dump_metrics = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--metrics") == 0) dump_metrics = true;
  data::SyntheticImageConfig sensor;
  Rng rng(11);
  const data::Dataset train_set = data::generate_images(sensor, 1200, rng);
  const data::Dataset calib_set = data::generate_images(sensor, 400, rng);

  core::EugeneService eugene;
  nn::StagedResNetConfig arch;
  arch.head_hidden = 24;
  nn::StagedTrainConfig tcfg;
  tcfg.epochs = 10;
  const std::size_t model = eugene.train("edge-vision", train_set, arch, tcfg);
  eugene.calibrate(model, calib_set);

  // One batch mixing both tenants' requests.
  serving::ServerConfig server;
  server.classes = {
      {"chatbot", /*deadline_ms=*/40.0, /*utility_weight=*/4.0},
      {"camera", /*deadline_ms=*/500.0, /*utility_weight=*/1.0},
  };
  server.early_exit_confidence = 0.9;

  const data::Dataset traffic = data::generate_images(sensor, 40, rng);
  std::vector<serving::InferenceRequest> requests;
  for (std::size_t i = 0; i < traffic.size(); ++i)
    requests.push_back({traffic.samples[i], i % 2});  // alternate tenants

  const auto responses = eugene.infer_batch(model, requests, server);

  // Per-tenant summary.
  for (std::size_t cls = 0; cls < 2; ++cls) {
    std::size_t count = 0, correct = 0, expired = 0, stages = 0;
    double latency = 0.0;
    for (std::size_t i = 0; i < responses.size(); ++i) {
      if (requests[i].service_class != cls) continue;
      ++count;
      correct += responses[i].label == traffic.labels[i] ? 1 : 0;
      expired += responses[i].expired ? 1 : 0;
      stages += responses[i].stages_run;
      latency += responses[i].latency_ms;
    }
    std::printf("%-8s: %2zu requests, accuracy %5.1f%%, mean stages %.2f, "
                "mean latency %6.2f ms, expired %zu\n",
                server.classes[cls].name.c_str(), count,
                100.0 * correct / count, static_cast<double>(stages) / count,
                latency / count, expired);
  }
  std::printf("\nThe chatbot class gets more scheduler attention (weight 4x) and a\n"
              "40 ms deadline; the camera class tolerates full-depth execution.\n");

  // -- usage metering & pricing (paper §V: "a pricing structure ... informed
  // of the true resource cost imposed by clients of each class") ----------
  const core::StageProfile profile = eugene.profile(model, {3, 16, 16});
  sched::StageCostModel costs;
  costs.stage_ms = profile.stage_ms;
  serving::UsageMeter meter(costs, {"chatbot", "camera"});
  meter.record(requests, responses, 3);
  serving::PricingPolicy pricing{/*per_compute_ms=*/0.02, /*per_request=*/0.05};
  std::printf("\nbilling report (%.2f credits/ms + %.2f credits/request):\n",
              pricing.per_compute_ms, pricing.per_request);
  const std::vector<serving::ClassUsage> usage = meter.usage();
  for (std::size_t cls = 0; cls < usage.size(); ++cls) {
    const serving::ClassUsage& u = usage[cls];
    std::printf("  %-8s: %5.1f compute-ms over %zu stage runs -> %.2f credits\n",
                u.class_name.c_str(), u.compute_ms, u.stages_executed,
                meter.charge(cls, pricing));
  }
  std::printf("  total: %.2f credits\n", meter.total_charge(pricing));

  if (dump_metrics) std::printf("\n%s", eugene.metrics_text().c_str());
  return 0;
}
