// Zero-downtime serving daemon (DESIGN.md §13): the operational shape of a
// long-lived Eugene process.
//
//   1. warm restart — restore() the last committed snapshot (or register a
//      fresh model when the directory is empty);
//   2. serve — client threads push inference batches while a background
//      operator thread takes *live* snapshots and hot-swaps retrained
//      weights, all without pausing traffic (epoch-pinned registry);
//   3. graceful shutdown — SIGTERM flips a flag; the main loop calls
//      begin_drain(), which rejects new work with typed drain responses,
//      waits for in-flight requests, flushes the usage journal, and writes
//      the final snapshot before the process exits 0.
//
// Build & run:  ./build/examples/serving_daemon [state_dir]
// The daemon raises SIGTERM against itself after ~2 s of traffic so the
// example terminates unattended; `kill -TERM <pid>` works identically.
#include <csignal>
#include <cstdio>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "calib/evaluation.hpp"
#include "common/logging.hpp"
#include "core/eugene_service.hpp"
#include "serving/usage.hpp"

using namespace eugene;

namespace {

// SIGTERM handling, the POSIX way: the handler only sets a lock-free flag
// (the only thing that is async-signal-safe here); the serving loop polls it
// and runs the drain sequence in normal thread context.
std::atomic<bool> g_terminate{false};  // NOLINT(*-avoid-non-const-global-variables)

extern "C" void handle_sigterm(int /*signum*/) { g_terminate.store(true); }

nn::StagedResNetConfig daemon_model_config() {
  nn::StagedResNetConfig cfg;
  cfg.in_channels = 2;
  cfg.height = 8;
  cfg.width = 8;
  cfg.num_classes = 4;
  cfg.stage_channels = {3, 4};
  cfg.head_hidden = 8;
  return cfg;
}

// Fabricated confidences stand in for a real calibration set: enough for the
// curve fit the serving path requires.
calib::StagedEvaluation fake_eval() {
  calib::StagedEvaluation eval;
  eval.records.resize(2);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const double base = rng.uniform(0.1, 0.9);
    for (std::size_t s = 0; s < 2; ++s) {
      calib::StageRecord r;
      r.confidence = static_cast<float>(std::min(
          1.0, base + 0.2 * (static_cast<double>(s) + rng.uniform(0.0, 0.1))));
      eval.records[s].push_back(r);
    }
  }
  return eval;
}

std::size_t register_fresh_model(core::EugeneService& service,
                                 const std::string& name) {
  auto entry = std::make_shared<serving::ModelEntry>(
      name, nn::build_staged_resnet(daemon_model_config()));
  entry->curves.fit(fake_eval());
  entry->costs.stage_ms = {1.0, 2.0};
  entry->costs.jitter_fraction = 0.0;
  entry->calibration_alpha = {0.4, 0.6};
  entry->calibrated = true;
  return service.registry().add_entry(std::move(entry));
}

constexpr std::size_t kClients = 3;

}  // namespace

int main(int argc, char** argv) {
  const std::string state_dir = argc > 1 ? argv[1] : "/tmp/eugene_daemon_state";
  set_log_level(LogLevel::Info);
  std::signal(SIGTERM, handle_sigterm);

  // -- 1. warm restart --------------------------------------------------------
  core::EugeneService service;
  const serving::ModelFactory factory = [](const std::string&) {
    return nn::build_staged_resnet(daemon_model_config());
  };
  const std::size_t restored = service.restore(state_dir, factory);
  if (restored > 0)
    std::printf("[daemon] warm restart: %zu model(s) from %s\n", restored,
                state_dir.c_str());
  // One model per client thread: a published entry's inference scratch is
  // thread-owned (DESIGN.md §13), so concurrent clients each serve their
  // own handle. Fill in whatever the snapshot did not provide.
  for (std::size_t c = 0; c < kClients; ++c) {
    const std::string name = "doorbell" + std::to_string(c);
    if (!service.registry().find(name).has_value()) {
      register_fresh_model(service, name);
      std::printf("[daemon] registered fresh model '%s'\n", name.c_str());
    }
  }
  service.lifecycle().set_serving();

  std::filesystem::create_directories(state_dir);
  serving::UsageMeter meter(sched::StageCostModel{{1.0, 2.0}, 0.0}, {"default"});
  meter.open_journal(state_dir + "/usage.journal");

  // -- 2. serve (clients + a live operator) -----------------------------------
  std::atomic<std::size_t> answered{0}, drain_rejected{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&service, &meter, &answered, &drain_rejected, c] {
      const std::size_t handle =
          service.registry().find("doorbell" + std::to_string(c)).value();
      Rng rng(100 + static_cast<std::uint64_t>(c));
      serving::ServerConfig cfg;
      cfg.early_exit_confidence = 0.8;
      for (;;) {
        std::vector<serving::InferenceRequest> batch;
        for (int i = 0; i < 4; ++i)
          batch.push_back({tensor::Tensor::randn({2, 8, 8}, rng), 0});
        const auto responses = service.infer_batch(handle, batch, cfg);
        if (responses.front().draining) {
          // The typed shutdown answer: a load balancer resubmits elsewhere.
          drain_rejected.fetch_add(responses.size());
          return;
        }
        meter.record(batch, responses, 2);
        answered.fetch_add(responses.size());
      }
    });
  }

  std::thread operator_thread([&service, &state_dir] {
    // Live operations under full traffic: snapshot cadence + a hot swap of
    // "retrained" weights. Neither pauses a single request.
    for (int round = 0; !g_terminate.load(); ++round) {
      std::this_thread::sleep_for(std::chrono::milliseconds(300));
      const std::uint64_t epoch = service.snapshot(state_dir);
      nn::StagedResNetConfig retrained = daemon_model_config();
      retrained.seed = static_cast<std::uint64_t>(round + 2);
      service.swap_model(static_cast<std::size_t>(round) % kClients,
                         nn::build_staged_resnet(retrained));
      std::printf("[operator] live snapshot epoch %llu + hot swap, traffic uninterrupted\n",
                  static_cast<unsigned long long>(epoch));
    }
  });

  // Self-terminate so the example runs unattended; a real deployment gets
  // this signal from its init system.
  std::thread timer([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2000));
    std::raise(SIGTERM);
  });

  while (!g_terminate.load()) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  std::printf("[daemon] SIGTERM received — draining\n");

  // -- 3. graceful shutdown ---------------------------------------------------
  // Stop the operator first so the drain's snapshot is the last word on disk.
  operator_thread.join();
  timer.join();
  core::DrainOptions options;
  options.timeout_ms = 10000.0;
  options.snapshot_dir = state_dir;
  options.usage = &meter;
  const core::DrainOutcome outcome = service.begin_drain(options);
  for (auto& t : clients) t.join();

  std::printf("[daemon] drain %s in %.1f ms (%zu in flight at begin, %zu abandoned)\n",
              outcome.report.completed ? "completed" : "timed out",
              outcome.report.duration_ms, outcome.report.inflight_at_begin,
              outcome.report.inflight_abandoned);
  std::printf("[daemon] answered %zu requests, drain-rejected %zu, journal %s, "
              "final snapshot epoch %llu\n",
              answered.load(), drain_rejected.load(),
              outcome.journal_flushed ? "flushed" : "left open",
              static_cast<unsigned long long>(outcome.snapshot_epoch));
  std::printf("[daemon] state: %s — exit 0\n",
              server_state_name(service.lifecycle().state()));
  return outcome.report.completed ? 0 : 1;
}
