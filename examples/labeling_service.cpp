// Automatic data labeling as a service (paper §II-A "Labeling").
//
// A deployment has collected plenty of sensor windows but labeled only a
// handful. Eugene's labeling service (self-training with a disagreement
// discriminator — the SenseGAN stand-in, see DESIGN.md §2) proposes labels
// for the rest, and we measure how much downstream accuracy the pseudo
// labels recover. Runs on the DeepSense-style multichannel time-series
// workload to show Eugene is not image-only.
//
// Build & run:  ./build/examples/labeling_service
#include <cstdio>

#include "data/timeseries.hpp"
#include "labeling/self_training.hpp"

using namespace eugene;

int main() {
  data::TimeSeriesConfig sensors;  // 4 channels × 64 samples, 6 activities
  sensors.noise_stddev = 0.85;     // noisy field deployment
  sensors.difficulty_skew = 1.0;
  Rng rng(29);
  const data::Dataset labeled = data::generate_series(sensors, 24, rng);
  const data::Dataset unlabeled = data::generate_series(sensors, 500, rng);
  const data::Dataset test = data::generate_series(sensors, 300, rng);
  std::printf("labeled: %zu windows, unlabeled: %zu, test: %zu\n", labeled.size(),
              unlabeled.size(), test.size());

  // Classifier architecture used by the labeler and the downstream task: a
  // small MLP over the flattened window.
  const std::size_t input_dim = sensors.channels * sensors.length;
  const auto factory = [input_dim](std::uint64_t variant) {
    Rng r(500 + variant);
    nn::Sequential net;
    net.add(std::make_unique<nn::Flatten>())
        .add(std::make_unique<nn::Dense>(input_dim, 32, r))
        .add(std::make_unique<nn::ReLU>())
        .add(std::make_unique<nn::Dense>(32, 6, r));
    return net;
  };

  labeling::SelfTrainingConfig cfg;
  cfg.rounds = 4;
  cfg.adopt_confidence = 0.95;  // strict: pseudo-label precision over recall
  cfg.require_agreement = true;
  cfg.training.epochs = 12;

  const labeling::BenefitReport report =
      labeling::evaluate_labeling_benefit(factory, labeled, unlabeled, test, cfg);

  std::printf("\nlabeling report: adopted %zu/%zu pseudo-labels over %zu rounds, "
              "pseudo-label accuracy %.1f%%\n",
              report.labeling.adopted_total, unlabeled.size(),
              report.labeling.adopted_per_round.size(),
              100.0 * report.labeling.pseudo_label_accuracy);
  std::printf("\ndownstream test accuracy:\n");
  std::printf("  %zu real labels only:             %.1f%%\n", labeled.size(),
              100.0 * report.labeled_only);
  std::printf("  + Eugene pseudo-labels:          %.1f%%\n", 100.0 * report.self_trained);
  std::printf("  all %zu real labels (upper bnd): %.1f%%\n",
              labeled.size() + unlabeled.size(), 100.0 * report.fully_supervised);
  const double gap = report.fully_supervised - report.labeled_only;
  if (gap > 0.0)
    std::printf("\npseudo-labels recovered %.0f%% of the labeled-data gap\n",
                100.0 * (report.self_trained - report.labeled_only) / gap);
  return 0;
}
