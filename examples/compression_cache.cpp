// The smart-refrigerator caching loop (paper §II-B).
//
// A fridge camera mostly sees two item classes ("beer and pop bottles").
// Eugene watches the traffic, detects the frequent set, retrains a reduced
// model over just those classes + OTHER, and downloads it to the device.
// Uncommon items are cache misses escalated to the full server model. When
// the household's habits drift, the controller rebuilds or drops the cache.
//
// Build & run:  ./build/examples/compression_cache
#include <cstdio>

#include "data/synthetic_images.hpp"
#include "nn/train.hpp"
#include "reduce/cache.hpp"

using namespace eugene;

namespace {

const char* action_name(reduce::CacheController::Action a) {
  switch (a) {
    case reduce::CacheController::Action::Build: return "BUILD";
    case reduce::CacheController::Action::Rebuild: return "REBUILD";
    case reduce::CacheController::Action::Drop: return "DROP";
    default: return "-";
  }
}

}  // namespace

int main() {
  data::SyntheticImageConfig items;  // 10 item classes
  Rng rng(13);

  // Server-side training data and full model.
  const data::Dataset train_set = data::generate_images(items, 800, rng);
  nn::StagedResNetConfig arch;
  arch.seed = 5;
  nn::StagedModel server = nn::build_staged_resnet(arch);
  nn::StagedTrainConfig tcfg;
  tcfg.epochs = 8;
  std::printf("training the full server model...\n");
  nn::StagedTrainer trainer(server, tcfg);
  trainer.fit(train_set.samples, train_set.labels);

  // The device-side controller watches traffic.
  reduce::CacheController::Config ctl_cfg;
  ctl_cfg.coverage = 0.7;
  ctl_cfg.max_cache_classes = 3;
  ctl_cfg.decision_window = 40;
  ctl_cfg.min_hit_rate = 0.4;
  reduce::CacheController controller(10, ctl_cfg);

  std::optional<reduce::CachedInferenceService> cache_service;
  auto build_cache = [&](const std::vector<std::size_t>& classes) {
    std::printf("  -> building device cache for classes {");
    for (std::size_t c : classes) std::printf(" %zu", c);
    std::printf(" }\n");
    reduce::CacheBuildConfig cfg;
    cfg.architecture.in_channels = 3;
    cfg.architecture.height = 16;
    cfg.architecture.width = 16;
    cfg.architecture.conv_channels = {10, 10};
    cfg.training.epochs = 15;
    Rng build_rng(99);
    reduce::CacheModel model =
        reduce::build_cache_model(train_set, classes, cfg, build_rng);
    cache_service.emplace(std::move(model), server, 0.5);
    controller.mark_built();
  };

  // Phase 1: beer (2) and pop (6) dominate; phase 2: habits drift to 4 & 8.
  const std::vector<double> phase1 = {0.02, 0.02, 0.4, 0.02, 0.02,
                                      0.02, 0.4, 0.02, 0.04, 0.04};
  const std::vector<double> phase2 = {0.02, 0.02, 0.04, 0.02, 0.4,
                                      0.02, 0.04, 0.02, 0.4, 0.02};
  for (int phase = 1; phase <= 2; ++phase) {
    std::printf("\nphase %d traffic (%s dominate):\n", phase,
                phase == 1 ? "classes 2 & 6" : "classes 4 & 8");
    const data::Dataset traffic =
        data::generate_images_weighted(items, 400, phase == 1 ? phase1 : phase2, rng);
    std::size_t correct = 0;
    double latency = 0.0;
    for (std::size_t i = 0; i < traffic.size(); ++i) {
      std::optional<bool> hit;
      std::size_t label;
      if (cache_service.has_value()) {
        const reduce::CachedResult r = cache_service->infer(traffic.samples[i]);
        hit = r.cache_hit;
        label = r.label;
        latency += r.latency_ms;
      } else {
        const auto outputs = server.forward_all(traffic.samples[i]);
        label = outputs.back().predicted_label;
        latency += 60.0;  // device->server round trip + server inference
      }
      correct += label == traffic.labels[i] ? 1 : 0;
      const auto action = controller.observe(traffic.labels[i], hit);
      if (action == reduce::CacheController::Action::Build ||
          action == reduce::CacheController::Action::Rebuild) {
        std::printf("  controller @%zu: %s\n", i, action_name(action));
        build_cache(controller.recommended_classes());
      } else if (action == reduce::CacheController::Action::Drop) {
        std::printf("  controller @%zu: DROP (traffic too scattered)\n", i);
        cache_service.reset();
        controller.mark_dropped();
      }
    }
    std::printf("phase %d: accuracy %.1f%%, mean latency %.1f ms%s\n", phase,
                100.0 * correct / traffic.size(), latency / traffic.size(),
                cache_service.has_value() ? " (cache active)" : "");
    if (cache_service.has_value() &&
        cache_service->hits() + cache_service->misses() >= 20)
      std::printf("cache hit rate since last (re)build: %.0f%%\n",
                  100.0 * cache_service->hit_rate());
  }
  return 0;
}
