// Quickstart: the whole Eugene service loop in one file.
//
//   1. a client uploads labeled sensor data (synthetic images here);
//   2. Eugene trains a staged (multi-exit) model        — §II-A;
//   3. Eugene calibrates its confidence (Eq. 4)         — §II-D;
//   4. Eugene profiles per-stage execution cost         — §II-C;
//   5. the client sends inference requests; the utility scheduler runs only
//      as many stages as each input needs               — §II-E / §III.
//
// Build & run:  ./build/examples/quickstart
// Pass --metrics to also dump the process-wide metrics registry (counters,
// gauges, per-stage latency histograms) in the eugene-metrics v1 format.
#include <cstdio>
#include <cstring>

#include "common/logging.hpp"
#include "core/eugene_service.hpp"
#include "data/synthetic_images.hpp"

using namespace eugene;

int main(int argc, char** argv) {
  bool dump_metrics = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--metrics") == 0) dump_metrics = true;
  set_log_level(LogLevel::Info);

  // -- 1. client data -------------------------------------------------------
  data::SyntheticImageConfig sensor;  // 10 classes, 3x16x16
  Rng rng(7);
  const data::Dataset train_set = data::generate_images(sensor, 800, rng);
  const data::Dataset calib_set = data::generate_images(sensor, 400, rng);
  const data::Dataset fresh = data::generate_images(sensor, 12, rng);
  std::printf("client uploaded %zu labeled samples\n", train_set.size());

  // -- 2. train a staged model ----------------------------------------------
  core::EugeneService eugene;
  nn::StagedResNetConfig arch;  // 3-stage ResNet, Fig. 3 structure
  arch.head_hidden = 24;
  nn::StagedTrainConfig train_cfg;
  train_cfg.epochs = 8;
  const std::size_t model = eugene.train("doorbell-vision", train_set, arch, train_cfg);

  // -- 3. calibrate ----------------------------------------------------------
  const core::CalibrationReport calibration = eugene.calibrate(model, calib_set);
  std::printf("calibrated: per-stage alpha =");
  for (double a : calibration.stage_alpha) std::printf(" %+.2f", a);
  std::printf(", per-stage ECE =");
  for (double e : calibration.stage_ece) std::printf(" %.3f", e);
  std::printf("\n");

  // -- 4. profile -------------------------------------------------------------
  const core::StageProfile profile = eugene.profile(model, {3, 16, 16});
  for (std::size_t s = 0; s < profile.stage_ms.size(); ++s)
    std::printf("stage %zu: %.2f ms, %.1f MFLOPs\n", s + 1, profile.stage_ms[s],
                profile.stage_flops[s] / 1e6);

  // -- 5. serve ---------------------------------------------------------------
  std::printf("\nserving %zu fresh inputs (early exit at confidence 0.9):\n",
              fresh.size());
  std::size_t correct = 0, stages_total = 0;
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    const serving::InferenceResponse r = eugene.infer(model, fresh.samples[i], 0.9);
    std::printf("  input %2zu -> class %zu (conf %.2f) after %zu/3 stages %s\n", i,
                r.label, r.confidence, r.stages_run,
                r.label == fresh.labels[i] ? "" : " [wrong]");
    correct += r.label == fresh.labels[i] ? 1 : 0;
    stages_total += r.stages_run;
  }
  std::printf("accuracy %zu/%zu, mean stages %.2f (3.0 = no early exit)\n", correct,
              fresh.size(), static_cast<double>(stages_total) / fresh.size());

  if (dump_metrics) std::printf("\n%s", eugene.metrics_text().c_str());
  return 0;
}
