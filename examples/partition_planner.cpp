// Client/server model partitioning (paper §IV-A).
//
// A battery-powered camera can run some stages of its staged model locally
// and offload the rest. Eugene's planner combines the model's per-stage
// FLOPs / parameter / feature sizes with the *empirical early-exit survival
// curve* (how often local confidence suffices) and the device / link / server
// profiles, then picks the split minimizing expected latency. The example
// prints the full split table for three device classes.
//
// Build & run:  ./build/examples/partition_planner
#include <cstdio>

#include "calib/calibrators.hpp"
#include "data/synthetic_images.hpp"
#include "nn/train.hpp"
#include "sched/partition.hpp"

using namespace eugene;

int main() {
  // Train + calibrate a staged model (abbreviated quickstart).
  data::SyntheticImageConfig sensor;
  Rng rng(17);
  const data::Dataset train_set = data::generate_images(sensor, 900, rng);
  const data::Dataset calib_set = data::generate_images(sensor, 400, rng);
  nn::StagedResNetConfig arch;
  arch.head_hidden = 24;
  nn::StagedModel model = nn::build_staged_resnet(arch);
  nn::StagedTrainConfig tcfg;
  tcfg.epochs = 8;
  std::printf("training the staged model...\n");
  nn::StagedTrainer trainer(model, tcfg);
  trainer.fit(train_set.samples, train_set.labels);
  calib::calibrate_heads_entropy(model, calib_set);

  // Planner inputs from the real model + real confidence statistics.
  const auto infos = sched::stage_infos(model, calib_set.samples[0]);
  const calib::StagedEvaluation eval = calib::evaluate_staged(model, calib_set);
  const double exit_threshold = 0.85;
  const auto survival = sched::survival_curve(eval, exit_threshold);

  std::printf("\nmodel stages (exit when local confidence >= %.2f):\n", exit_threshold);
  for (std::size_t s = 0; s < infos.size(); ++s)
    std::printf("  stage %zu: %6.1f MFLOPs, %5.1f KiB params, %5.1f KiB features, "
                "P(still needs more) = %.2f\n",
                s + 1, infos[s].flops / 1e6, infos[s].param_bytes / 1024.0,
                infos[s].output_bytes / 1024.0, survival[s]);

  struct DeviceClass {
    const char* name;
    sched::PartitionConfig config;
  };
  std::vector<DeviceClass> devices;
  {
    sched::PartitionConfig weak;  // 8-bit MCU-class node, LoRa-ish uplink
    weak.device.flops_per_ms = 5e3;
    weak.device.max_model_bytes = 64 * 1024;
    weak.server.flops_per_ms = 5e6;
    weak.link.bytes_per_ms = 20.0;
    weak.link.rtt_ms = 60.0;
    weak.input_bytes = 3 * 16 * 16 * 4;
    devices.push_back({"sensor-node (slow CPU, slow link)", weak});

    sched::PartitionConfig phone = weak;  // smartphone on Wi-Fi
    phone.device.flops_per_ms = 1e6;
    phone.device.max_model_bytes = 16u * 1024 * 1024;
    phone.link.bytes_per_ms = 2000.0;
    phone.link.rtt_ms = 8.0;
    devices.push_back({"smartphone (fast CPU, Wi-Fi)", phone});

    sched::PartitionConfig kiosk = phone;  // wired kiosk next to the server
    kiosk.device.flops_per_ms = 2e5;
    kiosk.link.bytes_per_ms = 20000.0;
    kiosk.link.rtt_ms = 1.0;
    devices.push_back({"kiosk (modest CPU, wired to edge)", kiosk});
  }

  for (const auto& device : devices) {
    std::printf("\n%s:\n", device.name);
    std::printf("  %-6s %10s %9s %10s %10s %12s\n", "split", "device ms", "P(off)",
                "upload ms", "server ms", "expected ms");
    const auto plans = sched::evaluate_partitions(infos, survival, device.config);
    const auto best = sched::plan_partition(infos, survival, device.config);
    for (const auto& plan : plans) {
      if (!plan.fits_device) {
        std::printf("  %-6zu %s\n", plan.split, "(exceeds device model budget)");
        continue;
      }
      std::printf("  %-6zu %10.2f %9.2f %10.2f %10.2f %12.2f%s\n", plan.split,
                  plan.device_ms, plan.offload_probability, plan.upload_ms,
                  plan.server_ms, plan.expected_latency_ms,
                  plan.split == best.split ? "  <= chosen" : "");
    }
  }
  std::printf("\n(split = number of stages cached on the device; 0 = pure "
              "offload, %zu = fully local)\n", infos.size());
  return 0;
}
