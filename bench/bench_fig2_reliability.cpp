// Regenerates paper Fig. 2: reliability diagrams of the staged ResNet,
// without calibration vs with entropy-based calibration. Prints the ten
// confidence bins with accuracy, confidence, gap, and an ASCII bar per bin
// (the paper's "Output" vs "Gap" rendering).
#include <cstdio>

#include "bench_common.hpp"

using namespace eugene;

namespace {

void print_diagram(const char* title, const calib::StagedEvaluation& eval,
                   std::size_t stage) {
  const auto bins = calib::reliability_diagram(eval.predicted(stage), eval.truth(stage),
                                               eval.confidence(stage), 10);
  const double ece = calib::expected_calibration_error(
      eval.predicted(stage), eval.truth(stage), eval.confidence(stage), 10);
  std::printf("%s (stage %zu, ECE = %.3f)\n", title, stage + 1, ece);
  std::printf("%-12s %6s %9s %9s %7s  %s\n", "confidence", "count", "accuracy",
              "confid.", "gap", "accuracy bar (| = ideal)");
  for (const auto& bin : bins) {
    std::printf("(%.2f,%.2f] %6zu %9.3f %9.3f %+7.3f  ", bin.lower, bin.upper, bin.count,
                bin.accuracy, bin.confidence, bin.accuracy - bin.confidence);
    const int bar = static_cast<int>(bin.accuracy * 40.0 + 0.5);
    const int ideal = static_cast<int>((bin.lower + bin.upper) / 2.0 * 40.0 + 0.5);
    for (int i = 0; i < 41; ++i) {
      if (i == ideal)
        std::putchar('|');
      else
        std::putchar(i < bar ? '#' : ' ');
    }
    std::putchar('\n');
  }
  std::putchar('\n');
}

}  // namespace

int main() {
  bench::Bundle bundle = bench::make_bundle();

  std::printf("== Fig. 2: reliability diagrams, uncalibrated vs entropy calibration ==\n\n");

  const calib::StagedEvaluation before =
      calib::evaluate_staged(bundle.model, bundle.test_set);
  // Show the stage where uncalibrated confidence is worst — the paper's
  // Fig. 2 plots a visibly miscalibrated network.
  std::size_t stage = 0;
  double worst = -1.0;
  for (std::size_t s = 0; s < before.num_stages(); ++s) {
    const double ece = calib::expected_calibration_error(
        before.predicted(s), before.truth(s), before.confidence(s), 10);
    if (ece > worst) {
      worst = ece;
      stage = s;
    }
  }
  print_diagram("(a) Without confidence calibration", before, stage);

  calib::calibrate_heads_entropy(bundle.model, bundle.calib_set);
  const calib::StagedEvaluation after =
      calib::evaluate_staged(bundle.model, bundle.test_set);
  print_diagram("(b) With the entropy-based calibration", after, stage);

  std::printf("shape check: calibrated diagram hugs the diagonal (smaller |gap| per "
              "populated bin), mirroring Fig. 2a vs 2b.\n");
  return 0;
}
