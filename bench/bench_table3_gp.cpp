// Regenerates paper Table III: quality of dynamic confidence-curve
// prediction with Gaussian-process regression — MAE and R² of GP1→2, GP1→3,
// GP2→3 on held-out data. The GPs are trained on the calibration split's
// confidence curves, exactly as the paper trains them "from the confidence
// curves of training data".
//
// Paper reference:            GP1→2   GP1→3   GP2→3
//   MAE                       0.124   0.108   0.072
//   R²                        0.57    0.43    0.78
//
// Ablation: the runtime piecewise-linear approximation vs the exact GP, in
// both prediction quality and query latency (the paper's motivation for the
// approximation).
#include <cstdio>

#include "bench_common.hpp"
#include "common/clock.hpp"
#include "gp/confidence_curve.hpp"

using namespace eugene;

int main() {
  bench::Bundle bundle = bench::make_bundle();
  calib::calibrate_heads_entropy(bundle.model, bundle.calib_set);

  const calib::StagedEvaluation train_eval =
      calib::evaluate_staged(bundle.model, bundle.calib_set);
  const calib::StagedEvaluation test_eval =
      calib::evaluate_staged(bundle.model, bundle.test_set);

  gp::ConfidenceCurveModel curves;
  curves.fit(train_eval);

  std::printf("== Table III: dynamic confidence curve prediction ==\n\n");
  const std::pair<std::size_t, std::size_t> pairs[] = {{0, 1}, {0, 2}, {1, 2}};
  const char* names[] = {"GP1->2", "GP1->3", "GP2->3"};
  std::printf("%-8s %10s %10s\n", "", "MAE", "R^2");
  gp::CurveFitQuality quality[3];
  for (int i = 0; i < 3; ++i) {
    quality[i] = curves.evaluate(test_eval, pairs[i].first, pairs[i].second);
    std::printf("%-8s %10.3f %10.2f\n", names[i], quality[i].mae, quality[i].r_squared);
  }
  std::printf("\npaper reference: MAE 0.124 / 0.108 / 0.072, R^2 0.57 / 0.43 / 0.78\n");
  std::printf("shape check: GP2->3 best (lowest MAE, highest R^2): %s\n",
              (quality[2].mae <= quality[0].mae && quality[2].mae <= quality[1].mae &&
               quality[2].r_squared >= quality[0].r_squared &&
               quality[2].r_squared >= quality[1].r_squared)
                  ? "yes"
                  : "partial");

  // ---- ablation: piecewise-linear approximation vs exact GP --------------
  bench::print_rule();
  std::printf("ablation: runtime piecewise-linear approximation (M=10 grid)\n");
  std::printf("%-8s %12s %12s %14s\n", "", "MAE exact", "MAE approx", "approx err");
  for (int i = 0; i < 3; ++i) {
    const auto exact = curves.evaluate(test_eval, pairs[i].first, pairs[i].second, false);
    const auto approx = curves.evaluate(test_eval, pairs[i].first, pairs[i].second, true);
    std::printf("%-8s %12.4f %12.4f %14.4f\n", names[i], exact.mae, approx.mae,
                approx.mae - exact.mae);
  }

  // Query latency: the paper's reason for the approximation.
  const std::size_t queries = 20000;
  Rng rng(5);
  std::vector<double> inputs(queries);
  for (auto& v : inputs) v = rng.uniform();

  Stopwatch sw_exact;
  double sink = 0.0;
  for (double v : inputs) sink += curves.predict_gp(0, 2, v).mean;
  const double exact_ms = sw_exact.elapsed_ms();

  Stopwatch sw_approx;
  for (double v : inputs) sink += curves.predict(0, 2, v);
  const double approx_ms = sw_approx.elapsed_ms();
  std::printf("\nquery latency over %zu queries: exact GP %.1f ms, piecewise %.1f ms "
              "(%.0fx speedup)  [checksum %.1f]\n",
              queries, exact_ms, approx_ms, exact_ms / approx_ms, sink);
  std::printf("(the paper: \"Gaussian process is notorious for its long inference "
              "time... approximate with piece-wise linear functions\")\n");
  return 0;
}
