// Shared setup for the paper-reproduction benches: synthetic CIFAR-10
// stand-in datasets and a trained three-stage ResNet (Fig. 3 structure),
// with variants for the three calibration methods compared in Table II.
#pragma once

#include <cstdio>

#include "calib/calibrators.hpp"
#include "calib/ece.hpp"
#include "data/synthetic_images.hpp"
#include "nn/train.hpp"

namespace eugene::bench {

/// Everything the calibration / GP / scheduling benches need.
struct Bundle {
  data::SyntheticImageConfig data_config;
  nn::StagedResNetConfig model_config;
  data::Dataset train_set;
  data::Dataset calib_set;  ///< held-out split used for calibration + GP fits
  data::Dataset test_set;   ///< evaluation split
  nn::StagedModel model;    ///< trained, NOT yet calibrated

  Bundle(data::SyntheticImageConfig dc, nn::StagedResNetConfig mc, data::Dataset train,
         data::Dataset calib, data::Dataset test, nn::StagedModel m)
      : data_config(dc),
        model_config(mc),
        train_set(std::move(train)),
        calib_set(std::move(calib)),
        test_set(std::move(test)),
        model(std::move(m)) {}
};

/// Workload scale knobs; the defaults fit a ~30 s single-core training run.
struct BundleConfig {
  std::size_t train_samples = 1500;
  std::size_t calib_samples = 600;
  std::size_t test_samples = 600;
  std::size_t epochs = 12;
  /// 0 for the main model; the RDeepSense baseline trains its own variant
  /// with dropout heads (dropout-trained heads are systematically
  /// underconfident, which would distort the other rows).
  float head_dropout = 0.0f;
  std::uint64_t seed = 424242;
};

inline Bundle make_bundle(const BundleConfig& cfg = {}) {
  data::SyntheticImageConfig dc;  // 10-class, 3x16x16 (CIFAR-10 stand-in)
  // Mildly easy-skewed difficulty: wide confidence spread (what the
  // confidence-curve GPs live on) while the shallow first stage still
  // learns the easy half of the distribution well.
  dc.difficulty_skew = 1.15;
  Rng rng(cfg.seed);
  data::Dataset train = data::generate_images(dc, cfg.train_samples, rng);
  data::Dataset calib = data::generate_images(dc, cfg.calib_samples, rng);
  data::Dataset test = data::generate_images(dc, cfg.test_samples, rng);

  nn::StagedResNetConfig mc;  // 3 stages, widths 8/16/32 (Fig. 3 shape)
  mc.head_dropout = cfg.head_dropout;
  mc.head_hidden = 24;  // confidence expressivity for the narrow early stages
  mc.seed = cfg.seed + 1;
  nn::StagedModel model = nn::build_staged_resnet(mc);

  nn::StagedTrainConfig tc;
  tc.epochs = cfg.epochs;
  tc.lr_decay_per_epoch = 0.92;
  nn::StagedTrainer trainer(model, tc);
  std::fprintf(stderr, "[bench] training 3-stage ResNet (%zu samples, %zu epochs)...\n",
               train.size(), cfg.epochs);
  trainer.fit(train.samples, train.labels);
  return Bundle(dc, mc, std::move(train), std::move(calib), std::move(test),
                std::move(model));
}

/// Per-stage ECE of an evaluation table.
inline std::vector<double> stage_eces(const calib::StagedEvaluation& eval,
                                      std::size_t bins = 10) {
  std::vector<double> out(eval.num_stages());
  for (std::size_t s = 0; s < eval.num_stages(); ++s)
    out[s] = calib::expected_calibration_error(eval.predicted(s), eval.truth(s),
                                               eval.confidence(s), bins);
  return out;
}

inline void print_rule(std::size_t width = 72) {
  for (std::size_t i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace eugene::bench
