// Regenerates paper Table II: Expected Calibration Error of three-stage
// ResNet confidence under three calibration methods —
//   Uncalibrated, RDeepSense (MC dropout), RTDeepIoT (entropy, Eq. 4) —
// plus two ablations: the α sweep behind the entropy method, and
// temperature scaling as an extra baseline.
//
// Paper's reference values (CIFAR-10):
//   stage      uncal   RDeepSense  RTDeepIoT
//     1        0.134     0.058       0.010
//     2        0.146     0.046       0.012
//     3        0.123     0.054       0.008
#include <cstdio>
#include <sstream>

#include "bench_common.hpp"
#include "nn/serialize.hpp"

using namespace eugene;

int main() {
  bench::BundleConfig cfg;
  bench::Bundle bundle = bench::make_bundle(cfg);

  std::printf("== Table II: ECE of confidence calibration methods ==\n\n");

  // Uncalibrated: raw head confidences on the test split.
  const auto uncal = bench::stage_eces(calib::evaluate_staged(bundle.model, bundle.test_set));

  // RDeepSense baseline: its own model variant with dropout heads, evaluated
  // with MC-dropout sampling (each calibration method owns its training
  // recipe, as in the paper's comparison).
  bench::BundleConfig mc_cfg = cfg;
  mc_cfg.head_dropout = 0.25f;
  bench::Bundle mc_bundle = bench::make_bundle(mc_cfg);
  const auto rdeep = bench::stage_eces(
      calib::evaluate_staged_mc(mc_bundle.model, mc_bundle.test_set, 20));

  // Temperature scaling (ablation extra).
  const auto temps = calib::fit_temperatures(bundle.model, bundle.calib_set);
  const auto temp_scaled = bench::stage_eces(
      calib::evaluate_with_temperature(bundle.model, bundle.test_set, temps));

  // RTDeepIoT: per-stage entropy calibration (Eq. 4) on the calib split.
  const std::vector<double> alphas =
      calib::calibrate_heads_entropy(bundle.model, bundle.calib_set);
  const auto rtdeep = bench::stage_eces(calib::evaluate_staged(bundle.model, bundle.test_set));

  std::printf("%-8s %14s %14s %14s %14s\n", "stage", "Uncalibrated", "RDeepSense",
              "RTDeepIoT", "TempScale*");
  for (std::size_t s = 0; s < 3; ++s)
    std::printf("Stage %zu  %14.3f %14.3f %14.3f %14.3f\n", s + 1, uncal[s], rdeep[s],
                rtdeep[s], temp_scaled[s]);
  std::printf("(*TempScale is an extra baseline, not in the paper's table)\n");
  std::printf("\npaper reference:        0.134/0.146/0.123   0.058/0.046/0.054   "
              "0.010/0.012/0.008\n");
  std::printf("chosen alpha per stage: ");
  for (double a : alphas) std::printf("%+.2f ", a);
  std::printf("\nshape check: RTDeepIoT < RDeepSense < Uncalibrated per stage: ");
  bool ok = true;
  for (std::size_t s = 0; s < 3; ++s) ok &= rtdeep[s] <= rdeep[s] && rdeep[s] <= uncal[s] + 0.02;
  std::printf("%s\n", ok ? "yes" : "partial");

  // ---- ablation: the α sweep (fresh fine-tune per α, stage 3 head) -------
  bench::print_rule();
  std::printf("ablation: entropy-regularization alpha sweep (stage 3 head, test ECE)\n");
  std::printf("%-8s %10s %12s %12s\n", "alpha", "ECE", "accuracy", "confidence");
  const auto features = calib::stage_features(bundle.model, bundle.calib_set);
  std::stringstream snapshot;
  nn::save_params(bundle.model.head_params(2), snapshot);
  for (double alpha : {-1.0, -0.5, -0.2, 0.0, 0.2, 0.5, 1.0}) {
    snapshot.clear();
    snapshot.seekg(0);
    nn::load_params(bundle.model.head_params(2), snapshot);
    calib::finetune_head(bundle.model, 2, features[2], bundle.calib_set.labels, alpha);
    const auto eval = calib::evaluate_staged(bundle.model, bundle.test_set);
    std::printf("%+8.2f %10.3f %12.3f %12.3f\n", alpha,
                calib::expected_calibration_error(eval.predicted(2), eval.truth(2),
                                                  eval.confidence(2)),
                calib::overall_accuracy(eval.predicted(2), eval.truth(2)),
                calib::overall_confidence(eval.confidence(2)));
  }
  std::printf("(α > 0 sharpens / raises confidence; α < 0 softens — the sweep shows\n"
              " the under/over-estimation crossover the paper's sign rule refers to)\n");
  return 0;
}
