// Google-benchmark microbenchmarks for Eugene's hot paths: tensor kernels,
// staged-model inference, GP vs piecewise-linear confidence queries,
// scheduler pick overhead, channel throughput, and checkpoint durability
// (CRC32 throughput, v2 save/load, the atomic-write tax).
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <vector>

#include "common/channel.hpp"
#include "common/crc32.hpp"
#include "common/failpoint.hpp"
#include "common/health.hpp"
#include "common/histogram.hpp"
#include "common/thread_annotations.hpp"
#include "common/trace.hpp"
#include "gp/confidence_curve.hpp"
#include "nn/arena.hpp"
#include "nn/serialize.hpp"
#include "nn/staged_model.hpp"
#include "sched/live.hpp"
#include "sched/policy.hpp"
#include "serving/registry.hpp"
#include "serving/server.hpp"
#include "tensor/ops.hpp"

namespace {

using namespace eugene;

void BM_Matmul(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const tensor::Tensor a = tensor::Tensor::randn({n, n}, rng);
  const tensor::Tensor b = tensor::Tensor::randn({n, n}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(tensor::matmul(a, b));
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128);

// The raw GEMM core at a forced ISA arm (DESIGN.md §14): gemm_with_isa with
// a caller-owned workspace — the exact call arena-backed inference makes.
// The scalar/avx2 row pair is the per-machine SIMD speedup; the scalar row
// vs the old BM_Matmul baseline is what tiling + packing alone bought.
void BM_GemmKernel(benchmark::State& state) {
  const auto isa = static_cast<tensor::GemmIsa>(state.range(0));
  if (!tensor::gemm_isa_available(isa)) {
    state.SkipWithError("isa not available on this machine");
    return;
  }
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  Rng rng(12);
  const tensor::Tensor a = tensor::Tensor::randn({n, n}, rng);
  const tensor::Tensor b = tensor::Tensor::randn({n, n}, rng);
  tensor::Tensor c({n, n});
  std::vector<float> workspace(tensor::gemm_workspace_floats(n, n, n));
  for (auto _ : state) {
    tensor::gemm_with_isa(isa, n, n, n, a.raw(), n, false, b.raw(), n, false,
                          0.0f, c.raw(), n, workspace.data());
    benchmark::DoNotOptimize(c.raw());
  }
  state.SetLabel(tensor::gemm_isa_name(isa));
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmKernel)
    ->Args({0, 128})
    ->Args({0, 256})
    ->Args({1, 128})
    ->Args({1, 256})
    ->ArgNames({"isa", "n"});

void BM_Conv2dIm2col(benchmark::State& state) {
  const std::size_t c = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  tensor::Conv2dGeometry g;
  g.in_channels = c;
  g.out_channels = c;
  g.in_height = 16;
  g.in_width = 16;
  const tensor::Tensor img = tensor::Tensor::randn({c, 16, 16}, rng);
  const tensor::Tensor w = tensor::Tensor::randn({c, c * 9}, rng, 0.1f);
  const tensor::Tensor b = tensor::Tensor::randn({c}, rng, 0.1f);
  for (auto _ : state) benchmark::DoNotOptimize(tensor::conv2d(img, w, b, g));
  state.SetItemsProcessed(state.iterations() * static_cast<std::size_t>(g.flops()));
}
BENCHMARK(BM_Conv2dIm2col)->Arg(8)->Arg(16)->Arg(32);

// The zero-alloc patch unroll feeding every conv GEMM: im2col into caller
// storage. Pure memory traffic — the bytes/s counter is the number to watch.
void BM_Im2colInto(benchmark::State& state) {
  const std::size_t c = static_cast<std::size_t>(state.range(0));
  Rng rng(13);
  tensor::Conv2dGeometry g;
  g.in_channels = c;
  g.out_channels = c;
  g.in_height = 16;
  g.in_width = 16;
  const tensor::Tensor img = tensor::Tensor::randn({c, 16, 16}, rng);
  std::vector<float> cols(c * 9 * g.out_height() * g.out_width());
  for (auto _ : state) {
    tensor::im2col_into(img, g, cols.data());
    benchmark::DoNotOptimize(cols.data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * cols.size() * sizeof(float)));
}
BENCHMARK(BM_Im2colInto)->Arg(8)->Arg(16)->Arg(32);

void BM_StagedForward(benchmark::State& state) {
  nn::StagedResNetConfig cfg;
  nn::StagedModel model = nn::build_staged_resnet(cfg);
  Rng rng(3);
  const tensor::Tensor input = tensor::Tensor::randn({3, 16, 16}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(model.forward_all(input));
}
BENCHMARK(BM_StagedForward);

void BM_StagedFirstStageOnly(benchmark::State& state) {
  nn::StagedResNetConfig cfg;
  nn::StagedModel model = nn::build_staged_resnet(cfg);
  Rng rng(4);
  const tensor::Tensor input = tensor::Tensor::randn({3, 16, 16}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(model.run_stage(0, input));
}
BENCHMARK(BM_StagedFirstStageOnly);

// All stages of the quickstart resnet run batched through a scratch arena:
// one wide GEMM per layer across the whole batch (DESIGN.md §14). items/s is
// per-sample throughput — compare against BM_StagedForward's iteration time
// to read off the amortization win; batch=1 prices the batching machinery
// itself. Storage lives outside the loop, so steady state allocates nothing.
void BM_StagedForwardBatched(benchmark::State& state) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  nn::StagedResNetConfig cfg;
  nn::StagedModel model = nn::build_staged_resnet(cfg);
  Rng rng(14);
  std::vector<tensor::Tensor> inputs;
  for (std::size_t b = 0; b < batch; ++b)
    inputs.push_back(tensor::Tensor::randn({3, 16, 16}, rng));
  nn::ScratchArena arena;
  // Ping-pong item buffers: stage s reads features written by stage s-1, so
  // it cannot write into the same items it is reading from.
  std::vector<nn::StageBatchItem> even(batch), odd(batch);
  std::vector<const tensor::Tensor*> ptrs(batch);
  for (auto _ : state) {
    arena.reset();
    for (std::size_t b = 0; b < batch; ++b) ptrs[b] = &inputs[b];
    for (std::size_t s = 0; s < model.num_stages(); ++s) {
      auto& items = (s % 2 == 0) ? even : odd;
      model.run_stage_batch(s, ptrs, items, arena);
      for (std::size_t b = 0; b < batch; ++b) ptrs[b] = &items[b].features;
    }
    benchmark::DoNotOptimize(even.data());
    benchmark::DoNotOptimize(odd.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * batch));
}
BENCHMARK(BM_StagedForwardBatched)->Arg(1)->Arg(8)->Arg(32)->ArgName("batch");

gp::ConfidenceCurveModel make_curves() {
  calib::StagedEvaluation eval;
  eval.records.resize(3);
  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    const double c1 = rng.uniform(0.1, 0.9);
    for (std::size_t s = 0; s < 3; ++s) {
      calib::StageRecord r;
      r.confidence = static_cast<float>(std::min(1.0, c1 + 0.2 * (s + rng.uniform(0, 0.1))));
      eval.records[s].push_back(r);
    }
  }
  gp::ConfidenceCurveModel curves;
  curves.fit(eval);
  return curves;
}

void BM_GpExactPredict(benchmark::State& state) {
  const auto curves = make_curves();
  double x = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(curves.predict_gp(0, 2, x));
    x = x < 0.9 ? x + 0.001 : 0.1;
  }
}
BENCHMARK(BM_GpExactPredict);

void BM_GpPiecewisePredict(benchmark::State& state) {
  const auto curves = make_curves();
  double x = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(curves.predict(0, 2, x));
    x = x < 0.9 ? x + 0.001 : 0.1;
  }
}
BENCHMARK(BM_GpPiecewisePredict);

void BM_GreedyPolicyPick(benchmark::State& state) {
  const std::size_t n_tasks = static_cast<std::size_t>(state.range(0));
  const auto curves = make_curves();
  sched::GpUtilityEstimator estimator(curves);
  sched::GreedyUtilityPolicy policy(estimator, 1);
  std::vector<std::vector<double>> conf(n_tasks);
  std::vector<sched::TaskView> runnable(n_tasks);
  Rng rng(6);
  for (std::size_t i = 0; i < n_tasks; ++i) {
    if (i % 2 == 0) conf[i] = {rng.uniform(0.2, 0.9)};
    runnable[i].task_id = i;
    runnable[i].total_stages = 3;
    runnable[i].stages_done = conf[i].size();
    runnable[i].observed_confidence = conf[i];
  }
  for (auto _ : state) {
    policy.reset();
    benchmark::DoNotOptimize(policy.pick(runnable, 0.0));
  }
}
BENCHMARK(BM_GreedyPolicyPick)->Arg(10)->Arg(100)->Arg(1000);

// The failpoint contract (DESIGN.md §8): a disarmed EUGENE_FAILPOINT must
// cost one relaxed atomic load — under a nanosecond — so production code can
// carry injection sites unconditionally.
void BM_FailpointDisabled(benchmark::State& state) {
  FailpointRegistry::instance().disarm_all();
  for (auto _ : state) EUGENE_FAILPOINT("bench.never.armed");
}
BENCHMARK(BM_FailpointDisabled);

// With a different failpoint armed, every site pays the registry lookup.
// This is the cost of running *under chaos*, not the production overhead.
void BM_FailpointArmedOther(benchmark::State& state) {
  FailpointSpec spec;
  spec.probability = 0.0;  // armed but never fires
  FailpointRegistry::instance().arm("bench.other", spec);
  for (auto _ : state) EUGENE_FAILPOINT("bench.never.armed");
  FailpointRegistry::instance().disarm_all();
}
BENCHMARK(BM_FailpointArmedOther);

// ---- overload control (DESIGN.md §11) --------------------------------------

// Baseline for the breaker's closed-path claim: one relaxed atomic load.
void BM_AtomicLoadBaseline(benchmark::State& state) {
  std::atomic<std::uint8_t> flag{0};
  for (auto _ : state)
    benchmark::DoNotOptimize(flag.load(std::memory_order_relaxed));
}
BENCHMARK(BM_AtomicLoadBaseline);

// A closed breaker guards every live dispatch, so allow() must cost what the
// header promises: one relaxed atomic load, within noise of the baseline
// above. Warm the breaker with successes first so it is genuinely closed.
void BM_BreakerClosedPath(benchmark::State& state) {
  CircuitBreaker breaker;
  for (int i = 0; i < 8; ++i) breaker.record_success(1.0, i * 10.0);
  for (auto _ : state) benchmark::DoNotOptimize(breaker.allow(1000.0));
}
BENCHMARK(BM_BreakerClosedPath);

sched::LiveConfig hedge_bench_config(bool hedging) {
  sched::LiveConfig cfg;
  cfg.max_retries = 0;
  cfg.health.enabled = false;  // isolate hedging from breaker routing
  cfg.hedging = hedging;
  cfg.hedge_quantile = 0.5;
  cfg.hedge_min_ms = 0.5;
  cfg.hedge_min_samples = 4;
  return cfg;
}

// Tail rescue under a straggler replica: replica 0 stalls 3 ms on ~40% of
// its stages (live.worker.sick kind=delay). Per-iteration time is batch
// makespan, but the headline numbers are the task-latency percentile
// counters: with hedging on, the backup dispatch overlaps the stall, so
// p99_task_ms sits well below the hedging-off row while p50 stays put.
void BM_HedgedDispatch(benchmark::State& state) {
  nn::StagedResNetConfig cfg;
  cfg.in_channels = 2;
  cfg.height = 8;
  cfg.width = 8;
  cfg.num_classes = 4;
  cfg.stage_channels = {3, 4};
  cfg.head_hidden = 8;
  nn::StagedModel source = nn::build_staged_resnet(cfg);
  auto replicas = sched::replicate_staged_model(source, 3);
  const auto curves = make_curves();
  Rng rng(7);
  std::vector<tensor::Tensor> inputs;
  for (int i = 0; i < 8; ++i)
    inputs.push_back(tensor::Tensor::randn({2, 8, 8}, rng));
  const sched::LiveConfig live = hedge_bench_config(state.range(0) != 0);

  FailpointSpec sick;
  sick.kind = FailpointKind::kDelay;
  sick.delay_ms = 3.0;
  sick.probability = 0.4;
  sick.seed = 11;
  std::size_t hedges = 0;
  std::vector<double> task_ms;
  for (auto _ : state) {
    FailpointRegistry::instance().arm("live.worker.sick", sick);
    sched::LiveStats stats;
    const auto results = sched::run_live(replicas, curves, inputs, live, &stats);
    benchmark::DoNotOptimize(results.data());
    hedges += stats.hedges_issued;
    for (const auto& r : results) task_ms.push_back(r.latency_ms);
  }
  FailpointRegistry::instance().disarm_all();
  auto pct = [&](double q) {
    std::vector<double> sorted = task_ms;
    const auto k = static_cast<std::size_t>(q * (sorted.size() - 1));
    std::nth_element(sorted.begin(),
                     sorted.begin() + static_cast<std::ptrdiff_t>(k), sorted.end());
    return sorted[k];
  };
  state.counters["hedges/iter"] =
      benchmark::Counter(static_cast<double>(hedges),
                         benchmark::Counter::kAvgIterations);
  state.counters["p50_task_ms"] = pct(0.50);
  state.counters["p99_task_ms"] = pct(0.99);
}
BENCHMARK(BM_HedgedDispatch)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("hedging")
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// ---- telemetry (DESIGN.md §12) --------------------------------------------

// Baseline for the histogram's record() claim: one relaxed fetch_add.
void BM_AtomicAddBaseline(benchmark::State& state) {
  std::atomic<std::uint64_t> n{0};
  for (auto _ : state) n.fetch_add(1, std::memory_order_relaxed);
  benchmark::DoNotOptimize(n.load());
}
BENCHMARK(BM_AtomicAddBaseline);

// record() sits on every dispatch-latency observation (scheduler hot path),
// so it must cost about two relaxed fetch_adds plus the bit_cast slot math —
// the issue's acceptance bar is ≤ ~2x BM_AtomicAddBaseline.
void BM_HistogramRecord(benchmark::State& state) {
  telemetry::LatencyHistogram h;
  double ms = 0.25;
  for (auto _ : state) {
    h.record(ms);
    ms = ms < 512.0 ? ms * 1.001 : 0.25;  // sweep slots; defeat branch memo
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramRecord);

// Quantile queries walk at most kSlots bucket counters — O(1) in the sample
// count, unlike the copy + nth_element they replaced (next benchmark).
void BM_HistogramQuantile(benchmark::State& state) {
  telemetry::LatencyHistogram h;
  Rng rng(8);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n; ++i) h.record(rng.uniform(0.5, 50.0));
  for (auto _ : state) benchmark::DoNotOptimize(h.quantile(0.95));
}
BENCHMARK(BM_HistogramQuantile)->Arg(64)->Arg(4096)->ArgName("samples");

// The replaced hedge-threshold path: the sweep copied the latency window and
// ran nth_element per call (and the old sweep called it twice per wake).
// Scales with the window size where the histogram row above is flat — the
// regression delta the satellite fix banks.
void BM_HedgeQuantileLegacyWindow(benchmark::State& state) {
  Rng rng(9);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> window;
  for (std::size_t i = 0; i < n; ++i) window.push_back(rng.uniform(0.5, 50.0));
  for (auto _ : state) {
    std::vector<double> sorted = window;  // the per-call copy
    const auto k = static_cast<std::size_t>(
        std::min(sorted.size() - 1,
                 static_cast<std::size_t>(0.95 * static_cast<double>(sorted.size()))));
    std::nth_element(sorted.begin(),
                     sorted.begin() + static_cast<std::ptrdiff_t>(k),
                     sorted.end());
    benchmark::DoNotOptimize(sorted[k]);
  }
}
BENCHMARK(BM_HedgeQuantileLegacyWindow)->Arg(64)->Arg(4096)->ArgName("samples");

// End-to-end tracing tax: a full process_batch with spans recorded for every
// request (arg=1) vs the null-handle fast path (arg=0). The issue's bar:
// traced adds < 5% per-request latency. Metrics are disabled in both arms so
// the rows isolate the tracing delta alone.
void BM_TracedRequest(benchmark::State& state) {
  nn::StagedResNetConfig arch;
  arch.in_channels = 2;
  arch.height = 8;
  arch.width = 8;
  arch.num_classes = 4;
  arch.stage_channels = {3, 4};
  arch.head_hidden = 8;
  serving::ModelRegistry registry;
  const std::size_t handle = registry.add("bench", nn::build_staged_resnet(arch));
  serving::ModelEntry& entry = registry.entry(handle);
  calib::StagedEvaluation eval;
  eval.records.resize(2);
  Rng rng(10);
  for (int i = 0; i < 200; ++i) {
    const double base = rng.uniform(0.1, 0.9);
    for (std::size_t s = 0; s < 2; ++s) {
      calib::StageRecord r;
      r.confidence = static_cast<float>(
          std::min(1.0, base + 0.2 * (static_cast<double>(s) + rng.uniform(0.0, 0.1))));
      eval.records[s].push_back(r);
    }
  }
  entry.curves.fit(eval);
  entry.costs.stage_ms = {1.0, 1.0};

  telemetry::TraceRecorder recorder(4096);
  serving::ServerConfig cfg;
  cfg.metrics = nullptr;
  cfg.trace = state.range(0) != 0 ? &recorder : nullptr;
  serving::InferenceServer server(entry, cfg);
  std::vector<serving::InferenceRequest> requests;
  for (int i = 0; i < 8; ++i)
    requests.push_back({tensor::Tensor::randn({2, 8, 8}, rng), 0});

  std::size_t batches = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.process_batch(requests));
    ++batches;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(batches * requests.size()));
}
BENCHMARK(BM_TracedRequest)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("traced")
    ->Unit(benchmark::kMillisecond);

void BM_ChannelSendReceive(benchmark::State& state) {
  Channel<int> ch;
  for (auto _ : state) {
    ch.send(1);
    benchmark::DoNotOptimize(ch.try_receive());
  }
}
BENCHMARK(BM_ChannelSendReceive);

// ---- lock-rank checker (DESIGN.md §10) ------------------------------------

// The zero-overhead claim for the deadlock-order analysis: in builds with
// EUGENE_LOCK_RANK_CHECKS=0 (the Release preset) eugene::Mutex::lock() must
// compile down to std::mutex::lock() — compare against BM_StdMutexLock below.
// In checked builds the delta is the per-thread held-stack bookkeeping, which
// is the price every non-Release preset pays for inversion detection.
void BM_MutexRankedLock(benchmark::State& state) {
  Mutex mu(LockRank::kChannel, "bench_mutex");
  for (auto _ : state) {
    mu.lock();
    mu.unlock();
  }
}
BENCHMARK(BM_MutexRankedLock);

// Baseline: the raw standard-library mutex the wrapper is built on.
void BM_StdMutexLock(benchmark::State& state) {
  std::mutex mu;
  for (auto _ : state) {
    mu.lock();
    mu.unlock();
  }
}
BENCHMARK(BM_StdMutexLock);

// ---- durability (DESIGN.md §9) --------------------------------------------

// The integrity tax on every checkpoint byte: raw CRC32 throughput.
void BM_Crc32(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> data(n);
  Rng rng(6);
  for (auto& b : data)
    b = static_cast<std::uint8_t>(rng.uniform(0.0, 255.0));
  for (auto _ : state) benchmark::DoNotOptimize(crc32(data.data(), data.size()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_Crc32)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

nn::StagedModel bench_checkpoint_model() {
  nn::StagedResNetConfig cfg;  // default: the quickstart architecture
  return nn::build_staged_resnet(cfg);
}

// v2 checkpoint encode: body serialization + CRC, no disk. The delta
// against BM_Crc32 at the same byte count is the pure framing cost.
void BM_CheckpointSaveV2(benchmark::State& state) {
  nn::StagedModel model = bench_checkpoint_model();
  const auto params = model.params();
  const std::size_t bytes = nn::serialized_size_bytes(params);
  for (auto _ : state) {
    std::ostringstream out(std::ios::binary);
    nn::save_params(params, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * bytes));
}
BENCHMARK(BM_CheckpointSaveV2);

// v2 checkpoint decode: magic/version/length validation, chunked body read,
// CRC verification, and the shape-checked copy into live tensors.
void BM_CheckpointLoadV2(benchmark::State& state) {
  nn::StagedModel model = bench_checkpoint_model();
  const auto params = model.params();
  std::ostringstream out(std::ios::binary);
  nn::save_params(params, out);
  const std::string bytes = out.str();
  for (auto _ : state) {
    std::istringstream in(bytes, std::ios::binary);
    nn::load_params(params, in);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * bytes.size()));
}
BENCHMARK(BM_CheckpointLoadV2);

// Full durable round trip through the atomic writer: temp file + fsync +
// rename. The gap against BM_CheckpointSaveV2 is what crash safety costs.
void BM_CheckpointSaveFileAtomic(benchmark::State& state) {
  nn::StagedModel model = bench_checkpoint_model();
  const auto params = model.params();
  const std::string path =
      "/tmp/eugene_bench_ckpt_" + std::to_string(::getpid()) + ".params";
  for (auto _ : state) nn::save_params_file(params, path);
  state.SetBytesProcessed(static_cast<std::int64_t>(
      state.iterations() * nn::serialized_size_bytes(params)));
  std::remove(path.c_str());
}
BENCHMARK(BM_CheckpointSaveFileAtomic);

// ---- epoch-pinned registry reads (DESIGN.md §13) --------------------------

serving::ModelRegistry& bench_registry() {
  static serving::ModelRegistry* registry = [] {
    auto* r = new serving::ModelRegistry();  // leaked on purpose: bench-lived
    nn::StagedResNetConfig cfg;
    cfg.stage_channels = {4, 8};
    r->add("bench", nn::build_staged_resnet(cfg));
    return r;
  }();
  return *registry;
}

// The per-request read the serving path performs: pin the current epoch
// (one atomic shared_ptr acquire) and touch the entry. This is the hot
// half of the zero-downtime design — writers publishing snapshots/swaps
// never make this read wait.
void BM_RegistryEpochRead(benchmark::State& state) {
  serving::ModelRegistry& registry = bench_registry();
  for (auto _ : state) {
    const serving::ModelRegistry::ViewPtr view = registry.pin();
    benchmark::DoNotOptimize(view->entry(0).calibrated);
  }
}
BENCHMARK(BM_RegistryEpochRead);

// What the pre-epoch design paid per read: a ranked-mutex round trip around
// the same entry access. Uncontended the two are the same order of
// magnitude (the pinned read pays a refcount bump; the mutex pays a
// lock/unlock) — the refactor's win is independence, not raw latency: the
// locked design serialized every reader behind a writer holding the mutex
// through a deep clone and publish, which no single-threaded benchmark can
// show.
void BM_RegistryLockedRead(benchmark::State& state) {
  serving::ModelRegistry& registry = bench_registry();
  const serving::ModelRegistry::ViewPtr view = registry.pin();
  static Mutex mutex(LockRank::kModelRegistry, "bench_locked_read");
  for (auto _ : state) {
    MutexLock lock(mutex);
    benchmark::DoNotOptimize(view->entry(0).calibrated);
  }
}
BENCHMARK(BM_RegistryLockedRead);

}  // namespace

BENCHMARK_MAIN();
