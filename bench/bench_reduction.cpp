// Ablation bench for the model-reduction & caching service (paper §II-B):
//
//   [1] edge pruning vs node pruning — accuracy / parameters / FLOPs /
//       measured inference time. Reproduces the paper's argument that
//       removing nodes beats removing edges because "sparse matrix algebra
//       is not as efficient as dense matrix algebra".
//   [2] sparse-vs-dense matvec timing across sparsity levels.
//   [3] the caching loop: frequent-class detection, reduced cache model on
//       the device, server fallback on misses — hit rate, accuracy, and
//       modeled mean latency vs always-offload.
#include <cstdio>

#include "common/clock.hpp"
#include "data/synthetic_images.hpp"
#include "nn/train.hpp"
#include "reduce/cache.hpp"
#include "reduce/pruning.hpp"
#include "reduce/sparse.hpp"

using namespace eugene;

namespace {

double measure_forward_ms(reduce::SimpleCnn& net, const data::Dataset& data,
                          std::size_t count) {
  Stopwatch sw;
  volatile float sink = 0.0f;
  for (std::size_t i = 0; i < count; ++i)
    sink = sink + net.forward(data.samples[i % data.size()]).at(0);
  (void)sink;
  return sw.elapsed_ms() / static_cast<double>(count);
}

}  // namespace

int main() {
  data::SyntheticImageConfig dc;  // 10-class 3x16x16
  Rng rng(99);
  const data::Dataset train = data::generate_images(dc, 900, rng);
  const data::Dataset test = data::generate_images(dc, 400, rng);

  reduce::SimpleCnnConfig arch;
  arch.in_channels = 3;
  arch.height = 16;
  arch.width = 16;
  arch.num_classes = 10;
  arch.conv_channels = {24, 24, 24};
  reduce::SimpleCnn full(arch);
  nn::ClassifierTrainConfig tc;
  tc.epochs = 12;
  std::fprintf(stderr, "[bench] training the full CNN...\n");
  reduce::finetune(full, train, tc);

  std::printf("== Model reduction: edge pruning vs node pruning (paper §II-B) ==\n\n");
  const double full_acc = reduce::accuracy(full, test);
  const double full_ms = measure_forward_ms(full, test, 100);
  std::printf("%-26s %9s %10s %10s %12s\n", "model", "accuracy", "params", "GFLOPs",
              "ms/inference");
  std::printf("%-26s %8.1f%% %10zu %10.4f %12.3f\n", "full (24-24-24)",
              full_acc * 100.0, full.param_count(), full.flops() / 1e9, full_ms);

  // [1a] edge pruning: zero 50% / 75% of conv weights, fine-tune briefly.
  for (double frac : {0.5, 0.75}) {
    reduce::SimpleCnn pruned(arch);
    {
      // Copy trained weights, then prune edges.
      auto src = full.net().params();
      auto dst = pruned.net().params();
      for (std::size_t i = 0; i < src.size(); ++i) *dst[i].value = *src[i].value;
    }
    for (std::size_t l = 0; l < pruned.num_conv_layers(); ++l)
      reduce::prune_edges_by_magnitude(pruned.conv(l).weights(), frac);
    nn::ClassifierTrainConfig ft;
    ft.epochs = 3;
    reduce::finetune(pruned, train, ft);
    // Edge pruning leaves the dense dims untouched: same FLOPs, same time.
    char name[64];
    std::snprintf(name, sizeof(name), "edge-pruned %.0f%%", frac * 100.0);
    std::printf("%-26s %8.1f%% %10zu %10.4f %12.3f   <- dense cost unchanged\n", name,
                reduce::accuracy(pruned, test) * 100.0, pruned.param_count(),
                pruned.flops() / 1e9, measure_forward_ms(pruned, test, 100));
  }

  // [1b] node pruning: remove whole channels, fine-tune briefly.
  for (double keep : {0.5, 0.25}) {
    reduce::SimpleCnn reduced = reduce::prune_channels(full, keep);
    nn::ClassifierTrainConfig ft;
    ft.epochs = 3;
    reduce::finetune(reduced, train, ft);
    char name[64];
    std::snprintf(name, sizeof(name), "node-pruned keep %.0f%%", keep * 100.0);
    std::printf("%-26s %8.1f%% %10zu %10.4f %12.3f\n", name,
                reduce::accuracy(reduced, test) * 100.0, reduced.param_count(),
                reduced.flops() / 1e9, measure_forward_ms(reduced, test, 100));
  }
  std::printf("shape check: node pruning cuts params/FLOPs/time proportionally; "
              "edge pruning does not.\n\n");

  // [2] sparse vs dense matvec across sparsity.
  std::printf("------------------------------------------------------------------\n");
  std::printf("sparse (CSR) vs dense matvec, 512x512, per-multiply microseconds\n");
  std::printf("%-10s %12s %12s %12s %14s\n", "sparsity", "dense us", "csr us",
              "speedup", "csr bytes/dense");
  Rng mrng(5);
  for (double sparsity_frac : {0.0, 0.5, 0.75, 0.9, 0.99}) {
    tensor::Tensor a = tensor::Tensor::randn({512, 512}, mrng);
    if (sparsity_frac > 0.0) reduce::prune_edges_by_magnitude(a, sparsity_frac);
    const reduce::CsrMatrix csr = reduce::CsrMatrix::from_dense(a);
    std::vector<float> x(512, 1.0f);
    const int reps = 300;
    Stopwatch sw_dense;
    volatile float sink = 0.0f;
    for (int r = 0; r < reps; ++r) sink = sink + reduce::dense_multiply(a, x)[0];
    const double dense_us = sw_dense.elapsed_us() / reps;
    Stopwatch sw_csr;
    for (int r = 0; r < reps; ++r) sink = sink + csr.multiply(x)[0];
    const double csr_us = sw_csr.elapsed_us() / reps;
    (void)sink;
    std::printf("%-10.2f %12.1f %12.1f %12.2f %14.2f\n", sparsity_frac, dense_us, csr_us,
                dense_us / csr_us,
                static_cast<double>(csr.storage_bytes()) / (512.0 * 512.0 * 4.0));
  }
  std::printf("shape check: at 50%% sparsity CSR storage merely breaks even with "
              "dense (index overhead),\nand below that it is strictly worse — "
              "savings do not scale proportionally to zeros (paper §II-B).\n\n");

  // [3] the caching loop.
  std::printf("------------------------------------------------------------------\n");
  std::printf("caching: frequent-class cache model on device, server fallback\n");
  // Skewed traffic: two classes dominate (the smart-refrigerator scenario).
  std::vector<double> weights(10, 0.03);
  weights[2] = 0.38;
  weights[6] = 0.38;
  Rng traffic_rng(17);
  const data::Dataset skewed_train =
      data::generate_images_weighted(dc, 900, weights, traffic_rng);
  const data::Dataset skewed_traffic =
      data::generate_images_weighted(dc, 400, weights, traffic_rng);

  // The server-side full model: a staged ResNet.
  nn::StagedResNetConfig server_cfg;
  server_cfg.seed = 3;
  nn::StagedModel server = nn::build_staged_resnet(server_cfg);
  nn::StagedTrainConfig stc;
  stc.epochs = 8;
  std::fprintf(stderr, "[bench] training the server model...\n");
  nn::StagedTrainer strainer(server, stc);
  strainer.fit(skewed_train.samples, skewed_train.labels);

  // Detect the frequent set from traffic, then build the cache model.
  reduce::FrequencyTracker tracker(300);
  for (std::size_t i = 0; i < skewed_traffic.size(); ++i)
    tracker.observe(skewed_traffic.labels[i]);
  auto frequent = tracker.frequent_set(0.7);
  if (frequent.size() > 3) frequent.resize(3);
  std::printf("detected frequent classes: ");
  for (std::size_t c : frequent) std::printf("%zu (%.0f%%) ", c, tracker.share(c) * 100.0);
  std::printf("\n");

  reduce::CacheBuildConfig cache_cfg;
  cache_cfg.architecture = arch;
  cache_cfg.architecture.conv_channels = {10, 10};  // the reduced device model
  cache_cfg.training.epochs = 12;
  Rng cache_rng(23);
  reduce::CacheModel cache =
      reduce::build_cache_model(skewed_train, frequent, cache_cfg, cache_rng);

  reduce::CacheCostModel costs;  // device 5ms, network 40ms, server 15ms
  reduce::CachedInferenceService service(std::move(cache), server, 0.55, costs);
  std::size_t correct = 0;
  double latency_sum = 0.0;
  for (std::size_t i = 0; i < skewed_traffic.size(); ++i) {
    const reduce::CachedResult r = service.infer(skewed_traffic.samples[i]);
    correct += r.label == skewed_traffic.labels[i] ? 1 : 0;
    latency_sum += r.latency_ms;
  }
  const double always_offload_ms = costs.device_ms + costs.network_ms + costs.server_ms;
  std::size_t server_correct = 0;
  for (std::size_t i = 0; i < skewed_traffic.size(); ++i) {
    const auto outputs = server.forward_all(skewed_traffic.samples[i]);
    server_correct += outputs.back().predicted_label == skewed_traffic.labels[i] ? 1 : 0;
  }
  std::printf("%-28s %10s %12s %14s\n", "path", "accuracy", "hit rate", "mean latency");
  std::printf("%-28s %9.1f%% %12s %11.1f ms\n", "always offload (no cache)",
              100.0 * server_correct / skewed_traffic.size(), "-", always_offload_ms);
  std::printf("%-28s %9.1f%% %11.1f%% %11.1f ms\n", "cached device + fallback",
              100.0 * correct / skewed_traffic.size(), 100.0 * service.hit_rate(),
              latency_sum / skewed_traffic.size());
  std::printf("(cache hits answer in %.0f ms on-device; misses escalate to the "
              "server, %.0f ms)\n", costs.device_ms, always_offload_ms);
  return 0;
}
