// Regenerates paper Fig. 4: the scheduling scalability study on a
// three-stage ResNet over the CIFAR-10 stand-in.
//
//   Fig. 4a — mean service accuracy vs number of concurrent services:
//             RTDeepIoT-1/2/3 vs RR
//   Fig. 4b — RTDeepIoT-1 vs RTDeepIoT-DC-1/2/3 vs FIFO
//   Fig. 4c — std-dev of service accuracy (fairness) for all policies
//
// Setup mirrors the paper's: N concurrent client streams of shuffled test
// images, a shared worker pool, per-image latency constraints enforced by
// the daemon, utility = predicted confidence gain from GP curves profiled
// into piecewise-linear functions. Stage outcomes replay real model outputs
// through the deterministic discrete-event engine (DESIGN.md §5).
//
// Extras beyond the paper's plot: an EDF baseline, the early-exit stage
// histogram, and wasted (aborted) stage executions.
#include <cstdio>
#include <functional>

#include "bench_common.hpp"
#include "sched/simulator.hpp"
#include "sched/workload.hpp"

using namespace eugene;

namespace {

struct PolicyResult {
  double mean_acc = 0.0;   ///< averaged over trials
  double std_acc = 0.0;    ///< averaged over trials (per-service spread)
  double stages_per_task = 0.0;
  double aborted = 0.0;
};

constexpr std::size_t kConcurrency[] = {2, 5, 10, 20};
constexpr std::size_t kTrials = 5;

}  // namespace

int main() {
  bench::Bundle bundle = bench::make_bundle();
  calib::calibrate_heads_entropy(bundle.model, bundle.calib_set);

  const calib::StagedEvaluation curve_train =
      calib::evaluate_staged(bundle.model, bundle.calib_set);
  const calib::StagedEvaluation test_eval =
      calib::evaluate_staged(bundle.model, bundle.test_set);
  gp::ConfidenceCurveModel curves;
  curves.fit(curve_train);

  std::vector<double> priors(3);
  for (std::size_t s = 0; s < 3; ++s) priors[s] = curves.prior_confidence(s);
  sched::GpUtilityEstimator gp_estimator(curves);
  sched::ConstantSlopeEstimator dc_estimator(priors, 0.1);  // 10 classes

  // Policy factory table (fresh policy per run: policies are stateful).
  struct PolicySpec {
    const char* name;
    std::function<std::unique_ptr<sched::SchedulingPolicy>()> make;
  };
  // All RTDeepIoT variants know the (equal) stage execution time, so their
  // planners skip stages that cannot finish before the deadline — the
  // paper's "no utility is accrued for tasks that are not completed".
  auto greedy = [](const sched::UtilityEstimator& est, std::size_t k) {
    auto policy = std::make_unique<sched::GreedyUtilityPolicy>(est, k);
    policy->set_stage_cost_hint(10.0);
    return policy;
  };
  const std::vector<PolicySpec> policies = {
      {"RTDeepIoT-1", [&] { return greedy(gp_estimator, 1); }},
      {"RTDeepIoT-2", [&] { return greedy(gp_estimator, 2); }},
      {"RTDeepIoT-3", [&] { return greedy(gp_estimator, 3); }},
      {"RTDeepIoT-DC-1", [&] { return greedy(dc_estimator, 1); }},
      {"RTDeepIoT-DC-2", [&] { return greedy(dc_estimator, 2); }},
      {"RTDeepIoT-DC-3", [&] { return greedy(dc_estimator, 3); }},
      {"RR", [] { return std::make_unique<sched::RoundRobinPolicy>(); }},
      {"FIFO", [] { return std::make_unique<sched::FifoPolicy>(); }},
      {"EDF*", [] { return std::make_unique<sched::EarliestDeadlinePolicy>(); }},
  };

  // Fig. 4 setup: equal stage times (the paper's optimality condition),
  // per-image deadline, shared worker pool. Load crosses saturation
  // between N=5 and N=10.
  const sched::StageCostModel costs{{10.0, 10.0, 10.0}, 0.0};
  sched::SimulationConfig sim_cfg;
  sim_cfg.num_workers = 4;

  std::vector<std::vector<PolicyResult>> results(
      policies.size(), std::vector<PolicyResult>(std::size(kConcurrency)));
  std::vector<std::vector<std::size_t>> exit_hist(std::size(kConcurrency),
                                                  std::vector<std::size_t>(4, 0));

  for (std::size_t ci = 0; ci < std::size(kConcurrency); ++ci) {
    const std::size_t n = kConcurrency[ci];
    for (std::size_t trial = 0; trial < kTrials; ++trial) {
      sched::WorkloadConfig wl;
      wl.num_services = n;
      wl.tasks_per_service = 30;
      wl.mean_interarrival_ms = 45.0;
      wl.deadline_ms = 70.0;
      Rng wl_rng(1000 * n + trial);
      const auto tasks = sched::build_workload(test_eval, wl, wl_rng);
      for (std::size_t pi = 0; pi < policies.size(); ++pi) {
        auto policy = policies[pi].make();
        const sched::SimulationResult r = simulate(tasks, *policy, costs, sim_cfg);
        results[pi][ci].mean_acc += r.mean_accuracy() / kTrials;
        results[pi][ci].std_acc += r.std_accuracy() / kTrials;
        results[pi][ci].stages_per_task += r.mean_stages_per_task() / kTrials;
        results[pi][ci].aborted += static_cast<double>(r.aborted_stage_executions) / kTrials;
        if (pi == 0)  // RTDeepIoT-1 exit histogram for the ablation section
          for (std::size_t s = 0; s < r.exit_stage_histogram.size() && s < 4; ++s)
            exit_hist[ci][s] += r.exit_stage_histogram[s];
      }
    }
  }

  auto print_table = [&](const char* title, const std::vector<std::size_t>& rows,
                         auto field) {
    std::printf("%s\n%-16s", title, "policy");
    for (std::size_t n : kConcurrency) std::printf("  N=%-5zu", n);
    std::printf("\n");
    for (std::size_t pi : rows) {
      std::printf("%-16s", policies[pi].name);
      for (std::size_t ci = 0; ci < std::size(kConcurrency); ++ci)
        std::printf("  %6.1f ", field(results[pi][ci]) * 100.0);
      std::printf("\n");
    }
    std::printf("\n");
  };

  std::printf("== Fig. 4: scheduling scalability (3-stage ResNet) ==\n");
  std::printf("workers=4, stage=10ms, deadline=70ms, %zu tasks/stream, %zu trials\n\n",
              static_cast<std::size_t>(30), kTrials);
  print_table("[4a] mean service accuracy (%) — RTDeepIoT-k vs RR",
              {0, 1, 2, 6}, [](const PolicyResult& r) { return r.mean_acc; });
  print_table("[4b] mean service accuracy (%) — RTDeepIoT-1 vs DC variants vs FIFO",
              {0, 3, 4, 5, 7}, [](const PolicyResult& r) { return r.mean_acc; });
  print_table("[4c] std of service accuracy (%) — fairness, all policies",
              {0, 1, 2, 3, 4, 5, 6, 7, 8},
              [](const PolicyResult& r) { return r.std_acc; });

  const auto& rt = results[0];
  const auto& rr = results[6];
  const auto& fifo = results[7];
  std::printf("shape checks at N=10: RTDeepIoT-1 > RR: %s; RTDeepIoT-1 > FIFO: %s; "
              "RTDeepIoT-1 std < FIFO std: %s\n\n",
              rt[2].mean_acc > rr[2].mean_acc ? "yes" : "NO",
              rt[2].mean_acc > fifo[2].mean_acc ? "yes" : "NO",
              rt[2].std_acc < fifo[2].std_acc ? "yes" : "NO");

  // ---- ablations ----------------------------------------------------------
  bench::print_rule();
  std::printf("ablation: executed stages per task and wasted (aborted) stage runs\n");
  std::printf("%-16s", "policy");
  for (std::size_t n : kConcurrency) std::printf("  N=%zu st/ab ", n);
  std::printf("\n");
  for (std::size_t pi : {std::size_t{0}, std::size_t{6}, std::size_t{7}}) {
    std::printf("%-16s", policies[pi].name);
    for (std::size_t ci = 0; ci < std::size(kConcurrency); ++ci)
      std::printf("  %4.2f/%-5.1f", results[pi][ci].stages_per_task,
                  results[pi][ci].aborted);
    std::printf("\n");
  }
  std::printf("\nablation: RTDeepIoT-1 last-executed-stage histogram "
              "(tasks stopped after stage s; 0 = none ran)\n");
  std::printf("%-8s %8s %8s %8s %8s\n", "N", "none", "stage1", "stage2", "stage3");
  for (std::size_t ci = 0; ci < std::size(kConcurrency); ++ci)
    std::printf("%-8zu %8zu %8zu %8zu %8zu\n", kConcurrency[ci], exit_hist[ci][0],
                exit_hist[ci][1], exit_hist[ci][2], exit_hist[ci][3]);
  std::printf("(under overload the utility scheduler spreads stage-1 executions "
              "across tasks instead of finishing few tasks end-to-end)\n");
  return 0;
}
