// Regenerates paper Table IV: collaborative deep IoT inferencing on the
// PETS-like eight-camera world (DESIGN.md §2 substitution).
//
//   paper:   approach        detection accuracy   recognition latency
//            Individual            68%                 550 ms
//            Collaborative         75.5%                25 ms
//
// Plus the §IV-C extensions: rogue-camera injection (the paper: false boxes
// "can reduce the people detection accuracy of other peer cameras by over
// 20%") and trust-based resilience, and the collaboration-brokering
// correlation matrix.
#include <cstdio>

#include "collab/experiment.hpp"

using namespace eugene;

namespace {

collab::CollabExperimentConfig base_config() {
  collab::CollabExperimentConfig cfg;
  cfg.world.num_people = 12;
  cfg.world.width = 100.0;
  cfg.world.height = 100.0;
  cfg.cameras = collab::ring_of_cameras(cfg.world, 8, 1.2, 85.0);
  // Per-camera detector quality calibrated so the individual baseline lands
  // near the paper's 68% counting accuracy (see EXPERIMENTS.md).
  for (auto& cam : cfg.cameras) {
    cam.detect_base = 0.99;
    cam.detect_range_penalty = 0.45;
    cam.occlusion_miss = 0.4;
    cam.false_positives_per_frame = 0.25;
    cam.position_noise_m = 0.8;
  }
  cfg.num_frames = 400;
  cfg.seed = 7;
  return cfg;
}

void print_metrics(const char* name, const collab::CollabMetrics& m) {
  std::printf("%-24s %10.1f%% %12.1f ms %9.2f %10.2f\n", name,
              m.detection_accuracy * 100.0, m.mean_latency_ms, m.recall, m.precision);
}

}  // namespace

int main() {
  std::printf("== Table IV: collaborative deep IoT inferencing (8-camera world) ==\n\n");
  std::printf("%-24s %11s %15s %9s %10s\n", "approach", "accuracy", "latency", "recall",
              "precision");

  const collab::CollabExperimentConfig cfg = base_config();
  const collab::CollabMetrics individual = collab::run_individual(cfg);
  const collab::CollabMetrics collaborative = collab::run_collaborative(cfg);
  print_metrics("Individual", individual);
  print_metrics("Collaborative", collaborative);
  std::printf("\npaper reference:         Individual 68%% / 550 ms,  Collaborative "
              "75.5%% / 25 ms\n");
  std::printf("shape checks: accuracy gain %.1f pts (paper ~7.5); latency ratio "
              "%.0fx (paper ~22x)\n\n",
              (collaborative.detection_accuracy - individual.detection_accuracy) * 100.0,
              individual.mean_latency_ms / collaborative.mean_latency_ms);

  // ---- §IV-C resilience ----------------------------------------------------
  std::printf("------------------------------------------------------------------\n");
  std::printf("resilience (rogue camera 0 injecting 4 false boxes/frame):\n");
  collab::CollabExperimentConfig rogue_cfg = cfg;
  rogue_cfg.rogue = collab::RogueConfig{0, 4.0};
  rogue_cfg.trust_enabled = false;
  const collab::CollabMetrics attacked = collab::run_collaborative(rogue_cfg);
  rogue_cfg.trust_enabled = true;
  const collab::CollabMetrics defended = collab::run_collaborative(rogue_cfg);
  print_metrics("Collab + rogue", attacked);
  print_metrics("Collab + rogue + trust", defended);
  std::printf("accuracy drop from rogue boxes: %.1f pts; recovered by trust "
              "filtering: %.1f pts\n\n",
              (collaborative.detection_accuracy - attacked.detection_accuracy) * 100.0,
              (defended.detection_accuracy - attacked.detection_accuracy) * 100.0);

  // ---- §IV-C brokering -------------------------------------------------------
  std::printf("------------------------------------------------------------------\n");
  std::printf("collaboration brokering: detection-count correlation matrix\n    ");
  const auto corr = collab::count_correlation_matrix(cfg);
  for (std::size_t j = 0; j < corr.size(); ++j) std::printf("  C%zu  ", j);
  std::printf("\n");
  for (std::size_t i = 0; i < corr.size(); ++i) {
    std::printf("C%zu  ", i);
    for (std::size_t j = 0; j < corr.size(); ++j) std::printf("%+.2f ", corr[i][j]);
    std::printf("\n");
  }
  const auto pairs = collab::discover_collaborators(corr, 0.3);
  std::printf("proposed collaborator pairs (corr >= 0.3): ");
  for (const auto& [a, b] : pairs) std::printf("(C%zu,C%zu) ", a, b);
  std::printf("\n(Eugene \"discovers such correlations ... and establishes the "
              "identity of collaborators\" from inference metadata alone)\n");
  return 0;
}
