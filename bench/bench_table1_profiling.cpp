// Regenerates paper Table I: execution time of 3×3 convolutional layers with
// stride 1, same padding, 224×224 input — demonstrating that time is a
// strongly non-linear function of FLOPs.
//
// Three views are printed:
//   1. the paper's published Nexus-5 numbers next to our fitted mobile cost
//      model (DESIGN.md §2 substitution for the phone);
//   2. real measured times of Eugene's own conv kernels at a CPU-budget
//      scale (64×64 input, same channel configurations) — the qualitative
//      orderings must survive;
//   3. the FastDeepIoT-style piecewise-linear regression fitted to a sweep
//      of real measurements, with its R².
#include <cstdio>

#include "profile/cost_model.hpp"
#include "profile/linear_region.hpp"
#include "profile/timing.hpp"

using namespace eugene;

namespace {

tensor::Conv2dGeometry geometry(std::size_t cin, std::size_t cout, std::size_t hw) {
  tensor::Conv2dGeometry g;
  g.in_channels = cin;
  g.out_channels = cout;
  g.in_height = hw;
  g.in_width = hw;
  return g;
}

struct Row {
  const char* name;
  std::size_t cin;
  std::size_t cout;
  double paper_ms;
};

constexpr Row kTable1[] = {
    {"CNN1", 8, 32, 114.9},
    {"CNN2", 32, 8, 300.2},
    {"CNN3", 66, 32, 908.3},
    {"CNN4", 43, 64, 751.7},
};

}  // namespace

int main() {
  std::printf("== Table I: conv layer execution time vs FLOPs ==\n\n");

  // --- view 1: paper numbers vs the fitted analytic cost model ------------
  const profile::MobileConvCostModel nexus = profile::MobileConvCostModel::nexus5_reference();
  std::printf("[1] Nexus-5 (paper) vs fitted cost model, 224x224 input\n");
  std::printf("(FLOPs below use the standard 2*MAC convention; the paper's FLOPs\n"
              " column is ~2x larger, a counting-convention difference only)\n");
  std::printf("%-6s %10s %12s %14s %14s\n", "net", "channels", "FLOPs", "paper ms",
              "model ms");
  for (const Row& row : kTable1) {
    const auto g = geometry(row.cin, row.cout, 224);
    std::printf("%-6s %4zu->%-4zu %10.1fM %14.1f %14.1f\n", row.name, row.cin, row.cout,
                g.flops() / 1e6, row.paper_ms, nexus.predict_ms(g));
  }
  std::printf("fitted parameters: alpha=%.3g ms/elem, peak=%.3g FLOP/ms, knee=%.1f\n",
              nexus.alpha_per_element(), nexus.peak_flops_per_ms(),
              nexus.efficiency_knee());
  std::printf("shape checks: CNN2/CNN1 time ratio = %.2f (paper 2.61, equal FLOPs); "
              "CNN3 > CNN4: %s (paper: yes, with 23%% fewer FLOPs)\n\n",
              nexus.predict_ms(geometry(32, 8, 224)) / nexus.predict_ms(geometry(8, 32, 224)),
              nexus.predict_ms(geometry(66, 32, 224)) > nexus.predict_ms(geometry(43, 64, 224))
                  ? "yes"
                  : "NO");

  // --- view 2: real measurements of our kernels at CPU scale --------------
  std::printf("[2] Eugene conv kernels measured on this machine, 64x64 input\n");
  std::printf("%-6s %10s %12s %14s\n", "net", "channels", "FLOPs", "measured ms");
  profile::TimingConfig timing;
  timing.repeats = 5;
  std::vector<profile::ConvMeasurement> measured;
  for (const Row& row : kTable1) {
    const auto g = geometry(row.cin, row.cout, 64);
    const double ms = profile::measure_conv_ms(g, timing);
    measured.push_back({g, ms});
    std::printf("%-6s %4zu->%-4zu %10.1fM %14.3f\n", row.name, row.cin, row.cout,
                g.flops() / 1e6, ms);
  }
  const double ratio21 = measured[1].time_ms / measured[0].time_ms;
  std::printf("equal-FLOPs ratio CNN2/CNN1 on this CPU: %.2f (>1 reproduces the "
              "Table I non-linearity)\n\n", ratio21);

  // --- view 3: FastDeepIoT piecewise-linear execution-time model ----------
  // Fitted on the *mobile* cost surface (Nexus-5 model over a channel
  // sweep), where the FLOPs/time relation is strongly non-linear. On this
  // desktop CPU the relation is much closer to linear — exactly why the
  // paper profiles the deployment device rather than assuming FLOPs.
  std::printf("[3] piecewise-linear execution-time model on the mobile cost surface\n");
  std::vector<std::array<double, 3>> features;
  std::vector<double> times;
  for (std::size_t cin = 4; cin <= 96; cin += 8) {
    for (std::size_t cout = 4; cout <= 96; cout += 8) {
      const auto g = geometry(cin, cout, 224);
      features.push_back({static_cast<double>(cin), static_cast<double>(cout), g.flops()});
      times.push_back(nexus.predict_ms(g));
    }
  }
  tensor::Tensor x({features.size(), 3});
  for (std::size_t i = 0; i < features.size(); ++i)
    for (std::size_t j = 0; j < 3; ++j) x.at(i, j) = static_cast<float>(features[i][j]);
  profile::PiecewiseLinearModel piecewise;
  piecewise.fit(x, times);

  // A FLOPs-only straight line as the strawman the paper argues against.
  tensor::Tensor flops_only({features.size(), 1});
  for (std::size_t i = 0; i < features.size(); ++i)
    flops_only.at(i, 0) = static_cast<float>(features[i][2]);
  profile::PiecewiseLinearModel strawman;
  profile::RegionModelConfig one_region;
  one_region.max_depth = 0;
  strawman.fit(flops_only, times, one_region);

  std::printf("sweep points: %zu\n", times.size());
  std::printf("piecewise model (C_in, C_out, FLOPs): regions = %zu, R^2 = %.3f\n",
              piecewise.num_regions(), piecewise.r_squared(x, times));
  std::printf("FLOPs-only straight line:             regions = 1, R^2 = %.3f\n",
              strawman.r_squared(flops_only, times));
  std::printf("shape check: piecewise beats FLOPs-only: %s (the paper's point — "
              "\"counting FLOPs does not lead to good estimates\")\n",
              piecewise.r_squared(x, times) > strawman.r_squared(flops_only, times)
                  ? "yes" : "NO");
  return 0;
}
