// Telemetry suite (DESIGN.md §12 "Observability model"): the lock-free
// latency histogram's bucket math and nearest-rank quantile semantics, the
// metrics registry's round-trippable text snapshot, the trace recorder's
// ring discipline, and — through the chaos seams — that the spans recorded
// for faulted requests tell the story the injected faults wrote: a sick
// replica shows up as stage_error on worker 0, a forced-lost hedge race
// shows hedge + cancel, a forced brown-out stamps the admission record.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <thread>

#include "calib/evaluation.hpp"
#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/histogram.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "gp/confidence_curve.hpp"
#include "nn/staged_model.hpp"
#include "sched/live.hpp"
#include "serving/registry.hpp"
#include "serving/server.hpp"

namespace eugene {
namespace {

using telemetry::LatencyHistogram;
using telemetry::TraceEvent;
using telemetry::TraceEventKind;
using telemetry::TraceRecorder;

/// Disarms every failpoint on entry and exit of a test body.
struct FailpointGuard {
  FailpointGuard() { FailpointRegistry::instance().disarm_all(); }
  ~FailpointGuard() { FailpointRegistry::instance().disarm_all(); }
};

nn::StagedResNetConfig tiny_model_config() {
  nn::StagedResNetConfig cfg;
  cfg.in_channels = 2;
  cfg.height = 8;
  cfg.width = 8;
  cfg.num_classes = 4;
  cfg.stage_channels = {3, 4};
  cfg.head_hidden = 8;
  return cfg;
}

constexpr std::size_t kStages = 2;  // tiny_model_config has two stages

calib::StagedEvaluation fake_eval() {
  calib::StagedEvaluation eval;
  eval.records.resize(kStages);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const double base = rng.uniform(0.1, 0.9);
    for (std::size_t s = 0; s < kStages; ++s) {
      calib::StageRecord r;
      r.confidence = static_cast<float>(std::min(
          1.0, base + 0.2 * (static_cast<double>(s) + rng.uniform(0.0, 0.1))));
      eval.records[s].push_back(r);
    }
  }
  return eval;
}

gp::ConfidenceCurveModel make_curves() {
  gp::ConfidenceCurveModel curves;
  curves.fit(fake_eval());
  return curves;
}

std::vector<tensor::Tensor> make_inputs(std::size_t n, std::uint64_t seed = 3) {
  Rng rng(seed);
  std::vector<tensor::Tensor> inputs;
  inputs.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    inputs.push_back(tensor::Tensor::randn({2, 8, 8}, rng));
  return inputs;
}

std::vector<std::unique_ptr<nn::StagedModel>> make_replicas(std::size_t workers) {
  nn::StagedModel model = nn::build_staged_resnet(tiny_model_config());
  return sched::replicate_staged_model(model, workers);
}

struct ServerHarness {
  serving::ModelRegistry registry;
  std::size_t handle;

  ServerHarness()
      : handle(registry.add("tiny", nn::build_staged_resnet(tiny_model_config()))) {
    serving::ModelEntry& e = registry.entry(handle);
    e.curves.fit(fake_eval());
    e.costs.stage_ms = {1.0, 1.0};
  }

  serving::ModelEntry& entry() { return registry.entry(handle); }
};

/// Count of events of `kind` in a span's event list.
std::size_t count_kind(const std::vector<TraceEvent>& events, TraceEventKind kind) {
  return static_cast<std::size_t>(
      std::count_if(events.begin(), events.end(),
                    [kind](const TraceEvent& e) { return e.kind == kind; }));
}

// ---------------------------------------------------------------------------
// LatencyHistogram: bucket math
// ---------------------------------------------------------------------------

TEST(Histogram, SlotOfHandlesEdgesAndGarbage) {
  EXPECT_EQ(LatencyHistogram::slot_of(0.0), 0u);
  EXPECT_EQ(LatencyHistogram::slot_of(-1.0), 0u);
  EXPECT_EQ(LatencyHistogram::slot_of(std::numeric_limits<double>::quiet_NaN()), 0u);
  // Below the range minimum (2^-10 ms) is underflow.
  EXPECT_EQ(LatencyHistogram::slot_of(std::ldexp(1.0, -11)), 0u);
  EXPECT_EQ(LatencyHistogram::slot_of(1e-300), 0u);
  // The range minimum itself is the first real bucket.
  EXPECT_EQ(LatencyHistogram::slot_of(std::ldexp(1.0, LatencyHistogram::kMinExp)), 1u);
  // At and above the range maximum (2^14 ms) is overflow.
  EXPECT_EQ(LatencyHistogram::slot_of(std::ldexp(1.0, LatencyHistogram::kMaxExp)),
            LatencyHistogram::kBuckets + 1);
  EXPECT_EQ(LatencyHistogram::slot_of(std::numeric_limits<double>::infinity()),
            LatencyHistogram::kBuckets + 1);
}

TEST(Histogram, BucketEdgesAreConsistentWithSlotOf) {
  for (std::size_t s = 1; s <= LatencyHistogram::kBuckets; ++s) {
    const double lower = LatencyHistogram::bucket_lower(s);
    const double upper = LatencyHistogram::bucket_upper(s);
    EXPECT_LT(lower, upper) << "slot " << s;
    // The inclusive lower edge maps back to its own slot; the exclusive
    // upper edge is the next slot's lower edge.
    EXPECT_EQ(LatencyHistogram::slot_of(lower), s);
    if (s < LatencyHistogram::kBuckets) {
      EXPECT_EQ(upper, LatencyHistogram::bucket_lower(s + 1));
    }
    // ~19% relative resolution: bucket width is at most 25% of its lower edge.
    EXPECT_LE(upper / lower, 1.25 + 1e-12);
  }
}

TEST(Histogram, RecordAndCountIncludeUnderAndOverflow) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  h.record(1.0);
  h.record(-3.0);   // underflow
  h.record(1e9);    // overflow
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(LatencyHistogram::kBuckets + 1), 1u);
}

// ---------------------------------------------------------------------------
// LatencyHistogram: nearest-rank quantile semantics (the satellite bugfix —
// the old floor-rank form min(N-1, ⌊qN⌋) returned the max for q=0.5 over two
// samples)
// ---------------------------------------------------------------------------

TEST(Histogram, QuantileOfEmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.quantile(1.0), 0.0);
}

TEST(Histogram, QuantileSingleSampleAnswersEveryQ) {
  LatencyHistogram h;
  h.record(4.0);
  const double expected = LatencyHistogram::bucket_upper(LatencyHistogram::slot_of(4.0));
  EXPECT_EQ(expected, 5.0);  // 4 ms bucket: [4, 5)
  for (double q : {0.0, 0.01, 0.5, 0.95, 1.0})
    EXPECT_EQ(h.quantile(q), expected) << "q=" << q;
}

TEST(Histogram, QuantileTwoSamplesMedianIsTheLowerOne) {
  LatencyHistogram h;
  h.record(1.0);
  h.record(2.0);
  // Nearest-rank: rank(0.5) = ceil(0.5 * 2) = 1 → the first sample's bucket.
  // The replaced floor-rank implementation indexed min(1, ⌊0.5·2⌋) = 1 and
  // answered the *max* here.
  EXPECT_EQ(h.quantile(0.5), 1.25);  // upper edge of [1, 1.25)
  EXPECT_EQ(h.quantile(1.0), 2.5);   // q=1 is always the max: [2, 2.5)
}

TEST(Histogram, QuantileNearestRankOverKnownWindow) {
  // Ten samples in ten distinct buckets: 1, 2, 4, ..., 512 ms.
  LatencyHistogram h;
  for (int e = 0; e < 10; ++e) h.record(std::ldexp(1.0, e));
  // rank(0.5) = ceil(5) = 5 → 5th smallest = 16 ms, bucket [16, 20).
  EXPECT_EQ(h.quantile(0.5), 20.0);
  // rank(0.95) = ceil(9.5) = 10 → the max = 512 ms, bucket [512, 640).
  EXPECT_EQ(h.quantile(0.95), 640.0);
  // rank(0.05) = ceil(0.5) = 1 → the min = 1 ms, bucket [1, 1.25).
  EXPECT_EQ(h.quantile(0.05), 1.25);
  // q is clamped into [0, 1].
  EXPECT_EQ(h.quantile(-3.0), h.quantile(0.0));
  EXPECT_EQ(h.quantile(7.0), h.quantile(1.0));
}

TEST(Histogram, QuantileOverflowAnswersRangeMaximum) {
  LatencyHistogram h;
  h.record(1e9);
  EXPECT_EQ(h.quantile(1.0), std::ldexp(1.0, LatencyHistogram::kMaxExp));
}

TEST(Histogram, MergeAggregatesBucketwise) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.record(1.0);
  a.record(1.0);
  b.record(64.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.quantile(0.5), 1.25);
  EXPECT_EQ(a.quantile(1.0), 80.0);  // 64 ms bucket: [64, 80)
  EXPECT_EQ(b.count(), 1u);          // source is untouched
}

TEST(Histogram, ResetZeroesEverything) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.record(static_cast<double>(i));
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  for (std::size_t s = 0; s < LatencyHistogram::kSlots; ++s)
    EXPECT_EQ(h.bucket_count(s), 0u);
}

TEST(Histogram, ConcurrentRecordersLoseNothing) {
  LatencyHistogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i)
        h.record(0.5 + static_cast<double>((t * kPerThread + i) % 1000));
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  std::uint64_t sum = 0;
  for (std::size_t s = 0; s < LatencyHistogram::kSlots; ++s)
    sum += h.bucket_count(s);
  EXPECT_EQ(sum, h.count());
}

// ---------------------------------------------------------------------------
// MetricsRegistry + text codec
// ---------------------------------------------------------------------------

TEST(Metrics, CounterAndGaugeBasics) {
  telemetry::MetricsRegistry reg;
  telemetry::Counter& c = reg.counter("t.count");
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  telemetry::Gauge& g = reg.gauge("t.level");
  g.set(2.5);
  EXPECT_EQ(g.value(), 2.5);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
}

TEST(Metrics, SameNameAnswersSameInstrument) {
  telemetry::MetricsRegistry reg;
  EXPECT_EQ(&reg.counter("t.a"), &reg.counter("t.a"));
  EXPECT_NE(&reg.counter("t.a"), &reg.counter("t.b"));
  EXPECT_EQ(&reg.histogram("t.h"), &reg.histogram("t.h"));
}

TEST(Metrics, RejectsNamesWithWhitespace) {
  telemetry::MetricsRegistry reg;
  EXPECT_THROW(reg.counter("bad name"), InvalidArgument);
  EXPECT_THROW(reg.gauge("bad\tname"), InvalidArgument);
  EXPECT_THROW(reg.histogram("bad\nname"), InvalidArgument);
  EXPECT_THROW(reg.counter(""), InvalidArgument);
}

TEST(Metrics, SnapshotTextRoundTrips) {
  telemetry::MetricsRegistry reg;
  reg.counter("sched.live.hedges_issued").inc(3);
  reg.counter("sched.live.breaker_trips");  // registered, zero
  reg.gauge("serving.brownout.level").set(1.0);
  reg.gauge("t.ratio").set(0.1);  // not exactly representable: %.17g matters
  telemetry::LatencyHistogram& h = reg.histogram("sched.stage_latency_ms.stage0");
  for (int i = 0; i < 42; ++i) h.record(1.0 + static_cast<double>(i % 7));
  reg.histogram("t.empty");  // histogram with no samples → "buckets -"

  const std::string text = reg.snapshot_text();
  EXPECT_EQ(text.rfind("# eugene-metrics v1\n", 0), 0u);

  const telemetry::MetricsSnapshot snap = telemetry::parse_metrics_text(text);
  EXPECT_EQ(snap.counters.at("sched.live.hedges_issued"), 3u);
  EXPECT_EQ(snap.counters.at("sched.live.breaker_trips"), 0u);
  EXPECT_EQ(snap.gauges.at("serving.brownout.level"), 1.0);
  EXPECT_EQ(snap.gauges.at("t.ratio"), 0.1);  // exact double round trip

  const auto& hist = snap.histograms.at("sched.stage_latency_ms.stage0");
  EXPECT_EQ(hist.count, 42u);
  EXPECT_EQ(hist.p50, h.quantile(0.50));
  EXPECT_EQ(hist.p99, h.quantile(0.99));
  // Exact bucket-level fidelity: rebuild and compare every slot.
  telemetry::LatencyHistogram rebuilt;
  for (const auto& [slot, n] : hist.buckets) rebuilt.add_to_bucket(slot, n);
  EXPECT_EQ(rebuilt.count(), h.count());
  for (std::size_t s = 0; s < telemetry::LatencyHistogram::kSlots; ++s)
    EXPECT_EQ(rebuilt.bucket_count(s), h.bucket_count(s)) << "slot " << s;
  EXPECT_EQ(rebuilt.quantile(0.5), h.quantile(0.5));

  EXPECT_EQ(snap.histograms.at("t.empty").count, 0u);
  EXPECT_TRUE(snap.histograms.at("t.empty").buckets.empty());
}

TEST(Metrics, ParseRejectsGarbage) {
  using telemetry::parse_metrics_text;
  // Wrong or missing header.
  EXPECT_THROW(parse_metrics_text(""), CorruptionError);
  EXPECT_THROW(parse_metrics_text("counter a 1\n"), CorruptionError);
  const std::string hdr = "# eugene-metrics v1\n";
  // Unknown line type.
  EXPECT_THROW(parse_metrics_text(hdr + "meter a 1\n"), CorruptionError);
  // Malformed numbers.
  EXPECT_THROW(parse_metrics_text(hdr + "counter a pancake\n"), CorruptionError);
  EXPECT_THROW(parse_metrics_text(hdr + "counter a 1x\n"), CorruptionError);
  EXPECT_THROW(parse_metrics_text(hdr + "gauge a 1..5\n"), CorruptionError);
  // Truncated lines.
  EXPECT_THROW(parse_metrics_text(hdr + "counter a\n"), CorruptionError);
  EXPECT_THROW(parse_metrics_text(hdr + "histogram h count 1 p50 1\n"),
               CorruptionError);
  // Histogram internal consistency.
  EXPECT_THROW(
      parse_metrics_text(hdr + "histogram h count 2 p50 1 p99 1 buckets 5:1\n"),
      CorruptionError);  // bucket counts don't sum to count
  EXPECT_THROW(
      parse_metrics_text(hdr + "histogram h count 1 p50 1 p99 1 buckets -\n"),
      CorruptionError);  // non-zero count with no buckets
  EXPECT_THROW(
      parse_metrics_text(hdr +
                         "histogram h count 2 p50 1 p99 1 buckets 5:1,5:1\n"),
      CorruptionError);  // duplicate slot
  EXPECT_THROW(
      parse_metrics_text(hdr + "histogram h count 1 p50 1 p99 1 buckets 999:1\n"),
      CorruptionError);  // slot out of range
  EXPECT_THROW(
      parse_metrics_text(hdr + "histogram h count 1 p50 1 p99 1 buckets 5:0\n"),
      CorruptionError);  // empty bucket listed
  // A valid dump still parses after all that.
  EXPECT_NO_THROW(parse_metrics_text(
      hdr + "counter a 1\ngauge b 2\nhistogram h count 1 p50 1 p99 1 buckets 5:1\n"));
}

// ---------------------------------------------------------------------------
// TraceRecorder
// ---------------------------------------------------------------------------

TEST(Trace, NullHandleIsInert) {
  telemetry::SpanHandle null;
  EXPECT_FALSE(static_cast<bool>(null));
  EXPECT_EQ(null.id(), 0u);
  null.event(TraceEventKind::kDispatch, 1.0, 0, 0, 0.0);  // must not crash
}

TEST(Trace, BeginSpanRecordsAdmitWithServiceClass) {
  TraceRecorder rec(16);
  telemetry::SpanHandle span = rec.begin_span(12.5, 2);
  EXPECT_TRUE(static_cast<bool>(span));
  EXPECT_NE(span.id(), 0u);
  const auto events = rec.span(span.id());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, TraceEventKind::kAdmit);
  EXPECT_EQ(events[0].t_ms, 12.5);
  EXPECT_EQ(events[0].value, 2.0);
}

TEST(Trace, SpanIdsAreUniqueAndNeverZero) {
  TraceRecorder rec(4);
  const auto a = rec.begin_span(0.0);
  const auto b = rec.begin_span(0.0);
  EXPECT_NE(a.id(), 0u);
  EXPECT_NE(b.id(), 0u);
  EXPECT_NE(a.id(), b.id());
}

TEST(Trace, RingOverwritesOldestAndCountsDrops) {
  TraceRecorder rec(4);
  telemetry::SpanHandle span = rec.begin_span(0.0);  // event #1 (admit)
  for (int i = 1; i <= 5; ++i)
    span.event(TraceEventKind::kDispatch, static_cast<double>(i));
  // 6 events into a 4-slot ring: the admit and the first dispatch fell off.
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(rec.dropped(), 2u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].kind, TraceEventKind::kDispatch);
    EXPECT_EQ(events[i].t_ms, static_cast<double>(i + 2));  // oldest first
  }
  rec.clear();
  EXPECT_TRUE(rec.events().empty());
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(Trace, SpanFiltersInterleavedEvents) {
  TraceRecorder rec(16);
  auto a = rec.begin_span(0.0);
  auto b = rec.begin_span(0.0);
  a.event(TraceEventKind::kDispatch, 1.0);
  b.event(TraceEventKind::kDispatch, 2.0);
  a.event(TraceEventKind::kExit, 3.0);
  const auto span_a = rec.span(a.id());
  ASSERT_EQ(span_a.size(), 3u);
  EXPECT_EQ(span_a[0].kind, TraceEventKind::kAdmit);
  EXPECT_EQ(span_a[1].kind, TraceEventKind::kDispatch);
  EXPECT_EQ(span_a[2].kind, TraceEventKind::kExit);
  EXPECT_EQ(rec.span(b.id()).size(), 2u);
  EXPECT_TRUE(rec.span(99999).empty());
}

// ---------------------------------------------------------------------------
// Chaos-seam trace tests: the spans must match the injected faults
// ---------------------------------------------------------------------------

TEST(TraceChaos, SickReplicaSpansShowStageErrorsOnWorkerZero) {
  FailpointGuard guard;
  FailpointRegistry::instance().arm("live.worker.sick", FailpointSpec{});

  auto replicas = make_replicas(2);
  const auto curves = make_curves();
  const auto inputs = make_inputs(8);
  TraceRecorder rec(4096);
  telemetry::MetricsRegistry metrics;
  sched::LiveConfig cfg;
  cfg.max_retries = 3;
  cfg.retry.base_delay_ms = 0.1;
  cfg.health.min_samples = 2;
  cfg.health.ewma_alpha = 0.5;
  cfg.health.error_threshold = 0.5;
  cfg.health.open_cooldown_ms = 60000.0;
  cfg.trace = &rec;
  cfg.metrics = &metrics;
  sched::LiveStats stats;
  const auto results = sched::run_live(replicas, curves, inputs, cfg, &stats);

  ASSERT_EQ(results.size(), inputs.size());
  std::size_t stage_errors = 0;
  for (const auto& r : results) {
    ASSERT_NE(r.span_id, 0u);
    const auto span = rec.span(r.span_id);
    ASSERT_FALSE(span.empty());
    // Every span opens with admission and closes with exit.
    EXPECT_EQ(span.front().kind, TraceEventKind::kAdmit);
    EXPECT_EQ(span.back().kind, TraceEventKind::kExit);
    EXPECT_EQ(span.back().stage, r.stages_run);
    EXPECT_EQ(span.back().value, r.confidence);
    // Timestamps never run backwards within a span.
    for (std::size_t i = 1; i < span.size(); ++i)
      EXPECT_GE(span[i].t_ms, span[i - 1].t_ms);
    // Stage results came from real dispatches: one dispatch/hedge per
    // stage_done at least.
    EXPECT_GE(count_kind(span, TraceEventKind::kDispatch) +
                  count_kind(span, TraceEventKind::kHedge),
              count_kind(span, TraceEventKind::kStageDone));
    for (const auto& ev : span) {
      if (ev.kind == TraceEventKind::kStageError) {
        ++stage_errors;
        // Only replica 0 is sick, and no worker timed out or crashed.
        EXPECT_EQ(ev.worker, 0u);
      }
    }
  }
  // Every injected sick-stage fault left a stage_error event in some span.
  EXPECT_EQ(stage_errors, stats.worker_errors);
  EXPECT_GE(stage_errors, 1u);
  // The run's counters surfaced in the injected registry.
  const auto snap = telemetry::parse_metrics_text(metrics.snapshot_text());
  EXPECT_EQ(snap.counters.at("sched.live.worker_errors"), stats.worker_errors);
  EXPECT_EQ(snap.counters.at("sched.live.breaker_trips"), stats.breaker_trips);
  EXPECT_EQ(snap.counters.at("sched.live.tasks"), inputs.size());
}

TEST(TraceChaos, ForcedLostHedgeRaceSpansShowHedgeAndCancel) {
  FailpointGuard guard;
  FailpointSpec stall;
  stall.kind = FailpointKind::kDelay;
  stall.delay_ms = 150.0;
  FailpointRegistry::instance().arm("live.worker.sick", stall);
  FailpointRegistry::instance().arm("hedge.lose.race", FailpointSpec{});

  auto replicas = make_replicas(2);
  const auto curves = make_curves();
  const auto inputs = make_inputs(8);
  TraceRecorder rec(4096);
  sched::LiveConfig cfg;
  cfg.hedging = true;
  cfg.hedge_quantile = 0.5;
  cfg.hedge_min_ms = 1.0;
  cfg.hedge_min_samples = 4;
  cfg.retry.base_delay_ms = 0.1;
  cfg.health.enabled = false;
  cfg.trace = &rec;
  cfg.metrics = nullptr;
  sched::LiveStats stats;
  const auto results = sched::run_live(replicas, curves, inputs, cfg, &stats);

  ASSERT_EQ(results.size(), inputs.size());
  ASSERT_GE(stats.hedges_issued, 1u);
  std::size_t hedge_events = 0;
  for (const auto& r : results) {
    ASSERT_NE(r.span_id, 0u);
    const auto span = rec.span(r.span_id);
    ASSERT_FALSE(span.empty());
    EXPECT_EQ(span.back().kind, TraceEventKind::kExit);
    const std::size_t hedges = count_kind(span, TraceEventKind::kHedge);
    hedge_events += hedges;
    if (hedges > 0) {
      // The forced-lost race decided against the primary: its cooperative
      // cancellation must be on the record alongside the hedge.
      EXPECT_GE(count_kind(span, TraceEventKind::kCancel), 1u)
          << "span " << r.span_id << " hedged but never cancelled the loser";
    }
  }
  // Every hedge the scheduler counted is visible in exactly one span.
  EXPECT_EQ(hedge_events, stats.hedges_issued);
}

TEST(TraceChaos, ForcedBrownoutStampsAdmissionAndShedSpans) {
  FailpointGuard guard;
  FailpointSpec spec;
  spec.max_fires = 1;
  FailpointRegistry::instance().arm("admit.brownout.force", spec);

  ServerHarness harness;
  TraceRecorder rec(4096);
  telemetry::MetricsRegistry metrics;
  serving::ServerConfig cfg;
  cfg.admission_capacity = 8;
  cfg.trace = &rec;
  cfg.metrics = &metrics;
  serving::InferenceServer server(harness.entry(), cfg);
  std::vector<serving::InferenceRequest> requests;
  for (const auto& input : make_inputs(8)) requests.push_back({input, 0});

  // The seam escalates to level 1 → capacity 8 shrinks to 6; requests 6 and
  // 7 brown out.
  const auto responses = server.process_batch(requests);
  ASSERT_EQ(responses.size(), requests.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    const auto& r = responses[i];
    ASSERT_NE(r.span_id, 0u);
    const auto span = rec.span(r.span_id);
    ASSERT_FALSE(span.empty());
    EXPECT_EQ(span.front().kind, TraceEventKind::kAdmit);
    EXPECT_EQ(span.back().kind, TraceEventKind::kExit);
    // Level-1 admission is stamped on every span of the batch.
    ASSERT_EQ(count_kind(span, TraceEventKind::kBrownout), 1u);
    for (const auto& ev : span) {
      if (ev.kind == TraceEventKind::kBrownout) {
        EXPECT_EQ(ev.value, 1.0);
      }
    }
    const std::size_t sheds = count_kind(span, TraceEventKind::kShed);
    if (r.browned_out) {
      EXPECT_TRUE(r.degraded);
      ASSERT_EQ(sheds, 1u);
      // value=1 marks a brown-out shed (the static ceiling alone would have
      // admitted this request).
      for (const auto& ev : span) {
        if (ev.kind == TraceEventKind::kShed) {
          EXPECT_EQ(ev.value, 1.0);
        }
      }
    } else {
      EXPECT_EQ(sheds, 0u);
    }
  }
  EXPECT_EQ(responses[6].browned_out && responses[7].browned_out, true);

  const auto snap = telemetry::parse_metrics_text(metrics.snapshot_text());
  EXPECT_EQ(snap.counters.at("serving.requests"), 8u);
  EXPECT_EQ(snap.counters.at("serving.sheds"), 2u);
  EXPECT_EQ(snap.counters.at("serving.brownout_sheds"), 2u);
  ASSERT_EQ(snap.histograms.count("serving.stage_latency_ms.stage0"), 1u);
  EXPECT_GE(snap.histograms.at("serving.stage_latency_ms.stage0").count, 1u);
}

TEST(TraceChaos, UntracedRunsCarryZeroSpanIds) {
  FailpointGuard guard;
  ServerHarness harness;
  serving::ServerConfig cfg;
  cfg.metrics = nullptr;  // trace defaults to null too
  serving::InferenceServer server(harness.entry(), cfg);
  std::vector<serving::InferenceRequest> requests;
  for (const auto& input : make_inputs(3)) requests.push_back({input, 0});
  const auto responses = server.process_batch(requests);
  for (const auto& r : responses) EXPECT_EQ(r.span_id, 0u);
}

}  // namespace
}  // namespace eugene
