// TSan-targeted stress tests for the concurrent core: thread pool shutdown,
// MPMC channels, the shared FIFO transport, the model registry, the usage
// meter, and the live scheduler. These pass under the plain build too, but
// their real job is to give ThreadSanitizer (the `tsan` CMake preset)
// schedules in which a data race would be visible.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "calib/evaluation.hpp"
#include "common/channel.hpp"
#include "common/fifo_channel.hpp"
#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "data/synthetic_images.hpp"
#include "gp/confidence_curve.hpp"
#include "sched/live.hpp"
#include "serving/registry.hpp"
#include "serving/usage.hpp"

namespace eugene {
namespace {

TEST(Race, ThreadPoolSubmitDuringDestruction) {
  // Tasks re-submit follow-up work while the destructor is already draining;
  // every job (parent and child) must still execute exactly once.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 32; ++i) {
      pool.submit([&pool, &ran] {
        ran.fetch_add(1, std::memory_order_relaxed);
        pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
      });
    }
    // Destruction races the re-submissions from worker threads.
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(Race, ThreadPoolManyProducers) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  std::vector<std::thread> producers;
  producers.reserve(4);
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&pool, &ran] {
      for (int i = 0; i < 200; ++i)
        pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); })
            .wait();
    });
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(ran.load(), 800);
}

TEST(Race, ChannelMpmcConservesItems) {
  Channel<int> ch;
  constexpr int kProducers = 4, kConsumers = 4, kPerProducer = 2000;
  std::atomic<long> sum{0};
  std::atomic<int> count{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto v = ch.receive()) {
        sum.fetch_add(*v, std::memory_order_relaxed);
        count.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ch, p] {
      for (int i = 0; i < kPerProducer; ++i)
        ASSERT_TRUE(ch.send(p * kPerProducer + i));
    });
  }
  for (auto& t : producers) t.join();
  ch.close();
  for (auto& t : consumers) t.join();

  const int n = kProducers * kPerProducer;
  EXPECT_EQ(count.load(), n);
  EXPECT_EQ(sum.load(), static_cast<long>(n) * (n - 1) / 2);
}

TEST(Race, ChannelCloseWhileSendingAndDraining) {
  // The admit-while-draining shape: producers keep admitting until the
  // channel refuses, a closer pulls the plug mid-stream, and consumers must
  // drain exactly the accepted items.
  Channel<int> ch;
  std::atomic<int> accepted{0};
  std::atomic<int> received{0};

  std::vector<std::thread> producers;
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < 50000; ++i) {
        if (!ch.send(i)) return;  // channel closed under us
        accepted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      while (ch.receive()) received.fetch_add(1, std::memory_order_relaxed);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ch.close();
  for (auto& t : producers) t.join();
  for (auto& t : consumers) t.join();

  EXPECT_EQ(received.load(), accepted.load());
  EXPECT_EQ(ch.pending(), 0u);
}

TEST(Race, FifoSharedWriterKeepsFramesIntact) {
  // Multiple threads share one FifoWriter. Frames are larger than PIPE_BUF
  // (4096 on Linux), so without internal locking the pipe would interleave
  // bytes from different frames.
  const std::string path =
      "/tmp/eugene_race_fifo_" + std::to_string(::getpid());
  constexpr int kWriters = 3, kFramesPerWriter = 20;
  constexpr std::size_t kFrameSize = 16 * 1024;

  std::atomic<int> intact{0};
  std::thread reader_thread([&] {
    FifoReader reader(path);
    while (auto frame = reader.read_frame()) {
      ASSERT_EQ(frame->size(), kFrameSize);
      bool uniform = true;
      for (std::uint8_t b : *frame) uniform &= (b == frame->front());
      ASSERT_TRUE(uniform) << "frame interleaved bytes from another writer";
      intact.fetch_add(1, std::memory_order_relaxed);
    }
  });

  {
    FifoWriter writer(path);
    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) {
      writers.emplace_back([&writer, w] {
        const std::vector<std::uint8_t> payload(
            kFrameSize, static_cast<std::uint8_t>('A' + w));
        for (int i = 0; i < kFramesPerWriter; ++i)
          ASSERT_TRUE(writer.write_frame(payload));
      });
    }
    for (auto& t : writers) t.join();
  }  // writer closes -> reader sees EOF
  reader_thread.join();
  EXPECT_EQ(intact.load(), kWriters * kFramesPerWriter);
}

nn::StagedResNetConfig tiny_model_config() {
  nn::StagedResNetConfig cfg;
  cfg.in_channels = 2;
  cfg.height = 8;
  cfg.width = 8;
  cfg.num_classes = 4;
  cfg.stage_channels = {3, 4};
  cfg.head_hidden = 8;
  return cfg;
}

TEST(Race, RegistryConcurrentLookupAndRegister) {
  serving::ModelRegistry registry;
  constexpr int kThreads = 4, kModelsPerThread = 3;
  std::atomic<bool> stop{false};

  std::vector<std::thread> lookups;
  for (int t = 0; t < 2; ++t) {
    lookups.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        if (auto h = registry.find("t0-m0")) {
          // Handles are stable: once found, the entry stays valid even while
          // other threads keep registering.
          ASSERT_LT(*h, registry.size());
          ASSERT_EQ(registry.entry(*h).name, "t0-m0");
        }
      }
    });
  }
  std::vector<std::thread> registrars;
  for (int t = 0; t < kThreads; ++t) {
    registrars.emplace_back([&registry, t] {
      for (int m = 0; m < kModelsPerThread; ++m) {
        const std::string name =
            "t" + std::to_string(t) + "-m" + std::to_string(m);
        const std::size_t h =
            registry.add(name, nn::build_staged_resnet(tiny_model_config()));
        ASSERT_EQ(registry.entry(h).name, name);
      }
    });
  }
  for (auto& t : registrars) t.join();
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : lookups) t.join();

  EXPECT_EQ(registry.size(),
            static_cast<std::size_t>(kThreads * kModelsPerThread));
  for (int t = 0; t < kThreads; ++t)
    for (int m = 0; m < kModelsPerThread; ++m)
      EXPECT_TRUE(registry
                      .find("t" + std::to_string(t) + "-m" + std::to_string(m))
                      .has_value());
}

TEST(Race, UsageMeterConcurrentRecordAndCharge) {
  sched::StageCostModel costs;
  costs.stage_ms = {1.0, 2.0};
  serving::UsageMeter meter(costs, {"a", "b"});

  std::vector<serving::InferenceRequest> requests(4);
  std::vector<serving::InferenceResponse> responses(4);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    requests[i].service_class = i % 2;
    responses[i].stages_run = 2;
  }

  constexpr int kThreads = 4, kBatches = 200;
  std::atomic<bool> stop{false};
  std::thread billing([&] {
    const serving::PricingPolicy pricing;
    while (!stop.load(std::memory_order_relaxed)) {
      // Charges only grow, so a class charge taken first can never exceed a
      // total taken afterwards.
      const double class0 = meter.charge(0, pricing);
      const double total = meter.total_charge(pricing);
      ASSERT_GE(class0, 0.0);
      ASSERT_LE(class0, total);
    }
  });
  std::vector<std::thread> recorders;
  for (int t = 0; t < kThreads; ++t)
    recorders.emplace_back(
        [&] { for (int b = 0; b < kBatches; ++b) meter.record(requests, responses, 2); });
  for (auto& t : recorders) t.join();
  stop.store(true, std::memory_order_relaxed);
  billing.join();

  const auto usage = meter.usage();
  ASSERT_EQ(usage.size(), 2u);
  const std::size_t expected = kThreads * kBatches * 2;  // 2 requests per class
  EXPECT_EQ(usage[0].requests, expected);
  EXPECT_EQ(usage[1].requests, expected);
  EXPECT_EQ(usage[0].stages_executed, expected * 2);
}

TEST(Race, ConcurrentLoggingDoesNotRace) {
  set_log_level(LogLevel::Error);  // lines below threshold: cheap, still locked
  std::vector<std::thread> loggers;
  for (int t = 0; t < 4; ++t) {
    loggers.emplace_back([t] {
      for (int i = 0; i < 500; ++i)
        EUGENE_LOG(Warn) << "thread " << t << " line " << i;
    });
  }
  for (auto& t : loggers) t.join();
  set_log_level(LogLevel::Warn);
}

TEST(Race, LiveSchedulerAdmitWhileDraining) {
  // Two live-scheduler instances run concurrently, each with its own worker
  // replicas; one runs with a deadline tight enough that tasks keep expiring
  // (draining) while the dispatcher is still admitting stages. Exercises the
  // worker threads, both channel directions, and the policy under TSan.
  data::SyntheticImageConfig data_cfg;
  data_cfg.num_classes = 4;
  data_cfg.channels = 2;
  data_cfg.height = 8;
  data_cfg.width = 8;
  Rng rng(17);
  const data::Dataset train = data::generate_images(data_cfg, 60, rng);
  const data::Dataset batch = data::generate_images(data_cfg, 8, rng);

  nn::StagedModel model = nn::build_staged_resnet(tiny_model_config());
  const calib::StagedEvaluation eval = calib::evaluate_staged(model, train);
  gp::ConfidenceCurveModel curves;
  curves.fit(eval);

  auto run_one = [&](double deadline_ms, std::size_t workers) {
    auto replicas = sched::replicate_staged_model(model, workers);
    sched::LiveConfig cfg;
    cfg.deadline_ms = deadline_ms;
    const auto results =
        sched::run_live(replicas, curves, batch.samples, cfg);
    ASSERT_EQ(results.size(), batch.size());
    for (const auto& r : results) ASSERT_LE(r.stages_run, 2u);
  };

  std::thread relaxed([&] { run_one(1e9, 3); });
  std::thread strained([&] {
    for (int rep = 0; rep < 3; ++rep) run_one(0.5, 2);
  });
  relaxed.join();
  strained.join();
}

}  // namespace
}  // namespace eugene
