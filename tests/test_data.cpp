// Tests for the synthetic data generators: determinism, label balance, and
// the central property that *difficulty* controls separability.
#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic_images.hpp"
#include "data/timeseries.hpp"

namespace eugene::data {
namespace {

using tensor::Tensor;

double l2_distance(const Tensor& a, const Tensor& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.numel(); ++i) {
    const double d = a.data()[i] - b.data()[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

TEST(Dataset, PushAndSplit) {
  Dataset d;
  for (std::size_t i = 0; i < 10; ++i)
    d.push(Tensor({2}, static_cast<float>(i)), i % 3, 0.1 * static_cast<double>(i));
  auto [a, b] = split(d, 6);
  EXPECT_EQ(a.size(), 6u);
  EXPECT_EQ(b.size(), 4u);
  EXPECT_EQ(b.labels[0], 6u % 3);
  EXPECT_THROW(split(d, 11), InvalidArgument);
}

TEST(Dataset, FilterLabelsKeepsOnlyRequested) {
  Dataset d;
  for (std::size_t i = 0; i < 12; ++i) d.push(Tensor({1}), i % 4, 0.0);
  const Dataset f = filter_labels(d, {1, 3});
  EXPECT_EQ(f.size(), 6u);
  for (std::size_t label : f.labels) EXPECT_TRUE(label == 1 || label == 3);
}

TEST(SyntheticImages, PrototypesAreDeterministic) {
  SyntheticImageConfig cfg;
  const Tensor a = class_prototype(cfg, 3);
  const Tensor b = class_prototype(cfg, 3);
  for (std::size_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a.data()[i], b.data()[i]);
}

TEST(SyntheticImages, PrototypesDifferAcrossClasses) {
  SyntheticImageConfig cfg;
  for (std::size_t a = 0; a < cfg.num_classes; ++a)
    for (std::size_t b = a + 1; b < cfg.num_classes; ++b)
      EXPECT_GT(l2_distance(class_prototype(cfg, a), class_prototype(cfg, b)), 1.0)
          << "classes " << a << " and " << b;
}

TEST(SyntheticImages, SampleShapeMatchesConfig) {
  SyntheticImageConfig cfg;
  cfg.channels = 2;
  cfg.height = 12;
  cfg.width = 10;
  Rng rng(1);
  const Tensor s = sample_image(cfg, 0, 0.3, rng);
  EXPECT_EQ(s.shape(), (tensor::Shape{2, 12, 10}));
}

TEST(SyntheticImages, DifficultyControlsDistanceToPrototype) {
  SyntheticImageConfig cfg;
  Rng rng(2);
  const Tensor proto = class_prototype(cfg, 5);
  double easy_dist = 0.0, hard_dist = 0.0;
  for (int i = 0; i < 30; ++i) {
    easy_dist += l2_distance(sample_image(cfg, 5, 0.05, rng), proto);
    hard_dist += l2_distance(sample_image(cfg, 5, 0.95, rng), proto);
  }
  EXPECT_LT(easy_dist, hard_dist * 0.65)
      << "easy samples must sit much closer to their class prototype";
}

TEST(SyntheticImages, EasySamplesNearestPrototypeClassification) {
  // A trivial nearest-prototype classifier should get easy samples nearly
  // always right and hard samples much less often — the property the staged
  // scheduler exploits.
  SyntheticImageConfig cfg;
  Rng rng(3);
  auto nearest = [&](const Tensor& x) {
    std::size_t best = 0;
    double best_d = 1e18;
    for (std::size_t c = 0; c < cfg.num_classes; ++c) {
      const double d = l2_distance(x, class_prototype(cfg, c));
      if (d < best_d) {
        best_d = d;
        best = c;
      }
    }
    return best;
  };
  std::size_t easy_ok = 0, hard_ok = 0;
  const int n = 100;
  for (int i = 0; i < n; ++i) {
    const std::size_t label = static_cast<std::size_t>(rng.uniform_int(0, 9));
    easy_ok += nearest(sample_image(cfg, label, 0.05, rng)) == label ? 1 : 0;
    hard_ok += nearest(sample_image(cfg, label, 0.98, rng)) == label ? 1 : 0;
  }
  EXPECT_GT(easy_ok, 90);
  EXPECT_LT(hard_ok, easy_ok - 15);
}

TEST(SyntheticImages, GeneratorHonorsClassWeights) {
  SyntheticImageConfig cfg;
  Rng rng(4);
  std::vector<double> weights(cfg.num_classes, 0.0);
  weights[2] = 3.0;
  weights[7] = 1.0;
  const Dataset d = generate_images_weighted(cfg, 800, weights, rng);
  std::size_t c2 = 0, c7 = 0;
  for (std::size_t label : d.labels) {
    EXPECT_TRUE(label == 2 || label == 7);
    c2 += label == 2 ? 1 : 0;
    c7 += label == 7 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(c2) / 800.0, 0.75, 0.06);
  EXPECT_NEAR(static_cast<double>(c7) / 800.0, 0.25, 0.06);
}

TEST(SyntheticImages, DifficultySkewShiftsDistribution) {
  SyntheticImageConfig easy_cfg;
  easy_cfg.difficulty_skew = 3.0;  // d = u³ → mostly easy
  SyntheticImageConfig flat_cfg;
  flat_cfg.difficulty_skew = 1.0;  // uniform
  Rng rng1(5), rng2(5);
  const Dataset easy = generate_images(easy_cfg, 400, rng1);
  const Dataset flat = generate_images(flat_cfg, 400, rng2);
  const double mean_easy =
      std::accumulate(easy.difficulty.begin(), easy.difficulty.end(), 0.0) / 400.0;
  const double mean_flat =
      std::accumulate(flat.difficulty.begin(), flat.difficulty.end(), 0.0) / 400.0;
  EXPECT_LT(mean_easy, mean_flat - 0.15);
}

TEST(TimeSeries, PrototypeDeterministicAndClassDistinct) {
  TimeSeriesConfig cfg;
  const Tensor a = series_prototype(cfg, 1);
  const Tensor b = series_prototype(cfg, 1);
  for (std::size_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a.data()[i], b.data()[i]);
  EXPECT_GT(l2_distance(series_prototype(cfg, 0), series_prototype(cfg, 1)), 1.0);
}

TEST(TimeSeries, GeneratorShapesAndLabels) {
  TimeSeriesConfig cfg;
  cfg.channels = 3;
  cfg.length = 32;
  Rng rng(6);
  const Dataset d = generate_series(cfg, 60, rng);
  EXPECT_EQ(d.size(), 60u);
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(d.samples[i].shape(), (tensor::Shape{3, 32}));
    EXPECT_LT(d.labels[i], cfg.num_classes);
  }
}

TEST(TimeSeries, DifficultyIncreasesDeviation) {
  TimeSeriesConfig cfg;
  Rng rng(7);
  const Tensor proto = series_prototype(cfg, 2);
  double easy = 0.0, hard = 0.0;
  for (int i = 0; i < 20; ++i) {
    easy += l2_distance(sample_series(cfg, 2, 0.05, rng), proto);
    hard += l2_distance(sample_series(cfg, 2, 0.95, rng), proto);
  }
  EXPECT_LT(easy, hard);
}

}  // namespace
}  // namespace eugene::data
