// End-to-end integration: the full Eugene pipeline at miniature scale —
// generate data → train a staged model → entropy-calibrate → fit confidence
// curves → build a workload → run every scheduling policy through the DES —
// asserting the cross-module contracts and the headline orderings that the
// benches reproduce at full scale.
#include <gtest/gtest.h>

#include <sstream>

#include "calib/calibrators.hpp"
#include "calib/ece.hpp"
#include "core/eugene_service.hpp"
#include "nn/serialize.hpp"
#include "data/synthetic_images.hpp"
#include "sched/partition.hpp"
#include "sched/simulator.hpp"
#include "sched/workload.hpp"
#include "serving/usage.hpp"

namespace eugene {
namespace {

/// Shared miniature pipeline, built once for the whole suite.
class Pipeline : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticImageConfig dc;
    dc.num_classes = 6;
    dc.channels = 2;
    dc.height = 12;
    dc.width = 12;
    dc.difficulty_skew = 1.1;
    Rng rng(71);
    train_ = new data::Dataset(data::generate_images(dc, 500, rng));
    calib_ = new data::Dataset(data::generate_images(dc, 300, rng));
    test_ = new data::Dataset(data::generate_images(dc, 300, rng));

    service_ = new core::EugeneService();
    nn::StagedResNetConfig arch;
    arch.in_channels = 2;
    arch.height = 12;
    arch.width = 12;
    arch.num_classes = 6;
    arch.stage_channels = {6, 10, 14};
    arch.head_hidden = 16;
    nn::StagedTrainConfig tcfg;
    tcfg.epochs = 8;
    handle_ = service_->train("integration", *train_, arch, tcfg);

    calib::EntropyCalibConfig ccfg;
    ccfg.epochs = 80;  // miniature budget keeps the suite fast
    service_->calibrate(handle_, *calib_, ccfg);

    test_eval_ = new calib::StagedEvaluation(
        calib::evaluate_staged(service_->registry().entry(handle_).model, *test_));
  }

  static void TearDownTestSuite() {
    delete test_eval_;
    delete service_;
    delete train_;
    delete calib_;
    delete test_;
    test_eval_ = nullptr;
    service_ = nullptr;
    train_ = calib_ = test_ = nullptr;
  }

  static core::EugeneService* service_;
  static data::Dataset* train_;
  static data::Dataset* calib_;
  static data::Dataset* test_;
  static std::size_t handle_;
  static calib::StagedEvaluation* test_eval_;
};

core::EugeneService* Pipeline::service_ = nullptr;
data::Dataset* Pipeline::train_ = nullptr;
data::Dataset* Pipeline::calib_ = nullptr;
data::Dataset* Pipeline::test_ = nullptr;
std::size_t Pipeline::handle_ = 0;
calib::StagedEvaluation* Pipeline::test_eval_ = nullptr;

TEST_F(Pipeline, ModelLearnsAndAccuracyGrowsWithDepth) {
  const double acc1 = calib::stage_accuracy(*test_eval_, 0);
  const double acc3 = calib::stage_accuracy(*test_eval_, 2);
  EXPECT_GT(acc3, 1.0 / 6.0 + 0.25) << "final stage must beat chance comfortably";
  EXPECT_GE(acc3 + 0.05, acc1) << "depth should not hurt";
}

TEST_F(Pipeline, CalibratedConfidenceTracksAccuracy) {
  const serving::ModelEntry& entry = service_->registry().entry(handle_);
  ASSERT_TRUE(entry.calibrated);
  for (std::size_t s = 0; s < 3; ++s) {
    const double acc = calib::stage_accuracy(*test_eval_, s);
    const double conf = calib::overall_confidence(test_eval_->confidence(s));
    EXPECT_NEAR(conf, acc, 0.15) << "stage " << s;
  }
}

TEST_F(Pipeline, ConfidenceCurvesDriveTheFullSchedulerStack) {
  serving::ModelEntry& entry = service_->registry().entry(handle_);
  ASSERT_TRUE(entry.curves.fitted());

  // Workload replaying real model outputs.
  sched::WorkloadConfig wl;
  wl.num_services = 6;
  wl.tasks_per_service = 20;
  wl.mean_interarrival_ms = 40.0;
  wl.deadline_ms = 60.0;
  Rng wl_rng(5);
  const auto tasks = sched::build_workload(*test_eval_, wl, wl_rng);

  sched::GpUtilityEstimator estimator(entry.curves);
  sched::GreedyUtilityPolicy greedy(estimator, 1);
  greedy.set_stage_cost_hint(10.0);
  sched::RoundRobinPolicy rr;
  sched::FifoPolicy fifo;

  const sched::StageCostModel costs{{10.0, 10.0, 10.0}, 0.0};
  sched::SimulationConfig sim;
  sim.num_workers = 2;  // overloaded: 6 streams on 2 workers

  const auto r_greedy = simulate(tasks, greedy, costs, sim);
  const auto r_rr = simulate(tasks, rr, costs, sim);
  const auto r_fifo = simulate(tasks, fifo, costs, sim);

  // The headline Fig. 4 ordering at miniature scale.
  EXPECT_GT(r_greedy.mean_accuracy(), r_rr.mean_accuracy() - 0.02);
  EXPECT_GT(r_greedy.mean_accuracy(), r_fifo.mean_accuracy());
  // And the utility scheduler wastes less aborted work than FIFO.
  EXPECT_LE(r_greedy.aborted_stage_executions, r_fifo.aborted_stage_executions);
}

TEST_F(Pipeline, ServingEarlyExitConsistentWithEvaluationTable) {
  // Count test samples confidently classified at stage 1 in the evaluation
  // table; the serving path should early-exit a similar fraction.
  const double threshold = 0.9;
  std::size_t confident_stage1 = 0;
  for (const auto& r : test_eval_->records[0])
    confident_stage1 += r.confidence >= threshold ? 1 : 0;

  std::vector<serving::InferenceRequest> requests;
  for (std::size_t i = 0; i < 100; ++i) requests.push_back({test_->samples[i], 0});
  serving::ServerConfig cfg;
  cfg.early_exit_confidence = threshold;
  const auto responses = service_->infer_batch(handle_, requests, cfg);
  std::size_t exits_at_1 = 0;
  for (const auto& r : responses) exits_at_1 += r.stages_run == 1 ? 1 : 0;

  const double table_frac =
      static_cast<double>(confident_stage1) / static_cast<double>(test_->size());
  const double served_frac = static_cast<double>(exits_at_1) / 100.0;
  EXPECT_NEAR(served_frac, table_frac, 0.15);
}

TEST_F(Pipeline, PartitionPlannerConsumesRealArtifacts) {
  serving::ModelEntry& entry = service_->registry().entry(handle_);
  const auto infos = sched::stage_infos(entry.model, test_->samples[0]);
  const auto survival = sched::survival_curve(*test_eval_, 0.9);
  sched::PartitionConfig cfg;
  cfg.device.flops_per_ms = 5e4;
  cfg.server.flops_per_ms = 5e6;
  cfg.link.bytes_per_ms = 500.0;
  cfg.link.rtt_ms = 10.0;
  cfg.input_bytes = 2 * 12 * 12 * 4;
  const auto plan = sched::plan_partition(infos, survival, cfg);
  EXPECT_LE(plan.split, 3u);
  EXPECT_TRUE(plan.fits_device);
  EXPECT_GT(plan.expected_latency_ms, 0.0);
  EXPECT_TRUE(std::isfinite(plan.expected_latency_ms));
}

TEST_F(Pipeline, UsageMeterConsistentWithResponses) {
  const core::StageProfile profile = service_->profile(handle_, {2, 12, 12});
  sched::StageCostModel costs;
  costs.stage_ms = profile.stage_ms;
  serving::UsageMeter meter(costs, {"default"});

  std::vector<serving::InferenceRequest> requests;
  for (std::size_t i = 0; i < 30; ++i) requests.push_back({test_->samples[i], 0});
  serving::ServerConfig cfg;
  cfg.early_exit_confidence = 0.9;
  const auto responses = service_->infer_batch(handle_, requests, cfg);
  meter.record(requests, responses, 3);

  std::size_t stages = 0;
  for (const auto& r : responses) stages += r.stages_run;
  EXPECT_EQ(meter.usage()[0].requests, 30u);
  EXPECT_EQ(meter.usage()[0].stages_executed, stages);
  EXPECT_GT(meter.total_charge({0.01, 0.05}), 30 * 0.05);
}

TEST_F(Pipeline, SerializationRoundTripSurvivesServing) {
  // Export the trained+calibrated model, import into a fresh architecture,
  // and check the serving outputs agree.
  serving::ModelEntry& entry = service_->registry().entry(handle_);
  std::stringstream blob;
  nn::save_params(entry.model.params(), blob);

  nn::StagedResNetConfig arch;
  arch.in_channels = 2;
  arch.height = 12;
  arch.width = 12;
  arch.num_classes = 6;
  arch.stage_channels = {6, 10, 14};
  arch.head_hidden = 16;
  arch.seed = 999;  // different init: weights must come from the blob
  nn::StagedModel replica = nn::build_staged_resnet(arch);
  nn::load_params(replica.params(), blob);

  for (std::size_t i = 0; i < 10; ++i) {
    const auto a = entry.model.forward_all(test_->samples[i]);
    const auto b = replica.forward_all(test_->samples[i]);
    EXPECT_EQ(a.back().predicted_label, b.back().predicted_label);
    EXPECT_NEAR(a.back().confidence, b.back().confidence, 1e-6);
  }
}

}  // namespace
}  // namespace eugene
