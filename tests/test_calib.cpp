// Calibration tests: ECE/reliability math on constructed cases, and the
// entropy / MC-dropout / temperature calibrators on a real trained model.
#include <gtest/gtest.h>

#include "calib/calibrators.hpp"
#include "calib/ece.hpp"
#include "calib/evaluation.hpp"
#include "data/synthetic_images.hpp"
#include "nn/train.hpp"

namespace eugene::calib {
namespace {

TEST(Ece, PerfectCalibrationIsZero) {
  // Two bins: 70% confidence with 70% accuracy, 90% with 90%.
  std::vector<std::size_t> pred, truth;
  std::vector<float> conf;
  for (int i = 0; i < 100; ++i) {
    pred.push_back(1);
    truth.push_back(i < 70 ? 1 : 0);
    conf.push_back(0.7f);
  }
  for (int i = 0; i < 100; ++i) {
    pred.push_back(1);
    truth.push_back(i < 90 ? 1 : 0);
    conf.push_back(0.9f);
  }
  EXPECT_NEAR(expected_calibration_error(pred, truth, conf, 10), 0.0, 1e-6);
}

TEST(Ece, OverconfidenceMeasured) {
  // Everything predicted with 0.95 confidence but only half correct.
  std::vector<std::size_t> pred(100, 1), truth(100, 0);
  for (int i = 0; i < 50; ++i) truth[i] = 1;
  std::vector<float> conf(100, 0.95f);
  EXPECT_NEAR(expected_calibration_error(pred, truth, conf, 10), 0.45, 1e-6);
}

TEST(Ece, WeightsBinsBySize) {
  // 90 samples perfectly calibrated at 0.85; 10 samples off by 0.5 at 0.55.
  std::vector<std::size_t> pred, truth;
  std::vector<float> conf;
  for (int i = 0; i < 90; ++i) {
    pred.push_back(0);
    truth.push_back(i < 76 ? 0 : 1);  // 76/90 ≈ 0.844 accuracy
    conf.push_back(0.85f);
  }
  for (int i = 0; i < 10; ++i) {
    pred.push_back(0);
    truth.push_back(i == 0 ? 0 : 1);  // 0.1 accuracy, 0.55 confidence
    conf.push_back(0.55f);
  }
  const double ece = expected_calibration_error(pred, truth, conf, 10);
  // 0.9·|0.844−0.85| + 0.1·|0.1−0.55| ≈ 0.0505
  EXPECT_NEAR(ece, 0.9 * (0.85 - 76.0 / 90.0) + 0.1 * 0.45, 1e-6);
}

TEST(Reliability, BinBoundariesAreHalfOpen) {
  // 0.25 and 0.5 are exactly representable floats, so the half-open
  // boundary behaviour is well defined: (0, 0.25] and (0.25, 0.5].
  std::vector<std::size_t> pred = {0, 0, 0};
  std::vector<std::size_t> truth = {0, 0, 0};
  std::vector<float> conf = {0.25f, 0.3f, 0.5f};
  const auto bins = reliability_diagram(pred, truth, conf, 4);
  EXPECT_EQ(bins[0].count, 1u);
  EXPECT_EQ(bins[1].count, 2u);
}

TEST(Reliability, ZeroConfidenceLandsInFirstBin) {
  std::vector<std::size_t> pred = {0};
  std::vector<std::size_t> truth = {1};
  std::vector<float> conf = {0.0f};
  const auto bins = reliability_diagram(pred, truth, conf, 5);
  EXPECT_EQ(bins[0].count, 1u);
}

TEST(Reliability, RejectsOutOfRangeConfidence) {
  std::vector<std::size_t> pred = {0};
  std::vector<std::size_t> truth = {0};
  std::vector<float> conf = {1.5f};
  EXPECT_THROW(reliability_diagram(pred, truth, conf), InvalidArgument);
}

TEST(OverallStats, AccuracyAndConfidence) {
  std::vector<std::size_t> pred = {1, 2, 3, 4};
  std::vector<std::size_t> truth = {1, 2, 0, 0};
  std::vector<float> conf = {0.5f, 0.7f, 0.9f, 0.9f};
  EXPECT_DOUBLE_EQ(overall_accuracy(pred, truth), 0.5);
  EXPECT_NEAR(overall_confidence(conf), 0.75, 1e-6);
}

TEST(OverallStats, AlphaSignRule) {
  // Confidence below accuracy → sharpen → positive α (see ece.cpp note).
  EXPECT_GT(suggest_alpha_sign(0.9, 0.6), 0.0);
  EXPECT_LT(suggest_alpha_sign(0.6, 0.9), 0.0);
}

// ---- integration fixture: one small trained model shared across tests ----

class CalibrationIntegration : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticImageConfig data_cfg;
    data_cfg.num_classes = 5;
    data_cfg.channels = 2;
    data_cfg.height = 8;
    data_cfg.width = 8;
    Rng rng(17);
    train_set_ = new data::Dataset(data::generate_images(data_cfg, 400, rng));
    calib_set_ = new data::Dataset(data::generate_images(data_cfg, 250, rng));
    test_set_ = new data::Dataset(data::generate_images(data_cfg, 250, rng));

    nn::StagedResNetConfig cfg;
    cfg.in_channels = 2;
    cfg.height = 8;
    cfg.width = 8;
    cfg.num_classes = 5;
    cfg.stage_channels = {4, 8, 12};
    cfg.head_dropout = 0.25f;
    model_ = new nn::StagedModel(nn::build_staged_resnet(cfg));
    nn::StagedTrainConfig tcfg;
    tcfg.epochs = 8;
    nn::StagedTrainer trainer(*model_, tcfg);
    trainer.fit(train_set_->samples, train_set_->labels);
  }

  static void TearDownTestSuite() {
    delete model_;
    delete train_set_;
    delete calib_set_;
    delete test_set_;
    model_ = nullptr;
    train_set_ = calib_set_ = test_set_ = nullptr;
  }

  static double mean_ece(const StagedEvaluation& eval) {
    double total = 0.0;
    for (std::size_t s = 0; s < eval.num_stages(); ++s)
      total += expected_calibration_error(eval.predicted(s), eval.truth(s),
                                          eval.confidence(s), 10);
    return total / static_cast<double>(eval.num_stages());
  }

  static nn::StagedModel* model_;
  static data::Dataset* train_set_;
  static data::Dataset* calib_set_;
  static data::Dataset* test_set_;
};

nn::StagedModel* CalibrationIntegration::model_ = nullptr;
data::Dataset* CalibrationIntegration::train_set_ = nullptr;
data::Dataset* CalibrationIntegration::calib_set_ = nullptr;
data::Dataset* CalibrationIntegration::test_set_ = nullptr;

TEST_F(CalibrationIntegration, EvaluationTableIsConsistent) {
  const StagedEvaluation eval = evaluate_staged(*model_, *test_set_);
  EXPECT_EQ(eval.num_stages(), 3u);
  EXPECT_EQ(eval.num_samples(), test_set_->size());
  for (std::size_t s = 0; s < 3; ++s) {
    for (const auto& r : eval.records[s]) {
      EXPECT_GE(r.confidence, 0.0f);
      EXPECT_LE(r.confidence, 1.0f);
      EXPECT_EQ(r.probs.size(), 5u);
    }
  }
  // Later stages should classify no worse than much earlier ones overall.
  EXPECT_GE(stage_accuracy(eval, 2) + 0.05, stage_accuracy(eval, 0));
}

TEST_F(CalibrationIntegration, McDropoutEvaluationSoftensConfidence) {
  const StagedEvaluation det = evaluate_staged(*model_, *test_set_);
  const StagedEvaluation mc = evaluate_staged_mc(*model_, *test_set_, 15);
  const double det_conf = overall_confidence(det.confidence(2));
  const double mc_conf = overall_confidence(mc.confidence(2));
  EXPECT_LT(mc_conf, det_conf + 1e-6)
      << "averaging over dropout masks must not sharpen confidence";
}

TEST_F(CalibrationIntegration, StageFeaturesMatchDirectForward) {
  const auto features = stage_features(*model_, *test_set_);
  ASSERT_EQ(features.size(), 3u);
  ASSERT_EQ(features[0].size(), test_set_->size());
  // Head applied to cached features must equal the direct pipeline.
  const auto outputs = model_->forward_all(test_set_->samples[0]);
  const tensor::Tensor logits = model_->head_forward(1, features[1][0], false);
  const auto probs = nn::softmax_probs(logits);
  for (std::size_t c = 0; c < probs.size(); ++c)
    EXPECT_NEAR(probs[c], outputs[1].probs[c], 1e-5);
}

TEST_F(CalibrationIntegration, EntropyCalibrationReducesEce) {
  const double before = mean_ece(evaluate_staged(*model_, *calib_set_));
  EntropyCalibConfig cfg;
  cfg.alpha_grid = {-0.4, -0.2, 0.0, 0.2, 0.4};
  cfg.epochs = 15;
  const std::vector<double> alpha = calibrate_heads_entropy(*model_, *calib_set_, cfg);
  EXPECT_EQ(alpha.size(), 3u);
  const double after_calib = mean_ece(evaluate_staged(*model_, *calib_set_));
  EXPECT_LE(after_calib, before + 1e-9)
      << "grid search includes α=0, so calibration can never hurt on the "
         "calibration set";
  // Held-out ECE should also be small (the headline Table II property).
  const double after_test = mean_ece(evaluate_staged(*model_, *test_set_));
  EXPECT_LT(after_test, 0.25);
  (void)alpha;
}

TEST_F(CalibrationIntegration, TemperatureScalingProducesFiniteTemps) {
  const auto temps = fit_temperatures(*model_, *calib_set_);
  ASSERT_EQ(temps.size(), 3u);
  for (double t : temps) {
    EXPECT_GT(t, 0.05);
    EXPECT_LT(t, 10.0);
  }
  const StagedEvaluation eval = evaluate_with_temperature(*model_, *test_set_, temps);
  EXPECT_EQ(eval.num_samples(), test_set_->size());
  // Temperature scaling never changes the argmax.
  const StagedEvaluation plain = evaluate_staged(*model_, *test_set_);
  for (std::size_t i = 0; i < eval.num_samples(); ++i)
    EXPECT_EQ(eval.records[2][i].predicted, plain.records[2][i].predicted);
}

}  // namespace
}  // namespace eugene::calib
