// Scratch-arena and batched-inference tests (DESIGN.md §14): bump-allocator
// mechanics, feature-major pack/unpack round trips, batched-vs-per-sample
// bitwise equivalence for every layer and for whole staged models, and the
// zero-heap-allocation steady state of run_stage_batch.
//
// This binary overrides global operator new/delete with counting versions,
// which is why it lives in its own test executable: the counters must see
// every allocation the measured region performs, and nothing else in the
// process may be confounded by the override.
#include <gtest/gtest.h>

// GCC pairs the replaced operator new with the *default* delete when
// diagnosing, so every free() below trips -Wmismatched-new-delete even
// though new/delete here are consistently malloc/free-backed.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/rng.hpp"
#include "nn/arena.hpp"
#include "nn/residual.hpp"
#include "nn/staged_model.hpp"

namespace {
std::atomic<std::size_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  ++g_heap_allocs;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace eugene::nn {
namespace {

using tensor::Tensor;

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  ScratchArena arena;
  float* a = arena.alloc(7);
  float* b = arena.alloc(100);
  float* c = arena.alloc(1);
  for (float* p : {a, b, c})
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
  // 7 floats round up to one 16-float unit; no overlap with the next block.
  EXPECT_GE(b, a + 16);
  EXPECT_GE(c, b + 100);
  EXPECT_EQ(arena.used_floats(), 16u + 112u + 16u);
}

TEST(Arena, ResetRecyclesWithoutNewBlocks) {
  ScratchArena arena;
  arena.alloc(1000);
  arena.alloc(3000);
  arena.reset();
  const std::size_t heap_after_warmup = arena.heap_allocations();
  for (int round = 0; round < 5; ++round) {
    arena.alloc(1000);
    arena.alloc(3000);
    arena.reset();
  }
  EXPECT_EQ(arena.heap_allocations(), heap_after_warmup);
  EXPECT_EQ(arena.used_floats(), 0u);
  EXPECT_GE(arena.high_water_floats(), 4000u);
}

TEST(Arena, CoalescesFragmentedBlocksOnReset) {
  // Force fragmentation: a small first block, then an allocation too big
  // for it. After reset the combined capacity must serve both at once.
  ScratchArena arena(64);
  arena.alloc(60);
  arena.alloc(100000);
  arena.reset();
  const std::size_t heap_after = arena.heap_allocations();
  float* big = arena.alloc(100000);
  float* more = arena.alloc(60);
  EXPECT_NE(big, nullptr);
  EXPECT_NE(more, nullptr);
  EXPECT_EQ(arena.heap_allocations(), heap_after);
}

TEST(Arena, PackUnpackRoundTrip) {
  Rng rng(3);
  const Tensor a = Tensor::randn({3, 4, 5}, rng);
  const Tensor b = Tensor::randn({3, 4, 5}, rng);
  ScratchArena arena;
  const Tensor* samples[] = {&a, &b};
  BatchedView v = pack_batch(samples, arena);
  EXPECT_EQ(v.rank, 3u);
  EXPECT_EQ(v.batch, 2u);
  EXPECT_EQ(v.total_numel(), 2 * 60u);
  const Tensor a2 = unpack_sample(v, 0);
  const Tensor b2 = unpack_sample(v, 1);
  for (std::size_t i = 0; i < a.numel(); ++i) {
    EXPECT_EQ(a2.data()[i], a.data()[i]) << i;
    EXPECT_EQ(b2.data()[i], b.data()[i]) << i;
  }
}

TEST(Arena, PackBatchRejectsMismatchedShapes) {
  Rng rng(4);
  const Tensor a = Tensor::randn({2, 3}, rng);
  const Tensor b = Tensor::randn({3, 2}, rng);
  ScratchArena arena;
  const Tensor* samples[] = {&a, &b};
  EXPECT_THROW(pack_batch(samples, arena), InvalidArgument);
}

// ---------------------------------------------------- batched equivalence

/// Asserts layer.forward_batch output column b is bitwise-equal to
/// layer.forward of sample b (the Layer::forward_batch contract).
void expect_batch_matches_sequential(Layer& layer,
                                     const std::vector<Tensor>& samples) {
  ScratchArena arena;
  std::vector<const Tensor*> ptrs;
  for (const Tensor& s : samples) ptrs.push_back(&s);
  BatchedView in = pack_batch(ptrs, arena);
  BatchedView out = layer.forward_batch(in, arena);
  for (std::size_t b = 0; b < samples.size(); ++b) {
    const Tensor want = layer.forward(samples[b], /*training=*/false);
    const Tensor got = unpack_sample(out, b);
    ASSERT_EQ(got.numel(), want.numel()) << layer.name();
    for (std::size_t i = 0; i < want.numel(); ++i)
      EXPECT_EQ(got.data()[i], want.data()[i])
          << layer.name() << " sample " << b << " element " << i;
  }
}

std::vector<Tensor> random_batch(const tensor::Shape& shape, std::size_t n,
                                 Rng& rng) {
  std::vector<Tensor> out;
  for (std::size_t i = 0; i < n; ++i) out.push_back(Tensor::randn(shape, rng));
  return out;
}

TEST(BatchedForward, Conv2dMatchesPerSample) {
  Rng rng(11);
  tensor::Conv2dGeometry g;
  g.in_channels = 3;
  g.out_channels = 5;
  g.in_height = 9;
  g.in_width = 7;
  Conv2d conv(g, rng);
  expect_batch_matches_sequential(conv, random_batch({3, 9, 7}, 4, rng));
}

TEST(BatchedForward, DenseMatchesPerSample) {
  Rng rng(12);
  Dense dense(13, 6, rng);
  expect_batch_matches_sequential(dense, random_batch({13}, 5, rng));
}

TEST(BatchedForward, ActivationAndNormLayersMatchPerSample) {
  Rng rng(13);
  ReLU relu;
  expect_batch_matches_sequential(relu, random_batch({2, 4, 4}, 3, rng));
  ChannelNorm norm(4);
  expect_batch_matches_sequential(norm, random_batch({4, 5, 3}, 3, rng));
  MaxPool2 pool;
  expect_batch_matches_sequential(pool, random_batch({2, 6, 8}, 3, rng));
  GlobalAvgPool gap;
  expect_batch_matches_sequential(gap, random_batch({3, 4, 4}, 3, rng));
  Flatten flatten;
  expect_batch_matches_sequential(flatten, random_batch({2, 3, 4}, 3, rng));
  Dropout dropout(0.5f, 99);  // inference identity
  expect_batch_matches_sequential(dropout, random_batch({2, 3, 3}, 3, rng));
}

TEST(BatchedForward, ResidualBlockMatchesPerSample) {
  Rng rng(14);
  ResidualBlock block(4, 6, 6, rng);
  expect_batch_matches_sequential(block, random_batch({4, 6, 6}, 3, rng));
}

TEST(BatchedForward, DefaultFallbackMatchesPerSample) {
  // A layer with no forward_batch override must still satisfy the contract
  // through the gather/forward/scatter default.
  class Doubler final : public Layer {
   public:
    Tensor forward(const Tensor& input, bool /*training*/) override {
      Tensor out = input;
      out *= 2.0f;
      return out;
    }
    Tensor backward(const Tensor& grad) override { return grad; }
    std::string name() const override { return "doubler"; }
    std::unique_ptr<Layer> clone() const override {
      return std::make_unique<Doubler>();
    }
  };
  Rng rng(15);
  Doubler layer;
  expect_batch_matches_sequential(layer, random_batch({3, 2, 2}, 4, rng));
}

TEST(BatchedForward, RunStageBatchMatchesRunStageResnet) {
  StagedResNetConfig cfg;
  cfg.in_channels = 2;
  cfg.height = 8;
  cfg.width = 8;
  cfg.num_classes = 4;
  cfg.stage_channels = {4, 6};
  cfg.head_hidden = 5;
  cfg.head_dropout = 0.1f;  // exercised as inference identity
  StagedModel model = build_staged_resnet(cfg);

  Rng rng(16);
  std::vector<Tensor> inputs = random_batch({2, 8, 8}, 5, rng);
  ScratchArena arena;
  std::vector<const Tensor*> ptrs;
  for (const Tensor& t : inputs) ptrs.push_back(&t);
  std::vector<StageBatchItem> items(inputs.size());

  for (std::size_t s = 0; s < model.num_stages(); ++s) {
    arena.reset();
    model.run_stage_batch(s, ptrs, items, arena);
    for (std::size_t b = 0; b < inputs.size(); ++b) {
      const StageOutput want = model.run_stage(s, *ptrs[b]);
      EXPECT_EQ(items[b].predicted_label, want.predicted_label) << s << "/" << b;
      EXPECT_EQ(items[b].confidence, want.confidence) << s << "/" << b;
      ASSERT_EQ(items[b].probs.size(), want.probs.size());
      for (std::size_t c = 0; c < want.probs.size(); ++c)
        EXPECT_EQ(items[b].probs[c], want.probs[c]) << s << "/" << b << "/" << c;
      ASSERT_EQ(items[b].features.numel(), want.features.numel());
      for (std::size_t i = 0; i < want.features.numel(); ++i)
        EXPECT_EQ(items[b].features.data()[i], want.features.data()[i])
            << s << "/" << b << "/" << i;
    }
    // Chain stage s's batched features into stage s+1 per sample.
    inputs.clear();
    for (StageBatchItem& item : items) inputs.push_back(item.features);
    ptrs.clear();
    for (const Tensor& t : inputs) ptrs.push_back(&t);
  }
}

TEST(BatchedForward, RunStageBatchMatchesRunStageMlp) {
  StagedMlpConfig cfg;
  cfg.input_dim = 2 * 3 * 4;
  cfg.num_classes = 3;
  cfg.stage_widths = {10, 8};
  StagedModel model = build_staged_mlp(cfg);

  Rng rng(17);
  const std::vector<Tensor> inputs = random_batch({2, 3, 4}, 4, rng);
  ScratchArena arena;
  std::vector<const Tensor*> ptrs;
  for (const Tensor& t : inputs) ptrs.push_back(&t);
  std::vector<StageBatchItem> items(inputs.size());
  model.run_stage_batch(0, ptrs, items, arena);
  for (std::size_t b = 0; b < inputs.size(); ++b) {
    const StageOutput want = model.run_stage(0, *ptrs[b]);
    EXPECT_EQ(items[b].predicted_label, want.predicted_label) << b;
    EXPECT_EQ(items[b].confidence, want.confidence) << b;
  }
}

TEST(BatchedForward, SingleSampleBatchMatchesPerSample) {
  StagedResNetConfig cfg;
  cfg.in_channels = 1;
  cfg.height = 8;
  cfg.width = 8;
  cfg.num_classes = 3;
  cfg.stage_channels = {4};
  StagedModel model = build_staged_resnet(cfg);
  Rng rng(18);
  const Tensor input = Tensor::randn({1, 8, 8}, rng);
  ScratchArena arena;
  const Tensor* ptrs[] = {&input};
  std::vector<StageBatchItem> items(1);
  model.run_stage_batch(0, ptrs, items, arena);
  const StageOutput want = model.run_stage(0, input);
  EXPECT_EQ(items[0].confidence, want.confidence);
  EXPECT_EQ(items[0].predicted_label, want.predicted_label);
}

// ------------------------------------------------- zero-alloc steady state

TEST(Arena, SecondBatchedRunAllocatesNothing) {
  StagedResNetConfig cfg;
  cfg.in_channels = 2;
  cfg.height = 8;
  cfg.width = 8;
  cfg.num_classes = 4;
  cfg.stage_channels = {4, 6};
  StagedModel model = build_staged_resnet(cfg);

  Rng rng(19);
  std::vector<Tensor> warm = random_batch({2, 8, 8}, 4, rng);
  std::vector<Tensor> steady = random_batch({2, 8, 8}, 4, rng);
  std::vector<const Tensor*> warm_ptrs, steady_ptrs;
  for (const Tensor& t : warm) warm_ptrs.push_back(&t);
  for (const Tensor& t : steady) steady_ptrs.push_back(&t);

  ScratchArena arena;
  std::vector<StageBatchItem> items(warm.size());
  // Warm-up: grows the arena to its high-water mark and sizes the items'
  // feature/probs storage.
  arena.reset();
  model.run_stage_batch(0, warm_ptrs, items, arena);
  arena.reset();
  model.run_stage_batch(0, warm_ptrs, items, arena);

  // Steady state: a fresh batch of the same shape must touch the heap
  // exactly zero times — neither through the arena nor anywhere else.
  const std::size_t arena_heap_before = arena.heap_allocations();
  const std::size_t global_heap_before = g_heap_allocs.load();
  arena.reset();
  model.run_stage_batch(0, steady_ptrs, items, arena);
  EXPECT_EQ(arena.heap_allocations(), arena_heap_before)
      << "arena grew after warm-up";
  EXPECT_EQ(g_heap_allocs.load(), global_heap_before)
      << "steady-state run_stage_batch hit operator new";
  // And the outputs are still right.
  const StageOutput want = model.run_stage(0, steady[0]);
  EXPECT_EQ(items[0].confidence, want.confidence);
}

}  // namespace
}  // namespace eugene::nn
