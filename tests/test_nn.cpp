// Neural-network library tests: numerical gradient checks for every layer
// and loss, optimizer behaviour, staged-model mechanics, serialization, and
// a small end-to-end learning smoke test.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/rng.hpp"
#include "data/synthetic_images.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/residual.hpp"
#include "nn/serialize.hpp"
#include "nn/staged_model.hpp"
#include "nn/train.hpp"

namespace eugene::nn {
namespace {

using tensor::Tensor;

/// Scalar probe loss: L = Σ output_i · c_i for a fixed random c, so
/// dL/doutput = c and we can numerically check input & parameter gradients.
double probe_loss(const Tensor& out, const Tensor& coeffs) {
  double acc = 0.0;
  for (std::size_t i = 0; i < out.numel(); ++i)
    acc += static_cast<double>(out.data()[i]) * static_cast<double>(coeffs.data()[i]);
  return acc;
}

/// Checks layer input and parameter gradients against central differences.
void check_gradients(Layer& layer, const tensor::Shape& input_shape, Rng& rng,
                     double tolerance = 2e-2) {
  Tensor input = Tensor::randn(input_shape, rng);
  Tensor probe_out = layer.forward(input, /*training=*/false);
  const Tensor coeffs = Tensor::randn(probe_out.shape(), rng);

  zero_grads(layer.params());
  // backward() requires a preceding forward(training=true): inference-mode
  // forwards skip writing the activation caches backward reads.
  layer.forward(input, true);
  const Tensor grad_in = layer.backward(coeffs);

  const float eps = 1e-3f;
  // Input gradient.
  for (std::size_t i = 0; i < input.numel(); ++i) {
    Tensor plus = input, minus = input;
    plus.data()[i] += eps;
    minus.data()[i] -= eps;
    const double lp = probe_loss(layer.forward(plus, false), coeffs);
    const double lm = probe_loss(layer.forward(minus, false), coeffs);
    const double numeric = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(grad_in.data()[i], numeric, tolerance)
        << layer.name() << " input grad at " << i;
  }
  // Parameter gradients (spot-check a handful per tensor to keep tests fast).
  // Must recompute the analytic grads last, since the loop above overwrote
  // the layer's forward cache.
  zero_grads(layer.params());
  layer.forward(input, true);
  layer.backward(coeffs);
  for (auto& p : layer.params()) {
    const std::size_t n = p.value->numel();
    const std::size_t step = std::max<std::size_t>(1, n / 7);
    for (std::size_t i = 0; i < n; i += step) {
      const float original = p.value->data()[i];
      p.value->data()[i] = original + eps;
      const double lp = probe_loss(layer.forward(input, false), coeffs);
      p.value->data()[i] = original - eps;
      const double lm = probe_loss(layer.forward(input, false), coeffs);
      p.value->data()[i] = original;
      const double numeric = (lp - lm) / (2.0 * eps);
      EXPECT_NEAR(p.grad->data()[i], numeric, tolerance)
          << layer.name() << " param grad at " << i;
    }
  }
}

TEST(GradCheck, Dense) {
  Rng rng(1);
  Dense layer(6, 4, rng);
  check_gradients(layer, {6}, rng);
}

TEST(GradCheck, Conv2d) {
  Rng rng(2);
  tensor::Conv2dGeometry g;
  g.in_channels = 2;
  g.out_channels = 3;
  g.in_height = 5;
  g.in_width = 4;
  Conv2d layer(g, rng);
  check_gradients(layer, {2, 5, 4}, rng);
}

TEST(GradCheck, ReLU) {
  Rng rng(3);
  ReLU layer;
  check_gradients(layer, {10}, rng);
}

TEST(GradCheck, ChannelNorm) {
  Rng rng(4);
  ChannelNorm layer(3);
  check_gradients(layer, {3, 4, 4}, rng, 5e-2);
}

TEST(GradCheck, Flatten) {
  Rng rng(5);
  Flatten layer;
  check_gradients(layer, {2, 3, 2}, rng);
}

TEST(GradCheck, GlobalAvgPool) {
  Rng rng(6);
  GlobalAvgPool layer;
  check_gradients(layer, {3, 4, 4}, rng);
}

TEST(GradCheck, MaxPool2) {
  Rng rng(7);
  MaxPool2 layer;
  check_gradients(layer, {2, 4, 4}, rng);
}

TEST(GradCheck, ResidualBlock) {
  Rng rng(8);
  ResidualBlock layer(3, 4, 4, rng);
  check_gradients(layer, {3, 4, 4}, rng, 5e-2);
}

TEST(GradCheck, SequentialComposition) {
  Rng rng(9);
  Sequential seq;
  seq.add(std::make_unique<Dense>(5, 7, rng))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<Dense>(7, 3, rng));
  check_gradients(seq, {5}, rng);
}

TEST(GradCheck, CrossEntropyLoss) {
  Rng rng(10);
  const Tensor logits = Tensor::randn({5}, rng);
  const std::size_t label = 2;
  const LossResult res = cross_entropy(logits, label);

  const float eps = 1e-3f;
  for (std::size_t i = 0; i < 5; ++i) {
    Tensor plus = logits, minus = logits;
    plus.data()[i] += eps;
    minus.data()[i] -= eps;
    const double numeric =
        (cross_entropy(plus, label).value - cross_entropy(minus, label).value) /
        (2.0 * eps);
    EXPECT_NEAR(res.grad_logits.at(i), numeric, 1e-3);
  }
}

TEST(GradCheck, EntropyRegularizedLoss) {
  Rng rng(11);
  const Tensor logits = Tensor::randn({6}, rng);
  for (double alpha : {-0.3, 0.2}) {
    const LossResult res = cross_entropy_with_entropy_reg(logits, 1, alpha);
    const float eps = 1e-3f;
    for (std::size_t i = 0; i < 6; ++i) {
      Tensor plus = logits, minus = logits;
      plus.data()[i] += eps;
      minus.data()[i] -= eps;
      const double numeric =
          (cross_entropy_with_entropy_reg(plus, 1, alpha).value -
           cross_entropy_with_entropy_reg(minus, 1, alpha).value) /
          (2.0 * eps);
      EXPECT_NEAR(res.grad_logits.at(i), numeric, 1e-3) << "alpha " << alpha;
    }
  }
}

TEST(Loss, EntropyRegularizationShiftsConfidence) {
  // With L = CE + α·H: positive α penalizes entropy, so gradient descent
  // pushes the top logit up harder (sharper distribution, higher
  // confidence); negative α does the opposite.
  Tensor logits({4}, std::vector<float>{3.0f, 0.1f, 0.0f, -0.2f});
  const auto plain = cross_entropy(logits, 0);
  const auto sharpen = cross_entropy_with_entropy_reg(logits, 0, 0.5);
  const auto soften = cross_entropy_with_entropy_reg(logits, 0, -0.5);
  EXPECT_LT(sharpen.grad_logits.at(0), plain.grad_logits.at(0));
  EXPECT_GT(soften.grad_logits.at(0), plain.grad_logits.at(0));
}

TEST(Loss, MseGradient) {
  Tensor out({3}, std::vector<float>{1, 2, 3});
  Tensor target({3}, std::vector<float>{0, 2, 5});
  const LossResult res = mean_squared_error(out, target);
  EXPECT_NEAR(res.value, (1.0 + 0.0 + 4.0) / 3.0, 1e-6);
  EXPECT_NEAR(res.grad_logits.at(0), 2.0 / 3.0, 1e-6);
  EXPECT_NEAR(res.grad_logits.at(2), -4.0 / 3.0, 1e-6);
}

TEST(Dropout, InferenceIsIdentity) {
  Rng rng(13);
  Dropout layer(0.5f, 77);
  const Tensor x = Tensor::randn({20}, rng);
  const Tensor y = layer.forward(x, /*training=*/false);
  for (std::size_t i = 0; i < x.numel(); ++i) EXPECT_EQ(x.data()[i], y.data()[i]);
}

TEST(Dropout, TrainingDropsAndRescales) {
  Dropout layer(0.5f, 78);
  Tensor x({1000}, 1.0f);
  const Tensor y = layer.forward(x, /*training=*/true);
  std::size_t zeros = 0;
  double sum = 0.0;
  for (float v : y.data()) {
    if (v == 0.0f) ++zeros;
    sum += v;
  }
  EXPECT_GT(zeros, 350u);
  EXPECT_LT(zeros, 650u);
  // Inverted dropout keeps the expectation roughly constant.
  EXPECT_NEAR(sum / 1000.0, 1.0, 0.15);
}

TEST(Optimizer, StepReducesQuadraticLoss) {
  // Minimize ‖w‖² by gradient descent.
  Tensor w({4}, std::vector<float>{1, -2, 3, -4});
  Tensor g({4});
  SgdConfig cfg;
  cfg.learning_rate = 0.1;
  cfg.momentum = 0.0;
  cfg.weight_decay = 0.0;
  SgdOptimizer opt({{&w, &g}}, cfg);
  for (int it = 0; it < 100; ++it) {
    for (std::size_t i = 0; i < 4; ++i) g.data()[i] = 2.0f * w.data()[i];
    opt.step();
    opt.zero_grads();
  }
  for (float v : w.data()) EXPECT_NEAR(v, 0.0f, 1e-3);
}

TEST(Optimizer, MomentumAcceleratesDescent) {
  auto run = [](double momentum) {
    Tensor w({1}, std::vector<float>{10.0f});
    Tensor g({1});
    SgdConfig cfg;
    cfg.learning_rate = 0.01;
    cfg.momentum = momentum;
    cfg.weight_decay = 0.0;
    SgdOptimizer opt({{&w, &g}}, cfg);
    for (int it = 0; it < 20; ++it) {
      g.data()[0] = 2.0f * w.data()[0];
      opt.step();
      opt.zero_grads();
    }
    return std::abs(w.at(0));
  };
  EXPECT_LT(run(0.9), run(0.0));
}

StagedResNetConfig tiny_config() {
  StagedResNetConfig cfg;
  cfg.in_channels = 2;
  cfg.height = 8;
  cfg.width = 8;
  cfg.num_classes = 4;
  cfg.stage_channels = {4, 6, 8};
  cfg.blocks_per_stage = 1;
  cfg.seed = 5;
  return cfg;
}

TEST(StagedModel, BuilderProducesRequestedStages) {
  StagedModel model = build_staged_resnet(tiny_config());
  EXPECT_EQ(model.num_stages(), 3u);
  EXPECT_EQ(model.num_classes(), 4u);
  for (std::size_t s = 0; s < 3; ++s) EXPECT_GT(model.stage_flops(s), 0.0);
}

TEST(StagedModel, ForwardAllProducesValidDistributions) {
  StagedModel model = build_staged_resnet(tiny_config());
  Rng rng(6);
  const Tensor input = Tensor::randn({2, 8, 8}, rng);
  const auto outputs = model.forward_all(input);
  ASSERT_EQ(outputs.size(), 3u);
  for (const auto& out : outputs) {
    ASSERT_EQ(out.probs.size(), 4u);
    double sum = 0.0;
    for (float p : out.probs) {
      EXPECT_GE(p, 0.0f);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
    EXPECT_LT(out.predicted_label, 4u);
    EXPECT_NEAR(out.confidence, out.probs[out.predicted_label], 1e-7);
  }
}

TEST(StagedModel, StageChainingMatchesForwardAll) {
  StagedModel model = build_staged_resnet(tiny_config());
  Rng rng(7);
  const Tensor input = Tensor::randn({2, 8, 8}, rng);
  const auto all = model.forward_all(input);
  const Tensor* cur = &input;
  std::vector<StageOutput> chained;
  for (std::size_t s = 0; s < model.num_stages(); ++s) {
    chained.push_back(model.run_stage(s, *cur));
    cur = &chained.back().features;
  }
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(all[s].predicted_label, chained[s].predicted_label);
    EXPECT_FLOAT_EQ(all[s].confidence, chained[s].confidence);
  }
}

TEST(StagedModel, McDropoutDiffersFromDeterministicAndAveragesOut) {
  StagedResNetConfig cfg = tiny_config();
  cfg.head_dropout = 0.4f;
  StagedModel model = build_staged_resnet(cfg);
  Rng rng(8);
  const Tensor input = Tensor::randn({2, 8, 8}, rng);
  const StageOutput det = model.run_stage(0, input);
  const StageOutput mc = model.run_stage_mc(0, input, 25);
  ASSERT_EQ(mc.probs.size(), det.probs.size());
  double sum = 0.0;
  for (float p : mc.probs) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-5);
  // MC averaging flattens the distribution relative to the deterministic
  // pass in general; at minimum it must remain a valid distribution and
  // typically differ.
  bool any_diff = false;
  for (std::size_t i = 0; i < mc.probs.size(); ++i)
    any_diff |= std::abs(mc.probs[i] - det.probs[i]) > 1e-6;
  EXPECT_TRUE(any_diff);
}

TEST(Serialize, RoundTripRestoresOutputs) {
  StagedModel a = build_staged_resnet(tiny_config());
  StagedModel b = build_staged_resnet([] {
    StagedResNetConfig c = tiny_config();
    c.seed = 99;  // different init; weights must come from the stream
    return c;
  }());
  Rng rng(9);
  const Tensor input = Tensor::randn({2, 8, 8}, rng);
  const auto before = a.forward_all(input);

  std::stringstream buffer;
  save_params(a.params(), buffer);
  load_params(b.params(), buffer);
  const auto after = b.forward_all(input);
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(before[s].predicted_label, after[s].predicted_label);
    EXPECT_NEAR(before[s].confidence, after[s].confidence, 1e-6);
  }
}

TEST(Serialize, ArchitectureMismatchThrows) {
  StagedModel a = build_staged_resnet(tiny_config());
  StagedResNetConfig other = tiny_config();
  other.stage_channels = {4, 6};
  StagedModel b = build_staged_resnet(other);
  std::stringstream buffer;
  save_params(a.params(), buffer);
  EXPECT_THROW(load_params(b.params(), buffer), InvalidArgument);
}

TEST(Serialize, SizeAccountsForAllTensors) {
  StagedModel a = build_staged_resnet(tiny_config());
  std::stringstream buffer;
  save_params(a.params(), buffer);
  EXPECT_EQ(buffer.str().size(), serialized_size_bytes(a.params()));
}

TEST(Serialize, ReadsLegacyV1Checkpoints) {
  // Hand-write the v1 format (magic "EUG1", no version, no CRC): old
  // checkpoints on disk must keep loading after the v2 switch.
  StagedModel a = build_staged_resnet(tiny_config());
  std::stringstream buffer;
  auto put_u32 = [&buffer](std::uint32_t v) {
    buffer.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  const auto params = a.params();
  put_u32(0x45554731);
  put_u32(static_cast<std::uint32_t>(params.size()));
  for (const auto& p : params) {
    put_u32(static_cast<std::uint32_t>(p.value->rank()));
    for (std::size_t d : p.value->shape()) put_u32(static_cast<std::uint32_t>(d));
    buffer.write(reinterpret_cast<const char*>(p.value->raw()),
                 static_cast<std::streamsize>(p.value->numel() * sizeof(float)));
  }

  StagedModel b = build_staged_resnet([] {
    StagedResNetConfig c = tiny_config();
    c.seed = 77;
    return c;
  }());
  load_params(b.params(), buffer);
  Rng rng(12);
  const Tensor input = Tensor::randn({2, 8, 8}, rng);
  const auto outs_a = a.forward_all(input);
  const auto outs_b = b.forward_all(input);
  for (std::size_t s = 0; s < outs_a.size(); ++s)
    EXPECT_NEAR(outs_a[s].confidence, outs_b[s].confidence, 1e-6);
}

// Adversarial checkpoint loads (DESIGN.md §9): whatever bytes arrive —
// truncated, empty, flipped, foreign, from the future — load_params must
// answer with a typed eugene::Error, never UB, a crash, or silent garbage.
TEST(Serialize, TruncatedAtEveryLengthThrowsTyped) {
  StagedModel a = build_staged_resnet(tiny_config());
  std::stringstream buffer;
  save_params(a.params(), buffer);
  const std::string full = buffer.str();

  StagedModel b = build_staged_resnet(tiny_config());
  // Every strict prefix, stepping through the header byte by byte and the
  // body in coarser strides (the body is homogeneous float data).
  for (std::size_t n = 0; n < full.size(); n = n < 64 ? n + 1 : n + 97) {
    std::istringstream cut(full.substr(0, n));
    EXPECT_THROW(load_params(b.params(), cut), Error) << "prefix length " << n;
  }
}

TEST(Serialize, BitFlipsAreDetectedByCrc) {
  StagedModel a = build_staged_resnet(tiny_config());
  std::stringstream buffer;
  save_params(a.params(), buffer);
  const std::string full = buffer.str();

  StagedModel b = build_staged_resnet(tiny_config());
  // Flip one bit at a sweep of offsets across header, body, and footer.
  for (std::size_t pos = 0; pos < full.size(); pos += 131) {
    for (const std::uint8_t mask : {0x01, 0x80}) {
      std::string flipped = full;
      flipped[pos] = static_cast<char>(flipped[pos] ^ mask);
      std::istringstream in(flipped);
      try {
        load_params(b.params(), in);
        ADD_FAILURE() << "accepted a checkpoint with bit " << int(mask)
                      << " flipped at offset " << pos;
      } catch (const Error&) {
        // Typed rejection (CorruptionError from the CRC or length checks)
        // is exactly the contract.
      }
    }
  }
  // The pristine stream still loads after all that.
  std::istringstream in(full);
  EXPECT_NO_THROW(load_params(b.params(), in));
}

TEST(Serialize, EmptyWrongMagicAndFutureVersionThrowTyped) {
  StagedModel b = build_staged_resnet(tiny_config());

  std::istringstream empty("");
  EXPECT_THROW(load_params(b.params(), empty), CorruptionError);

  std::istringstream garbage("this is not a checkpoint at all");
  EXPECT_THROW(load_params(b.params(), garbage), CorruptionError);

  // A well-formed v2 header claiming a future version must be refused
  // before any payload is interpreted.
  std::stringstream future;
  const std::uint32_t magic = 0x45554732, version = 99;
  const std::uint64_t len = 0;
  future.write(reinterpret_cast<const char*>(&magic), 4);
  future.write(reinterpret_cast<const char*>(&version), 4);
  future.write(reinterpret_cast<const char*>(&len), 8);
  EXPECT_THROW(load_params(b.params(), future), CorruptionError);
}

TEST(Serialize, SaveFileIsAtomicUnderTornWriteFailpoint) {
  const std::string path =
      "/tmp/eugene_test_ckpt_" + std::to_string(::getpid()) + ".bin";
  StagedModel a = build_staged_resnet(tiny_config());
  save_params_file(a.params(), path);

  // Arm a simulated crash halfway through the rewrite: the original file
  // must survive byte-for-byte.
  FailpointSpec spec;
  FailpointRegistry::instance().arm("io.atomic.torn", spec);
  EXPECT_THROW(save_params_file(a.params(), path), FailpointError);
  FailpointRegistry::instance().disarm_all();

  StagedModel b = build_staged_resnet([] {
    StagedResNetConfig c = tiny_config();
    c.seed = 123;
    return c;
  }());
  EXPECT_NO_THROW(load_params_file(b.params(), path));
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

TEST(Serialize, FileWithTrailingBytesThrowsTyped) {
  const std::string path =
      "/tmp/eugene_test_ckpt_trail_" + std::to_string(::getpid()) + ".bin";
  StagedModel a = build_staged_resnet(tiny_config());
  save_params_file(a.params(), path);
  {
    // A byte appended past the CRC footer cannot corrupt weights, but a
    // file is exactly one checkpoint: loading it must still fail typed.
    std::ofstream append(path, std::ios::binary | std::ios::app);
    append.put('\xff');
  }
  EXPECT_THROW(load_params_file(a.params(), path), CorruptionError);
  std::remove(path.c_str());
}

TEST(Training, StagedModelLearnsSyntheticImages) {
  data::SyntheticImageConfig data_cfg;
  data_cfg.num_classes = 4;
  data_cfg.channels = 2;
  data_cfg.height = 8;
  data_cfg.width = 8;
  data_cfg.noise_stddev = 0.15;
  Rng rng(42);
  const data::Dataset train = data::generate_images(data_cfg, 300, rng);
  const data::Dataset test = data::generate_images(data_cfg, 120, rng);

  StagedResNetConfig cfg = tiny_config();
  StagedModel model = build_staged_resnet(cfg);

  StagedTrainConfig tcfg;
  tcfg.epochs = 6;
  tcfg.sgd.learning_rate = 0.05;
  StagedTrainer trainer(model, tcfg);
  const double loss0 = trainer.train_epoch(train.samples, train.labels);
  trainer.fit(train.samples, train.labels);
  const double loss1 = trainer.train_epoch(train.samples, train.labels);
  EXPECT_LT(loss1, loss0);

  const double final_acc =
      StagedTrainer::evaluate_accuracy(model, test.samples, test.labels, 2);
  EXPECT_GT(final_acc, 0.5) << "4-class problem; chance is 0.25";
}

TEST(Training, PlainClassifierLearnsLinearlySeparableData) {
  // Two Gaussian blobs in 2-D.
  Rng rng(55);
  std::vector<Tensor> xs;
  std::vector<std::size_t> ys;
  for (int i = 0; i < 200; ++i) {
    const std::size_t label = i % 2;
    const double cx = label == 0 ? -1.0 : 1.0;
    Tensor x({2}, std::vector<float>{static_cast<float>(cx + rng.normal(0, 0.4)),
                                     static_cast<float>(cx + rng.normal(0, 0.4))});
    xs.push_back(std::move(x));
    ys.push_back(label);
  }
  Sequential net;
  net.add(std::make_unique<Dense>(2, 8, rng))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<Dense>(8, 2, rng));
  ClassifierTrainConfig cfg;
  cfg.epochs = 15;
  train_classifier(net, xs, ys, cfg);
  EXPECT_GT(classifier_accuracy(net, xs, ys), 0.95);
}

}  // namespace
}  // namespace eugene::nn
