// Property-based and parameterized sweeps over the core invariants:
//   * conv/pooling gradients hold across a geometry grid (TEST_P);
//   * softmax/ECE/entropy invariants hold for random distributions;
//   * the DES scheduler preserves conservation laws for every policy × load;
//   * GP predictions are sane across random monotone curve families.
#include <gtest/gtest.h>

#include <cmath>

#include "calib/ece.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "gp/gaussian_process.hpp"
#include "nn/layers.hpp"
#include "nn/loss.hpp"
#include "sched/simulator.hpp"
#include "tensor/ops.hpp"

namespace eugene {
namespace {

// ------------------------------------------------------------------------
// Conv2d forward equivalence + gradient adjointness across geometries.
// ------------------------------------------------------------------------

struct ConvCase {
  std::size_t cin, cout, h, w, kernel, stride, padding;
};

class ConvGeometrySweep : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvGeometrySweep, Im2colMatchesDirect) {
  const ConvCase c = GetParam();
  tensor::Conv2dGeometry g;
  g.in_channels = c.cin;
  g.out_channels = c.cout;
  g.in_height = c.h;
  g.in_width = c.w;
  g.kernel = c.kernel;
  g.stride = c.stride;
  g.padding = c.padding;
  Rng rng(c.cin * 131 + c.cout * 17 + c.h);
  const tensor::Tensor img = tensor::Tensor::randn({c.cin, c.h, c.w}, rng);
  const tensor::Tensor w =
      tensor::Tensor::randn({c.cout, c.cin * c.kernel * c.kernel}, rng);
  const tensor::Tensor b = tensor::Tensor::randn({c.cout}, rng);
  const tensor::Tensor fast = tensor::conv2d(img, w, b, g);
  const tensor::Tensor slow = tensor::conv2d_direct(img, w, b, g);
  ASSERT_TRUE(fast.same_shape(slow));
  for (std::size_t i = 0; i < fast.numel(); ++i)
    ASSERT_NEAR(fast.data()[i], slow.data()[i], 1e-3) << "element " << i;
}

TEST_P(ConvGeometrySweep, Col2imAdjointIdentity) {
  // <im2col(x), y> == <x, col2im(y)> must hold for every geometry: it is
  // exactly the identity the conv backward pass relies on.
  const ConvCase c = GetParam();
  tensor::Conv2dGeometry g;
  g.in_channels = c.cin;
  g.out_channels = c.cout;
  g.in_height = c.h;
  g.in_width = c.w;
  g.kernel = c.kernel;
  g.stride = c.stride;
  g.padding = c.padding;
  Rng rng(c.cin * 31 + c.h * 7 + c.stride);
  const tensor::Tensor x = tensor::Tensor::randn({c.cin, c.h, c.w}, rng);
  const tensor::Tensor cols = tensor::im2col(x, g);
  const tensor::Tensor y = tensor::Tensor::randn(cols.shape(), rng);
  const tensor::Tensor back = tensor::col2im(y, g);
  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < cols.numel(); ++i) lhs += cols.data()[i] * y.data()[i];
  for (std::size_t i = 0; i < x.numel(); ++i) rhs += x.data()[i] * back.data()[i];
  EXPECT_NEAR(lhs, rhs, std::max(1e-2, std::abs(lhs) * 1e-4));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvGeometrySweep,
    ::testing::Values(ConvCase{1, 1, 4, 4, 3, 1, 1}, ConvCase{2, 3, 5, 7, 3, 1, 1},
                      ConvCase{3, 2, 8, 8, 3, 2, 1}, ConvCase{4, 4, 6, 6, 1, 1, 0},
                      ConvCase{2, 5, 9, 5, 5, 1, 2}, ConvCase{3, 3, 7, 7, 3, 3, 1},
                      ConvCase{1, 8, 4, 4, 3, 1, 0}, ConvCase{8, 1, 10, 10, 3, 2, 1}));

// ------------------------------------------------------------------------
// Loss gradients across random logits / labels / alphas.
// ------------------------------------------------------------------------

class LossGradientSweep : public ::testing::TestWithParam<int> {};

TEST_P(LossGradientSweep, EntropyRegularizedGradMatchesNumeric) {
  Rng rng(GetParam());
  const std::size_t classes = 2 + static_cast<std::size_t>(rng.uniform_int(0, 8));
  const tensor::Tensor logits = tensor::Tensor::randn({classes}, rng, 2.0f);
  const std::size_t label =
      static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(classes) - 1));
  const double alpha = rng.uniform(-1.5, 1.5);
  const nn::LossResult res = nn::cross_entropy_with_entropy_reg(logits, label, alpha);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < classes; ++i) {
    tensor::Tensor plus = logits, minus = logits;
    plus.data()[i] += eps;
    minus.data()[i] -= eps;
    const double numeric =
        (nn::cross_entropy_with_entropy_reg(plus, label, alpha).value -
         nn::cross_entropy_with_entropy_reg(minus, label, alpha).value) /
        (2.0 * eps);
    EXPECT_NEAR(res.grad_logits.at(i), numeric, 2e-3)
        << "class " << i << " alpha " << alpha;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LossGradientSweep, ::testing::Range(1, 13));

// ------------------------------------------------------------------------
// Softmax / entropy / ECE invariants on random inputs.
// ------------------------------------------------------------------------

class DistributionSweep : public ::testing::TestWithParam<int> {};

TEST_P(DistributionSweep, SoftmaxIsADistributionAndShiftInvariant) {
  Rng rng(GetParam() * 97);
  const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_int(0, 20));
  std::vector<float> logits(n);
  for (auto& v : logits) v = static_cast<float>(rng.normal(0, 5));
  const auto p = softmax(logits);
  double sum = 0.0;
  for (float v : p) {
    EXPECT_GE(v, 0.0f);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-5);
  // Shift invariance.
  std::vector<float> shifted = logits;
  for (auto& v : shifted) v += 123.0f;
  const auto q = softmax(shifted);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(p[i], q[i], 1e-5);
  // Entropy bounds: 0 <= H <= log n.
  const double h = entropy(p);
  EXPECT_GE(h, -1e-9);
  EXPECT_LE(h, std::log(static_cast<double>(n)) + 1e-9);
}

TEST_P(DistributionSweep, EceIsBoundedAndZeroForOracleConfidence) {
  Rng rng(GetParam() * 31 + 5);
  const std::size_t n = 200;
  std::vector<std::size_t> pred(n), truth(n);
  std::vector<float> conf(n);
  for (std::size_t i = 0; i < n; ++i) {
    pred[i] = static_cast<std::size_t>(rng.uniform_int(0, 4));
    truth[i] = static_cast<std::size_t>(rng.uniform_int(0, 4));
    conf[i] = static_cast<float>(rng.uniform());
  }
  const double ece = calib::expected_calibration_error(pred, truth, conf);
  EXPECT_GE(ece, 0.0);
  EXPECT_LE(ece, 1.0);

  // Oracle confidence (1 when right, 0 when wrong) has zero ECE: both the
  // top bin (acc 1, conf 1) and the bottom bin (acc 0, conf 0) match.
  std::vector<float> oracle(n);
  for (std::size_t i = 0; i < n; ++i) oracle[i] = pred[i] == truth[i] ? 1.0f : 0.0f;
  EXPECT_NEAR(calib::expected_calibration_error(pred, truth, oracle), 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistributionSweep, ::testing::Range(1, 9));

// ------------------------------------------------------------------------
// Scheduler conservation laws for every policy under varying load.
// ------------------------------------------------------------------------

struct SimCase {
  int policy;  ///< 0 greedy, 1 RR, 2 FIFO, 3 EDF
  std::size_t workers;
  std::size_t tasks;
  double deadline_ms;
};

class SimulatorSweep : public ::testing::TestWithParam<SimCase> {};

TEST_P(SimulatorSweep, ConservationInvariantsHold) {
  const SimCase c = GetParam();
  Rng rng(c.workers * 1000 + c.tasks + static_cast<std::size_t>(c.deadline_ms));
  std::vector<sched::TaskSpec> tasks;
  for (std::size_t i = 0; i < c.tasks; ++i) {
    sched::TaskSpec t;
    t.id = i;
    t.service = i % 3;
    t.arrival_ms = rng.uniform(0.0, 100.0);
    t.deadline_ms = t.arrival_ms + c.deadline_ms;
    for (std::size_t s = 0; s < 3; ++s) {
      sched::StageOutcome o;
      o.confidence = rng.uniform(0.2, 1.0);
      o.correct = rng.bernoulli(o.confidence);
      t.stages.push_back(o);
    }
    tasks.push_back(std::move(t));
  }

  // Priors for the greedy estimator.
  sched::ConstantSlopeEstimator estimator({0.5, 0.7, 0.85}, 0.1);
  std::unique_ptr<sched::SchedulingPolicy> policy;
  switch (c.policy) {
    case 0: policy = std::make_unique<sched::GreedyUtilityPolicy>(estimator, 2); break;
    case 1: policy = std::make_unique<sched::RoundRobinPolicy>(); break;
    case 2: policy = std::make_unique<sched::FifoPolicy>(); break;
    default: policy = std::make_unique<sched::EarliestDeadlinePolicy>(); break;
  }

  sched::StageCostModel costs{{8.0, 8.0, 8.0}, 0.0};
  sched::SimulationConfig cfg;
  cfg.num_workers = c.workers;
  const sched::SimulationResult r = simulate(tasks, *policy, costs, cfg);

  // (1) every task is accounted for exactly once.
  std::size_t accounted = 0;
  for (const auto& svc : r.services) accounted += svc.tasks;
  EXPECT_EQ(accounted, c.tasks);

  // (2) exit histogram partitions the tasks.
  std::size_t hist_total = 0;
  for (std::size_t v : r.exit_stage_histogram) hist_total += v;
  EXPECT_EQ(hist_total, c.tasks);

  // (3) completed stage work fits inside worker capacity over the makespan
  //     (aborted stages occupy workers only until their deadline, so they
  //     are excluded from this lower-bound accounting).
  std::size_t stages = 0;
  for (const auto& svc : r.services) stages += svc.stages_executed;
  const double busy_ms = 8.0 * static_cast<double>(stages);
  EXPECT_LE(busy_ms,
            r.makespan_ms * static_cast<double>(c.workers) + 8.0 * c.workers + 1e-6);

  // (4) correctness counts never exceed task counts.
  for (const auto& svc : r.services) EXPECT_LE(svc.correct, svc.tasks);

  // (5) no task executed more stages than exist.
  EXPECT_LE(stages, 3 * c.tasks);
}

INSTANTIATE_TEST_SUITE_P(
    PolicyLoadGrid, SimulatorSweep,
    ::testing::Values(SimCase{0, 1, 12, 40.0}, SimCase{0, 4, 40, 25.0},
                      SimCase{0, 2, 25, 1e6}, SimCase{1, 1, 12, 40.0},
                      SimCase{1, 4, 40, 25.0}, SimCase{2, 1, 12, 40.0},
                      SimCase{2, 3, 30, 30.0}, SimCase{3, 2, 20, 50.0},
                      SimCase{3, 4, 40, 15.0}, SimCase{0, 8, 60, 20.0}));

// ------------------------------------------------------------------------
// GP sanity across random monotone curve families.
// ------------------------------------------------------------------------

class GpCurveSweep : public ::testing::TestWithParam<int> {};

TEST_P(GpCurveSweep, PosteriorMeanInterpolatesAndStaysBounded) {
  Rng rng(GetParam() * 773);
  // Random monotone curve y = a + b·x^c on [0,1], with noise.
  const double a = rng.uniform(0.0, 0.3);
  const double b = rng.uniform(0.3, 0.7);
  const double cexp = rng.uniform(0.5, 2.0);
  std::vector<double> x, y;
  for (int i = 0; i <= 80; ++i) {
    const double xi = static_cast<double>(i) / 80.0;
    x.push_back(xi);
    y.push_back(a + b * std::pow(xi, cexp) + rng.normal(0.0, 0.02));
  }
  gp::GaussianProcess1D gp;
  gp.fit(x, y);
  for (double q = 0.05; q < 1.0; q += 0.1) {
    const gp::GpPrediction p = gp.predict(q);
    EXPECT_NEAR(p.mean, a + b * std::pow(q, cexp), 0.08) << "q=" << q;
    EXPECT_GE(p.stddev, 0.0);
    EXPECT_LT(p.stddev, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GpCurveSweep, ::testing::Range(1, 9));

}  // namespace
}  // namespace eugene
