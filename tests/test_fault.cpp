// Chaos suite (DESIGN.md §8 "Failure model"): arms failpoints at every seam
// — worker crash mid-stage, frame corruption, torn writes, slow workers,
// overload bursts — and asserts the robustness contract: every submitted
// request receives a well-formed response (complete, expired, or degraded),
// no exception escapes run_live/process_batch, and the fault counters
// reconcile with the number of injected faults.
//
// Each TEST runs in its own ctest process (gtest_discover_tests), so armed
// failpoints cannot leak across tests; FailpointGuard adds belt-and-braces
// isolation within a process.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <climits>
#include <future>
#include <limits>
#include <thread>

#include "calib/evaluation.hpp"
#include "common/clock.hpp"
#include "common/failpoint.hpp"
#include "common/fifo_channel.hpp"
#include "common/retry.hpp"
#include "gp/confidence_curve.hpp"
#include "nn/staged_model.hpp"
#include "sched/live.hpp"
#include "serving/registry.hpp"
#include "serving/server.hpp"
#include "serving/usage.hpp"

namespace eugene {
namespace {

/// Disarms every failpoint on entry and exit of a test body.
struct FailpointGuard {
  FailpointGuard() { FailpointRegistry::instance().disarm_all(); }
  ~FailpointGuard() { FailpointRegistry::instance().disarm_all(); }
};

void poke(const char* name) { EUGENE_FAILPOINT(name); }

std::string fifo_path(const std::string& tag) {
  return "/tmp/eugene_fault_" + tag + "_" + std::to_string(::getpid());
}

nn::StagedResNetConfig tiny_model_config() {
  nn::StagedResNetConfig cfg;
  cfg.in_channels = 2;
  cfg.height = 8;
  cfg.width = 8;
  cfg.num_classes = 4;
  cfg.stage_channels = {3, 4};
  cfg.head_hidden = 8;
  return cfg;
}

constexpr std::size_t kStages = 2;  // tiny_model_config has two stages

/// Fabricated per-stage confidences: enough structure for curve fitting
/// without training a model.
calib::StagedEvaluation fake_eval() {
  calib::StagedEvaluation eval;
  eval.records.resize(kStages);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const double base = rng.uniform(0.1, 0.9);
    for (std::size_t s = 0; s < kStages; ++s) {
      calib::StageRecord r;
      r.confidence = static_cast<float>(
          std::min(1.0, base + 0.2 * (static_cast<double>(s) + rng.uniform(0.0, 0.1))));
      eval.records[s].push_back(r);
    }
  }
  return eval;
}

gp::ConfidenceCurveModel make_curves() {
  gp::ConfidenceCurveModel curves;
  curves.fit(fake_eval());
  return curves;
}

std::vector<tensor::Tensor> make_inputs(std::size_t n, std::uint64_t seed = 3) {
  Rng rng(seed);
  std::vector<tensor::Tensor> inputs;
  inputs.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    inputs.push_back(tensor::Tensor::randn({2, 8, 8}, rng));
  return inputs;
}

std::vector<std::unique_ptr<nn::StagedModel>> make_replicas(std::size_t workers) {
  nn::StagedModel model = nn::build_staged_resnet(tiny_model_config());
  return sched::replicate_staged_model(model, workers);
}

/// A registered + curve-fitted model entry for server tests.
struct ServerHarness {
  serving::ModelRegistry registry;
  std::size_t handle;

  ServerHarness() : handle(registry.add("tiny", nn::build_staged_resnet(tiny_model_config()))) {
    serving::ModelEntry& e = registry.entry(handle);
    e.curves.fit(fake_eval());
    e.costs.stage_ms = {1.0, 1.0};
  }

  serving::ModelEntry& entry() { return registry.entry(handle); }
};

/// The chaos suite's core invariant: a response is well-formed iff it is
/// complete, expired, or degraded — and internally consistent.
void expect_well_formed(const sched::LiveTaskResult& r, std::size_t num_stages) {
  EXPECT_LE(r.stages_run, num_stages);
  EXPECT_FALSE(r.expired && r.degraded);
  if (!r.expired && !r.degraded) {
    EXPECT_GE(r.stages_run, 1u);
  }
  if (r.stages_run == 0) {
    EXPECT_EQ(r.confidence, 0.0);
  }
}

// ---------------------------------------------------------------------------
// Failpoint framework
// ---------------------------------------------------------------------------

TEST(Fault, FailpointDisarmedIsNoop) {
  FailpointGuard guard;
  EXPECT_NO_THROW(poke("test.never.armed"));
  EXPECT_EQ(FailpointRegistry::instance().fires("test.never.armed"), 0u);
}

TEST(Fault, FailpointArmedThrowsAndCountsFires) {
  FailpointGuard guard;
  FailpointRegistry::instance().arm("test.crash", FailpointSpec{});
  EXPECT_THROW(poke("test.crash"), FailpointError);
  EXPECT_THROW(poke("test.crash"), FailpointError);
  EXPECT_EQ(FailpointRegistry::instance().fires("test.crash"), 2u);
  // Other names stay dormant while one is armed.
  EXPECT_NO_THROW(poke("test.other"));
  FailpointRegistry::instance().disarm("test.crash");
  EXPECT_NO_THROW(poke("test.crash"));
}

TEST(Fault, FailpointFireBudgetAutoDisarms) {
  FailpointGuard guard;
  FailpointSpec spec;
  spec.max_fires = 2;
  FailpointRegistry::instance().arm("test.budget", spec);
  EXPECT_THROW(poke("test.budget"), FailpointError);
  EXPECT_THROW(poke("test.budget"), FailpointError);
  EXPECT_NO_THROW(poke("test.budget"));  // budget spent: dormant
  EXPECT_EQ(FailpointRegistry::instance().fires("test.budget"), 2u);
}

TEST(Fault, FailpointSeededDrawsAreDeterministic) {
  FailpointGuard guard;
  FailpointSpec spec;
  spec.probability = 0.5;
  spec.seed = 7;
  auto draw_pattern = [&] {
    FailpointRegistry::instance().arm("test.prob", spec);
    std::vector<bool> pattern;
    for (int i = 0; i < 64; ++i)
      pattern.push_back(FailpointRegistry::instance().should_fire("test.prob"));
    return pattern;
  };
  const auto first = draw_pattern();
  const auto second = draw_pattern();  // re-arm resets the seeded stream
  EXPECT_EQ(first, second);
  const std::size_t fired = static_cast<std::size_t>(
      std::count(first.begin(), first.end(), true));
  EXPECT_GT(fired, 16u);  // p=0.5 over 64 draws: far from all-or-nothing
  EXPECT_LT(fired, 48u);
}

TEST(Fault, FailpointDelayKindStalls) {
  FailpointGuard guard;
  FailpointSpec spec;
  spec.kind = FailpointKind::kDelay;
  spec.delay_ms = 30.0;
  spec.max_fires = 1;
  FailpointRegistry::instance().arm("test.stall", spec);
  Stopwatch watch;
  EXPECT_NO_THROW(poke("test.stall"));
  EXPECT_GE(watch.elapsed_ms(), 25.0);
}

TEST(Fault, FailpointSpecStringParses) {
  FailpointGuard guard;
  auto& reg = FailpointRegistry::instance();
  EXPECT_EQ(reg.arm_from_string("a.b=error:p=0.5:count=3,c=delay:ms=2.5:seed=9"), 2u);
  EXPECT_EQ(reg.armed(), 2u);
  EXPECT_THROW(reg.arm_from_string("nokind"), InvalidArgument);
  EXPECT_THROW(reg.arm_from_string("x=banana"), InvalidArgument);
  EXPECT_THROW(reg.arm_from_string("x=error:q=1"), InvalidArgument);
  EXPECT_THROW(reg.arm_from_string("x=error:p=oops"), InvalidArgument);
}

TEST(Fault, RetryBackoffGrowsAndCaps) {
  RetryPolicy policy;
  policy.base_delay_ms = 1.0;
  policy.max_delay_ms = 8.0;
  policy.jitter = 0.0;
  Rng rng(1);
  EXPECT_DOUBLE_EQ(backoff_delay_ms(policy, 1, rng), 1.0);
  EXPECT_DOUBLE_EQ(backoff_delay_ms(policy, 2, rng), 2.0);
  EXPECT_DOUBLE_EQ(backoff_delay_ms(policy, 3, rng), 4.0);
  EXPECT_DOUBLE_EQ(backoff_delay_ms(policy, 4, rng), 8.0);
  EXPECT_DOUBLE_EQ(backoff_delay_ms(policy, 10, rng), 8.0);  // capped
  policy.jitter = 0.5;
  for (int i = 0; i < 32; ++i) {
    const double d = backoff_delay_ms(policy, 3, rng);
    EXPECT_GE(d, 2.0);
    EXPECT_LE(d, 6.0);  // 4 ms ± 50 %
  }
}

TEST(Fault, RetryWithBackoffRetriesThenSucceeds) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.base_delay_ms = 0.1;
  Rng rng(2);
  int calls = 0;
  const int result = retry_with_backoff(policy, rng, [&] {
    if (++calls < 3) throw TransportError("flaky");
    return 42;
  });
  EXPECT_EQ(result, 42);
  EXPECT_EQ(calls, 3);

  calls = 0;
  EXPECT_THROW(retry_with_backoff(policy, rng,
                                  [&]() -> int { ++calls; throw TransportError("down"); }),
               TransportError);
  EXPECT_EQ(calls, 4);  // budget fully spent before giving up
}

TEST(Fault, RetryCancelledBetweenAttemptsStopsImmediately) {
  RetryPolicy policy;
  policy.max_attempts = 100;
  policy.base_delay_ms = 0.1;
  Rng rng(3);
  CancellationToken cancel(std::numeric_limits<double>::infinity());
  int calls = 0;
  // The token fires during attempt 2: its failure propagates immediately —
  // no third attempt, none of the remaining 98-attempt budget burned.
  EXPECT_THROW(retry_with_backoff(
                   policy, rng,
                   [&]() -> int {
                     if (++calls == 2) cancel.cancel();
                     throw TransportError("down");
                   },
                   &cancel),
               TransportError);
  EXPECT_EQ(calls, 2);
}

TEST(Fault, RetryCancelledMidBackoffCutsSleepShort) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_delay_ms = 60000.0;  // uncancelled, this sleep outlives the test
  policy.max_delay_ms = 60000.0;
  policy.jitter = 0.0;
  Rng rng(4);
  CancellationToken cancel(std::numeric_limits<double>::infinity());

  std::atomic<bool> started{false};
  std::thread canceller([&] {
    while (!started.load()) std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    cancel.cancel();
  });

  Stopwatch watch;
  EXPECT_THROW(retry_with_backoff(
                   policy, rng,
                   [&]() -> int {
                     started.store(true);
                     throw TransportError("down");
                   },
                   &cancel),
               CancelledError);
  canceller.join();
  // The sliced backoff sleep noticed the token within milliseconds, not
  // after the full minute-long delay.
  EXPECT_LT(watch.elapsed_ms(), 10000.0);
}

TEST(Fault, RetryNullTokenAndUnfiredTokenBehaveIdentically) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_delay_ms = 0.1;
  Rng rng(5);
  CancellationToken never(std::numeric_limits<double>::infinity());
  int calls = 0;
  const int result = retry_with_backoff(
      policy, rng,
      [&] {
        if (++calls < 3) throw TransportError("flaky");
        return 7;
      },
      &never);
  EXPECT_EQ(result, 7);
  EXPECT_EQ(calls, 3);  // an unfired token never shrinks the budget
}

// ---------------------------------------------------------------------------
// FIFO transport hardening
// ---------------------------------------------------------------------------

TEST(Fault, FifoZeroLengthPayloadRoundTrips) {
  FailpointGuard guard;
  const std::string path = fifo_path("zero");
  std::thread writer([&] {
    FifoWriter w(path);
    EXPECT_TRUE(w.write_frame({}));
  });
  FifoReader reader(path);
  const auto frame = reader.read_frame();
  writer.join();
  ASSERT_TRUE(frame.has_value());
  EXPECT_TRUE(frame->empty());
  EXPECT_FALSE(reader.read_frame().has_value());  // clean EOF afterwards
}

TEST(Fault, FifoPayloadExactlyPipeBufRoundTrips) {
  FailpointGuard guard;
  const std::string path = fifo_path("pipebuf");
  std::vector<std::uint8_t> payload(PIPE_BUF);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::uint8_t>(i * 31u);
  std::thread writer([&] {
    FifoWriter w(path);
    EXPECT_TRUE(w.write_frame(payload));
  });
  FifoReader reader(path);
  const auto frame = reader.read_frame();
  writer.join();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(*frame, payload);
}

TEST(Fault, FifoCorruptedFrameYieldsTransportError) {
  FailpointGuard guard;
  FailpointSpec spec;
  spec.max_fires = 1;
  FailpointRegistry::instance().arm("fifo.write.corrupt", spec);
  const std::string path = fifo_path("corrupt");
  std::thread writer([&] {
    FifoWriter w(path);
    const StageReport report{1, 0, 3, 0.5f};
    EXPECT_TRUE(w.write_frame(report.encode()));  // byte flipped on the wire
  });
  FifoReader reader(path);
  EXPECT_THROW(reader.read_frame(), TransportError);
  writer.join();
  EXPECT_EQ(FailpointRegistry::instance().fires("fifo.write.corrupt"), 1u);
}

TEST(Fault, FifoTornFinalFrameYieldsTransportError) {
  FailpointGuard guard;
  FailpointSpec spec;
  spec.max_fires = 1;
  FailpointRegistry::instance().arm("fifo.write.torn", spec);
  const std::string path = fifo_path("torn");
  std::thread writer([&] {
    FifoWriter w(path);
    const StageReport report{1, 0, 3, 0.5f};
    EXPECT_TRUE(w.write_frame(report.encode()));
    // Writer destructs here: the pipe closes with half a frame in it.
  });
  FifoReader reader(path);
  // The reader must surface the truncation, not block forever or return a
  // short garbage frame.
  EXPECT_THROW(reader.read_frame(), TransportError);
  writer.join();
}

TEST(Fault, FifoSilentWriterTimesOutInsteadOfHanging) {
  FailpointGuard guard;
  const std::string path = fifo_path("timeout");
  FifoOptions options;
  options.io_timeout_ms = 50.0;
  std::promise<void> done;
  std::shared_future<void> done_future(done.get_future());
  std::thread writer([&] {
    FifoWriter w(path);  // connects, then never writes
    done_future.wait();
  });
  FifoReader reader(path, options);
  Stopwatch watch;
  EXPECT_THROW(reader.read_frame(), TransportError);
  EXPECT_GE(watch.elapsed_ms(), 40.0);
  done.set_value();
  writer.join();
}

TEST(Fault, FifoOversizedLengthPrefixRejected) {
  FailpointGuard guard;
  const std::string path = fifo_path("oversize");
  ASSERT_TRUE(::mkfifo(path.c_str(), 0600) == 0 || errno == EEXIST);
  std::thread writer([&] {
    // Raw writer: a corrupt header claiming a ~4 GiB frame. The reader must
    // reject it instead of trying to allocate and block on 4 GiB of payload.
    const int fd = ::open(path.c_str(), O_WRONLY);  // blocks until the reader opens
    ASSERT_GE(fd, 0);
    const std::uint8_t header[8] = {0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0};
    ASSERT_EQ(::write(fd, header, sizeof(header)), static_cast<ssize_t>(sizeof(header)));
    ::close(fd);
  });
  FifoReader reader(path);
  EXPECT_THROW(reader.read_frame(), TransportError);
  writer.join();
}

TEST(Fault, FifoWriterOpenTimesOutWithoutReader) {
  FailpointGuard guard;
  const std::string path = fifo_path("noreader");
  FifoOptions options;
  options.open_timeout_ms = 50.0;
  EXPECT_THROW(FifoWriter(path, options), TransportError);
  ::unlink(path.c_str());
}

// ---------------------------------------------------------------------------
// Live scheduler worker supervision
// ---------------------------------------------------------------------------

TEST(Fault, LiveWorkerCrashIsRetriedOnHealthyWorker) {
  FailpointGuard guard;
  FailpointSpec spec;
  spec.max_fires = 1;
  FailpointRegistry::instance().arm("live.worker.crash", spec);

  auto replicas = make_replicas(2);
  const auto curves = make_curves();
  const auto inputs = make_inputs(6);
  sched::LiveConfig cfg;
  cfg.retry.base_delay_ms = 0.1;
  sched::LiveStats stats;
  const auto results = sched::run_live(replicas, curves, inputs, cfg, &stats);

  ASSERT_EQ(results.size(), inputs.size());
  std::size_t total_retries = 0;
  for (const auto& r : results) {
    expect_well_formed(r, kStages);
    EXPECT_FALSE(r.expired);
    EXPECT_FALSE(r.degraded);
    EXPECT_EQ(r.stages_run, kStages);
    total_retries += r.retries;
  }
  EXPECT_EQ(stats.worker_crashes, 1u);
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(total_retries, 1u);
  // Counter reconciliation: one injected fault, one observed crash.
  EXPECT_EQ(FailpointRegistry::instance().fires("live.worker.crash"),
            stats.worker_crashes);
}

TEST(Fault, LiveGroupedDispatchCrashRetriesEveryMember) {
  // A grouped dispatch (stage_batch > 1) fails as a unit: one worker crash
  // charges one retry to *each* member of the dispatched group, and every
  // member still completes on a healthy worker. The fault counters stay
  // reconciled: crashes == fires, and the per-task retries sum to the
  // scheduler's retry count.
  FailpointGuard guard;
  FailpointSpec spec;
  spec.max_fires = 1;
  FailpointRegistry::instance().arm("live.worker.crash", spec);

  auto replicas = make_replicas(2);
  const auto curves = make_curves();
  const auto inputs = make_inputs(6);
  sched::LiveConfig cfg;
  cfg.stage_batch = 8;  // everything groups onto one dispatch per worker
  cfg.retry.base_delay_ms = 0.1;
  sched::LiveStats stats;
  const auto results = sched::run_live(replicas, curves, inputs, cfg, &stats);

  ASSERT_EQ(results.size(), inputs.size());
  std::size_t total_retries = 0;
  for (const auto& r : results) {
    expect_well_formed(r, kStages);
    EXPECT_FALSE(r.expired);
    EXPECT_FALSE(r.degraded);
    EXPECT_EQ(r.stages_run, kStages);
    total_retries += r.retries;
  }
  EXPECT_EQ(stats.worker_crashes, 1u);
  EXPECT_GE(stats.retries, 1u);  // every member of the crashed group retried
  EXPECT_EQ(total_retries, stats.retries);
  EXPECT_EQ(FailpointRegistry::instance().fires("live.worker.crash"),
            stats.worker_crashes);
}

TEST(Fault, LiveWorkerCrashWithRespawnCompletesAll) {
  FailpointGuard guard;
  FailpointSpec spec;
  spec.max_fires = 2;
  FailpointRegistry::instance().arm("live.worker.crash", spec);

  auto replicas = make_replicas(2);
  const auto curves = make_curves();
  const auto inputs = make_inputs(8);
  sched::LiveConfig cfg;
  cfg.max_retries = 3;
  cfg.max_respawns = 2;
  cfg.retry.base_delay_ms = 0.1;
  sched::LiveStats stats;
  const auto results = sched::run_live(replicas, curves, inputs, cfg, &stats);

  ASSERT_EQ(results.size(), inputs.size());
  for (const auto& r : results) {
    EXPECT_FALSE(r.expired);
    EXPECT_FALSE(r.degraded);
    EXPECT_EQ(r.stages_run, kStages);
  }
  EXPECT_EQ(stats.worker_crashes, 2u);
  EXPECT_EQ(stats.respawns, 2u);
  EXPECT_EQ(FailpointRegistry::instance().fires("live.worker.crash"), 2u);
}

TEST(Fault, LiveSlowWorkerIsAbandonedAndTaskRecovers) {
  FailpointGuard guard;
  FailpointSpec spec;
  spec.kind = FailpointKind::kDelay;
  spec.delay_ms = 1000.0;
  spec.max_fires = 1;
  FailpointRegistry::instance().arm("live.worker.slow", spec);

  auto replicas = make_replicas(2);
  const auto curves = make_curves();
  const auto inputs = make_inputs(4);
  sched::LiveConfig cfg;
  cfg.worker_timeout_ms = 150.0;  // far above a healthy stage, far below the stall
  cfg.retry.base_delay_ms = 0.1;
  sched::LiveStats stats;
  const auto results = sched::run_live(replicas, curves, inputs, cfg, &stats);

  ASSERT_EQ(results.size(), inputs.size());
  for (const auto& r : results) {
    EXPECT_FALSE(r.expired);
    EXPECT_FALSE(r.degraded);
    EXPECT_EQ(r.stages_run, kStages);
  }
  EXPECT_EQ(stats.worker_timeouts, 1u);
  EXPECT_EQ(stats.retries, 1u);
}

TEST(Fault, LivePersistentCrashesDegradeInsteadOfHanging) {
  FailpointGuard guard;
  FailpointRegistry::instance().arm("live.worker.crash", FailpointSpec{});  // p=1, ∞

  auto replicas = make_replicas(2);
  const auto curves = make_curves();
  const auto inputs = make_inputs(5);
  sched::LiveConfig cfg;
  cfg.max_retries = 1;
  cfg.max_respawns = 1;
  cfg.retry.base_delay_ms = 0.1;
  sched::LiveStats stats;
  // The robustness contract under total loss: no hang, no escaping
  // exception, every task answered (degraded, with zero stages).
  const auto results = sched::run_live(replicas, curves, inputs, cfg, &stats);

  ASSERT_EQ(results.size(), inputs.size());
  for (const auto& r : results) {
    expect_well_formed(r, kStages);
    EXPECT_TRUE(r.degraded);
    EXPECT_EQ(r.stages_run, 0u);
  }
  EXPECT_EQ(stats.degraded, inputs.size());
  EXPECT_GE(stats.worker_crashes, 2u);  // both initial workers died
  EXPECT_EQ(stats.respawns, 1u);
  EXPECT_EQ(FailpointRegistry::instance().fires("live.worker.crash"),
            stats.worker_crashes);
}

TEST(Fault, LiveExpiredTasksStayExpiredUnderCrashes) {
  FailpointGuard guard;
  FailpointSpec spec;
  spec.probability = 0.5;
  spec.seed = 13;
  FailpointRegistry::instance().arm("live.worker.crash", spec);

  auto replicas = make_replicas(2);
  const auto curves = make_curves();
  const auto inputs = make_inputs(8);
  sched::LiveConfig cfg;
  cfg.deadline_ms = 40.0;
  cfg.max_retries = 2;
  cfg.max_respawns = 8;
  cfg.retry.base_delay_ms = 0.1;
  sched::LiveStats stats;
  const auto results = sched::run_live(replicas, curves, inputs, cfg, &stats);

  ASSERT_EQ(results.size(), inputs.size());
  for (const auto& r : results) expect_well_formed(r, kStages);
  EXPECT_EQ(stats.expired,
            static_cast<std::size_t>(std::count_if(
                results.begin(), results.end(),
                [](const sched::LiveTaskResult& r) { return r.expired; })));
  EXPECT_EQ(FailpointRegistry::instance().fires("live.worker.crash"),
            stats.worker_crashes);
}

TEST(Fault, LiveRejectsInvalidInputsUpFront) {
  const auto curves = make_curves();
  auto replicas = make_replicas(1);
  const auto inputs = make_inputs(2);
  sched::LiveConfig cfg;

  std::vector<std::unique_ptr<nn::StagedModel>> no_workers;
  EXPECT_THROW(sched::run_live(no_workers, curves, inputs, cfg), InvalidArgument);

  const std::vector<tensor::Tensor> empty_batch;
  EXPECT_THROW(sched::run_live(replicas, curves, empty_batch, cfg), InvalidArgument);

  Rng rng(9);
  std::vector<tensor::Tensor> mismatched = make_inputs(2);
  mismatched.push_back(tensor::Tensor::randn({2, 4, 4}, rng));
  EXPECT_THROW(sched::run_live(replicas, curves, mismatched, cfg), InvalidArgument);

  std::vector<std::unique_ptr<nn::StagedModel>> with_null;
  with_null.push_back(nullptr);
  EXPECT_THROW(sched::run_live(with_null, curves, inputs, cfg), InvalidArgument);

  sched::LiveConfig bad_deadline;
  bad_deadline.deadline_ms = 0.0;
  EXPECT_THROW(sched::run_live(replicas, curves, inputs, bad_deadline),
               InvalidArgument);
}

// ---------------------------------------------------------------------------
// Overload control: breakers, hedging, cancellation (DESIGN.md §11)
// ---------------------------------------------------------------------------

TEST(Fault, LiveSickReplicaBreakerOpensAndRoutesAround) {
  FailpointGuard guard;
  // Replica 0 is the designated sick replica: every stage it runs fails
  // recoverably (the worker lives, unlike a crash).
  FailpointRegistry::instance().arm("live.worker.sick", FailpointSpec{});  // p=1, ∞

  auto replicas = make_replicas(2);
  const auto curves = make_curves();
  const auto inputs = make_inputs(8);
  sched::LiveConfig cfg;
  cfg.max_retries = 3;
  cfg.retry.base_delay_ms = 0.1;
  cfg.health.min_samples = 2;
  cfg.health.ewma_alpha = 0.5;
  cfg.health.error_threshold = 0.5;
  cfg.health.open_cooldown_ms = 60000.0;  // stays open for the whole test
  sched::LiveStats stats;
  const auto results = sched::run_live(replicas, curves, inputs, cfg, &stats);

  ASSERT_EQ(results.size(), inputs.size());
  for (const auto& r : results) {
    expect_well_formed(r, kStages);
    // The healthy replica carries every task to completion.
    EXPECT_FALSE(r.expired);
    EXPECT_FALSE(r.degraded);
    EXPECT_EQ(r.stages_run, kStages);
  }
  EXPECT_EQ(stats.worker_crashes, 0u);  // sick ≠ dead: no thread ever exited
  EXPECT_EQ(stats.respawns, 0u);
  // Two failures at alpha=0.5 breach the 0.5 error threshold: exactly one
  // trip, and the breaker keeps later dispatch off the sick replica.
  EXPECT_EQ(stats.breaker_trips, 1u);
  EXPECT_EQ(stats.worker_errors, 2u);
  EXPECT_GE(stats.breaker_skips, 1u);
  // Counter reconciliation: every injected sick-stage fault was observed.
  EXPECT_EQ(FailpointRegistry::instance().fires("live.worker.sick"),
            stats.worker_errors);
  // Routing around the open breaker spared the retry budget: only the
  // pre-trip failures charged retries.
  EXPECT_EQ(stats.retries, stats.worker_errors);
}

TEST(Fault, LiveBreakerTripSeamForcesOpenWithoutRealErrors) {
  FailpointGuard guard;
  FailpointSpec spec;
  spec.max_fires = 1;
  FailpointRegistry::instance().arm("health.breaker.trip", spec);

  auto replicas = make_replicas(2);
  const auto curves = make_curves();
  const auto inputs = make_inputs(6);
  sched::LiveConfig cfg;
  cfg.retry.base_delay_ms = 0.1;
  cfg.health.open_cooldown_ms = 60000.0;
  sched::LiveStats stats;
  const auto results = sched::run_live(replicas, curves, inputs, cfg, &stats);

  ASSERT_EQ(results.size(), inputs.size());
  for (const auto& r : results) {
    EXPECT_FALSE(r.expired);
    EXPECT_FALSE(r.degraded);
    EXPECT_EQ(r.stages_run, kStages);
  }
  // The forced trip opened one breaker with zero real failures, and the
  // other replica finished the batch.
  EXPECT_EQ(stats.breaker_trips, 1u);
  EXPECT_EQ(stats.worker_errors, 0u);
  EXPECT_EQ(stats.worker_crashes, 0u);
  EXPECT_EQ(FailpointRegistry::instance().fires("health.breaker.trip"), 1u);
}

TEST(Fault, LiveHedgedDispatchRescuesStraggler) {
  FailpointGuard guard;
  // Replica 0 straggles: every stage it starts stalls 200 ms.
  FailpointSpec spec;
  spec.kind = FailpointKind::kDelay;
  spec.delay_ms = 200.0;
  FailpointRegistry::instance().arm("live.worker.sick", spec);

  auto replicas = make_replicas(2);
  const auto curves = make_curves();
  const auto inputs = make_inputs(10);
  sched::LiveConfig cfg;
  cfg.hedging = true;
  cfg.hedge_quantile = 0.5;
  cfg.hedge_min_ms = 1.0;
  cfg.hedge_min_samples = 4;
  cfg.retry.base_delay_ms = 0.1;
  cfg.health.enabled = false;  // isolate hedging from breaker routing
  sched::LiveStats stats;
  const auto results = sched::run_live(replicas, curves, inputs, cfg, &stats);

  ASSERT_EQ(results.size(), inputs.size());
  for (const auto& r : results) {
    expect_well_formed(r, kStages);
    // No deadline and a healthy second replica: hedging must rescue every
    // straggling dispatch; nothing degrades and nothing expires.
    EXPECT_FALSE(r.expired);
    EXPECT_FALSE(r.degraded);
    EXPECT_EQ(r.stages_run, kStages);
    EXPECT_EQ(r.retries, 0u);  // a hedge is not a retry
  }
  EXPECT_GE(stats.hedges_issued, 1u);
  EXPECT_GE(stats.hedges_won, 1u);
  EXPECT_LE(stats.hedges_won, stats.hedges_issued);
  EXPECT_EQ(stats.worker_crashes, 0u);

  // The ops ledger carries the hedge counters (v2 journal frame fields).
  ServerHarness harness;
  serving::UsageMeter meter(harness.entry().costs, {"default"});
  serving::OpsUsage ops;
  ops.hedges_issued = stats.hedges_issued;
  ops.hedges_won = stats.hedges_won;
  ops.breaker_trips = stats.breaker_trips;
  meter.record_ops(ops);
  EXPECT_EQ(meter.ops().hedges_issued, stats.hedges_issued);
  EXPECT_EQ(meter.ops().hedges_won, stats.hedges_won);
}

TEST(Fault, LiveHedgeRaceLoserIsCancelledCooperatively) {
  FailpointGuard guard;
  FailpointSpec stall;
  stall.kind = FailpointKind::kDelay;
  stall.delay_ms = 150.0;
  FailpointRegistry::instance().arm("live.worker.sick", stall);
  // Chaos seam: every hedge force-cancels its primary, so the backup must
  // win every race and the loser-cancellation path runs deterministically.
  FailpointRegistry::instance().arm("hedge.lose.race", FailpointSpec{});

  auto replicas = make_replicas(2);
  const auto curves = make_curves();
  const auto inputs = make_inputs(8);
  sched::LiveConfig cfg;
  cfg.hedging = true;
  cfg.hedge_quantile = 0.5;
  cfg.hedge_min_ms = 1.0;
  cfg.hedge_min_samples = 4;
  cfg.retry.base_delay_ms = 0.1;
  cfg.health.enabled = false;
  sched::LiveStats stats;
  const auto results = sched::run_live(replicas, curves, inputs, cfg, &stats);

  ASSERT_EQ(results.size(), inputs.size());
  for (const auto& r : results) {
    expect_well_formed(r, kStages);
    EXPECT_FALSE(r.expired);
    EXPECT_FALSE(r.degraded);
    EXPECT_EQ(r.stages_run, kStages);
  }
  EXPECT_GE(stats.hedges_issued, 1u);
  // With the primary force-cancelled, the backup wins every race it enters.
  EXPECT_EQ(stats.hedges_won, stats.hedges_issued);
  EXPECT_EQ(FailpointRegistry::instance().fires("hedge.lose.race"),
            stats.hedges_issued);
  // The losers honored the cancel at their next safe point (the pre-stage
  // token check after the injected stall).
  EXPECT_GE(stats.cancelled, 1u);
}

TEST(Fault, ServerForcedBrownoutShedsAndRecovers) {
  FailpointGuard guard;
  FailpointSpec spec;
  spec.max_fires = 2;
  FailpointRegistry::instance().arm("admit.brownout.force", spec);

  ServerHarness harness;
  serving::ServerConfig cfg;
  cfg.admission_capacity = 8;
  serving::InferenceServer server(harness.entry(), cfg);
  std::vector<serving::InferenceRequest> requests;
  for (const auto& input : make_inputs(8)) requests.push_back({input, 0});

  // Batch 1: the seam escalates to level 1 → capacity shrinks to 6, two
  // requests brown out with well-formed degraded responses.
  auto responses = server.process_batch(requests);
  std::size_t browned = 0;
  for (const auto& r : responses) {
    if (r.browned_out) {
      ++browned;
      EXPECT_TRUE(r.degraded);
      EXPECT_GE(r.stages_run, 1u);   // answered, not rejected
      EXPECT_GT(r.confidence, 0.0);
    }
  }
  EXPECT_EQ(browned, 2u);
  // Recovery hysteresis: the measured queue delay is tiny against the 50 ms
  // setpoint, so the controller steps back down after the batch.
  EXPECT_EQ(server.brownout_level(), 0u);

  // Batch 2: second forced escalation behaves identically.
  responses = server.process_batch(requests);
  browned = 0;
  for (const auto& r : responses) browned += r.browned_out ? 1 : 0;
  EXPECT_EQ(browned, 2u);

  // Batch 3: the seam's budget is spent; full service is restored.
  responses = server.process_batch(requests);
  for (const auto& r : responses) {
    EXPECT_FALSE(r.browned_out);
    EXPECT_FALSE(r.degraded);
  }
  EXPECT_EQ(FailpointRegistry::instance().fires("admit.brownout.force"), 2u);
}

TEST(Fault, ServerBrownoutEscalatesProgressivelyOnMeasuredDelay) {
  FailpointGuard guard;
  ServerHarness harness;
  serving::ServerConfig cfg;
  cfg.admission_capacity = 8;
  // A zero setpoint makes every measured queue delay an overload signal, so
  // each batch escalates one level: a deterministic stand-in for a server
  // that genuinely cannot keep up.
  cfg.brownout.setpoint_ms = 0.0;
  serving::InferenceServer server(harness.entry(), cfg);
  std::vector<serving::InferenceRequest> requests;
  for (const auto& input : make_inputs(8)) requests.push_back({input, 0});

  serving::UsageMeter meter(harness.entry().costs, {"default"});
  std::vector<std::size_t> browned_per_batch;
  std::size_t total_browned = 0;
  for (int batch = 0; batch < 4; ++batch) {
    const auto responses = server.process_batch(requests);
    ASSERT_EQ(responses.size(), requests.size());
    std::size_t browned = 0;
    for (const auto& r : responses) {
      if (r.browned_out) {
        ++browned;
        EXPECT_TRUE(r.degraded);
        EXPECT_GE(r.stages_run, 1u);
      } else {
        EXPECT_GE(r.stages_run, 1u);
      }
    }
    browned_per_batch.push_back(browned);
    total_browned += browned;
    meter.record(requests, responses, kStages);
  }
  // Levels during the batches ran 0 → 1 → 2 → 3 (the max), so the shed
  // count grows progressively: 0, 2, 4, then 6 of 8.
  const std::vector<std::size_t> expected = {0u, 2u, 4u, 6u};
  EXPECT_EQ(browned_per_batch, expected);
  EXPECT_EQ(server.brownout_level(), 3u);  // pinned at max_level
  // The per-class ledger separates brown-out sheds from ordinary sheds.
  const auto usage = meter.usage();
  EXPECT_EQ(usage[0].brownout_sheds, total_browned);
  EXPECT_EQ(usage[0].shed, total_browned);  // no other degradations occurred
}

// ---------------------------------------------------------------------------
// Serving tier: overload shedding and stage-failure degradation
// ---------------------------------------------------------------------------

TEST(Fault, ServerOverloadBurstShedsToEarliestExit) {
  FailpointGuard guard;
  ServerHarness harness;
  serving::ServerConfig cfg;
  cfg.admission_capacity = 2;
  serving::InferenceServer server(harness.entry(), cfg);

  std::vector<serving::InferenceRequest> requests;
  const auto inputs = make_inputs(5);
  for (const auto& input : inputs) requests.push_back({input, 0});
  const auto responses = server.process_batch(requests);

  ASSERT_EQ(responses.size(), requests.size());
  std::size_t shed = 0;
  for (std::size_t i = 0; i < responses.size(); ++i) {
    const auto& r = responses[i];
    if (r.degraded) {
      ++shed;
      // Degraded-but-valid: answered from the earliest exit, not rejected.
      EXPECT_GE(r.stages_run, 1u);
      EXPECT_LE(r.stages_run, cfg.shed_max_stages);
      EXPECT_GT(r.confidence, 0.0);
    } else {
      EXPECT_FALSE(r.expired);
      EXPECT_GE(r.stages_run, 1u);
    }
  }
  EXPECT_EQ(shed, requests.size() - cfg.admission_capacity);

  // The per-class ledger reconciles with the shed count.
  serving::UsageMeter meter(harness.entry().costs, {"default"});
  meter.record(requests, responses, kStages);
  const auto usage = meter.usage();
  ASSERT_EQ(usage.size(), 1u);
  EXPECT_EQ(usage[0].shed, shed);
  EXPECT_EQ(usage[0].retries, 0u);
  EXPECT_EQ(usage[0].requests, requests.size());
}

TEST(Fault, ServerStageCrashIsRetriedTransparently) {
  FailpointGuard guard;
  FailpointSpec spec;
  spec.max_fires = 1;
  FailpointRegistry::instance().arm("serving.stage.crash", spec);

  ServerHarness harness;
  serving::InferenceServer server(harness.entry(), serving::ServerConfig{});
  std::vector<serving::InferenceRequest> requests;
  for (const auto& input : make_inputs(4)) requests.push_back({input, 0});
  const auto responses = server.process_batch(requests);

  ASSERT_EQ(responses.size(), requests.size());
  std::size_t total_retries = 0;
  for (const auto& r : responses) {
    EXPECT_FALSE(r.degraded);
    EXPECT_FALSE(r.expired);
    EXPECT_GE(r.stages_run, 1u);
    total_retries += r.retries;
  }
  EXPECT_EQ(total_retries, 1u);  // the one injected crash cost one retry
}

TEST(Fault, ServerPersistentStageCrashDegradesEveryRequest) {
  FailpointGuard guard;
  FailpointRegistry::instance().arm("serving.stage.crash", FailpointSpec{});  // p=1, ∞

  ServerHarness harness;
  serving::ServerConfig cfg;
  cfg.max_stage_retries = 2;
  serving::InferenceServer server(harness.entry(), cfg);
  std::vector<serving::InferenceRequest> requests;
  for (const auto& input : make_inputs(3)) requests.push_back({input, 0});
  const auto responses = server.process_batch(requests);  // must not throw

  ASSERT_EQ(responses.size(), requests.size());
  for (const auto& r : responses) {
    EXPECT_TRUE(r.degraded);
    EXPECT_EQ(r.stages_run, 0u);
    EXPECT_EQ(r.retries, cfg.max_stage_retries + 1);
  }
  // Reconcile: every injected fault is accounted for as a retry.
  std::size_t total_retries = 0;
  for (const auto& r : responses) total_retries += r.retries;
  EXPECT_EQ(FailpointRegistry::instance().fires("serving.stage.crash"),
            total_retries);
}

TEST(Fault, ServerShedPlusCrashCountersReconcile) {
  FailpointGuard guard;
  FailpointSpec spec;
  spec.max_fires = 2;
  FailpointRegistry::instance().arm("serving.stage.crash", spec);

  ServerHarness harness;
  serving::ServerConfig cfg;
  cfg.admission_capacity = 2;
  cfg.max_stage_retries = 2;
  serving::InferenceServer server(harness.entry(), cfg);
  std::vector<serving::InferenceRequest> requests;
  for (const auto& input : make_inputs(5)) requests.push_back({input, 0});
  const auto responses = server.process_batch(requests);

  ASSERT_EQ(responses.size(), requests.size());
  std::size_t shed = 0;
  std::size_t total_retries = 0;
  for (const auto& r : responses) {
    EXPECT_FALSE(r.expired);
    total_retries += r.retries;
    shed += r.degraded ? 1 : 0;
  }
  EXPECT_EQ(shed, 3u);
  EXPECT_EQ(total_retries, 2u);

  serving::UsageMeter meter(harness.entry().costs, {"default"});
  meter.record(requests, responses, kStages);
  const auto usage = meter.usage();
  EXPECT_EQ(usage[0].shed, shed);
  EXPECT_EQ(usage[0].retries, total_retries);
  EXPECT_EQ(usage[0].retries,
            FailpointRegistry::instance().fires("serving.stage.crash"));
}

TEST(Fault, ServerRejectsInvalidInputsUpFront) {
  ServerHarness harness;
  serving::InferenceServer server(harness.entry(), serving::ServerConfig{});

  EXPECT_THROW(server.process_batch({}), InvalidArgument);

  std::vector<serving::InferenceRequest> unknown_class;
  unknown_class.push_back({make_inputs(1).front(), 7});
  EXPECT_THROW(server.process_batch(unknown_class), InvalidArgument);

  std::vector<serving::InferenceRequest> empty_tensor;
  empty_tensor.push_back({tensor::Tensor{}, 0});
  EXPECT_THROW(server.process_batch(empty_tensor), InvalidArgument);

  serving::ServerConfig bad;
  bad.shed_max_stages = 0;
  EXPECT_THROW(serving::InferenceServer(harness.entry(), bad), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Environment-armed chaos (CI's EUGENE_FAILPOINTS job)
// ---------------------------------------------------------------------------

TEST(FaultEnv, LiveSurvivesEnvironmentArmedChaos) {
  FailpointGuard guard;
  // CI arms e.g. EUGENE_FAILPOINTS='live.worker.crash=error:p=0.05:seed=11';
  // without the variable this runs as a plain live-mode smoke test.
  const std::size_t armed = FailpointRegistry::instance().arm_from_env();

  auto replicas = make_replicas(3);
  const auto curves = make_curves();
  const auto inputs = make_inputs(10);
  sched::LiveConfig cfg;
  cfg.max_retries = 3;
  cfg.max_respawns = 4;
  cfg.worker_timeout_ms = 2000.0;
  cfg.retry.base_delay_ms = 0.1;
  sched::LiveStats stats;
  const auto results = sched::run_live(replicas, curves, inputs, cfg, &stats);

  ASSERT_EQ(results.size(), inputs.size());
  for (const auto& r : results) expect_well_formed(r, kStages);
  if (armed == 0) {
    EXPECT_EQ(stats.worker_crashes + stats.worker_timeouts + stats.degraded, 0u);
  }
}

TEST(FaultEnv, LiveOverloadControlSurvivesEnvironmentArmedChaos) {
  FailpointGuard guard;
  // CI's overload-chaos job arms the §11 seams, e.g.
  //   EUGENE_FAILPOINTS='live.worker.sick=error:p=0.4:seed=3,
  //                      health.breaker.trip=error:p=0.1:seed=5,
  //                      hedge.lose.race=error:p=0.5:seed=7'
  // Without the variable this is a hedging+breaker smoke test.
  const std::size_t armed = FailpointRegistry::instance().arm_from_env();

  auto replicas = make_replicas(3);
  const auto curves = make_curves();
  const auto inputs = make_inputs(12);
  sched::LiveConfig cfg;
  cfg.max_retries = 4;
  cfg.max_respawns = 4;
  cfg.worker_timeout_ms = 2000.0;
  cfg.retry.base_delay_ms = 0.1;
  cfg.health.min_samples = 2;
  cfg.health.open_cooldown_ms = 20.0;  // breakers recover mid-run
  cfg.hedging = true;
  cfg.hedge_quantile = 0.9;
  cfg.hedge_min_samples = 4;
  sched::LiveStats stats;
  const auto results = sched::run_live(replicas, curves, inputs, cfg, &stats);

  ASSERT_EQ(results.size(), inputs.size());
  for (const auto& r : results) expect_well_formed(r, kStages);
  // Every recoverable worker error traces back to a sick-seam fire; the
  // converse only holds for kind=error arming (a kind=delay fire makes a
  // straggler, not an error), so this stays an upper bound under env chaos.
  EXPECT_LE(stats.worker_errors,
            FailpointRegistry::instance().fires("live.worker.sick"));
  EXPECT_LE(stats.hedges_won, stats.hedges_issued);
  if (armed == 0) {
    EXPECT_EQ(stats.worker_errors + stats.breaker_trips + stats.degraded, 0u);
  }
}

TEST(FaultEnv, ServerSurvivesEnvironmentArmedChaos) {
  FailpointGuard guard;
  // CI arms e.g. EUGENE_FAILPOINTS='admit.brownout.force=error:p=0.5:seed=2,
  // serving.stage.crash=error:p=0.05:seed=4'; unarmed it is a smoke test.
  const std::size_t armed = FailpointRegistry::instance().arm_from_env();

  ServerHarness harness;
  serving::ServerConfig cfg;
  cfg.admission_capacity = 6;
  cfg.max_stage_retries = 3;
  serving::InferenceServer server(harness.entry(), cfg);
  std::vector<serving::InferenceRequest> requests;
  for (const auto& input : make_inputs(8)) requests.push_back({input, 0});

  for (int batch = 0; batch < 3; ++batch) {
    const auto responses = server.process_batch(requests);  // must not throw
    ASSERT_EQ(responses.size(), requests.size());
    for (const auto& r : responses) {
      EXPECT_LE(r.stages_run, kStages);
      if (r.browned_out) {
        EXPECT_TRUE(r.degraded);
      }
      if (!r.expired && !r.degraded) {
        EXPECT_GE(r.stages_run, 1u);
      }
    }
  }
  if (armed == 0) {
    EXPECT_EQ(server.brownout_level(), 0u);
  }
}

}  // namespace
}  // namespace eugene
