// Tests for the common substrate: errors, rng, stats, clocks, thread pool,
// channels (in-memory and POSIX FIFO), and the stage-report wire format.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <thread>

#include "common/cancellation.hpp"
#include "common/channel.hpp"
#include "common/health.hpp"
#include "common/retry.hpp"
#include "common/lock_rank.hpp"
#include "common/thread_annotations.hpp"
#include "common/check.hpp"
#include "common/clock.hpp"
#include "common/error.hpp"
#include "common/fifo_channel.hpp"
#include "common/io.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"

namespace eugene {
namespace {

TEST(Error, CheckMacrosThrowTypedExceptions) {
  EXPECT_THROW(EUGENE_REQUIRE(false, "client bug"), InvalidArgument);
  EXPECT_THROW(EUGENE_CHECK(false) << "internal bug", InternalError);
  EXPECT_NO_THROW(EUGENE_REQUIRE(true, ""));
  EXPECT_NO_THROW(EUGENE_CHECK(true) << "never rendered");
}

TEST(Check, StreamedMessageAndLocationInWhat) {
  try {
    EUGENE_CHECK(1 + 1 == 3) << "math is broken, off by " << 1;
    FAIL() << "should have thrown";
  } catch (const InternalError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 + 1 == 3"), std::string::npos);
    EXPECT_NE(what.find("math is broken, off by 1"), std::string::npos);
    EXPECT_NE(what.find("test_common.cpp"), std::string::npos);
  }
}

TEST(Check, ComparisonMacrosReportBothValues) {
  try {
    EUGENE_CHECK_LT(5, 3) << "expected ordering";
    FAIL() << "should have thrown";
  } catch (const InternalError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("5 < 3"), std::string::npos);
    EXPECT_NE(what.find("(5 vs. 3)"), std::string::npos);
    EXPECT_NE(what.find("expected ordering"), std::string::npos);
  }
  EXPECT_THROW(EUGENE_CHECK_EQ(1, 2), InternalError);
  EXPECT_THROW(EUGENE_CHECK_NE(7, 7), InternalError);
  EXPECT_THROW(EUGENE_CHECK_LE(2, 1), InternalError);
  EXPECT_THROW(EUGENE_CHECK_GT(1, 1), InternalError);
  EXPECT_THROW(EUGENE_CHECK_GE(0, 1), InternalError);
}

TEST(Check, PassingChecksEvaluateOperandsOnce) {
  int evaluations = 0;
  auto next = [&evaluations] { return ++evaluations; };
  EUGENE_CHECK_GE(next(), 1);
  EXPECT_EQ(evaluations, 1);
  EUGENE_CHECK(next() == 2) << "streamed only on failure";
  EXPECT_EQ(evaluations, 2);
}

TEST(Check, StreamedMessageIsLazy) {
  // The message expression after a passing check must never run.
  bool rendered = false;
  auto render = [&rendered] {
    rendered = true;
    return "boom";
  };
  EUGENE_CHECK(true) << render();
  EXPECT_FALSE(rendered);
}

TEST(Check, MacroIsASingleStatement) {
  // The if/else expansion must neither split under an unbraced if nor steal
  // the else branch (dangling-else).
  if (true)
    EUGENE_CHECK(true) << "fine";
  else
    FAIL() << "dangling else captured";

  bool reached_else = false;
  if (false)
    EUGENE_CHECK(true);
  else
    reached_else = true;
  EXPECT_TRUE(reached_else);
}

TEST(Check, DcheckSemanticsMatchBuildType) {
  int evaluations = 0;
#ifdef NDEBUG
  // Release: operands are never evaluated and failures never throw.
  EUGENE_DCHECK([&evaluations] { ++evaluations; return false; }());
  EUGENE_DCHECK_EQ([&evaluations] { ++evaluations; return 1; }(), 2);
  EXPECT_EQ(evaluations, 0);
#else
  // Debug: EUGENE_DCHECK is exactly EUGENE_CHECK.
  EUGENE_DCHECK([&evaluations] { ++evaluations; return true; }());
  EXPECT_EQ(evaluations, 1);
  EXPECT_THROW(EUGENE_DCHECK(false) << "debug failure", InternalError);
  EXPECT_THROW(EUGENE_DCHECK_EQ(1, 2), InternalError);
#endif
}

TEST(Error, MessageCarriesLocationAndExpression) {
  try {
    EUGENE_REQUIRE(1 == 2, "numbers disagree");
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("numbers disagree"), std::string::npos);
    EXPECT_NE(what.find("test_common.cpp"), std::string::npos);
  }
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(2);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(3);
  OnlineStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(4);
  std::vector<double> weights = {1.0, 3.0};
  std::size_t ones = 0;
  for (int i = 0; i < 4000; ++i) ones += rng.categorical(weights) == 1 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(ones) / 4000.0, 0.75, 0.05);
}

TEST(Rng, SplitProducesIndependentStreams) {
  Rng parent(9);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  // Different children must not mirror each other.
  int same = 0;
  for (int i = 0; i < 20; ++i)
    same += child1.uniform_int(0, 1000) == child2.uniform_int(0, 1000) ? 1 : 0;
  EXPECT_LT(same, 5);
}

TEST(Rng, InvalidArgumentsThrow) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform(3.0, 2.0), InvalidArgument);
  EXPECT_THROW(rng.bernoulli(1.5), InvalidArgument);
  EXPECT_THROW(rng.exponential(0.0), InvalidArgument);
}

TEST(Stats, MeanVarianceStddev) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(Stats, VarianceWelfordMatchesTwoPass) {
  // The two-pass reference form: mean first, then squared deviations.
  const auto two_pass = [](const std::vector<double>& xs) {
    const double m = mean(xs);
    double acc = 0.0;
    for (double x : xs) acc += (x - m) * (x - m);
    return acc / static_cast<double>(xs.size());
  };
  // Ordinary data: the single-pass Welford form agrees within eps.
  Rng rng(17);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.uniform(-3.0, 3.0));
  EXPECT_NEAR(variance(xs), two_pass(xs), 1e-12);

  // Large common offset: the data is {1e9, 1e9+1, 1e9+2, 1e9+3}, whose true
  // variance is exactly 1.25. Welford keeps full precision here; the old
  // two-pass form survives this magnitude too, but accumulate-of-squares
  // style rewrites do not — pin the exact answer, not just agreement.
  const std::vector<double> offset = {1e9, 1e9 + 1.0, 1e9 + 2.0, 1e9 + 3.0};
  EXPECT_DOUBLE_EQ(variance(offset), 1.25);
  EXPECT_NEAR(variance(offset), two_pass(offset), 1e-9);

  // Degenerate ranges.
  const std::vector<double> one = {42.0};
  EXPECT_DOUBLE_EQ(variance(one), 0.0);
  const std::vector<double> constant(64, 7.5e8);
  EXPECT_DOUBLE_EQ(variance(constant), 0.0);
}

TEST(Stats, SoftmaxIsStableAndNormalized) {
  const std::vector<float> logits = {1000.0f, 1000.0f, 999.0f};
  const auto p = softmax(logits);
  double sum = 0.0;
  for (float v : p) {
    EXPECT_TRUE(std::isfinite(v));
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);
  EXPECT_GT(p[0], p[2]);
}

TEST(Stats, EntropyBounds) {
  const std::vector<float> uniform = {0.25f, 0.25f, 0.25f, 0.25f};
  const std::vector<float> point = {1.0f, 0.0f, 0.0f, 0.0f};
  EXPECT_NEAR(entropy(uniform), std::log(4.0), 1e-6);
  EXPECT_NEAR(entropy(point), 0.0, 1e-9);
}

TEST(Stats, RSquaredPerfectAndMeanPredictor) {
  const std::vector<double> truth = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(r_squared(truth, truth), 1.0);
  const std::vector<double> mean_pred(4, 2.5);
  EXPECT_NEAR(r_squared(truth, mean_pred), 0.0, 1e-12);
}

TEST(Stats, OnlineMatchesBatch) {
  Rng rng(6);
  std::vector<double> xs;
  OnlineStats online;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.normal(1.0, 3.0);
    xs.push_back(v);
    online.add(v);
  }
  EXPECT_NEAR(online.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(online.variance(), variance(xs), 1e-6);
}

TEST(Clock, VirtualClockAdvances) {
  VirtualClock clock;
  EXPECT_DOUBLE_EQ(clock.now_ms(), 0.0);
  clock.advance_by(5.5);
  EXPECT_DOUBLE_EQ(clock.now_ms(), 5.5);
  clock.advance_to(10.0);
  EXPECT_DOUBLE_EQ(clock.now_ms(), 10.0);
  EXPECT_THROW(clock.advance_to(9.0), InternalError);
  EXPECT_THROW(clock.advance_by(-1.0), InvalidArgument);
}

TEST(Clock, StopwatchMeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(watch.elapsed_ms(), 8.0);
}

TEST(ThreadPool, ExecutesAllSubmittedWork) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i)
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ReturnsValues) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i)
      pool.submit([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        counter.fetch_add(1);
      });
  }
  EXPECT_EQ(counter.load(), 20);
}

TEST(Channel, FifoOrderSingleThread) {
  Channel<int> ch;
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ch.send(i));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(ch.receive().value(), i);
  EXPECT_FALSE(ch.try_receive().has_value());
}

TEST(Channel, CloseWakesReceiversAndRejectsSends) {
  Channel<int> ch;
  std::thread closer([&ch] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ch.close();
  });
  EXPECT_FALSE(ch.receive().has_value());
  closer.join();
  EXPECT_FALSE(ch.send(1));
}

TEST(Channel, DrainsRemainingItemsAfterClose) {
  Channel<int> ch;
  ch.send(7);
  ch.close();
  EXPECT_EQ(ch.receive().value(), 7);
  EXPECT_FALSE(ch.receive().has_value());
}

TEST(Channel, ManyProducersOneConsumer) {
  Channel<int> ch;
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p)
    producers.emplace_back([&ch, p] {
      for (int i = 0; i < 100; ++i) ch.send(p * 100 + i);
    });
  std::size_t received = 0;
  while (received < 400) {
    if (ch.receive().has_value()) ++received;
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(received, 400u);
  EXPECT_EQ(ch.pending(), 0u);
}

TEST(StageReport, EncodeDecodeRoundTrip) {
  StageReport report;
  report.task_id = 12345;
  report.stage = 2;
  report.predicted_label = 7;
  report.confidence = 0.8125f;
  const auto bytes = report.encode();
  EXPECT_EQ(bytes.size(), 16u);
  const auto decoded = StageReport::decode(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, report);
}

TEST(StageReport, DecodeRejectsWrongSize) {
  EXPECT_FALSE(StageReport::decode(std::vector<std::uint8_t>(15)).has_value());
  EXPECT_FALSE(StageReport::decode({}).has_value());
}

// ---- durable-state primitives (common/io, DESIGN.md §9) -------------------

std::string io_tmp_path(const std::string& tag) {
  return "/tmp/eugene_test_io_" + tag + "_" + std::to_string(::getpid());
}

TEST(Io, AtomicWriteReplacesWholeFileOrNothing) {
  const std::string path = io_tmp_path("atomic");
  const std::vector<std::uint8_t> first = {1, 2, 3, 4};
  io::atomic_write_file(path, first);
  EXPECT_EQ(io::read_file_bytes(path), first);
  const std::vector<std::uint8_t> second = {9, 8, 7};
  io::atomic_write_file(path, second);
  EXPECT_EQ(io::read_file_bytes(path), second);
  EXPECT_FALSE(io::file_exists(path + ".tmp"));  // temp renamed away
  std::remove(path.c_str());
}

TEST(Io, ReadMissingFileThrowsIoError) {
  EXPECT_THROW(io::read_file_bytes(io_tmp_path("missing")), IoError);
  EXPECT_FALSE(io::file_exists(io_tmp_path("missing")));
}

TEST(Io, ByteWriterReaderRoundTrip) {
  io::ByteWriter w;
  w.u8(7);
  w.u32(0xDEADBEEF);
  w.u64(1ull << 40);
  w.f64(3.25);
  w.str("eugene");
  w.f64_vec({1.0, 2.0, 3.0});

  io::ByteReader r(w.buffer(), "test");
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 1ull << 40);
  EXPECT_DOUBLE_EQ(r.f64(), 3.25);
  EXPECT_EQ(r.str(), "eugene");
  EXPECT_EQ(r.f64_vec(), (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_NO_THROW(r.expect_exhausted());
}

TEST(Io, ByteReaderOverReadThrowsCorruption) {
  io::ByteWriter w;
  w.u32(5);
  io::ByteReader r(w.buffer(), "test");
  EXPECT_THROW((void)r.u64(), CorruptionError);

  // A length prefix that exceeds the payload must throw, not allocate.
  io::ByteWriter lying;
  lying.u64(1ull << 62);
  io::ByteReader r2(lying.buffer(), "test");
  EXPECT_THROW((void)r2.f64_vec(), CorruptionError);

  io::ByteReader r3(w.buffer(), "test");
  (void)r3.u32();
  EXPECT_NO_THROW(r3.expect_exhausted());
}

TEST(Io, BlobRoundTripAndValidation) {
  const std::vector<std::uint8_t> payload = {10, 20, 30, 40, 50};
  const std::vector<std::uint8_t> bytes = io::encode_blob(0xAABBCCDD, 1, payload);
  const io::Blob blob = io::decode_blob(bytes, 0xAABBCCDD, 1, "test blob");
  EXPECT_EQ(blob.version, 1u);
  EXPECT_EQ(blob.payload, payload);

  // Wrong magic.
  EXPECT_THROW(io::decode_blob(bytes, 0x11111111, 1, "t"), CorruptionError);
  // Future version.
  const auto future = io::encode_blob(0xAABBCCDD, 2, payload);
  EXPECT_THROW(io::decode_blob(future, 0xAABBCCDD, 1, "t"), CorruptionError);
  // Truncation at every prefix length must throw, never crash.
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    const std::vector<std::uint8_t> cut(bytes.begin(), bytes.begin() + n);
    EXPECT_THROW(io::decode_blob(cut, 0xAABBCCDD, 1, "t"), CorruptionError) << n;
  }
  // Any single bit flip in the payload or footer must be detected.
  for (std::size_t i = 16; i < bytes.size(); ++i) {
    std::vector<std::uint8_t> flipped = bytes;
    flipped[i] ^= 0x01;
    EXPECT_THROW(io::decode_blob(flipped, 0xAABBCCDD, 1, "t"), CorruptionError) << i;
  }
}

TEST(FifoChannel, FramesCrossARealNamedPipe) {
  // Mirrors the paper's worker→scheduler named-pipe hop with real mkfifo.
  const std::string path = "/tmp/eugene_test_fifo_" + std::to_string(::getpid());
  std::thread writer([&path] {
    FifoWriter w(path);  // blocks until the reader opens
    StageReport r1{1, 0, 3, 0.5f};
    StageReport r2{1, 1, 4, 0.75f};
    EXPECT_TRUE(w.write_frame(r1.encode()));
    EXPECT_TRUE(w.write_frame(r2.encode()));
  });
  FifoReader reader(path);
  const auto f1 = reader.read_frame();
  const auto f2 = reader.read_frame();
  writer.join();
  const auto f3 = reader.read_frame();  // EOF after writer closed

  ASSERT_TRUE(f1.has_value());
  ASSERT_TRUE(f2.has_value());
  EXPECT_FALSE(f3.has_value());
  EXPECT_EQ(StageReport::decode(*f1)->predicted_label, 3u);
  EXPECT_NEAR(StageReport::decode(*f2)->confidence, 0.75f, 1e-6);
}

// ---------------------------------------------------------------------------
// Lock-rank deadlock-order checker (common/lock_rank.hpp, DESIGN.md §10).
// The checker is compiled out in Release builds, so everything that asserts
// on detection is guarded by EUGENE_LOCK_RANK_CHECKS.
// ---------------------------------------------------------------------------

#if EUGENE_LOCK_RANK_CHECKS

namespace {
// Capture handler: ViolationHandler is a plain function pointer, so the
// report lands in a file-scope string (tests run sequentially).
std::string g_last_violation;  // NOLINT(cert-err58-cpp)
int g_violation_count = 0;
void capture_violation(const std::string& report) {
  g_last_violation = report;
  ++g_violation_count;
}

/// Installs the capture handler for one test body and restores the previous
/// handler (the default abort) on scope exit.
struct ViolationCapture {
  ViolationCapture() {
    g_last_violation.clear();
    g_violation_count = 0;
    previous = lock_rank::set_violation_handler(&capture_violation);
  }
  ~ViolationCapture() { lock_rank::set_violation_handler(previous); }
  lock_rank::ViolationHandler previous;
};

// Ad-hoc ranks for checker tests: values outside the registry are legal at
// runtime (lock_rank_name renders "?"), which keeps these tests independent
// of the production rank map.
constexpr LockRank kLow = static_cast<LockRank>(10);
constexpr LockRank kHigh = static_cast<LockRank>(20);
}  // namespace

TEST(LockRank, MonotoneAcquisitionIsClean) {
  ViolationCapture capture;
  Mutex low(kLow, "test_low");
  Mutex high(kHigh, "test_high");
  ASSERT_EQ(lock_rank::held_count(), 0u);
  low.lock();
  high.lock();
  EXPECT_EQ(lock_rank::held_count(), 2u);
  high.unlock();
  low.unlock();
  EXPECT_EQ(lock_rank::held_count(), 0u);
  EXPECT_EQ(g_violation_count, 0);
}

TEST(LockRank, InversionReportNamesBothAcquisitionSites) {
  ViolationCapture capture;
  Mutex low(kLow, "test_low");
  Mutex high(kHigh, "test_high");
  high.lock();
  low.lock();  // B→A inversion: rank 10 while holding rank 20
  EXPECT_EQ(g_violation_count, 1);
  EXPECT_NE(g_last_violation.find("lock-rank violation"), std::string::npos)
      << g_last_violation;
  // Both sides of the would-be cycle, with names, ranks, and file:line.
  EXPECT_NE(g_last_violation.find("test_low"), std::string::npos);
  EXPECT_NE(g_last_violation.find("test_high"), std::string::npos);
  EXPECT_NE(g_last_violation.find("rank 10"), std::string::npos);
  EXPECT_NE(g_last_violation.find("rank 20"), std::string::npos);
  EXPECT_NE(g_last_violation.find("test_common.cpp"), std::string::npos);
  low.unlock();
  high.unlock();
}

TEST(LockRank, EqualRankIsAViolation) {
  // Two locks of the same rank have no defined order, so A→B on one thread
  // and B→A on another would deadlock; the checker rejects the second
  // acquisition even though the ranks are equal, not decreasing.
  ViolationCapture capture;
  Mutex a(kLow, "test_a");
  Mutex b(kLow, "test_b");
  a.lock();
  b.lock();
  EXPECT_EQ(g_violation_count, 1);
  b.unlock();
  a.unlock();
}

TEST(LockRank, NonLifoReleaseIsTracked) {
  ViolationCapture capture;
  Mutex low(kLow, "test_low");
  Mutex high(kHigh, "test_high");
  low.lock();
  high.lock();
  low.unlock();  // released out of acquisition order — legal
  EXPECT_EQ(lock_rank::held_count(), 1u);
  // With only rank 20 held, a fresh rank-10 acquisition is still a violation.
  Mutex low2(kLow, "test_low2");
  low2.lock();
  EXPECT_EQ(g_violation_count, 1);
  low2.unlock();
  high.unlock();
  EXPECT_EQ(lock_rank::held_count(), 0u);
  EXPECT_EQ(g_violation_count, 1);
}

TEST(LockRank, TryLockIsTrackedButNotEnforced) {
  // try_lock cannot block, so it cannot complete a deadlock cycle; it is the
  // sanctioned escape hatch for genuinely order-free designs.
  ViolationCapture capture;
  Mutex low(kLow, "test_low");
  Mutex high(kHigh, "test_high");
  high.lock();
  ASSERT_TRUE(low.try_lock());
  EXPECT_EQ(g_violation_count, 0);
  EXPECT_EQ(lock_rank::held_count(), 2u);
  // ...but the acquisition is *tracked*: a later blocking lock above the
  // try-locked rank still sees a complete picture of what this thread holds.
  low.unlock();
  high.unlock();
}

TEST(LockRank, ProductionRanksFormAStrictOrderOnTheServingPath) {
  // The serving path's deepest real nesting: registry → usage meter →
  // failpoint registry → logging. If someone reorders the registry ranks
  // this regression fails before any production schedule ever deadlocks.
  ViolationCapture capture;
  Mutex registry(LockRank::kModelRegistry, "registry");
  Mutex usage(LockRank::kUsageMeter, "usage");
  Mutex failpoints(LockRank::kFailpointRegistry, "failpoints");
  Mutex logging(LockRank::kLogging, "logging");
  registry.lock();
  usage.lock();
  failpoints.lock();
  logging.lock();
  EXPECT_EQ(g_violation_count, 0);
  logging.unlock();
  failpoints.unlock();
  usage.unlock();
  registry.unlock();
}

#if GTEST_HAS_DEATH_TEST
TEST(LockRankDeathTest, InversionAbortsWithReport) {
  // No capture handler here: the default path prints the report to stderr
  // and aborts, which is exactly what a production debug build must do.
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex low(kLow, "death_low");
        Mutex high(kHigh, "death_high");
        high.lock();
        low.lock();
      },
      "lock-rank violation");
}
#endif  // GTEST_HAS_DEATH_TEST

#else  // !EUGENE_LOCK_RANK_CHECKS

TEST(LockRank, CheckerCompiledOutMutexStillLocks) {
  // Release builds: eugene::Mutex must degrade to a plain std::mutex.
  Mutex mu(LockRank::kChannel, "release_mutex");
  {
    MutexLock lock(mu);
  }
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
  EXPECT_EQ(lock_rank::held_count(), 0u);
}

#endif  // EUGENE_LOCK_RANK_CHECKS

// ---------------------------------------------------------------------------
// Retry backoff edge cases (the overflow family: parameters that used to
// spin the doubling loop for up to SIZE_MAX iterations).
// ---------------------------------------------------------------------------

TEST(Retry, ZeroMaxAttemptsIsInvalidArgument) {
  RetryPolicy policy;
  policy.max_attempts = 0;
  Rng rng(1);
  EXPECT_THROW(
      retry_with_backoff(policy, rng, [] { return 0; }), InvalidArgument);
}

TEST(Retry, ZeroBaseDelayTerminatesAndStaysZero) {
  // 0 * 2 == 0 never reaches max_delay_ms; without the doubling cap this
  // looped `attempt - 1` times — an effective hang for large attempts.
  RetryPolicy policy;
  policy.base_delay_ms = 0.0;
  policy.max_delay_ms = 100.0;
  policy.jitter = 0.0;
  Rng rng(1);
  EXPECT_DOUBLE_EQ(backoff_delay_ms(policy, 1, rng), 0.0);
  EXPECT_DOUBLE_EQ(
      backoff_delay_ms(policy, std::numeric_limits<std::size_t>::max(), rng),
      0.0);
}

TEST(Retry, HugeAttemptSaturatesAtMaxDelayEvenWithInfiniteMax) {
  // delay < max_delay_ms never fails against an infinite max, so only the
  // doubling cap bounds the loop; the product must saturate, not overflow.
  RetryPolicy policy;
  policy.base_delay_ms = 1.0;
  policy.max_delay_ms = std::numeric_limits<double>::infinity();
  policy.jitter = 0.0;
  Rng rng(1);
  const double d =
      backoff_delay_ms(policy, std::numeric_limits<std::size_t>::max(), rng);
  EXPECT_TRUE(std::isfinite(d));
  EXPECT_DOUBLE_EQ(d, std::ldexp(1.0, 63));  // base * 2^63, the doubling cap

  policy.max_delay_ms = 250.0;
  EXPECT_DOUBLE_EQ(backoff_delay_ms(policy, 4000, rng), 250.0);
}

TEST(Retry, JitterStaysWithinConfiguredBounds) {
  RetryPolicy policy;
  policy.base_delay_ms = 8.0;
  policy.max_delay_ms = 8.0;
  policy.jitter = 0.25;
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = backoff_delay_ms(policy, 1, rng);
    EXPECT_GE(d, 8.0 * 0.75);
    EXPECT_LE(d, 8.0 * 1.25);
  }
  policy.jitter = 1.5;
  EXPECT_THROW(backoff_delay_ms(policy, 1, rng), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Circuit breaker state machine (driven on a VirtualClock so cooldown and
// half-open transitions are deterministic).
// ---------------------------------------------------------------------------

namespace {

HealthConfig fast_breaker_config() {
  HealthConfig cfg;
  cfg.ewma_alpha = 0.5;
  cfg.error_threshold = 0.4;
  cfg.min_samples = 2;
  cfg.open_cooldown_ms = 10.0;
  cfg.half_open_probes = 2;
  return cfg;
}

}  // namespace

TEST(Health, BreakerStartsClosedAndAdmitsEverything) {
  CircuitBreaker b(fast_breaker_config());
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(b.allow(0.0));
  EXPECT_EQ(b.trips(), 0u);
}

TEST(Health, ErrorRateBreachOpensThenCooldownHalfOpensThenProbesClose) {
  CircuitBreaker b(fast_breaker_config());
  VirtualClock clock;
  // Failures past min_samples push the error EWMA over 0.4: trip.
  b.record_failure(clock.now_ms());
  b.record_failure(clock.now_ms());
  EXPECT_EQ(b.state(), BreakerState::kOpen);
  EXPECT_EQ(b.trips(), 1u);
  EXPECT_FALSE(b.allow(clock.now_ms()));

  // Cooldown elapses: the next allow() is the half-open probe.
  clock.advance_by(10.0);
  EXPECT_TRUE(b.allow(clock.now_ms()));
  EXPECT_EQ(b.state(), BreakerState::kHalfOpen);

  // half_open_probes successes close it and forgive the error history.
  b.record_success(1.0, clock.now_ms());
  EXPECT_EQ(b.state(), BreakerState::kHalfOpen);
  b.record_success(1.0, clock.now_ms());
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  EXPECT_DOUBLE_EQ(b.error_rate(), 0.0);
  EXPECT_TRUE(b.allow(clock.now_ms()));
}

TEST(Health, HalfOpenProbeFailureReopensImmediately) {
  CircuitBreaker b(fast_breaker_config());
  VirtualClock clock;
  b.record_failure(clock.now_ms());
  b.record_failure(clock.now_ms());
  ASSERT_EQ(b.state(), BreakerState::kOpen);
  clock.advance_by(10.0);
  ASSERT_TRUE(b.allow(clock.now_ms()));  // half-open probe
  b.record_failure(clock.now_ms());      // probe fails
  EXPECT_EQ(b.state(), BreakerState::kOpen);
  EXPECT_EQ(b.trips(), 2u);
  EXPECT_FALSE(b.allow(clock.now_ms()));
}

TEST(Health, LatencyBreachTripsWithoutAnyErrors) {
  HealthConfig cfg = fast_breaker_config();
  cfg.latency_threshold_ms = 50.0;
  CircuitBreaker b(cfg);
  VirtualClock clock;
  b.record_success(200.0, clock.now_ms());
  EXPECT_EQ(b.state(), BreakerState::kClosed);  // min_samples not yet met
  b.record_success(200.0, clock.now_ms());
  EXPECT_EQ(b.state(), BreakerState::kOpen);
  EXPECT_DOUBLE_EQ(b.error_rate(), 0.0);
  EXPECT_GE(b.latency_ewma_ms(), 50.0);
}

TEST(Health, DisabledBreakerNeverBlocksOrTrips) {
  HealthConfig cfg = fast_breaker_config();
  cfg.enabled = false;
  CircuitBreaker b(cfg);
  for (int i = 0; i < 10; ++i) b.record_failure(0.0);
  EXPECT_TRUE(b.allow(0.0));
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  EXPECT_EQ(b.trips(), 0u);
}

TEST(Health, ScoreOrdersSickerReplicasLast) {
  CircuitBreaker healthy(fast_breaker_config());
  CircuitBreaker sick(fast_breaker_config());
  healthy.record_success(1.0, 0.0);
  sick.record_success(1.0, 0.0);
  sick.record_failure(0.0);
  EXPECT_LT(healthy.score(), sick.score());
}

TEST(Health, ConfigValidationRejectsNonsense) {
  HealthConfig bad;
  bad.ewma_alpha = 0.0;
  EXPECT_THROW(CircuitBreaker{bad}, InvalidArgument);
  bad = HealthConfig{};
  bad.error_threshold = 1.5;
  EXPECT_THROW(CircuitBreaker{bad}, InvalidArgument);
  bad = HealthConfig{};
  bad.half_open_probes = 0;
  EXPECT_THROW(CircuitBreaker{bad}, InvalidArgument);
}

// ---------------------------------------------------------------------------
// Cancellation tokens.
// ---------------------------------------------------------------------------

TEST(Cancellation, DetachedTokenNeverStops) {
  CancellationToken token;
  EXPECT_FALSE(token.valid());
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.should_stop(1.0e12));
  token.cancel();  // no-op on a detached token
  EXPECT_FALSE(token.cancelled());
}

TEST(Cancellation, DeadlineAndCancelBothStop) {
  CancellationToken token(100.0);
  EXPECT_TRUE(token.valid());
  EXPECT_FALSE(token.should_stop(99.9));
  EXPECT_TRUE(token.should_stop(100.0));  // propagated deadline passed

  CancellationToken other(1.0e9);
  CancellationToken copy = other;  // copies share the cancel flag
  EXPECT_FALSE(copy.should_stop(0.0));
  other.cancel();
  EXPECT_TRUE(copy.cancelled());
  EXPECT_TRUE(copy.should_stop(0.0));
}

}  // namespace
}  // namespace eugene
