// Reduction & caching tests: edge pruning, CSR sparse baseline, channel
// (node) pruning with weight transfer, the frequency tracker, the cache
// model, the cached-inference service, and the cache controller.
#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"
#include "data/synthetic_images.hpp"
#include "nn/train.hpp"
#include "reduce/cache.hpp"
#include "reduce/pruning.hpp"
#include "reduce/simple_cnn.hpp"
#include "reduce/sparse.hpp"

namespace eugene::reduce {
namespace {

using tensor::Tensor;

data::SyntheticImageConfig small_data_config() {
  data::SyntheticImageConfig cfg;
  cfg.num_classes = 5;
  cfg.channels = 2;
  cfg.height = 8;
  cfg.width = 8;
  return cfg;
}

SimpleCnnConfig small_cnn_config() {
  SimpleCnnConfig cfg;
  cfg.in_channels = 2;
  cfg.height = 8;
  cfg.width = 8;
  cfg.num_classes = 5;
  cfg.conv_channels = {8, 8};
  return cfg;
}

TEST(SimpleCnn, ForwardShapeAndParamAccounting) {
  SimpleCnn net(small_cnn_config());
  Rng rng(1);
  const Tensor out = net.forward(Tensor::randn({2, 8, 8}, rng));
  EXPECT_EQ(out.numel(), 5u);
  EXPECT_EQ(net.num_conv_layers(), 2u);
  EXPECT_GT(net.flops(), 0.0);
  // conv1: 8·(2·9)+8, conv2: 8·(8·9)+8, one norm (last block has none):
  // 8+8, head: 5·8+5.
  EXPECT_EQ(net.param_count(),
            (8u * 18u + 8u) + (8u * 72u + 8u) + 16u + (5u * 8u + 5u));
}

TEST(EdgePruning, ZeroesSmallestMagnitudes) {
  Tensor w({6}, std::vector<float>{0.1f, -0.9f, 0.05f, 0.7f, -0.02f, 0.3f});
  const std::size_t zeroed = prune_edges_by_magnitude(w, 0.5);
  EXPECT_EQ(zeroed, 3u);
  EXPECT_NEAR(sparsity(w), 0.5, 1e-9);
  // The large weights survive.
  EXPECT_FLOAT_EQ(w.at(1), -0.9f);
  EXPECT_FLOAT_EQ(w.at(3), 0.7f);
  EXPECT_FLOAT_EQ(w.at(2), 0.0f);
}

TEST(EdgePruning, FractionBounds) {
  Tensor w({4}, 1.0f);
  EXPECT_EQ(prune_edges_by_magnitude(w, 0.0), 0u);
  EXPECT_THROW(prune_edges_by_magnitude(w, 1.5), InvalidArgument);
}

TEST(Sparse, CsrMatchesDenseMultiply) {
  Rng rng(2);
  Tensor a = Tensor::randn({20, 30}, rng);
  prune_edges_by_magnitude(a, 0.7);
  const CsrMatrix csr = CsrMatrix::from_dense(a);
  std::vector<float> x(30);
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  const auto y_dense = dense_multiply(a, x);
  const auto y_sparse = csr.multiply(x);
  ASSERT_EQ(y_dense.size(), y_sparse.size());
  for (std::size_t i = 0; i < y_dense.size(); ++i)
    EXPECT_NEAR(y_dense[i], y_sparse[i], 1e-4);
}

TEST(Sparse, StorageOverheadIsRealUntilVerySparse) {
  // The paper's §II-B point: CSR stores index overhead per nonzero, so at
  // 50% sparsity the "compressed" matrix is larger than the dense one.
  Rng rng(3);
  Tensor a = Tensor::randn({64, 64}, rng);
  const std::size_t dense_bytes = a.numel() * sizeof(float);
  prune_edges_by_magnitude(a, 0.5);
  EXPECT_GT(CsrMatrix::from_dense(a).storage_bytes(), dense_bytes);
  prune_edges_by_magnitude(a, 0.95);
  EXPECT_LT(CsrMatrix::from_dense(a).storage_bytes(), dense_bytes);
}

TEST(ChannelPruning, ImportanceRanksFilters) {
  SimpleCnn net(small_cnn_config());
  // Make filter 3 of conv 0 clearly dominant and filter 0 nearly dead.
  nn::Conv2d& conv = net.conv(0);
  for (std::size_t j = 0; j < conv.weights().dim(1); ++j) {
    conv.weights().at(3, j) = 5.0f;
    conv.weights().at(0, j) = 1e-4f;
  }
  const auto importance = channel_importance(conv);
  EXPECT_GT(importance[3], importance[1]);
  EXPECT_LT(importance[0], importance[1]);
}

TEST(ChannelPruning, ProducesSmallerDenseModel) {
  SimpleCnn net(small_cnn_config());
  const std::size_t before_params = net.param_count();
  const double before_flops = net.flops();
  SimpleCnn reduced = prune_channels(net, 0.5);
  EXPECT_EQ(reduced.config().conv_channels[0], 4u);
  EXPECT_EQ(reduced.config().conv_channels[1], 4u);
  EXPECT_LT(reduced.param_count(), before_params / 2);
  EXPECT_LT(reduced.flops(), before_flops * 0.6);
  // Still a working dense model.
  Rng rng(4);
  const Tensor out = reduced.forward(Tensor::randn({2, 8, 8}, rng));
  EXPECT_EQ(out.numel(), 5u);
}

TEST(ChannelPruning, WeightTransferPreservesFunctionApproximately) {
  // Train, prune mildly, fine-tune briefly: accuracy should hold up.
  Rng rng(5);
  const data::Dataset train = data::generate_images(small_data_config(), 300, rng);
  const data::Dataset test = data::generate_images(small_data_config(), 150, rng);
  SimpleCnn net(small_cnn_config());
  nn::ClassifierTrainConfig tcfg;
  tcfg.epochs = 15;
  finetune(net, train, tcfg);
  const double full_acc = accuracy(net, test);
  EXPECT_GT(full_acc, 0.5);

  SimpleCnn reduced = prune_channels(net, 0.75);
  nn::ClassifierTrainConfig ft;
  ft.epochs = 3;
  finetune(reduced, train, ft);
  const double reduced_acc = accuracy(reduced, test);
  EXPECT_GT(reduced_acc, full_acc - 0.15)
      << "mild node pruning plus fine-tuning should not collapse accuracy";
}

TEST(ChannelPruning, RespectsMinChannels) {
  SimpleCnn net(small_cnn_config());
  SimpleCnn reduced = prune_channels(net, 0.01, 3);
  EXPECT_EQ(reduced.config().conv_channels[0], 3u);
  EXPECT_THROW(prune_channels(net, 0.5, 100), InvalidArgument);
}

TEST(FrequencyTracker, DetectsFrequentSet) {
  FrequencyTracker tracker(100);
  for (int i = 0; i < 60; ++i) tracker.observe(2);
  for (int i = 0; i < 25; ++i) tracker.observe(7);
  for (int i = 0; i < 15; ++i) tracker.observe(i % 5);
  // Window of 100: 60× class 2, 25× class 7, 15× classes {0..4} round robin
  // (which adds 3 more observations of class 2 → share 0.63).
  const auto set = tracker.frequent_set(0.7);
  ASSERT_GE(set.size(), 2u);
  EXPECT_EQ(set[0], 2u);
  EXPECT_EQ(set[1], 7u);
  EXPECT_NEAR(tracker.share(2), 0.63, 1e-9);
}

TEST(FrequencyTracker, WindowSlides) {
  FrequencyTracker tracker(10);
  for (int i = 0; i < 10; ++i) tracker.observe(1);
  for (int i = 0; i < 10; ++i) tracker.observe(3);
  EXPECT_NEAR(tracker.share(1), 0.0, 1e-9);
  EXPECT_NEAR(tracker.share(3), 1.0, 1e-9);
}

class CacheIntegration : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(6);
    // Traffic dominated by classes 1 and 3 (the "beer and pop bottles").
    std::vector<double> weights = {0.05, 0.4, 0.05, 0.4, 0.1};
    train_ = new data::Dataset(
        data::generate_images_weighted(small_data_config(), 500, weights, rng));
    test_ = new data::Dataset(
        data::generate_images_weighted(small_data_config(), 200, weights, rng));

    nn::StagedResNetConfig server_cfg;
    server_cfg.in_channels = 2;
    server_cfg.height = 8;
    server_cfg.width = 8;
    server_cfg.num_classes = 5;
    server_cfg.stage_channels = {4, 8, 12};
    server_ = new nn::StagedModel(nn::build_staged_resnet(server_cfg));
    nn::StagedTrainConfig tcfg;
    tcfg.epochs = 6;
    nn::StagedTrainer trainer(*server_, tcfg);
    trainer.fit(train_->samples, train_->labels);
  }

  static void TearDownTestSuite() {
    delete train_;
    delete test_;
    delete server_;
    train_ = test_ = nullptr;
    server_ = nullptr;
  }

  static data::Dataset* train_;
  static data::Dataset* test_;
  static nn::StagedModel* server_;
};

data::Dataset* CacheIntegration::train_ = nullptr;
data::Dataset* CacheIntegration::test_ = nullptr;
nn::StagedModel* CacheIntegration::server_ = nullptr;

TEST_F(CacheIntegration, CacheModelLearnsFrequentClasses) {
  CacheBuildConfig cfg;
  cfg.architecture = small_cnn_config();
  cfg.training.epochs = 12;
  Rng rng(7);
  CacheModel cache = build_cache_model(*train_, {1, 3}, cfg, rng);
  EXPECT_EQ(cache.other_label, 2u);
  EXPECT_EQ(cache.to_original(0), 1u);
  EXPECT_EQ(cache.to_original(1), 3u);
  EXPECT_FALSE(cache.to_original(2).has_value());

  // Cache model should classify frequent-class samples well.
  std::size_t correct = 0, total = 0;
  for (std::size_t i = 0; i < test_->size(); ++i) {
    if (test_->labels[i] != 1 && test_->labels[i] != 3) continue;
    ++total;
    const auto probs = nn::softmax_probs(cache.model.forward(test_->samples[i]));
    const auto mapped = cache.to_original(argmax(probs));
    if (mapped.has_value() && *mapped == test_->labels[i]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(total), 0.6);
}

TEST_F(CacheIntegration, CachedServiceHitsAreFastMissesEscalate) {
  CacheBuildConfig cfg;
  cfg.architecture = small_cnn_config();
  cfg.training.epochs = 12;
  Rng rng(8);
  CacheModel cache = build_cache_model(*train_, {1, 3}, cfg, rng);
  CacheCostModel costs;
  CachedInferenceService service(std::move(cache), *server_, 0.5, costs);

  double hit_latency = -1.0, miss_latency = -1.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < test_->size(); ++i) {
    const CachedResult r = service.infer(test_->samples[i]);
    if (r.cache_hit)
      hit_latency = r.latency_ms;
    else
      miss_latency = r.latency_ms;
    if (r.label == test_->labels[i]) ++correct;
  }
  EXPECT_GT(service.hits(), 0u);
  EXPECT_GT(service.misses(), 0u);
  EXPECT_DOUBLE_EQ(hit_latency, costs.device_ms);
  EXPECT_DOUBLE_EQ(miss_latency, costs.device_ms + costs.network_ms + costs.server_ms);
  EXPECT_GT(service.hit_rate(), 0.4) << "traffic is 80% frequent classes";
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(test_->size()), 0.5);
}

TEST(CacheController, BuildsThenDropsOnTrafficDrift) {
  CacheController::Config cfg;
  cfg.decision_window = 20;
  cfg.coverage = 0.6;
  cfg.max_cache_classes = 2;
  cfg.min_hit_rate = 0.5;
  CacheController controller(6, cfg);

  // Phase 1: class 0 dominates → Build.
  CacheController::Action action = CacheController::Action::None;
  for (int i = 0; i < 40 && action == CacheController::Action::None; ++i)
    action = controller.observe(0, std::nullopt);
  ASSERT_EQ(action, CacheController::Action::Build);
  EXPECT_EQ(controller.recommended_classes()[0], 0u);
  controller.mark_built();

  // Phase 2: traffic scatters and the cache stops hitting → Rebuild/Drop.
  action = CacheController::Action::None;
  int step = 0;
  while (action == CacheController::Action::None && step < 200) {
    controller.observe(1 + step % 5, false);
    action = controller.observe(1 + (step + 1) % 5, false);
    step += 2;
  }
  EXPECT_NE(action, CacheController::Action::None);
  EXPECT_NE(action, CacheController::Action::Build);
}

}  // namespace
}  // namespace eugene::reduce
