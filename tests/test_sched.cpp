// Scheduler tests: utility estimators, policies, the discrete-event engine,
// the workload builder, and the live threaded scheduler.
#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic_images.hpp"
#include "nn/train.hpp"
#include "sched/live.hpp"
#include "sched/policy.hpp"
#include "sched/simulator.hpp"
#include "sched/workload.hpp"

namespace eugene::sched {
namespace {

/// Synthetic 3-stage confidence-curve model: c_{s+1} = a_s + b_s·c_s.
gp::ConfidenceCurveModel linear_curve_model() {
  calib::StagedEvaluation eval;
  eval.records.resize(3);
  Rng rng(11);
  for (int i = 0; i < 300; ++i) {
    const double c1 = rng.uniform(0.1, 0.9);
    const double c2 = std::min(1.0, 0.2 + 0.8 * c1 + rng.normal(0.0, 0.02));
    const double c3 = std::min(1.0, 0.4 + 0.6 * c2 + rng.normal(0.0, 0.02));
    const double cs[3] = {c1, c2, c3};
    for (std::size_t s = 0; s < 3; ++s) {
      calib::StageRecord r;
      r.confidence = static_cast<float>(std::max(0.0, cs[s]));
      eval.records[s].push_back(r);
    }
  }
  gp::ConfidenceCurveModel curves;
  curves.fit(eval);
  return curves;
}

TEST(ConstantSlopeEstimator, ColdStartUsesPrior) {
  ConstantSlopeEstimator est({0.5, 0.7, 0.85}, 0.1);
  EXPECT_DOUBLE_EQ(est.predict_confidence_after({}, 0), 0.5);
  EXPECT_DOUBLE_EQ(est.predict_confidence_after({}, 2), 0.85);
}

TEST(ConstantSlopeEstimator, ExtrapolatesLastSlope) {
  ConstantSlopeEstimator est({0.5, 0.7, 0.85}, 0.1);
  // One observation: slope measured from the random-guess baseline.
  const std::vector<double> one = {0.4};
  EXPECT_NEAR(est.predict_confidence_after(one, 1), 0.4 + (0.4 - 0.1), 1e-12);
  // Two observations: slope of the latest stage.
  const std::vector<double> two = {0.4, 0.6};
  EXPECT_NEAR(est.predict_confidence_after(two, 2), 0.8, 1e-12);
}

TEST(ConstantSlopeEstimator, ClampsToUnitInterval) {
  ConstantSlopeEstimator est({0.5, 0.7, 0.85}, 0.1);
  const std::vector<double> two = {0.5, 0.95};
  EXPECT_DOUBLE_EQ(est.predict_confidence_after(two, 2), 1.0);
}

TEST(ConstantSlopeEstimator, MultiHopExtrapolationAndValidation) {
  ConstantSlopeEstimator est({0.5, 0.7, 0.85}, 0.1);
  // Two hops from one observation: slope (0.4 − 0.1) applied twice.
  const std::vector<double> one = {0.4};
  EXPECT_NEAR(est.predict_confidence_after(one, 2), 1.0, 1e-12);  // clamped
  // History may not already cover the requested stage.
  const std::vector<double> three = {0.4, 0.5, 0.6};
  EXPECT_THROW(est.predict_confidence_after(three, 2), InvalidArgument);
  EXPECT_THROW(est.predict_confidence_after(three, 5), InvalidArgument);
}

TEST(GpUtilityEstimator, UsesCurveModelAndPriors) {
  const auto curves = linear_curve_model();
  GpUtilityEstimator est(curves);
  EXPECT_NEAR(est.predict_confidence_after({}, 0), curves.prior_confidence(0), 1e-12);
  const std::vector<double> one = {0.5};
  EXPECT_NEAR(est.predict_confidence_after(one, 1), 0.2 + 0.8 * 0.5, 0.05);
}

TaskView make_view(std::size_t id, std::size_t service, double arrival, double deadline,
                   std::size_t done, std::size_t total,
                   const std::vector<double>& conf) {
  TaskView v;
  v.task_id = id;
  v.service = service;
  v.arrival_ms = arrival;
  v.deadline_ms = deadline;
  v.stages_done = done;
  v.total_stages = total;
  v.observed_confidence = conf;
  return v;
}

TEST(FifoPolicy, PicksEarliestArrival) {
  FifoPolicy policy;
  const std::vector<double> none;
  std::vector<TaskView> runnable = {make_view(0, 0, 5.0, 100, 0, 3, none),
                                    make_view(1, 0, 2.0, 100, 0, 3, none),
                                    make_view(2, 0, 9.0, 100, 0, 3, none)};
  EXPECT_EQ(policy.pick(runnable, 0.0).value(), 1u);
}

TEST(EdfPolicy, PicksEarliestDeadline) {
  EarliestDeadlinePolicy policy;
  const std::vector<double> none;
  std::vector<TaskView> runnable = {make_view(0, 0, 0.0, 300, 0, 3, none),
                                    make_view(1, 0, 0.0, 100, 0, 3, none),
                                    make_view(2, 0, 0.0, 200, 0, 3, none)};
  EXPECT_EQ(policy.pick(runnable, 0.0).value(), 1u);
}

TEST(RoundRobinPolicy, RotatesAcrossServices) {
  RoundRobinPolicy policy;
  const std::vector<double> none;
  std::vector<TaskView> runnable = {make_view(10, 0, 0.0, 100, 0, 3, none),
                                    make_view(11, 1, 0.0, 100, 0, 3, none),
                                    make_view(12, 2, 0.0, 100, 0, 3, none)};
  EXPECT_EQ(policy.pick(runnable, 0.0).value(), 10u);
  EXPECT_EQ(policy.pick(runnable, 0.0).value(), 11u);
  EXPECT_EQ(policy.pick(runnable, 0.0).value(), 12u);
  EXPECT_EQ(policy.pick(runnable, 0.0).value(), 10u);  // wraps
}

TEST(GreedyPolicy, PicksMaximumDifferentialUtility) {
  const auto curves = linear_curve_model();
  GpUtilityEstimator est(curves);
  GreedyUtilityPolicy policy(est, 1);
  // Task 0 already confident (0.9 at stage 1 → small gain); task 1 fresh
  // (no stages → utility = prior ≈ 0.65, large).
  const std::vector<double> confident = {0.9};
  const std::vector<double> none;
  std::vector<TaskView> runnable = {make_view(0, 0, 0.0, 100, 1, 3, confident),
                                    make_view(1, 0, 0.0, 100, 0, 3, none)};
  EXPECT_EQ(policy.pick(runnable, 0.0).value(), 1u);
}

TEST(GreedyPolicy, LookaheadPlansMultipleStagesOfBestTask) {
  const auto curves = linear_curve_model();
  GpUtilityEstimator est(curves);
  GreedyUtilityPolicy policy(est, 3);
  // A single low-confidence task: the plan should schedule its remaining
  // stages back to back.
  const std::vector<double> low = {0.3};
  std::vector<TaskView> runnable = {make_view(5, 0, 0.0, 100, 1, 3, low)};
  EXPECT_EQ(policy.pick(runnable, 0.0).value(), 5u);
  EXPECT_EQ(policy.pick(runnable, 0.0).value(), 5u);
}

TEST(GreedyPolicy, ServiceWeightsBiasSelection) {
  const auto curves = linear_curve_model();
  GpUtilityEstimator est(curves);
  GreedyUtilityPolicy policy(est, 1);
  policy.set_service_weights({1.0, 10.0});
  // Both tasks identical except service class; the weighted one wins.
  const std::vector<double> c0 = {0.5};
  const std::vector<double> c1 = {0.5};
  std::vector<TaskView> runnable = {make_view(0, 0, 0.0, 100, 1, 3, c0),
                                    make_view(1, 1, 0.0, 100, 1, 3, c1)};
  EXPECT_EQ(policy.pick(runnable, 0.0).value(), 1u);
  EXPECT_THROW(policy.set_service_weights({0.0}), InvalidArgument);
}

// ----------------------------------------------------------- simulator ----

TaskSpec make_task(std::size_t id, std::size_t service, double arrival, double deadline,
                   std::initializer_list<std::pair<bool, double>> stages) {
  TaskSpec t;
  t.id = id;
  t.service = service;
  t.arrival_ms = arrival;
  t.deadline_ms = deadline;
  for (const auto& [correct, conf] : stages) {
    StageOutcome o;
    o.correct = correct;
    o.confidence = conf;
    o.predicted = correct ? 1 : 0;
    t.stages.push_back(o);
  }
  return t;
}

StageCostModel unit_costs() { return StageCostModel{{10.0, 10.0, 10.0}, 0.0}; }

TEST(Simulator, CompletesEverythingWithGenerousDeadlines) {
  std::vector<TaskSpec> tasks;
  for (std::size_t i = 0; i < 6; ++i)
    tasks.push_back(make_task(i, i % 2, 0.0, 1e9,
                              {{false, 0.4}, {false, 0.6}, {true, 0.9}}));
  FifoPolicy policy;
  SimulationConfig cfg;
  cfg.num_workers = 2;
  const SimulationResult result = simulate(tasks, policy, unit_costs(), cfg);
  ASSERT_EQ(result.services.size(), 2u);
  for (const auto& s : result.services) {
    EXPECT_EQ(s.tasks, 3u);
    EXPECT_EQ(s.completed_all_stages, 3u);
    EXPECT_EQ(s.correct, 3u);
    EXPECT_EQ(s.stages_executed, 9u);
  }
  // 6 tasks × 3 stages × 10 ms over 2 workers = 90 ms of busy time.
  EXPECT_NEAR(result.makespan_ms, 90.0, 1e-6);
  EXPECT_EQ(result.exit_stage_histogram[3], 6u);
}

TEST(Simulator, DeadlineKillsRunningStageAndWastesWork) {
  // One worker, one task whose first stage (10 ms) outlives a 5 ms deadline.
  std::vector<TaskSpec> tasks = {
      make_task(0, 0, 0.0, 5.0, {{true, 0.9}, {true, 0.95}, {true, 0.99}})};
  FifoPolicy policy;
  SimulationConfig cfg;
  cfg.num_workers = 1;
  const SimulationResult result = simulate(tasks, policy, unit_costs(), cfg);
  EXPECT_EQ(result.aborted_stage_executions, 1u);
  EXPECT_EQ(result.services[0].expired_without_result, 1u);
  EXPECT_EQ(result.services[0].correct, 0u);
  EXPECT_EQ(result.exit_stage_histogram[0], 1u);
}

TEST(Simulator, KillDisabledLetsStageFinish) {
  std::vector<TaskSpec> tasks = {
      make_task(0, 0, 0.0, 5.0, {{true, 0.9}, {true, 0.95}, {true, 0.99}})};
  FifoPolicy policy;
  SimulationConfig cfg;
  cfg.num_workers = 1;
  cfg.kill_at_deadline = false;
  const SimulationResult result = simulate(tasks, policy, unit_costs(), cfg);
  EXPECT_EQ(result.aborted_stage_executions, 0u);
  // The stage completed after the deadline; the task answers with it.
  EXPECT_EQ(result.services[0].correct, 1u);
  EXPECT_EQ(result.services[0].stages_executed, 1u);
}

TEST(Simulator, EarlyExitSkipsRemainingStages) {
  std::vector<TaskSpec> tasks = {
      make_task(0, 0, 0.0, 1e9, {{true, 0.95}, {true, 0.97}, {true, 0.99}})};
  FifoPolicy policy;
  SimulationConfig cfg;
  cfg.num_workers = 1;
  cfg.early_exit_confidence = 0.9;
  const SimulationResult result = simulate(tasks, policy, unit_costs(), cfg);
  EXPECT_EQ(result.services[0].early_exits, 1u);
  EXPECT_EQ(result.services[0].stages_executed, 1u);
  EXPECT_EQ(result.exit_stage_histogram[1], 1u);
}

TEST(Simulator, PartialResultCountsAtDeadline) {
  // Stage 1 (correct, 0.6) finishes at t=10; deadline at 15 kills the task
  // during stage 2: final answer is stage 1's label.
  std::vector<TaskSpec> tasks = {
      make_task(0, 0, 0.0, 15.0, {{true, 0.6}, {false, 0.8}, {false, 0.9}})};
  FifoPolicy policy;
  SimulationConfig cfg;
  cfg.num_workers = 1;
  const SimulationResult result = simulate(tasks, policy, unit_costs(), cfg);
  EXPECT_EQ(result.services[0].correct, 1u);
  EXPECT_EQ(result.services[0].expired_with_result, 1u);
  EXPECT_EQ(result.aborted_stage_executions, 1u);
  EXPECT_EQ(result.exit_stage_histogram[1], 1u);
}

TEST(Simulator, DeterministicAcrossRuns) {
  const auto curves = linear_curve_model();
  GpUtilityEstimator est(curves);
  Rng rng(3);
  std::vector<TaskSpec> tasks;
  for (std::size_t i = 0; i < 30; ++i) {
    const double c1 = rng.uniform(0.2, 0.8);
    tasks.push_back(make_task(i, i % 5, rng.uniform(0.0, 50.0), 1e9,
                              {{rng.bernoulli(c1), c1},
                               {rng.bernoulli(0.7), 0.7},
                               {rng.bernoulli(0.9), 0.9}}));
  }
  GreedyUtilityPolicy p1(est, 2), p2(est, 2);
  SimulationConfig cfg;
  cfg.num_workers = 3;
  const auto r1 = simulate(tasks, p1, unit_costs(), cfg);
  const auto r2 = simulate(tasks, p2, unit_costs(), cfg);
  EXPECT_EQ(r1.mean_accuracy(), r2.mean_accuracy());
  EXPECT_EQ(r1.makespan_ms, r2.makespan_ms);
}

TEST(Simulator, UtilitySchedulingBeatsFifoUnderOverload) {
  // 1 worker, tight shared deadline: FIFO burns all budget finishing early
  // arrivals' stage 3 while the greedy scheduler spreads stage 1 across
  // everyone (first stages have the largest confidence gain).
  const auto curves = linear_curve_model();
  GpUtilityEstimator est(curves);
  std::vector<TaskSpec> tasks;
  Rng rng(4);
  for (std::size_t i = 0; i < 10; ++i) {
    // Stage 1 already gives a mostly right answer; later stages refine.
    tasks.push_back(make_task(i, i, 0.0, 60.0,
                              {{rng.bernoulli(0.8), 0.75},
                               {rng.bernoulli(0.85), 0.85},
                               {rng.bernoulli(0.95), 0.95}}));
  }
  SimulationConfig cfg;
  cfg.num_workers = 1;
  GreedyUtilityPolicy greedy(est, 1);
  FifoPolicy fifo;
  const auto r_greedy = simulate(tasks, greedy, unit_costs(), cfg);
  const auto r_fifo = simulate(tasks, fifo, unit_costs(), cfg);
  // Budget: 6 stage slots for 10 tasks. FIFO fully serves 2 tasks; greedy
  // gives 6 tasks their first stage.
  EXPECT_GT(r_greedy.mean_accuracy(), r_fifo.mean_accuracy());
}

TEST(Simulator, ValidatesInputs) {
  FifoPolicy policy;
  SimulationConfig cfg;
  EXPECT_THROW(simulate({}, policy, unit_costs(), cfg), InvalidArgument);
  std::vector<TaskSpec> tasks = {make_task(0, 0, 0.0, 1e9, {})};
  EXPECT_THROW(simulate(tasks, policy, unit_costs(), cfg), InvalidArgument);
  std::vector<TaskSpec> four_stages = {
      make_task(0, 0, 0.0, 1e9,
                {{true, 0.5}, {true, 0.6}, {true, 0.7}, {true, 0.8}})};
  EXPECT_THROW(simulate(four_stages, policy, unit_costs(), cfg), InvalidArgument);
}

// ------------------------------------------------------------ workload ----

calib::StagedEvaluation tiny_eval() {
  calib::StagedEvaluation eval;
  eval.records.resize(3);
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    for (std::size_t s = 0; s < 3; ++s) {
      calib::StageRecord r;
      r.predicted = static_cast<std::size_t>(rng.uniform_int(0, 4));
      r.truth = static_cast<std::size_t>(rng.uniform_int(0, 4));
      r.confidence = static_cast<float>(rng.uniform(0.3, 1.0));
      eval.records[s].push_back(r);
    }
  }
  return eval;
}

TEST(Workload, BuildsRequestedStreams) {
  const auto eval = tiny_eval();
  WorkloadConfig cfg;
  cfg.num_services = 4;
  cfg.tasks_per_service = 10;
  cfg.deadline_ms = 50.0;
  Rng rng(6);
  const auto tasks = build_workload(eval, cfg, rng);
  ASSERT_EQ(tasks.size(), 40u);
  std::vector<double> last_arrival(4, -1.0);
  std::set<std::size_t> ids;
  for (const auto& t : tasks) {
    EXPECT_LT(t.service, 4u);
    EXPECT_EQ(t.stages.size(), 3u);
    EXPECT_GT(t.arrival_ms, last_arrival[t.service]);
    last_arrival[t.service] = t.arrival_ms;
    EXPECT_DOUBLE_EQ(t.deadline_ms, t.arrival_ms + 50.0);
    ids.insert(t.id);
  }
  EXPECT_EQ(ids.size(), 40u);
}

TEST(Workload, CostModelFromFlops) {
  const auto costs = cost_model_from_flops({1e6, 2e6, 4e6}, 1e5);
  ASSERT_EQ(costs.num_stages(), 3u);
  EXPECT_DOUBLE_EQ(costs.stage_ms[0], 10.0);
  EXPECT_DOUBLE_EQ(costs.stage_ms[2], 40.0);
  EXPECT_THROW(cost_model_from_flops({}, 1.0), InvalidArgument);
  EXPECT_THROW(cost_model_from_flops({1.0}, 0.0), InvalidArgument);
}

TEST(Workload, JitterStaysWithinBounds) {
  StageCostModel costs{{10.0}, 0.2};
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const double d = costs.duration_ms(0, rng);
    EXPECT_GE(d, 8.0);
    EXPECT_LE(d, 12.0);
  }
}

// ------------------------------------------------------- live scheduler ----

TEST(LiveScheduler, MatchesDirectInferenceWithoutDeadlines) {
  data::SyntheticImageConfig data_cfg;
  data_cfg.num_classes = 4;
  data_cfg.channels = 2;
  data_cfg.height = 8;
  data_cfg.width = 8;
  Rng rng(8);
  const data::Dataset train = data::generate_images(data_cfg, 200, rng);
  const data::Dataset batch = data::generate_images(data_cfg, 12, rng);

  nn::StagedResNetConfig cfg;
  cfg.in_channels = 2;
  cfg.height = 8;
  cfg.width = 8;
  cfg.num_classes = 4;
  cfg.stage_channels = {4, 6, 8};
  nn::StagedModel model = nn::build_staged_resnet(cfg);
  nn::StagedTrainConfig tcfg;
  tcfg.epochs = 3;
  nn::StagedTrainer trainer(model, tcfg);
  trainer.fit(train.samples, train.labels);

  const calib::StagedEvaluation eval = calib::evaluate_staged(model, train);
  gp::ConfidenceCurveModel curves;
  curves.fit(eval);

  auto replicas = replicate_staged_model(model, 2);
  LiveConfig live_cfg;  // no deadline, no early exit
  const auto results = run_live(replicas, curves, batch.samples, live_cfg);

  ASSERT_EQ(results.size(), batch.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].stages_run, 3u);
    EXPECT_FALSE(results[i].expired);
    const auto direct = model.forward_all(batch.samples[i]);
    EXPECT_EQ(results[i].label, direct.back().predicted_label);
    EXPECT_NEAR(results[i].confidence, direct.back().confidence, 1e-5);
  }
}

TEST(LiveScheduler, EarlyExitReducesExecutedStages) {
  data::SyntheticImageConfig data_cfg;
  data_cfg.num_classes = 4;
  data_cfg.channels = 2;
  data_cfg.height = 8;
  data_cfg.width = 8;
  data_cfg.noise_stddev = 0.05;  // easy data → high early confidence
  Rng rng(9);
  const data::Dataset train = data::generate_images(data_cfg, 250, rng);
  const data::Dataset batch = data::generate_images(data_cfg, 10, rng);

  nn::StagedResNetConfig cfg;
  cfg.in_channels = 2;
  cfg.height = 8;
  cfg.width = 8;
  cfg.num_classes = 4;
  cfg.stage_channels = {4, 6, 8};
  nn::StagedModel model = nn::build_staged_resnet(cfg);
  nn::StagedTrainConfig tcfg;
  tcfg.epochs = 6;
  nn::StagedTrainer trainer(model, tcfg);
  trainer.fit(train.samples, train.labels);

  const calib::StagedEvaluation eval = calib::evaluate_staged(model, train);
  gp::ConfidenceCurveModel curves;
  curves.fit(eval);

  auto replicas = replicate_staged_model(model, 1);
  LiveConfig live_cfg;
  live_cfg.early_exit_confidence = 0.4;  // 4 classes: chance level is 0.25
  const auto results = run_live(replicas, curves, batch.samples, live_cfg);
  std::size_t total_stages = 0;
  for (const auto& r : results) total_stages += r.stages_run;
  EXPECT_LT(total_stages, 3 * results.size())
      << "at least one easy sample should exit early";
}

TEST(LiveScheduler, GroupedDispatchMatchesPerTaskDispatch) {
  // stage_batch > 1 batches same-stage tasks into one arena-backed stage run
  // per dispatch. The batched kernel path is bitwise identical per task
  // (DESIGN.md §14), so labels and confidences must match stage_batch=1
  // exactly, for any grouping the scheduler happens to form.
  nn::StagedResNetConfig cfg;
  cfg.in_channels = 2;
  cfg.height = 8;
  cfg.width = 8;
  cfg.num_classes = 4;
  cfg.stage_channels = {4, 6, 8};
  cfg.seed = 21;
  nn::StagedModel model = nn::build_staged_resnet(cfg);
  const gp::ConfidenceCurveModel curves = linear_curve_model();
  Rng rng(22);
  std::vector<tensor::Tensor> inputs;
  for (std::size_t i = 0; i < 10; ++i)
    inputs.push_back(tensor::Tensor::randn({2, 8, 8}, rng));

  auto run_with = [&](std::size_t stage_batch) {
    auto replicas = replicate_staged_model(model, 2);
    LiveConfig live_cfg;  // no deadline, no early exit
    live_cfg.stage_batch = stage_batch;
    return run_live(replicas, curves, inputs, live_cfg);
  };
  const auto per_task = run_with(1);
  const auto grouped = run_with(4);
  ASSERT_EQ(per_task.size(), grouped.size());
  for (std::size_t i = 0; i < per_task.size(); ++i) {
    EXPECT_EQ(grouped[i].label, per_task[i].label) << i;
    EXPECT_EQ(grouped[i].confidence, per_task[i].confidence) << i;
    EXPECT_EQ(grouped[i].stages_run, per_task[i].stages_run) << i;
    EXPECT_EQ(grouped[i].stages_run, 3u) << i;
    EXPECT_FALSE(grouped[i].expired);
    EXPECT_FALSE(grouped[i].degraded);
  }
}

TEST(LiveScheduler, RejectsZeroStageBatch) {
  nn::StagedResNetConfig cfg;
  cfg.in_channels = 2;
  cfg.height = 8;
  cfg.width = 8;
  cfg.num_classes = 4;
  cfg.stage_channels = {4};
  nn::StagedModel model = nn::build_staged_resnet(cfg);
  auto replicas = replicate_staged_model(model, 1);
  Rng rng(23);
  std::vector<tensor::Tensor> inputs = {tensor::Tensor::randn({2, 8, 8}, rng)};
  LiveConfig live_cfg;
  live_cfg.stage_batch = 0;
  EXPECT_THROW(run_live(replicas, linear_curve_model(), inputs, live_cfg),
               InvalidArgument);
}

TEST(LiveScheduler, ReplicasShareWeights) {
  nn::StagedResNetConfig cfg;
  cfg.in_channels = 2;
  cfg.height = 8;
  cfg.width = 8;
  cfg.num_classes = 4;
  cfg.stage_channels = {4, 6, 8};
  cfg.seed = 77;
  nn::StagedModel source = nn::build_staged_resnet(cfg);
  auto replicas = replicate_staged_model(source, 3);
  Rng rng(10);
  const tensor::Tensor input = tensor::Tensor::randn({2, 8, 8}, rng);
  const auto expected = source.forward_all(input);
  for (auto& replica : replicas) {
    const auto got = replica->forward_all(input);
    EXPECT_EQ(got.back().predicted_label, expected.back().predicted_label);
    EXPECT_NEAR(got.back().confidence, expected.back().confidence, 1e-6);
  }
}

}  // namespace
}  // namespace eugene::sched
