// Recovery chaos suite (DESIGN.md §9 "Durability model"): snapshots a
// registry of calibrated models, tears process state down, restores into a
// fresh registry, and proves the warm-restarted server answers identically —
// then arms failpoints that kill the writer mid-checkpoint, commit short or
// bit-flipped files, and cut journal frames in half, asserting that restore
// either falls back to the previous good snapshot or fails with a typed
// error. Never garbage weights, never a hang.
//
// The deterministic Recovery.* tests disarm environment failpoints via
// FailpointGuard; RecoveryEnv.* deliberately leaves EUGENE_FAILPOINTS armed
// so CI's kill-mid-checkpoint job can inject background crashes.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "calib/evaluation.hpp"
#include "common/crc32.hpp"
#include "common/failpoint.hpp"
#include "common/io.hpp"
#include "core/eugene_service.hpp"
#include "serving/snapshot.hpp"
#include "serving/usage.hpp"

namespace eugene {
namespace {

namespace fs = std::filesystem;

/// Disarms every failpoint on entry and exit of a test body.
struct FailpointGuard {
  FailpointGuard() { FailpointRegistry::instance().disarm_all(); }
  ~FailpointGuard() { FailpointRegistry::instance().disarm_all(); }
};

/// A throwaway snapshot directory, deleted on destruction.
struct TempDir {
  std::string path;
  explicit TempDir(const std::string& tag)
      : path("/tmp/eugene_recovery_" + tag + "_" + std::to_string(::getpid())) {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

nn::StagedResNetConfig tiny_model_config(std::uint64_t seed = 1) {
  nn::StagedResNetConfig cfg;
  cfg.in_channels = 2;
  cfg.height = 8;
  cfg.width = 8;
  cfg.num_classes = 4;
  cfg.stage_channels = {3, 4};
  cfg.head_hidden = 8;
  cfg.seed = seed;
  return cfg;
}

constexpr std::size_t kStages = 2;  // tiny_model_config has two stages

/// Fabricated per-stage confidences: enough structure for curve fitting
/// without training a model.
calib::StagedEvaluation fake_eval(std::uint64_t seed = 5) {
  calib::StagedEvaluation eval;
  eval.records.resize(kStages);
  Rng rng(seed);
  for (int i = 0; i < 200; ++i) {
    const double base = rng.uniform(0.1, 0.9);
    for (std::size_t s = 0; s < kStages; ++s) {
      calib::StageRecord r;
      r.confidence = static_cast<float>(
          std::min(1.0, base + 0.2 * (static_cast<double>(s) + rng.uniform(0.0, 0.1))));
      eval.records[s].push_back(r);
    }
  }
  return eval;
}

/// Registers a curve-fitted, cost-profiled, α-calibrated model — everything
/// the serving path depends on — without the expense of real training.
std::size_t add_calibrated_model(serving::ModelRegistry& registry,
                                 const std::string& name, std::uint64_t seed = 1) {
  const std::size_t handle =
      registry.add(name, nn::build_staged_resnet(tiny_model_config(seed)));
  serving::ModelEntry& e = registry.entry(handle);
  e.curves.fit(fake_eval(seed + 4));
  e.costs.stage_ms = {1.0 + static_cast<double>(seed), 2.0};
  e.costs.jitter_fraction = 0.0;
  e.calibration_alpha = {0.4, 0.6};
  e.calibrated = true;
  return handle;
}

serving::ModelFactory tiny_factory(std::uint64_t seed = 99) {
  // A fresh (differently seeded) architecture: all weights must come from
  // the snapshot, not the initializer.
  return [seed](const std::string&) {
    return nn::build_staged_resnet(tiny_model_config(seed));
  };
}

std::vector<serving::InferenceRequest> make_requests(std::size_t n,
                                                     std::uint64_t seed = 3) {
  Rng rng(seed);
  std::vector<serving::InferenceRequest> requests;
  requests.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    requests.push_back({tensor::Tensor::randn({2, 8, 8}, rng), 0});
  return requests;
}

std::vector<serving::InferenceResponse> serve(serving::ModelEntry& entry,
                                              const std::vector<serving::InferenceRequest>& requests) {
  serving::ServerConfig cfg;
  cfg.early_exit_confidence = 0.8;
  serving::InferenceServer server(entry, cfg);
  return server.process_batch(requests);
}

// ---- the acceptance-criteria test -----------------------------------------

TEST(Recovery, WarmRestartServesIdenticalResults) {
  FailpointGuard guard;
  TempDir dir("warm");

  // "Old process": registered + calibrated models, snapshotted to disk.
  serving::ModelRegistry before;
  add_calibrated_model(before, "doorbell", 1);
  add_calibrated_model(before, "camera", 2);
  const auto requests = make_requests(12);
  const auto expected = serve(before.entry(0), requests);
  const std::uint64_t epoch = serving::save_snapshot(before, dir.path);
  EXPECT_EQ(epoch, 1u);

  // "New process" after kill -9: nothing survives but the directory.
  serving::ModelRegistry after;
  const auto result = serving::restore_snapshot(after, dir.path, tiny_factory());
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->models_restored, 2u);
  EXPECT_EQ(result->epoch, 1u);
  EXPECT_EQ(after.find("doorbell").value(), 0u);
  EXPECT_EQ(after.find("camera").value(), 1u);

  // The restored entry is serve-ready — calibrated, costed, curve-fitted —
  // and answers with identical (label, confidence) pairs.
  serving::ModelEntry& e = after.entry(0);
  EXPECT_TRUE(e.calibrated);
  EXPECT_EQ(e.costs.stage_ms, (std::vector<double>{2.0, 2.0}));
  EXPECT_EQ(e.calibration_alpha, (std::vector<double>{0.4, 0.6}));
  EXPECT_TRUE(e.curves.fitted());
  EXPECT_FALSE(e.curves.has_exact_gp());  // only the serving-path profiles persist

  const auto actual = serve(e, requests);
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].label, expected[i].label) << "request " << i;
    EXPECT_NEAR(actual[i].confidence, expected[i].confidence, 1e-12) << "request " << i;
    EXPECT_EQ(actual[i].stages_run, expected[i].stages_run) << "request " << i;
  }
}

TEST(Recovery, KillMidCheckpointFallsBackToPreviousGoodSnapshot) {
  FailpointGuard guard;
  TempDir dir("fallback");

  serving::ModelRegistry registry;
  add_calibrated_model(registry, "model", 1);
  ASSERT_EQ(serving::save_snapshot(registry, dir.path), 1u);

  // Mutate state, then die right before the manifest commit.
  registry.entry(0).calibration_alpha = {9.9, 9.9};
  FailpointRegistry::instance().arm("snapshot.manifest.crash", FailpointSpec{});
  EXPECT_THROW((void)serving::save_snapshot(registry, dir.path), FailpointError);
  FailpointRegistry::instance().disarm_all();

  // The torn attempt left epoch-2 debris but no commit: restore must see
  // epoch 1 with the original α.
  serving::ModelRegistry restored;
  const auto result = serving::restore_snapshot(restored, dir.path, tiny_factory());
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->epoch, 1u);
  EXPECT_EQ(restored.entry(0).calibration_alpha, (std::vector<double>{0.4, 0.6}));

  // The next snapshot reuses the torn epoch number — its debris is
  // atomically overwritten — and commits cleanly.
  const std::uint64_t epoch3 = serving::save_snapshot(registry, dir.path);
  EXPECT_EQ(epoch3, 2u);
  serving::ModelRegistry restored2;
  const auto r2 = serving::restore_snapshot(restored2, dir.path, tiny_factory());
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(restored2.entry(0).calibration_alpha, (std::vector<double>{9.9, 9.9}));
}

TEST(Recovery, TornWriteDuringArtifactSaveKeepsPreviousSnapshot) {
  FailpointGuard guard;
  TempDir dir("torn");

  serving::ModelRegistry registry;
  add_calibrated_model(registry, "model", 1);
  ASSERT_EQ(serving::save_snapshot(registry, dir.path), 1u);

  registry.entry(0).calibration_alpha = {7.7, 7.7};
  FailpointSpec one_shot;
  one_shot.max_fires = 1;
  FailpointRegistry::instance().arm("io.atomic.torn", one_shot);
  EXPECT_THROW((void)serving::save_snapshot(registry, dir.path), FailpointError);
  FailpointRegistry::instance().disarm_all();

  serving::ModelRegistry restored;
  const auto result = serving::restore_snapshot(restored, dir.path, tiny_factory());
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->epoch, 1u);
  EXPECT_EQ(restored.entry(0).calibration_alpha, (std::vector<double>{0.4, 0.6}));
}

TEST(Recovery, ShortAndBitFlippedCheckpointsThrowTypedErrors) {
  for (const char* fp : {"io.atomic.short", "io.atomic.corrupt"}) {
    FailpointGuard guard;
    TempDir dir(fp + 10);  // strip the "io.atomic." prefix for the dir tag

    serving::ModelRegistry registry;
    add_calibrated_model(registry, "model", 1);

    // Every file of this snapshot commits damaged (the failpoint fires on
    // each atomic write, manifest included): restore must refuse with a
    // typed CorruptionError, not load garbage.
    FailpointRegistry::instance().arm(fp, FailpointSpec{});
    (void)serving::save_snapshot(registry, dir.path);
    FailpointRegistry::instance().disarm_all();

    serving::ModelRegistry restored;
    EXPECT_THROW((void)serving::restore_snapshot(restored, dir.path, tiny_factory()),
                 CorruptionError)
        << fp;
  }
}

TEST(Recovery, RestoreFromEmptyOrMissingDirIsCleanColdStart) {
  FailpointGuard guard;
  TempDir dir("cold");
  serving::ModelRegistry registry;
  EXPECT_FALSE(
      serving::restore_snapshot(registry, dir.path, tiny_factory()).has_value());
  EXPECT_EQ(registry.size(), 0u);
}

TEST(Recovery, RestoreIntoOccupiedRegistryRejectsDuplicateName) {
  // Regression for ModelRegistry::add's unique-name contract, exercised
  // through the restore path.
  FailpointGuard guard;
  TempDir dir("dup");
  serving::ModelRegistry registry;
  add_calibrated_model(registry, "model", 1);
  (void)serving::save_snapshot(registry, dir.path);

  EXPECT_THROW((void)serving::restore_snapshot(registry, dir.path, tiny_factory()),
               InvalidArgument);
  // Direct duplicate add keeps throwing too.
  EXPECT_THROW(registry.add("model", nn::build_staged_resnet(tiny_model_config())),
               InvalidArgument);
}

TEST(Recovery, EugeneServiceFacadeRoundTrips) {
  FailpointGuard guard;
  TempDir dir("facade");

  core::EugeneService old_service;
  add_calibrated_model(old_service.registry(), "svc-model", 3);
  EXPECT_EQ(old_service.snapshot(dir.path), 1u);

  core::EugeneService new_service;
  EXPECT_EQ(new_service.restore(dir.path, tiny_factory()), 1u);
  const auto requests = make_requests(4);
  const auto old_responses = serve(old_service.registry().entry(0), requests);
  const auto new_responses = serve(new_service.registry().entry(0), requests);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(new_responses[i].label, old_responses[i].label);
    EXPECT_NEAR(new_responses[i].confidence, old_responses[i].confidence, 1e-12);
  }
}

TEST(Recovery, RestoredCurvesServeButRefuseExactGpQueries) {
  FailpointGuard guard;
  TempDir dir("gp");
  serving::ModelRegistry registry;
  add_calibrated_model(registry, "model", 1);
  (void)serving::save_snapshot(registry, dir.path);

  serving::ModelRegistry restored;
  ASSERT_TRUE(serving::restore_snapshot(restored, dir.path, tiny_factory()).has_value());
  const gp::ConfidenceCurveModel& curves = restored.entry(0).curves;
  // The fast path (what the scheduler queries) matches the original...
  for (double c = 0.0; c <= 1.0; c += 0.125)
    EXPECT_NEAR(curves.predict(0, 1, c), registry.entry(0).curves.predict(0, 1, c),
                1e-12);
  EXPECT_NEAR(curves.prior_confidence(0), registry.entry(0).curves.prior_confidence(0),
              1e-12);
  // ...and the slow path fails typed instead of dereferencing absent GPs.
  EXPECT_THROW(curves.predict_gp(0, 1, 0.5), InvalidArgument);
}

// ---- usage-journal recovery -----------------------------------------------

sched::StageCostModel journal_costs() {
  sched::StageCostModel costs;
  costs.stage_ms = {2.0, 3.0};
  return costs;
}

serving::InferenceResponse fake_response(std::size_t stages, bool expired,
                                         bool degraded, std::size_t retries) {
  serving::InferenceResponse r;
  r.stages_run = stages;
  r.expired = expired;
  r.degraded = degraded;
  r.retries = retries;
  return r;
}

TEST(Recovery, UsageJournalReplayRebuildsLedger) {
  FailpointGuard guard;
  TempDir dir("journal");
  const std::string path = dir.path;
  std::error_code ec;
  fs::create_directory(path, ec);
  const std::string journal = path + "/usage.journal";

  serving::UsageMeter meter(journal_costs(), {"interactive", "batch"});
  meter.open_journal(journal);
  meter.record({{tensor::Tensor::zeros({1}), 0}, {tensor::Tensor::zeros({1}), 1}},
               {fake_response(2, false, false, 0), fake_response(1, false, true, 3)},
               kStages);
  meter.record({{tensor::Tensor::zeros({1}), 1}},
               {fake_response(1, true, false, 0)}, kStages);

  // Crash; a fresh meter replays the ledger.
  serving::UsageMeter recovered(journal_costs(), {"interactive", "batch"});
  const serving::JournalReplay replay = recovered.replay_journal(journal);
  EXPECT_EQ(replay.frames, 2u);
  EXPECT_FALSE(replay.truncated);

  const auto before = meter.usage();
  const auto after = recovered.usage();
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t c = 0; c < after.size(); ++c) {
    EXPECT_EQ(after[c].requests, before[c].requests);
    EXPECT_EQ(after[c].stages_executed, before[c].stages_executed);
    EXPECT_DOUBLE_EQ(after[c].compute_ms, before[c].compute_ms);
    EXPECT_EQ(after[c].expired, before[c].expired);
    EXPECT_EQ(after[c].early_exits, before[c].early_exits);
    EXPECT_EQ(after[c].shed, before[c].shed);
    EXPECT_EQ(after[c].retries, before[c].retries);
  }
  // Billing derived from the replayed ledger matches.
  serving::PricingPolicy pricing;
  EXPECT_DOUBLE_EQ(recovered.total_charge(pricing), meter.total_charge(pricing));
}

TEST(Recovery, UsageJournalTornTailKeepsCommittedFrames) {
  FailpointGuard guard;
  TempDir dir("jtorn");
  std::error_code ec;
  fs::create_directory(dir.path, ec);
  const std::string journal = dir.path + "/usage.journal";

  serving::UsageMeter meter(journal_costs(), {"only"});
  meter.open_journal(journal);
  meter.record({{tensor::Tensor::zeros({1}), 0}}, {fake_response(2, false, false, 0)},
               kStages);

  // The second append dies halfway through its frame.
  FailpointRegistry::instance().arm("usage.journal.torn", FailpointSpec{});
  EXPECT_THROW(meter.record({{tensor::Tensor::zeros({1}), 0}},
                            {fake_response(1, false, false, 0)}, kStages),
               FailpointError);
  FailpointRegistry::instance().disarm_all();

  serving::UsageMeter recovered(journal_costs(), {"only"});
  const serving::JournalReplay replay = recovered.replay_journal(journal);
  EXPECT_EQ(replay.frames, 1u);  // the committed frame survives
  EXPECT_TRUE(replay.truncated);
  EXPECT_EQ(recovered.usage()[0].requests, 1u);
  EXPECT_EQ(recovered.usage()[0].stages_executed, 2u);
}

TEST(Recovery, UsageJournalReopenAfterCrashTruncatesTornTail) {
  // Regression: the documented recovery flow (replay, reopen, record) used
  // to append fresh frames *after* the torn tail, so every later replay hit
  // a CRC mismatch mid-file and threw — permanently losing the ledger.
  FailpointGuard guard;
  TempDir dir("jreopen");
  std::error_code ec;
  fs::create_directory(dir.path, ec);
  const std::string journal = dir.path + "/usage.journal";

  serving::UsageMeter meter(journal_costs(), {"only"});
  meter.open_journal(journal);
  meter.record({{tensor::Tensor::zeros({1}), 0}}, {fake_response(2, false, false, 0)},
               kStages);
  FailpointRegistry::instance().arm("usage.journal.torn", FailpointSpec{});
  EXPECT_THROW(meter.record({{tensor::Tensor::zeros({1}), 0}},
                            {fake_response(1, false, false, 0)}, kStages),
               FailpointError);
  FailpointRegistry::instance().disarm_all();

  // "Restarted process": replay, reopen (cutting the torn tail), record on.
  serving::UsageMeter recovered(journal_costs(), {"only"});
  EXPECT_EQ(recovered.replay_journal(journal).frames, 1u);
  recovered.open_journal(journal);
  recovered.record({{tensor::Tensor::zeros({1}), 0}},
                   {fake_response(1, false, false, 0)}, kStages);

  // Every subsequent restart replays the whole ledger cleanly.
  serving::UsageMeter final_meter(journal_costs(), {"only"});
  const serving::JournalReplay replay = final_meter.replay_journal(journal);
  EXPECT_EQ(replay.frames, 2u);
  EXPECT_FALSE(replay.truncated);
  EXPECT_EQ(final_meter.usage()[0].requests, 2u);
  EXPECT_EQ(final_meter.usage()[0].stages_executed, 3u);
}

TEST(Recovery, UsageJournalReopenAfterPartialHeaderStartsFresh) {
  // A crash between journal creation and the header write leaves a 0-byte
  // (or shorter-than-header) file; reopening must rewrite the header, not
  // append after the stump and poison every later replay.
  FailpointGuard guard;
  TempDir dir("jstub");
  std::error_code ec;
  fs::create_directory(dir.path, ec);
  for (const std::vector<std::uint8_t>& stump :
       {std::vector<std::uint8_t>{}, std::vector<std::uint8_t>{0x45, 0x55, 0x47}}) {
    const std::string journal = dir.path + "/usage.journal";
    io::atomic_write_file(journal, stump);

    serving::UsageMeter meter(journal_costs(), {"only"});
    meter.open_journal(journal);
    meter.record({{tensor::Tensor::zeros({1}), 0}},
                 {fake_response(2, false, false, 0)}, kStages);

    serving::UsageMeter recovered(journal_costs(), {"only"});
    const serving::JournalReplay replay = recovered.replay_journal(journal);
    EXPECT_EQ(replay.frames, 1u) << "stump size " << stump.size();
    EXPECT_FALSE(replay.truncated) << "stump size " << stump.size();
    fs::remove(journal, ec);
  }
}

TEST(Recovery, UsageJournalRejectsForeignFile) {
  FailpointGuard guard;
  TempDir dir("jbad");
  std::error_code ec;
  fs::create_directory(dir.path, ec);
  const std::string journal = dir.path + "/usage.journal";
  io::atomic_write_file(journal, {'n', 'o', 't', ' ', 'a', ' ', 'j', 'o', 'u', 'r',
                                  'n', 'a', 'l', '!', '!', '!'});

  serving::UsageMeter meter(journal_costs(), {"only"});
  EXPECT_THROW(meter.replay_journal(journal), CorruptionError);
  // open_journal refuses to append to a non-journal, too.
  EXPECT_THROW(meter.open_journal(journal), CorruptionError);
  // A missing journal is a cold start, not an error.
  EXPECT_EQ(meter.replay_journal(dir.path + "/absent.journal").frames, 0u);
}

/// A byte-exact pre-PR7 (version-1) journal image: header {magic, 1} and one
/// frame whose class rows have seven fields and no trailing ops block. This
/// is the on-disk format deployed meters may still carry; replay must accept
/// it forever.
std::vector<std::uint8_t> v1_journal_image() {
  io::ByteWriter payload;
  payload.u64(1);    // touched classes
  payload.u32(0);    // class id
  payload.u64(2);    // requests
  payload.u64(3);    // stages_executed
  payload.f64(7.0);  // compute_ms
  payload.u64(1);    // expired
  payload.u64(0);    // early_exits
  payload.u64(1);    // shed
  payload.u64(2);    // retries — v1 rows end here: no brownout_sheds
  const std::vector<std::uint8_t>& p = payload.buffer();
  io::ByteWriter file;
  file.u32(0x4A475545);  // "EUGJ"
  file.u32(1);           // version 1
  file.u32(static_cast<std::uint32_t>(p.size()));
  file.u32(crc32(p.data(), p.size()));
  file.raw(p.data(), p.size());
  return file.take();
}

TEST(Recovery, UsageJournalV1ImageReplaysCompatibly) {
  // Regression for the v2 format change: a journal written before the
  // brownout/ops counters existed replays without error and without
  // inventing counts for fields its frames never carried.
  FailpointGuard guard;
  serving::UsageMeter meter(journal_costs(), {"only"});
  const serving::JournalReplay replay =
      meter.replay_journal_image(v1_journal_image(), "v1 image");
  EXPECT_EQ(replay.frames, 1u);
  EXPECT_FALSE(replay.truncated);
  const serving::ClassUsage u = meter.usage()[0];
  EXPECT_EQ(u.requests, 2u);
  EXPECT_EQ(u.stages_executed, 3u);
  EXPECT_DOUBLE_EQ(u.compute_ms, 7.0);
  EXPECT_EQ(u.expired, 1u);
  EXPECT_EQ(u.shed, 1u);
  EXPECT_EQ(u.retries, 2u);
  EXPECT_EQ(u.brownout_sheds, 0u);  // v1 never recorded these
  EXPECT_EQ(meter.ops().hedges_issued, 0u);
  EXPECT_EQ(meter.ops().breaker_trips, 0u);
}

TEST(Recovery, UsageJournalAppendToV1FileStaysV1) {
  // open_journal on an existing v1 file keeps appending v1 frames — the file
  // never mixes encodings, so a pre-PR7 reader still replays it. The price:
  // ops deltas and brownout_sheds are memory-only on such a meter.
  FailpointGuard guard;
  TempDir dir("jv1");
  std::error_code ec;
  fs::create_directory(dir.path, ec);
  const std::string journal = dir.path + "/usage.journal";
  io::atomic_write_file(journal, v1_journal_image());

  serving::UsageMeter meter(journal_costs(), {"only"});
  meter.replay_journal(journal);
  meter.open_journal(journal);
  serving::InferenceResponse browned = fake_response(1, false, false, 0);
  browned.browned_out = true;
  meter.record({{tensor::Tensor::zeros({1}), 0}}, {browned}, kStages);
  meter.record_ops({3, 2, 1});  // not journalable in v1; stays in memory
  EXPECT_EQ(meter.usage()[0].brownout_sheds, 1u);
  EXPECT_EQ(meter.ops().hedges_issued, 3u);

  serving::UsageMeter recovered(journal_costs(), {"only"});
  const serving::JournalReplay replay = recovered.replay_journal(journal);
  EXPECT_EQ(replay.frames, 2u);  // v1 seed frame + the v1-encoded append
  EXPECT_FALSE(replay.truncated);
  EXPECT_EQ(recovered.usage()[0].requests, 3u);
  // The v1 encoding had nowhere to put these; replay correctly reads zero.
  EXPECT_EQ(recovered.usage()[0].brownout_sheds, 0u);
  EXPECT_EQ(recovered.ops().hedges_issued, 0u);
  EXPECT_EQ(recovered.ops().hedges_won, 0u);
  EXPECT_EQ(recovered.ops().breaker_trips, 0u);
}

TEST(Recovery, UsageJournalV2RoundtripsBrownoutAndOpsCounters) {
  FailpointGuard guard;
  TempDir dir("jv2");
  std::error_code ec;
  fs::create_directory(dir.path, ec);
  const std::string journal = dir.path + "/usage.journal";

  serving::UsageMeter meter(journal_costs(), {"interactive", "batch"});
  meter.open_journal(journal);
  serving::InferenceResponse browned = fake_response(1, false, false, 0);
  browned.browned_out = true;
  meter.record({{tensor::Tensor::zeros({1}), 0}, {tensor::Tensor::zeros({1}), 1}},
               {browned, fake_response(2, false, false, 0)}, kStages);
  meter.record_ops({5, 2, 1});
  meter.record_ops({1, 1, 0});

  serving::UsageMeter recovered(journal_costs(), {"interactive", "batch"});
  const serving::JournalReplay replay = recovered.replay_journal(journal);
  EXPECT_EQ(replay.frames, 3u);  // one record + two ops frames
  EXPECT_FALSE(replay.truncated);
  EXPECT_EQ(recovered.usage()[0].brownout_sheds, 1u);
  EXPECT_EQ(recovered.usage()[1].brownout_sheds, 0u);
  EXPECT_EQ(recovered.ops().hedges_issued, 6u);
  EXPECT_EQ(recovered.ops().hedges_won, 3u);
  EXPECT_EQ(recovered.ops().breaker_trips, 1u);
  serving::PricingPolicy pricing;
  EXPECT_DOUBLE_EQ(recovered.total_charge(pricing), meter.total_charge(pricing));
}

// ---- adversarial snapshot payloads ------------------------------------------

TEST(Recovery, ManifestWithImplausibleModelCountThrowsTyped) {
  // A CRC-valid (tampered or colliding) manifest claiming 2^40 models must
  // surface as CorruptionError, not std::length_error/bad_alloc from resize.
  FailpointGuard guard;
  TempDir dir("mcount");
  std::error_code ec;
  fs::create_directory(dir.path, ec);
  io::ByteWriter w;
  w.u64(1);                        // epoch
  w.u64(std::uint64_t{1} << 40);   // model count far beyond the payload
  io::write_blob_file(dir.path + "/MANIFEST", 0x4D475545u /* "EUGM" */, 1u,
                      w.take());

  serving::ModelRegistry registry;
  EXPECT_THROW((void)serving::restore_snapshot(registry, dir.path, tiny_factory()),
               CorruptionError);
}

TEST(Recovery, MixedSnapshotArtifactVectorsThrowTyped) {
  // Per-stage cost/α vectors whose length disagrees with the model are the
  // mixed-snapshot signature: restore must fail typed at load time, not
  // later at serving time with an error far from the cause.
  for (const bool bad_alpha : {false, true}) {
    FailpointGuard guard;
    TempDir dir(bad_alpha ? "mixalpha" : "mixcost");
    serving::ModelRegistry registry;
    add_calibrated_model(registry, "model", 1);
    if (bad_alpha)
      registry.entry(0).calibration_alpha = {0.1, 0.2, 0.3};  // 3-stage α
    else
      registry.entry(0).costs.stage_ms = {1.0, 2.0, 3.0};  // 3-stage costs
    (void)serving::save_snapshot(registry, dir.path);

    serving::ModelRegistry restored;
    EXPECT_THROW((void)serving::restore_snapshot(restored, dir.path, tiny_factory()),
                 CorruptionError)
        << (bad_alpha ? "alpha" : "costs");
  }
}

// ---- environment-armed chaos (CI's kill-mid-checkpoint job) ---------------

// With EUGENE_FAILPOINTS arming snapshot.manifest.crash (or io.atomic.torn)
// probabilistically, this loop snapshots, sometimes dies mid-checkpoint,
// restores, and asserts the invariant that makes crashes survivable: every
// restore yields the state of the *last committed* snapshot, bit for bit.
// With nothing armed it degenerates to a plain snapshot/restore stress loop.
TEST(RecoveryEnv, RestoreAlwaysSeesLastCommittedSnapshot) {
  TempDir dir("env");
  serving::ModelRegistry registry;
  add_calibrated_model(registry, "model", 1);

  std::vector<double> committed_alpha = {0.4, 0.6};  // state of the last commit
  bool any_commit = false;
  for (int round = 0; round < 12; ++round) {
    const std::vector<double> next_alpha = {0.1 * round, 0.2 * round};
    registry.entry(0).calibration_alpha = next_alpha;
    try {
      (void)serving::save_snapshot(registry, dir.path);
      committed_alpha = next_alpha;
      any_commit = true;
    } catch (const FailpointError&) {
      // Simulated kill mid-checkpoint: the previous commit must survive.
    }

    serving::ModelRegistry restored;
    try {
      const auto result = serving::restore_snapshot(restored, dir.path, tiny_factory());
      if (any_commit) {
        ASSERT_TRUE(result.has_value()) << "round " << round;
        EXPECT_EQ(restored.entry(0).calibration_alpha, committed_alpha)
            << "round " << round;
      }
    } catch (const FailpointError&) {
      // io.atomic failpoints may also fire on restore-side reads? They do
      // not — reads have no failpoint sites — but a probabilistic
      // environment spec may arm arbitrary names; only writer seams exist.
    }
  }
}

}  // namespace
}  // namespace eugene
