// Unit tests for the tensor substrate: shapes, kernels, and linear algebra.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "tensor/linalg.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace eugene::tensor {
namespace {

TEST(TensorShape, NumelAndToString) {
  EXPECT_EQ(shape_numel({2, 3, 4}), 24u);
  EXPECT_EQ(shape_numel({}), 1u);
  EXPECT_EQ(shape_to_string({2, 3}), "[2, 3]");
}

TEST(Tensor, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6u);
  for (float v : t.data()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, FillValueConstructor) {
  Tensor t({4}, 2.5f);
  for (float v : t.data()) EXPECT_EQ(v, 2.5f);
}

TEST(Tensor, DataAdoption) {
  Tensor t({2, 2}, std::vector<float>{1, 2, 3, 4});
  EXPECT_EQ(t.at(0, 1), 2.0f);
  EXPECT_EQ(t.at(1, 0), 3.0f);
}

TEST(Tensor, DataSizeMismatchThrows) {
  EXPECT_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3}), InvalidArgument);
}

TEST(Tensor, AtBoundsChecked) {
  Tensor t({2, 2});
  EXPECT_THROW(t.at(2, 0), InvalidArgument);
  EXPECT_THROW(t.at(0), InvalidArgument);  // rank mismatch
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  const Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.at(2, 1), 6.0f);
  EXPECT_THROW(t.reshaped({4, 2}), InvalidArgument);
}

TEST(Tensor, ElementwiseOps) {
  Tensor a({3}, std::vector<float>{1, 2, 3});
  Tensor b({3}, std::vector<float>{4, 5, 6});
  a += b;
  EXPECT_EQ(a.at(2), 9.0f);
  a -= b;
  EXPECT_EQ(a.at(0), 1.0f);
  a *= 2.0f;
  EXPECT_EQ(a.at(1), 4.0f);
}

TEST(Tensor, RandnIsDeterministicPerSeed) {
  Rng r1(7), r2(7);
  const Tensor a = Tensor::randn({8}, r1);
  const Tensor b = Tensor::randn({8}, r2);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(a.at(i), b.at(i));
}

TEST(Matmul, MatchesHandComputation) {
  Tensor a({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, std::vector<float>{7, 8, 9, 10, 11, 12});
  const Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(Matmul, InnerDimensionMismatchThrows) {
  Tensor a({2, 3});
  Tensor b({2, 2});
  EXPECT_THROW(matmul(a, b), InvalidArgument);
}

TEST(Matmul, TransposedVariantsAgree) {
  Rng rng(3);
  const Tensor a = Tensor::randn({4, 5}, rng);
  const Tensor b = Tensor::randn({5, 6}, rng);
  const Tensor c = matmul(a, b);

  // Aᵀ variant: pass A already transposed.
  Tensor at({5, 4});
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 5; ++j) at.at(j, i) = a.at(i, j);
  const Tensor c1 = matmul_transpose_a(at, b);

  // Bᵀ variant: pass B already transposed.
  Tensor bt({6, 5});
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 6; ++j) bt.at(j, i) = b.at(i, j);
  const Tensor c2 = matmul_transpose_b(a, bt);

  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 6; ++j) {
      EXPECT_NEAR(c1.at(i, j), c.at(i, j), 1e-4);
      EXPECT_NEAR(c2.at(i, j), c.at(i, j), 1e-4);
    }
}

Conv2dGeometry small_geometry() {
  Conv2dGeometry g;
  g.in_channels = 3;
  g.out_channels = 4;
  g.in_height = 6;
  g.in_width = 5;
  g.kernel = 3;
  g.stride = 1;
  g.padding = 1;
  return g;
}

TEST(Conv2d, GeometryOutputDims) {
  const Conv2dGeometry g = small_geometry();
  EXPECT_EQ(g.out_height(), 6u);
  EXPECT_EQ(g.out_width(), 5u);

  Conv2dGeometry strided = g;
  strided.stride = 2;
  EXPECT_EQ(strided.out_height(), 3u);
  EXPECT_EQ(strided.out_width(), 3u);
}

TEST(Conv2d, FlopsMatchesClosedForm) {
  const Conv2dGeometry g = small_geometry();
  // 2 · C_out · H_out · W_out · C_in · k²
  EXPECT_DOUBLE_EQ(g.flops(), 2.0 * 4 * 6 * 5 * 3 * 9);
}

TEST(Conv2d, Im2colMatchesDirectConvolution) {
  Rng rng(11);
  const Conv2dGeometry g = small_geometry();
  const Tensor img = Tensor::randn({3, 6, 5}, rng);
  const Tensor w = Tensor::randn({4, 27}, rng);
  const Tensor b = Tensor::randn({4}, rng);
  const Tensor fast = conv2d(img, w, b, g);
  const Tensor slow = conv2d_direct(img, w, b, g);
  ASSERT_TRUE(fast.same_shape(slow));
  for (std::size_t i = 0; i < fast.numel(); ++i)
    EXPECT_NEAR(fast.data()[i], slow.data()[i], 1e-4);
}

TEST(Conv2d, StridedConvolutionMatchesDirect) {
  Rng rng(13);
  Conv2dGeometry g = small_geometry();
  g.stride = 2;
  g.padding = 0;
  const Tensor img = Tensor::randn({3, 6, 5}, rng);
  const Tensor w = Tensor::randn({4, 27}, rng);
  const Tensor b = Tensor::randn({4}, rng);
  const Tensor fast = conv2d(img, w, b, g);
  const Tensor slow = conv2d_direct(img, w, b, g);
  for (std::size_t i = 0; i < fast.numel(); ++i)
    EXPECT_NEAR(fast.data()[i], slow.data()[i], 1e-4);
}

TEST(Conv2d, Col2imIsAdjointOfIm2col) {
  // <im2col(x), y> == <x, col2im(y)> for all x, y — the defining property
  // the conv backward pass relies on.
  Rng rng(17);
  const Conv2dGeometry g = small_geometry();
  const Tensor x = Tensor::randn({3, 6, 5}, rng);
  const Tensor cols = im2col(x, g);
  const Tensor y = Tensor::randn(cols.shape(), rng);
  const Tensor back = col2im(y, g);

  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < cols.numel(); ++i) lhs += cols.data()[i] * y.data()[i];
  for (std::size_t i = 0; i < x.numel(); ++i) rhs += x.data()[i] * back.data()[i];
  EXPECT_NEAR(lhs, rhs, 1e-2);
}

TEST(Pooling, MaxPool2PicksMaxima) {
  Tensor img({1, 2, 4}, std::vector<float>{1, 5, 2, 0, 3, 4, 8, 7});
  const Tensor out = max_pool2(img);
  ASSERT_EQ(out.shape(), (Shape{1, 1, 2}));
  EXPECT_EQ(out.at(0, 0, 0), 5.0f);
  EXPECT_EQ(out.at(0, 0, 1), 8.0f);
}

TEST(Pooling, GlobalAvgPool) {
  Tensor img({2, 2, 2}, std::vector<float>{1, 2, 3, 4, 10, 10, 10, 10});
  const Tensor out = global_avg_pool(img);
  EXPECT_FLOAT_EQ(out.at(0), 2.5f);
  EXPECT_FLOAT_EQ(out.at(1), 10.0f);
}

TEST(Linalg, CholeskyReconstructs) {
  // A = B·Bᵀ + n·I is SPD.
  Rng rng(23);
  const std::size_t n = 6;
  const Tensor b = Tensor::randn({n, n}, rng);
  Tensor a({n, n});
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t k = 0; k < n; ++k) acc += b.at(i, k) * b.at(j, k);
      a.at(i, j) = acc + (i == j ? static_cast<float>(n) : 0.0f);
    }
  const Tensor l = cholesky(a);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t k = 0; k < n; ++k) acc += l.at(i, k) * l.at(j, k);
      EXPECT_NEAR(acc, a.at(i, j), 1e-3);
    }
}

TEST(Linalg, CholeskyRejectsIndefinite) {
  Tensor a({2, 2}, std::vector<float>{1, 2, 2, 1});  // eigenvalues 3, −1
  EXPECT_THROW(cholesky(a), InvalidArgument);
}

TEST(Linalg, SolveSpdRoundTrip) {
  Tensor a({3, 3}, std::vector<float>{4, 1, 0, 1, 3, 1, 0, 1, 2});
  const std::vector<double> x_true = {1.0, -2.0, 3.0};
  std::vector<double> b(3, 0.0);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) b[i] += a.at(i, j) * x_true[j];
  const std::vector<double> x = solve_spd(a, b);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-5);
}

TEST(Linalg, LeastSquaresRecoversLine) {
  // y = 2x + 1 with no noise.
  const std::size_t n = 20;
  Tensor x({n, 2});
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double xi = static_cast<double>(i) / 10.0;
    x.at(i, 0) = 1.0f;
    x.at(i, 1) = static_cast<float>(xi);
    y[i] = 2.0 * xi + 1.0;
  }
  const std::vector<double> beta = least_squares(x, y);
  EXPECT_NEAR(beta[0], 1.0, 1e-4);
  EXPECT_NEAR(beta[1], 2.0, 1e-4);
}

}  // namespace
}  // namespace eugene::tensor
