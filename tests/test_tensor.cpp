// Unit tests for the tensor substrate: shapes, kernels, and linear algebra.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "tensor/linalg.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace eugene::tensor {
namespace {

TEST(TensorShape, NumelAndToString) {
  EXPECT_EQ(shape_numel({2, 3, 4}), 24u);
  EXPECT_EQ(shape_numel({}), 1u);
  EXPECT_EQ(shape_to_string({2, 3}), "[2, 3]");
}

TEST(Tensor, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6u);
  for (float v : t.data()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, FillValueConstructor) {
  Tensor t({4}, 2.5f);
  for (float v : t.data()) EXPECT_EQ(v, 2.5f);
}

TEST(Tensor, DataAdoption) {
  Tensor t({2, 2}, std::vector<float>{1, 2, 3, 4});
  EXPECT_EQ(t.at(0, 1), 2.0f);
  EXPECT_EQ(t.at(1, 0), 3.0f);
}

TEST(Tensor, DataSizeMismatchThrows) {
  EXPECT_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3}), InvalidArgument);
}

TEST(Tensor, AtBoundsChecked) {
  Tensor t({2, 2});
  EXPECT_THROW(t.at(2, 0), InvalidArgument);
  EXPECT_THROW(t.at(0), InvalidArgument);  // rank mismatch
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  const Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.at(2, 1), 6.0f);
  EXPECT_THROW(t.reshaped({4, 2}), InvalidArgument);
}

TEST(Tensor, ElementwiseOps) {
  Tensor a({3}, std::vector<float>{1, 2, 3});
  Tensor b({3}, std::vector<float>{4, 5, 6});
  a += b;
  EXPECT_EQ(a.at(2), 9.0f);
  a -= b;
  EXPECT_EQ(a.at(0), 1.0f);
  a *= 2.0f;
  EXPECT_EQ(a.at(1), 4.0f);
}

TEST(Tensor, RandnIsDeterministicPerSeed) {
  Rng r1(7), r2(7);
  const Tensor a = Tensor::randn({8}, r1);
  const Tensor b = Tensor::randn({8}, r2);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(a.at(i), b.at(i));
}

TEST(Matmul, MatchesHandComputation) {
  Tensor a({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, std::vector<float>{7, 8, 9, 10, 11, 12});
  const Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(Matmul, InnerDimensionMismatchThrows) {
  Tensor a({2, 3});
  Tensor b({2, 2});
  EXPECT_THROW(matmul(a, b), InvalidArgument);
}

TEST(Matmul, TransposedVariantsAgree) {
  Rng rng(3);
  const Tensor a = Tensor::randn({4, 5}, rng);
  const Tensor b = Tensor::randn({5, 6}, rng);
  const Tensor c = matmul(a, b);

  // Aᵀ variant: pass A already transposed.
  Tensor at({5, 4});
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 5; ++j) at.at(j, i) = a.at(i, j);
  const Tensor c1 = matmul_transpose_a(at, b);

  // Bᵀ variant: pass B already transposed.
  Tensor bt({6, 5});
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 6; ++j) bt.at(j, i) = b.at(i, j);
  const Tensor c2 = matmul_transpose_b(a, bt);

  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 6; ++j) {
      EXPECT_NEAR(c1.at(i, j), c.at(i, j), 1e-4);
      EXPECT_NEAR(c2.at(i, j), c.at(i, j), 1e-4);
    }
}

Conv2dGeometry small_geometry() {
  Conv2dGeometry g;
  g.in_channels = 3;
  g.out_channels = 4;
  g.in_height = 6;
  g.in_width = 5;
  g.kernel = 3;
  g.stride = 1;
  g.padding = 1;
  return g;
}

TEST(Conv2d, GeometryOutputDims) {
  const Conv2dGeometry g = small_geometry();
  EXPECT_EQ(g.out_height(), 6u);
  EXPECT_EQ(g.out_width(), 5u);

  Conv2dGeometry strided = g;
  strided.stride = 2;
  EXPECT_EQ(strided.out_height(), 3u);
  EXPECT_EQ(strided.out_width(), 3u);
}

TEST(Conv2d, FlopsMatchesClosedForm) {
  const Conv2dGeometry g = small_geometry();
  // 2 · C_out · H_out · W_out · C_in · k²
  EXPECT_DOUBLE_EQ(g.flops(), 2.0 * 4 * 6 * 5 * 3 * 9);
}

TEST(Conv2d, Im2colMatchesDirectConvolution) {
  Rng rng(11);
  const Conv2dGeometry g = small_geometry();
  const Tensor img = Tensor::randn({3, 6, 5}, rng);
  const Tensor w = Tensor::randn({4, 27}, rng);
  const Tensor b = Tensor::randn({4}, rng);
  const Tensor fast = conv2d(img, w, b, g);
  const Tensor slow = conv2d_direct(img, w, b, g);
  ASSERT_TRUE(fast.same_shape(slow));
  for (std::size_t i = 0; i < fast.numel(); ++i)
    EXPECT_NEAR(fast.data()[i], slow.data()[i], 1e-4);
}

TEST(Conv2d, StridedConvolutionMatchesDirect) {
  Rng rng(13);
  Conv2dGeometry g = small_geometry();
  g.stride = 2;
  g.padding = 0;
  const Tensor img = Tensor::randn({3, 6, 5}, rng);
  const Tensor w = Tensor::randn({4, 27}, rng);
  const Tensor b = Tensor::randn({4}, rng);
  const Tensor fast = conv2d(img, w, b, g);
  const Tensor slow = conv2d_direct(img, w, b, g);
  for (std::size_t i = 0; i < fast.numel(); ++i)
    EXPECT_NEAR(fast.data()[i], slow.data()[i], 1e-4);
}

TEST(Conv2d, Col2imIsAdjointOfIm2col) {
  // <im2col(x), y> == <x, col2im(y)> for all x, y — the defining property
  // the conv backward pass relies on.
  Rng rng(17);
  const Conv2dGeometry g = small_geometry();
  const Tensor x = Tensor::randn({3, 6, 5}, rng);
  const Tensor cols = im2col(x, g);
  const Tensor y = Tensor::randn(cols.shape(), rng);
  const Tensor back = col2im(y, g);

  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < cols.numel(); ++i) lhs += cols.data()[i] * y.data()[i];
  for (std::size_t i = 0; i < x.numel(); ++i) rhs += x.data()[i] * back.data()[i];
  EXPECT_NEAR(lhs, rhs, 1e-2);
}

TEST(Pooling, MaxPool2PicksMaxima) {
  Tensor img({1, 2, 4}, std::vector<float>{1, 5, 2, 0, 3, 4, 8, 7});
  const Tensor out = max_pool2(img);
  ASSERT_EQ(out.shape(), (Shape{1, 1, 2}));
  EXPECT_EQ(out.at(0, 0, 0), 5.0f);
  EXPECT_EQ(out.at(0, 0, 1), 8.0f);
}

TEST(Pooling, GlobalAvgPool) {
  Tensor img({2, 2, 2}, std::vector<float>{1, 2, 3, 4, 10, 10, 10, 10});
  const Tensor out = global_avg_pool(img);
  EXPECT_FLOAT_EQ(out.at(0), 2.5f);
  EXPECT_FLOAT_EQ(out.at(1), 10.0f);
}

TEST(Linalg, CholeskyReconstructs) {
  // A = B·Bᵀ + n·I is SPD.
  Rng rng(23);
  const std::size_t n = 6;
  const Tensor b = Tensor::randn({n, n}, rng);
  Tensor a({n, n});
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t k = 0; k < n; ++k) acc += b.at(i, k) * b.at(j, k);
      a.at(i, j) = acc + (i == j ? static_cast<float>(n) : 0.0f);
    }
  const Tensor l = cholesky(a);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t k = 0; k < n; ++k) acc += l.at(i, k) * l.at(j, k);
      EXPECT_NEAR(acc, a.at(i, j), 1e-3);
    }
}

TEST(Linalg, CholeskyRejectsIndefinite) {
  Tensor a({2, 2}, std::vector<float>{1, 2, 2, 1});  // eigenvalues 3, −1
  EXPECT_THROW(cholesky(a), InvalidArgument);
}

TEST(Linalg, SolveSpdRoundTrip) {
  Tensor a({3, 3}, std::vector<float>{4, 1, 0, 1, 3, 1, 0, 1, 2});
  const std::vector<double> x_true = {1.0, -2.0, 3.0};
  std::vector<double> b(3, 0.0);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) b[i] += a.at(i, j) * x_true[j];
  const std::vector<double> x = solve_spd(a, b);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-5);
}

TEST(Linalg, LeastSquaresRecoversLine) {
  // y = 2x + 1 with no noise.
  const std::size_t n = 20;
  Tensor x({n, 2});
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double xi = static_cast<double>(i) / 10.0;
    x.at(i, 0) = 1.0f;
    x.at(i, 1) = static_cast<float>(xi);
    y[i] = 2.0 * xi + 1.0;
  }
  const std::vector<double> beta = least_squares(x, y);
  EXPECT_NEAR(beta[0], 1.0, 1e-4);
  EXPECT_NEAR(beta[1], 2.0, 1e-4);
}

TEST(Linalg, LeastSquaresConditioningOffsetData) {
  // Regression for the float-accumulated XᵀX bug: an offset regressor makes
  // the Gram matrix entries huge (~1e11) while the usable signal lives in a
  // catastrophic cancellation. Rounding the running sums to float on every
  // add (the old behaviour) loses the slope entirely; accumulating in double
  // and storing once keeps it.
  const std::size_t n = 512;
  const double offset = 16384.0;
  Tensor x({n, 2});
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = offset + static_cast<double>(i);
    x.at(i, 0) = 1.0f;
    x.at(i, 1) = static_cast<float>(t);
    y[i] = 2.0 + 0.001 * t;
  }
  const std::vector<double> beta = least_squares(x, y);
  EXPECT_NEAR(beta[1], 0.001, 1e-3 * 0.001)  // slope to 0.1% relative
      << "intercept=" << beta[0];
  EXPECT_NEAR(beta[0] + beta[1] * offset, 2.0 + 0.001 * offset, 1e-2)
      << "fitted line is off at the data's left edge";
}

// ------------------------------------------------------------------- GEMM

namespace {

/// Textbook triple loop with sequential-k float accumulation — the ordering
/// the GEMM core promises to reproduce for k ≤ its KC block.
Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += a.at(i, p) * b.at(p, j);
      c.at(i, j) = acc;
    }
  return c;
}

void expect_gemm_matches_naive(GemmIsa isa) {
  // Shapes straddling the micro-tile boundaries of both kernels (scalar 4×8,
  // AVX2 6×16): 1, tile−1, tile, tile+1, and a round cache-friendly size.
  const std::size_t sizes[] = {1, 3, 4, 5, 7, 8, 9, 15, 16, 17, 128};
  Rng rng(7);
  for (std::size_t m : sizes) {
    for (std::size_t n : sizes) {
      for (std::size_t k : {std::size_t{1}, std::size_t{3}, std::size_t{17},
                            std::size_t{128}}) {
        const Tensor a = Tensor::randn({m, k}, rng);
        const Tensor b = Tensor::randn({k, n}, rng);
        const Tensor want = naive_matmul(a, b);
        Tensor got({m, n});
        gemm_with_isa(isa, m, n, k, a.raw(), k, false, b.raw(), n, false,
                      0.0f, got.raw(), n);
        for (std::size_t i = 0; i < m * n; ++i) {
          // The scalar kernel sums in exactly the naive order; FMA keeps the
          // products unrounded, so allow a few ulps either way.
          EXPECT_NEAR(got.data()[i], want.data()[i],
                      2e-5f * std::max(1.0f, std::abs(want.data()[i])))
              << gemm_isa_name(isa) << " m=" << m << " n=" << n << " k=" << k
              << " at " << i;
        }
      }
    }
  }
}

}  // namespace

TEST(Gemm, ScalarMatchesNaiveOverOddShapes) {
  expect_gemm_matches_naive(GemmIsa::kScalar);
}

TEST(Gemm, Avx2MatchesNaiveOverOddShapes) {
  if (!gemm_isa_available(GemmIsa::kAvx2)) GTEST_SKIP() << "no AVX2/FMA here";
  expect_gemm_matches_naive(GemmIsa::kAvx2);
}

TEST(Gemm, TransposedOperandsMatchNaive) {
  Rng rng(11);
  const std::size_t m = 13, n = 21, k = 37;
  const Tensor a = Tensor::randn({m, k}, rng);
  const Tensor b = Tensor::randn({k, n}, rng);
  const Tensor want = naive_matmul(a, b);
  // Aᵀ stored k×m, Bᵀ stored n×k.
  Tensor at({k, m}), bt({n, k});
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t p = 0; p < k; ++p) at.at(p, i) = a.at(i, p);
  for (std::size_t p = 0; p < k; ++p)
    for (std::size_t j = 0; j < n; ++j) bt.at(j, p) = b.at(p, j);
  Tensor c1({m, n}), c2({m, n});
  gemm(m, n, k, at.raw(), m, true, b.raw(), n, false, 0.0f, c1.raw(), n);
  gemm(m, n, k, a.raw(), k, false, bt.raw(), k, true, 0.0f, c2.raw(), n);
  for (std::size_t i = 0; i < m * n; ++i) {
    EXPECT_NEAR(c1.data()[i], want.data()[i], 1e-4f) << "trans_a at " << i;
    EXPECT_NEAR(c2.data()[i], want.data()[i], 1e-4f) << "trans_b at " << i;
  }
}

TEST(Gemm, BetaOneAccumulatesIntoC) {
  Rng rng(12);
  const std::size_t m = 5, n = 9, k = 6;
  const Tensor a = Tensor::randn({m, k}, rng);
  const Tensor b = Tensor::randn({k, n}, rng);
  const Tensor base = Tensor::randn({m, n}, rng);
  Tensor c = base;
  gemm(m, n, k, a.raw(), k, false, b.raw(), n, false, 1.0f, c.raw(), n);
  const Tensor prod = naive_matmul(a, b);
  for (std::size_t i = 0; i < m * n; ++i)
    EXPECT_NEAR(c.data()[i], base.data()[i] + prod.data()[i], 1e-4f) << i;
}

TEST(Gemm, ZeroTimesNanAndInfPropagate) {
  // The old matmul skipped a_ik == 0 rows as a fast path, silently turning
  // 0·NaN and 0·inf into 0. IEEE says both are NaN; the GEMM core must not
  // short-circuit them away, under either kernel.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  for (GemmIsa isa : {GemmIsa::kScalar, GemmIsa::kAvx2}) {
    if (!gemm_isa_available(isa)) continue;
    // k=2: row 0 of B is poisoned, row 0 of A is zero.
    const Tensor a({1, 2}, std::vector<float>{0.0f, 1.0f});
    const Tensor b({2, 2}, std::vector<float>{nan, inf, 2.0f, 3.0f});
    Tensor c({1, 2});
    gemm_with_isa(isa, 1, 2, 2, a.raw(), 2, false, b.raw(), 2, false, 0.0f,
                  c.raw(), 2);
    EXPECT_TRUE(std::isnan(c.at(0, 0)))
        << gemm_isa_name(isa) << ": 0*NaN must stay NaN";
    EXPECT_TRUE(std::isnan(c.at(0, 1)))
        << gemm_isa_name(isa) << ": 0*inf must be NaN";
  }
}

TEST(Gemm, MatmulPropagatesNanFromZeroRow) {
  // Same property through the public matmul wrapper used by the layers.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const Tensor a({1, 2}, std::vector<float>{0.0f, 1.0f});
  const Tensor b({2, 1}, std::vector<float>{nan, 5.0f});
  const Tensor c = matmul(a, b);
  EXPECT_TRUE(std::isnan(c.at(0, 0)));
}

TEST(Gemm, EnvIsaParsing) {
  EXPECT_EQ(parse_gemm_isa("scalar"), GemmIsa::kScalar);
  EXPECT_EQ(parse_gemm_isa("avx2"), GemmIsa::kAvx2);
  EXPECT_EQ(parse_gemm_isa("AVX2"), GemmIsa::kAvx2);
  EXPECT_EQ(parse_gemm_isa("riscv-vector"), std::nullopt);
  EXPECT_EQ(parse_gemm_isa(nullptr), std::nullopt);
  EXPECT_TRUE(gemm_isa_available(GemmIsa::kScalar));
}

TEST(GemmRows, MatchesGemmBitwiseOverOddShapes) {
  // gemm_rows() promises the exact accumulation chain of gemm() — a conv
  // computed through row pointers must be bit-identical to the same conv
  // through im2col + gemm. Pin it bitwise across tile boundaries and across
  // the KC block seam (k > 256), on every available ISA.
  Rng rng(17);
  for (GemmIsa isa : {GemmIsa::kScalar, GemmIsa::kAvx2}) {
    if (!gemm_isa_available(isa)) continue;
    for (std::size_t m : {std::size_t{1}, std::size_t{5}, std::size_t{8},
                          std::size_t{32}, gemm_rows_max_m()}) {
      for (std::size_t n :
           {std::size_t{1}, std::size_t{15}, std::size_t{16}, std::size_t{17},
            std::size_t{100}}) {
        for (std::size_t k :
             {std::size_t{1}, std::size_t{72}, std::size_t{300}}) {
          const Tensor a = Tensor::randn({m, k}, rng);
          const Tensor b = Tensor::randn({k, n}, rng);
          std::vector<const float*> rows(k);
          for (std::size_t p = 0; p < k; ++p) rows[p] = b.raw() + p * n;
          Tensor want({m, n}), got({m, n});
          gemm_with_isa(isa, m, n, k, a.raw(), k, false, b.raw(), n, false,
                        0.0f, want.raw(), n);
          gemm_rows_with_isa(isa, m, n, k, a.raw(), k, rows.data(), 0.0f,
                             got.raw(), n);
          for (std::size_t i = 0; i < m * n; ++i)
            EXPECT_EQ(got.data()[i], want.data()[i])
                << gemm_isa_name(isa) << " m=" << m << " n=" << n
                << " k=" << k << " at " << i;
        }
      }
    }
  }
}

TEST(GemmRows, OverlappingRowsMatchMaterializedB) {
  // The conv fast path points the k row pointers at shifted windows of one
  // padded image plane, so consecutive rows overlap by all but one element.
  // Same result, bitwise, as materializing those windows into a dense B.
  Rng rng(18);
  const std::size_t m = 6, n = 24, k = 40;
  const Tensor plane = Tensor::randn({k + n}, rng);
  const Tensor a = Tensor::randn({m, k}, rng);
  std::vector<const float*> rows(k);
  Tensor dense({k, n});
  for (std::size_t p = 0; p < k; ++p) {
    rows[p] = plane.raw() + p;  // row p = plane[p .. p+n)
    for (std::size_t j = 0; j < n; ++j) dense.at(p, j) = plane.data()[p + j];
  }
  Tensor want({m, n}), got({m, n});
  gemm(m, n, k, a.raw(), k, false, dense.raw(), n, false, 0.0f, want.raw(), n);
  gemm_rows(m, n, k, a.raw(), k, rows.data(), 0.0f, got.raw(), n);
  for (std::size_t i = 0; i < m * n; ++i)
    EXPECT_EQ(got.data()[i], want.data()[i]) << i;
}

TEST(GemmRows, BetaOneAccumulatesAndRejectsBigM) {
  Rng rng(19);
  const std::size_t m = 4, n = 9, k = 12;
  const Tensor a = Tensor::randn({m, k}, rng);
  const Tensor b = Tensor::randn({k, n}, rng);
  std::vector<const float*> rows(k);
  for (std::size_t p = 0; p < k; ++p) rows[p] = b.raw() + p * n;
  const Tensor base = Tensor::randn({m, n}, rng);
  Tensor c = base;
  gemm_rows(m, n, k, a.raw(), k, rows.data(), 1.0f, c.raw(), n);
  const Tensor prod = naive_matmul(a, b);
  for (std::size_t i = 0; i < m * n; ++i)
    EXPECT_NEAR(c.data()[i], base.data()[i] + prod.data()[i], 1e-4f) << i;
  Tensor big({gemm_rows_max_m() + 1, n});
  EXPECT_THROW(gemm_rows(gemm_rows_max_m() + 1, n, k, big.raw(), k,
                         rows.data(), 0.0f, big.raw(), n),
               eugene::Error);
}

TEST(Gemm, WorkspaceVariantMatchesThreadLocalPath) {
  Rng rng(13);
  const std::size_t m = 10, n = 24, k = 40;
  const Tensor a = Tensor::randn({m, k}, rng);
  const Tensor b = Tensor::randn({k, n}, rng);
  Tensor c1({m, n}), c2({m, n});
  std::vector<float> ws(gemm_workspace_floats(m, n, k));
  gemm(m, n, k, a.raw(), k, false, b.raw(), n, false, 0.0f, c1.raw(), n);
  gemm(m, n, k, a.raw(), k, false, b.raw(), n, false, 0.0f, c2.raw(), n,
       ws.data());
  for (std::size_t i = 0; i < m * n; ++i)
    EXPECT_EQ(c1.data()[i], c2.data()[i]) << i;
}

}  // namespace
}  // namespace eugene::tensor
