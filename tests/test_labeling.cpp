// Labeling-service tests: adoption mechanics, pseudo-label quality, and the
// end-to-end benefit of self-training over labeled-only training.
#include <gtest/gtest.h>

#include "data/synthetic_images.hpp"
#include "labeling/self_training.hpp"

namespace eugene::labeling {
namespace {

data::SyntheticImageConfig data_config() {
  data::SyntheticImageConfig cfg;
  cfg.num_classes = 4;
  cfg.channels = 2;
  cfg.height = 8;
  cfg.width = 8;
  cfg.noise_stddev = 0.15;
  return cfg;
}

/// A small MLP classifier factory (flatten → dense → relu → dense).
SelfTrainingLabeler::ModelFactory mlp_factory() {
  return [](std::uint64_t variant) {
    Rng rng(1000 + variant);
    nn::Sequential net;
    net.add(std::make_unique<nn::Flatten>())
        .add(std::make_unique<nn::Dense>(2 * 8 * 8, 24, rng))
        .add(std::make_unique<nn::ReLU>())
        .add(std::make_unique<nn::Dense>(24, 4, rng));
    return net;
  };
}

SelfTrainingConfig fast_config() {
  SelfTrainingConfig cfg;
  cfg.rounds = 3;
  cfg.adopt_confidence = 0.8;
  cfg.training.epochs = 8;
  return cfg;
}

TEST(SelfTraining, AdoptsHighConfidenceSamplesWithGoodLabels) {
  Rng rng(20);
  const data::Dataset labeled = data::generate_images(data_config(), 80, rng);
  const data::Dataset unlabeled = data::generate_images(data_config(), 200, rng);

  SelfTrainingLabeler labeler(mlp_factory(), fast_config());
  LabelingReport report;
  const data::Dataset augmented = labeler.run(labeled, unlabeled, &report);

  EXPECT_GT(report.adopted_total, 30u) << "should adopt a meaningful fraction";
  EXPECT_LE(report.adopted_total, unlabeled.size());
  EXPECT_EQ(augmented.size(), labeled.size() + report.adopted_total);
  EXPECT_GT(report.pseudo_label_accuracy, 0.8)
      << "confidence + agreement filtering must keep pseudo-labels clean";
}

TEST(SelfTraining, AgreementFilterIsMoreSelective) {
  Rng rng(21);
  const data::Dataset labeled = data::generate_images(data_config(), 60, rng);
  const data::Dataset unlabeled = data::generate_images(data_config(), 150, rng);

  SelfTrainingConfig strict = fast_config();
  strict.require_agreement = true;
  SelfTrainingConfig loose = fast_config();
  loose.require_agreement = false;

  LabelingReport strict_report, loose_report;
  SelfTrainingLabeler(mlp_factory(), strict).run(labeled, unlabeled, &strict_report);
  SelfTrainingLabeler(mlp_factory(), loose).run(labeled, unlabeled, &loose_report);
  EXPECT_LE(strict_report.adopted_total, loose_report.adopted_total)
      << "requiring two-model agreement can only shrink the adopted set";
}

TEST(SelfTraining, StopsWhenNothingNewIsAdopted) {
  Rng rng(22);
  const data::Dataset labeled = data::generate_images(data_config(), 60, rng);
  const data::Dataset empty_pool;  // nothing to adopt

  SelfTrainingConfig cfg = fast_config();
  cfg.rounds = 5;
  LabelingReport report;
  SelfTrainingLabeler(mlp_factory(), cfg).run(labeled, empty_pool, &report);
  EXPECT_EQ(report.adopted_total, 0u);
  EXPECT_EQ(report.adopted_per_round.size(), 1u)
      << "labeler must converge after the first empty round";
}

TEST(SelfTraining, BenefitOrderingHolds) {
  Rng rng(23);
  const data::Dataset labeled = data::generate_images(data_config(), 40, rng);
  const data::Dataset unlabeled = data::generate_images(data_config(), 300, rng);
  const data::Dataset test = data::generate_images(data_config(), 200, rng);

  const BenefitReport report =
      evaluate_labeling_benefit(mlp_factory(), labeled, unlabeled, test, fast_config());

  // The SenseGAN-style claim: pseudo-labels recover much of the gap between
  // labeled-only and fully supervised training.
  EXPECT_GT(report.fully_supervised, report.labeled_only);
  EXPECT_GT(report.self_trained, report.labeled_only - 0.02)
      << "self-training should not hurt";
  const double gap = report.fully_supervised - report.labeled_only;
  const double recovered = report.self_trained - report.labeled_only;
  if (gap > 0.05) {
    EXPECT_GT(recovered, 0.25 * gap)
        << "self-training should recover a substantial share of the gap";
  }
}

TEST(SelfTraining, ValidatesConfiguration) {
  EXPECT_THROW(SelfTrainingLabeler(nullptr, fast_config()), InvalidArgument);
  SelfTrainingConfig bad = fast_config();
  bad.adopt_confidence = 1.5;
  EXPECT_THROW(SelfTrainingLabeler(mlp_factory(), bad), InvalidArgument);
  SelfTrainingLabeler ok(mlp_factory(), fast_config());
  EXPECT_THROW(ok.run(data::Dataset{}, data::Dataset{}), InvalidArgument);
}

}  // namespace
}  // namespace eugene::labeling
