// Tests for the paper's explicitly-called-out extensions implemented in
// Eugene: client/server model partitioning (§IV-A), usage metering for
// pricing (§V), rogue-contributor pool screening (§V), and the staged MLP
// for non-image workloads.
#include <gtest/gtest.h>

#include "data/synthetic_images.hpp"
#include "data/timeseries.hpp"
#include "labeling/pool_guard.hpp"
#include "nn/train.hpp"
#include "sched/partition.hpp"
#include "serving/usage.hpp"

namespace eugene {
namespace {

// ------------------------------------------------------------- partition

std::vector<sched::StageInfo> synthetic_stages() {
  // Three stages: cheap/large-features, medium, expensive/small-features.
  return {
      {1.0e6, 4000, 8192},
      {2.0e6, 8000, 4096},
      {4.0e6, 16000, 40},
  };
}

TEST(Partition, SurvivalCurveIsMonotoneNonIncreasing) {
  calib::StagedEvaluation eval;
  eval.records.resize(3);
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    double c = rng.uniform(0.2, 0.6);
    for (std::size_t s = 0; s < 3; ++s) {
      calib::StageRecord r;
      c = std::min(1.0, c + rng.uniform(0.0, 0.3));
      r.confidence = static_cast<float>(c);
      eval.records[s].push_back(r);
    }
  }
  const auto survival = sched::survival_curve(eval, 0.8);
  ASSERT_EQ(survival.size(), 3u);
  EXPECT_GE(survival[0], survival[1]);
  EXPECT_GE(survival[1], survival[2]);
  for (double v : survival) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(Partition, PureOffloadWinsOnSlowDevices) {
  sched::PartitionConfig cfg;
  cfg.device.flops_per_ms = 1e3;  // pitifully slow device
  cfg.server.flops_per_ms = 1e7;
  cfg.link.bytes_per_ms = 1e5;
  cfg.link.rtt_ms = 1.0;
  cfg.input_bytes = 3072;
  const std::vector<double> survival = {0.5, 0.3, 0.0};
  const auto plan = sched::plan_partition(synthetic_stages(), survival, cfg);
  EXPECT_EQ(plan.split, 0u);
  EXPECT_DOUBLE_EQ(plan.offload_probability, 1.0);
}

TEST(Partition, FullyLocalWinsOnFastDevicesWithSlowLinks) {
  sched::PartitionConfig cfg;
  cfg.device.flops_per_ms = 1e7;
  cfg.server.flops_per_ms = 1e7;
  cfg.link.bytes_per_ms = 1.0;  // effectively no link
  cfg.link.rtt_ms = 500.0;
  cfg.input_bytes = 3072;
  const std::vector<double> survival = {0.5, 0.3, 0.0};
  const auto plan = sched::plan_partition(synthetic_stages(), survival, cfg);
  EXPECT_EQ(plan.split, 3u);
  EXPECT_DOUBLE_EQ(plan.upload_ms, 0.0);
  EXPECT_DOUBLE_EQ(plan.server_ms, 0.0);
}

TEST(Partition, EarlyExitProbabilityShiftsTheSplit) {
  // Slow device, slow uplink. When stage-1 confidence almost always clears
  // the exit threshold, running stage 1 locally answers most requests and
  // the planner keeps a local prefix; when exits are rare, everything ships
  // to the server immediately.
  sched::PartitionConfig cfg;
  cfg.device.flops_per_ms = 2e4;   // device 100x slower than server
  cfg.server.flops_per_ms = 2e6;
  cfg.link.bytes_per_ms = 50.0;    // slow uplink
  cfg.link.rtt_ms = 20.0;
  cfg.input_bytes = 3072;

  const std::vector<double> rarely_exits = {0.95, 0.9, 0.0};
  const std::vector<double> usually_exits = {0.05, 0.02, 0.0};
  const auto plan_rare =
      sched::plan_partition(synthetic_stages(), rarely_exits, cfg);
  const auto plan_often =
      sched::plan_partition(synthetic_stages(), usually_exits, cfg);
  EXPECT_EQ(plan_rare.split, 0u) << "rare exits + slow device: pure offload";
  EXPECT_GT(plan_often.split, 0u) << "frequent exits justify a local prefix";
  EXPECT_LT(plan_often.expected_latency_ms, plan_rare.expected_latency_ms);
  EXPECT_LT(plan_often.offload_probability, 0.1);
}

TEST(Partition, DeviceBudgetExcludesInfeasibleSplits) {
  sched::PartitionConfig cfg;
  cfg.device.flops_per_ms = 1e7;
  cfg.device.max_model_bytes = 5000;  // only stage 0 fits
  cfg.server.flops_per_ms = 1e7;
  cfg.link.bytes_per_ms = 1e4;
  const std::vector<double> survival = {0.0, 0.0, 0.0};  // always exits locally
  const auto plans = sched::evaluate_partitions(synthetic_stages(), survival, cfg);
  ASSERT_EQ(plans.size(), 4u);
  EXPECT_TRUE(plans[0].fits_device);
  EXPECT_TRUE(plans[1].fits_device);
  EXPECT_FALSE(plans[2].fits_device);  // 4000+8000 > 5000
  EXPECT_FALSE(plans[3].fits_device);
  const auto best = sched::plan_partition(synthetic_stages(), survival, cfg);
  EXPECT_LE(best.split, 1u);
}

TEST(Partition, StageInfosFromRealModel) {
  nn::StagedResNetConfig cfg;
  cfg.in_channels = 2;
  cfg.height = 8;
  cfg.width = 8;
  cfg.num_classes = 4;
  cfg.stage_channels = {4, 6, 8};
  nn::StagedModel model = nn::build_staged_resnet(cfg);
  Rng rng(2);
  const auto infos =
      sched::stage_infos(model, tensor::Tensor::randn({2, 8, 8}, rng));
  ASSERT_EQ(infos.size(), 3u);
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_GT(infos[s].flops, 0.0);
    EXPECT_GT(infos[s].param_bytes, 0u);
    EXPECT_GT(infos[s].output_bytes, 0u);
    EXPECT_DOUBLE_EQ(infos[s].flops, model.stage_flops(s));
    EXPECT_EQ(infos[s].param_bytes, model.stage_param_bytes(s));
  }
  // Feature sizes: stage 0 keeps 8x8 at 4 channels; stage 2 is 8ch at 2x2.
  EXPECT_EQ(infos[0].output_bytes, 4u * 8 * 8 * 4);
  EXPECT_EQ(infos[2].output_bytes, 8u * 2 * 2 * 4);
}

// ------------------------------------------------------------ usage meter

TEST(UsageMeter, AccumulatesPerClassAndCharges) {
  sched::StageCostModel costs{{10.0, 20.0, 30.0}, 0.0};
  serving::UsageMeter meter(costs, {"chatbot", "camera"});

  std::vector<serving::InferenceRequest> requests(3);
  requests[0].service_class = 0;
  requests[1].service_class = 1;
  requests[2].service_class = 0;
  std::vector<serving::InferenceResponse> responses(3);
  responses[0].stages_run = 3;                          // full depth
  responses[1].stages_run = 1;                          // early exit
  responses[2].stages_run = 2;
  responses[2].expired = true;                          // killed at deadline
  meter.record(requests, responses, 3);

  const auto& usage = meter.usage();
  ASSERT_EQ(usage.size(), 2u);
  EXPECT_EQ(usage[0].requests, 2u);
  EXPECT_EQ(usage[0].stages_executed, 5u);
  EXPECT_DOUBLE_EQ(usage[0].compute_ms, (10.0 + 20.0 + 30.0) + (10.0 + 20.0));
  EXPECT_EQ(usage[0].expired, 1u);
  EXPECT_EQ(usage[0].early_exits, 0u);  // the 2-stage one expired, not exited
  EXPECT_EQ(usage[1].early_exits, 1u);
  EXPECT_DOUBLE_EQ(usage[1].compute_ms, 10.0);

  serving::PricingPolicy pricing{0.01, 0.05};
  EXPECT_DOUBLE_EQ(meter.charge(0, pricing), 0.05 * 2 + 0.01 * 90.0);
  EXPECT_DOUBLE_EQ(meter.charge(1, pricing), 0.05 + 0.01 * 10.0);
  EXPECT_DOUBLE_EQ(meter.total_charge(pricing),
                   meter.charge(0, pricing) + meter.charge(1, pricing));
}

TEST(UsageMeter, ValidatesInputs) {
  sched::StageCostModel costs{{10.0}, 0.0};
  EXPECT_THROW(serving::UsageMeter(costs, {}), InvalidArgument);
  serving::UsageMeter meter(costs, {"a"});
  std::vector<serving::InferenceRequest> requests(1);
  requests[0].service_class = 7;
  std::vector<serving::InferenceResponse> responses(1);
  EXPECT_THROW(meter.record(requests, responses, 1), InvalidArgument);
}

// -------------------------------------------------------------- pool guard

TEST(PoolGuard, FlagsTheLabelFlippingContributor) {
  data::SyntheticImageConfig dc;
  dc.num_classes = 4;
  dc.channels = 2;
  dc.height = 8;
  dc.width = 8;
  dc.noise_stddev = 0.15;
  Rng rng(3);

  std::vector<labeling::Contribution> pool;
  for (std::size_t device = 0; device < 5; ++device) {
    labeling::Contribution c;
    c.device_id = device;
    c.data = data::generate_images(dc, 80, rng);
    pool.push_back(std::move(c));
  }
  // Device 3 goes rogue: flips 60% of its labels (keeping 40% good data
  // "to avoid suspicion", as the paper worries).
  for (std::size_t i = 0; i < pool[3].data.size(); ++i)
    if (i % 5 < 3)
      pool[3].data.labels[i] = (pool[3].data.labels[i] + 1) % 4;

  const auto factory = [](std::uint64_t variant) {
    Rng r(900 + variant);
    nn::Sequential net;
    net.add(std::make_unique<nn::Flatten>())
        .add(std::make_unique<nn::Dense>(2 * 8 * 8, 24, r))
        .add(std::make_unique<nn::ReLU>())
        .add(std::make_unique<nn::Dense>(24, 4, r));
    return net;
  };
  labeling::PoolGuardConfig cfg;
  cfg.training.epochs = 8;
  const auto reports = labeling::screen_pool(pool, factory, cfg);
  ASSERT_EQ(reports.size(), 5u);
  EXPECT_TRUE(reports[3].flagged) << "rate " << reports[3].disagreement_rate;
  for (std::size_t d : {0u, 1u, 2u, 4u})
    EXPECT_FALSE(reports[d].flagged) << "device " << d << " rate "
                                     << reports[d].disagreement_rate;
  EXPECT_GT(reports[3].disagreement_rate, reports[0].disagreement_rate + 0.2);

  const data::Dataset cleaned = labeling::clean_pool(pool, reports);
  EXPECT_EQ(cleaned.size(), 4u * 80u);
}

TEST(PoolGuard, RequiresEnoughContributors) {
  std::vector<labeling::Contribution> two(2);
  EXPECT_THROW(
      labeling::screen_pool(two, [](std::uint64_t) { return nn::Sequential(); }, {}),
      InvalidArgument);
}

// -------------------------------------------------------------- staged MLP

TEST(StagedMlp, BuildsAndLearnsTimeSeries) {
  data::TimeSeriesConfig ts;
  ts.num_classes = 4;
  ts.channels = 3;
  ts.length = 32;
  Rng rng(4);
  const data::Dataset train = data::generate_series(ts, 250, rng);
  const data::Dataset test = data::generate_series(ts, 120, rng);

  nn::StagedMlpConfig cfg;
  cfg.input_dim = 3 * 32;
  cfg.num_classes = 4;
  cfg.stage_widths = {24, 24, 24};
  nn::StagedModel model = nn::build_staged_mlp(cfg);
  EXPECT_EQ(model.num_stages(), 3u);

  nn::StagedTrainConfig tcfg;
  tcfg.epochs = 8;
  nn::StagedTrainer trainer(model, tcfg);
  trainer.fit(train.samples, train.labels);
  const double acc =
      nn::StagedTrainer::evaluate_accuracy(model, test.samples, test.labels, 2);
  EXPECT_GT(acc, 0.6) << "4-class time series; chance is 0.25";

  // Multi-exit structure works end to end: stage outputs are distributions.
  const auto outputs = model.forward_all(test.samples[0]);
  ASSERT_EQ(outputs.size(), 3u);
  for (const auto& out : outputs) EXPECT_EQ(out.probs.size(), 4u);
}

}  // namespace
}  // namespace eugene
