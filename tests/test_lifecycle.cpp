// Zero-downtime lifecycle suite (DESIGN.md §13): the ServerLifecycle state
// machine, epoch-pinned registry publication, live snapshots, hot model
// swap, and graceful drain — under concurrent traffic.
//
// The Lifecycle.* tests are deterministic units. The LifecycleChaos.* tests
// hammer serving threads against a mutator looping snapshot / restore /
// swap / reload; they pass everywhere but earn their keep under the `tsan`
// and `asan-ubsan` presets, where any crack in the epoch-publication
// contract (a reader observing a half-published view, a clone touching
// inference scratch) becomes a reported race. CI's lifecycle-chaos job
// re-runs them with EUGENE_FAILPOINTS arming the drain/swap/snapshot seams.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <thread>

#include "calib/evaluation.hpp"
#include "common/failpoint.hpp"
#include "common/lifecycle.hpp"
#include "core/eugene_service.hpp"
#include "sched/live.hpp"
#include "serving/snapshot.hpp"
#include "serving/usage.hpp"

namespace eugene {
namespace {

namespace fs = std::filesystem;

/// Disarms every failpoint on entry and exit of a test body. Chaos tests
/// that want the environment seams armed simply don't use it.
struct FailpointGuard {
  FailpointGuard() { FailpointRegistry::instance().disarm_all(); }
  ~FailpointGuard() { FailpointRegistry::instance().disarm_all(); }
};

struct TempDir {
  std::string path;
  explicit TempDir(const std::string& tag)
      : path("/tmp/eugene_lifecycle_" + tag + "_" + std::to_string(::getpid())) {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

nn::StagedResNetConfig tiny_model_config(std::uint64_t seed = 1) {
  nn::StagedResNetConfig cfg;
  cfg.in_channels = 2;
  cfg.height = 8;
  cfg.width = 8;
  cfg.num_classes = 4;
  cfg.stage_channels = {3, 4};
  cfg.head_hidden = 8;
  cfg.seed = seed;
  return cfg;
}

constexpr std::size_t kStages = 2;  // tiny_model_config has two stages

calib::StagedEvaluation fake_eval(std::uint64_t seed = 5) {
  calib::StagedEvaluation eval;
  eval.records.resize(kStages);
  Rng rng(seed);
  for (int i = 0; i < 200; ++i) {
    const double base = rng.uniform(0.1, 0.9);
    for (std::size_t s = 0; s < kStages; ++s) {
      calib::StageRecord r;
      r.confidence = static_cast<float>(std::min(
          1.0, base + 0.2 * (static_cast<double>(s) + rng.uniform(0.0, 0.1))));
      eval.records[s].push_back(r);
    }
  }
  return eval;
}

/// A fully serve-ready entry built off to the side (no published state is
/// ever mutated — the epoch contract forbids it).
std::shared_ptr<serving::ModelEntry> make_calibrated_entry(
    const std::string& name, std::uint64_t seed = 1) {
  auto entry = std::make_shared<serving::ModelEntry>(
      name, nn::build_staged_resnet(tiny_model_config(seed)));
  entry->curves.fit(fake_eval(seed + 4));
  entry->costs.stage_ms = {1.0 + static_cast<double>(seed), 2.0};
  entry->costs.jitter_fraction = 0.0;
  entry->calibration_alpha = {0.4, 0.6};
  entry->calibrated = true;
  return entry;
}

std::size_t add_calibrated_model(core::EugeneService& service,
                                 const std::string& name,
                                 std::uint64_t seed = 1) {
  return service.registry().add_entry(make_calibrated_entry(name, seed));
}

serving::ModelFactory tiny_factory(std::uint64_t seed = 99) {
  return [seed](const std::string&) {
    return nn::build_staged_resnet(tiny_model_config(seed));
  };
}

std::vector<serving::InferenceRequest> make_requests(std::size_t n,
                                                     std::uint64_t seed = 3) {
  Rng rng(seed);
  std::vector<serving::InferenceRequest> requests;
  requests.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    requests.push_back({tensor::Tensor::randn({2, 8, 8}, rng), 0});
  return requests;
}

core::DrainOptions drain_options(double timeout_ms) {
  core::DrainOptions options;
  options.timeout_ms = timeout_ms;
  return options;
}

// ---- ServerLifecycle units -------------------------------------------------

TEST(Lifecycle, StateMachineOrder) {
  FailpointGuard guard;
  ServerLifecycle lc;
  EXPECT_EQ(lc.state(), ServerState::kStarting);
  EXPECT_STREQ(server_state_name(lc.state()), "starting");

  // First admission promotes Starting → Serving.
  EXPECT_TRUE(lc.try_admit(2));
  EXPECT_EQ(lc.state(), ServerState::kServing);
  EXPECT_EQ(lc.inflight(), 2u);
  lc.finish(2);
  EXPECT_EQ(lc.inflight(), 0u);

  const DrainReport report = lc.begin_drain(1000.0);
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.inflight_at_begin, 0u);
  EXPECT_EQ(lc.state(), ServerState::kDraining);
  EXPECT_FALSE(lc.try_admit());

  lc.set_stopped();
  EXPECT_EQ(lc.state(), ServerState::kStopped);
  EXPECT_STREQ(server_state_name(lc.state()), "stopped");
  EXPECT_FALSE(lc.try_admit());
  // Stopped is terminal: a re-drain reports instant completion.
  EXPECT_TRUE(lc.begin_drain(0.0).completed);
}

TEST(Lifecycle, SetServingPromotesOnlyFromStarting) {
  FailpointGuard guard;
  ServerLifecycle lc;
  lc.set_serving();
  EXPECT_EQ(lc.state(), ServerState::kServing);
  (void)lc.begin_drain(0.0);
  lc.set_serving();  // no-op from Draining
  EXPECT_EQ(lc.state(), ServerState::kDraining);
}

TEST(Lifecycle, DrainWaitsForInflightWork) {
  FailpointGuard guard;
  ServerLifecycle lc;
  ASSERT_TRUE(lc.try_admit());

  std::atomic<bool> finished{false};
  std::thread worker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    finished.store(true);
    lc.finish();
  });
  const DrainReport report = lc.begin_drain(10000.0);
  EXPECT_TRUE(report.completed);
  EXPECT_TRUE(finished.load());  // the drain really waited
  EXPECT_EQ(report.inflight_at_begin, 1u);
  EXPECT_EQ(report.inflight_abandoned, 0u);
  worker.join();
}

TEST(Lifecycle, DrainTimeoutAbandonsStragglers) {
  FailpointGuard guard;
  ServerLifecycle lc;
  ASSERT_TRUE(lc.try_admit(3));
  const DrainReport report = lc.begin_drain(10.0);
  EXPECT_FALSE(report.completed);
  EXPECT_EQ(report.inflight_at_begin, 3u);
  EXPECT_EQ(report.inflight_abandoned, 3u);
  // Stragglers were abandoned, not dropped: their finish() is still legal
  // and a re-entered drain now completes.
  lc.finish(3);
  EXPECT_TRUE(lc.begin_drain(1000.0).completed);
}

// ---- epoch publication units ----------------------------------------------

TEST(LifecycleEpoch, PinnedViewIsImmuneToLaterMutations) {
  FailpointGuard guard;
  serving::ModelRegistry registry;
  EXPECT_EQ(registry.pin()->epoch(), 0u);  // empty initial epoch

  const std::size_t handle = registry.add_entry(make_calibrated_entry("m", 1));
  const serving::ModelRegistry::ViewPtr pinned = registry.pin();
  EXPECT_EQ(pinned->epoch(), 1u);
  EXPECT_EQ(pinned->entry(handle).calibration_alpha,
            (std::vector<double>{0.4, 0.6}));

  registry.update(handle, [](serving::ModelEntry& e) {
    e.calibration_alpha = {0.9, 0.9};
  });

  // The pinned epoch still reads the old α; a fresh pin reads the new one.
  EXPECT_EQ(pinned->entry(handle).calibration_alpha,
            (std::vector<double>{0.4, 0.6}));
  EXPECT_EQ(registry.pin()->entry(handle).calibration_alpha,
            (std::vector<double>{0.9, 0.9}));
  EXPECT_EQ(registry.pin()->epoch(), 2u);
  // COW replaced the entry object; the pinned one is untouched.
  EXPECT_NE(&pinned->entry(handle), &registry.pin()->entry(handle));
}

TEST(LifecycleEpoch, ReplaceOrAddPublishesOneEpoch) {
  FailpointGuard guard;
  serving::ModelRegistry registry;
  registry.add_entry(make_calibrated_entry("a", 1));
  registry.add_entry(make_calibrated_entry("b", 2));
  const std::uint64_t before = registry.epoch();

  std::vector<std::shared_ptr<serving::ModelEntry>> batch;
  batch.push_back(make_calibrated_entry("b", 7));  // replaces handle 1
  batch.push_back(make_calibrated_entry("c", 8));  // appends as handle 2
  registry.replace_or_add(std::move(batch));

  EXPECT_EQ(registry.epoch(), before + 1);  // ONE epoch for the whole batch
  EXPECT_EQ(registry.find("b").value(), 1u);
  EXPECT_EQ(registry.find("c").value(), 2u);
  EXPECT_EQ(registry.size(), 3u);
}

TEST(LifecycleEpoch, SwapStallErrorAbortsPublicationCleanly) {
  FailpointGuard guard;
  serving::ModelRegistry registry;
  const std::size_t handle = registry.add_entry(make_calibrated_entry("m", 1));
  const std::uint64_t epoch = registry.epoch();

  FailpointRegistry::instance().arm("registry.swap.stall", FailpointSpec{});
  EXPECT_THROW(registry.replace(handle, make_calibrated_entry("m", 9)),
               FailpointError);
  FailpointRegistry::instance().disarm_all();

  // The failed publication left no trace: same epoch, same entry, and the
  // next publication commits the epoch number the failed one never used.
  EXPECT_EQ(registry.epoch(), epoch);
  EXPECT_EQ(registry.entry(handle).costs.stage_ms[0], 2.0);  // seed-1 entry
  registry.replace(handle, make_calibrated_entry("m", 9));
  EXPECT_EQ(registry.epoch(), epoch + 1);
  EXPECT_EQ(registry.entry(handle).costs.stage_ms[0], 10.0);  // seed-9 entry
}

// ---- service-level drain / swap / reload ----------------------------------

TEST(LifecycleService, DrainUnderLoadDropsNothingAndFlushesJournal) {
  FailpointGuard guard;
  TempDir dir("drain");
  const std::string journal = dir.path + "_journal.bin";
  std::remove(journal.c_str());

  core::EugeneService service;
  constexpr std::size_t kThreads = 4;
  for (std::size_t t = 0; t < kThreads; ++t)
    add_calibrated_model(service, "m" + std::to_string(t), t + 1);

  serving::UsageMeter meter(
      sched::StageCostModel{{1.0, 2.0}, 0.0},
      {"default"});
  meter.open_journal(journal);

  // Serving threads: each owns a distinct handle (published entries hold
  // per-model inference scratch, which is thread-owned by contract) and
  // journals every completed batch. They stop at the first drain-typed
  // rejection.
  std::atomic<std::size_t> completed{0};
  std::vector<std::thread> servers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    servers.emplace_back([&, t] {
      const auto requests = make_requests(3, 100 + t);
      serving::ServerConfig cfg;
      cfg.early_exit_confidence = 0.8;
      for (;;) {
        // The thread holds its own admission unit around the serve AND the
        // journal append, so the drain's journal flush can only run after
        // every journaled batch has committed (admissions nest: the server
        // admits the batch inside this unit).
        if (!service.lifecycle().try_admit()) return;
        const auto responses = service.infer_batch(t, requests, cfg);
        if (responses.front().draining) {
          // Drain won the race between our admission and the batch's.
          for (const auto& r : responses) {
            EXPECT_TRUE(r.draining);
            EXPECT_EQ(r.stages_run, 0u);  // typed rejection: no stage ran
          }
          service.lifecycle().finish();
          return;
        }
        for (const auto& r : responses) EXPECT_GE(r.stages_run, 1u);
        meter.record(requests, responses, kStages);
        completed.fetch_add(responses.size(), std::memory_order_relaxed);
        service.lifecycle().finish();
      }
    });
  }

  // Let traffic build, then drain with journal flush + final snapshot.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  core::DrainOptions options;
  options.timeout_ms = 30000.0;
  options.snapshot_dir = dir.path;
  options.usage = &meter;
  const core::DrainOutcome outcome = service.begin_drain(options);
  for (auto& t : servers) t.join();

  EXPECT_TRUE(outcome.report.completed);
  EXPECT_EQ(outcome.report.inflight_abandoned, 0u);
  EXPECT_TRUE(outcome.journal_flushed);
  EXPECT_GE(outcome.snapshot_epoch, 1u);
  EXPECT_EQ(service.lifecycle().state(), ServerState::kStopped);
  EXPECT_GT(completed.load(), 0u);

  // Every journaled batch survived the flush: a fresh meter replays the
  // complete ledger with no torn tail.
  serving::UsageMeter replayed(sched::StageCostModel{{1.0, 2.0}, 0.0},
                               {"default"});
  const auto replay = replayed.replay_journal(journal);
  EXPECT_FALSE(replay.truncated);
  EXPECT_EQ(replayed.usage()[0].requests, completed.load());

  // The lifecycle gauge reports Stopped (read before any later service
  // construction resets it to Starting).
  const auto snapshot = telemetry::parse_metrics_text(service.metrics_text());
  EXPECT_EQ(snapshot.gauges.at("serving.lifecycle.state"), 3.0);

  // The final snapshot restores a serve-ready model set.
  core::EugeneService fresh;
  EXPECT_EQ(fresh.restore(dir.path, tiny_factory()), kThreads);
}

TEST(LifecycleService, ForcedBrownoutDuringDrainYieldsDrainTypedRejections) {
  FailpointGuard guard;
  core::EugeneService service;
  const std::size_t handle = add_calibrated_model(service, "m", 1);

  // Satellite guarantee: the lifecycle gate runs before the brown-out
  // controller, so even a server being forced into brown-out answers a
  // drained request with draining=true — never browned_out/degraded.
  FailpointRegistry::instance().arm("admit.brownout.force", FailpointSpec{});
  (void)service.begin_drain(drain_options(1000.0));

  const auto responses =
      service.infer_batch(handle, make_requests(4), serving::ServerConfig{});
  for (const auto& r : responses) {
    EXPECT_TRUE(r.draining);
    EXPECT_FALSE(r.browned_out);
    EXPECT_FALSE(r.degraded);
    EXPECT_EQ(r.stages_run, 0u);
  }
}

TEST(LifecycleService, OpenBreakersDoNotBlockDrain) {
  FailpointGuard guard;
  core::EugeneService service;
  add_calibrated_model(service, "m", 1);
  const serving::ModelRegistry::ViewPtr view = service.registry().pin();

  // A live run whose replica breakers are all force-tripped: every record()
  // opens a breaker, routing degrades, but tasks still complete — and the
  // in-flight accounting they hold must still reach zero so the drain
  // finishes. A hung drain here would time out and fail the test.
  FailpointSpec trip;
  trip.kind = FailpointKind::kError;
  FailpointRegistry::instance().arm("health.breaker.trip", trip);

  sched::LiveConfig config;
  config.early_exit_confidence = 0.8;
  config.health.enabled = true;
  config.lifecycle = &service.lifecycle();
  auto replicas = sched::replicate_staged_model(view->entry(0).model, 2);

  std::vector<tensor::Tensor> inputs;
  Rng rng(11);
  for (int i = 0; i < 6; ++i) inputs.push_back(tensor::Tensor::randn({2, 8, 8}, rng));

  std::thread traffic([&] {
    const auto results = sched::run_live(replicas, view->entry(0).curves,
                                         inputs, config);
    for (const auto& r : results) EXPECT_FALSE(r.drained);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const core::DrainOutcome outcome =
      service.begin_drain(drain_options(30000.0));
  traffic.join();
  EXPECT_TRUE(outcome.report.completed);

  // Post-drain, run_live answers with typed drained results, zero stages.
  const auto rejected = sched::run_live(replicas, view->entry(0).curves,
                                        inputs, config);
  for (const auto& r : rejected) {
    EXPECT_TRUE(r.drained);
    EXPECT_EQ(r.stages_run, 0u);
  }
}

TEST(LifecycleService, HotSwapKeepsArtifactsAndBumpsEpoch) {
  FailpointGuard guard;
  core::EugeneService service;
  const std::size_t handle = add_calibrated_model(service, "m", 1);
  const std::uint64_t epoch = service.registry().epoch();
  const auto requests = make_requests(4);

  service.swap_model(handle, nn::build_staged_resnet(tiny_model_config(21)));
  EXPECT_EQ(service.registry().epoch(), epoch + 1);
  const serving::ModelEntry& swapped = service.registry().entry(handle);
  EXPECT_EQ(swapped.name, "m");
  EXPECT_TRUE(swapped.calibrated);  // artifacts carried over
  EXPECT_EQ(swapped.calibration_alpha, (std::vector<double>{0.4, 0.6}));

  // The swapped-in model serves immediately.
  const auto responses =
      service.infer_batch(handle, requests, serving::ServerConfig{});
  for (const auto& r : responses) EXPECT_FALSE(r.draining);

  // A different architecture must not inherit stale artifacts.
  nn::StagedResNetConfig other = tiny_model_config(3);
  other.stage_channels = {3, 4, 5};  // three stages now
  EXPECT_THROW(
      service.swap_model(handle, nn::build_staged_resnet(other)),
      InvalidArgument);
  service.swap_model(handle, nn::build_staged_resnet(other),
                     /*keep_artifacts=*/false);
  EXPECT_FALSE(service.registry().entry(handle).calibrated);
}

TEST(LifecycleService, KillMidSwapRestartsOnPreviousGoodEpoch) {
  FailpointGuard guard;
  TempDir dir("midswap");
  core::EugeneService service;
  const std::size_t handle = add_calibrated_model(service, "m", 1);
  ASSERT_EQ(service.snapshot(dir.path), 1u);
  const auto requests = make_requests(6);
  const auto expected =
      service.infer_batch(handle, requests, serving::ServerConfig{});

  // Crash 1: the publication itself dies (swap stall). Nothing changed.
  FailpointRegistry::instance().arm("registry.swap.stall", FailpointSpec{});
  EXPECT_THROW(service.swap_model(
                   handle, nn::build_staged_resnet(tiny_model_config(33))),
               FailpointError);
  FailpointRegistry::instance().disarm_all();

  // Crash 2: the process dies mid-snapshot of post-swap state. The torn
  // epoch-2 attempt must not shadow the committed epoch 1.
  service.swap_model(handle, nn::build_staged_resnet(tiny_model_config(33)));
  FailpointRegistry::instance().arm("snapshot.manifest.crash", FailpointSpec{});
  EXPECT_THROW((void)service.snapshot(dir.path), FailpointError);
  FailpointRegistry::instance().disarm_all();

  // "Restart": a fresh process restores the previous good epoch and answers
  // exactly as the pre-swap server did.
  core::EugeneService restarted;
  EXPECT_EQ(restarted.restore(dir.path, tiny_factory()), 1u);
  const auto actual =
      restarted.infer_batch(0, requests, serving::ServerConfig{});
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].label, expected[i].label) << "request " << i;
    EXPECT_NEAR(actual[i].confidence, expected[i].confidence, 1e-12);
  }
}

// ---- chaos: serving threads vs a snapshot/swap/reload mutator --------------

TEST(LifecycleChaos, ServeWhileSnapshotSwapAndReload) {
  // Environment failpoints stay armed on purpose: CI's lifecycle-chaos job
  // injects drain hangs, swap stalls, and snapshot races here.
  TempDir dir("chaos");
  core::EugeneService service;
  constexpr std::size_t kThreads = 3;
  for (std::size_t t = 0; t < kThreads; ++t)
    add_calibrated_model(service, "m" + std::to_string(t), t + 1);

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> served{0};

  // Serving threads: each owns one handle; every batch pins its own epoch.
  std::vector<std::thread> servers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    servers.emplace_back([&, t] {
      const auto requests = make_requests(2, 200 + t);
      serving::ServerConfig cfg;
      cfg.early_exit_confidence = 0.8;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto responses = service.infer_batch(t, requests, cfg);
        for (const auto& r : responses) {
          EXPECT_LT(r.label, 4u);
          EXPECT_FALSE(r.draining);  // the mutator never drains
        }
        served.fetch_add(responses.size(), std::memory_order_relaxed);
      }
    });
  }

  // Mutator: live snapshots, COW recalibration, hot swaps, and full
  // reloads, all while the servers hammer the same handles. Swap sources
  // are private template models — published entries are never mutated.
  const std::uint64_t epoch_before = service.registry().epoch();
  for (int round = 0; round < 8; ++round) {
    try {
      (void)service.snapshot(dir.path);
      service.registry().update(
          static_cast<std::size_t>(round) % kThreads,
          [round](serving::ModelEntry& e) {
            e.calibration_alpha = {0.4 + 0.01 * round, 0.6};
          });
      service.swap_model(static_cast<std::size_t>(round) % kThreads,
                         nn::build_staged_resnet(
                             tiny_model_config(40 + static_cast<std::uint64_t>(round))));
      (void)service.reload(dir.path, tiny_factory());
    } catch (const FailpointError&) {
      // CI arms the swap/snapshot seams with p<1: an injected abort must
      // leave the registry publishable — the next round proves it.
    }
  }
  stop.store(true);
  for (auto& t : servers) t.join();

  EXPECT_GT(served.load(), 0u);
  EXPECT_GT(service.registry().epoch(), epoch_before);
  EXPECT_EQ(service.registry().size(), kThreads);

  // After the dust settles the registry still snapshots and restores.
  FailpointRegistry::instance().disarm_all();
  const std::uint64_t final_epoch = service.snapshot(dir.path);
  core::EugeneService fresh;
  EXPECT_EQ(fresh.restore(dir.path, tiny_factory()), kThreads);
  EXPECT_GE(final_epoch, 1u);
}

TEST(LifecycleChaos, DrainRacesServingThreads) {
  // SIGTERM-under-load shape: traffic on every handle, drain fired from a
  // separate thread mid-flight. No request may be dropped: each one either
  // completes normally or comes back drain-typed with zero stages run.
  TempDir dir("drainrace");
  core::EugeneService service;
  constexpr std::size_t kThreads = 3;
  for (std::size_t t = 0; t < kThreads; ++t)
    add_calibrated_model(service, "m" + std::to_string(t), t + 1);

  std::atomic<std::size_t> completed{0}, drained{0};
  std::vector<std::thread> servers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    servers.emplace_back([&, t] {
      const auto requests = make_requests(2, 300 + t);
      serving::ServerConfig cfg;
      cfg.early_exit_confidence = 0.8;
      for (;;) {
        const auto responses = service.infer_batch(t, requests, cfg);
        if (responses.front().draining) {
          drained.fetch_add(responses.size(), std::memory_order_relaxed);
          return;
        }
        for (const auto& r : responses) EXPECT_GE(r.stages_run, 1u);
        completed.fetch_add(responses.size(), std::memory_order_relaxed);
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  core::DrainOptions options;
  options.timeout_ms = 30000.0;
  options.snapshot_dir = dir.path;
  const core::DrainOutcome outcome = service.begin_drain(options);
  for (auto& t : servers) t.join();

  EXPECT_TRUE(outcome.report.completed);
  EXPECT_EQ(outcome.report.inflight_abandoned, 0u);
  EXPECT_GT(drained.load(), 0u);   // every thread saw its typed rejection
  EXPECT_GT(completed.load(), 0u);
  EXPECT_GE(outcome.snapshot_epoch, 1u);

  core::EugeneService fresh;
  FailpointRegistry::instance().disarm_all();
  EXPECT_EQ(fresh.restore(dir.path, tiny_factory()), kThreads);
}

}  // namespace
}  // namespace eugene
