// Serving-layer and EugeneService facade tests: registry semantics, the
// inference server's scheduling/early-exit/deadline behaviour, service
// classes, and the end-to-end train → calibrate → profile → infer flow.
#include <gtest/gtest.h>

#include "core/eugene_service.hpp"
#include "data/synthetic_images.hpp"

namespace eugene {
namespace {

data::SyntheticImageConfig data_config() {
  data::SyntheticImageConfig cfg;
  cfg.num_classes = 4;
  cfg.channels = 2;
  cfg.height = 8;
  cfg.width = 8;
  return cfg;
}

nn::StagedResNetConfig model_config() {
  nn::StagedResNetConfig cfg;
  cfg.in_channels = 2;
  cfg.height = 8;
  cfg.width = 8;
  cfg.num_classes = 4;
  cfg.stage_channels = {4, 6, 8};
  cfg.head_hidden = 16;
  return cfg;
}

TEST(ModelRegistry, AddFindAndDuplicateRejection) {
  serving::ModelRegistry registry;
  const std::size_t h1 = registry.add("alpha", nn::build_staged_resnet(model_config()));
  const std::size_t h2 = registry.add("beta", nn::build_staged_resnet(model_config()));
  EXPECT_EQ(h1, 0u);
  EXPECT_EQ(h2, 1u);
  EXPECT_EQ(registry.find("beta").value(), 1u);
  EXPECT_FALSE(registry.find("gamma").has_value());
  EXPECT_THROW(registry.add("alpha", nn::build_staged_resnet(model_config())),
               InvalidArgument);
  EXPECT_THROW(registry.entry(5), InvalidArgument);
}

TEST(InferenceServer, RefusesUncalibratedModels) {
  serving::ModelRegistry registry;
  registry.add("raw", nn::build_staged_resnet(model_config()));
  EXPECT_THROW(serving::InferenceServer(registry.entry(0), serving::ServerConfig{}),
               InvalidArgument);
}

// Shared fixture: one fully prepared EugeneService.
class ServiceIntegration : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(30);
    train_ = new data::Dataset(data::generate_images(data_config(), 350, rng));
    calib_ = new data::Dataset(data::generate_images(data_config(), 200, rng));
    test_ = new data::Dataset(data::generate_images(data_config(), 60, rng));

    service_ = new core::EugeneService();
    nn::StagedTrainConfig tcfg;
    tcfg.epochs = 8;
    handle_ = service_->train("resnet-tiny", *train_, model_config(), tcfg);

    // Default calibration config: wide alpha grid, full fine-tune budget.
    report_ = service_->calibrate(handle_, *calib_);
  }

  static void TearDownTestSuite() {
    delete service_;
    delete train_;
    delete calib_;
    delete test_;
    service_ = nullptr;
    train_ = calib_ = test_ = nullptr;
  }

  static core::EugeneService* service_;
  static data::Dataset* train_;
  static data::Dataset* calib_;
  static data::Dataset* test_;
  static std::size_t handle_;
  static core::CalibrationReport report_;
};

core::EugeneService* ServiceIntegration::service_ = nullptr;
data::Dataset* ServiceIntegration::train_ = nullptr;
data::Dataset* ServiceIntegration::calib_ = nullptr;
data::Dataset* ServiceIntegration::test_ = nullptr;
std::size_t ServiceIntegration::handle_ = 0;
core::CalibrationReport ServiceIntegration::report_;

TEST_F(ServiceIntegration, CalibrationProducesLowEce) {
  ASSERT_EQ(report_.stage_ece.size(), 3u);
  for (double ece : report_.stage_ece) EXPECT_LT(ece, 0.2);
  EXPECT_TRUE(service_->registry().entry(handle_).calibrated);
}

TEST_F(ServiceIntegration, ProfileMeasuresIncreasingStageCosts) {
  const core::StageProfile profile = service_->profile(handle_, {2, 8, 8});
  ASSERT_EQ(profile.stage_ms.size(), 3u);
  for (double ms : profile.stage_ms) EXPECT_GT(ms, 0.0);
  for (double flops : profile.stage_flops) EXPECT_GT(flops, 0.0);
  // The profile is installed as the registry's cost model.
  EXPECT_EQ(service_->registry().entry(handle_).costs.stage_ms, profile.stage_ms);
}

TEST_F(ServiceIntegration, SingleInferenceReturnsSaneResult) {
  const auto response = service_->infer(handle_, test_->samples[0]);
  EXPECT_LT(response.label, 4u);
  EXPECT_GT(response.confidence, 0.0);
  EXPECT_GE(response.stages_run, 1u);
  EXPECT_LE(response.stages_run, 3u);
  EXPECT_FALSE(response.expired);
}

TEST_F(ServiceIntegration, BatchInferenceIsReasonablyAccurate) {
  std::vector<serving::InferenceRequest> requests;
  for (std::size_t i = 0; i < test_->size(); ++i)
    requests.push_back({test_->samples[i], 0});
  serving::ServerConfig cfg;
  cfg.early_exit_confidence = 0.9;
  const auto responses = service_->infer_batch(handle_, requests, cfg);
  ASSERT_EQ(responses.size(), test_->size());
  std::size_t correct = 0;
  for (std::size_t i = 0; i < responses.size(); ++i)
    if (responses[i].label == test_->labels[i]) ++correct;
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(responses.size()), 0.5);
}

TEST_F(ServiceIntegration, EarlyExitSavesStages) {
  std::vector<serving::InferenceRequest> requests;
  for (std::size_t i = 0; i < 30; ++i) requests.push_back({test_->samples[i % test_->size()], 0});

  serving::ServerConfig eager;
  eager.early_exit_confidence = 0.5;
  serving::ServerConfig full;
  full.early_exit_confidence = 2.0;  // disabled

  std::size_t eager_stages = 0, full_stages = 0;
  for (const auto& r : service_->infer_batch(handle_, requests, eager))
    eager_stages += r.stages_run;
  for (const auto& r : service_->infer_batch(handle_, requests, full))
    full_stages += r.stages_run;
  EXPECT_EQ(full_stages, 3u * requests.size());
  EXPECT_LT(eager_stages, full_stages);
}

TEST_F(ServiceIntegration, BatchedFirstStageMatchesPerSamplePath) {
  // The batched stage-0 fast path must be invisible in results: bitwise
  // equal confidences, identical labels and stage counts (the
  // Layer::forward_batch contract, DESIGN.md §14).
  std::vector<serving::InferenceRequest> requests;
  for (std::size_t i = 0; i < 12; ++i) requests.push_back({test_->samples[i], 0});

  serving::ServerConfig batched;
  batched.early_exit_confidence = 0.7;
  batched.batch_first_stage = true;
  serving::ServerConfig per_sample = batched;
  per_sample.batch_first_stage = false;

  const auto got = service_->infer_batch(handle_, requests, batched);
  const auto want = service_->infer_batch(handle_, requests, per_sample);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].label, want[i].label) << i;
    EXPECT_EQ(got[i].confidence, want[i].confidence) << i;
    EXPECT_EQ(got[i].stages_run, want[i].stages_run) << i;
    EXPECT_FALSE(got[i].expired);
    EXPECT_FALSE(got[i].degraded);
  }
}

TEST_F(ServiceIntegration, ServiceClassDeadlineExpiresRequests) {
  std::vector<serving::InferenceRequest> requests;
  for (std::size_t i = 0; i < 10; ++i) requests.push_back({test_->samples[i], 0});
  serving::ServerConfig cfg;
  cfg.classes = {{"impossible", 0.0, 1.0}};  // deadline already passed
  cfg.early_exit_confidence = 2.0;
  const auto responses = service_->infer_batch(handle_, requests, cfg);
  for (const auto& r : responses) {
    EXPECT_TRUE(r.expired);
    EXPECT_EQ(r.stages_run, 0u);
  }
}

TEST_F(ServiceIntegration, ServiceClassesValidated) {
  std::vector<serving::InferenceRequest> requests = {{test_->samples[0], 3}};
  serving::ServerConfig cfg;  // only class 0 exists
  EXPECT_THROW(service_->infer_batch(handle_, requests, cfg), InvalidArgument);
}

TEST_F(ServiceIntegration, LabelingFacadeDelegates) {
  Rng rng(31);
  const data::Dataset labeled = data::generate_images(data_config(), 50, rng);
  const data::Dataset unlabeled = data::generate_images(data_config(), 100, rng);
  labeling::SelfTrainingConfig cfg;
  cfg.rounds = 2;
  cfg.training.epochs = 5;
  labeling::LabelingReport report;
  const data::Dataset augmented = service_->label(
      labeled, unlabeled,
      [](std::uint64_t variant) {
        Rng r(variant);
        nn::Sequential net;
        net.add(std::make_unique<nn::Flatten>())
            .add(std::make_unique<nn::Dense>(2 * 8 * 8, 16, r))
            .add(std::make_unique<nn::ReLU>())
            .add(std::make_unique<nn::Dense>(16, 4, r));
        return net;
      },
      cfg, &report);
  EXPECT_GE(augmented.size(), labeled.size());
  EXPECT_EQ(augmented.size(), labeled.size() + report.adopted_total);
}

TEST_F(ServiceIntegration, DeviceCacheFacadeBuildsWorkingCache) {
  reduce::CacheBuildConfig cfg;
  cfg.architecture.in_channels = 2;
  cfg.architecture.height = 8;
  cfg.architecture.width = 8;
  cfg.architecture.conv_channels = {6, 6};
  cfg.training.epochs = 5;
  const reduce::CacheModel cache = service_->build_device_cache(*train_, {0, 2}, cfg);
  EXPECT_EQ(cache.frequent_classes, (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(cache.other_label, 2u);
}

}  // namespace
}  // namespace eugene
