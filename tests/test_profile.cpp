// Profiler tests: timing harness sanity, the mobile cost model (Table I
// phenomenon), and piecewise-linear execution-time regression.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "nn/layers.hpp"
#include "profile/cost_model.hpp"
#include "profile/linear_region.hpp"
#include "profile/timing.hpp"

namespace eugene::profile {
namespace {

tensor::Conv2dGeometry geometry(std::size_t cin, std::size_t cout, std::size_t hw) {
  tensor::Conv2dGeometry g;
  g.in_channels = cin;
  g.out_channels = cout;
  g.in_height = hw;
  g.in_width = hw;
  return g;
}

TEST(Timing, ConvMeasurementIsPositiveAndScalesWithWork) {
  TimingConfig cfg;
  cfg.repeats = 3;
  const double small = measure_conv_ms(geometry(4, 4, 8), cfg);
  const double large = measure_conv_ms(geometry(16, 16, 32), cfg);
  EXPECT_GT(small, 0.0);
  EXPECT_GT(large, small);
}

TEST(Timing, LayerMeasurementWorks) {
  Rng rng(1);
  nn::Conv2d layer(geometry(4, 8, 10), rng);
  const double ms = measure_layer_ms(layer, {4, 10, 10});
  EXPECT_GT(ms, 0.0);
}

TEST(CostModel, FitRecoversSyntheticParameters) {
  // Generate measurements from a known model and check the fit predicts it.
  const MobileConvCostModel truth(1e-4, 5e6, 8.0);
  std::vector<ConvMeasurement> data;
  for (std::size_t cin : {4u, 8u, 16u, 32u, 64u})
    for (std::size_t cout : {4u, 8u, 16u, 32u, 64u})
      data.push_back({geometry(cin, cout, 56), truth.predict_ms(geometry(cin, cout, 56))});
  const MobileConvCostModel fitted = MobileConvCostModel::fit(data);
  EXPECT_LT(fitted.mean_relative_error(data), 0.05);
}

TEST(CostModel, Nexus5ReferenceReproducesTable1Orderings) {
  const MobileConvCostModel model = MobileConvCostModel::nexus5_reference();
  const double t1 = model.predict_ms(geometry(8, 32, 224));   // 452.4 MFLOPs
  const double t2 = model.predict_ms(geometry(32, 8, 224));   // 452.4 MFLOPs
  const double t3 = model.predict_ms(geometry(66, 32, 224));  // 3732.3 MFLOPs
  const double t4 = model.predict_ms(geometry(43, 64, 224));  // 4863.3 MFLOPs

  // Table I, row-pair phenomena:
  //   (a) equal FLOPs, very different times (CNN2 much slower than CNN1);
  //   (b) more FLOPs yet *less* time (CNN4 faster than CNN3).
  EXPECT_GT(t2, 1.8 * t1) << "equal-FLOPs gap lost";
  EXPECT_GT(t3, t4) << "FLOPs/time inversion lost";

  // And the fit should be in the right absolute neighbourhood.
  EXPECT_NEAR(t1, 114.9, 60.0);
  EXPECT_NEAR(t3, 908.3, 250.0);
}

TEST(CostModel, FlopsAloneWouldMispredict) {
  // The motivating claim: a FLOPs-proportional model cannot order Table I.
  const auto g1 = geometry(8, 32, 224), g2 = geometry(32, 8, 224);
  EXPECT_DOUBLE_EQ(g1.flops(), g2.flops());
  const MobileConvCostModel model = MobileConvCostModel::nexus5_reference();
  EXPECT_GT(model.predict_ms(g2) / model.predict_ms(g1), 1.5);
}

TEST(CostModel, ValidatesInputs) {
  EXPECT_THROW(MobileConvCostModel(-1.0, 1.0, 1.0), InvalidArgument);
  EXPECT_THROW(MobileConvCostModel::fit({}), InvalidArgument);
}

TEST(PiecewiseLinearModel, FitsASingleLineExactly) {
  const std::size_t n = 40;
  tensor::Tensor x({n, 1});
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x.at(i, 0) = static_cast<float>(i);
    y[i] = 3.0 * static_cast<double>(i) + 2.0;
  }
  PiecewiseLinearModel model;
  model.fit(x, y);
  EXPECT_EQ(model.num_regions(), 1u);  // no split improves a perfect line
  const double row[] = {10.5};
  EXPECT_NEAR(model.predict(row), 3.0 * 10.5 + 2.0, 1e-3);
}

TEST(PiecewiseLinearModel, SplitsPiecewiseData) {
  // y = x for x <= 50, y = 200 − 3x above: one split, two linear regions.
  const std::size_t n = 100;
  tensor::Tensor x({n, 1});
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double xi = static_cast<double>(i);
    x.at(i, 0) = static_cast<float>(xi);
    y[i] = xi <= 50.0 ? xi : 200.0 - 3.0 * xi;
  }
  PiecewiseLinearModel model;
  model.fit(x, y);
  EXPECT_GE(model.num_regions(), 2u);
  EXPECT_GT(model.r_squared(x, y), 0.98);
  const double left[] = {20.0};
  const double right[] = {80.0};
  EXPECT_NEAR(model.predict(left), 20.0, 3.0);
  EXPECT_NEAR(model.predict(right), 200.0 - 240.0, 6.0);
}

TEST(PiecewiseLinearModel, HandlesMultipleFeatures) {
  Rng rng(2);
  const std::size_t n = 120;
  tensor::Tensor x({n, 2});
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.uniform(0.0, 10.0);
    const double b = rng.uniform(0.0, 10.0);
    x.at(i, 0) = static_cast<float>(a);
    x.at(i, 1) = static_cast<float>(b);
    y[i] = 2.0 * a - b + 1.0;
  }
  PiecewiseLinearModel model;
  model.fit(x, y);
  EXPECT_GT(model.r_squared(x, y), 0.99);
}

TEST(PiecewiseLinearModel, ExecutionTimeRegression) {
  // The FastDeepIoT use case: predict conv time from (C_in, C_out, FLOPs)
  // when the generating process is the nonlinear mobile cost model. The
  // spatial size must vary across samples: at a fixed size the cost model
  // is an exact linear combination of C_in and FLOPs, so one region
  // suffices (an earlier version of this test only saw splits because
  // float-rounding noise in least_squares inflated the single-region SSE).
  const MobileConvCostModel truth = MobileConvCostModel::nexus5_reference();
  std::vector<std::array<double, 3>> rows;
  std::vector<double> times;
  for (std::size_t side : {28, 56}) {
    for (std::size_t cin = 4; cin <= 64; cin += 6) {
      for (std::size_t cout = 4; cout <= 64; cout += 6) {
        const auto g = geometry(cin, cout, side);
        rows.push_back({static_cast<double>(cin), static_cast<double>(cout), g.flops()});
        times.push_back(truth.predict_ms(g));
      }
    }
  }
  tensor::Tensor x({rows.size(), 3});
  for (std::size_t i = 0; i < rows.size(); ++i)
    for (std::size_t j = 0; j < 3; ++j) x.at(i, j) = static_cast<float>(rows[i][j]);

  PiecewiseLinearModel piecewise;
  RegionModelConfig cfg;
  cfg.max_depth = 3;
  piecewise.fit(x, times, cfg);
  EXPECT_GT(piecewise.r_squared(x, times), 0.95);
  EXPECT_GE(piecewise.num_regions(), 2u)
      << "nonlinear cost surface should need more than one linear region";
}

TEST(PiecewiseLinearModel, ValidatesInputs) {
  PiecewiseLinearModel model;
  EXPECT_THROW(model.predict(std::vector<double>{1.0}), InvalidArgument);
  tensor::Tensor x({3, 1});
  std::vector<double> y(2);
  EXPECT_THROW(model.fit(x, y), InvalidArgument);
}

}  // namespace
}  // namespace eugene::profile
