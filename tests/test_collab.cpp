// Collaborative-inference tests: world dynamics, camera geometry and
// detector behaviour, fusion, trust, brokering, and the Table IV property
// (collaboration raises counting accuracy and slashes latency).
#include <gtest/gtest.h>

#include <cmath>

#include "collab/experiment.hpp"

namespace eugene::collab {
namespace {

TEST(World, PeopleStayInBounds) {
  WorldConfig cfg;
  cfg.width = 50;
  cfg.height = 40;
  cfg.num_people = 6;
  Rng rng(1);
  World world(cfg, rng);
  for (int f = 0; f < 300; ++f) {
    world.step(rng);
    for (const Person& p : world.people()) {
      EXPECT_GE(p.position.x, 0.0);
      EXPECT_LE(p.position.x, 50.0);
      EXPECT_GE(p.position.y, 0.0);
      EXPECT_LE(p.position.y, 40.0);
    }
  }
}

TEST(World, PeopleActuallyMove) {
  WorldConfig cfg;
  Rng rng(2);
  World world(cfg, rng);
  const Vec2 start = world.people()[0].position;
  for (int f = 0; f < 20; ++f) world.step(rng);
  EXPECT_GT(distance(start, world.people()[0].position), 1.0);
}

TEST(Camera, SeesRespectsWedgeAndRange) {
  CameraConfig cfg;
  cfg.position = {0.0, 0.0};
  cfg.orientation_rad = 0.0;  // looking along +x
  cfg.fov_rad = 1.0;          // ±0.5 rad
  cfg.range_m = 10.0;
  Camera cam(cfg, 0);
  EXPECT_TRUE(cam.sees({5.0, 0.0}));
  EXPECT_TRUE(cam.sees({5.0, 2.0}));    // atan2(2,5) ≈ 0.38 < 0.5
  EXPECT_FALSE(cam.sees({5.0, 4.0}));   // ≈ 0.67 > 0.5
  EXPECT_FALSE(cam.sees({-5.0, 0.0}));  // behind
  EXPECT_FALSE(cam.sees({11.0, 0.0}));  // out of range
}

TEST(Camera, DetectionRateDecaysWithDistance) {
  CameraConfig cfg;
  cfg.position = {0.0, 0.0};
  cfg.orientation_rad = 0.0;
  cfg.range_m = 40.0;
  cfg.false_positives_per_frame = 0.0;
  Camera cam(cfg, 0);
  Rng rng(3);
  auto detect_rate = [&](double dist) {
    std::vector<Person> people = {{0, {dist, 0.0}, {0, 0}}};
    int hits = 0;
    for (int i = 0; i < 600; ++i) hits += cam.detect(people, rng).empty() ? 0 : 1;
    return static_cast<double>(hits) / 600.0;
  };
  EXPECT_GT(detect_rate(3.0), detect_rate(35.0) + 0.15);
}

TEST(Camera, OcclusionSuppressesDetections) {
  CameraConfig cfg;
  cfg.position = {0.0, 0.0};
  cfg.orientation_rad = 0.0;
  cfg.range_m = 40.0;
  cfg.false_positives_per_frame = 0.0;
  cfg.occlusion_miss = 0.9;
  Camera cam(cfg, 0);
  Rng rng(4);
  // Person 1 is directly behind person 0.
  std::vector<Person> people = {{0, {10.0, 0.0}, {0, 0}}, {1, {20.0, 0.0}, {0, 0}}};
  int far_detected = 0;
  for (int i = 0; i < 600; ++i) {
    for (const Detection& d : cam.detect(people, rng))
      if (!d.is_false_positive && d.truth_id == 1) ++far_detected;
  }
  // Now remove the occluder.
  std::vector<Person> alone = {{1, {20.0, 0.0}, {0, 0}}};
  int alone_detected = 0;
  for (int i = 0; i < 600; ++i) {
    for (const Detection& d : cam.detect(alone, rng))
      if (!d.is_false_positive) ++alone_detected;
  }
  EXPECT_LT(far_detected, alone_detected / 2);
}

TEST(Camera, FalsePositivesAppearAtConfiguredRate) {
  CameraConfig cfg;
  cfg.position = {0.0, 0.0};
  cfg.false_positives_per_frame = 0.5;
  Camera cam(cfg, 0);
  Rng rng(5);
  const std::vector<Person> nobody;
  std::size_t fp = 0;
  for (int i = 0; i < 1000; ++i) fp += cam.detect(nobody, rng).size();
  EXPECT_NEAR(static_cast<double>(fp) / 1000.0, 0.5, 0.08);
}

TEST(Fusion, CountingAccuracyMetric) {
  EXPECT_DOUBLE_EQ(counting_accuracy(5, 5), 1.0);
  EXPECT_DOUBLE_EQ(counting_accuracy(4, 5), 0.8);
  EXPECT_DOUBLE_EQ(counting_accuracy(7, 5), 0.6);
  EXPECT_DOUBLE_EQ(counting_accuracy(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(counting_accuracy(3, 0), 0.0);  // clamped
}

TEST(Fusion, DeduplicatesOverlappingBoxes) {
  CameraConfig cfg;
  cfg.position = {0.0, 0.0};
  cfg.orientation_rad = 0.0;
  cfg.range_m = 50.0;
  Camera cam(cfg, 0);
  Rng rng(6);
  FusionConfig fusion;
  // Own box and a peer box for the same person (1 m apart) → one cluster.
  Detection own{{10.0, 0.0}, 0, 1.0, false, 42};
  Detection peer{{10.5, 0.5}, 1, 1.0, false, 42};
  const auto fused = fuse_detections(cam, {own}, {peer}, fusion, nullptr, rng);
  EXPECT_EQ(fused.size(), 1u);
}

TEST(Fusion, PeerBoxFillsLocalMiss) {
  CameraConfig cfg;
  cfg.position = {0.0, 0.0};
  cfg.orientation_rad = 0.0;
  cfg.range_m = 50.0;
  Camera cam(cfg, 0);
  Rng rng(7);
  FusionConfig fusion;
  Detection peer{{20.0, 1.0}, 1, 1.0, false, 7};
  const auto fused = fuse_detections(cam, {}, {peer}, fusion, nullptr, rng);
  EXPECT_EQ(fused.size(), 1u) << "trusted peer boxes count even without local support";
}

TEST(Fusion, PeerBoxOutsideFovIsIgnored) {
  CameraConfig cfg;
  cfg.position = {0.0, 0.0};
  cfg.orientation_rad = 0.0;
  cfg.fov_rad = 1.0;
  cfg.range_m = 50.0;
  Camera cam(cfg, 0);
  Rng rng(8);
  FusionConfig fusion;
  Detection behind{{-20.0, 0.0}, 1, 1.0, false, 7};
  const auto fused = fuse_detections(cam, {}, {behind}, fusion, nullptr, rng);
  EXPECT_TRUE(fused.empty());
}

TEST(Trust, ErodesForUnverifiedProducers) {
  TrustManager trust(3);
  for (int i = 0; i < 40; ++i) {
    trust.observe(0, true);   // honest camera, always corroborated
    trust.observe(2, false);  // rogue camera, never corroborated
  }
  EXPECT_GT(trust.trust(0), 0.9);
  EXPECT_LT(trust.trust(2), 0.1);
  EXPECT_THROW(trust.trust(5), InvalidArgument);
}

TEST(Trust, LearningRateIsConfigurableAndValidated) {
  // The rate comes from FusionConfig (the experiment wires it through); it
  // must lie in (0, 1].
  FusionConfig fusion;
  TrustManager fast(2, 1.0, 1.0);
  fast.observe(0, false);
  EXPECT_DOUBLE_EQ(fast.trust(0), 0.0);  // rate 1.0 tracks the last outcome
  fast.observe(0, true);
  EXPECT_DOUBLE_EQ(fast.trust(0), 1.0);

  TrustManager slow(2, 1.0, 0.01);
  for (int i = 0; i < 10; ++i) slow.observe(0, false);
  EXPECT_GT(slow.trust(0), 0.8);  // a small rate forgives isolated misses
  EXPECT_DOUBLE_EQ(fast.learning_rate(), 1.0);
  EXPECT_DOUBLE_EQ(TrustManager(1).learning_rate(),
                   fusion.trust_learning_rate);  // default matches the config

  EXPECT_THROW(TrustManager(2, 1.0, 0.0), InvalidArgument);
  EXPECT_THROW(TrustManager(2, 1.0, -0.1), InvalidArgument);
  EXPECT_THROW(TrustManager(2, 1.0, 1.5), InvalidArgument);
}

TEST(Trust, ScoresStayClampedToUnitInterval) {
  // Even at the extreme rate, long streaks can never push trust outside
  // [0, 1] through accumulated floating-point drift.
  TrustManager trust(1, 0.5, 0.97);
  for (int i = 0; i < 1000; ++i) trust.observe(0, true);
  EXPECT_LE(trust.trust(0), 1.0);
  EXPECT_GT(trust.trust(0), 0.999);
  for (int i = 0; i < 1000; ++i) trust.observe(0, false);
  EXPECT_GE(trust.trust(0), 0.0);
  EXPECT_LT(trust.trust(0), 0.001);
}

TEST(Trust, LowTrustPeerOnlyClustersAreDropped) {
  CameraConfig cfg;
  cfg.position = {0.0, 0.0};
  cfg.orientation_rad = 0.0;
  cfg.range_m = 50.0;
  Camera cam(cfg, 0);
  Rng rng(9);
  FusionConfig fusion;
  TrustManager trust(2);
  for (int i = 0; i < 60; ++i) trust.observe(1, false);  // camera 1 discredited
  Detection fake{{20.0, 0.0}, 1, 1.0, true, 0};
  const auto fused = fuse_detections(cam, {}, {fake}, fusion, &trust, rng);
  EXPECT_TRUE(fused.empty());
}

// --------------------------------------------- end-to-end experiments ----

CollabExperimentConfig pets_like_config() {
  CollabExperimentConfig cfg;
  cfg.world.num_people = 10;
  cfg.cameras = ring_of_cameras(cfg.world, 8);
  cfg.num_frames = 120;
  cfg.seed = 99;
  return cfg;
}

TEST(Experiment, CollaborationImprovesAccuracyAndLatency) {
  const CollabExperimentConfig cfg = pets_like_config();
  const CollabMetrics individual = run_individual(cfg);
  const CollabMetrics collaborative = run_collaborative(cfg);

  // The Table IV shape: higher counting accuracy, much lower latency.
  EXPECT_GT(collaborative.detection_accuracy, individual.detection_accuracy + 0.02);
  EXPECT_LT(collaborative.mean_latency_ms, individual.mean_latency_ms / 5.0);
  EXPECT_GT(collaborative.recall, individual.recall);
}

TEST(Experiment, ResultsAreDeterministicPerSeed) {
  const CollabExperimentConfig cfg = pets_like_config();
  const CollabMetrics a = run_collaborative(cfg);
  const CollabMetrics b = run_collaborative(cfg);
  EXPECT_DOUBLE_EQ(a.detection_accuracy, b.detection_accuracy);
}

TEST(Experiment, RogueCameraHurtsAndTrustRecovers) {
  CollabExperimentConfig cfg = pets_like_config();
  const double clean = run_collaborative(cfg).detection_accuracy;

  cfg.rogue = RogueConfig{0, 4.0};
  cfg.trust_enabled = false;
  const double attacked = run_collaborative(cfg).detection_accuracy;
  EXPECT_LT(attacked, clean - 0.03) << "injected boxes must hurt counting accuracy";

  cfg.trust_enabled = true;
  const double defended = run_collaborative(cfg).detection_accuracy;
  EXPECT_GT(defended, attacked + 0.02) << "trust filtering must recover accuracy";
}

TEST(Experiment, BrokeringDiscoversOverlappingPairs) {
  CollabExperimentConfig cfg = pets_like_config();
  cfg.num_frames = 200;
  const auto corr = count_correlation_matrix(cfg);
  ASSERT_EQ(corr.size(), 8u);

  // Ground truth from FoV geometry.
  Rng rng(10);
  std::vector<Camera> cameras;
  for (std::size_t i = 0; i < cfg.cameras.size(); ++i)
    cameras.emplace_back(cfg.cameras[i], i);
  // In the ring rig every camera faces the center, so opposite cameras
  // share most of their FoV; adjacent ones share less. Correlation of
  // detection counts must be clearly positive for high-overlap pairs.
  double high_overlap_corr = 0.0;
  std::size_t high_pairs = 0;
  double low_overlap_corr = 0.0;
  std::size_t low_pairs = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = i + 1; j < 8; ++j) {
      const double overlap = fov_overlap(cameras[i], cameras[j], rng, 1000);
      if (overlap > 0.5) {
        high_overlap_corr += corr[i][j];
        ++high_pairs;
      } else if (overlap < 0.2) {
        low_overlap_corr += corr[i][j];
        ++low_pairs;
      }
    }
  }
  ASSERT_GT(high_pairs, 0u);
  if (low_pairs > 0) {
    EXPECT_GT(high_overlap_corr / static_cast<double>(high_pairs),
              low_overlap_corr / static_cast<double>(low_pairs));
  }
  const auto pairs = discover_collaborators(corr, 0.3);
  EXPECT_FALSE(pairs.empty());
}

}  // namespace
}  // namespace eugene::collab
