// Gaussian-process, piecewise-linear approximation, and confidence-curve
// model tests.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "gp/confidence_curve.hpp"
#include "gp/gaussian_process.hpp"
#include "gp/piecewise_linear.hpp"

namespace eugene::gp {
namespace {

TEST(GaussianProcess, InterpolatesSmoothFunction) {
  std::vector<double> x, y;
  for (int i = 0; i <= 20; ++i) {
    const double xi = static_cast<double>(i) / 20.0;
    x.push_back(xi);
    y.push_back(std::sin(3.0 * xi));
  }
  GaussianProcess1D gp;
  gp.fit(x, y);
  for (double q : {0.13, 0.42, 0.77}) {
    EXPECT_NEAR(gp.predict(q).mean, std::sin(3.0 * q), 0.08) << "at " << q;
  }
}

TEST(GaussianProcess, UncertaintyGrowsAwayFromData) {
  std::vector<double> x = {0.4, 0.45, 0.5, 0.55, 0.6};
  std::vector<double> y = {0.4, 0.45, 0.5, 0.55, 0.6};
  GaussianProcess1D gp;
  GpConfig cfg;
  cfg.length_scale_grid = {0.1};
  gp.fit(x, y, cfg);
  EXPECT_LT(gp.predict(0.5).stddev, gp.predict(0.0).stddev);
  EXPECT_LT(gp.predict(0.5).stddev, gp.predict(1.0).stddev);
}

TEST(GaussianProcess, SelectsLengthScaleByMarginalLikelihood) {
  // Rapidly varying data should prefer a short length scale.
  Rng rng(1);
  std::vector<double> x, y;
  for (int i = 0; i <= 60; ++i) {
    const double xi = static_cast<double>(i) / 60.0;
    x.push_back(xi);
    y.push_back(std::sin(25.0 * xi));
  }
  GaussianProcess1D gp;
  gp.fit(x, y);
  EXPECT_LE(gp.length_scale(), 0.1);
}

TEST(GaussianProcess, SubsamplesLargeTrainingSets) {
  Rng rng(2);
  std::vector<double> x, y;
  for (int i = 0; i < 1500; ++i) {
    const double xi = rng.uniform();
    x.push_back(xi);
    y.push_back(xi * xi + rng.normal(0.0, 0.02));
  }
  GaussianProcess1D gp;
  GpConfig cfg;
  cfg.max_train_points = 200;
  gp.fit(x, y, cfg);
  EXPECT_EQ(gp.train_size(), 200u);
  EXPECT_NEAR(gp.predict(0.5).mean, 0.25, 0.05);
}

TEST(GaussianProcess, RequiresFitBeforePredict) {
  GaussianProcess1D gp;
  EXPECT_THROW(gp.predict(0.5), InvalidArgument);
}

TEST(PiecewiseLinear, ExactOnLinearFunctions) {
  const auto f = PiecewiseLinear::from_function([](double x) { return 2.0 * x + 1.0; }, 4);
  for (double q : {0.0, 0.3, 0.5, 0.99, 1.0}) EXPECT_NEAR(f(q), 2.0 * q + 1.0, 1e-12);
}

TEST(PiecewiseLinear, ClampsOutsideDomain) {
  const auto f = PiecewiseLinear::from_function([](double x) { return x; }, 2, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(f(-5.0), 0.0);
  EXPECT_DOUBLE_EQ(f(7.0), 1.0);
}

TEST(PiecewiseLinear, ApproximatesSmoothCurvesOnAGrid) {
  const auto f =
      PiecewiseLinear::from_function([](double x) { return std::sin(3.0 * x); }, 10);
  double max_err = 0.0;
  for (int i = 0; i <= 100; ++i) {
    const double x = static_cast<double>(i) / 100.0;
    max_err = std::max(max_err, std::abs(f(x) - std::sin(3.0 * x)));
  }
  EXPECT_LT(max_err, 0.02);
  EXPECT_EQ(f.segments(), 10u);
}

TEST(PiecewiseLinear, RejectsDegenerateConstruction) {
  EXPECT_THROW(PiecewiseLinear({1.0}, 0.0, 1.0), InvalidArgument);
  EXPECT_THROW(PiecewiseLinear({1.0, 2.0}, 1.0, 1.0), InvalidArgument);
}

/// Builds a synthetic evaluation table where stage confidences follow a
/// known monotone relation: c₂ = g(c₁) + noise, c₃ = h(c₂) + noise.
calib::StagedEvaluation synthetic_eval(std::size_t n, Rng& rng) {
  calib::StagedEvaluation eval;
  eval.records.resize(3);
  for (std::size_t i = 0; i < n; ++i) {
    const double c1 = rng.uniform(0.1, 0.95);
    const double c2 =
        std::min(1.0, 0.3 + 0.7 * c1 + rng.normal(0.0, 0.03));
    const double c3 = std::min(1.0, 0.5 + 0.5 * c2 + rng.normal(0.0, 0.02));
    for (std::size_t s = 0; s < 3; ++s) {
      calib::StageRecord r;
      r.predicted = 0;
      r.truth = 0;
      r.confidence =
          static_cast<float>(std::max(0.0, s == 0 ? c1 : (s == 1 ? c2 : c3)));
      eval.records[s].push_back(r);
    }
  }
  return eval;
}

TEST(ConfidenceCurve, LearnsMonotoneStageRelations) {
  Rng rng(3);
  const auto train = synthetic_eval(400, rng);
  ConfidenceCurveModel curves;
  curves.fit(train);
  ASSERT_TRUE(curves.fitted());
  EXPECT_EQ(curves.num_stages(), 3u);
  // Known relation: c₂ ≈ 0.3 + 0.7·c₁.
  EXPECT_NEAR(curves.predict(0, 1, 0.5), 0.65, 0.05);
  EXPECT_NEAR(curves.predict(1, 2, 0.8), 0.9, 0.05);
}

TEST(ConfidenceCurve, PriorsMatchTrainingMeans) {
  Rng rng(4);
  const auto train = synthetic_eval(300, rng);
  ConfidenceCurveModel curves;
  curves.fit(train);
  for (std::size_t s = 0; s < 3; ++s) {
    const auto conf = train.confidence(s);
    double mean = 0.0;
    for (float c : conf) mean += c;
    mean /= static_cast<double>(conf.size());
    EXPECT_NEAR(curves.prior_confidence(s), mean, 1e-9);
  }
}

TEST(ConfidenceCurve, PiecewiseApproximationTracksExactGp) {
  Rng rng(5);
  const auto train = synthetic_eval(300, rng);
  ConfidenceCurveModel curves;
  curves.fit(train, {}, 10);
  for (double c = 0.1; c < 1.0; c += 0.1) {
    const double exact = curves.predict_gp(0, 2, c).mean;
    const double approx = curves.predict(0, 2, c);
    EXPECT_NEAR(approx, std::clamp(exact, 0.0, 1.0), 0.02) << "at c=" << c;
  }
}

TEST(ConfidenceCurve, EvaluationQualityImprovesWithCloserStages) {
  // Mirrors Table III: GP2→3 (one hop, conditioned late) beats GP1→3.
  Rng rng(6);
  const auto train = synthetic_eval(400, rng);
  Rng rng2(7);
  const auto test = synthetic_eval(300, rng2);
  ConfidenceCurveModel curves;
  curves.fit(train);
  const auto q_13 = curves.evaluate(test, 0, 2);
  const auto q_23 = curves.evaluate(test, 1, 2);
  EXPECT_LT(q_23.mae, q_13.mae + 0.02);
  EXPECT_GT(q_23.r_squared, 0.5);
}

TEST(ConfidenceCurve, RejectsInvalidStagePairs) {
  Rng rng(8);
  const auto train = synthetic_eval(100, rng);
  ConfidenceCurveModel curves;
  curves.fit(train);
  EXPECT_THROW(curves.predict(1, 1, 0.5), InvalidArgument);
  EXPECT_THROW(curves.predict(2, 1, 0.5), InvalidArgument);
  EXPECT_THROW(curves.predict(0, 3, 0.5), InvalidArgument);
}

}  // namespace
}  // namespace eugene::gp
