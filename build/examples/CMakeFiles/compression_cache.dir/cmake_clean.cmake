file(REMOVE_RECURSE
  "CMakeFiles/compression_cache.dir/compression_cache.cpp.o"
  "CMakeFiles/compression_cache.dir/compression_cache.cpp.o.d"
  "compression_cache"
  "compression_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compression_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
