# Empty dependencies file for compression_cache.
# This may be replaced when dependencies are built.
