# Empty dependencies file for partition_planner.
# This may be replaced when dependencies are built.
