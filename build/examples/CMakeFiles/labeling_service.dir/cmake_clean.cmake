file(REMOVE_RECURSE
  "CMakeFiles/labeling_service.dir/labeling_service.cpp.o"
  "CMakeFiles/labeling_service.dir/labeling_service.cpp.o.d"
  "labeling_service"
  "labeling_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/labeling_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
