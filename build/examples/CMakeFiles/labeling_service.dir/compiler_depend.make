# Empty compiler generated dependencies file for labeling_service.
# This may be replaced when dependencies are built.
