file(REMOVE_RECURSE
  "CMakeFiles/collaborative_campus.dir/collaborative_campus.cpp.o"
  "CMakeFiles/collaborative_campus.dir/collaborative_campus.cpp.o.d"
  "collaborative_campus"
  "collaborative_campus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collaborative_campus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
