# Empty dependencies file for collaborative_campus.
# This may be replaced when dependencies are built.
