# Empty compiler generated dependencies file for eugene_serving.
# This may be replaced when dependencies are built.
