file(REMOVE_RECURSE
  "CMakeFiles/eugene_serving.dir/registry.cpp.o"
  "CMakeFiles/eugene_serving.dir/registry.cpp.o.d"
  "CMakeFiles/eugene_serving.dir/server.cpp.o"
  "CMakeFiles/eugene_serving.dir/server.cpp.o.d"
  "CMakeFiles/eugene_serving.dir/usage.cpp.o"
  "CMakeFiles/eugene_serving.dir/usage.cpp.o.d"
  "libeugene_serving.a"
  "libeugene_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eugene_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
