file(REMOVE_RECURSE
  "libeugene_serving.a"
)
