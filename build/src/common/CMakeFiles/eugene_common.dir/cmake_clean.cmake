file(REMOVE_RECURSE
  "CMakeFiles/eugene_common.dir/fifo_channel.cpp.o"
  "CMakeFiles/eugene_common.dir/fifo_channel.cpp.o.d"
  "CMakeFiles/eugene_common.dir/logging.cpp.o"
  "CMakeFiles/eugene_common.dir/logging.cpp.o.d"
  "CMakeFiles/eugene_common.dir/thread_pool.cpp.o"
  "CMakeFiles/eugene_common.dir/thread_pool.cpp.o.d"
  "libeugene_common.a"
  "libeugene_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eugene_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
