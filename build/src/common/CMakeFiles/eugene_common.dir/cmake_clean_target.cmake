file(REMOVE_RECURSE
  "libeugene_common.a"
)
