# Empty compiler generated dependencies file for eugene_common.
# This may be replaced when dependencies are built.
