file(REMOVE_RECURSE
  "libeugene_calib.a"
)
