file(REMOVE_RECURSE
  "CMakeFiles/eugene_calib.dir/calibrators.cpp.o"
  "CMakeFiles/eugene_calib.dir/calibrators.cpp.o.d"
  "CMakeFiles/eugene_calib.dir/ece.cpp.o"
  "CMakeFiles/eugene_calib.dir/ece.cpp.o.d"
  "CMakeFiles/eugene_calib.dir/evaluation.cpp.o"
  "CMakeFiles/eugene_calib.dir/evaluation.cpp.o.d"
  "libeugene_calib.a"
  "libeugene_calib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eugene_calib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
