# Empty dependencies file for eugene_calib.
# This may be replaced when dependencies are built.
