# Empty dependencies file for eugene_data.
# This may be replaced when dependencies are built.
