file(REMOVE_RECURSE
  "CMakeFiles/eugene_data.dir/synthetic_images.cpp.o"
  "CMakeFiles/eugene_data.dir/synthetic_images.cpp.o.d"
  "CMakeFiles/eugene_data.dir/timeseries.cpp.o"
  "CMakeFiles/eugene_data.dir/timeseries.cpp.o.d"
  "libeugene_data.a"
  "libeugene_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eugene_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
