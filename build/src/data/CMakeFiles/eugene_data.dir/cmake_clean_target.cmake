file(REMOVE_RECURSE
  "libeugene_data.a"
)
