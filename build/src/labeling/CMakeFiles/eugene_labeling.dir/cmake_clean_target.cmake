file(REMOVE_RECURSE
  "libeugene_labeling.a"
)
