# Empty compiler generated dependencies file for eugene_labeling.
# This may be replaced when dependencies are built.
