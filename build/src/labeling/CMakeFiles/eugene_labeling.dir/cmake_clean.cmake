file(REMOVE_RECURSE
  "CMakeFiles/eugene_labeling.dir/pool_guard.cpp.o"
  "CMakeFiles/eugene_labeling.dir/pool_guard.cpp.o.d"
  "CMakeFiles/eugene_labeling.dir/self_training.cpp.o"
  "CMakeFiles/eugene_labeling.dir/self_training.cpp.o.d"
  "libeugene_labeling.a"
  "libeugene_labeling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eugene_labeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
