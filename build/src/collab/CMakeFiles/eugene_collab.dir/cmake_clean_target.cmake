file(REMOVE_RECURSE
  "libeugene_collab.a"
)
