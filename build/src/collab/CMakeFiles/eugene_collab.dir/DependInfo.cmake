
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/collab/camera.cpp" "src/collab/CMakeFiles/eugene_collab.dir/camera.cpp.o" "gcc" "src/collab/CMakeFiles/eugene_collab.dir/camera.cpp.o.d"
  "/root/repo/src/collab/experiment.cpp" "src/collab/CMakeFiles/eugene_collab.dir/experiment.cpp.o" "gcc" "src/collab/CMakeFiles/eugene_collab.dir/experiment.cpp.o.d"
  "/root/repo/src/collab/fusion.cpp" "src/collab/CMakeFiles/eugene_collab.dir/fusion.cpp.o" "gcc" "src/collab/CMakeFiles/eugene_collab.dir/fusion.cpp.o.d"
  "/root/repo/src/collab/world.cpp" "src/collab/CMakeFiles/eugene_collab.dir/world.cpp.o" "gcc" "src/collab/CMakeFiles/eugene_collab.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/eugene_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
