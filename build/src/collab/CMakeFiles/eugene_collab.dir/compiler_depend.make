# Empty compiler generated dependencies file for eugene_collab.
# This may be replaced when dependencies are built.
