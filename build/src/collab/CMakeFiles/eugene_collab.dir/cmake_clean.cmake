file(REMOVE_RECURSE
  "CMakeFiles/eugene_collab.dir/camera.cpp.o"
  "CMakeFiles/eugene_collab.dir/camera.cpp.o.d"
  "CMakeFiles/eugene_collab.dir/experiment.cpp.o"
  "CMakeFiles/eugene_collab.dir/experiment.cpp.o.d"
  "CMakeFiles/eugene_collab.dir/fusion.cpp.o"
  "CMakeFiles/eugene_collab.dir/fusion.cpp.o.d"
  "CMakeFiles/eugene_collab.dir/world.cpp.o"
  "CMakeFiles/eugene_collab.dir/world.cpp.o.d"
  "libeugene_collab.a"
  "libeugene_collab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eugene_collab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
