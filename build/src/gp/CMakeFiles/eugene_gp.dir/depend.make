# Empty dependencies file for eugene_gp.
# This may be replaced when dependencies are built.
