file(REMOVE_RECURSE
  "libeugene_gp.a"
)
