file(REMOVE_RECURSE
  "CMakeFiles/eugene_gp.dir/confidence_curve.cpp.o"
  "CMakeFiles/eugene_gp.dir/confidence_curve.cpp.o.d"
  "CMakeFiles/eugene_gp.dir/gaussian_process.cpp.o"
  "CMakeFiles/eugene_gp.dir/gaussian_process.cpp.o.d"
  "CMakeFiles/eugene_gp.dir/piecewise_linear.cpp.o"
  "CMakeFiles/eugene_gp.dir/piecewise_linear.cpp.o.d"
  "libeugene_gp.a"
  "libeugene_gp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eugene_gp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
