file(REMOVE_RECURSE
  "CMakeFiles/eugene_core.dir/eugene_service.cpp.o"
  "CMakeFiles/eugene_core.dir/eugene_service.cpp.o.d"
  "libeugene_core.a"
  "libeugene_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eugene_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
