# Empty compiler generated dependencies file for eugene_core.
# This may be replaced when dependencies are built.
