file(REMOVE_RECURSE
  "libeugene_core.a"
)
