# Empty compiler generated dependencies file for eugene_reduce.
# This may be replaced when dependencies are built.
