
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reduce/cache.cpp" "src/reduce/CMakeFiles/eugene_reduce.dir/cache.cpp.o" "gcc" "src/reduce/CMakeFiles/eugene_reduce.dir/cache.cpp.o.d"
  "/root/repo/src/reduce/pruning.cpp" "src/reduce/CMakeFiles/eugene_reduce.dir/pruning.cpp.o" "gcc" "src/reduce/CMakeFiles/eugene_reduce.dir/pruning.cpp.o.d"
  "/root/repo/src/reduce/simple_cnn.cpp" "src/reduce/CMakeFiles/eugene_reduce.dir/simple_cnn.cpp.o" "gcc" "src/reduce/CMakeFiles/eugene_reduce.dir/simple_cnn.cpp.o.d"
  "/root/repo/src/reduce/sparse.cpp" "src/reduce/CMakeFiles/eugene_reduce.dir/sparse.cpp.o" "gcc" "src/reduce/CMakeFiles/eugene_reduce.dir/sparse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/eugene_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/eugene_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/eugene_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/eugene_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
