file(REMOVE_RECURSE
  "CMakeFiles/eugene_reduce.dir/cache.cpp.o"
  "CMakeFiles/eugene_reduce.dir/cache.cpp.o.d"
  "CMakeFiles/eugene_reduce.dir/pruning.cpp.o"
  "CMakeFiles/eugene_reduce.dir/pruning.cpp.o.d"
  "CMakeFiles/eugene_reduce.dir/simple_cnn.cpp.o"
  "CMakeFiles/eugene_reduce.dir/simple_cnn.cpp.o.d"
  "CMakeFiles/eugene_reduce.dir/sparse.cpp.o"
  "CMakeFiles/eugene_reduce.dir/sparse.cpp.o.d"
  "libeugene_reduce.a"
  "libeugene_reduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eugene_reduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
