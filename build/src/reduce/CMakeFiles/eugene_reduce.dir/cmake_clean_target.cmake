file(REMOVE_RECURSE
  "libeugene_reduce.a"
)
