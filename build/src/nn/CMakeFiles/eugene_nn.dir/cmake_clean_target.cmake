file(REMOVE_RECURSE
  "libeugene_nn.a"
)
