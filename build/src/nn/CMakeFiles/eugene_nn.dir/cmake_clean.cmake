file(REMOVE_RECURSE
  "CMakeFiles/eugene_nn.dir/layers.cpp.o"
  "CMakeFiles/eugene_nn.dir/layers.cpp.o.d"
  "CMakeFiles/eugene_nn.dir/loss.cpp.o"
  "CMakeFiles/eugene_nn.dir/loss.cpp.o.d"
  "CMakeFiles/eugene_nn.dir/optimizer.cpp.o"
  "CMakeFiles/eugene_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/eugene_nn.dir/residual.cpp.o"
  "CMakeFiles/eugene_nn.dir/residual.cpp.o.d"
  "CMakeFiles/eugene_nn.dir/serialize.cpp.o"
  "CMakeFiles/eugene_nn.dir/serialize.cpp.o.d"
  "CMakeFiles/eugene_nn.dir/staged_model.cpp.o"
  "CMakeFiles/eugene_nn.dir/staged_model.cpp.o.d"
  "CMakeFiles/eugene_nn.dir/train.cpp.o"
  "CMakeFiles/eugene_nn.dir/train.cpp.o.d"
  "libeugene_nn.a"
  "libeugene_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eugene_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
