# Empty dependencies file for eugene_nn.
# This may be replaced when dependencies are built.
