
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/layers.cpp" "src/nn/CMakeFiles/eugene_nn.dir/layers.cpp.o" "gcc" "src/nn/CMakeFiles/eugene_nn.dir/layers.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/eugene_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/eugene_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/eugene_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/eugene_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/residual.cpp" "src/nn/CMakeFiles/eugene_nn.dir/residual.cpp.o" "gcc" "src/nn/CMakeFiles/eugene_nn.dir/residual.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/eugene_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/eugene_nn.dir/serialize.cpp.o.d"
  "/root/repo/src/nn/staged_model.cpp" "src/nn/CMakeFiles/eugene_nn.dir/staged_model.cpp.o" "gcc" "src/nn/CMakeFiles/eugene_nn.dir/staged_model.cpp.o.d"
  "/root/repo/src/nn/train.cpp" "src/nn/CMakeFiles/eugene_nn.dir/train.cpp.o" "gcc" "src/nn/CMakeFiles/eugene_nn.dir/train.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/eugene_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/eugene_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
