file(REMOVE_RECURSE
  "CMakeFiles/eugene_tensor.dir/linalg.cpp.o"
  "CMakeFiles/eugene_tensor.dir/linalg.cpp.o.d"
  "CMakeFiles/eugene_tensor.dir/ops.cpp.o"
  "CMakeFiles/eugene_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/eugene_tensor.dir/tensor.cpp.o"
  "CMakeFiles/eugene_tensor.dir/tensor.cpp.o.d"
  "libeugene_tensor.a"
  "libeugene_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eugene_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
