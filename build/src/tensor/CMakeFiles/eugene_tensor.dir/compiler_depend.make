# Empty compiler generated dependencies file for eugene_tensor.
# This may be replaced when dependencies are built.
