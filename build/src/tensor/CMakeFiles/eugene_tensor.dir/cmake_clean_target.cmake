file(REMOVE_RECURSE
  "libeugene_tensor.a"
)
