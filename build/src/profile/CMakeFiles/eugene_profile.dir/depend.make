# Empty dependencies file for eugene_profile.
# This may be replaced when dependencies are built.
