file(REMOVE_RECURSE
  "libeugene_profile.a"
)
