file(REMOVE_RECURSE
  "CMakeFiles/eugene_profile.dir/cost_model.cpp.o"
  "CMakeFiles/eugene_profile.dir/cost_model.cpp.o.d"
  "CMakeFiles/eugene_profile.dir/linear_region.cpp.o"
  "CMakeFiles/eugene_profile.dir/linear_region.cpp.o.d"
  "CMakeFiles/eugene_profile.dir/timing.cpp.o"
  "CMakeFiles/eugene_profile.dir/timing.cpp.o.d"
  "libeugene_profile.a"
  "libeugene_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eugene_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
