
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profile/cost_model.cpp" "src/profile/CMakeFiles/eugene_profile.dir/cost_model.cpp.o" "gcc" "src/profile/CMakeFiles/eugene_profile.dir/cost_model.cpp.o.d"
  "/root/repo/src/profile/linear_region.cpp" "src/profile/CMakeFiles/eugene_profile.dir/linear_region.cpp.o" "gcc" "src/profile/CMakeFiles/eugene_profile.dir/linear_region.cpp.o.d"
  "/root/repo/src/profile/timing.cpp" "src/profile/CMakeFiles/eugene_profile.dir/timing.cpp.o" "gcc" "src/profile/CMakeFiles/eugene_profile.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/eugene_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/eugene_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/eugene_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
