file(REMOVE_RECURSE
  "CMakeFiles/eugene_sched.dir/live.cpp.o"
  "CMakeFiles/eugene_sched.dir/live.cpp.o.d"
  "CMakeFiles/eugene_sched.dir/partition.cpp.o"
  "CMakeFiles/eugene_sched.dir/partition.cpp.o.d"
  "CMakeFiles/eugene_sched.dir/policy.cpp.o"
  "CMakeFiles/eugene_sched.dir/policy.cpp.o.d"
  "CMakeFiles/eugene_sched.dir/simulator.cpp.o"
  "CMakeFiles/eugene_sched.dir/simulator.cpp.o.d"
  "CMakeFiles/eugene_sched.dir/utility.cpp.o"
  "CMakeFiles/eugene_sched.dir/utility.cpp.o.d"
  "CMakeFiles/eugene_sched.dir/workload.cpp.o"
  "CMakeFiles/eugene_sched.dir/workload.cpp.o.d"
  "libeugene_sched.a"
  "libeugene_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eugene_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
