# Empty dependencies file for eugene_sched.
# This may be replaced when dependencies are built.
