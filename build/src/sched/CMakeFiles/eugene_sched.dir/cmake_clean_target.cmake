file(REMOVE_RECURSE
  "libeugene_sched.a"
)
