
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/test_integration.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/test_integration.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/eugene_core.dir/DependInfo.cmake"
  "/root/repo/build/src/serving/CMakeFiles/eugene_serving.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/eugene_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/gp/CMakeFiles/eugene_gp.dir/DependInfo.cmake"
  "/root/repo/build/src/calib/CMakeFiles/eugene_calib.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/eugene_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/reduce/CMakeFiles/eugene_reduce.dir/DependInfo.cmake"
  "/root/repo/build/src/labeling/CMakeFiles/eugene_labeling.dir/DependInfo.cmake"
  "/root/repo/build/src/collab/CMakeFiles/eugene_collab.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/eugene_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/eugene_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/eugene_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/eugene_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
