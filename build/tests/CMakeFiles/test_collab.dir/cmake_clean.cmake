file(REMOVE_RECURSE
  "CMakeFiles/test_collab.dir/test_collab.cpp.o"
  "CMakeFiles/test_collab.dir/test_collab.cpp.o.d"
  "test_collab"
  "test_collab.pdb"
  "test_collab[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_collab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
