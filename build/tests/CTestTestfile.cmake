# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_calib[1]_include.cmake")
include("/root/repo/build/tests/test_gp[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_profile[1]_include.cmake")
include("/root/repo/build/tests/test_reduce[1]_include.cmake")
include("/root/repo/build/tests/test_collab[1]_include.cmake")
include("/root/repo/build/tests/test_labeling[1]_include.cmake")
include("/root/repo/build/tests/test_serving[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
