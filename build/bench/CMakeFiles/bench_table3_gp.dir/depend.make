# Empty dependencies file for bench_table3_gp.
# This may be replaced when dependencies are built.
