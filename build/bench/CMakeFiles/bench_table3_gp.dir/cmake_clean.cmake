file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_gp.dir/bench_table3_gp.cpp.o"
  "CMakeFiles/bench_table3_gp.dir/bench_table3_gp.cpp.o.d"
  "bench_table3_gp"
  "bench_table3_gp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_gp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
