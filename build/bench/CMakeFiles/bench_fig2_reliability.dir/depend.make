# Empty dependencies file for bench_fig2_reliability.
# This may be replaced when dependencies are built.
