file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_collab.dir/bench_table4_collab.cpp.o"
  "CMakeFiles/bench_table4_collab.dir/bench_table4_collab.cpp.o.d"
  "bench_table4_collab"
  "bench_table4_collab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_collab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
