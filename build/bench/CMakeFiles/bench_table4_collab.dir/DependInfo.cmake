
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table4_collab.cpp" "bench/CMakeFiles/bench_table4_collab.dir/bench_table4_collab.cpp.o" "gcc" "bench/CMakeFiles/bench_table4_collab.dir/bench_table4_collab.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/collab/CMakeFiles/eugene_collab.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/eugene_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
