# Empty dependencies file for bench_table4_collab.
# This may be replaced when dependencies are built.
