# Empty dependencies file for bench_table2_ece.
# This may be replaced when dependencies are built.
