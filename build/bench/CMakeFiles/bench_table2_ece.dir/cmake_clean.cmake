file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_ece.dir/bench_table2_ece.cpp.o"
  "CMakeFiles/bench_table2_ece.dir/bench_table2_ece.cpp.o.d"
  "bench_table2_ece"
  "bench_table2_ece.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_ece.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
