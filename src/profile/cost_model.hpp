// Analytic convolution cost model reproducing the Table I phenomenon:
// execution time is NOT proportional to FLOPs.
//
// Mechanism (observed on mobile conv implementations and on our own im2col
// kernels): time splits into a memory-bound patch-gathering term that scales
// with C_in·H_out·W_out, and a compute term whose efficiency depends on the
// GEMM's M dimension (= output channels) — few output channels leave SIMD /
// cache tiles underfilled:
//
//   t(g) = α · C_in · H_out · W_out  +  FLOPs(g) / (P · eff(C_out)),
//   eff(c) = c / (c + c₀).
//
// The three parameters (α, P, c₀) are fitted to measurements; a preset
// fitted to the paper's published Nexus-5 numbers reproduces Table I's
// orderings (equal FLOPs ⇒ 2.6× time gap; more FLOPs ⇒ less time).
#pragma once

#include <vector>

#include "tensor/ops.hpp"

namespace eugene::profile {

/// One (geometry, measured ms) observation for fitting.
struct ConvMeasurement {
  tensor::Conv2dGeometry geometry;
  double time_ms = 0.0;
};

/// The α/P/c₀ model described above.
class MobileConvCostModel {
 public:
  MobileConvCostModel() = default;
  MobileConvCostModel(double alpha_per_element, double peak_flops_per_ms,
                      double efficiency_knee);

  /// Predicted execution time in milliseconds.
  double predict_ms(const tensor::Conv2dGeometry& geometry) const;

  /// Fits the model to measurements: grid search over the efficiency knee
  /// c₀, ordinary least squares for α and 1/P at each candidate.
  static MobileConvCostModel fit(const std::vector<ConvMeasurement>& measurements);

  /// Parameters fitted offline to the paper's Table I Nexus-5 timings.
  static MobileConvCostModel nexus5_reference();

  double alpha_per_element() const { return alpha_; }
  double peak_flops_per_ms() const { return peak_; }
  double efficiency_knee() const { return knee_; }

  /// Mean relative prediction error over a measurement set.
  double mean_relative_error(const std::vector<ConvMeasurement>& measurements) const;

 private:
  double alpha_ = 1e-4;   ///< ms per gathered input element
  double peak_ = 1e7;     ///< FLOPs per ms at eff = 1
  double knee_ = 8.0;     ///< c₀: output-channel count at 50% efficiency
};

}  // namespace eugene::profile
