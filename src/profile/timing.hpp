// Execution timing harness (paper §II-C "Execution Profiling").
//
// Measures real wall-clock forward times of Eugene's kernels and layers so
// the profiler's predictive models can be fitted to *this* machine, the way
// FastDeepIoT profiled the Nexus 5.
#pragma once

#include "nn/layer.hpp"
#include "tensor/ops.hpp"

namespace eugene::profile {

/// Timing controls. Median over `repeats` runs after `warmup` runs.
struct TimingConfig {
  std::size_t warmup = 1;
  std::size_t repeats = 5;
  std::uint64_t seed = 21;
};

/// Median forward time of a conv2d with the given geometry on random data.
double measure_conv_ms(const tensor::Conv2dGeometry& geometry,
                       const TimingConfig& config = {});

/// Median forward time of an arbitrary layer on a random input of the given
/// shape.
double measure_layer_ms(nn::Layer& layer, const tensor::Shape& input_shape,
                        const TimingConfig& config = {});

}  // namespace eugene::profile
