#include "profile/cost_model.hpp"

#include <cmath>

#include "common/check.hpp"
#include "tensor/linalg.hpp"

namespace eugene::profile {

MobileConvCostModel::MobileConvCostModel(double alpha_per_element,
                                         double peak_flops_per_ms,
                                         double efficiency_knee)
    : alpha_(alpha_per_element), peak_(peak_flops_per_ms), knee_(efficiency_knee) {
  EUGENE_REQUIRE(alpha_ >= 0.0 && peak_ > 0.0 && knee_ >= 0.0,
                 "MobileConvCostModel: invalid parameters");
}

double MobileConvCostModel::predict_ms(const tensor::Conv2dGeometry& g) const {
  const double gather = static_cast<double>(g.in_channels) *
                        static_cast<double>(g.out_height()) *
                        static_cast<double>(g.out_width());
  const double eff = static_cast<double>(g.out_channels) /
                     (static_cast<double>(g.out_channels) + knee_);
  return alpha_ * gather + g.flops() / (peak_ * eff);
}

MobileConvCostModel MobileConvCostModel::fit(
    const std::vector<ConvMeasurement>& measurements) {
  EUGENE_REQUIRE(measurements.size() >= 3,
                 "MobileConvCostModel::fit: need at least three measurements");
  double best_sse = std::numeric_limits<double>::infinity();
  MobileConvCostModel best;
  // With c₀ fixed, t = α·gather + (1/P)·flops/eff is linear in (α, 1/P).
  for (double knee = 0.0; knee <= 64.0; knee += 1.0) {
    tensor::Tensor x({measurements.size(), 2});
    std::vector<double> y(measurements.size());
    for (std::size_t i = 0; i < measurements.size(); ++i) {
      const auto& g = measurements[i].geometry;
      const double gather = static_cast<double>(g.in_channels) *
                            static_cast<double>(g.out_height()) *
                            static_cast<double>(g.out_width());
      const double eff = static_cast<double>(g.out_channels) /
                         (static_cast<double>(g.out_channels) + knee);
      // Scale features to O(1) so the float32 normal equations stay sane.
      x.at(i, 0) = static_cast<float>(gather * 1e-6);
      x.at(i, 1) = static_cast<float>(g.flops() / eff * 1e-9);
      y[i] = measurements[i].time_ms;
    }
    std::vector<double> beta;
    try {
      beta = tensor::least_squares(x, y, 1e-8);
    } catch (const Error&) {
      continue;
    }
    if (beta[0] < 0.0 || beta[1] <= 0.0) continue;  // unphysical fit
    const MobileConvCostModel candidate(beta[0] * 1e-6, 1e9 / beta[1], knee);
    double sse = 0.0;
    for (const auto& m : measurements) {
      const double e = candidate.predict_ms(m.geometry) - m.time_ms;
      sse += e * e;
    }
    if (sse < best_sse) {
      best_sse = sse;
      best = candidate;
    }
  }
  EUGENE_CHECK(std::isfinite(best_sse))
      << "MobileConvCostModel::fit: no physical fit found";
  return best;
}

MobileConvCostModel MobileConvCostModel::nexus5_reference() {
  // Fitted offline (same procedure as fit()) to the paper's Table I rows.
  // Reproduces the published orderings: CNN2 ≈ 2.6× CNN1 at equal FLOPs,
  // and CNN3 > CNN4 despite 23% fewer FLOPs.
  std::vector<ConvMeasurement> table1;
  const std::size_t configs[4][2] = {{8, 32}, {32, 8}, {66, 32}, {43, 64}};
  const double times[4] = {114.9, 300.2, 908.3, 751.7};
  for (int i = 0; i < 4; ++i) {
    tensor::Conv2dGeometry g;
    g.in_channels = configs[i][0];
    g.out_channels = configs[i][1];
    g.in_height = 224;
    g.in_width = 224;
    g.kernel = 3;
    g.stride = 1;
    g.padding = 1;
    table1.push_back({g, times[i]});
  }
  return fit(table1);
}

double MobileConvCostModel::mean_relative_error(
    const std::vector<ConvMeasurement>& measurements) const {
  EUGENE_REQUIRE(!measurements.empty(), "mean_relative_error: empty set");
  double total = 0.0;
  for (const auto& m : measurements) {
    EUGENE_REQUIRE(m.time_ms > 0.0, "mean_relative_error: non-positive measurement");
    total += std::abs(predict_ms(m.geometry) - m.time_ms) / m.time_ms;
  }
  return total / static_cast<double>(measurements.size());
}

}  // namespace eugene::profile
