#include "profile/timing.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/clock.hpp"
#include "common/rng.hpp"

namespace eugene::profile {

using tensor::Tensor;

namespace {

double median(std::vector<double> xs) {
  EUGENE_CHECK(!xs.empty()) << "median of empty vector";
  std::sort(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  return n % 2 == 1 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

}  // namespace

double measure_conv_ms(const tensor::Conv2dGeometry& geometry, const TimingConfig& config) {
  EUGENE_REQUIRE(config.repeats >= 1, "measure_conv_ms: need at least one repeat");
  Rng rng(config.seed);
  const Tensor input = Tensor::randn({geometry.in_channels, geometry.in_height,
                                      geometry.in_width}, rng);
  const Tensor weights = Tensor::randn(
      {geometry.out_channels, geometry.in_channels * geometry.kernel * geometry.kernel},
      rng, 0.1f);
  const Tensor bias = Tensor::randn({geometry.out_channels}, rng, 0.1f);

  volatile float sink = 0.0f;  // keep the optimizer from eliding the work
  for (std::size_t i = 0; i < config.warmup; ++i)
    sink = sink + tensor::conv2d(input, weights, bias, geometry).data()[0];

  std::vector<double> times;
  times.reserve(config.repeats);
  for (std::size_t i = 0; i < config.repeats; ++i) {
    Stopwatch watch;
    const Tensor out = tensor::conv2d(input, weights, bias, geometry);
    times.push_back(watch.elapsed_ms());
    sink = sink + out.data()[0];
  }
  (void)sink;
  return median(std::move(times));
}

double measure_layer_ms(nn::Layer& layer, const tensor::Shape& input_shape,
                        const TimingConfig& config) {
  EUGENE_REQUIRE(config.repeats >= 1, "measure_layer_ms: need at least one repeat");
  Rng rng(config.seed);
  const Tensor input = Tensor::randn(input_shape, rng);

  volatile float sink = 0.0f;
  for (std::size_t i = 0; i < config.warmup; ++i)
    sink = sink + layer.forward(input, /*training=*/false).data()[0];

  std::vector<double> times;
  times.reserve(config.repeats);
  for (std::size_t i = 0; i < config.repeats; ++i) {
    Stopwatch watch;
    const Tensor out = layer.forward(input, /*training=*/false);
    times.push_back(watch.elapsed_ms());
    sink = sink + out.data()[0];
  }
  (void)sink;
  return median(std::move(times));
}

}  // namespace eugene::profile
