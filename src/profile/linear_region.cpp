#include "profile/linear_region.hpp"

#include <algorithm>
#include <cmath>

#include "common/stats.hpp"
#include "tensor/linalg.hpp"

namespace eugene::profile {

using tensor::Tensor;

std::vector<double> PiecewiseLinearModel::fit_leaf(const std::vector<std::size_t>& rows,
                                                   const Tensor& features,
                                                   std::span<const double> targets) {
  const std::size_t p = features.dim(1);
  // Fall back to a constant model when the leaf is too small for a full fit.
  if (rows.size() < p + 1) {
    double m = 0.0;
    for (std::size_t r : rows) m += targets[r];
    std::vector<double> beta(p + 1, 0.0);
    beta[0] = rows.empty() ? 0.0 : m / static_cast<double>(rows.size());
    return beta;
  }
  Tensor x({rows.size(), p + 1});
  std::vector<double> y(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    x.at(i, 0) = 1.0f;  // intercept
    for (std::size_t j = 0; j < p; ++j) x.at(i, j + 1) = features.at(rows[i], j);
    y[i] = targets[rows[i]];
  }
  return tensor::least_squares(x, y, 1e-6);
}

double PiecewiseLinearModel::leaf_sse(const std::vector<double>& beta,
                                      const std::vector<std::size_t>& rows,
                                      const Tensor& features,
                                      std::span<const double> targets) {
  const std::size_t p = features.dim(1);
  double sse = 0.0;
  for (std::size_t r : rows) {
    double pred = beta[0];
    for (std::size_t j = 0; j < p; ++j) pred += beta[j + 1] * features.at(r, j);
    const double e = pred - targets[r];
    sse += e * e;
  }
  return sse;
}

std::unique_ptr<PiecewiseLinearModel::Node> PiecewiseLinearModel::build(
    const std::vector<std::size_t>& rows, const Tensor& features,
    std::span<const double> targets, const RegionModelConfig& config,
    std::size_t depth) const {
  auto node = std::make_unique<Node>();
  node->beta = fit_leaf(rows, features, targets);
  if (depth >= config.max_depth || rows.size() < 2 * config.min_samples_per_leaf)
    return node;

  const double parent_sse = leaf_sse(node->beta, rows, features, targets);
  const std::size_t p = features.dim(1);
  double best_sse = parent_sse;
  std::size_t best_feature = 0;
  double best_threshold = 0.0;
  std::vector<std::size_t> best_left, best_right;

  for (std::size_t f = 0; f < p; ++f) {
    std::vector<double> values;
    values.reserve(rows.size());
    for (std::size_t r : rows) values.push_back(features.at(r, f));
    std::sort(values.begin(), values.end());
    for (std::size_t c = 1; c <= config.split_candidates; ++c) {
      const std::size_t q = rows.size() * c / (config.split_candidates + 1);
      if (q == 0 || q >= rows.size()) continue;
      const double threshold = values[q];
      std::vector<std::size_t> left, right;
      for (std::size_t r : rows)
        (features.at(r, f) <= threshold ? left : right).push_back(r);
      if (left.size() < config.min_samples_per_leaf ||
          right.size() < config.min_samples_per_leaf)
        continue;
      const auto bl = fit_leaf(left, features, targets);
      const auto br = fit_leaf(right, features, targets);
      const double sse = leaf_sse(bl, left, features, targets) +
                         leaf_sse(br, right, features, targets);
      if (sse < best_sse) {
        best_sse = sse;
        best_feature = f;
        best_threshold = threshold;
        best_left = std::move(left);
        best_right = std::move(right);
      }
    }
  }

  // Require a meaningful improvement before splitting.
  if (best_sse < parent_sse * 0.98 && !best_left.empty() && !best_right.empty()) {
    node->split_feature = best_feature;
    node->threshold = best_threshold;
    node->left = build(best_left, features, targets, config, depth + 1);
    node->right = build(best_right, features, targets, config, depth + 1);
  }
  return node;
}

void PiecewiseLinearModel::fit(const Tensor& features, std::span<const double> targets,
                               const RegionModelConfig& config) {
  EUGENE_REQUIRE(features.rank() == 2, "PiecewiseLinearModel: features must be [n, p]");
  EUGENE_REQUIRE(features.dim(0) == targets.size(),
                 "PiecewiseLinearModel: feature/target count mismatch");
  EUGENE_REQUIRE(targets.size() >= 2, "PiecewiseLinearModel: need at least two samples");
  num_features_ = features.dim(1);

  // Standardize features to zero mean / unit scale before fitting.
  feature_mean_.assign(num_features_, 0.0);
  feature_scale_.assign(num_features_, 1.0);
  const std::size_t n = features.dim(0);
  for (std::size_t j = 0; j < num_features_; ++j) {
    double m = 0.0;
    for (std::size_t i = 0; i < n; ++i) m += features.at(i, j);
    m /= static_cast<double>(n);
    double var = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = features.at(i, j) - m;
      var += d * d;
    }
    feature_mean_[j] = m;
    const double sd = std::sqrt(var / static_cast<double>(n));
    feature_scale_[j] = sd > 1e-12 ? sd : 1.0;
  }
  Tensor standardized({n, num_features_});
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < num_features_; ++j)
      standardized.at(i, j) = static_cast<float>(
          (features.at(i, j) - feature_mean_[j]) / feature_scale_[j]);

  std::vector<std::size_t> rows(targets.size());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  root_ = build(rows, standardized, targets, config, 0);
}

double PiecewiseLinearModel::predict(std::span<const double> feature_row) const {
  EUGENE_REQUIRE(fitted(), "PiecewiseLinearModel::predict before fit");
  EUGENE_REQUIRE(feature_row.size() == num_features_,
                 "PiecewiseLinearModel::predict: feature size mismatch");
  std::vector<double> standardized(num_features_);
  for (std::size_t j = 0; j < num_features_; ++j)
    standardized[j] = (feature_row[j] - feature_mean_[j]) / feature_scale_[j];
  const Node* node = root_.get();
  while (!node->is_leaf()) {
    node = standardized[node->split_feature] <= node->threshold ? node->left.get()
                                                                : node->right.get();
  }
  double pred = node->beta[0];
  for (std::size_t j = 0; j < num_features_; ++j)
    pred += node->beta[j + 1] * standardized[j];
  return pred;
}

std::size_t PiecewiseLinearModel::num_regions() const {
  if (!root_) return 0;
  // Depth-first leaf count.
  std::size_t leaves = 0;
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    if (n->is_leaf()) {
      ++leaves;
    } else {
      stack.push_back(n->left.get());
      stack.push_back(n->right.get());
    }
  }
  return leaves;
}

double PiecewiseLinearModel::r_squared(const Tensor& features,
                                       std::span<const double> targets) const {
  EUGENE_REQUIRE(features.dim(0) == targets.size(),
                 "r_squared: feature/target count mismatch");
  std::vector<double> preds(targets.size());
  std::vector<double> row(num_features_);
  for (std::size_t i = 0; i < targets.size(); ++i) {
    for (std::size_t j = 0; j < num_features_; ++j) row[j] = features.at(i, j);
    preds[i] = predict(row);
  }
  return eugene::r_squared(targets, preds);
}

}  // namespace eugene::profile
