// Piecewise-linear execution-time regression (FastDeepIoT, paper §II-C):
// "an automated profiling system that breaks execution models into
// piece-wise linear regions, and uses regression over the relevant neural
// network parameters within each region."
//
// Implemented as a depth-limited regression tree whose leaves are ordinary
// least-squares linear models. Splits are chosen to minimize the summed
// squared error of the two child fits.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace eugene::profile {

/// Fitting knobs.
struct RegionModelConfig {
  std::size_t max_depth = 3;         ///< at most 2^depth linear regions
  std::size_t min_samples_per_leaf = 8;
  std::size_t split_candidates = 16;  ///< quantile thresholds tried per feature
};

/// Piecewise-linear regression over feature vectors.
class PiecewiseLinearModel {
 public:
  /// Fits to rows of `features` ([n, p]) against `targets` (n).
  void fit(const tensor::Tensor& features, std::span<const double> targets,
           const RegionModelConfig& config = {});

  /// Predicted target for one feature vector.
  double predict(std::span<const double> feature_row) const;

  bool fitted() const { return root_ != nullptr; }
  std::size_t num_regions() const;

  /// R² on a held-out set.
  double r_squared(const tensor::Tensor& features, std::span<const double> targets) const;

 private:
  struct Node {
    // Internal node:
    std::size_t split_feature = 0;
    double threshold = 0.0;
    std::unique_ptr<Node> left;   ///< feature <= threshold
    std::unique_ptr<Node> right;  ///< feature > threshold
    // Leaf:
    std::vector<double> beta;  ///< intercept followed by p coefficients

    bool is_leaf() const { return left == nullptr; }
  };

  std::unique_ptr<Node> build(const std::vector<std::size_t>& rows,
                              const tensor::Tensor& features,
                              std::span<const double> targets,
                              const RegionModelConfig& config, std::size_t depth) const;

  static std::vector<double> fit_leaf(const std::vector<std::size_t>& rows,
                                      const tensor::Tensor& features,
                                      std::span<const double> targets);
  static double leaf_sse(const std::vector<double>& beta,
                         const std::vector<std::size_t>& rows,
                         const tensor::Tensor& features, std::span<const double> targets);

  std::unique_ptr<Node> root_;
  std::size_t num_features_ = 0;
  // Per-feature standardization fitted on the training data; raw execution
  // features (e.g. FLOPs ~1e9 next to channel counts ~10) would otherwise
  // wreck the conditioning of the leaf least-squares problems.
  std::vector<double> feature_mean_;
  std::vector<double> feature_scale_;
};

}  // namespace eugene::profile
