// Tensor kernels: matmul family, im2col convolution, pooling.
//
// These are the compute primitives under eugene::nn. Shapes follow CHW for
// single images and [rows, cols] for matrices. The matmul family and im2col
// are thin wrappers over the tiled SIMD GEMM core in gemm.hpp (DESIGN.md
// §14); the `_into` variants write into caller-provided storage so arena-
// backed inference allocates nothing per call.
#pragma once

#include "tensor/gemm.hpp"
#include "tensor/tensor.hpp"

namespace eugene::tensor {

/// C = A(m×k) * B(k×n).
Tensor matmul(const Tensor& a, const Tensor& b);

/// C = Aᵀ(k×m becomes m×k) * B(k×n): matmul with A transposed, no copy.
Tensor matmul_transpose_a(const Tensor& a, const Tensor& b);

/// C = A(m×k) * Bᵀ(n×k becomes k×n): matmul with B transposed, no copy.
Tensor matmul_transpose_b(const Tensor& a, const Tensor& b);

/// matmul writing into `out` (must be pre-shaped [m, n]). `workspace` is
/// packing scratch of gemm_workspace_floats(m, n, k) floats, or null for
/// the internal thread-local buffer.
void matmul_into(const Tensor& a, const Tensor& b, Tensor& out,
                 float* workspace = nullptr);

/// matmul_transpose_a writing into `out` ([m, n], A stored k×m).
void matmul_transpose_a_into(const Tensor& a, const Tensor& b, Tensor& out,
                             float* workspace = nullptr);

/// matmul_transpose_b writing into `out` ([m, n], B stored n×k).
void matmul_transpose_b_into(const Tensor& a, const Tensor& b, Tensor& out,
                             float* workspace = nullptr);

/// Geometry of a 2-D convolution over a CHW image.
struct Conv2dGeometry {
  std::size_t in_channels = 0;
  std::size_t out_channels = 0;
  std::size_t in_height = 0;
  std::size_t in_width = 0;
  std::size_t kernel = 3;
  std::size_t stride = 1;
  std::size_t padding = 1;  ///< "same" padding for kernel 3, stride 1

  std::size_t out_height() const {
    EUGENE_REQUIRE(in_height + 2 * padding >= kernel, "conv: kernel exceeds padded input");
    return (in_height + 2 * padding - kernel) / stride + 1;
  }
  std::size_t out_width() const {
    EUGENE_REQUIRE(in_width + 2 * padding >= kernel, "conv: kernel exceeds padded input");
    return (in_width + 2 * padding - kernel) / stride + 1;
  }

  /// Multiply-accumulate count ×2 (the FLOPs convention used by Table I).
  double flops() const {
    return 2.0 * static_cast<double>(out_channels) * static_cast<double>(out_height()) *
           static_cast<double>(out_width()) * static_cast<double>(in_channels) *
           static_cast<double>(kernel) * static_cast<double>(kernel);
  }
};

/// Unrolls image patches into a [C·k·k, H_out·W_out] matrix.
Tensor im2col(const Tensor& image_chw, const Conv2dGeometry& g);

/// im2col writing into caller storage: `cols` must hold
/// C·k·k × H_out·W_out floats (row-major, row stride H_out·W_out).
void im2col_into(const Tensor& image_chw, const Conv2dGeometry& g,
                 float* cols);

/// Strided im2col core shared by the per-sample wrapper and batched stage
/// inference. Reads channel `c`'s plane at `img + c·chan_stride` (a plain
/// CHW image has chan_stride = H·W; a feature-major batch of B images has
/// chan_stride = B·H·W with `img` offset to sample b's plane). Writes patch
/// row `r` of this image's columns at `cols + r·cols_ld + col0`, so several
/// images can share one wide column matrix. Interior rows are bulk copies;
/// padding is zero-filled (no per-pixel bounds branch at stride 1).
void im2col_strided_into(const float* img, std::size_t chan_stride,
                         const Conv2dGeometry& g, float* cols,
                         std::size_t cols_ld, std::size_t col0);

/// Inverse of im2col: scatters column gradients back into CHW, accumulating
/// overlapping patches.
Tensor col2im(const Tensor& cols, const Conv2dGeometry& g);

/// conv2d forward for one CHW image using im2col + matmul.
/// `weights` is [C_out, C_in·k·k], `bias` is [C_out].
Tensor conv2d(const Tensor& image_chw, const Tensor& weights, const Tensor& bias,
              const Conv2dGeometry& g);

/// Direct (no-im2col) conv2d used as a correctness oracle and as the second
/// execution regime in the profiler's cost model.
Tensor conv2d_direct(const Tensor& image_chw, const Tensor& weights, const Tensor& bias,
                     const Conv2dGeometry& g);

/// 2×2 max pooling with stride 2 over CHW; odd trailing rows/cols dropped.
Tensor max_pool2(const Tensor& image_chw);

/// Global average pool: CHW → [C].
Tensor global_avg_pool(const Tensor& image_chw);

}  // namespace eugene::tensor
