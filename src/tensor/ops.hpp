// Tensor kernels: matmul family, im2col convolution, pooling.
//
// These are the compute primitives under eugene::nn. Shapes follow CHW for
// single images and [rows, cols] for matrices. All kernels are plain loops
// over contiguous memory — good enough for the paper-scale models and easy
// to profile (src/profile measures exactly these).
#pragma once

#include "tensor/tensor.hpp"

namespace eugene::tensor {

/// C = A(m×k) * B(k×n).
Tensor matmul(const Tensor& a, const Tensor& b);

/// C = Aᵀ(k×m becomes m×k) * B(k×n): matmul with A transposed, no copy.
Tensor matmul_transpose_a(const Tensor& a, const Tensor& b);

/// C = A(m×k) * Bᵀ(n×k becomes k×n): matmul with B transposed, no copy.
Tensor matmul_transpose_b(const Tensor& a, const Tensor& b);

/// Geometry of a 2-D convolution over a CHW image.
struct Conv2dGeometry {
  std::size_t in_channels = 0;
  std::size_t out_channels = 0;
  std::size_t in_height = 0;
  std::size_t in_width = 0;
  std::size_t kernel = 3;
  std::size_t stride = 1;
  std::size_t padding = 1;  ///< "same" padding for kernel 3, stride 1

  std::size_t out_height() const {
    EUGENE_REQUIRE(in_height + 2 * padding >= kernel, "conv: kernel exceeds padded input");
    return (in_height + 2 * padding - kernel) / stride + 1;
  }
  std::size_t out_width() const {
    EUGENE_REQUIRE(in_width + 2 * padding >= kernel, "conv: kernel exceeds padded input");
    return (in_width + 2 * padding - kernel) / stride + 1;
  }

  /// Multiply-accumulate count ×2 (the FLOPs convention used by Table I).
  double flops() const {
    return 2.0 * static_cast<double>(out_channels) * static_cast<double>(out_height()) *
           static_cast<double>(out_width()) * static_cast<double>(in_channels) *
           static_cast<double>(kernel) * static_cast<double>(kernel);
  }
};

/// Unrolls image patches into a [C·k·k, H_out·W_out] matrix.
Tensor im2col(const Tensor& image_chw, const Conv2dGeometry& g);

/// Inverse of im2col: scatters column gradients back into CHW, accumulating
/// overlapping patches.
Tensor col2im(const Tensor& cols, const Conv2dGeometry& g);

/// conv2d forward for one CHW image using im2col + matmul.
/// `weights` is [C_out, C_in·k·k], `bias` is [C_out].
Tensor conv2d(const Tensor& image_chw, const Tensor& weights, const Tensor& bias,
              const Conv2dGeometry& g);

/// Direct (no-im2col) conv2d used as a correctness oracle and as the second
/// execution regime in the profiler's cost model.
Tensor conv2d_direct(const Tensor& image_chw, const Tensor& weights, const Tensor& bias,
                     const Conv2dGeometry& g);

/// 2×2 max pooling with stride 2 over CHW; odd trailing rows/cols dropped.
Tensor max_pool2(const Tensor& image_chw);

/// Global average pool: CHW → [C].
Tensor global_avg_pool(const Tensor& image_chw);

}  // namespace eugene::tensor
