// Dense row-major float tensor. The single data container used by the neural
// network library, the Gaussian-process module, and the profiler.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace eugene::tensor {

/// Shape of a tensor: extent per dimension, row-major layout.
using Shape = std::vector<std::size_t>;

/// Number of elements implied by a shape (1 for rank-0).
std::size_t shape_numel(const Shape& shape);

/// Human-readable "[2, 3, 4]" form for error messages.
std::string shape_to_string(const Shape& shape);

/// A dense, owning, row-major float tensor.
///
/// Rank is dynamic (vector-of-extents) because the NN stack mixes rank-1
/// biases, rank-2 dense weights, and rank-4 conv weights. Element access is
/// bounds-checked through at(); hot loops use data() spans.
class Tensor {
 public:
  /// Empty rank-1 tensor of zero elements.
  Tensor() : shape_{0} {}

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor filled with `value`.
  Tensor(Shape shape, float value);

  /// Tensor adopting the given flat data; data.size() must match the shape.
  Tensor(Shape shape, std::vector<float> data);

  /// Factory: all zeros.
  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }

  /// Factory: all ones.
  static Tensor ones(Shape shape) { return Tensor(std::move(shape), 1.0f); }

  /// Factory: i.i.d. Gaussian entries.
  static Tensor randn(Shape shape, Rng& rng, float stddev = 1.0f);

  /// Factory: i.i.d. uniform entries in [lo, hi).
  static Tensor rand_uniform(Shape shape, Rng& rng, float lo = 0.0f, float hi = 1.0f);

  const Shape& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t numel() const { return data_.size(); }

  /// Extent of dimension `d` (bounds-checked).
  std::size_t dim(std::size_t d) const {
    EUGENE_REQUIRE(d < shape_.size(), "dim index out of range");
    return shape_[d];
  }

  std::span<float> data() { return data_; }
  std::span<const float> data() const { return data_; }

  float* raw() { return data_.data(); }
  const float* raw() const { return data_.data(); }

  /// Bounds-checked element access for rank 1..4.
  float& at(std::size_t i);
  float at(std::size_t i) const;
  float& at(std::size_t i, std::size_t j);
  float at(std::size_t i, std::size_t j) const;
  float& at(std::size_t i, std::size_t j, std::size_t k);
  float at(std::size_t i, std::size_t j, std::size_t k) const;
  float& at(std::size_t i, std::size_t j, std::size_t k, std::size_t l);
  float at(std::size_t i, std::size_t j, std::size_t k, std::size_t l) const;

  /// Returns a tensor with the same data and a new shape of equal numel.
  Tensor reshaped(Shape new_shape) const;

  /// Sets every element to `value`.
  void fill(float value);

  /// Elementwise in-place operations.
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(float scalar);

  /// Elementwise comparisons for tests.
  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

 private:
  std::size_t flat_index(std::span<const std::size_t> idx) const;

  Shape shape_;
  std::vector<float> data_;
};

}  // namespace eugene::tensor
