#include "tensor/linalg.hpp"

#include <cmath>

#include "common/check.hpp"

namespace eugene::tensor {

Tensor cholesky(const Tensor& a) {
  EUGENE_REQUIRE(a.rank() == 2 && a.dim(0) == a.dim(1),
                 "cholesky: expected a square matrix");
  const std::size_t n = a.dim(0);
  Tensor l({n, n});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a.at(i, j);
      for (std::size_t k = 0; k < j; ++k)
        sum -= static_cast<double>(l.at(i, k)) * static_cast<double>(l.at(j, k));
      if (i == j) {
        EUGENE_REQUIRE(sum > 0.0, "cholesky: matrix is not positive definite");
        l.at(i, j) = static_cast<float>(std::sqrt(sum));
      } else {
        l.at(i, j) = static_cast<float>(sum / l.at(j, j));
      }
    }
  }
  return l;
}

std::vector<double> solve_lower(const Tensor& l, const std::vector<double>& b) {
  const std::size_t n = l.dim(0);
  EUGENE_REQUIRE(b.size() == n, "solve_lower: rhs size mismatch");
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= static_cast<double>(l.at(i, k)) * x[k];
    // A zero pivot means `l` is not a Cholesky factor; dividing would silently
    // fill the solution with inf/NaN.
    EUGENE_DCHECK_NE(l.at(i, i), 0.0f) << "solve_lower: zero pivot at row " << i;
    x[i] = sum / l.at(i, i);
  }
  return x;
}

std::vector<double> solve_lower_transpose(const Tensor& l, const std::vector<double>& b) {
  const std::size_t n = l.dim(0);
  EUGENE_REQUIRE(b.size() == n, "solve_lower_transpose: rhs size mismatch");
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = b[ii];
    for (std::size_t k = ii + 1; k < n; ++k)
      sum -= static_cast<double>(l.at(k, ii)) * x[k];
    EUGENE_DCHECK_NE(l.at(ii, ii), 0.0f)
        << "solve_lower_transpose: zero pivot at row " << ii;
    x[ii] = sum / l.at(ii, ii);
  }
  return x;
}

std::vector<double> solve_spd(const Tensor& a, const std::vector<double>& b) {
  const Tensor l = cholesky(a);
  return solve_lower_transpose(l, solve_lower(l, b));
}

std::vector<double> least_squares(const Tensor& x, const std::vector<double>& y,
                                  double ridge) {
  EUGENE_REQUIRE(x.rank() == 2, "least_squares: X must be a matrix");
  const std::size_t n = x.dim(0), p = x.dim(1);
  EUGENE_REQUIRE(y.size() == n, "least_squares: y size mismatch");
  EUGENE_REQUIRE(n >= p, "least_squares: underdetermined system");
  // Form XᵀX (+ ridge·I) and Xᵀy in double precision. The accumulation
  // stays in doubles until the very end: the old code rounded the running
  // XᵀX sums to float on every `+=`, which — amplified by the conditioning
  // of nearly-collinear designs — visibly corrupted the solution
  // (Linalg.LeastSquaresConditioningOffsetData pins the regression).
  std::vector<double> xtx_acc(p * p, 0.0);
  std::vector<double> xty(p, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t a = 0; a < p; ++a) {
      const double xa = x.at(i, a);
      xty[a] += xa * y[i];
      for (std::size_t b = 0; b <= a; ++b)
        xtx_acc[a * p + b] += xa * static_cast<double>(x.at(i, b));
    }
  }
  // A near-collinear design can leave the float-rounded Gram matrix not
  // positive definite even though the double accumulation is exact; escalate
  // the ridge (scaled to the Gram trace) a few times before giving up.
  double trace = 0.0;
  for (std::size_t a = 0; a < p; ++a) trace += xtx_acc[a * p + a];
  double r = ridge;
  for (int attempt = 0;; ++attempt) {
    Tensor xtx({p, p});
    for (std::size_t a = 0; a < p; ++a) {
      xtx.at(a, a) = static_cast<float>(xtx_acc[a * p + a] + r);
      for (std::size_t b = 0; b < a; ++b) {
        const float v = static_cast<float>(xtx_acc[a * p + b]);
        xtx.at(a, b) = v;
        xtx.at(b, a) = v;
      }
    }
    try {
      return solve_spd(xtx, xty);
    } catch (const InvalidArgument&) {
      if (attempt >= 3) throw;
      r = std::max({r * 1e3, trace / static_cast<double>(p) * 1e-6, 1e-12});
    }
  }
}

}  // namespace eugene::tensor
