// Blocked GEMM driver: packing, cache blocking, edge tiles, ISA dispatch.
//
// Loop structure (BLIS-style, single-threaded):
//   for jc over n in NC columns            — B panel fits L3/L2
//     for pc over k in KC rows             — beta applies on the first block
//       pack B(pc:pc+kc, jc:jc+nc) into nr-wide zero-padded column panels
//       for ic over m in MC rows           — A panel fits L2/L1
//         pack A(ic:ic+mc, pc:pc+kc) into mr-tall zero-padded row panels
//         micro-kernel per (mr × nr) tile; partial tiles go through a local
//         buffer so the kernel itself never branches on edges
//
// Short-m problems (m <= kDirectMaxM, no transposes) skip packing entirely
// and run strided kernels over A/B in place — see gemm_direct below.
//
// The accumulation order over k for any C entry depends only on k and KC —
// not on m, n, the ISA tile shape, transposition, or the packed/direct path
// choice — so per-sample and batched inference produce bit-identical
// activations (the batched-forward equivalence tests rely on this).
#include "tensor/gemm.hpp"

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "tensor/gemm_kernel.hpp"

namespace eugene::tensor {

namespace {

using detail::KernelInfo;

// Cache blocking: KC·NR B-panel strips and MC·KC A panels sized for typical
// L1/L2 (float): KC=256 keeps an A panel at 96 KiB and a B strip at 16 KiB.
constexpr std::size_t kKc = 256;
constexpr std::size_t kMc = 96;
constexpr std::size_t kNc = 1024;

std::size_t round_up(std::size_t x, std::size_t unit) {
  return (x + unit - 1) / unit * unit;
}

/// Packs A(ic:ic+mc, pc:pc+kc) — logical indices, transposition resolved
/// here — into mr-tall panels: ap[(ir/mr)·kc·mr + p·mr + r]. Rows past mc
/// are zero (padding in m only, never in k).
void pack_a(const float* a, std::size_t lda, bool trans_a, std::size_t ic,
            std::size_t mc, std::size_t pc, std::size_t kc, std::size_t mr,
            float* ap) {
  for (std::size_t ir = 0; ir < mc; ir += mr) {
    const std::size_t rows = std::min(mr, mc - ir);
    float* dst = ap + (ir / mr) * kc * mr;
    if (!trans_a) {
      for (std::size_t p = 0; p < kc; ++p) {
        float* d = dst + p * mr;
        for (std::size_t r = 0; r < rows; ++r)
          d[r] = a[(ic + ir + r) * lda + pc + p];
        for (std::size_t r = rows; r < mr; ++r) d[r] = 0.0f;
      }
    } else {
      for (std::size_t p = 0; p < kc; ++p) {
        const float* arow = a + (pc + p) * lda + ic + ir;
        float* d = dst + p * mr;
        for (std::size_t r = 0; r < rows; ++r) d[r] = arow[r];
        for (std::size_t r = rows; r < mr; ++r) d[r] = 0.0f;
      }
    }
  }
}

/// Packs B(pc:pc+kc, jc:jc+nc) into nr-wide panels: bp[(jr/nr)·kc·nr +
/// p·nr + j]. Columns past nc are zero.
void pack_b(const float* b, std::size_t ldb, bool trans_b, std::size_t pc,
            std::size_t kc, std::size_t jc, std::size_t nc, std::size_t nr,
            float* bp) {
  for (std::size_t jr = 0; jr < nc; jr += nr) {
    const std::size_t cols = std::min(nr, nc - jr);
    float* dst = bp + (jr / nr) * kc * nr;
    if (!trans_b) {
      for (std::size_t p = 0; p < kc; ++p) {
        const float* brow = b + (pc + p) * ldb + jc + jr;
        float* d = dst + p * nr;
        for (std::size_t j = 0; j < cols; ++j) d[j] = brow[j];
        for (std::size_t j = cols; j < nr; ++j) d[j] = 0.0f;
      }
    } else {
      for (std::size_t p = 0; p < kc; ++p) {
        float* d = dst + p * nr;
        for (std::size_t j = 0; j < cols; ++j)
          d[j] = b[(jc + jr + j) * ldb + pc + p];
        for (std::size_t j = cols; j < nr; ++j) d[j] = 0.0f;
      }
    }
  }
}

KernelInfo kernel_for(GemmIsa isa) {
  return isa == GemmIsa::kAvx2 ? detail::avx2_kernel() : detail::scalar_kernel();
}

// Short-m problems run the strided no-pack kernels instead of the blocked
// path: with only a handful of C rows, repacking A and B costs more than the
// multiply itself (the per-sample conv/dense GEMMs of a staged model are all
// in this regime). 48 keeps every stage of the default models on this path
// while large square matmuls stay on the packed path, whose cache blocking
// wins from ~2·kMc rows up.
constexpr std::size_t kDirectMaxM = 48;

/// The no-pack driver. Keeps the packed path's KC blocking (block_beta
/// between k blocks) and per-element accumulation chain, so results are
/// bitwise-identical to the packed path at every size — only the data
/// movement differs.
void gemm_direct(const KernelInfo& kern, std::size_t m, std::size_t n,
                 std::size_t k, const float* a, std::size_t lda,
                 const float* b, std::size_t ldb, float beta, float* c,
                 std::size_t ldc) {
  const std::size_t mr = kern.mr;
  const std::size_t nr = kern.nr;
  for (std::size_t pc = 0; pc < k; pc += kKc) {
    const std::size_t kc = std::min(kKc, k - pc);
    const float block_beta = pc == 0 ? beta : 1.0f;
    const float* ablk = a + pc;
    const float* bblk = b + pc * ldb;
    std::size_t jr = 0;
    for (; jr + nr <= n; jr += nr) {
      std::size_t ir = 0;
      for (; ir + mr <= m; ir += mr)
        kern.direct(kc, ablk + ir * lda, lda, bblk + jr, ldb,
                    c + ir * ldc + jr, ldc, block_beta);
      if (ir < m)
        kern.direct_edge(m - ir, kc, ablk + ir * lda, lda, bblk + jr, ldb,
                         c + ir * ldc + jr, ldc, block_beta);
    }
    if (jr < n) {
      // n tail: zero-pad the trailing columns into one nr-wide strip so the
      // kernels still run full width, then merge only the live columns via a
      // local tile — the same merge the packed path uses for partial tiles.
      const std::size_t cols = n - jr;
      float btail[kKc * detail::kMaxNr];
      for (std::size_t p = 0; p < kc; ++p) {
        const float* brow = bblk + p * ldb + jr;
        float* d = btail + p * nr;
        for (std::size_t j = 0; j < cols; ++j) d[j] = brow[j];
        for (std::size_t j = cols; j < nr; ++j) d[j] = 0.0f;
      }
      float tile[detail::kMaxMr * detail::kMaxNr];
      for (std::size_t ir = 0; ir < m; ir += mr) {
        const std::size_t rows = std::min(mr, m - ir);
        if (rows == mr)
          kern.direct(kc, ablk + ir * lda, lda, btail, nr, tile, nr, 0.0f);
        else
          kern.direct_edge(rows, kc, ablk + ir * lda, lda, btail, nr, tile,
                           nr, 0.0f);
        float* cblk = c + ir * ldc + jr;
        if (block_beta == 0.0f) {
          for (std::size_t r = 0; r < rows; ++r)
            for (std::size_t j = 0; j < cols; ++j)
              cblk[r * ldc + j] = tile[r * nr + j];
        } else {
          for (std::size_t r = 0; r < rows; ++r)
            for (std::size_t j = 0; j < cols; ++j)
              cblk[r * ldc + j] += tile[r * nr + j];
        }
      }
    }
  }
}

/// Row-pointer analogue of gemm_direct: B row p lives at b_rows[p]. Same KC
/// blocking and kernel chain, so C entries stay bitwise-identical to the
/// packed and strided paths.
void gemm_gather(const KernelInfo& kern, std::size_t m, std::size_t n,
                 std::size_t k, const float* a, std::size_t lda,
                 const float* const* b_rows, float beta, float* c,
                 std::size_t ldc) {
  const std::size_t mr = kern.mr;
  const std::size_t nr = kern.nr;
  for (std::size_t pc = 0; pc < k; pc += kKc) {
    const std::size_t kc = std::min(kKc, k - pc);
    const float block_beta = pc == 0 ? beta : 1.0f;
    const float* ablk = a + pc;
    const float* const* brows = b_rows + pc;
    std::size_t jr = 0;
    for (; jr + nr <= n; jr += nr) {
      std::size_t ir = 0;
      for (; ir + mr <= m; ir += mr)
        kern.gather(kc, ablk + ir * lda, lda, brows, jr, c + ir * ldc + jr,
                    ldc, block_beta);
      if (ir < m)
        kern.gather_edge(m - ir, kc, ablk + ir * lda, lda, brows, jr,
                         c + ir * ldc + jr, ldc, block_beta);
    }
    if (jr < n) {
      // n tail: same zero-padded strip + local-tile merge as gemm_direct.
      const std::size_t cols = n - jr;
      float btail[kKc * detail::kMaxNr];
      for (std::size_t p = 0; p < kc; ++p) {
        const float* brow = brows[p] + jr;
        float* d = btail + p * nr;
        for (std::size_t j = 0; j < cols; ++j) d[j] = brow[j];
        for (std::size_t j = cols; j < nr; ++j) d[j] = 0.0f;
      }
      float tile[detail::kMaxMr * detail::kMaxNr];
      for (std::size_t ir = 0; ir < m; ir += mr) {
        const std::size_t rows = std::min(mr, m - ir);
        if (rows == mr)
          kern.direct(kc, ablk + ir * lda, lda, btail, nr, tile, nr, 0.0f);
        else
          kern.direct_edge(rows, kc, ablk + ir * lda, lda, btail, nr, tile,
                           nr, 0.0f);
        float* cblk = c + ir * ldc + jr;
        if (block_beta == 0.0f) {
          for (std::size_t r = 0; r < rows; ++r)
            for (std::size_t j = 0; j < cols; ++j)
              cblk[r * ldc + j] = tile[r * nr + j];
        } else {
          for (std::size_t r = 0; r < rows; ++r)
            for (std::size_t j = 0; j < cols; ++j)
              cblk[r * ldc + j] += tile[r * nr + j];
        }
      }
    }
  }
}

GemmIsa resolve_active_isa() {
  GemmIsa isa =
      detail::avx2_fma_supported() ? GemmIsa::kAvx2 : GemmIsa::kScalar;
  if (const char* env = std::getenv("EUGENE_GEMM_ISA")) {
    const std::optional<GemmIsa> forced = parse_gemm_isa(env);
    if (!forced.has_value()) {
      EUGENE_LOG(Warn) << "gemm: unrecognized EUGENE_GEMM_ISA value '" << env
                       << "'; using " << gemm_isa_name(isa);
    } else if (!gemm_isa_available(*forced)) {
      EUGENE_LOG(Warn) << "gemm: EUGENE_GEMM_ISA=" << gemm_isa_name(*forced)
                       << " not supported on this CPU; using "
                       << gemm_isa_name(isa);
    } else {
      isa = *forced;
    }
  }
  EUGENE_LOG(Debug) << "gemm: micro-kernel ISA resolved to "
                    << gemm_isa_name(isa);
  return isa;
}

}  // namespace

const char* gemm_isa_name(GemmIsa isa) {
  return isa == GemmIsa::kAvx2 ? "avx2" : "scalar";
}

bool gemm_isa_available(GemmIsa isa) {
  return isa == GemmIsa::kScalar || detail::avx2_fma_supported();
}

std::optional<GemmIsa> parse_gemm_isa(const char* text) {
  if (text == nullptr) return std::nullopt;
  std::string v(text);
  for (char& c : v)
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  if (v == "scalar") return GemmIsa::kScalar;
  if (v == "avx2") return GemmIsa::kAvx2;
  return std::nullopt;
}

GemmIsa active_gemm_isa() {
  static const GemmIsa isa = resolve_active_isa();
  return isa;
}

std::size_t gemm_workspace_floats(std::size_t m, std::size_t n,
                                  std::size_t k) {
  if (m == 0 || n == 0 || k == 0) return 0;
  const std::size_t b_panel =
      kKc * round_up(std::min(n, kNc), detail::kMaxNr);
  const std::size_t a_panel = kKc * round_up(std::min(m, kMc), detail::kMaxMr);
  return b_panel + a_panel;
}

void gemm_with_isa(GemmIsa isa, std::size_t m, std::size_t n, std::size_t k,
                   const float* a, std::size_t lda, bool trans_a,
                   const float* b, std::size_t ldb, bool trans_b, float beta,
                   float* c, std::size_t ldc, float* workspace) {
  EUGENE_REQUIRE(beta == 0.0f || beta == 1.0f, "gemm: beta must be 0 or 1");
  EUGENE_REQUIRE(gemm_isa_available(isa), "gemm: requested ISA unavailable");
  if (m == 0 || n == 0) return;
  if (k == 0) {
    if (beta == 0.0f)
      for (std::size_t i = 0; i < m; ++i)
        std::memset(c + i * ldc, 0, n * sizeof(float));
    return;
  }

  const KernelInfo kern = kernel_for(isa);
  if (!trans_a && !trans_b && m <= kDirectMaxM) {
    gemm_direct(kern, m, n, k, a, lda, b, ldb, beta, c, ldc);
    return;
  }

  float* ws = workspace;
  if (ws == nullptr) {
    // Grow-once thread-local fallback for callers without an arena (the
    // legacy matmul wrappers): no allocation in steady state.
    thread_local std::vector<float> tl_ws;
    const std::size_t need = gemm_workspace_floats(m, n, k);
    if (tl_ws.size() < need) tl_ws.resize(need);
    ws = tl_ws.data();
  }

  const std::size_t mr = kern.mr;
  const std::size_t nr = kern.nr;
  float* bp = ws;
  float* ap = ws + kKc * round_up(std::min(n, kNc), detail::kMaxNr);

  for (std::size_t jc = 0; jc < n; jc += kNc) {
    const std::size_t nc = std::min(kNc, n - jc);
    for (std::size_t pc = 0; pc < k; pc += kKc) {
      const std::size_t kc = std::min(kKc, k - pc);
      const float block_beta = pc == 0 ? beta : 1.0f;
      pack_b(b, ldb, trans_b, pc, kc, jc, nc, nr, bp);
      for (std::size_t ic = 0; ic < m; ic += kMc) {
        const std::size_t mc = std::min(kMc, m - ic);
        pack_a(a, lda, trans_a, ic, mc, pc, kc, mr, ap);
        for (std::size_t jr = 0; jr < nc; jr += nr) {
          const std::size_t nr_eff = std::min(nr, nc - jr);
          const float* b_panel = bp + (jr / nr) * kc * nr;
          for (std::size_t ir = 0; ir < mc; ir += mr) {
            const std::size_t mr_eff = std::min(mr, mc - ir);
            const float* a_panel = ap + (ir / mr) * kc * mr;
            float* cblk = c + (ic + ir) * ldc + jc + jr;
            if (mr_eff == mr && nr_eff == nr) {
              kern.kernel(kc, a_panel, b_panel, cblk, ldc, block_beta);
            } else {
              // Partial tile: compute the full tile into a local buffer,
              // then merge only the live rows/columns.
              float tile[detail::kMaxMr * detail::kMaxNr];
              kern.kernel(kc, a_panel, b_panel, tile, nr, 0.0f);
              if (block_beta == 0.0f) {
                for (std::size_t r = 0; r < mr_eff; ++r)
                  for (std::size_t j = 0; j < nr_eff; ++j)
                    cblk[r * ldc + j] = tile[r * nr + j];
              } else {
                for (std::size_t r = 0; r < mr_eff; ++r)
                  for (std::size_t j = 0; j < nr_eff; ++j)
                    cblk[r * ldc + j] += tile[r * nr + j];
              }
            }
          }
        }
      }
    }
  }
}

std::size_t gemm_rows_max_m() { return kDirectMaxM; }

void gemm_rows_with_isa(GemmIsa isa, std::size_t m, std::size_t n,
                        std::size_t k, const float* a, std::size_t lda,
                        const float* const* b_rows, float beta, float* c,
                        std::size_t ldc) {
  EUGENE_REQUIRE(beta == 0.0f || beta == 1.0f,
                 "gemm_rows: beta must be 0 or 1");
  EUGENE_REQUIRE(gemm_isa_available(isa),
                 "gemm_rows: requested ISA unavailable");
  EUGENE_REQUIRE(m <= kDirectMaxM, "gemm_rows: m exceeds gemm_rows_max_m()");
  if (m == 0 || n == 0) return;
  if (k == 0) {
    if (beta == 0.0f)
      for (std::size_t i = 0; i < m; ++i)
        std::memset(c + i * ldc, 0, n * sizeof(float));
    return;
  }
  gemm_gather(kernel_for(isa), m, n, k, a, lda, b_rows, beta, c, ldc);
}

void gemm_rows(std::size_t m, std::size_t n, std::size_t k, const float* a,
               std::size_t lda, const float* const* b_rows, float beta,
               float* c, std::size_t ldc) {
  gemm_rows_with_isa(active_gemm_isa(), m, n, k, a, lda, b_rows, beta, c,
                     ldc);
}

void gemm(std::size_t m, std::size_t n, std::size_t k, const float* a,
          std::size_t lda, bool trans_a, const float* b, std::size_t ldb,
          bool trans_b, float beta, float* c, std::size_t ldc,
          float* workspace) {
  gemm_with_isa(active_gemm_isa(), m, n, k, a, lda, trans_a, b, ldb, trans_b,
                beta, c, ldc, workspace);
}

}  // namespace eugene::tensor
