// Internal micro-kernel interface shared by the per-ISA translation units.
//
// A micro-kernel consumes one packed A panel (kc×mr, column-of-rows layout:
// a[p*mr + r]) and one packed B panel (kc×nr: b[p*nr + j]) and computes the
// full mr×nr tile acc[r][j] = Σ_p a[p*mr+r]·b[p*nr+j], then stores it to C
// (row stride ldc): overwriting when beta == 0, accumulating when beta == 1.
// Panels are zero-padded in the m/n direction only — never in k — so every
// kept C entry is an exact ordered sum of real products.
#pragma once

#include <cstddef>

namespace eugene::tensor::detail {

/// Row/column register-tile extents, bounded so the blocked driver can size
/// packing panels and edge-tile buffers for any ISA.
inline constexpr std::size_t kMaxMr = 8;
inline constexpr std::size_t kMaxNr = 16;

/// One ISA level's micro-kernel and its tile shape.
///
/// `direct` / `direct_edge` are the strided no-pack variants behind the
/// short-m fast path: they read A and B row-major in place (leading
/// dimensions lda/ldb) instead of from packed panels, with the SAME
/// per-element accumulation chain as `kernel` — same op (FMA or mul+add),
/// same p order — so a C entry is bitwise-identical whichever variant
/// computed it. `direct` computes the full mr×nr tile; `direct_edge`
/// computes only the first `rows` (< mr) rows at full nr width.
/// `gather` / `gather_edge` are the row-pointer variants behind the implicit
/// im2col conv path: B row p starts at b_rows[p] + boff (rows need not be
/// equally spaced — conv points them at overlapping shifted windows of one
/// padded image). Same accumulation chain as `kernel` / `direct`.
struct KernelInfo {
  std::size_t mr = 0;
  std::size_t nr = 0;
  void (*kernel)(std::size_t kc, const float* a_panel, const float* b_panel,
                 float* c, std::size_t ldc, float beta) = nullptr;
  void (*direct)(std::size_t kc, const float* a, std::size_t lda,
                 const float* b, std::size_t ldb, float* c, std::size_t ldc,
                 float beta) = nullptr;
  void (*direct_edge)(std::size_t rows, std::size_t kc, const float* a,
                      std::size_t lda, const float* b, std::size_t ldb,
                      float* c, std::size_t ldc, float beta) = nullptr;
  void (*gather)(std::size_t kc, const float* a, std::size_t lda,
                 const float* const* b_rows, std::size_t boff, float* c,
                 std::size_t ldc, float beta) = nullptr;
  void (*gather_edge)(std::size_t rows, std::size_t kc, const float* a,
                      std::size_t lda, const float* const* b_rows,
                      std::size_t boff, float* c, std::size_t ldc,
                      float beta) = nullptr;
};

/// Portable kernel, always available.
KernelInfo scalar_kernel();

/// True when the CPU supports AVX2 and FMA (always false off x86-64).
bool avx2_fma_supported();

/// AVX2+FMA 6×16 kernel. Calling it on a CPU without AVX2/FMA is undefined;
/// guard with avx2_fma_supported(). Off x86-64 this returns the scalar
/// kernel so the dispatch table stays total.
KernelInfo avx2_kernel();

}  // namespace eugene::tensor::detail
