// Tiled, packed, runtime-dispatched single-precision GEMM (DESIGN.md §14).
//
// This is the compute core every Eugene stage bottoms out in: a BLIS-style
// register-tiled micro-kernel under cache blocking, with A and B repacked
// into contiguous panels so the kernel streams at unit stride regardless of
// the caller's layout or transposition. Each ISA level lives in its own
// translation unit (gemm_scalar.cpp always; gemm_avx2.cpp built with
// AVX2+FMA target attributes on x86-64) and the best supported kernel is
// picked once, at first use.
//
// Numerics contract: C entries are plain ordered sums of a[i,p]*b[p,j] over
// p — no zero-skip fast paths, so 0·NaN and 0·inf propagate as IEEE says
// (Matmul.NaNInfPropagation pins this). The accumulation order over p
// depends only on k and the fixed KC blocking, never on m or n, which is
// what makes batched stage inference bit-identical to per-sample inference.
#pragma once

#include <cstddef>
#include <optional>

namespace eugene::tensor {

/// Instruction-set level of the GEMM micro-kernel.
enum class GemmIsa {
  kScalar = 0,  ///< portable C++ kernel, auto-vectorized at best
  kAvx2 = 1,    ///< 6×16 AVX2+FMA kernel (x86-64 only)
};

/// Diagnostic name ("scalar", "avx2").
const char* gemm_isa_name(GemmIsa isa);

/// True when this machine can execute the given ISA level.
bool gemm_isa_available(GemmIsa isa);

/// Parses an EUGENE_GEMM_ISA override value ("scalar" / "avx2");
/// nullopt for unrecognized text. Pure — exposed for tests.
std::optional<GemmIsa> parse_gemm_isa(const char* text);

/// The ISA level selected for this process: the best available, unless the
/// EUGENE_GEMM_ISA environment variable forces a level (an unavailable or
/// unrecognized forced level logs a warning and falls back). Resolved once,
/// on first call.
GemmIsa active_gemm_isa();

/// Workspace floats gemm() needs for its packing panels at these dimensions.
/// Callers that own scratch memory (nn::ScratchArena) size it with this; a
/// null workspace makes gemm() fall back to a grow-once thread-local buffer.
std::size_t gemm_workspace_floats(std::size_t m, std::size_t n, std::size_t k);

/// C(m×n) = A·B + beta·C with optional logical transposes.
///
/// `a` stores A row-major with leading dimension `lda` — logically m×k, or
/// k×m when `trans_a` (the transpose is absorbed by the packing; nothing is
/// copied up front). Same for `b`/`ldb`/`trans_b` (k×n, or n×k when
/// transposed). `beta` must be 0 (overwrite C) or 1 (accumulate into C).
/// `workspace` must hold gemm_workspace_floats(m, n, k) floats, or be null
/// to use an internal thread-local buffer (no steady-state allocation).
void gemm(std::size_t m, std::size_t n, std::size_t k, const float* a,
          std::size_t lda, bool trans_a, const float* b, std::size_t ldb,
          bool trans_b, float beta, float* c, std::size_t ldc,
          float* workspace = nullptr);

/// gemm() forced onto a specific ISA level (must be available). The
/// dispatch-arm property tests and BM_GemmKernel use this; production code
/// goes through gemm(), which uses active_gemm_isa().
void gemm_with_isa(GemmIsa isa, std::size_t m, std::size_t n, std::size_t k,
                   const float* a, std::size_t lda, bool trans_a,
                   const float* b, std::size_t ldb, bool trans_b, float beta,
                   float* c, std::size_t ldc, float* workspace = nullptr);

/// Largest m gemm_rows() accepts (it runs exclusively on the strided no-pack
/// kernels, which only pay off for short-m problems).
std::size_t gemm_rows_max_m();

/// C(m×n) = A·B + beta·C where B is given as k row pointers: row p of B is
/// the n floats at b_rows[p]. Rows may alias or overlap arbitrarily — conv
/// layers point them at shifted windows of one zero-padded image plane,
/// turning im2col into pure pointer arithmetic. Requires m ≤
/// gemm_rows_max_m(); needs no workspace. The accumulation order per C entry
/// matches gemm() exactly (same KC blocking, same kernel chain), so a conv
/// computed through gemm_rows() is bitwise-identical to the same conv
/// computed through im2col + gemm().
void gemm_rows(std::size_t m, std::size_t n, std::size_t k, const float* a,
               std::size_t lda, const float* const* b_rows, float beta,
               float* c, std::size_t ldc);

/// gemm_rows() forced onto a specific ISA level (must be available).
void gemm_rows_with_isa(GemmIsa isa, std::size_t m, std::size_t n,
                        std::size_t k, const float* a, std::size_t lda,
                        const float* const* b_rows, float beta, float* c,
                        std::size_t ldc);

}  // namespace eugene::tensor
