// AVX2+FMA micro-kernel: a 6×16 register tile (12 ymm accumulators + one
// broadcast + two B loads = 15 of the 16 architectural ymm registers).
// Compiled with per-function target attributes so this TU builds under the
// project's baseline flags; only runtime dispatch (avx2_fma_supported) may
// route execution here.
#include "tensor/gemm_kernel.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace eugene::tensor::detail {

#if defined(__x86_64__) || defined(__i386__)

namespace {

constexpr std::size_t kMr = 6;
constexpr std::size_t kNr = 16;

__attribute__((target("avx2,fma"))) void kernel_6x16(std::size_t kc,
                                                     const float* a_panel,
                                                     const float* b_panel,
                                                     float* c, std::size_t ldc,
                                                     float beta) {
  __m256 acc[kMr][2];
  for (std::size_t r = 0; r < kMr; ++r) {
    acc[r][0] = _mm256_setzero_ps();
    acc[r][1] = _mm256_setzero_ps();
  }
  for (std::size_t p = 0; p < kc; ++p) {
    const __m256 b0 = _mm256_loadu_ps(b_panel + p * kNr);
    const __m256 b1 = _mm256_loadu_ps(b_panel + p * kNr + 8);
    const float* a = a_panel + p * kMr;
    for (std::size_t r = 0; r < kMr; ++r) {
      const __m256 ar = _mm256_broadcast_ss(a + r);
      acc[r][0] = _mm256_fmadd_ps(ar, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(ar, b1, acc[r][1]);
    }
  }
  if (beta == 0.0f) {
    for (std::size_t r = 0; r < kMr; ++r) {
      _mm256_storeu_ps(c + r * ldc, acc[r][0]);
      _mm256_storeu_ps(c + r * ldc + 8, acc[r][1]);
    }
  } else {
    for (std::size_t r = 0; r < kMr; ++r) {
      _mm256_storeu_ps(c + r * ldc,
                       _mm256_add_ps(_mm256_loadu_ps(c + r * ldc), acc[r][0]));
      _mm256_storeu_ps(
          c + r * ldc + 8,
          _mm256_add_ps(_mm256_loadu_ps(c + r * ldc + 8), acc[r][1]));
    }
  }
}

// Strided no-pack variant: identical FMA chain to kernel_6x16 (broadcast A,
// two 8-wide B loads, fmadd in p order), reading A/B row-major in place.
__attribute__((target("avx2,fma"))) void direct_6x16(
    std::size_t kc, const float* a, std::size_t lda, const float* b,
    std::size_t ldb, float* c, std::size_t ldc, float beta) {
  __m256 acc[kMr][2];
  for (std::size_t r = 0; r < kMr; ++r) {
    acc[r][0] = _mm256_setzero_ps();
    acc[r][1] = _mm256_setzero_ps();
  }
  std::size_t p = 0;
  // Two k steps per iteration (same ordered per-p chain per C entry — see
  // gather_6x16).
  for (; p + 2 <= kc; p += 2) {
    const __m256 b0 = _mm256_loadu_ps(b + p * ldb);
    const __m256 b1 = _mm256_loadu_ps(b + p * ldb + 8);
    const __m256 b2 = _mm256_loadu_ps(b + (p + 1) * ldb);
    const __m256 b3 = _mm256_loadu_ps(b + (p + 1) * ldb + 8);
    for (std::size_t r = 0; r < kMr; ++r) {
      const __m256 ar0 = _mm256_broadcast_ss(a + r * lda + p);
      acc[r][0] = _mm256_fmadd_ps(ar0, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(ar0, b1, acc[r][1]);
      const __m256 ar1 = _mm256_broadcast_ss(a + r * lda + p + 1);
      acc[r][0] = _mm256_fmadd_ps(ar1, b2, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(ar1, b3, acc[r][1]);
    }
  }
  for (; p < kc; ++p) {
    const __m256 b0 = _mm256_loadu_ps(b + p * ldb);
    const __m256 b1 = _mm256_loadu_ps(b + p * ldb + 8);
    for (std::size_t r = 0; r < kMr; ++r) {
      const __m256 ar = _mm256_broadcast_ss(a + r * lda + p);
      acc[r][0] = _mm256_fmadd_ps(ar, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(ar, b1, acc[r][1]);
    }
  }
  if (beta == 0.0f) {
    for (std::size_t r = 0; r < kMr; ++r) {
      _mm256_storeu_ps(c + r * ldc, acc[r][0]);
      _mm256_storeu_ps(c + r * ldc + 8, acc[r][1]);
    }
  } else {
    for (std::size_t r = 0; r < kMr; ++r) {
      _mm256_storeu_ps(c + r * ldc,
                       _mm256_add_ps(_mm256_loadu_ps(c + r * ldc), acc[r][0]));
      _mm256_storeu_ps(
          c + r * ldc + 8,
          _mm256_add_ps(_mm256_loadu_ps(c + r * ldc + 8), acc[r][1]));
    }
  }
}

// m-edge of the strided path: first `rows` (< mr) rows at full nr width.
// The accumulators spill with a runtime row bound — edge tiles run once per
// column strip, so the register pressure trade is irrelevant here.
__attribute__((target("avx2,fma"))) void direct_edge_6x16(
    std::size_t rows, std::size_t kc, const float* a, std::size_t lda,
    const float* b, std::size_t ldb, float* c, std::size_t ldc, float beta) {
  __m256 acc[kMr][2];
  for (std::size_t r = 0; r < rows; ++r) {
    acc[r][0] = _mm256_setzero_ps();
    acc[r][1] = _mm256_setzero_ps();
  }
  std::size_t p = 0;
  for (; p + 2 <= kc; p += 2) {
    const __m256 b0 = _mm256_loadu_ps(b + p * ldb);
    const __m256 b1 = _mm256_loadu_ps(b + p * ldb + 8);
    const __m256 b2 = _mm256_loadu_ps(b + (p + 1) * ldb);
    const __m256 b3 = _mm256_loadu_ps(b + (p + 1) * ldb + 8);
    for (std::size_t r = 0; r < rows; ++r) {
      const __m256 ar0 = _mm256_broadcast_ss(a + r * lda + p);
      acc[r][0] = _mm256_fmadd_ps(ar0, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(ar0, b1, acc[r][1]);
      const __m256 ar1 = _mm256_broadcast_ss(a + r * lda + p + 1);
      acc[r][0] = _mm256_fmadd_ps(ar1, b2, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(ar1, b3, acc[r][1]);
    }
  }
  for (; p < kc; ++p) {
    const __m256 b0 = _mm256_loadu_ps(b + p * ldb);
    const __m256 b1 = _mm256_loadu_ps(b + p * ldb + 8);
    for (std::size_t r = 0; r < rows; ++r) {
      const __m256 ar = _mm256_broadcast_ss(a + r * lda + p);
      acc[r][0] = _mm256_fmadd_ps(ar, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(ar, b1, acc[r][1]);
    }
  }
  if (beta == 0.0f) {
    for (std::size_t r = 0; r < rows; ++r) {
      _mm256_storeu_ps(c + r * ldc, acc[r][0]);
      _mm256_storeu_ps(c + r * ldc + 8, acc[r][1]);
    }
  } else {
    for (std::size_t r = 0; r < rows; ++r) {
      _mm256_storeu_ps(c + r * ldc,
                       _mm256_add_ps(_mm256_loadu_ps(c + r * ldc), acc[r][0]));
      _mm256_storeu_ps(
          c + r * ldc + 8,
          _mm256_add_ps(_mm256_loadu_ps(c + r * ldc + 8), acc[r][1]));
    }
  }
}

// Row-pointer variants: B row p starts at b_rows[p] + boff. Same FMA chain
// as the panel/strided kernels above.
__attribute__((target("avx2,fma"))) void gather_6x16(
    std::size_t kc, const float* a, std::size_t lda,
    const float* const* b_rows, std::size_t boff, float* c, std::size_t ldc,
    float beta) {
  __m256 acc[kMr][2];
  for (std::size_t r = 0; r < kMr; ++r) {
    acc[r][0] = _mm256_setzero_ps();
    acc[r][1] = _mm256_setzero_ps();
  }
  std::size_t p = 0;
  // Two k steps per iteration: halves loop overhead and gives the scheduler
  // two independent FMA groups. Each C entry still sees the same ordered
  // per-p chain, so results are unchanged bit-for-bit.
  for (; p + 2 <= kc; p += 2) {
    const float* brow0 = b_rows[p] + boff;
    const float* brow1 = b_rows[p + 1] + boff;
    const __m256 b0 = _mm256_loadu_ps(brow0);
    const __m256 b1 = _mm256_loadu_ps(brow0 + 8);
    const __m256 b2 = _mm256_loadu_ps(brow1);
    const __m256 b3 = _mm256_loadu_ps(brow1 + 8);
    for (std::size_t r = 0; r < kMr; ++r) {
      const __m256 ar0 = _mm256_broadcast_ss(a + r * lda + p);
      acc[r][0] = _mm256_fmadd_ps(ar0, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(ar0, b1, acc[r][1]);
      const __m256 ar1 = _mm256_broadcast_ss(a + r * lda + p + 1);
      acc[r][0] = _mm256_fmadd_ps(ar1, b2, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(ar1, b3, acc[r][1]);
    }
  }
  for (; p < kc; ++p) {
    const float* brow = b_rows[p] + boff;
    const __m256 b0 = _mm256_loadu_ps(brow);
    const __m256 b1 = _mm256_loadu_ps(brow + 8);
    for (std::size_t r = 0; r < kMr; ++r) {
      const __m256 ar = _mm256_broadcast_ss(a + r * lda + p);
      acc[r][0] = _mm256_fmadd_ps(ar, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(ar, b1, acc[r][1]);
    }
  }
  if (beta == 0.0f) {
    for (std::size_t r = 0; r < kMr; ++r) {
      _mm256_storeu_ps(c + r * ldc, acc[r][0]);
      _mm256_storeu_ps(c + r * ldc + 8, acc[r][1]);
    }
  } else {
    for (std::size_t r = 0; r < kMr; ++r) {
      _mm256_storeu_ps(c + r * ldc,
                       _mm256_add_ps(_mm256_loadu_ps(c + r * ldc), acc[r][0]));
      _mm256_storeu_ps(
          c + r * ldc + 8,
          _mm256_add_ps(_mm256_loadu_ps(c + r * ldc + 8), acc[r][1]));
    }
  }
}

__attribute__((target("avx2,fma"))) void gather_edge_6x16(
    std::size_t rows, std::size_t kc, const float* a, std::size_t lda,
    const float* const* b_rows, std::size_t boff, float* c, std::size_t ldc,
    float beta) {
  __m256 acc[kMr][2];
  for (std::size_t r = 0; r < rows; ++r) {
    acc[r][0] = _mm256_setzero_ps();
    acc[r][1] = _mm256_setzero_ps();
  }
  std::size_t p = 0;
  for (; p + 2 <= kc; p += 2) {
    const float* brow0 = b_rows[p] + boff;
    const float* brow1 = b_rows[p + 1] + boff;
    const __m256 b0 = _mm256_loadu_ps(brow0);
    const __m256 b1 = _mm256_loadu_ps(brow0 + 8);
    const __m256 b2 = _mm256_loadu_ps(brow1);
    const __m256 b3 = _mm256_loadu_ps(brow1 + 8);
    for (std::size_t r = 0; r < rows; ++r) {
      const __m256 ar0 = _mm256_broadcast_ss(a + r * lda + p);
      acc[r][0] = _mm256_fmadd_ps(ar0, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(ar0, b1, acc[r][1]);
      const __m256 ar1 = _mm256_broadcast_ss(a + r * lda + p + 1);
      acc[r][0] = _mm256_fmadd_ps(ar1, b2, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(ar1, b3, acc[r][1]);
    }
  }
  for (; p < kc; ++p) {
    const float* brow = b_rows[p] + boff;
    const __m256 b0 = _mm256_loadu_ps(brow);
    const __m256 b1 = _mm256_loadu_ps(brow + 8);
    for (std::size_t r = 0; r < rows; ++r) {
      const __m256 ar = _mm256_broadcast_ss(a + r * lda + p);
      acc[r][0] = _mm256_fmadd_ps(ar, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(ar, b1, acc[r][1]);
    }
  }
  if (beta == 0.0f) {
    for (std::size_t r = 0; r < rows; ++r) {
      _mm256_storeu_ps(c + r * ldc, acc[r][0]);
      _mm256_storeu_ps(c + r * ldc + 8, acc[r][1]);
    }
  } else {
    for (std::size_t r = 0; r < rows; ++r) {
      _mm256_storeu_ps(c + r * ldc,
                       _mm256_add_ps(_mm256_loadu_ps(c + r * ldc), acc[r][0]));
      _mm256_storeu_ps(
          c + r * ldc + 8,
          _mm256_add_ps(_mm256_loadu_ps(c + r * ldc + 8), acc[r][1]));
    }
  }
}

}  // namespace

bool avx2_fma_supported() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

KernelInfo avx2_kernel() {
  return {kMr,         kNr,          &kernel_6x16,      &direct_6x16,
          &direct_edge_6x16, &gather_6x16, &gather_edge_6x16};
}

#else  // non-x86: AVX2 is never available; keep the table total.

bool avx2_fma_supported() { return false; }

KernelInfo avx2_kernel() { return scalar_kernel(); }

#endif

}  // namespace eugene::tensor::detail
