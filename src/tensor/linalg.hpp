// Dense linear algebra needed by Gaussian-process regression and the
// profiler's least-squares fits: Cholesky factorization, triangular solves,
// and ordinary least squares via normal equations.
#pragma once

#include <vector>

#include "tensor/tensor.hpp"

namespace eugene::tensor {

/// Cholesky factor L (lower triangular) of a symmetric positive-definite A,
/// so that A = L·Lᵀ. Throws eugene::InvalidArgument if A is not SPD.
Tensor cholesky(const Tensor& a);

/// Solves L·x = b for lower-triangular L (forward substitution).
std::vector<double> solve_lower(const Tensor& l, const std::vector<double>& b);

/// Solves Lᵀ·x = b for lower-triangular L (back substitution on the transpose).
std::vector<double> solve_lower_transpose(const Tensor& l, const std::vector<double>& b);

/// Solves A·x = b for SPD A via Cholesky.
std::vector<double> solve_spd(const Tensor& a, const std::vector<double>& b);

/// Ordinary least squares: finds beta minimizing ‖X·beta − y‖² using the
/// normal equations with a small ridge term for numerical safety.
/// X is [n, p]; returns beta of length p.
std::vector<double> least_squares(const Tensor& x, const std::vector<double>& y,
                                  double ridge = 1e-9);

}  // namespace eugene::tensor
