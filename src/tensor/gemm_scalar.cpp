// Portable micro-kernel: a 4×8 register tile in plain C++. The fixed inner
// extents let the compiler keep the accumulators in registers and
// auto-vectorize with whatever the baseline ISA offers (SSE2 on x86-64).
#include "tensor/gemm_kernel.hpp"

namespace eugene::tensor::detail {
namespace {

constexpr std::size_t kMr = 4;
constexpr std::size_t kNr = 8;

void kernel_4x8(std::size_t kc, const float* a_panel, const float* b_panel,
                float* c, std::size_t ldc, float beta) {
  float acc[kMr][kNr] = {};
  for (std::size_t p = 0; p < kc; ++p) {
    const float* a = a_panel + p * kMr;
    const float* b = b_panel + p * kNr;
    for (std::size_t r = 0; r < kMr; ++r) {
      const float ar = a[r];
      for (std::size_t j = 0; j < kNr; ++j) acc[r][j] += ar * b[j];
    }
  }
  if (beta == 0.0f) {
    for (std::size_t r = 0; r < kMr; ++r)
      for (std::size_t j = 0; j < kNr; ++j) c[r * ldc + j] = acc[r][j];
  } else {
    for (std::size_t r = 0; r < kMr; ++r)
      for (std::size_t j = 0; j < kNr; ++j) c[r * ldc + j] += acc[r][j];
  }
}

// Strided no-pack variant: same accumulator layout and per-element
// mul-then-add chain as kernel_4x8, reading A/B row-major in place.
void direct_4x8(std::size_t kc, const float* a, std::size_t lda,
                const float* b, std::size_t ldb, float* c, std::size_t ldc,
                float beta) {
  float acc[kMr][kNr] = {};
  for (std::size_t p = 0; p < kc; ++p) {
    const float* brow = b + p * ldb;
    for (std::size_t r = 0; r < kMr; ++r) {
      const float ar = a[r * lda + p];
      for (std::size_t j = 0; j < kNr; ++j) acc[r][j] += ar * brow[j];
    }
  }
  if (beta == 0.0f) {
    for (std::size_t r = 0; r < kMr; ++r)
      for (std::size_t j = 0; j < kNr; ++j) c[r * ldc + j] = acc[r][j];
  } else {
    for (std::size_t r = 0; r < kMr; ++r)
      for (std::size_t j = 0; j < kNr; ++j) c[r * ldc + j] += acc[r][j];
  }
}

// m-edge of the strided path: first `rows` (< mr) rows at full nr width.
void direct_edge_4x8(std::size_t rows, std::size_t kc, const float* a,
                     std::size_t lda, const float* b, std::size_t ldb,
                     float* c, std::size_t ldc, float beta) {
  float acc[kMr][kNr] = {};
  for (std::size_t p = 0; p < kc; ++p) {
    const float* brow = b + p * ldb;
    for (std::size_t r = 0; r < rows; ++r) {
      const float ar = a[r * lda + p];
      for (std::size_t j = 0; j < kNr; ++j) acc[r][j] += ar * brow[j];
    }
  }
  if (beta == 0.0f) {
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t j = 0; j < kNr; ++j) c[r * ldc + j] = acc[r][j];
  } else {
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t j = 0; j < kNr; ++j) c[r * ldc + j] += acc[r][j];
  }
}

// Row-pointer variants: B row p starts at b_rows[p] + boff. Same chain as
// the panel/strided kernels above.
void gather_4x8(std::size_t kc, const float* a, std::size_t lda,
                const float* const* b_rows, std::size_t boff, float* c,
                std::size_t ldc, float beta) {
  float acc[kMr][kNr] = {};
  for (std::size_t p = 0; p < kc; ++p) {
    const float* brow = b_rows[p] + boff;
    for (std::size_t r = 0; r < kMr; ++r) {
      const float ar = a[r * lda + p];
      for (std::size_t j = 0; j < kNr; ++j) acc[r][j] += ar * brow[j];
    }
  }
  if (beta == 0.0f) {
    for (std::size_t r = 0; r < kMr; ++r)
      for (std::size_t j = 0; j < kNr; ++j) c[r * ldc + j] = acc[r][j];
  } else {
    for (std::size_t r = 0; r < kMr; ++r)
      for (std::size_t j = 0; j < kNr; ++j) c[r * ldc + j] += acc[r][j];
  }
}

void gather_edge_4x8(std::size_t rows, std::size_t kc, const float* a,
                     std::size_t lda, const float* const* b_rows,
                     std::size_t boff, float* c, std::size_t ldc, float beta) {
  float acc[kMr][kNr] = {};
  for (std::size_t p = 0; p < kc; ++p) {
    const float* brow = b_rows[p] + boff;
    for (std::size_t r = 0; r < rows; ++r) {
      const float ar = a[r * lda + p];
      for (std::size_t j = 0; j < kNr; ++j) acc[r][j] += ar * brow[j];
    }
  }
  if (beta == 0.0f) {
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t j = 0; j < kNr; ++j) c[r * ldc + j] = acc[r][j];
  } else {
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t j = 0; j < kNr; ++j) c[r * ldc + j] += acc[r][j];
  }
}

}  // namespace

KernelInfo scalar_kernel() {
  return {kMr,        kNr,         &kernel_4x8,     &direct_4x8,
          &direct_edge_4x8, &gather_4x8, &gather_edge_4x8};
}

}  // namespace eugene::tensor::detail
