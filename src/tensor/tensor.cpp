#include "tensor/tensor.hpp"

#include <sstream>

namespace eugene::tensor {

std::size_t shape_numel(const Shape& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0f) {}

Tensor::Tensor(Shape shape, float value)
    : shape_(std::move(shape)), data_(shape_numel(shape_), value) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  EUGENE_REQUIRE(data_.size() == shape_numel(shape_),
                 "data size does not match shape " + shape_to_string(shape_));
}

Tensor Tensor::randn(Shape shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) v = static_cast<float>(rng.normal(0.0, stddev));
  return t;
}

Tensor Tensor::rand_uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) v = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

std::size_t Tensor::flat_index(std::span<const std::size_t> idx) const {
  EUGENE_REQUIRE(idx.size() == shape_.size(),
                 "index rank mismatch for shape " + shape_to_string(shape_));
  std::size_t flat = 0;
  for (std::size_t d = 0; d < idx.size(); ++d) {
    EUGENE_REQUIRE(idx[d] < shape_[d], "index out of bounds in dim");
    flat = flat * shape_[d] + idx[d];
  }
  return flat;
}

float& Tensor::at(std::size_t i) {
  const std::size_t idx[] = {i};
  return data_[flat_index(idx)];
}
float Tensor::at(std::size_t i) const {
  const std::size_t idx[] = {i};
  return data_[flat_index(idx)];
}
float& Tensor::at(std::size_t i, std::size_t j) {
  const std::size_t idx[] = {i, j};
  return data_[flat_index(idx)];
}
float Tensor::at(std::size_t i, std::size_t j) const {
  const std::size_t idx[] = {i, j};
  return data_[flat_index(idx)];
}
float& Tensor::at(std::size_t i, std::size_t j, std::size_t k) {
  const std::size_t idx[] = {i, j, k};
  return data_[flat_index(idx)];
}
float Tensor::at(std::size_t i, std::size_t j, std::size_t k) const {
  const std::size_t idx[] = {i, j, k};
  return data_[flat_index(idx)];
}
float& Tensor::at(std::size_t i, std::size_t j, std::size_t k, std::size_t l) {
  const std::size_t idx[] = {i, j, k, l};
  return data_[flat_index(idx)];
}
float Tensor::at(std::size_t i, std::size_t j, std::size_t k, std::size_t l) const {
  const std::size_t idx[] = {i, j, k, l};
  return data_[flat_index(idx)];
}

Tensor Tensor::reshaped(Shape new_shape) const {
  EUGENE_REQUIRE(shape_numel(new_shape) == numel(),
                 "reshape " + shape_to_string(shape_) + " -> " +
                     shape_to_string(new_shape) + " changes element count");
  return Tensor(std::move(new_shape), data_);
}

void Tensor::fill(float value) {
  for (float& v : data_) v = value;
}

Tensor& Tensor::operator+=(const Tensor& other) {
  EUGENE_REQUIRE(same_shape(other), "operator+=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  EUGENE_REQUIRE(same_shape(other), "operator-=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float scalar) {
  for (float& v : data_) v *= scalar;
  return *this;
}

}  // namespace eugene::tensor
