#include "tensor/ops.hpp"

#include <algorithm>

namespace eugene::tensor {
namespace {

void require_matrix(const Tensor& t, const char* name) {
  EUGENE_REQUIRE(t.rank() == 2, std::string(name) + ": expected rank-2 tensor, got " +
                                    shape_to_string(t.shape()));
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  require_matrix(a, "matmul a");
  require_matrix(b, "matmul b");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  EUGENE_REQUIRE(b.dim(0) == k, "matmul: inner dimensions disagree");
  Tensor c({m, n});
  const float* ap = a.raw();
  const float* bp = b.raw();
  float* cp = c.raw();
  // ikj loop order: streams through B and C rows, cache friendly.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aik = ap[i * k + kk];
      if (aik == 0.0f) continue;
      const float* brow = bp + kk * n;
      float* crow = cp + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Tensor matmul_transpose_a(const Tensor& a, const Tensor& b) {
  require_matrix(a, "matmul_transpose_a a");
  require_matrix(b, "matmul_transpose_a b");
  const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  EUGENE_REQUIRE(b.dim(0) == k, "matmul_transpose_a: inner dimensions disagree");
  Tensor c({m, n});
  const float* ap = a.raw();
  const float* bp = b.raw();
  float* cp = c.raw();
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* arow = ap + kk * m;
    const float* brow = bp + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float aki = arow[i];
      if (aki == 0.0f) continue;
      float* crow = cp + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aki * brow[j];
    }
  }
  return c;
}

Tensor matmul_transpose_b(const Tensor& a, const Tensor& b) {
  require_matrix(a, "matmul_transpose_b a");
  require_matrix(b, "matmul_transpose_b b");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  EUGENE_REQUIRE(b.dim(1) == k, "matmul_transpose_b: inner dimensions disagree");
  Tensor c({m, n});
  const float* ap = a.raw();
  const float* bp = b.raw();
  float* cp = c.raw();
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = ap + i * k;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = bp + j * k;
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      cp[i * n + j] = acc;
    }
  }
  return c;
}

Tensor im2col(const Tensor& image_chw, const Conv2dGeometry& g) {
  EUGENE_REQUIRE(image_chw.rank() == 3, "im2col: expected CHW image");
  EUGENE_REQUIRE(image_chw.dim(0) == g.in_channels && image_chw.dim(1) == g.in_height &&
                     image_chw.dim(2) == g.in_width,
                 "im2col: image does not match geometry");
  const std::size_t oh = g.out_height(), ow = g.out_width();
  const std::size_t patch = g.in_channels * g.kernel * g.kernel;
  Tensor cols({patch, oh * ow});
  const float* img = image_chw.raw();
  float* out = cols.raw();
  const std::size_t hw = g.in_height * g.in_width;
  for (std::size_t c = 0; c < g.in_channels; ++c) {
    for (std::size_t ky = 0; ky < g.kernel; ++ky) {
      for (std::size_t kx = 0; kx < g.kernel; ++kx) {
        const std::size_t row = (c * g.kernel + ky) * g.kernel + kx;
        float* dst = out + row * oh * ow;
        for (std::size_t oy = 0; oy < oh; ++oy) {
          // Signed arithmetic: padded coordinates can be negative.
          const long long iy = static_cast<long long>(oy * g.stride + ky) -
                               static_cast<long long>(g.padding);
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const long long ix = static_cast<long long>(ox * g.stride + kx) -
                                 static_cast<long long>(g.padding);
            float v = 0.0f;
            if (iy >= 0 && iy < static_cast<long long>(g.in_height) && ix >= 0 &&
                ix < static_cast<long long>(g.in_width)) {
              v = img[c * hw + static_cast<std::size_t>(iy) * g.in_width +
                      static_cast<std::size_t>(ix)];
            }
            dst[oy * ow + ox] = v;
          }
        }
      }
    }
  }
  return cols;
}

Tensor col2im(const Tensor& cols, const Conv2dGeometry& g) {
  const std::size_t oh = g.out_height(), ow = g.out_width();
  const std::size_t patch = g.in_channels * g.kernel * g.kernel;
  EUGENE_REQUIRE(cols.rank() == 2 && cols.dim(0) == patch && cols.dim(1) == oh * ow,
                 "col2im: cols shape does not match geometry");
  Tensor image({g.in_channels, g.in_height, g.in_width});
  const float* src = cols.raw();
  float* img = image.raw();
  const std::size_t hw = g.in_height * g.in_width;
  for (std::size_t c = 0; c < g.in_channels; ++c) {
    for (std::size_t ky = 0; ky < g.kernel; ++ky) {
      for (std::size_t kx = 0; kx < g.kernel; ++kx) {
        const std::size_t row = (c * g.kernel + ky) * g.kernel + kx;
        const float* srow = src + row * oh * ow;
        for (std::size_t oy = 0; oy < oh; ++oy) {
          const long long iy = static_cast<long long>(oy * g.stride + ky) -
                               static_cast<long long>(g.padding);
          if (iy < 0 || iy >= static_cast<long long>(g.in_height)) continue;
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const long long ix = static_cast<long long>(ox * g.stride + kx) -
                                 static_cast<long long>(g.padding);
            if (ix < 0 || ix >= static_cast<long long>(g.in_width)) continue;
            img[c * hw + static_cast<std::size_t>(iy) * g.in_width +
                static_cast<std::size_t>(ix)] += srow[oy * ow + ox];
          }
        }
      }
    }
  }
  return image;
}

Tensor conv2d(const Tensor& image_chw, const Tensor& weights, const Tensor& bias,
              const Conv2dGeometry& g) {
  const std::size_t patch = g.in_channels * g.kernel * g.kernel;
  EUGENE_REQUIRE(weights.rank() == 2 && weights.dim(0) == g.out_channels &&
                     weights.dim(1) == patch,
                 "conv2d: weights shape mismatch");
  EUGENE_REQUIRE(bias.rank() == 1 && bias.dim(0) == g.out_channels,
                 "conv2d: bias shape mismatch");
  const Tensor cols = im2col(image_chw, g);
  Tensor out = matmul(weights, cols);
  const std::size_t oh = g.out_height(), ow = g.out_width();
  float* op = out.raw();
  for (std::size_t oc = 0; oc < g.out_channels; ++oc) {
    const float b = bias.at(oc);
    for (std::size_t i = 0; i < oh * ow; ++i) op[oc * oh * ow + i] += b;
  }
  return out.reshaped({g.out_channels, oh, ow});
}

Tensor conv2d_direct(const Tensor& image_chw, const Tensor& weights, const Tensor& bias,
                     const Conv2dGeometry& g) {
  const std::size_t patch = g.in_channels * g.kernel * g.kernel;
  EUGENE_REQUIRE(weights.rank() == 2 && weights.dim(0) == g.out_channels &&
                     weights.dim(1) == patch,
                 "conv2d_direct: weights shape mismatch");
  const std::size_t oh = g.out_height(), ow = g.out_width();
  Tensor out({g.out_channels, oh, ow});
  const float* img = image_chw.raw();
  const std::size_t hw = g.in_height * g.in_width;
  for (std::size_t oc = 0; oc < g.out_channels; ++oc) {
    const float* wrow = weights.raw() + oc * patch;
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        float acc = bias.at(oc);
        for (std::size_t c = 0; c < g.in_channels; ++c) {
          for (std::size_t ky = 0; ky < g.kernel; ++ky) {
            const long long iy = static_cast<long long>(oy * g.stride + ky) -
                                 static_cast<long long>(g.padding);
            if (iy < 0 || iy >= static_cast<long long>(g.in_height)) continue;
            for (std::size_t kx = 0; kx < g.kernel; ++kx) {
              const long long ix = static_cast<long long>(ox * g.stride + kx) -
                                   static_cast<long long>(g.padding);
              if (ix < 0 || ix >= static_cast<long long>(g.in_width)) continue;
              acc += wrow[(c * g.kernel + ky) * g.kernel + kx] *
                     img[c * hw + static_cast<std::size_t>(iy) * g.in_width +
                         static_cast<std::size_t>(ix)];
            }
          }
        }
        out.at(oc, oy, ox) = acc;
      }
    }
  }
  return out;
}

Tensor max_pool2(const Tensor& image_chw) {
  EUGENE_REQUIRE(image_chw.rank() == 3, "max_pool2: expected CHW image");
  const std::size_t c = image_chw.dim(0);
  const std::size_t oh = image_chw.dim(1) / 2;
  const std::size_t ow = image_chw.dim(2) / 2;
  EUGENE_REQUIRE(oh > 0 && ow > 0, "max_pool2: image too small");
  Tensor out({c, oh, ow});
  for (std::size_t ch = 0; ch < c; ++ch)
    for (std::size_t y = 0; y < oh; ++y)
      for (std::size_t x = 0; x < ow; ++x)
        out.at(ch, y, x) = std::max(
            std::max(image_chw.at(ch, 2 * y, 2 * x), image_chw.at(ch, 2 * y, 2 * x + 1)),
            std::max(image_chw.at(ch, 2 * y + 1, 2 * x),
                     image_chw.at(ch, 2 * y + 1, 2 * x + 1)));
  return out;
}

Tensor global_avg_pool(const Tensor& image_chw) {
  EUGENE_REQUIRE(image_chw.rank() == 3, "global_avg_pool: expected CHW image");
  const std::size_t c = image_chw.dim(0);
  const std::size_t hw = image_chw.dim(1) * image_chw.dim(2);
  EUGENE_REQUIRE(hw > 0, "global_avg_pool: empty image plane");
  Tensor out({c});
  const float* img = image_chw.raw();
  for (std::size_t ch = 0; ch < c; ++ch) {
    float acc = 0.0f;
    for (std::size_t i = 0; i < hw; ++i) acc += img[ch * hw + i];
    out.at(ch) = acc / static_cast<float>(hw);
  }
  return out;
}

}  // namespace eugene::tensor
