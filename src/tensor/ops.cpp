#include "tensor/ops.hpp"

#include <algorithm>
#include <cstring>

namespace eugene::tensor {
namespace {

void require_matrix(const Tensor& t, const char* name) {
  EUGENE_REQUIRE(t.rank() == 2, std::string(name) + ": expected rank-2 tensor, got " +
                                    shape_to_string(t.shape()));
}

void require_out_shape(const Tensor& out, std::size_t m, std::size_t n,
                       const char* name) {
  EUGENE_REQUIRE(out.rank() == 2 && out.dim(0) == m && out.dim(1) == n,
                 std::string(name) + ": output tensor has the wrong shape");
}

}  // namespace

// The matmul family delegates to the tiled GEMM core (gemm.hpp). Note the
// old scalar loops' `if (a == 0.0f) continue;` fast path is gone for good:
// it silently turned 0·NaN / 0·inf into 0 (Matmul.NaNInfPropagation pins
// the IEEE behavior) and mispredicted once per inner iteration on dense
// data.

void matmul_into(const Tensor& a, const Tensor& b, Tensor& out,
                 float* workspace) {
  require_matrix(a, "matmul a");
  require_matrix(b, "matmul b");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  EUGENE_REQUIRE(b.dim(0) == k, "matmul: inner dimensions disagree");
  require_out_shape(out, m, n, "matmul_into");
  gemm(m, n, k, a.raw(), k, false, b.raw(), n, false, 0.0f, out.raw(), n,
       workspace);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  require_matrix(a, "matmul a");
  require_matrix(b, "matmul b");
  Tensor c({a.dim(0), b.dim(1)});
  matmul_into(a, b, c);
  return c;
}

void matmul_transpose_a_into(const Tensor& a, const Tensor& b, Tensor& out,
                             float* workspace) {
  require_matrix(a, "matmul_transpose_a a");
  require_matrix(b, "matmul_transpose_a b");
  const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  EUGENE_REQUIRE(b.dim(0) == k, "matmul_transpose_a: inner dimensions disagree");
  require_out_shape(out, m, n, "matmul_transpose_a_into");
  gemm(m, n, k, a.raw(), m, true, b.raw(), n, false, 0.0f, out.raw(), n,
       workspace);
}

Tensor matmul_transpose_a(const Tensor& a, const Tensor& b) {
  require_matrix(a, "matmul_transpose_a a");
  require_matrix(b, "matmul_transpose_a b");
  Tensor c({a.dim(1), b.dim(1)});
  matmul_transpose_a_into(a, b, c);
  return c;
}

void matmul_transpose_b_into(const Tensor& a, const Tensor& b, Tensor& out,
                             float* workspace) {
  require_matrix(a, "matmul_transpose_b a");
  require_matrix(b, "matmul_transpose_b b");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  EUGENE_REQUIRE(b.dim(1) == k, "matmul_transpose_b: inner dimensions disagree");
  require_out_shape(out, m, n, "matmul_transpose_b_into");
  gemm(m, n, k, a.raw(), k, false, b.raw(), k, true, 0.0f, out.raw(), n,
       workspace);
}

Tensor matmul_transpose_b(const Tensor& a, const Tensor& b) {
  require_matrix(a, "matmul_transpose_b a");
  require_matrix(b, "matmul_transpose_b b");
  Tensor c({a.dim(0), b.dim(0)});
  matmul_transpose_b_into(a, b, c);
  return c;
}

void im2col_strided_into(const float* img, std::size_t chan_stride,
                         const Conv2dGeometry& g, float* cols,
                         std::size_t cols_ld, std::size_t col0) {
  const std::size_t oh = g.out_height(), ow = g.out_width();
  const long long ih = static_cast<long long>(g.in_height);
  const long long iw = static_cast<long long>(g.in_width);
  for (std::size_t c = 0; c < g.in_channels; ++c) {
    const float* plane = img + c * chan_stride;
    for (std::size_t ky = 0; ky < g.kernel; ++ky) {
      for (std::size_t kx = 0; kx < g.kernel; ++kx) {
        const std::size_t row = (c * g.kernel + ky) * g.kernel + kx;
        float* dst = cols + row * cols_ld + col0;
        if (g.stride == 1) {
          // All bounds are loop-invariant at stride 1 (signed: padded
          // coordinates can be negative): rows oy ∈ [lo_y, hi_y) read image
          // row oy+dy, columns ox ∈ [lo, hi) read column ox+dx; everything
          // outside is padding, zero-filled in bulk.
          const long long dy = static_cast<long long>(ky) -
                               static_cast<long long>(g.padding);
          const long long dx = static_cast<long long>(kx) -
                               static_cast<long long>(g.padding);
          const long long ohs = static_cast<long long>(oh);
          const long long ows = static_cast<long long>(ow);
          const long long lo_y = std::min(ohs, std::max<long long>(0, -dy));
          const long long hi_y = std::max(lo_y, std::min(ohs, ih - dy));
          const long long lo = std::min(ows, std::max<long long>(0, -dx));
          const long long hi = std::max(lo, std::min(ows, iw - dx));
          std::fill_n(dst, static_cast<std::size_t>(lo_y) * ow, 0.0f);
          std::fill_n(dst + hi_y * ows, static_cast<std::size_t>(ohs - hi_y) * ow,
                      0.0f);
          const float* src = plane + (lo_y + dy) * iw + lo + dx;
          float* d = dst + lo_y * ows;
          if (dx == 0 && lo == 0 && hi == ows && ows == iw) {
            // Horizontally aligned same-width rows: source and destination
            // are both contiguous across rows — one copy for the whole band.
            std::memcpy(d, src,
                        static_cast<std::size_t>(hi_y - lo_y) * ow * sizeof(float));
          } else if (hi - lo > 16) {
            for (long long oy = lo_y; oy < hi_y; ++oy, d += ows, src += iw) {
              for (long long x = 0; x < lo; ++x) d[x] = 0.0f;
              std::memcpy(d + lo, src,
                          static_cast<std::size_t>(hi - lo) * sizeof(float));
              for (long long x = hi; x < ows; ++x) d[x] = 0.0f;
            }
          } else {
            // Short rows: an out-of-line memcpy call costs more than the
            // copy itself (small feature maps hit this ~1k times per conv).
            for (long long oy = lo_y; oy < hi_y; ++oy, d += ows, src += iw) {
              for (long long x = 0; x < lo; ++x) d[x] = 0.0f;
              for (long long x = 0; x < hi - lo; ++x) d[lo + x] = src[x];
              for (long long x = hi; x < ows; ++x) d[x] = 0.0f;
            }
          }
        } else {
          for (std::size_t oy = 0; oy < oh; ++oy, dst += ow) {
            const long long iy = static_cast<long long>(oy * g.stride + ky) -
                                 static_cast<long long>(g.padding);
            if (iy < 0 || iy >= ih) {
              std::fill_n(dst, ow, 0.0f);
              continue;
            }
            const float* srow =
                plane + static_cast<std::size_t>(iy) * g.in_width;
            for (std::size_t ox = 0; ox < ow; ++ox) {
              const long long ix = static_cast<long long>(ox * g.stride + kx) -
                                   static_cast<long long>(g.padding);
              dst[ox] = (ix >= 0 && ix < iw)
                            ? srow[static_cast<std::size_t>(ix)]
                            : 0.0f;
            }
          }
        }
      }
    }
  }
}

void im2col_into(const Tensor& image_chw, const Conv2dGeometry& g,
                 float* cols) {
  EUGENE_REQUIRE(image_chw.rank() == 3, "im2col: expected CHW image");
  EUGENE_REQUIRE(image_chw.dim(0) == g.in_channels && image_chw.dim(1) == g.in_height &&
                     image_chw.dim(2) == g.in_width,
                 "im2col: image does not match geometry");
  const std::size_t hw = g.in_height * g.in_width;
  im2col_strided_into(image_chw.raw(), hw, g, cols,
                      g.out_height() * g.out_width(), 0);
}

Tensor im2col(const Tensor& image_chw, const Conv2dGeometry& g) {
  const std::size_t oh = g.out_height(), ow = g.out_width();
  const std::size_t patch = g.in_channels * g.kernel * g.kernel;
  Tensor cols({patch, oh * ow});
  im2col_into(image_chw, g, cols.raw());
  return cols;
}

Tensor col2im(const Tensor& cols, const Conv2dGeometry& g) {
  const std::size_t oh = g.out_height(), ow = g.out_width();
  const std::size_t patch = g.in_channels * g.kernel * g.kernel;
  EUGENE_REQUIRE(cols.rank() == 2 && cols.dim(0) == patch && cols.dim(1) == oh * ow,
                 "col2im: cols shape does not match geometry");
  Tensor image({g.in_channels, g.in_height, g.in_width});
  const float* src = cols.raw();
  float* img = image.raw();
  const std::size_t hw = g.in_height * g.in_width;
  for (std::size_t c = 0; c < g.in_channels; ++c) {
    for (std::size_t ky = 0; ky < g.kernel; ++ky) {
      for (std::size_t kx = 0; kx < g.kernel; ++kx) {
        const std::size_t row = (c * g.kernel + ky) * g.kernel + kx;
        const float* srow = src + row * oh * ow;
        for (std::size_t oy = 0; oy < oh; ++oy) {
          const long long iy = static_cast<long long>(oy * g.stride + ky) -
                               static_cast<long long>(g.padding);
          if (iy < 0 || iy >= static_cast<long long>(g.in_height)) continue;
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const long long ix = static_cast<long long>(ox * g.stride + kx) -
                                 static_cast<long long>(g.padding);
            if (ix < 0 || ix >= static_cast<long long>(g.in_width)) continue;
            img[c * hw + static_cast<std::size_t>(iy) * g.in_width +
                static_cast<std::size_t>(ix)] += srow[oy * ow + ox];
          }
        }
      }
    }
  }
  return image;
}

Tensor conv2d(const Tensor& image_chw, const Tensor& weights, const Tensor& bias,
              const Conv2dGeometry& g) {
  const std::size_t patch = g.in_channels * g.kernel * g.kernel;
  EUGENE_REQUIRE(weights.rank() == 2 && weights.dim(0) == g.out_channels &&
                     weights.dim(1) == patch,
                 "conv2d: weights shape mismatch");
  EUGENE_REQUIRE(bias.rank() == 1 && bias.dim(0) == g.out_channels,
                 "conv2d: bias shape mismatch");
  const Tensor cols = im2col(image_chw, g);
  Tensor out = matmul(weights, cols);
  const std::size_t oh = g.out_height(), ow = g.out_width();
  float* op = out.raw();
  for (std::size_t oc = 0; oc < g.out_channels; ++oc) {
    const float b = bias.at(oc);
    for (std::size_t i = 0; i < oh * ow; ++i) op[oc * oh * ow + i] += b;
  }
  return out.reshaped({g.out_channels, oh, ow});
}

Tensor conv2d_direct(const Tensor& image_chw, const Tensor& weights, const Tensor& bias,
                     const Conv2dGeometry& g) {
  const std::size_t patch = g.in_channels * g.kernel * g.kernel;
  EUGENE_REQUIRE(weights.rank() == 2 && weights.dim(0) == g.out_channels &&
                     weights.dim(1) == patch,
                 "conv2d_direct: weights shape mismatch");
  const std::size_t oh = g.out_height(), ow = g.out_width();
  Tensor out({g.out_channels, oh, ow});
  const float* img = image_chw.raw();
  const std::size_t hw = g.in_height * g.in_width;
  for (std::size_t oc = 0; oc < g.out_channels; ++oc) {
    const float* wrow = weights.raw() + oc * patch;
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        float acc = bias.at(oc);
        for (std::size_t c = 0; c < g.in_channels; ++c) {
          for (std::size_t ky = 0; ky < g.kernel; ++ky) {
            const long long iy = static_cast<long long>(oy * g.stride + ky) -
                                 static_cast<long long>(g.padding);
            if (iy < 0 || iy >= static_cast<long long>(g.in_height)) continue;
            for (std::size_t kx = 0; kx < g.kernel; ++kx) {
              const long long ix = static_cast<long long>(ox * g.stride + kx) -
                                   static_cast<long long>(g.padding);
              if (ix < 0 || ix >= static_cast<long long>(g.in_width)) continue;
              acc += wrow[(c * g.kernel + ky) * g.kernel + kx] *
                     img[c * hw + static_cast<std::size_t>(iy) * g.in_width +
                         static_cast<std::size_t>(ix)];
            }
          }
        }
        out.at(oc, oy, ox) = acc;
      }
    }
  }
  return out;
}

Tensor max_pool2(const Tensor& image_chw) {
  EUGENE_REQUIRE(image_chw.rank() == 3, "max_pool2: expected CHW image");
  const std::size_t c = image_chw.dim(0);
  const std::size_t oh = image_chw.dim(1) / 2;
  const std::size_t ow = image_chw.dim(2) / 2;
  EUGENE_REQUIRE(oh > 0 && ow > 0, "max_pool2: image too small");
  Tensor out({c, oh, ow});
  for (std::size_t ch = 0; ch < c; ++ch)
    for (std::size_t y = 0; y < oh; ++y)
      for (std::size_t x = 0; x < ow; ++x)
        out.at(ch, y, x) = std::max(
            std::max(image_chw.at(ch, 2 * y, 2 * x), image_chw.at(ch, 2 * y, 2 * x + 1)),
            std::max(image_chw.at(ch, 2 * y + 1, 2 * x),
                     image_chw.at(ch, 2 * y + 1, 2 * x + 1)));
  return out;
}

Tensor global_avg_pool(const Tensor& image_chw) {
  EUGENE_REQUIRE(image_chw.rank() == 3, "global_avg_pool: expected CHW image");
  const std::size_t c = image_chw.dim(0);
  const std::size_t hw = image_chw.dim(1) * image_chw.dim(2);
  EUGENE_REQUIRE(hw > 0, "global_avg_pool: empty image plane");
  Tensor out({c});
  const float* img = image_chw.raw();
  for (std::size_t ch = 0; ch < c; ++ch) {
    float acc = 0.0f;
    for (std::size_t i = 0; i < hw; ++i) acc += img[ch * hw + i];
    out.at(ch) = acc / static_cast<float>(hw);
  }
  return out;
}

}  // namespace eugene::tensor
