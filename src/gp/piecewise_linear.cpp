#include "gp/piecewise_linear.hpp"

#include "common/error.hpp"

namespace eugene::gp {

PiecewiseLinear::PiecewiseLinear(std::vector<double> knot_values, double lo, double hi)
    : knots_(std::move(knot_values)), lo_(lo), hi_(hi) {
  EUGENE_REQUIRE(knots_.size() >= 2, "PiecewiseLinear: need at least two knots");
  EUGENE_REQUIRE(lo < hi, "PiecewiseLinear: lo must be < hi");
}

PiecewiseLinear PiecewiseLinear::from_function(const std::function<double(double)>& fn,
                                               std::size_t segments, double lo, double hi) {
  EUGENE_REQUIRE(segments >= 1, "PiecewiseLinear: need at least one segment");
  std::vector<double> values(segments + 1);
  for (std::size_t i = 0; i <= segments; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(segments);
    values[i] = fn(x);
  }
  return PiecewiseLinear(std::move(values), lo, hi);
}

double PiecewiseLinear::operator()(double x) const {
  EUGENE_REQUIRE(!knots_.empty(), "PiecewiseLinear: evaluated before construction");
  if (x <= lo_) return knots_.front();
  if (x >= hi_) return knots_.back();
  const double t = (x - lo_) / (hi_ - lo_) * static_cast<double>(knots_.size() - 1);
  const std::size_t seg = static_cast<std::size_t>(t);
  const double frac = t - static_cast<double>(seg);
  if (seg + 1 >= knots_.size()) return knots_.back();
  return knots_[seg] * (1.0 - frac) + knots_[seg + 1] * frac;
}

}  // namespace eugene::gp
