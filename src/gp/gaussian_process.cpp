#include "gp/gaussian_process.hpp"

#include <cmath>
#include <numeric>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "tensor/linalg.hpp"

namespace eugene::gp {

using tensor::Tensor;

double GaussianProcess1D::kernel(double a, double b, double length_scale) const {
  const double d = a - b;
  return signal_variance_ * std::exp(-d * d / (2.0 * length_scale * length_scale));
}

Tensor GaussianProcess1D::kernel_matrix(double length_scale) const {
  const std::size_t n = x_.size();
  Tensor k({n, n});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = kernel(x_[i], x_[j], length_scale);
      k.at(i, j) = static_cast<float>(v);
      k.at(j, i) = static_cast<float>(v);
    }
    k.at(i, i) += static_cast<float>(noise_variance_);
  }
  return k;
}

void GaussianProcess1D::fit(std::span<const double> x, std::span<const double> y,
                            const GpConfig& config) {
  EUGENE_REQUIRE(x.size() == y.size(), "GP fit: x/y size mismatch");
  EUGENE_REQUIRE(x.size() >= 2, "GP fit: need at least two points");
  EUGENE_REQUIRE(!config.length_scale_grid.empty(), "GP fit: empty length-scale grid");

  signal_variance_ = config.signal_variance;
  noise_variance_ = config.noise_variance;

  // Subsample large training sets: kernel solves are O(N³).
  if (x.size() > config.max_train_points) {
    std::vector<std::size_t> idx(x.size());
    std::iota(idx.begin(), idx.end(), 0);
    Rng rng(config.subsample_seed);
    rng.shuffle(idx);
    idx.resize(config.max_train_points);
    x_.clear();
    y_.clear();
    for (std::size_t i : idx) {
      x_.push_back(x[i]);
      y_.push_back(y[i]);
    }
  } else {
    x_.assign(x.begin(), x.end());
    y_.assign(y.begin(), y.end());
  }

  const std::size_t n = x_.size();
  double best_lml = -std::numeric_limits<double>::infinity();
  for (double ls : config.length_scale_grid) {
    const Tensor k = kernel_matrix(ls);
    Tensor chol;
    try {
      chol = tensor::cholesky(k);
    } catch (const Error&) {
      continue;  // numerically unsuitable length scale
    }
    const std::vector<double> tmp = tensor::solve_lower(chol, y_);
    const std::vector<double> alpha = tensor::solve_lower_transpose(chol, tmp);
    // log p(y|X) = −½ yᵀα − Σ log L_ii − (n/2)·log 2π
    double lml = 0.0;
    for (std::size_t i = 0; i < n; ++i) lml -= 0.5 * y_[i] * alpha[i];
    for (std::size_t i = 0; i < n; ++i) lml -= std::log(static_cast<double>(chol.at(i, i)));
    lml -= 0.5 * static_cast<double>(n) * std::log(2.0 * 3.14159265358979);
    if (lml > best_lml) {
      best_lml = lml;
      length_scale_ = ls;
      chol_ = chol;
      alpha_ = alpha;
    }
  }
  EUGENE_CHECK(best_lml > -std::numeric_limits<double>::infinity())
      << "GP fit: no length scale produced a positive-definite kernel";
  log_marginal_likelihood_ = best_lml;
}

GpPrediction GaussianProcess1D::predict(double x) const {
  EUGENE_REQUIRE(fitted(), "GP predict before fit");
  const std::size_t n = x_.size();
  std::vector<double> kstar(n);
  for (std::size_t i = 0; i < n; ++i) kstar[i] = kernel(x, x_[i], length_scale_);

  GpPrediction out;
  for (std::size_t i = 0; i < n; ++i) out.mean += kstar[i] * alpha_[i];

  // var = k(x,x) − vᵀv with v = L⁻¹·k*.
  const std::vector<double> v = tensor::solve_lower(chol_, kstar);
  double var = kernel(x, x, length_scale_);
  for (double vi : v) var -= vi * vi;
  out.stddev = std::sqrt(std::max(var, 0.0));
  return out;
}

}  // namespace eugene::gp
