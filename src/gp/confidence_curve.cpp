#include "gp/confidence_curve.hpp"

#include "common/stats.hpp"

namespace eugene::gp {

std::size_t ConfidenceCurveModel::pair_index(std::size_t from_stage,
                                             std::size_t to_stage) const {
  EUGENE_REQUIRE(from_stage < to_stage && to_stage < num_stages_,
                 "ConfidenceCurveModel: invalid stage pair");
  // Dense index over ordered pairs (l, l'), l < l'.
  std::size_t idx = 0;
  for (std::size_t f = 0; f < from_stage; ++f) idx += num_stages_ - 1 - f;
  return idx + (to_stage - from_stage - 1);
}

void ConfidenceCurveModel::fit(const calib::StagedEvaluation& train_eval,
                               const GpConfig& config, std::size_t grid_segments) {
  EUGENE_REQUIRE(train_eval.num_stages() >= 2,
                 "ConfidenceCurveModel: need at least two stages");
  EUGENE_REQUIRE(train_eval.num_samples() >= 2,
                 "ConfidenceCurveModel: need at least two samples");
  num_stages_ = train_eval.num_stages();

  const std::size_t num_pairs = num_stages_ * (num_stages_ - 1) / 2;
  gps_.assign(num_pairs, GaussianProcess1D{});
  approximations_.assign(num_pairs, PiecewiseLinear{});
  priors_.assign(num_stages_, 0.0);

  for (std::size_t s = 0; s < num_stages_; ++s) {
    const auto conf = train_eval.confidence(s);
    double sum = 0.0;
    for (float c : conf) sum += c;
    priors_[s] = sum / static_cast<double>(conf.size());
  }

  for (std::size_t from = 0; from < num_stages_; ++from) {
    const auto x_conf = train_eval.confidence(from);
    std::vector<double> x(x_conf.begin(), x_conf.end());
    for (std::size_t to = from + 1; to < num_stages_; ++to) {
      const auto y_conf = train_eval.confidence(to);
      std::vector<double> y(y_conf.begin(), y_conf.end());
      const std::size_t idx = pair_index(from, to);
      gps_[idx].fit(x, y, config);
      const GaussianProcess1D& gp = gps_[idx];
      approximations_[idx] = PiecewiseLinear::from_function(
          [&gp](double c) { return gp.predict(c).mean; }, grid_segments, 0.0, 1.0);
    }
  }
}

void ConfidenceCurveModel::restore(std::size_t num_stages,
                                   std::vector<PiecewiseLinear> approximations,
                                   std::vector<double> priors) {
  EUGENE_REQUIRE(num_stages >= 2, "ConfidenceCurveModel::restore: need >= 2 stages");
  const std::size_t num_pairs = num_stages * (num_stages - 1) / 2;
  EUGENE_REQUIRE(approximations.size() == num_pairs,
                 "ConfidenceCurveModel::restore: approximation count mismatch");
  EUGENE_REQUIRE(priors.size() == num_stages,
                 "ConfidenceCurveModel::restore: prior count mismatch");
  for (const auto& a : approximations)
    EUGENE_REQUIRE(!a.empty(), "ConfidenceCurveModel::restore: empty approximation");
  num_stages_ = num_stages;
  approximations_ = std::move(approximations);
  priors_ = std::move(priors);
  gps_.clear();  // exact GPs are not persisted; has_exact_gp() goes false
}

const PiecewiseLinear& ConfidenceCurveModel::approximation(std::size_t from_stage,
                                                           std::size_t to_stage) const {
  EUGENE_REQUIRE(fitted(), "ConfidenceCurveModel::approximation before fit/restore");
  return approximations_[pair_index(from_stage, to_stage)];
}

double ConfidenceCurveModel::predict(std::size_t from_stage, std::size_t to_stage,
                                     double confidence) const {
  EUGENE_REQUIRE(fitted(), "ConfidenceCurveModel::predict before fit");
  const double raw = approximations_[pair_index(from_stage, to_stage)](confidence);
  return clamp(raw, 0.0, 1.0);
}

GpPrediction ConfidenceCurveModel::predict_gp(std::size_t from_stage, std::size_t to_stage,
                                              double confidence) const {
  EUGENE_REQUIRE(fitted(), "ConfidenceCurveModel::predict_gp before fit");
  EUGENE_REQUIRE(has_exact_gp(),
                 "ConfidenceCurveModel::predict_gp: exact GPs were not restored from "
                 "the snapshot; refit to use the slow path");
  return gps_[pair_index(from_stage, to_stage)].predict(confidence);
}

double ConfidenceCurveModel::prior_confidence(std::size_t stage) const {
  EUGENE_REQUIRE(stage < num_stages_, "prior_confidence: stage out of range");
  return priors_[stage];
}

CurveFitQuality ConfidenceCurveModel::evaluate(const calib::StagedEvaluation& test_eval,
                                               std::size_t from_stage,
                                               std::size_t to_stage,
                                               bool use_piecewise) const {
  EUGENE_REQUIRE(test_eval.num_stages() == num_stages_,
                 "ConfidenceCurveModel::evaluate: stage count mismatch");
  const auto from_conf = test_eval.confidence(from_stage);
  const auto to_conf = test_eval.confidence(to_stage);
  std::vector<double> truth(to_conf.begin(), to_conf.end());
  std::vector<double> pred(from_conf.size());
  for (std::size_t i = 0; i < from_conf.size(); ++i) {
    pred[i] = use_piecewise ? predict(from_stage, to_stage, from_conf[i])
                            : clamp(predict_gp(from_stage, to_stage, from_conf[i]).mean,
                                    0.0, 1.0);
  }
  CurveFitQuality q;
  q.mae = mean_absolute_error(truth, pred);
  q.r_squared = r_squared(truth, pred);
  return q;
}

}  // namespace eugene::gp
