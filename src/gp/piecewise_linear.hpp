// Piecewise-linear function on a uniform grid over a bounded domain.
//
// The paper's runtime trick (Section III-B): Gaussian-process inference is
// too slow for a scheduler's inner loop, but its inputs are confidences in
// [0, 1], so the GP is profiled at {0, 1/M, …, 1} and replaced by linear
// interpolation between those profiling points.
#pragma once

#include <functional>
#include <vector>

namespace eugene::gp {

/// Linear interpolant over equally spaced knots on [lo, hi]; queries outside
/// the domain clamp to the boundary values.
class PiecewiseLinear {
 public:
  PiecewiseLinear() = default;

  /// Samples `fn` at segments+1 uniformly spaced knots.
  static PiecewiseLinear from_function(const std::function<double(double)>& fn,
                                       std::size_t segments, double lo = 0.0,
                                       double hi = 1.0);

  /// Builds directly from knot values (knots.size() >= 2).
  PiecewiseLinear(std::vector<double> knot_values, double lo, double hi);

  double operator()(double x) const;

  bool empty() const { return knots_.empty(); }
  std::size_t segments() const { return knots_.empty() ? 0 : knots_.size() - 1; }
  const std::vector<double>& knot_values() const { return knots_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }

 private:
  std::vector<double> knots_;
  double lo_ = 0.0;
  double hi_ = 1.0;
};

}  // namespace eugene::gp
