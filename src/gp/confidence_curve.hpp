// Dynamic confidence-curve model (paper Section III-B, Table III).
//
// For an L-stage model, fits one GP per ordered stage pair (l → l'), l < l',
// mapping "confidence observed at stage l" to "confidence expected at stage
// l'". Each GP is profiled into a piecewise-linear function for O(1) runtime
// queries by the scheduler. Also records the training-set mean confidence
// per stage as the cold-start prior for tasks with no executed stages yet.
#pragma once

#include <optional>

#include "calib/evaluation.hpp"
#include "gp/gaussian_process.hpp"
#include "gp/piecewise_linear.hpp"

namespace eugene::gp {

/// MAE and R² of a curve predictor on held-out data (Table III columns).
struct CurveFitQuality {
  double mae = 0.0;
  double r_squared = 0.0;
};

/// All (l → l') confidence regressions for one staged model.
class ConfidenceCurveModel {
 public:
  /// Fits GPs and their piecewise-linear approximations from a *training*
  /// evaluation table. `grid_segments` is M in the paper's {0,1/M,…,1}
  /// profiling grid.
  void fit(const calib::StagedEvaluation& train_eval, const GpConfig& config = {},
           std::size_t grid_segments = 10);

  std::size_t num_stages() const { return num_stages_; }
  bool fitted() const { return num_stages_ > 0; }

  /// True when the exact GPs are in memory (after fit()). A model restored
  /// from a snapshot keeps only the piecewise-linear profiles and priors —
  /// everything the serving path queries — so predict_gp/evaluate are
  /// unavailable until the next fit().
  bool has_exact_gp() const { return !gps_.empty(); }

  /// Rebuilds the serving-path state from snapshotted artifacts: the
  /// piecewise-linear profile per ordered stage pair (pair_index order) and
  /// the per-stage cold-start priors. Validates counts and non-emptiness;
  /// throws eugene::InvalidArgument on mismatch.
  void restore(std::size_t num_stages, std::vector<PiecewiseLinear> approximations,
               std::vector<double> priors);

  /// The piecewise-linear profile for (from → to); what a snapshot persists.
  const PiecewiseLinear& approximation(std::size_t from_stage, std::size_t to_stage) const;

  /// Per-stage cold-start priors (parallel to stages).
  const std::vector<double>& priors() const { return priors_; }

  /// Fast path: piecewise-linear approximation of GP(from→to).
  double predict(std::size_t from_stage, std::size_t to_stage, double confidence) const;

  /// Exact GP posterior (slow path, used for evaluation and by callers that
  /// want the uncertainty band).
  GpPrediction predict_gp(std::size_t from_stage, std::size_t to_stage,
                          double confidence) const;

  /// Cold-start prior: mean training confidence at `stage` (paper: "At the
  /// beginning, predicted confidence ... is based on overall statistics
  /// computed from training data").
  double prior_confidence(std::size_t stage) const;

  /// Table III: evaluates GP(from→to) on a held-out evaluation table.
  /// `use_piecewise` selects the runtime approximation instead of the exact GP.
  CurveFitQuality evaluate(const calib::StagedEvaluation& test_eval,
                           std::size_t from_stage, std::size_t to_stage,
                           bool use_piecewise = false) const;

 private:
  std::size_t pair_index(std::size_t from_stage, std::size_t to_stage) const;

  std::size_t num_stages_ = 0;
  std::vector<GaussianProcess1D> gps_;         ///< indexed by pair_index
  std::vector<PiecewiseLinear> approximations_;
  std::vector<double> priors_;
};

}  // namespace eugene::gp
