// One-dimensional Gaussian-process regression with an RBF kernel.
//
// The paper predicts a task's confidence at future stages from confidence at
// executed stages with GP regression (Section III-B), chosen because it is a
// strong regressor whose Gaussian posterior yields both a mean and a
// confidence interval. Inputs here are bounded confidences in [0, 1].
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace eugene::gp {

/// GP hyperparameters and fitting knobs.
struct GpConfig {
  double signal_variance = 1.0;   ///< σ_f² of the RBF kernel
  double noise_variance = 0.01;   ///< σ_n² added to the diagonal
  /// Candidate RBF length scales; the one maximizing the log marginal
  /// likelihood is kept.
  std::vector<double> length_scale_grid = {0.05, 0.1, 0.2, 0.4};
  /// Training sets larger than this are subsampled (GP fitting is O(N³)).
  std::size_t max_train_points = 400;
  std::uint64_t subsample_seed = 5;
};

/// Posterior at one query point.
struct GpPrediction {
  double mean = 0.0;
  double stddev = 0.0;
};

/// Exact GP regression on scalar inputs.
class GaussianProcess1D {
 public:
  /// Fits the GP to (x, y) pairs, selecting the best length scale from the
  /// config grid by log marginal likelihood.
  void fit(std::span<const double> x, std::span<const double> y,
           const GpConfig& config = {});

  /// Posterior mean and standard deviation at `x`. Requires fit().
  GpPrediction predict(double x) const;

  bool fitted() const { return !x_.empty(); }
  double length_scale() const { return length_scale_; }
  double log_marginal_likelihood() const { return log_marginal_likelihood_; }
  std::size_t train_size() const { return x_.size(); }

 private:
  /// Builds K + σ_n²·I for the stored points at a given length scale.
  tensor::Tensor kernel_matrix(double length_scale) const;
  double kernel(double a, double b, double length_scale) const;

  std::vector<double> x_;
  std::vector<double> y_;
  std::vector<double> alpha_;  ///< K⁻¹·y
  tensor::Tensor chol_;        ///< Cholesky factor of K
  double length_scale_ = 0.2;
  double signal_variance_ = 1.0;
  double noise_variance_ = 0.01;
  double log_marginal_likelihood_ = 0.0;
};

}  // namespace eugene::gp
