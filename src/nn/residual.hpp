// Residual block: the building unit of the paper's three-stage ResNet
// (Fig. 3): out = relu(x + norm(conv(relu(norm(conv(x)))))).
#pragma once

#include <memory>

#include "nn/layers.hpp"

namespace eugene::nn {

/// Two 3×3 convolutions with channel normalization and an identity shortcut.
/// Input and output channel counts are equal; stage-boundary channel changes
/// are handled by transition convolutions in the staged-model builder.
class ResidualBlock final : public Layer {
 public:
  ResidualBlock(std::size_t channels, std::size_t height, std::size_t width, Rng& rng);

  tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  BatchedView forward_batch(const BatchedView& input, ScratchArena& arena) override;
  std::vector<ParamRef> params() override;
  double flops() const override;
  std::string name() const override;
  std::unique_ptr<Layer> clone() const override;

 private:
  /// Empty shell filled member-by-member by clone() (height/width are not
  /// stored, so a clone cannot rebuild through the public constructor).
  ResidualBlock() = default;

  std::size_t channels_ = 0;
  std::unique_ptr<Conv2d> conv1_;
  std::unique_ptr<ChannelNorm> norm1_;
  std::unique_ptr<ReLU> relu1_;
  std::unique_ptr<Conv2d> conv2_;
  std::unique_ptr<ChannelNorm> norm2_;
  tensor::Tensor pre_activation_;  ///< x + f(x), cached for the final ReLU grad
};

}  // namespace eugene::nn
