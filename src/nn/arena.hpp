// Zero-allocation inference scratch: a bump-allocator arena plus the
// feature-major batched activation view that batched stage inference
// (StagedModel::run_stage_batch) threads through Layer::forward_batch.
//
// Ownership rules (DESIGN.md §14): an arena belongs to exactly one inference
// thread — the serving front door owns one per InferenceServer, each live-
// mode worker thread owns one, and the legacy per-sample wrappers use a
// thread-local. The *owner* resets it, once per request batch, before
// packing inputs; layers only allocate. Allocations are 64-byte aligned and
// live until that reset — nothing is freed piecemeal, which is what makes
// steady-state inference allocation-free once the arena has grown to the
// model's high-water mark (Arena.SecondBatchedRunAllocatesNothing pins it).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "tensor/tensor.hpp"

namespace eugene::nn {

/// Bump allocator for float scratch. Grows geometrically while warming up;
/// reset() recycles everything and coalesces multi-block episodes into one
/// block, so a warmed arena serves any same-shaped workload without
/// touching the heap again.
class ScratchArena {
 public:
  ScratchArena() = default;
  explicit ScratchArena(std::size_t initial_floats) {
    if (initial_floats > 0) add_block(initial_floats);
  }

  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// 64-byte-aligned uninitialized scratch of `n` floats, valid until
  /// reset(). n == 0 returns a valid unique pointer into the arena.
  float* alloc(std::size_t n) {
    const std::size_t need = round_up(n);
    if (current_ >= blocks_.size() || !fits(blocks_[current_], need)) {
      if (!advance_to_fitting_block(need)) {
        add_block(std::max({need, total_capacity_, kMinBlockFloats}));
        current_ = blocks_.size() - 1;
      }
    }
    Block& blk = blocks_[current_];
    float* out = blk.aligned + blk.used;
    blk.used += need;
    used_ += need;
    if (used_ > high_water_) high_water_ = used_;
    return out;
  }

  /// alloc() plus zero fill.
  float* alloc_zeroed(std::size_t n) {
    float* out = alloc(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = 0.0f;
    return out;
  }

  /// `n` pointer-sized slots riding on the float arena (the 64-byte
  /// alignment covers any pointer type). Conv layers use this for the
  /// B-row pointer tables of tensor::gemm_rows.
  const float** alloc_ptrs(std::size_t n) {
    static_assert(sizeof(const float*) % sizeof(float) == 0);
    constexpr std::size_t kPerPtr = sizeof(const float*) / sizeof(float);
    return reinterpret_cast<const float**>(alloc(n * kPerPtr));
  }

  /// Recycles every allocation. A fragmented arena (more than one block —
  /// only possible while warming up) is coalesced into a single block of
  /// the combined capacity, so subsequent same-sized episodes fit without
  /// heap traffic.
  void reset() {
    if (blocks_.size() > 1) {
      const std::size_t total = total_capacity_;
      blocks_.clear();
      total_capacity_ = 0;
      add_block(total);
    }
    for (Block& blk : blocks_) blk.used = 0;
    current_ = 0;
    used_ = 0;
  }

  /// Floats handed out since the last reset (aligned sizes).
  std::size_t used_floats() const { return used_; }
  /// Largest used_floats() ever observed.
  std::size_t high_water_floats() const { return high_water_; }
  /// Total block capacity currently held.
  std::size_t capacity_floats() const { return total_capacity_; }
  /// Heap allocations performed over the arena's lifetime. Constant across
  /// warmed-up episodes — the zero-steady-state-allocation assertion.
  std::size_t heap_allocations() const { return heap_allocations_; }

 private:
  // 64 bytes = 16 floats: one cache line, and enough for any SIMD level the
  // GEMM kernels use.
  static constexpr std::size_t kAlignFloats = 16;
  static constexpr std::size_t kMinBlockFloats = 4096;

  struct Block {
    std::unique_ptr<float[]> storage;
    float* aligned = nullptr;
    std::size_t capacity = 0;  ///< usable floats starting at `aligned`
    std::size_t used = 0;
  };

  static std::size_t round_up(std::size_t n) {
    return (n + kAlignFloats - 1) / kAlignFloats * kAlignFloats;
  }

  static bool fits(const Block& blk, std::size_t need) {
    return blk.capacity - blk.used >= need;
  }

  bool advance_to_fitting_block(std::size_t need) {
    for (std::size_t i = current_ + 1; i < blocks_.size(); ++i) {
      if (fits(blocks_[i], need)) {
        current_ = i;
        return true;
      }
    }
    return false;
  }

  void add_block(std::size_t capacity_floats) {
    Block blk;
    blk.storage =
        std::make_unique_for_overwrite<float[]>(capacity_floats + kAlignFloats);
    ++heap_allocations_;
    const auto addr = reinterpret_cast<std::uintptr_t>(blk.storage.get());
    const std::uintptr_t aligned =
        (addr + kAlignFloats * sizeof(float) - 1) &
        ~static_cast<std::uintptr_t>(kAlignFloats * sizeof(float) - 1);
    // storage over-allocates one alignment unit, so `aligned + capacity`
    // stays in bounds.
    blk.aligned = blk.storage.get() + (aligned - addr) / sizeof(float);
    blk.capacity = capacity_floats;
    blocks_.push_back(std::move(blk));
    total_capacity_ += capacity_floats;
  }

  std::vector<Block> blocks_;
  std::size_t current_ = 0;
  std::size_t used_ = 0;
  std::size_t high_water_ = 0;
  std::size_t total_capacity_ = 0;
  std::size_t heap_allocations_ = 0;
};

/// A batch of B same-shaped samples in feature-major, batch-minor layout:
/// for sample shape [d0, d1, …], element (i0, b, rest) lives at
/// ((i0·B + b)·rest_numel + rest_index). Concretely: a CHW batch stores
/// sample b's channel-c plane contiguously at (c·B + b)·H·W, and a rank-1
/// feature batch is a plain [features, B] matrix — exactly the right-hand
/// side one wide GEMM consumes per convolution or dense layer. The struct
/// is POD (fixed-extent dims, no Shape vector) so views can be created in
/// the hot path without allocating.
struct BatchedView {
  static constexpr std::size_t kMaxRank = 4;

  float* data = nullptr;
  std::size_t dims[kMaxRank] = {0, 0, 0, 0};
  std::size_t rank = 0;
  std::size_t batch = 0;

  std::size_t dim(std::size_t d) const {
    EUGENE_REQUIRE(d < rank, "BatchedView: dim index out of range");
    return dims[d];
  }
  /// Product of dims[1..rank) — the per-d0 contiguous extent.
  std::size_t rest_numel() const {
    std::size_t r = 1;
    for (std::size_t d = 1; d < rank; ++d) r *= dims[d];
    return r;
  }
  std::size_t sample_numel() const {
    return rank == 0 ? 0 : dims[0] * rest_numel();
  }
  std::size_t total_numel() const { return sample_numel() * batch; }

  /// View descriptor with the same batch over different sample dims,
  /// pointing at freshly arena-allocated storage.
  static BatchedView make(std::span<const std::size_t> sample_dims,
                          std::size_t batch, ScratchArena& arena) {
    EUGENE_REQUIRE(sample_dims.size() >= 1 && sample_dims.size() <= kMaxRank,
                   "BatchedView: sample rank outside [1, 4]");
    EUGENE_REQUIRE(batch >= 1, "BatchedView: empty batch");
    BatchedView v;
    v.rank = sample_dims.size();
    for (std::size_t d = 0; d < v.rank; ++d) v.dims[d] = sample_dims[d];
    v.batch = batch;
    v.data = arena.alloc(v.total_numel());
    return v;
  }
};

/// Packs same-shaped sample tensors into a feature-major batch allocated
/// from `arena`.
inline BatchedView pack_batch(std::span<const tensor::Tensor* const> samples,
                              ScratchArena& arena) {
  EUGENE_REQUIRE(!samples.empty(), "pack_batch: empty batch");
  const tensor::Tensor& first = *samples.front();
  EUGENE_REQUIRE(first.rank() >= 1 && first.rank() <= BatchedView::kMaxRank,
                 "pack_batch: sample rank outside [1, 4]");
  for (const tensor::Tensor* t : samples)
    EUGENE_REQUIRE(t != nullptr && t->same_shape(first),
                   "pack_batch: mismatched sample shapes");
  BatchedView v;
  v.rank = first.rank();
  for (std::size_t d = 0; d < v.rank; ++d) v.dims[d] = first.dim(d);
  v.batch = samples.size();
  v.data = arena.alloc(v.total_numel());
  const std::size_t d0 = v.dims[0];
  const std::size_t rest = v.rest_numel();
  const std::size_t batch = v.batch;
  for (std::size_t b = 0; b < batch; ++b) {
    const float* src = samples[b]->raw();
    for (std::size_t i0 = 0; i0 < d0; ++i0) {
      float* dst = v.data + (i0 * batch + b) * rest;
      const float* s = src + i0 * rest;
      for (std::size_t r = 0; r < rest; ++r) dst[r] = s[r];
    }
  }
  return v;
}

/// Writes tensor `sample` into slot `b` of `view` (shape must match the
/// view's sample dims).
inline void scatter_sample(BatchedView& view, std::size_t b,
                           const tensor::Tensor& sample) {
  EUGENE_REQUIRE(b < view.batch, "scatter_sample: batch index out of range");
  EUGENE_REQUIRE(sample.numel() == view.sample_numel(),
                 "scatter_sample: sample size mismatch");
  const std::size_t rest = view.rest_numel();
  const float* src = sample.raw();
  for (std::size_t i0 = 0; i0 < view.dims[0]; ++i0) {
    float* dst = view.data + (i0 * view.batch + b) * rest;
    const float* s = src + i0 * rest;
    for (std::size_t r = 0; r < rest; ++r) dst[r] = s[r];
  }
}

/// Extracts sample `b` of a batched view into a standalone tensor
/// (allocates — boundary use only, never inside forward_batch chains).
inline tensor::Tensor unpack_sample(const BatchedView& view, std::size_t b) {
  EUGENE_REQUIRE(b < view.batch, "unpack_sample: batch index out of range");
  tensor::Shape shape(view.dims, view.dims + view.rank);
  tensor::Tensor out(std::move(shape));
  const std::size_t rest = view.rest_numel();
  float* dst = out.raw();
  for (std::size_t i0 = 0; i0 < view.dims[0]; ++i0) {
    const float* src = view.data + (i0 * view.batch + b) * rest;
    float* d = dst + i0 * rest;
    for (std::size_t r = 0; r < rest; ++r) d[r] = src[r];
  }
  return out;
}

}  // namespace eugene::nn
