// Concrete layers: convolution, dense, activations, normalization, dropout,
// pooling, and shape adapters.
#pragma once

#include "common/rng.hpp"
#include "nn/layer.hpp"
#include "tensor/ops.hpp"

namespace eugene::nn {

/// 2-D convolution over a fixed-geometry CHW input (im2col + matmul).
/// Weights use He initialization, matching the ReLU networks it serves.
class Conv2d final : public Layer {
 public:
  Conv2d(tensor::Conv2dGeometry geometry, Rng& rng);

  tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  BatchedView forward_batch(const BatchedView& input, ScratchArena& arena) override;
  std::vector<ParamRef> params() override;
  double flops() const override { return geometry_.flops(); }
  std::string name() const override;
  std::unique_ptr<Layer> clone() const override;

  const tensor::Conv2dGeometry& geometry() const { return geometry_; }
  tensor::Tensor& weights() { return weights_; }
  tensor::Tensor& bias() { return bias_; }

 private:
  tensor::Conv2dGeometry geometry_;
  tensor::Tensor weights_;  ///< [C_out, C_in·k·k]
  tensor::Tensor bias_;     ///< [C_out]
  tensor::Tensor grad_weights_;
  tensor::Tensor grad_bias_;
  tensor::Tensor cached_cols_;  ///< im2col of the last forward input
};

/// Fully connected layer on rank-1 inputs: y = W·x + b.
class Dense final : public Layer {
 public:
  Dense(std::size_t in_features, std::size_t out_features, Rng& rng);

  tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  BatchedView forward_batch(const BatchedView& input, ScratchArena& arena) override;
  std::vector<ParamRef> params() override;
  double flops() const override {
    return 2.0 * static_cast<double>(in_features_) * static_cast<double>(out_features_);
  }
  std::string name() const override;
  std::unique_ptr<Layer> clone() const override;

  std::size_t in_features() const { return in_features_; }
  std::size_t out_features() const { return out_features_; }
  tensor::Tensor& weights() { return weights_; }
  tensor::Tensor& bias() { return bias_; }

 private:
  std::size_t in_features_;
  std::size_t out_features_;
  tensor::Tensor weights_;  ///< [out, in]
  tensor::Tensor bias_;     ///< [out]
  tensor::Tensor grad_weights_;
  tensor::Tensor grad_bias_;
  tensor::Tensor cached_input_;
};

/// Rectified linear unit, any rank.
class ReLU final : public Layer {
 public:
  tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  BatchedView forward_batch(const BatchedView& input, ScratchArena& arena) override;
  std::string name() const override { return "relu"; }
  std::unique_ptr<Layer> clone() const override;

 private:
  tensor::Tensor mask_;  ///< 1 where input > 0
};

/// Per-channel instance normalization with learnable gain/bias.
///
/// Stands in for the paper's batch normalization: our pipeline is per-sample,
/// so batch statistics are unavailable; instance statistics provide the same
/// training stabilization for these model sizes (DESIGN.md §2).
class ChannelNorm final : public Layer {
 public:
  explicit ChannelNorm(std::size_t channels, float epsilon = 1e-5f);

  tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  BatchedView forward_batch(const BatchedView& input, ScratchArena& arena) override;
  std::vector<ParamRef> params() override;
  std::string name() const override { return "channel_norm(" + std::to_string(channels_) + ")"; }
  std::unique_ptr<Layer> clone() const override;

 private:
  std::size_t channels_;
  float epsilon_;
  tensor::Tensor gain_;  ///< [C]
  tensor::Tensor bias_;  ///< [C]
  tensor::Tensor grad_gain_;
  tensor::Tensor grad_bias_;
  tensor::Tensor cached_xhat_;
  std::vector<float> cached_inv_std_;
};

/// Inverted dropout. Active only when training=true; RDeepSense-style
/// MC-dropout calibration calls forward(…, /*training=*/true) at inference
/// time to sample the predictive distribution.
class Dropout final : public Layer {
 public:
  Dropout(float drop_probability, std::uint64_t seed);

  tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  /// Batched inference is always training=false, so dropout is the identity.
  BatchedView forward_batch(const BatchedView& input, ScratchArena& /*arena*/) override {
    return input;
  }
  std::string name() const override;
  std::unique_ptr<Layer> clone() const override;

  float drop_probability() const { return p_; }

 private:
  float p_;
  std::uint64_t seed_;  ///< construction seed; clone() restarts from it so
                        ///< cloning never reads the advancing sampler state
  Rng rng_;
  tensor::Tensor mask_;
  bool last_training_ = false;
};

/// CHW → flat vector.
class Flatten final : public Layer {
 public:
  tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  BatchedView forward_batch(const BatchedView& input, ScratchArena& arena) override;
  std::string name() const override { return "flatten"; }
  std::unique_ptr<Layer> clone() const override;

 private:
  tensor::Shape cached_shape_;
};

/// CHW → [C] by spatial averaging.
class GlobalAvgPool final : public Layer {
 public:
  tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  BatchedView forward_batch(const BatchedView& input, ScratchArena& arena) override;
  std::string name() const override { return "global_avg_pool"; }
  std::unique_ptr<Layer> clone() const override;

 private:
  tensor::Shape cached_shape_;
};

/// 2×2 max pooling, stride 2.
class MaxPool2 final : public Layer {
 public:
  tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  BatchedView forward_batch(const BatchedView& input, ScratchArena& arena) override;
  std::string name() const override { return "max_pool2"; }
  std::unique_ptr<Layer> clone() const override;

 private:
  tensor::Shape cached_in_shape_;
  std::vector<std::size_t> argmax_;  ///< flat input index chosen per output cell
};

}  // namespace eugene::nn
