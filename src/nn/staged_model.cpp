#include "nn/staged_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "nn/residual.hpp"

namespace eugene::nn {

using tensor::Tensor;

void StagedModel::add_stage(std::unique_ptr<Sequential> trunk,
                            std::unique_ptr<Sequential> head) {
  EUGENE_REQUIRE(trunk != nullptr && head != nullptr, "add_stage: null trunk or head");
  stages_.push_back(Stage{std::move(trunk), std::move(head)});
}

StageOutput StagedModel::make_output(Tensor features, const Tensor& logits) const {
  EUGENE_CHECK_EQ(logits.numel(), num_classes_) << "head produced wrong logit count";
  StageOutput out;
  out.probs = softmax(logits.data());
  out.predicted_label = argmax(out.probs);
  out.confidence = out.probs[out.predicted_label];
  out.features = std::move(features);
  return out;
}

StageOutput StagedModel::run_stage(std::size_t s, const Tensor& input, bool training) {
  EUGENE_REQUIRE(s < stages_.size(), "run_stage: stage index out of range");
  if (!training && input.rank() >= 1 && input.rank() <= BatchedView::kMaxRank) {
    // Inference is the batched path at B = 1 (bitwise-identical by the
    // Layer::forward_batch contract): layer scratch comes from a warmed
    // thread-local arena instead of a fresh heap Tensor per layer. A batch
    // of one needs no packing — feature-major at B = 1 is exactly the
    // sample's own layout — so the input is viewed in place; forward_batch
    // implementations never write their input view.
    thread_local ScratchArena arena;
    arena.reset();
    BatchedView in;
    in.rank = input.rank();
    for (std::size_t d = 0; d < in.rank; ++d) in.dims[d] = input.dim(d);
    in.batch = 1;
    in.data = const_cast<float*>(input.raw());
    BatchedView feat = stages_[s].trunk->forward_batch(in, arena);
    const BatchedView logits = stages_[s].head->forward_batch(feat, arena);
    EUGENE_CHECK_EQ(logits.sample_numel(), num_classes_)
        << "head produced wrong logit count";
    Tensor logit_t(tensor::Shape{num_classes_});
    for (std::size_t c = 0; c < num_classes_; ++c) logit_t.raw()[c] = logits.data[c];
    return make_output(unpack_sample(feat, 0), logit_t);
  }
  Tensor features = stages_[s].trunk->forward(input, training);
  const Tensor logits = stages_[s].head->forward(features, training);
  return make_output(std::move(features), logits);
}

void StagedModel::run_stage_batch(std::size_t s,
                                  std::span<const Tensor* const> inputs,
                                  std::span<StageBatchItem> items,
                                  ScratchArena& arena) {
  EUGENE_REQUIRE(s < stages_.size(), "run_stage_batch: stage index out of range");
  EUGENE_REQUIRE(!inputs.empty() && inputs.size() == items.size(),
                 "run_stage_batch: inputs/items size mismatch");
  const std::size_t batch = inputs.size();
  const BatchedView in = pack_batch(inputs, arena);
  BatchedView feat = stages_[s].trunk->forward_batch(in, arena);
  const BatchedView logits = stages_[s].head->forward_batch(feat, arena);
  EUGENE_CHECK_EQ(logits.sample_numel(), num_classes_)
      << "head produced wrong logit count";
  const std::size_t feat_rest = feat.rest_numel();
  for (std::size_t b = 0; b < batch; ++b) {
    StageBatchItem& item = items[b];
    // Reuse the item's feature storage when the shape repeats (the heap-free
    // steady state); reshape only on first use or model change.
    bool shape_ok = item.features.rank() == feat.rank;
    for (std::size_t d = 0; shape_ok && d < feat.rank; ++d)
      shape_ok = item.features.dim(d) == feat.dims[d];
    if (!shape_ok)
      item.features = Tensor(tensor::Shape(feat.dims, feat.dims + feat.rank));
    float* dst = item.features.raw();
    for (std::size_t i0 = 0; i0 < feat.dims[0]; ++i0) {
      const float* src = feat.data + (i0 * batch + b) * feat_rest;
      float* d = dst + i0 * feat_rest;
      for (std::size_t r = 0; r < feat_rest; ++r) d[r] = src[r];
    }
    // Head readout replicating common/stats.hpp softmax+argmax bit for bit
    // over the strided logit column: float exps, double sum, strict-greater
    // first-tie argmax.
    const float* ld = logits.data;
    float max_logit = ld[b];
    for (std::size_t c = 0; c < num_classes_; ++c)
      max_logit = std::max(max_logit, ld[c * batch + b]);
    item.probs.resize(num_classes_);
    double sum = 0.0;
    for (std::size_t c = 0; c < num_classes_; ++c) {
      item.probs[c] = std::exp(ld[c * batch + b] - max_logit);
      sum += item.probs[c];
    }
    for (float& v : item.probs) v = static_cast<float>(v / sum);
    std::size_t best = 0;
    for (std::size_t c = 1; c < num_classes_; ++c)
      if (item.probs[c] > item.probs[best]) best = c;
    item.predicted_label = best;
    item.confidence = item.probs[best];
  }
}

std::vector<StageOutput> StagedModel::forward_all(const Tensor& input, bool training) {
  std::vector<StageOutput> outputs;
  outputs.reserve(stages_.size());
  const Tensor* current = &input;
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    outputs.push_back(run_stage(s, *current, training));
    current = &outputs.back().features;
  }
  return outputs;
}

StageOutput StagedModel::run_stage_mc(std::size_t s, const Tensor& input,
                                      std::size_t samples) {
  EUGENE_REQUIRE(s < stages_.size(), "run_stage_mc: stage index out of range");
  EUGENE_REQUIRE(samples > 0, "run_stage_mc: need at least one sample");
  Tensor features = stages_[s].trunk->forward(input, /*training=*/false);
  std::vector<double> mean_probs(num_classes_, 0.0);
  for (std::size_t i = 0; i < samples; ++i) {
    // training=true keeps dropout masks active, sampling the posterior.
    const Tensor logits = stages_[s].head->forward(features, /*training=*/true);
    const std::vector<float> p = softmax(logits.data());
    for (std::size_t c = 0; c < num_classes_; ++c) mean_probs[c] += p[c];
  }
  StageOutput out;
  out.probs.resize(num_classes_);
  for (std::size_t c = 0; c < num_classes_; ++c)
    out.probs[c] = static_cast<float>(mean_probs[c] / static_cast<double>(samples));
  out.predicted_label = argmax(out.probs);
  out.confidence = out.probs[out.predicted_label];
  out.features = std::move(features);
  return out;
}

Tensor StagedModel::trunk_forward(std::size_t s, const Tensor& input, bool training) {
  EUGENE_REQUIRE(s < stages_.size(), "trunk_forward: stage index out of range");
  return stages_[s].trunk->forward(input, training);
}

Tensor StagedModel::head_forward(std::size_t s, const Tensor& features, bool training) {
  EUGENE_REQUIRE(s < stages_.size(), "head_forward: stage index out of range");
  return stages_[s].head->forward(features, training);
}

Tensor StagedModel::head_backward(std::size_t s, const Tensor& grad_logits) {
  EUGENE_REQUIRE(s < stages_.size(), "head_backward: stage index out of range");
  return stages_[s].head->backward(grad_logits);
}

Tensor StagedModel::trunk_backward(std::size_t s, const Tensor& grad_features) {
  EUGENE_REQUIRE(s < stages_.size(), "trunk_backward: stage index out of range");
  return stages_[s].trunk->backward(grad_features);
}

std::vector<ParamRef> StagedModel::params() {
  std::vector<ParamRef> out;
  for (auto& stage : stages_) {
    auto t = stage.trunk->params();
    out.insert(out.end(), t.begin(), t.end());
    auto h = stage.head->params();
    out.insert(out.end(), h.begin(), h.end());
  }
  return out;
}

std::vector<ParamRef> StagedModel::head_params(std::size_t s) {
  EUGENE_REQUIRE(s < stages_.size(), "head_params: stage index out of range");
  return stages_[s].head->params();
}

double StagedModel::stage_flops(std::size_t s) const {
  EUGENE_REQUIRE(s < stages_.size(), "stage_flops: stage index out of range");
  return stages_[s].trunk->flops() + stages_[s].head->flops();
}

std::size_t StagedModel::stage_param_bytes(std::size_t s) {
  EUGENE_REQUIRE(s < stages_.size(), "stage_param_bytes: stage index out of range");
  std::size_t count = 0;
  for (const auto& p : stages_[s].trunk->params()) count += p.value->numel();
  for (const auto& p : stages_[s].head->params()) count += p.value->numel();
  return count * sizeof(float);
}

StagedModel StagedModel::clone() const {
  StagedModel copy(num_classes_);
  for (const auto& stage : stages_)
    copy.add_stage(stage.trunk->clone_sequential(), stage.head->clone_sequential());
  return copy;
}

StagedModel build_staged_resnet(const StagedResNetConfig& config) {
  EUGENE_REQUIRE(!config.stage_channels.empty(), "build_staged_resnet: no stages");
  EUGENE_REQUIRE(config.blocks_per_stage >= 1, "build_staged_resnet: need >=1 block");
  Rng rng(config.seed);
  StagedModel model(config.num_classes);

  std::size_t channels = config.in_channels;
  std::size_t height = config.height;
  std::size_t width = config.width;

  for (std::size_t s = 0; s < config.stage_channels.size(); ++s) {
    auto trunk = std::make_unique<Sequential>();
    if (s > 0 && config.downsample_between_stages) {
      EUGENE_REQUIRE(height >= 2 && width >= 2,
                     "build_staged_resnet: image too small to downsample");
      trunk->add(std::make_unique<MaxPool2>());
      height /= 2;
      width /= 2;
    }
    // Transition convolution adjusts the channel count entering the stage
    // (the "bottom convolutional layer" of Fig. 3 for stage 0).
    tensor::Conv2dGeometry g;
    g.in_channels = channels;
    g.out_channels = config.stage_channels[s];
    g.in_height = height;
    g.in_width = width;
    trunk->add(std::make_unique<Conv2d>(g, rng));
    channels = config.stage_channels[s];
    trunk->add(std::make_unique<ChannelNorm>(channels));
    trunk->add(std::make_unique<ReLU>());
    for (std::size_t b = 0; b < config.blocks_per_stage; ++b)
      trunk->add(std::make_unique<ResidualBlock>(channels, height, width, rng));

    auto head = std::make_unique<Sequential>();
    if (config.head_dropout > 0.0f)
      head->add(std::make_unique<Dropout>(config.head_dropout,
                                          config.seed + 1000 + s));
    head->add(std::make_unique<GlobalAvgPool>());
    if (config.head_hidden > 0) {
      head->add(std::make_unique<Dense>(channels, config.head_hidden, rng));
      head->add(std::make_unique<ReLU>());
      head->add(std::make_unique<Dense>(config.head_hidden, config.num_classes, rng));
    } else {
      head->add(std::make_unique<Dense>(channels, config.num_classes, rng));
    }

    model.add_stage(std::move(trunk), std::move(head));
  }
  return model;
}

StagedModel build_staged_mlp(const StagedMlpConfig& config) {
  EUGENE_REQUIRE(config.input_dim > 0, "build_staged_mlp: zero input dimension");
  EUGENE_REQUIRE(!config.stage_widths.empty(), "build_staged_mlp: no stages");
  EUGENE_REQUIRE(config.layers_per_stage >= 1, "build_staged_mlp: need >=1 layer");
  Rng rng(config.seed);
  StagedModel model(config.num_classes);

  std::size_t width = config.input_dim;
  for (std::size_t s = 0; s < config.stage_widths.size(); ++s) {
    auto trunk = std::make_unique<Sequential>();
    if (s == 0) trunk->add(std::make_unique<Flatten>());
    for (std::size_t l = 0; l < config.layers_per_stage; ++l) {
      trunk->add(std::make_unique<Dense>(width, config.stage_widths[s], rng));
      trunk->add(std::make_unique<ReLU>());
      width = config.stage_widths[s];
    }
    auto head = std::make_unique<Sequential>();
    head->add(std::make_unique<Dense>(width, config.num_classes, rng));
    model.add_stage(std::move(trunk), std::move(head));
  }
  return model;
}

}  // namespace eugene::nn
