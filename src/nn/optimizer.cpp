#include "nn/optimizer.hpp"

namespace eugene::nn {

SgdOptimizer::SgdOptimizer(std::vector<ParamRef> params, SgdConfig config)
    : params_(std::move(params)), config_(config) {
  EUGENE_REQUIRE(config_.learning_rate > 0.0, "SGD: learning rate must be positive");
  EUGENE_REQUIRE(config_.momentum >= 0.0 && config_.momentum < 1.0,
                 "SGD: momentum must be in [0, 1)");
  velocity_.reserve(params_.size());
  for (const auto& p : params_) velocity_.emplace_back(p.value->shape());
}

void SgdOptimizer::step(double grad_scale) {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    float* w = params_[i].value->raw();
    const float* g = params_[i].grad->raw();
    float* v = velocity_[i].raw();
    const std::size_t n = params_[i].value->numel();
    const float lr = static_cast<float>(config_.learning_rate);
    const float mom = static_cast<float>(config_.momentum);
    const float wd = static_cast<float>(config_.weight_decay);
    const float scale = static_cast<float>(grad_scale);
    for (std::size_t j = 0; j < n; ++j) {
      v[j] = mom * v[j] - lr * (g[j] * scale + wd * w[j]);
      w[j] += v[j];
    }
  }
}

void SgdOptimizer::zero_grads() {
  for (const auto& p : params_) p.grad->fill(0.0f);
}

}  // namespace eugene::nn
