// Staged (multi-exit) models — the inference structure at the heart of
// Eugene (paper Fig. 1 and Fig. 3).
//
// A StagedModel is a chain of trunk segments; after each trunk a thin
// classifier head emits (predicted label, confidence). The scheduler decides
// per task how many stages to run; confidence from early heads feeds the
// dynamic utility curve.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "nn/layer.hpp"
#include "nn/layers.hpp"

namespace eugene::nn {

/// What a stage's classifier head reports for one sample.
struct StageOutput {
  tensor::Tensor features;          ///< trunk output, input to the next stage
  std::vector<float> probs;         ///< softmax distribution over classes
  std::size_t predicted_label = 0;  ///< argmax of probs
  float confidence = 0.0f;          ///< max of probs (paper's "classification confidence")
};

/// One sample's slot in a batched stage run. Reused across calls: features
/// and probs keep their storage when shapes repeat, which is what lets a
/// warmed-up run_stage_batch run without heap allocations.
struct StageBatchItem {
  tensor::Tensor features;          ///< trunk output, input to the next stage
  std::vector<float> probs;         ///< softmax distribution over classes
  std::size_t predicted_label = 0;  ///< argmax of probs
  float confidence = 0.0f;          ///< max of probs
};

/// Multi-exit network: trunks chained feature-to-feature, one softmax head
/// per stage (paper Fig. 3).
class StagedModel {
 public:
  explicit StagedModel(std::size_t num_classes) : num_classes_(num_classes) {
    EUGENE_REQUIRE(num_classes >= 2, "StagedModel: need at least two classes");
  }

  /// Appends a stage. The trunk maps previous features to new features; the
  /// head maps features to class logits.
  void add_stage(std::unique_ptr<Sequential> trunk, std::unique_ptr<Sequential> head);

  std::size_t num_stages() const { return stages_.size(); }
  std::size_t num_classes() const { return num_classes_; }

  /// Runs trunk `s` then its head on `input` (the previous stage's features,
  /// or the raw sample for stage 0).
  StageOutput run_stage(std::size_t s, const tensor::Tensor& input, bool training = false);

  /// Batched (inference-only) run_stage: packs `inputs` into one feature-
  /// major batch, runs trunk `s` and its head once over the whole batch (one
  /// wide GEMM per compute layer), and fills `items` — items[b] corresponds
  /// to inputs[b] and is bitwise-identical to run_stage(s, *inputs[b]).
  /// Scratch comes from `arena`; the caller owns the arena's reset cadence
  /// (typically once per request batch). Sizes must match; all inputs must
  /// share one shape.
  void run_stage_batch(std::size_t s, std::span<const tensor::Tensor* const> inputs,
                       std::span<StageBatchItem> items, ScratchArena& arena);

  /// Runs every stage in order, returning all per-stage outputs.
  std::vector<StageOutput> forward_all(const tensor::Tensor& input, bool training = false);

  /// RDeepSense-style Monte-Carlo head sampling: evaluates the head
  /// `samples` times with dropout active and averages the probability
  /// vectors. The trunk runs once (deterministically).
  StageOutput run_stage_mc(std::size_t s, const tensor::Tensor& input, std::size_t samples);

  // -- raw pieces used by the trainer ------------------------------------
  tensor::Tensor trunk_forward(std::size_t s, const tensor::Tensor& input, bool training);
  tensor::Tensor head_forward(std::size_t s, const tensor::Tensor& features, bool training);
  tensor::Tensor head_backward(std::size_t s, const tensor::Tensor& grad_logits);
  tensor::Tensor trunk_backward(std::size_t s, const tensor::Tensor& grad_features);

  /// All learnable parameters, trunk-then-head per stage, in stage order.
  std::vector<ParamRef> params();

  /// Parameters of stage `s`'s head only (used by calibration fine-tuning).
  std::vector<ParamRef> head_params(std::size_t s);

  /// Forward FLOPs of stage `s` (trunk + head), for the profiler and the
  /// scheduler's stage cost model.
  double stage_flops(std::size_t s) const;

  /// Serialized parameter bytes of stage `s` (trunk + head) — what caching
  /// a stage on a device costs in download/storage (paper §II-B, §IV-A).
  std::size_t stage_param_bytes(std::size_t s);

  /// Deep copy of configuration + learned parameters (never forward/backward
  /// scratch — see Layer::clone for the concurrency contract this obeys).
  /// Used by the copy-on-write model registry and the live scheduler's
  /// replica builder; both may clone a model that is concurrently serving.
  StagedModel clone() const;

 private:
  struct Stage {
    std::unique_ptr<Sequential> trunk;
    std::unique_ptr<Sequential> head;
  };

  StageOutput make_output(tensor::Tensor features, const tensor::Tensor& logits) const;

  std::size_t num_classes_;
  std::vector<Stage> stages_;
};

/// Configuration for the paper-style staged ResNet (Fig. 3: an initial
/// convolution, then stages of residual blocks, each with a softmax head).
struct StagedResNetConfig {
  std::size_t in_channels = 3;
  std::size_t height = 16;
  std::size_t width = 16;
  std::size_t num_classes = 10;
  std::vector<std::size_t> stage_channels = {8, 16, 32};  ///< one entry per stage
  std::size_t blocks_per_stage = 1;  ///< 3 matches the paper's 6-conv stages
  float head_dropout = 0.0f;         ///< >0 enables MC-dropout (RDeepSense) heads
  /// >0 inserts Dense(C→head_hidden)+ReLU before the classifier. The paper's
  /// "thin softmax" heads sit on a much wider backbone; a small hidden layer
  /// gives our narrow stages comparable per-sample confidence expressivity.
  std::size_t head_hidden = 0;
  bool downsample_between_stages = true;
  std::uint64_t seed = 1;
};

/// Builds the staged ResNet described by `config`.
StagedModel build_staged_resnet(const StagedResNetConfig& config);

/// Configuration for a staged MLP — multi-exit serving for non-image
/// workloads (e.g. the DeepSense-style multichannel time-series windows of
/// data/timeseries.hpp). The input tensor is flattened by the first stage.
struct StagedMlpConfig {
  std::size_t input_dim = 0;  ///< numel of one sample
  std::size_t num_classes = 2;
  std::vector<std::size_t> stage_widths = {32, 32, 32};  ///< one entry per stage
  std::size_t layers_per_stage = 1;
  std::uint64_t seed = 1;
};

/// Builds the staged MLP described by `config`: per stage,
/// [Dense → ReLU] × layers_per_stage as the trunk and a Dense classifier
/// head, chained feature-to-feature like the staged ResNet.
StagedModel build_staged_mlp(const StagedMlpConfig& config);

}  // namespace eugene::nn
