#include "nn/loss.hpp"

#include <cmath>

#include "common/stats.hpp"

namespace eugene::nn {

using tensor::Tensor;

std::vector<float> softmax_probs(const Tensor& logits) {
  EUGENE_REQUIRE(logits.rank() == 1, "softmax_probs: expected rank-1 logits");
  return softmax(logits.data());
}

LossResult cross_entropy_with_entropy_reg(const Tensor& logits, std::size_t label,
                                          double alpha) {
  const std::size_t n = logits.numel();
  EUGENE_REQUIRE(label < n, "cross_entropy: label out of range");
  const std::vector<float> p = softmax_probs(logits);

  const double eps = 1e-12;
  const double ce = -std::log(static_cast<double>(p[label]) + eps);
  const double h = entropy(p);

  LossResult result;
  result.value = ce + alpha * h;
  result.grad_logits = Tensor({n});
  float* g = result.grad_logits.raw();
  for (std::size_t j = 0; j < n; ++j) {
    const double pj = p[j];
    const double grad_ce = pj - (j == label ? 1.0 : 0.0);
    const double grad_h = -pj * (std::log(pj + eps) + h);
    g[j] = static_cast<float>(grad_ce + alpha * grad_h);
  }
  return result;
}

LossResult cross_entropy(const Tensor& logits, std::size_t label) {
  return cross_entropy_with_entropy_reg(logits, label, 0.0);
}

LossResult mean_squared_error(const Tensor& output, const Tensor& target) {
  EUGENE_REQUIRE(output.same_shape(target), "mse: shape mismatch");
  EUGENE_REQUIRE(output.numel() > 0, "mse: empty tensors");
  LossResult result;
  result.grad_logits = Tensor(output.shape());
  const float* o = output.raw();
  const float* t = target.raw();
  float* g = result.grad_logits.raw();
  const double inv_n = 1.0 / static_cast<double>(output.numel());
  for (std::size_t i = 0; i < output.numel(); ++i) {
    const double d = static_cast<double>(o[i]) - static_cast<double>(t[i]);
    result.value += d * d * inv_n;
    g[i] = static_cast<float>(2.0 * d * inv_n);
  }
  return result;
}

}  // namespace eugene::nn
