// Binary (de)serialization of model parameters.
//
// Serves Eugene's model-caching service: the server trains/reduces a model,
// serializes it, and the client deserializes into an identically built
// architecture ("caching appropriately trained neural network models",
// paper §I/§II-B).
//
// Checkpoint format v2 (DESIGN.md §9 "Durability model"):
//
//   [magic "EUG2" u32][version u32][body length u64][body][crc32(body) u32]
//
// where body = tensor count + per tensor rank, shape, raw floats (the v1
// layout). The CRC footer turns bit flips and torn writes into typed
// eugene::CorruptionError; the version field lets future formats fail with
// a typed error instead of misparsing. load_params also reads legacy v1
// streams (magic "EUG1", no checksum) so checkpoints written before v2
// keep loading.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace eugene::nn {

/// Writes all parameters to a stream in checkpoint format v2.
void save_params(const std::vector<ParamRef>& params, std::ostream& out);

/// Reads parameters saved by save_params (v2 or legacy v1) into an
/// architecture with exactly matching shapes. Throws eugene::CorruptionError
/// on a damaged stream (bad magic, future version, truncation, CRC mismatch)
/// and eugene::InvalidArgument when the stream is intact but the
/// architecture does not match.
void load_params(const std::vector<ParamRef>& params, std::istream& in);

/// File wrappers. save_params_file writes atomically (temp + fsync +
/// rename via common/io), so a crash mid-save never destroys a previous
/// checkpoint at the same path.
void save_params_file(const std::vector<ParamRef>& params, const std::string& path);
void load_params_file(const std::vector<ParamRef>& params, const std::string& path);

/// Total serialized (v2) size in bytes (used by the caching policy to reason
/// about download cost).
[[nodiscard]] std::size_t serialized_size_bytes(const std::vector<ParamRef>& params);

}  // namespace eugene::nn
