// Binary (de)serialization of model parameters.
//
// Serves Eugene's model-caching service: the server trains/reduces a model,
// serializes it, and the client deserializes into an identically built
// architecture ("caching appropriately trained neural network models",
// paper §I/§II-B).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace eugene::nn {

/// Writes all parameters to a stream: magic, tensor count, then per tensor
/// rank + shape + raw floats.
void save_params(const std::vector<ParamRef>& params, std::ostream& out);

/// Reads parameters saved by save_params into an architecture with exactly
/// matching shapes. Throws eugene::InvalidArgument on any mismatch.
void load_params(const std::vector<ParamRef>& params, std::istream& in);

/// Convenience file wrappers.
void save_params_file(const std::vector<ParamRef>& params, const std::string& path);
void load_params_file(const std::vector<ParamRef>& params, const std::string& path);

/// Total serialized size in bytes (used by the caching policy to reason
/// about download cost).
std::size_t serialized_size_bytes(const std::vector<ParamRef>& params);

}  // namespace eugene::nn
