#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/check.hpp"
#include "common/error.hpp"

namespace eugene::nn {
namespace {

constexpr std::uint32_t kMagic = 0x45554731;  // "EUG1"

void write_u32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t read_u32(std::istream& in) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  EUGENE_REQUIRE(in.good(), "load_params: truncated stream");
  return v;
}

}  // namespace

void save_params(const std::vector<ParamRef>& params, std::ostream& out) {
  write_u32(out, kMagic);
  write_u32(out, static_cast<std::uint32_t>(params.size()));
  for (const auto& p : params) {
    const auto& shape = p.value->shape();
    write_u32(out, static_cast<std::uint32_t>(shape.size()));
    for (std::size_t d : shape) write_u32(out, static_cast<std::uint32_t>(d));
    out.write(reinterpret_cast<const char*>(p.value->raw()),
              static_cast<std::streamsize>(p.value->numel() * sizeof(float)));
  }
  EUGENE_CHECK(out.good()) << "save_params: stream write failed";
}

void load_params(const std::vector<ParamRef>& params, std::istream& in) {
  EUGENE_REQUIRE(read_u32(in) == kMagic, "load_params: bad magic (not a Eugene model)");
  const std::uint32_t count = read_u32(in);
  EUGENE_REQUIRE(count == params.size(),
                 "load_params: parameter count mismatch (architecture differs)");
  for (const auto& p : params) {
    const std::uint32_t rank = read_u32(in);
    EUGENE_REQUIRE(rank == p.value->rank(), "load_params: tensor rank mismatch");
    for (std::size_t d = 0; d < rank; ++d)
      EUGENE_REQUIRE(read_u32(in) == p.value->dim(d), "load_params: tensor shape mismatch");
    in.read(reinterpret_cast<char*>(p.value->raw()),
            static_cast<std::streamsize>(p.value->numel() * sizeof(float)));
    EUGENE_REQUIRE(in.good(), "load_params: truncated tensor data");
  }
}

void save_params_file(const std::vector<ParamRef>& params, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  EUGENE_REQUIRE(out.is_open(), "save_params_file: cannot open " + path);
  save_params(params, out);
}

void load_params_file(const std::vector<ParamRef>& params, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EUGENE_REQUIRE(in.is_open(), "load_params_file: cannot open " + path);
  load_params(params, in);
}

std::size_t serialized_size_bytes(const std::vector<ParamRef>& params) {
  std::size_t bytes = 8;  // magic + count
  for (const auto& p : params)
    bytes += 4 + 4 * p.value->rank() + p.value->numel() * sizeof(float);
  return bytes;
}

}  // namespace eugene::nn
