#include "nn/serialize.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/check.hpp"
#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/io.hpp"

namespace eugene::nn {
namespace {

constexpr std::uint32_t kMagicV1 = 0x45554731;  // "EUG1": count + tensors, no checksum
constexpr std::uint32_t kMagicV2 = 0x45554732;  // "EUG2": versioned, CRC-checked
constexpr std::uint32_t kFormatVersion = 2;

void write_u32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void write_u64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t read_u32(std::istream& in) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in.good()) throw CorruptionError("load_params: truncated stream");
  return v;
}

std::uint64_t read_u64(std::istream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in.good()) throw CorruptionError("load_params: truncated stream");
  return v;
}

std::size_t body_size_bytes(const std::vector<ParamRef>& params) {
  std::size_t bytes = 4;  // tensor count
  for (const auto& p : params)
    bytes += 4 + 4 * p.value->rank() + p.value->numel() * sizeof(float);
  return bytes;
}

/// Serializes the v1/v2 body: tensor count, then per tensor rank + shape +
/// raw floats.
std::vector<std::uint8_t> encode_body(const std::vector<ParamRef>& params) {
  io::ByteWriter w;
  w.u32(static_cast<std::uint32_t>(params.size()));
  for (const auto& p : params) {
    const auto& shape = p.value->shape();
    w.u32(static_cast<std::uint32_t>(shape.size()));
    for (std::size_t d : shape) w.u32(static_cast<std::uint32_t>(d));
    w.raw(p.value->raw(), p.value->numel() * sizeof(float));
  }
  return w.take();
}

/// Legacy v1 reader: the original streaming format (magic already consumed).
void load_params_v1(const std::vector<ParamRef>& params, std::istream& in) {
  const std::uint32_t count = read_u32(in);
  EUGENE_REQUIRE(count == params.size(),
                 "load_params: parameter count mismatch (architecture differs)");
  for (const auto& p : params) {
    const std::uint32_t rank = read_u32(in);
    EUGENE_REQUIRE(rank == p.value->rank(), "load_params: tensor rank mismatch");
    for (std::size_t d = 0; d < rank; ++d)
      EUGENE_REQUIRE(read_u32(in) == p.value->dim(d), "load_params: tensor shape mismatch");
    in.read(reinterpret_cast<char*>(p.value->raw()),
            static_cast<std::streamsize>(p.value->numel() * sizeof(float)));
    if (!in.good()) throw CorruptionError("load_params: truncated tensor data");
  }
}

}  // namespace

void save_params(const std::vector<ParamRef>& params, std::ostream& out) {
  const std::vector<std::uint8_t> body = encode_body(params);
  write_u32(out, kMagicV2);
  write_u32(out, kFormatVersion);
  write_u64(out, body.size());
  out.write(reinterpret_cast<const char*>(body.data()),
            static_cast<std::streamsize>(body.size()));
  write_u32(out, crc32(body.data(), body.size()));
  EUGENE_CHECK(out.good()) << "save_params: stream write failed";
}

void load_params(const std::vector<ParamRef>& params, std::istream& in) {
  const std::uint32_t magic = read_u32(in);
  if (magic == kMagicV1) {
    load_params_v1(params, in);
    return;
  }
  if (magic != kMagicV2)
    throw CorruptionError("load_params: bad magic (not a Eugene checkpoint)");

  const std::uint32_t version = read_u32(in);
  if (version == 0 || version > kFormatVersion)
    throw CorruptionError("load_params: unsupported checkpoint version " +
                          std::to_string(version) + " (this build reads <= " +
                          std::to_string(kFormatVersion) + ")");

  const std::uint64_t body_len = read_u64(in);
  // Never trust a stored length for the allocation: read what the stream
  // actually holds, in bounded chunks, so a corrupt length cannot OOM the
  // server — it surfaces as truncation instead.
  std::vector<std::uint8_t> body;
  body.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(body_len, body_size_bytes(params))));
  char chunk[1 << 16];
  for (std::uint64_t left = body_len; left > 0;) {
    const auto want =
        static_cast<std::streamsize>(std::min<std::uint64_t>(left, sizeof(chunk)));
    in.read(chunk, want);
    const std::streamsize got = in.gcount();
    if (got <= 0) throw CorruptionError("load_params: truncated checkpoint body");
    body.insert(body.end(), chunk, chunk + got);
    left -= static_cast<std::uint64_t>(got);
  }
  const std::uint32_t stored_crc = read_u32(in);
  if (stored_crc != crc32(body.data(), body.size()))
    throw CorruptionError("load_params: CRC32 mismatch (bit flip or torn write)");

  io::ByteReader r(body, "load_params");
  const std::uint32_t count = r.u32();
  EUGENE_REQUIRE(count == params.size(),
                 "load_params: parameter count mismatch (architecture differs)");
  for (const auto& p : params) {
    const std::uint32_t rank = r.u32();
    EUGENE_REQUIRE(rank == p.value->rank(), "load_params: tensor rank mismatch");
    for (std::size_t d = 0; d < rank; ++d)
      EUGENE_REQUIRE(r.u32() == p.value->dim(d), "load_params: tensor shape mismatch");
    r.raw_into(p.value->raw(), p.value->numel() * sizeof(float));
  }
  r.expect_exhausted();
}

void save_params_file(const std::vector<ParamRef>& params, const std::string& path) {
  std::ostringstream out(std::ios::binary);
  save_params(params, out);
  const std::string bytes = out.str();
  io::atomic_write_file(path, reinterpret_cast<const std::uint8_t*>(bytes.data()),
                        bytes.size());
}

void load_params_file(const std::vector<ParamRef>& params, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EUGENE_REQUIRE(in.is_open(), "load_params_file: cannot open " + path);
  load_params(params, in);
  // A stream may legitimately carry more data after the checkpoint; a file
  // holds exactly one. Trailing bytes mean damage or tampering.
  in.peek();
  if (!in.eof())
    throw CorruptionError("load_params_file: trailing bytes after checkpoint in " + path);
}

std::size_t serialized_size_bytes(const std::vector<ParamRef>& params) {
  // v2 envelope: magic + version + body length + body + CRC footer.
  return 4 + 4 + 8 + body_size_bytes(params) + 4;
}

}  // namespace eugene::nn
