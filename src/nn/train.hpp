// Training loops: joint deep-supervision training of staged models (all
// heads trained together), calibration fine-tuning (paper Eq. 4), and plain
// single-output classifier training used by the reduction and labeling
// services.
#pragma once

#include <functional>
#include <span>

#include "common/rng.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/staged_model.hpp"

namespace eugene::nn {

/// Hyperparameters for staged-model training.
struct StagedTrainConfig {
  std::size_t epochs = 8;
  std::size_t batch_size = 32;
  SgdConfig sgd;
  double entropy_alpha = 0.0;          ///< α in Eq. 4; 0 disables calibration
  std::vector<double> head_loss_weights;  ///< per-stage loss weights; empty = all 1
  double lr_decay_per_epoch = 1.0;     ///< multiplicative LR schedule
  std::uint64_t shuffle_seed = 7;
};

/// Per-epoch progress snapshot passed to the optional callback.
struct EpochStats {
  std::size_t epoch = 0;
  double mean_loss = 0.0;
  double learning_rate = 0.0;
};

/// Deep-supervision trainer for StagedModel: every head contributes a
/// cross-entropy (+ optional entropy regularization) term; gradients flow
/// through trunks with the chain joined at stage boundaries.
class StagedTrainer {
 public:
  StagedTrainer(StagedModel& model, StagedTrainConfig config);

  /// Runs one pass over the (shuffled) data; returns the mean loss.
  double train_epoch(std::span<const tensor::Tensor> images,
                     std::span<const std::size_t> labels);

  /// Runs config.epochs epochs, invoking `on_epoch` after each if non-null.
  void fit(std::span<const tensor::Tensor> images, std::span<const std::size_t> labels,
           const std::function<void(const EpochStats&)>& on_epoch = nullptr);

  /// Fraction of samples whose stage-`stage` prediction equals the label.
  static double evaluate_accuracy(StagedModel& model,
                                  std::span<const tensor::Tensor> images,
                                  std::span<const std::size_t> labels, std::size_t stage);

 private:
  /// Forward + backward for one sample; returns its total (weighted) loss.
  double train_sample(const tensor::Tensor& image, std::size_t label);

  StagedModel& model_;
  StagedTrainConfig config_;
  SgdOptimizer optimizer_;
  Rng shuffle_rng_;
};

/// Hyperparameters for plain (single-exit) classifier training.
struct ClassifierTrainConfig {
  std::size_t epochs = 10;
  std::size_t batch_size = 32;
  SgdConfig sgd;
  double entropy_alpha = 0.0;
  std::uint64_t shuffle_seed = 7;
};

/// Trains a Sequential ending in class logits with softmax cross-entropy.
void train_classifier(Sequential& model, std::span<const tensor::Tensor> inputs,
                      std::span<const std::size_t> labels,
                      const ClassifierTrainConfig& config);

/// Accuracy of a Sequential classifier.
double classifier_accuracy(Sequential& model, std::span<const tensor::Tensor> inputs,
                           std::span<const std::size_t> labels);

}  // namespace eugene::nn
