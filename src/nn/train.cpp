#include "nn/train.hpp"

#include <numeric>

#include "common/logging.hpp"
#include "common/stats.hpp"

namespace eugene::nn {

using tensor::Tensor;

StagedTrainer::StagedTrainer(StagedModel& model, StagedTrainConfig config)
    : model_(model),
      config_(std::move(config)),
      optimizer_(model.params(), config_.sgd),
      shuffle_rng_(config_.shuffle_seed) {
  if (config_.head_loss_weights.empty())
    config_.head_loss_weights.assign(model_.num_stages(), 1.0);
  EUGENE_REQUIRE(config_.head_loss_weights.size() == model_.num_stages(),
                 "head_loss_weights size must match stage count");
  EUGENE_REQUIRE(config_.batch_size > 0, "batch size must be positive");
}

double StagedTrainer::train_sample(const Tensor& image, std::size_t label) {
  const std::size_t num_stages = model_.num_stages();

  // Forward: thread features through trunks, caching per-stage logits.
  std::vector<Tensor> features;
  features.reserve(num_stages);
  std::vector<LossResult> losses;
  losses.reserve(num_stages);
  const Tensor* current = &image;
  double total_loss = 0.0;
  for (std::size_t s = 0; s < num_stages; ++s) {
    features.push_back(model_.trunk_forward(s, *current, /*training=*/true));
    const Tensor logits = model_.head_forward(s, features.back(), /*training=*/true);
    losses.push_back(
        cross_entropy_with_entropy_reg(logits, label, config_.entropy_alpha));
    total_loss += config_.head_loss_weights[s] * losses.back().value;
    current = &features.back();
  }

  // Backward: the last trunk receives only its head's gradient; earlier
  // trunks receive their head's gradient plus the gradient flowing back
  // from downstream stages.
  Tensor grad_from_next;  // empty until the last stage has been processed
  for (std::size_t s = num_stages; s-- > 0;) {
    Tensor grad_logits = losses[s].grad_logits;
    grad_logits *= static_cast<float>(config_.head_loss_weights[s]);
    Tensor grad_features = model_.head_backward(s, grad_logits);
    if (grad_from_next.numel() > 0) grad_features += grad_from_next;
    grad_from_next = model_.trunk_backward(s, grad_features);
  }
  return total_loss;
}

double StagedTrainer::train_epoch(std::span<const Tensor> images,
                                  std::span<const std::size_t> labels) {
  EUGENE_REQUIRE(images.size() == labels.size(), "images/labels size mismatch");
  EUGENE_REQUIRE(!images.empty(), "train_epoch: empty dataset");

  std::vector<std::size_t> order(images.size());
  std::iota(order.begin(), order.end(), 0);
  shuffle_rng_.shuffle(order);

  double loss_sum = 0.0;
  std::size_t in_batch = 0;
  optimizer_.zero_grads();
  for (std::size_t idx : order) {
    loss_sum += train_sample(images[idx], labels[idx]);
    if (++in_batch == config_.batch_size) {
      optimizer_.step(1.0 / static_cast<double>(in_batch));
      optimizer_.zero_grads();
      in_batch = 0;
    }
  }
  if (in_batch > 0) {
    optimizer_.step(1.0 / static_cast<double>(in_batch));
    optimizer_.zero_grads();
  }
  return loss_sum / static_cast<double>(images.size());
}

void StagedTrainer::fit(std::span<const Tensor> images,
                        std::span<const std::size_t> labels,
                        const std::function<void(const EpochStats&)>& on_epoch) {
  for (std::size_t e = 0; e < config_.epochs; ++e) {
    const double loss = train_epoch(images, labels);
    EpochStats stats{e, loss, optimizer_.learning_rate()};
    EUGENE_LOG(Info) << "epoch " << e << " loss " << loss;
    if (on_epoch) on_epoch(stats);
    optimizer_.set_learning_rate(optimizer_.learning_rate() * config_.lr_decay_per_epoch);
  }
}

double StagedTrainer::evaluate_accuracy(StagedModel& model,
                                        std::span<const Tensor> images,
                                        std::span<const std::size_t> labels,
                                        std::size_t stage) {
  EUGENE_REQUIRE(images.size() == labels.size(), "images/labels size mismatch");
  EUGENE_REQUIRE(!images.empty(), "evaluate_accuracy: empty dataset");
  EUGENE_REQUIRE(stage < model.num_stages(), "evaluate_accuracy: bad stage");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < images.size(); ++i) {
    const Tensor* current = &images[i];
    StageOutput out;
    for (std::size_t s = 0; s <= stage; ++s) {
      out = model.run_stage(s, *current, /*training=*/false);
      current = &out.features;
    }
    if (out.predicted_label == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(images.size());
}

void train_classifier(Sequential& model, std::span<const Tensor> inputs,
                      std::span<const std::size_t> labels,
                      const ClassifierTrainConfig& config) {
  EUGENE_REQUIRE(inputs.size() == labels.size(), "inputs/labels size mismatch");
  EUGENE_REQUIRE(!inputs.empty(), "train_classifier: empty dataset");
  SgdOptimizer optimizer(model.params(), config.sgd);
  Rng shuffle_rng(config.shuffle_seed);
  std::vector<std::size_t> order(inputs.size());
  for (std::size_t e = 0; e < config.epochs; ++e) {
    std::iota(order.begin(), order.end(), 0);
    shuffle_rng.shuffle(order);
    std::size_t in_batch = 0;
    optimizer.zero_grads();
    for (std::size_t idx : order) {
      const Tensor logits = model.forward(inputs[idx], /*training=*/true);
      const LossResult loss =
          cross_entropy_with_entropy_reg(logits, labels[idx], config.entropy_alpha);
      model.backward(loss.grad_logits);
      if (++in_batch == config.batch_size) {
        optimizer.step(1.0 / static_cast<double>(in_batch));
        optimizer.zero_grads();
        in_batch = 0;
      }
    }
    if (in_batch > 0) {
      optimizer.step(1.0 / static_cast<double>(in_batch));
      optimizer.zero_grads();
    }
  }
}

double classifier_accuracy(Sequential& model, std::span<const Tensor> inputs,
                           std::span<const std::size_t> labels) {
  EUGENE_REQUIRE(inputs.size() == labels.size(), "inputs/labels size mismatch");
  EUGENE_REQUIRE(!inputs.empty(), "classifier_accuracy: empty dataset");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const Tensor logits = model.forward(inputs[i], /*training=*/false);
    const std::vector<float> p = softmax_probs(logits);
    if (argmax(p) == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(inputs.size());
}

}  // namespace eugene::nn
