// Layer abstraction for the Eugene neural-network stack.
//
// Training processes one sample at a time; minibatch SGD accumulates
// parameter gradients across samples before each optimizer step. Each layer
// caches what it needs from the last forward(training=true) so backward()
// can run without re-deriving activations. Inference additionally has a
// batched path — forward_batch over a feature-major BatchedView with arena-
// backed scratch — that amortizes one wide GEMM across a request batch and
// allocates nothing once warmed up (DESIGN.md §14).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/arena.hpp"
#include "tensor/tensor.hpp"

namespace eugene::nn {

/// A learnable parameter and its gradient accumulator, exposed by layers so
/// optimizers and serializers can walk a model without knowing layer types.
struct ParamRef {
  tensor::Tensor* value = nullptr;
  tensor::Tensor* grad = nullptr;
};

/// Base class for all layers.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output for one sample. `training` enables behaviours
  /// that differ between fit and inference time (dropout masks).
  virtual tensor::Tensor forward(const tensor::Tensor& input, bool training) = 0;

  /// Propagates the loss gradient from output to input, accumulating
  /// parameter gradients. Must follow a forward(training=true) on the same
  /// sample — inference-mode forwards skip writing the activation caches
  /// this reads.
  virtual tensor::Tensor backward(const tensor::Tensor& grad_output) = 0;

  /// Inference-only forward over a feature-major batch (see BatchedView).
  /// Output storage comes from `arena`; the input view stays valid (layers
  /// never write through their input). Compute layers override this with a
  /// batched kernel (one wide GEMM instead of B narrow ones); the default
  /// falls back to per-sample forward(), which allocates — correct for any
  /// layer, but excluded from the zero-allocation steady-state guarantee.
  /// Numerics contract: overrides must make column b of the output bitwise
  /// equal to forward() of sample b (the GEMM core's accumulation order
  /// depends only on k, which makes this achievable — DESIGN.md §14).
  virtual BatchedView forward_batch(const BatchedView& input,
                                    ScratchArena& arena) {
    EUGENE_REQUIRE(input.batch >= 1, "forward_batch: empty batch");
    tensor::Tensor first = forward(unpack_sample(input, 0), /*training=*/false);
    EUGENE_REQUIRE(first.rank() >= 1 && first.rank() <= BatchedView::kMaxRank,
                   "forward_batch: output rank outside [1, 4]");
    BatchedView out = BatchedView::make(
        std::span<const std::size_t>(first.shape().data(), first.rank()),
        input.batch, arena);
    scatter_sample(out, 0, first);
    for (std::size_t b = 1; b < input.batch; ++b) {
      tensor::Tensor y = forward(unpack_sample(input, b), /*training=*/false);
      EUGENE_REQUIRE(y.same_shape(first),
                     "forward_batch: output shapes diverge across the batch");
      scatter_sample(out, b, y);
    }
    return out;
  }

  /// Learnable parameters (empty for stateless layers).
  virtual std::vector<ParamRef> params() { return {}; }

  /// Multiply-add FLOPs of one forward pass (0 for negligible layers);
  /// consumed by the execution profiler.
  virtual double flops() const { return 0.0; }

  /// Diagnostic name, e.g. "conv3x3(8->32)".
  virtual std::string name() const = 0;

  /// Deep copy of the layer's *persistent* state: configuration and learned
  /// parameters, never the forward/backward scratch (cached activations,
  /// masks, gradient accumulators). Two guarantees follow: (a) a clone is
  /// independent — training or serving it never touches the original — and
  /// (b) cloning only *reads* memory that inference never writes, so it is
  /// safe to clone a model that another thread is concurrently running
  /// inference on (the copy-on-write model registry and the live scheduler's
  /// replica builder both rely on this).
  virtual std::unique_ptr<Layer> clone() const = 0;
};

/// Downcasting clone helper for callers that hold a concrete layer type
/// (every concrete layer is `final`, so clone() returns exactly that type).
template <typename L>
std::unique_ptr<L> clone_layer_as(const L& layer) {
  std::unique_ptr<Layer> copy = layer.clone();
  return std::unique_ptr<L>(static_cast<L*>(copy.release()));
}

/// Ordered container of layers, itself a layer.
class Sequential final : public Layer {
 public:
  Sequential() = default;

  /// Appends a layer; returns *this for fluent building.
  Sequential& add(std::unique_ptr<Layer> layer) {
    EUGENE_REQUIRE(layer != nullptr, "Sequential::add: null layer");
    layers_.push_back(std::move(layer));
    return *this;
  }

  tensor::Tensor forward(const tensor::Tensor& input, bool training) override {
    tensor::Tensor x = input;
    for (auto& layer : layers_) x = layer->forward(x, training);
    return x;
  }

  tensor::Tensor backward(const tensor::Tensor& grad_output) override {
    tensor::Tensor g = grad_output;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) g = (*it)->backward(g);
    return g;
  }

  BatchedView forward_batch(const BatchedView& input,
                            ScratchArena& arena) override {
    BatchedView x = input;
    for (auto& layer : layers_) x = layer->forward_batch(x, arena);
    return x;
  }

  std::vector<ParamRef> params() override {
    std::vector<ParamRef> out;
    for (auto& layer : layers_) {
      auto p = layer->params();
      out.insert(out.end(), p.begin(), p.end());
    }
    return out;
  }

  double flops() const override {
    double total = 0.0;
    for (const auto& layer : layers_) total += layer->flops();
    return total;
  }

  std::string name() const override { return "sequential(" + std::to_string(layers_.size()) + ")"; }

  std::unique_ptr<Layer> clone() const override { return clone_sequential(); }

  /// Typed clone (Sequential is what StagedModel stages are built from).
  std::unique_ptr<Sequential> clone_sequential() const {
    auto copy = std::make_unique<Sequential>();
    for (const auto& layer : layers_) copy->add(layer->clone());
    return copy;
  }

  std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i) {
    EUGENE_REQUIRE(i < layers_.size(), "Sequential::layer index out of range");
    return *layers_[i];
  }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Zeroes the gradient accumulators of every parameter in `params`.
inline void zero_grads(const std::vector<ParamRef>& params) {
  for (const auto& p : params) p.grad->fill(0.0f);
}

}  // namespace eugene::nn
