#include "nn/residual.hpp"

namespace eugene::nn {

using tensor::Tensor;

ResidualBlock::ResidualBlock(std::size_t channels, std::size_t height, std::size_t width,
                             Rng& rng)
    : channels_(channels) {
  tensor::Conv2dGeometry g;
  g.in_channels = channels;
  g.out_channels = channels;
  g.in_height = height;
  g.in_width = width;
  g.kernel = 3;
  g.stride = 1;
  g.padding = 1;
  conv1_ = std::make_unique<Conv2d>(g, rng);
  norm1_ = std::make_unique<ChannelNorm>(channels);
  relu1_ = std::make_unique<ReLU>();
  conv2_ = std::make_unique<Conv2d>(g, rng);
  norm2_ = std::make_unique<ChannelNorm>(channels);
}

Tensor ResidualBlock::forward(const Tensor& input, bool training) {
  Tensor f = norm1_->forward(conv1_->forward(input, training), training);
  f = relu1_->forward(f, training);
  f = norm2_->forward(conv2_->forward(f, training), training);
  f += input;  // identity shortcut
  if (training) pre_activation_ = f;
  // Final ReLU applied in place: `f` is this block's own intermediate.
  float* p = f.raw();
  for (std::size_t i = 0; i < f.numel(); ++i) p[i] = p[i] > 0.0f ? p[i] : 0.0f;
  return f;
}

BatchedView ResidualBlock::forward_batch(const BatchedView& input,
                                         ScratchArena& arena) {
  BatchedView f = conv1_->forward_batch(input, arena);
  f = norm1_->forward_batch(f, arena);
  f = relu1_->forward_batch(f, arena);
  f = conv2_->forward_batch(f, arena);
  f = norm2_->forward_batch(f, arena);
  EUGENE_REQUIRE(f.total_numel() == input.total_numel(),
                 "ResidualBlock::forward_batch: shape drift through the block");
  // Shortcut add + final ReLU fused in place over norm2's arena output.
  float* p = f.data;
  const float* x = input.data;
  const std::size_t n = f.total_numel();
  for (std::size_t i = 0; i < n; ++i) {
    const float v = p[i] + x[i];
    p[i] = v > 0.0f ? v : 0.0f;
  }
  return f;
}

Tensor ResidualBlock::backward(const Tensor& grad_output) {
  EUGENE_REQUIRE(grad_output.same_shape(pre_activation_),
                 "ResidualBlock::backward: shape mismatch");
  // Final ReLU gradient.
  Tensor g(pre_activation_.shape());
  const float* go = grad_output.raw();
  const float* pre = pre_activation_.raw();
  float* gp = g.raw();
  for (std::size_t i = 0; i < g.numel(); ++i) gp[i] = pre[i] > 0.0f ? go[i] : 0.0f;

  // Residual path: norm2 <- conv2 <- relu1 <- norm1 <- conv1.
  Tensor gf = norm2_->backward(g);
  gf = conv2_->backward(gf);
  gf = relu1_->backward(gf);
  gf = norm1_->backward(gf);
  gf = conv1_->backward(gf);

  gf += g;  // identity shortcut gradient
  return gf;
}

std::vector<ParamRef> ResidualBlock::params() {
  std::vector<ParamRef> out;
  for (Layer* layer : {static_cast<Layer*>(conv1_.get()), static_cast<Layer*>(norm1_.get()),
                       static_cast<Layer*>(conv2_.get()), static_cast<Layer*>(norm2_.get())}) {
    auto p = layer->params();
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

double ResidualBlock::flops() const { return conv1_->flops() + conv2_->flops(); }

std::string ResidualBlock::name() const {
  return "residual_block(" + std::to_string(channels_) + ")";
}

std::unique_ptr<Layer> ResidualBlock::clone() const {
  // The public constructor re-derives geometry from (channels, height, width),
  // but height/width are not stored — deep-copy the sublayers instead.
  // NOLINTNEXTLINE(*-owning-memory): private default ctor, make_unique cannot reach it
  std::unique_ptr<ResidualBlock> copy(new ResidualBlock());
  copy->channels_ = channels_;
  copy->conv1_ = clone_layer_as(*conv1_);
  copy->norm1_ = clone_layer_as(*norm1_);
  copy->relu1_ = clone_layer_as(*relu1_);
  copy->conv2_ = clone_layer_as(*conv2_);
  copy->norm2_ = clone_layer_as(*norm2_);
  return copy;
}

}  // namespace eugene::nn
