// Losses. The centerpiece is the paper's Eq. 4 entropy-regularized
// cross-entropy used to calibrate confidence:
//
//   L = CE(p, y) + α · H(p)
//
// where α < 0 raises confidence (when the network underestimates) and α > 0
// lowers it (when it overestimates).
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.hpp"

namespace eugene::nn {

/// Value and logit-gradient of a classification loss on one sample.
struct LossResult {
  double value = 0.0;
  tensor::Tensor grad_logits;  ///< dL/dlogits, same shape as the logits
};

/// Softmax cross-entropy with optional entropy regularization (paper Eq. 4).
///
/// Gradient derivation: with p = softmax(z),
///   dCE/dz = p − onehot(y)
///   dH/dz_j = −p_j · (log p_j + H(p))
/// so dL/dz = (p − y) + α · dH/dz.
LossResult cross_entropy_with_entropy_reg(const tensor::Tensor& logits,
                                          std::size_t label, double alpha = 0.0);

/// Plain softmax cross-entropy (alpha = 0 case, kept for readability).
LossResult cross_entropy(const tensor::Tensor& logits, std::size_t label);

/// Mean squared error against a target vector (used by regression examples).
LossResult mean_squared_error(const tensor::Tensor& output, const tensor::Tensor& target);

/// Softmax probabilities of a logit tensor (rank-1).
std::vector<float> softmax_probs(const tensor::Tensor& logits);

}  // namespace eugene::nn
