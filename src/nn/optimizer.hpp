// Stochastic gradient descent with momentum and weight decay — the training
// engine behind every Eugene model (staged ResNets, cache models, labeling
// classifiers).
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace eugene::nn {

/// SGD hyperparameters.
struct SgdConfig {
  double learning_rate = 0.05;
  double momentum = 0.9;
  double weight_decay = 1e-4;
};

/// Classic momentum SGD over a fixed parameter set.
/// The parameter list must not be reallocated while the optimizer lives.
class SgdOptimizer {
 public:
  SgdOptimizer(std::vector<ParamRef> params, SgdConfig config);

  /// Applies one update: v ← m·v − lr·(g·scale + wd·w); w ← w + v.
  /// `grad_scale` converts accumulated sums into means (1/batch_size).
  void step(double grad_scale = 1.0);

  /// Zeroes all gradient accumulators.
  void zero_grads();

  void set_learning_rate(double lr) { config_.learning_rate = lr; }
  double learning_rate() const { return config_.learning_rate; }

 private:
  std::vector<ParamRef> params_;
  std::vector<tensor::Tensor> velocity_;
  SgdConfig config_;
};

}  // namespace eugene::nn
