#include "nn/layers.hpp"

#include <cmath>
#include <cstring>
#include <vector>

#include "tensor/gemm.hpp"

namespace eugene::nn {

using tensor::Tensor;

namespace {

// Packing scratch for the legacy per-sample wrappers (the batched path
// takes its scratch from the caller's arena instead).
float* tl_scratch(std::size_t floats) {
  thread_local std::vector<float> buf;
  if (buf.size() < floats) buf.resize(floats);
  return buf.data();
}

BatchedView same_dims_view(const BatchedView& input, ScratchArena& arena) {
  return BatchedView::make(
      std::span<const std::size_t>(input.dims, input.rank), input.batch, arena);
}

}  // namespace

// ---------------------------------------------------------------- Conv2d

Conv2d::Conv2d(tensor::Conv2dGeometry geometry, Rng& rng)
    : geometry_(geometry),
      weights_({geometry.out_channels, geometry.in_channels * geometry.kernel * geometry.kernel}),
      bias_({geometry.out_channels}),
      grad_weights_(weights_.shape()),
      grad_bias_(bias_.shape()) {
  // He initialization: stddev = sqrt(2 / fan_in).
  const double fan_in = static_cast<double>(geometry.in_channels) *
                        static_cast<double>(geometry.kernel) *
                        static_cast<double>(geometry.kernel);
  const float stddev = static_cast<float>(std::sqrt(2.0 / fan_in));
  weights_ = Tensor::randn(weights_.shape(), rng, stddev);
}

Tensor Conv2d::forward(const Tensor& input, bool training) {
  const std::size_t ohw = geometry_.out_height() * geometry_.out_width();
  const std::size_t patch =
      geometry_.in_channels * geometry_.kernel * geometry_.kernel;
  // Backward needs the unrolled columns; inference-only forwards skip the
  // persistent cache and unroll into reusable thread-local scratch instead.
  const float* cols = nullptr;
  float* ws = nullptr;
  if (training) {
    cached_cols_ = tensor::im2col(input, geometry_);
    cols = cached_cols_.raw();
  } else {
    const std::size_t ws_floats =
        tensor::gemm_workspace_floats(geometry_.out_channels, ohw, patch);
    float* scratch = tl_scratch(patch * ohw + ws_floats);
    tensor::im2col_into(input, geometry_, scratch);
    cols = scratch;
    ws = scratch + patch * ohw;
  }
  Tensor out({geometry_.out_channels, geometry_.out_height(), geometry_.out_width()});
  tensor::gemm(geometry_.out_channels, ohw, patch, weights_.raw(), patch,
               /*trans_a=*/false, cols, ohw, /*trans_b=*/false, /*beta=*/0.0f,
               out.raw(), ohw, ws);
  float* op = out.raw();
  const float* bb = bias_.raw();
  for (std::size_t oc = 0; oc < geometry_.out_channels; ++oc) {
    const float b = bb[oc];
    for (std::size_t i = 0; i < ohw; ++i) op[oc * ohw + i] += b;
  }
  return out;
}

BatchedView Conv2d::forward_batch(const BatchedView& input, ScratchArena& arena) {
  EUGENE_REQUIRE(input.rank == 3 && input.dims[0] == geometry_.in_channels &&
                     input.dims[1] == geometry_.in_height &&
                     input.dims[2] == geometry_.in_width,
                 "Conv2d::forward_batch: geometry mismatch");
  const std::size_t batch = input.batch;
  const std::size_t hw = geometry_.in_height * geometry_.in_width;
  const std::size_t ohw = geometry_.out_height() * geometry_.out_width();
  const std::size_t patch =
      geometry_.in_channels * geometry_.kernel * geometry_.kernel;
  const std::size_t n = batch * ohw;
  const std::size_t out_dims[3] = {geometry_.out_channels, geometry_.out_height(),
                                   geometry_.out_width()};
  if (geometry_.stride == 1 && geometry_.out_width() >= 8 &&
      geometry_.out_channels <= tensor::gemm_rows_max_m()) {
    // Implicit im2col: embed each input plane in a zero-padded frame, then
    // hand gemm_rows one B-row pointer per (c, ky, kx) — the row is just
    // the padded channel shifted by (ky, kx). Column index j of that
    // implicit B walks the padded frames linearly (width pw, not ow), so
    // the GEMM computes a padded-width output whose fringe columns/rows are
    // discarded by the compaction below. Same kernel chain as im2col +
    // gemm, so the activations are bitwise-identical — only the big
    // [patch, B·OHW] column materialization disappears.
    const std::size_t kh = geometry_.kernel;
    const std::size_t pad = geometry_.padding;
    const std::size_t ih = geometry_.in_height;
    const std::size_t iw = geometry_.in_width;
    const std::size_t oh = geometry_.out_height();
    const std::size_t ow = geometry_.out_width();
    const std::size_t ph = ih + 2 * pad;
    const std::size_t pw = iw + 2 * pad;
    const std::size_t plane = ph * pw;
    const std::size_t np = batch * plane;  // padded buffer floats per channel
    // The GEMM only needs columns up to the last valid output element of the
    // last sample — everything past (oh−1)·pw + ow in a plane is fringe.
    const std::size_t ng = (batch - 1) * plane + (oh - 1) * pw + ow;
    // The last B row's window extends (kh−1)·pw + kh − 1 floats past the
    // buffer; the guard keeps those (discarded-output) reads in bounds.
    const std::size_t guard = (kh - 1) * pw + kh - 1;
    float* padbuf = arena.alloc(geometry_.in_channels * np + guard);
    for (std::size_t g = 0; g < guard; ++g)
      padbuf[geometry_.in_channels * np + g] = 0.0f;
    for (std::size_t c = 0; c < geometry_.in_channels; ++c) {
      for (std::size_t b = 0; b < batch; ++b) {
        float* dst = padbuf + c * np + b * plane;
        const float* src = input.data + c * batch * hw + b * hw;
        std::fill_n(dst, pad * pw, 0.0f);
        for (std::size_t iy = 0; iy < ih; ++iy) {
          float* row = dst + (pad + iy) * pw;
          for (std::size_t x = 0; x < pad; ++x) row[x] = 0.0f;
          std::memcpy(row + pad, src + iy * iw, iw * sizeof(float));
          for (std::size_t x = pad + iw; x < pw; ++x) row[x] = 0.0f;
        }
        std::fill_n(dst + (pad + ih) * pw, pad * pw, 0.0f);
      }
    }
    const float** brows = arena.alloc_ptrs(patch);
    std::size_t p = 0;
    for (std::size_t c = 0; c < geometry_.in_channels; ++c)
      for (std::size_t ky = 0; ky < kh; ++ky)
        for (std::size_t kx = 0; kx < kh; ++kx)
          brows[p++] = padbuf + c * np + ky * pw + kx;
    float* cbuf = arena.alloc(geometry_.out_channels * ng);
    tensor::gemm_rows(geometry_.out_channels, ng, patch, weights_.raw(),
                      patch, brows, /*beta=*/0.0f, cbuf, ng);
    BatchedView out = BatchedView::make({out_dims, 3}, batch, arena);
    const float* bb = bias_.raw();
    for (std::size_t oc = 0; oc < geometry_.out_channels; ++oc) {
      const float bias = bb[oc];
      for (std::size_t b = 0; b < batch; ++b) {
        for (std::size_t oy = 0; oy < oh; ++oy) {
          const float* src = cbuf + oc * ng + b * plane + oy * pw;
          float* dst = out.data + oc * n + b * ohw + oy * ow;
          for (std::size_t x = 0; x < ow; ++x) dst[x] = src[x] + bias;
        }
      }
    }
    return out;
  }
  // One wide column matrix [patch, B·OHW]: sample b's columns start at
  // b·OHW, so GEMM output row oc is exactly the batched (oc, b) plane run.
  float* cols = arena.alloc(patch * n);
  for (std::size_t b = 0; b < batch; ++b)
    tensor::im2col_strided_into(input.data + b * hw, batch * hw, geometry_,
                                cols, n, b * ohw);
  BatchedView out = BatchedView::make({out_dims, 3}, batch, arena);
  float* ws = arena.alloc(
      tensor::gemm_workspace_floats(geometry_.out_channels, n, patch));
  tensor::gemm(geometry_.out_channels, n, patch, weights_.raw(), patch,
               /*trans_a=*/false, cols, n, /*trans_b=*/false, /*beta=*/0.0f,
               out.data, n, ws);
  const float* bb = bias_.raw();
  for (std::size_t oc = 0; oc < geometry_.out_channels; ++oc) {
    const float b = bb[oc];
    float* row = out.data + oc * n;
    for (std::size_t i = 0; i < n; ++i) row[i] += b;
  }
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  const std::size_t ohw = geometry_.out_height() * geometry_.out_width();
  EUGENE_REQUIRE(grad_output.numel() == geometry_.out_channels * ohw,
                 "Conv2d::backward: gradient shape mismatch");
  const Tensor grad_mat = grad_output.reshaped({geometry_.out_channels, ohw});
  grad_weights_ += tensor::matmul_transpose_b(grad_mat, cached_cols_);
  for (std::size_t oc = 0; oc < geometry_.out_channels; ++oc) {
    float acc = 0.0f;
    for (std::size_t i = 0; i < ohw; ++i) acc += grad_mat.at(oc, i);
    grad_bias_.at(oc) += acc;
  }
  const Tensor grad_cols = tensor::matmul_transpose_a(weights_, grad_mat);
  return tensor::col2im(grad_cols, geometry_);
}

std::vector<ParamRef> Conv2d::params() {
  return {{&weights_, &grad_weights_}, {&bias_, &grad_bias_}};
}

std::string Conv2d::name() const {
  return "conv" + std::to_string(geometry_.kernel) + "x" + std::to_string(geometry_.kernel) +
         "(" + std::to_string(geometry_.in_channels) + "->" +
         std::to_string(geometry_.out_channels) + ")";
}

// ----------------------------------------------------------------- Dense

Dense::Dense(std::size_t in_features, std::size_t out_features, Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      weights_({out_features, in_features}),
      bias_({out_features}),
      grad_weights_(weights_.shape()),
      grad_bias_(bias_.shape()) {
  EUGENE_REQUIRE(in_features > 0 && out_features > 0, "Dense: zero-sized layer");
  const float stddev = static_cast<float>(std::sqrt(2.0 / static_cast<double>(in_features)));
  weights_ = Tensor::randn(weights_.shape(), rng, stddev);
}

Tensor Dense::forward(const Tensor& input, bool training) {
  EUGENE_REQUIRE(input.numel() == in_features_, "Dense::forward: input size mismatch");
  if (training) cached_input_ = input.reshaped({in_features_});
  Tensor out({out_features_});
  // Routed through the GEMM core (n = 1) with the bias added after the sum,
  // so a per-sample forward is bitwise-identical to the corresponding column
  // of forward_batch (see Layer::forward_batch's numerics contract).
  tensor::gemm(out_features_, 1, in_features_, weights_.raw(), in_features_,
               /*trans_a=*/false, input.raw(), 1, /*trans_b=*/false,
               /*beta=*/0.0f, out.raw(), 1,
               tl_scratch(tensor::gemm_workspace_floats(out_features_, 1,
                                                        in_features_)));
  float* o = out.raw();
  const float* bb = bias_.raw();
  for (std::size_t i = 0; i < out_features_; ++i) o[i] += bb[i];
  return out;
}

BatchedView Dense::forward_batch(const BatchedView& input, ScratchArena& arena) {
  EUGENE_REQUIRE(input.rank == 1 && input.dims[0] == in_features_,
                 "Dense::forward_batch: input size mismatch");
  const std::size_t batch = input.batch;
  BatchedView out = BatchedView::make({&out_features_, 1}, batch, arena);
  float* ws = arena.alloc(
      tensor::gemm_workspace_floats(out_features_, batch, in_features_));
  tensor::gemm(out_features_, batch, in_features_, weights_.raw(), in_features_,
               /*trans_a=*/false, input.data, batch, /*trans_b=*/false,
               /*beta=*/0.0f, out.data, batch, ws);
  const float* bb = bias_.raw();
  for (std::size_t o = 0; o < out_features_; ++o) {
    const float b = bb[o];
    float* row = out.data + o * batch;
    for (std::size_t i = 0; i < batch; ++i) row[i] += b;
  }
  return out;
}

Tensor Dense::backward(const Tensor& grad_output) {
  EUGENE_REQUIRE(grad_output.numel() == out_features_, "Dense::backward: grad size mismatch");
  const float* g = grad_output.raw();
  const float* x = cached_input_.raw();
  float* gw = grad_weights_.raw();
  for (std::size_t o = 0; o < out_features_; ++o) {
    grad_bias_.at(o) += g[o];
    float* gwrow = gw + o * in_features_;
    for (std::size_t i = 0; i < in_features_; ++i) gwrow[i] += g[o] * x[i];
  }
  Tensor grad_in({in_features_});
  const float* w = weights_.raw();
  float* gi = grad_in.raw();
  for (std::size_t o = 0; o < out_features_; ++o) {
    const float* wrow = w + o * in_features_;
    for (std::size_t i = 0; i < in_features_; ++i) gi[i] += g[o] * wrow[i];
  }
  return grad_in;
}

std::vector<ParamRef> Dense::params() {
  return {{&weights_, &grad_weights_}, {&bias_, &grad_bias_}};
}

std::string Dense::name() const {
  return "dense(" + std::to_string(in_features_) + "->" + std::to_string(out_features_) + ")";
}

// ------------------------------------------------------------------ ReLU

Tensor ReLU::forward(const Tensor& input, bool training) {
  Tensor out(input.shape());
  const float* x = input.raw();
  float* o = out.raw();
  if (training) {
    mask_ = Tensor(input.shape());
    float* m = mask_.raw();
    for (std::size_t i = 0; i < input.numel(); ++i) {
      const bool positive = x[i] > 0.0f;
      m[i] = positive ? 1.0f : 0.0f;
      o[i] = positive ? x[i] : 0.0f;
    }
  } else {
    for (std::size_t i = 0; i < input.numel(); ++i)
      o[i] = x[i] > 0.0f ? x[i] : 0.0f;
  }
  return out;
}

BatchedView ReLU::forward_batch(const BatchedView& input, ScratchArena& arena) {
  BatchedView out = same_dims_view(input, arena);
  const float* x = input.data;
  float* o = out.data;
  const std::size_t n = input.total_numel();
  for (std::size_t i = 0; i < n; ++i) o[i] = x[i] > 0.0f ? x[i] : 0.0f;
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  EUGENE_REQUIRE(grad_output.numel() == mask_.numel(), "ReLU::backward: shape mismatch");
  Tensor grad_in(mask_.shape());
  const float* g = grad_output.raw();
  const float* m = mask_.raw();
  float* gi = grad_in.raw();
  for (std::size_t i = 0; i < mask_.numel(); ++i) gi[i] = g[i] * m[i];
  return grad_in;
}

// ----------------------------------------------------------- ChannelNorm

ChannelNorm::ChannelNorm(std::size_t channels, float epsilon)
    : channels_(channels),
      epsilon_(epsilon),
      gain_({channels}, 1.0f),
      bias_({channels}),
      grad_gain_({channels}),
      grad_bias_({channels}) {
  EUGENE_REQUIRE(channels > 0, "ChannelNorm: zero channels");
}

namespace {

// Shared per-plane normalization core: both the per-sample and the batched
// path must round identically (double mean/var, float xhat) for batched
// inference to stay bitwise-equal to per-sample inference.
void channel_norm_plane(const float* xc, std::size_t hw, float epsilon, float g,
                        float b, float* out, float* xhat_out, float* inv_std_out) {
  // Eight fixed-order accumulator lanes: a single running double sum is a
  // serial 4-cycle add chain (≈ hw·4 cycles per pass); lanes overlap the
  // adds and vectorize. The lane count and combine order are fixed, so the
  // result is deterministic and shared verbatim by the per-sample and
  // batched paths (their bitwise equality only needs this function to be
  // one function).
  double lane[8] = {};
  std::size_t i = 0;
  for (; i + 8 <= hw; i += 8)
    for (std::size_t l = 0; l < 8; ++l) lane[l] += xc[i + l];
  for (; i < hw; ++i) lane[i % 8] += xc[i];
  double mean = ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
                ((lane[4] + lane[5]) + (lane[6] + lane[7]));
  mean /= static_cast<double>(hw);
  for (std::size_t l = 0; l < 8; ++l) lane[l] = 0.0;
  i = 0;
  for (; i + 8 <= hw; i += 8)
    for (std::size_t l = 0; l < 8; ++l) {
      const double d = xc[i + l] - mean;
      lane[l] += d * d;
    }
  for (; i < hw; ++i) {
    const double d = xc[i] - mean;
    lane[i % 8] += d * d;
  }
  double var = ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
               ((lane[4] + lane[5]) + (lane[6] + lane[7]));
  var /= static_cast<double>(hw);
  const float inv_std = static_cast<float>(1.0 / std::sqrt(var + epsilon));
  if (inv_std_out != nullptr) *inv_std_out = inv_std;
  for (std::size_t i = 0; i < hw; ++i) {
    const float xhat = (xc[i] - static_cast<float>(mean)) * inv_std;
    if (xhat_out != nullptr) xhat_out[i] = xhat;
    out[i] = g * xhat + b;
  }
}

}  // namespace

Tensor ChannelNorm::forward(const Tensor& input, bool training) {
  EUGENE_REQUIRE(input.rank() == 3 && input.dim(0) == channels_,
                 "ChannelNorm::forward: expected CHW with matching channels");
  const std::size_t hw = input.dim(1) * input.dim(2);
  Tensor out(input.shape());
  const float* x = input.raw();
  float* o = out.raw();
  float* xh = nullptr;
  if (training) {
    cached_xhat_ = Tensor(input.shape());
    cached_inv_std_.assign(channels_, 0.0f);
    xh = cached_xhat_.raw();
  }
  for (std::size_t c = 0; c < channels_; ++c) {
    channel_norm_plane(x + c * hw, hw, epsilon_, gain_.at(c), bias_.at(c),
                       o + c * hw, xh != nullptr ? xh + c * hw : nullptr,
                       training ? &cached_inv_std_[c] : nullptr);
  }
  return out;
}

BatchedView ChannelNorm::forward_batch(const BatchedView& input,
                                       ScratchArena& arena) {
  EUGENE_REQUIRE(input.rank == 3 && input.dims[0] == channels_,
                 "ChannelNorm::forward_batch: expected CHW with matching channels");
  const std::size_t hw = input.dims[1] * input.dims[2];
  const std::size_t batch = input.batch;
  BatchedView out = same_dims_view(input, arena);
  for (std::size_t c = 0; c < channels_; ++c) {
    const float g = gain_.at(c), b = bias_.at(c);
    for (std::size_t bi = 0; bi < batch; ++bi) {
      const std::size_t off = (c * batch + bi) * hw;
      channel_norm_plane(input.data + off, hw, epsilon_, g, b, out.data + off,
                         nullptr, nullptr);
    }
  }
  return out;
}

Tensor ChannelNorm::backward(const Tensor& grad_output) {
  EUGENE_REQUIRE(grad_output.same_shape(cached_xhat_), "ChannelNorm::backward: shape mismatch");
  const std::size_t hw = cached_xhat_.dim(1) * cached_xhat_.dim(2);
  Tensor grad_in(cached_xhat_.shape());
  const float* g = grad_output.raw();
  const float* xh = cached_xhat_.raw();
  float* gi = grad_in.raw();
  for (std::size_t c = 0; c < channels_; ++c) {
    const float* gc = g + c * hw;
    const float* xhc = xh + c * hw;
    double sum_g = 0.0, sum_gx = 0.0;
    for (std::size_t i = 0; i < hw; ++i) {
      sum_g += gc[i];
      sum_gx += gc[i] * xhc[i];
    }
    grad_bias_.at(c) += static_cast<float>(sum_g);
    grad_gain_.at(c) += static_cast<float>(sum_gx);
    const float gain = gain_.at(c);
    const float inv_std = cached_inv_std_[c];
    const float mean_g = static_cast<float>(sum_g / static_cast<double>(hw));
    const float mean_gx = static_cast<float>(sum_gx / static_cast<double>(hw));
    for (std::size_t i = 0; i < hw; ++i)
      gi[c * hw + i] = gain * inv_std * (gc[i] - mean_g - xhc[i] * mean_gx);
  }
  return grad_in;
}

std::vector<ParamRef> ChannelNorm::params() {
  return {{&gain_, &grad_gain_}, {&bias_, &grad_bias_}};
}

// --------------------------------------------------------------- Dropout

Dropout::Dropout(float drop_probability, std::uint64_t seed)
    : p_(drop_probability), seed_(seed), rng_(seed) {
  EUGENE_REQUIRE(p_ >= 0.0f && p_ < 1.0f, "Dropout: probability must be in [0, 1)");
}

Tensor Dropout::forward(const Tensor& input, bool training) {
  last_training_ = training;
  if (!training || p_ == 0.0f) return input;
  mask_ = Tensor(input.shape());
  Tensor out(input.shape());
  const float keep = 1.0f - p_;
  const float scale = 1.0f / keep;
  const float* x = input.raw();
  float* m = mask_.raw();
  float* o = out.raw();
  for (std::size_t i = 0; i < input.numel(); ++i) {
    const bool keep_unit = !rng_.bernoulli(p_);
    m[i] = keep_unit ? scale : 0.0f;
    o[i] = x[i] * m[i];
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (!last_training_ || p_ == 0.0f) return grad_output;
  EUGENE_REQUIRE(grad_output.numel() == mask_.numel(), "Dropout::backward: shape mismatch");
  Tensor grad_in(mask_.shape());
  const float* g = grad_output.raw();
  const float* m = mask_.raw();
  float* gi = grad_in.raw();
  for (std::size_t i = 0; i < mask_.numel(); ++i) gi[i] = g[i] * m[i];
  return grad_in;
}

std::string Dropout::name() const {
  return "dropout(p=" + std::to_string(p_) + ")";
}

// --------------------------------------------------------------- Flatten

Tensor Flatten::forward(const Tensor& input, bool training) {
  if (training) cached_shape_ = input.shape();
  return input.reshaped({input.numel()});
}

BatchedView Flatten::forward_batch(const BatchedView& input, ScratchArena& arena) {
  if (input.rank == 1) return input;  // already flat; identical layout
  // Feature-major flattening is a real transpose: element (i0, r) of sample b
  // moves from (i0·B + b)·rest + r to (i0·rest + r)·B + b.
  const std::size_t flat = input.sample_numel();
  const std::size_t batch = input.batch;
  const std::size_t rest = input.rest_numel();
  BatchedView out = BatchedView::make({&flat, 1}, batch, arena);
  for (std::size_t i0 = 0; i0 < input.dims[0]; ++i0) {
    for (std::size_t b = 0; b < batch; ++b) {
      const float* src = input.data + (i0 * batch + b) * rest;
      for (std::size_t r = 0; r < rest; ++r)
        out.data[(i0 * rest + r) * batch + b] = src[r];
    }
  }
  return out;
}

Tensor Flatten::backward(const Tensor& grad_output) {
  return grad_output.reshaped(cached_shape_);
}

// --------------------------------------------------------- GlobalAvgPool

Tensor GlobalAvgPool::forward(const Tensor& input, bool training) {
  if (training) cached_shape_ = input.shape();
  return tensor::global_avg_pool(input);
}

BatchedView GlobalAvgPool::forward_batch(const BatchedView& input,
                                         ScratchArena& arena) {
  EUGENE_REQUIRE(input.rank == 3, "GlobalAvgPool::forward_batch: expected CHW");
  const std::size_t c = input.dims[0];
  const std::size_t hw = input.dims[1] * input.dims[2];
  EUGENE_REQUIRE(hw > 0, "GlobalAvgPool::forward_batch: empty image plane");
  const std::size_t batch = input.batch;
  BatchedView out = BatchedView::make({&c, 1}, batch, arena);
  for (std::size_t ch = 0; ch < c; ++ch) {
    for (std::size_t b = 0; b < batch; ++b) {
      const float* plane = input.data + (ch * batch + b) * hw;
      // float accumulator, matching tensor::global_avg_pool bit for bit
      float acc = 0.0f;
      for (std::size_t i = 0; i < hw; ++i) acc += plane[i];
      out.data[ch * batch + b] = acc / static_cast<float>(hw);
    }
  }
  return out;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output) {
  EUGENE_REQUIRE(cached_shape_.size() == 3, "GlobalAvgPool::backward before forward");
  const std::size_t c = cached_shape_[0];
  const std::size_t hw = cached_shape_[1] * cached_shape_[2];
  EUGENE_REQUIRE(grad_output.numel() == c, "GlobalAvgPool::backward: grad size mismatch");
  Tensor grad_in(cached_shape_);
  float* gi = grad_in.raw();
  for (std::size_t ch = 0; ch < c; ++ch) {
    const float share = grad_output.at(ch) / static_cast<float>(hw);
    for (std::size_t i = 0; i < hw; ++i) gi[ch * hw + i] = share;
  }
  return grad_in;
}

// -------------------------------------------------------------- MaxPool2

Tensor MaxPool2::forward(const Tensor& input, bool training) {
  EUGENE_REQUIRE(input.rank() == 3, "MaxPool2: expected CHW image");
  const std::size_t c = input.dim(0);
  const std::size_t oh = input.dim(1) / 2, ow = input.dim(2) / 2;
  EUGENE_REQUIRE(oh > 0 && ow > 0, "MaxPool2: image too small");
  Tensor out({c, oh, ow});
  if (training) {
    cached_in_shape_ = input.shape();
    argmax_.assign(c * oh * ow, 0);
  }
  const std::size_t ih = input.dim(1), iw = input.dim(2);
  const float* x = input.raw();
  for (std::size_t ch = 0; ch < c; ++ch) {
    for (std::size_t y = 0; y < oh; ++y) {
      for (std::size_t xo = 0; xo < ow; ++xo) {
        std::size_t best = ch * ih * iw + (2 * y) * iw + 2 * xo;
        for (std::size_t dy = 0; dy < 2; ++dy)
          for (std::size_t dx = 0; dx < 2; ++dx) {
            const std::size_t idx = ch * ih * iw + (2 * y + dy) * iw + (2 * xo + dx);
            if (x[idx] > x[best]) best = idx;
          }
        out.at(ch, y, xo) = x[best];
        if (training) argmax_[(ch * oh + y) * ow + xo] = best;
      }
    }
  }
  return out;
}

BatchedView MaxPool2::forward_batch(const BatchedView& input, ScratchArena& arena) {
  EUGENE_REQUIRE(input.rank == 3, "MaxPool2::forward_batch: expected CHW image");
  const std::size_t c = input.dims[0];
  const std::size_t ih = input.dims[1], iw = input.dims[2];
  const std::size_t oh = ih / 2, ow = iw / 2;
  EUGENE_REQUIRE(oh > 0 && ow > 0, "MaxPool2::forward_batch: image too small");
  const std::size_t batch = input.batch;
  const std::size_t out_dims[3] = {c, oh, ow};
  BatchedView out = BatchedView::make({out_dims, 3}, batch, arena);
  for (std::size_t ch = 0; ch < c; ++ch) {
    for (std::size_t b = 0; b < batch; ++b) {
      const float* x = input.data + (ch * batch + b) * ih * iw;
      float* o = out.data + (ch * batch + b) * oh * ow;
      for (std::size_t y = 0; y < oh; ++y) {
        for (std::size_t xo = 0; xo < ow; ++xo) {
          std::size_t best = (2 * y) * iw + 2 * xo;
          for (std::size_t dy = 0; dy < 2; ++dy)
            for (std::size_t dx = 0; dx < 2; ++dx) {
              const std::size_t idx = (2 * y + dy) * iw + (2 * xo + dx);
              if (x[idx] > x[best]) best = idx;
            }
          o[y * ow + xo] = x[best];
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2::backward(const Tensor& grad_output) {
  EUGENE_REQUIRE(grad_output.numel() == argmax_.size(), "MaxPool2::backward: shape mismatch");
  Tensor grad_in(cached_in_shape_);
  float* gi = grad_in.raw();
  const float* g = grad_output.raw();
  for (std::size_t i = 0; i < argmax_.size(); ++i) gi[argmax_[i]] += g[i];
  return grad_in;
}

// ----------------------------------------------------------------- clone
//
// Each clone() copies configuration + learned parameters only. Forward /
// backward scratch (cached activations, masks, argmax tables, gradient
// accumulators) stays at its freshly-constructed state: it is meaningless
// outside a forward/backward pair, and it is the only layer state written
// by concurrent inference — skipping it is what makes cloning a published,
// actively-served model race-free (see Layer::clone).

std::unique_ptr<Layer> Conv2d::clone() const {
  Rng init_rng(0);  // initializer weights are replaced by the copy below
  auto copy = std::make_unique<Conv2d>(geometry_, init_rng);
  copy->weights_ = weights_;
  copy->bias_ = bias_;
  return copy;
}

std::unique_ptr<Layer> Dense::clone() const {
  Rng init_rng(0);  // initializer weights are replaced by the copy below
  auto copy = std::make_unique<Dense>(in_features_, out_features_, init_rng);
  copy->weights_ = weights_;
  copy->bias_ = bias_;
  return copy;
}

std::unique_ptr<Layer> ReLU::clone() const { return std::make_unique<ReLU>(); }

std::unique_ptr<Layer> ChannelNorm::clone() const {
  auto copy = std::make_unique<ChannelNorm>(channels_, epsilon_);
  copy->gain_ = gain_;
  copy->bias_ = bias_;
  return copy;
}

std::unique_ptr<Layer> Dropout::clone() const {
  // Restart the sampler from the construction seed rather than copying the
  // advancing rng_ state: the latter is mutated by MC-dropout forwards, which
  // would break the clone-never-reads-inference-written-memory guarantee.
  return std::make_unique<Dropout>(p_, seed_);
}

std::unique_ptr<Layer> Flatten::clone() const { return std::make_unique<Flatten>(); }

std::unique_ptr<Layer> GlobalAvgPool::clone() const { return std::make_unique<GlobalAvgPool>(); }

std::unique_ptr<Layer> MaxPool2::clone() const { return std::make_unique<MaxPool2>(); }

}  // namespace eugene::nn
