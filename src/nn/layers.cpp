#include "nn/layers.hpp"

#include <cmath>

namespace eugene::nn {

using tensor::Tensor;

// ---------------------------------------------------------------- Conv2d

Conv2d::Conv2d(tensor::Conv2dGeometry geometry, Rng& rng)
    : geometry_(geometry),
      weights_({geometry.out_channels, geometry.in_channels * geometry.kernel * geometry.kernel}),
      bias_({geometry.out_channels}),
      grad_weights_(weights_.shape()),
      grad_bias_(bias_.shape()) {
  // He initialization: stddev = sqrt(2 / fan_in).
  const double fan_in = static_cast<double>(geometry.in_channels) *
                        static_cast<double>(geometry.kernel) *
                        static_cast<double>(geometry.kernel);
  const float stddev = static_cast<float>(std::sqrt(2.0 / fan_in));
  weights_ = Tensor::randn(weights_.shape(), rng, stddev);
}

Tensor Conv2d::forward(const Tensor& input, bool /*training*/) {
  cached_cols_ = tensor::im2col(input, geometry_);
  Tensor out = tensor::matmul(weights_, cached_cols_);
  const std::size_t ohw = geometry_.out_height() * geometry_.out_width();
  float* op = out.raw();
  for (std::size_t oc = 0; oc < geometry_.out_channels; ++oc) {
    const float b = bias_.at(oc);
    for (std::size_t i = 0; i < ohw; ++i) op[oc * ohw + i] += b;
  }
  return out.reshaped({geometry_.out_channels, geometry_.out_height(), geometry_.out_width()});
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  const std::size_t ohw = geometry_.out_height() * geometry_.out_width();
  EUGENE_REQUIRE(grad_output.numel() == geometry_.out_channels * ohw,
                 "Conv2d::backward: gradient shape mismatch");
  const Tensor grad_mat = grad_output.reshaped({geometry_.out_channels, ohw});
  grad_weights_ += tensor::matmul_transpose_b(grad_mat, cached_cols_);
  for (std::size_t oc = 0; oc < geometry_.out_channels; ++oc) {
    float acc = 0.0f;
    for (std::size_t i = 0; i < ohw; ++i) acc += grad_mat.at(oc, i);
    grad_bias_.at(oc) += acc;
  }
  const Tensor grad_cols = tensor::matmul_transpose_a(weights_, grad_mat);
  return tensor::col2im(grad_cols, geometry_);
}

std::vector<ParamRef> Conv2d::params() {
  return {{&weights_, &grad_weights_}, {&bias_, &grad_bias_}};
}

std::string Conv2d::name() const {
  return "conv" + std::to_string(geometry_.kernel) + "x" + std::to_string(geometry_.kernel) +
         "(" + std::to_string(geometry_.in_channels) + "->" +
         std::to_string(geometry_.out_channels) + ")";
}

// ----------------------------------------------------------------- Dense

Dense::Dense(std::size_t in_features, std::size_t out_features, Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      weights_({out_features, in_features}),
      bias_({out_features}),
      grad_weights_(weights_.shape()),
      grad_bias_(bias_.shape()) {
  EUGENE_REQUIRE(in_features > 0 && out_features > 0, "Dense: zero-sized layer");
  const float stddev = static_cast<float>(std::sqrt(2.0 / static_cast<double>(in_features)));
  weights_ = Tensor::randn(weights_.shape(), rng, stddev);
}

Tensor Dense::forward(const Tensor& input, bool /*training*/) {
  EUGENE_REQUIRE(input.numel() == in_features_, "Dense::forward: input size mismatch");
  cached_input_ = input.reshaped({in_features_});
  Tensor out({out_features_});
  const float* w = weights_.raw();
  const float* x = cached_input_.raw();
  for (std::size_t o = 0; o < out_features_; ++o) {
    float acc = bias_.at(o);
    const float* wrow = w + o * in_features_;
    for (std::size_t i = 0; i < in_features_; ++i) acc += wrow[i] * x[i];
    out.at(o) = acc;
  }
  return out;
}

Tensor Dense::backward(const Tensor& grad_output) {
  EUGENE_REQUIRE(grad_output.numel() == out_features_, "Dense::backward: grad size mismatch");
  const float* g = grad_output.raw();
  const float* x = cached_input_.raw();
  float* gw = grad_weights_.raw();
  for (std::size_t o = 0; o < out_features_; ++o) {
    grad_bias_.at(o) += g[o];
    float* gwrow = gw + o * in_features_;
    for (std::size_t i = 0; i < in_features_; ++i) gwrow[i] += g[o] * x[i];
  }
  Tensor grad_in({in_features_});
  const float* w = weights_.raw();
  float* gi = grad_in.raw();
  for (std::size_t o = 0; o < out_features_; ++o) {
    const float* wrow = w + o * in_features_;
    for (std::size_t i = 0; i < in_features_; ++i) gi[i] += g[o] * wrow[i];
  }
  return grad_in;
}

std::vector<ParamRef> Dense::params() {
  return {{&weights_, &grad_weights_}, {&bias_, &grad_bias_}};
}

std::string Dense::name() const {
  return "dense(" + std::to_string(in_features_) + "->" + std::to_string(out_features_) + ")";
}

// ------------------------------------------------------------------ ReLU

Tensor ReLU::forward(const Tensor& input, bool /*training*/) {
  mask_ = Tensor(input.shape());
  Tensor out(input.shape());
  const float* x = input.raw();
  float* m = mask_.raw();
  float* o = out.raw();
  for (std::size_t i = 0; i < input.numel(); ++i) {
    const bool positive = x[i] > 0.0f;
    m[i] = positive ? 1.0f : 0.0f;
    o[i] = positive ? x[i] : 0.0f;
  }
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  EUGENE_REQUIRE(grad_output.numel() == mask_.numel(), "ReLU::backward: shape mismatch");
  Tensor grad_in(mask_.shape());
  const float* g = grad_output.raw();
  const float* m = mask_.raw();
  float* gi = grad_in.raw();
  for (std::size_t i = 0; i < mask_.numel(); ++i) gi[i] = g[i] * m[i];
  return grad_in;
}

// ----------------------------------------------------------- ChannelNorm

ChannelNorm::ChannelNorm(std::size_t channels, float epsilon)
    : channels_(channels),
      epsilon_(epsilon),
      gain_({channels}, 1.0f),
      bias_({channels}),
      grad_gain_({channels}),
      grad_bias_({channels}) {
  EUGENE_REQUIRE(channels > 0, "ChannelNorm: zero channels");
}

Tensor ChannelNorm::forward(const Tensor& input, bool /*training*/) {
  EUGENE_REQUIRE(input.rank() == 3 && input.dim(0) == channels_,
                 "ChannelNorm::forward: expected CHW with matching channels");
  const std::size_t hw = input.dim(1) * input.dim(2);
  cached_xhat_ = Tensor(input.shape());
  cached_inv_std_.assign(channels_, 0.0f);
  Tensor out(input.shape());
  const float* x = input.raw();
  float* xh = cached_xhat_.raw();
  float* o = out.raw();
  for (std::size_t c = 0; c < channels_; ++c) {
    const float* xc = x + c * hw;
    double mean = 0.0;
    for (std::size_t i = 0; i < hw; ++i) mean += xc[i];
    mean /= static_cast<double>(hw);
    double var = 0.0;
    for (std::size_t i = 0; i < hw; ++i) var += (xc[i] - mean) * (xc[i] - mean);
    var /= static_cast<double>(hw);
    const float inv_std = static_cast<float>(1.0 / std::sqrt(var + epsilon_));
    cached_inv_std_[c] = inv_std;
    const float g = gain_.at(c), b = bias_.at(c);
    for (std::size_t i = 0; i < hw; ++i) {
      const float xhat = (xc[i] - static_cast<float>(mean)) * inv_std;
      xh[c * hw + i] = xhat;
      o[c * hw + i] = g * xhat + b;
    }
  }
  return out;
}

Tensor ChannelNorm::backward(const Tensor& grad_output) {
  EUGENE_REQUIRE(grad_output.same_shape(cached_xhat_), "ChannelNorm::backward: shape mismatch");
  const std::size_t hw = cached_xhat_.dim(1) * cached_xhat_.dim(2);
  Tensor grad_in(cached_xhat_.shape());
  const float* g = grad_output.raw();
  const float* xh = cached_xhat_.raw();
  float* gi = grad_in.raw();
  for (std::size_t c = 0; c < channels_; ++c) {
    const float* gc = g + c * hw;
    const float* xhc = xh + c * hw;
    double sum_g = 0.0, sum_gx = 0.0;
    for (std::size_t i = 0; i < hw; ++i) {
      sum_g += gc[i];
      sum_gx += gc[i] * xhc[i];
    }
    grad_bias_.at(c) += static_cast<float>(sum_g);
    grad_gain_.at(c) += static_cast<float>(sum_gx);
    const float gain = gain_.at(c);
    const float inv_std = cached_inv_std_[c];
    const float mean_g = static_cast<float>(sum_g / static_cast<double>(hw));
    const float mean_gx = static_cast<float>(sum_gx / static_cast<double>(hw));
    for (std::size_t i = 0; i < hw; ++i)
      gi[c * hw + i] = gain * inv_std * (gc[i] - mean_g - xhc[i] * mean_gx);
  }
  return grad_in;
}

std::vector<ParamRef> ChannelNorm::params() {
  return {{&gain_, &grad_gain_}, {&bias_, &grad_bias_}};
}

// --------------------------------------------------------------- Dropout

Dropout::Dropout(float drop_probability, std::uint64_t seed)
    : p_(drop_probability), seed_(seed), rng_(seed) {
  EUGENE_REQUIRE(p_ >= 0.0f && p_ < 1.0f, "Dropout: probability must be in [0, 1)");
}

Tensor Dropout::forward(const Tensor& input, bool training) {
  last_training_ = training;
  if (!training || p_ == 0.0f) return input;
  mask_ = Tensor(input.shape());
  Tensor out(input.shape());
  const float keep = 1.0f - p_;
  const float scale = 1.0f / keep;
  const float* x = input.raw();
  float* m = mask_.raw();
  float* o = out.raw();
  for (std::size_t i = 0; i < input.numel(); ++i) {
    const bool keep_unit = !rng_.bernoulli(p_);
    m[i] = keep_unit ? scale : 0.0f;
    o[i] = x[i] * m[i];
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (!last_training_ || p_ == 0.0f) return grad_output;
  EUGENE_REQUIRE(grad_output.numel() == mask_.numel(), "Dropout::backward: shape mismatch");
  Tensor grad_in(mask_.shape());
  const float* g = grad_output.raw();
  const float* m = mask_.raw();
  float* gi = grad_in.raw();
  for (std::size_t i = 0; i < mask_.numel(); ++i) gi[i] = g[i] * m[i];
  return grad_in;
}

std::string Dropout::name() const {
  return "dropout(p=" + std::to_string(p_) + ")";
}

// --------------------------------------------------------------- Flatten

Tensor Flatten::forward(const Tensor& input, bool /*training*/) {
  cached_shape_ = input.shape();
  return input.reshaped({input.numel()});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  return grad_output.reshaped(cached_shape_);
}

// --------------------------------------------------------- GlobalAvgPool

Tensor GlobalAvgPool::forward(const Tensor& input, bool /*training*/) {
  cached_shape_ = input.shape();
  return tensor::global_avg_pool(input);
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output) {
  EUGENE_REQUIRE(cached_shape_.size() == 3, "GlobalAvgPool::backward before forward");
  const std::size_t c = cached_shape_[0];
  const std::size_t hw = cached_shape_[1] * cached_shape_[2];
  EUGENE_REQUIRE(grad_output.numel() == c, "GlobalAvgPool::backward: grad size mismatch");
  Tensor grad_in(cached_shape_);
  float* gi = grad_in.raw();
  for (std::size_t ch = 0; ch < c; ++ch) {
    const float share = grad_output.at(ch) / static_cast<float>(hw);
    for (std::size_t i = 0; i < hw; ++i) gi[ch * hw + i] = share;
  }
  return grad_in;
}

// -------------------------------------------------------------- MaxPool2

Tensor MaxPool2::forward(const Tensor& input, bool /*training*/) {
  EUGENE_REQUIRE(input.rank() == 3, "MaxPool2: expected CHW image");
  cached_in_shape_ = input.shape();
  const std::size_t c = input.dim(0);
  const std::size_t oh = input.dim(1) / 2, ow = input.dim(2) / 2;
  EUGENE_REQUIRE(oh > 0 && ow > 0, "MaxPool2: image too small");
  Tensor out({c, oh, ow});
  argmax_.assign(c * oh * ow, 0);
  const std::size_t ih = input.dim(1), iw = input.dim(2);
  const float* x = input.raw();
  for (std::size_t ch = 0; ch < c; ++ch) {
    for (std::size_t y = 0; y < oh; ++y) {
      for (std::size_t xo = 0; xo < ow; ++xo) {
        std::size_t best = ch * ih * iw + (2 * y) * iw + 2 * xo;
        for (std::size_t dy = 0; dy < 2; ++dy)
          for (std::size_t dx = 0; dx < 2; ++dx) {
            const std::size_t idx = ch * ih * iw + (2 * y + dy) * iw + (2 * xo + dx);
            if (x[idx] > x[best]) best = idx;
          }
        out.at(ch, y, xo) = x[best];
        argmax_[(ch * oh + y) * ow + xo] = best;
      }
    }
  }
  return out;
}

Tensor MaxPool2::backward(const Tensor& grad_output) {
  EUGENE_REQUIRE(grad_output.numel() == argmax_.size(), "MaxPool2::backward: shape mismatch");
  Tensor grad_in(cached_in_shape_);
  float* gi = grad_in.raw();
  const float* g = grad_output.raw();
  for (std::size_t i = 0; i < argmax_.size(); ++i) gi[argmax_[i]] += g[i];
  return grad_in;
}

// ----------------------------------------------------------------- clone
//
// Each clone() copies configuration + learned parameters only. Forward /
// backward scratch (cached activations, masks, argmax tables, gradient
// accumulators) stays at its freshly-constructed state: it is meaningless
// outside a forward/backward pair, and it is the only layer state written
// by concurrent inference — skipping it is what makes cloning a published,
// actively-served model race-free (see Layer::clone).

std::unique_ptr<Layer> Conv2d::clone() const {
  Rng init_rng(0);  // initializer weights are replaced by the copy below
  auto copy = std::make_unique<Conv2d>(geometry_, init_rng);
  copy->weights_ = weights_;
  copy->bias_ = bias_;
  return copy;
}

std::unique_ptr<Layer> Dense::clone() const {
  Rng init_rng(0);  // initializer weights are replaced by the copy below
  auto copy = std::make_unique<Dense>(in_features_, out_features_, init_rng);
  copy->weights_ = weights_;
  copy->bias_ = bias_;
  return copy;
}

std::unique_ptr<Layer> ReLU::clone() const { return std::make_unique<ReLU>(); }

std::unique_ptr<Layer> ChannelNorm::clone() const {
  auto copy = std::make_unique<ChannelNorm>(channels_, epsilon_);
  copy->gain_ = gain_;
  copy->bias_ = bias_;
  return copy;
}

std::unique_ptr<Layer> Dropout::clone() const {
  // Restart the sampler from the construction seed rather than copying the
  // advancing rng_ state: the latter is mutated by MC-dropout forwards, which
  // would break the clone-never-reads-inference-written-memory guarantee.
  return std::make_unique<Dropout>(p_, seed_);
}

std::unique_ptr<Layer> Flatten::clone() const { return std::make_unique<Flatten>(); }

std::unique_ptr<Layer> GlobalAvgPool::clone() const { return std::make_unique<GlobalAvgPool>(); }

std::unique_ptr<Layer> MaxPool2::clone() const { return std::make_unique<MaxPool2>(); }

}  // namespace eugene::nn
