#include "serving/server.hpp"

#include "common/check.hpp"
#include "common/clock.hpp"
#include "sched/policy.hpp"

namespace eugene::serving {

using tensor::Tensor;

InferenceServer::InferenceServer(ModelEntry& entry, ServerConfig config)
    : entry_(entry), config_(std::move(config)) {
  EUGENE_REQUIRE(entry_.curves.fitted(),
                 "InferenceServer: model has no fitted confidence curves; "
                 "calibrate and fit curves before serving");
  EUGENE_REQUIRE(!config_.classes.empty(), "InferenceServer: no service classes");
  EUGENE_REQUIRE(config_.lookahead >= 1, "InferenceServer: lookahead must be >= 1");
}

std::vector<InferenceResponse> InferenceServer::process_batch(
    const std::vector<InferenceRequest>& requests) {
  EUGENE_REQUIRE(!requests.empty(), "process_batch: empty batch");
  for (const auto& r : requests)
    EUGENE_REQUIRE(r.service_class < config_.classes.size(),
                   "process_batch: unknown service class");

  const std::size_t num_stages = entry_.model.num_stages();
  sched::GpUtilityEstimator estimator(entry_.curves);
  sched::GreedyUtilityPolicy policy(estimator, config_.lookahead);
  std::vector<double> weights;
  weights.reserve(config_.classes.size());
  for (const auto& c : config_.classes) weights.push_back(c.utility_weight);
  policy.set_service_weights(std::move(weights));

  struct RequestState {
    Tensor features;
    std::vector<double> observed;
    std::size_t stages_done = 0;
    std::size_t label = 0;
    bool done = false;
    bool expired = false;
    double finish_ms = 0.0;
  };
  std::vector<RequestState> state(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) state[i].features = requests[i].input;

  WallClock clock;
  std::size_t remaining = requests.size();
  auto deadline_of = [&](std::size_t i) {
    return config_.classes[requests[i].service_class].deadline_ms;
  };

  while (remaining > 0) {
    const double now = clock.now_ms();
    // Latency daemon sweep: expire overdue requests.
    for (std::size_t i = 0; i < state.size(); ++i) {
      if (state[i].done) continue;
      if (now >= deadline_of(i)) {
        state[i].done = true;
        state[i].expired = true;
        state[i].finish_ms = now;
        --remaining;
      }
    }
    if (remaining == 0) break;

    std::vector<sched::TaskView> runnable;
    for (std::size_t i = 0; i < state.size(); ++i) {
      if (state[i].done || state[i].stages_done >= num_stages) continue;
      sched::TaskView v;
      v.task_id = i;
      v.service = requests[i].service_class;
      v.stages_done = state[i].stages_done;
      v.total_stages = num_stages;
      v.arrival_ms = 0.0;
      v.deadline_ms = deadline_of(i);
      v.observed_confidence = state[i].observed;
      runnable.push_back(v);
    }
    EUGENE_CHECK(!runnable.empty())
        << "process_batch: " << remaining << " live requests but none runnable";
    const auto choice = policy.pick(runnable, now);
    EUGENE_CHECK(choice.has_value()) << "process_batch: policy returned no task";

    RequestState& s = state[*choice];
    const nn::StageOutput out = entry_.model.run_stage(s.stages_done, s.features);
    ++s.stages_done;
    s.observed.push_back(out.confidence);
    s.label = out.predicted_label;
    s.features = std::move(out.features);
    policy.on_stage_complete(*choice, s.stages_done - 1, out.confidence);
    if (s.stages_done == num_stages || out.confidence >= config_.early_exit_confidence) {
      s.done = true;
      s.finish_ms = clock.now_ms();
      --remaining;
    }
  }

  std::vector<InferenceResponse> responses(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    responses[i].label = state[i].label;
    responses[i].confidence = state[i].observed.empty() ? 0.0 : state[i].observed.back();
    responses[i].stages_run = state[i].stages_done;
    responses[i].expired = state[i].expired;
    responses[i].latency_ms = state[i].finish_ms;
  }
  return responses;
}

}  // namespace eugene::serving
