#include "serving/server.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/clock.hpp"
#include "common/failpoint.hpp"
#include "common/logging.hpp"
#include "sched/policy.hpp"

namespace eugene::serving {

using tensor::Tensor;

InferenceServer::InferenceServer(ModelEntry& entry, ServerConfig config)
    : entry_(entry), config_(std::move(config)) {
  EUGENE_REQUIRE(entry_.curves.fitted(),
                 "InferenceServer: model has no fitted confidence curves; "
                 "calibrate and fit curves before serving");
  EUGENE_REQUIRE(!config_.classes.empty(), "InferenceServer: no service classes");
  EUGENE_REQUIRE(config_.lookahead >= 1, "InferenceServer: lookahead must be >= 1");
  EUGENE_REQUIRE(config_.shed_max_stages >= 1,
                 "InferenceServer: shed requests need at least one stage");
  EUGENE_REQUIRE(config_.shed_confidence <= 1.0,
                 "InferenceServer: shed_confidence above 1 would never stop");
  const BrownoutConfig& bo = config_.brownout;
  EUGENE_REQUIRE(bo.setpoint_fraction > 0.0,
                 "InferenceServer: brownout setpoint_fraction must be positive");
  EUGENE_REQUIRE(bo.setpoint_ms >= 0.0,
                 "InferenceServer: brownout setpoint_ms must be non-negative");
  EUGENE_REQUIRE(bo.capacity_step >= 0.0 && bo.capacity_step <= 1.0,
                 "InferenceServer: brownout capacity_step outside [0,1]");
  EUGENE_REQUIRE(bo.confidence_step >= 0.0,
                 "InferenceServer: brownout confidence_step must be non-negative");
  EUGENE_REQUIRE(bo.recover_ratio >= 0.0 && bo.recover_ratio < 1.0,
                 "InferenceServer: brownout recover_ratio outside [0,1)");
}

namespace {

struct RequestState {
  Tensor features;
  std::vector<double> observed;
  std::size_t stages_done = 0;
  std::size_t label = 0;
  std::size_t retries = 0;
  bool done = false;
  bool expired = false;
  bool degraded = false;
  bool browned_out = false;
  double first_stage_ms = -1.0;  ///< admission-to-first-stage queue delay
  double finish_ms = 0.0;
  telemetry::SpanHandle span;  ///< per-request timeline (null when untraced)
};

/// Closes a request's span: stage = stages completed, value = confidence.
void end_span(RequestState& s, double now) {
  s.span.event(telemetry::TraceEventKind::kExit, now,
               static_cast<std::uint32_t>(s.stages_done), 0,
               s.observed.empty() ? 0.0 : s.observed.back());
}

}  // namespace

std::vector<InferenceResponse> InferenceServer::process_batch(
    const std::vector<InferenceRequest>& requests) {
  // Up-front validation: reject malformed batches with typed errors before
  // any stage runs.
  EUGENE_REQUIRE(!requests.empty(), "process_batch: empty batch");
  for (const auto& r : requests) {
    EUGENE_REQUIRE(r.service_class < config_.classes.size(),
                   "process_batch: unknown service class");
    EUGENE_REQUIRE(r.input.numel() > 0, "process_batch: empty input tensor");
  }

  // Lifecycle gate (DESIGN.md §13): checked before every other admission
  // decision — including the brown-out seam below — so a draining server
  // answers with typed drain rejections, never brown-out sheds. No stage
  // runs for a rejected batch.
  if (config_.lifecycle != nullptr &&
      !config_.lifecycle->try_admit(requests.size())) {
    WallClock reject_clock;
    const double now = reject_clock.now_ms();
    std::vector<InferenceResponse> rejected(requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
      rejected[i].draining = true;
      if (config_.trace != nullptr) {
        telemetry::SpanHandle span = config_.trace->begin_span(
            now, static_cast<std::uint32_t>(requests[i].service_class));
        span.event(telemetry::TraceEventKind::kDrain, now);
        rejected[i].span_id = span.id();
      }
    }
    if (config_.metrics != nullptr)
      config_.metrics->counter("serving.drain.rejections").inc(requests.size());
    return rejected;
  }
  // Every admitted unit is finished exactly once, on every exit path — this
  // is what makes begin_drain()'s in-flight count reach zero.
  struct LifecycleFinisher {
    ServerLifecycle* lifecycle;
    std::size_t units;
    ~LifecycleFinisher() {
      if (lifecycle != nullptr) lifecycle->finish(units);
    }
  } finisher{config_.lifecycle, requests.size()};

  const std::size_t num_stages = entry_.model.num_stages();
  sched::GpUtilityEstimator estimator(entry_.curves);
  sched::GreedyUtilityPolicy policy(estimator, config_.lookahead);
  std::vector<double> weights;
  weights.reserve(config_.classes.size());
  for (const auto& c : config_.classes) weights.push_back(c.utility_weight);
  policy.set_service_weights(std::move(weights));

  std::vector<RequestState> state(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) state[i].features = requests[i].input;

  WallClock clock;

  using telemetry::TraceEventKind;
  // Per-stage latency histograms resolved once; record() is lock-free so
  // the stage loop never touches the registry mutex.
  std::vector<telemetry::LatencyHistogram*> stage_hists;
  if (config_.metrics != nullptr) {
    stage_hists.reserve(num_stages);
    for (std::size_t s = 0; s < num_stages; ++s)
      stage_hists.push_back(&config_.metrics->histogram(
          "serving.stage_latency_ms.stage" + std::to_string(s)));
  }

  // Bookkeeping for one stage failure (injected or real) on request `i`:
  // burns one retry; past the budget the request finishes degraded with its
  // best result so far. Returns false when the request was finished here.
  // Shared by the per-sample runner and the batched first stage so fault
  // accounting (fires == retries) is identical on both paths.
  auto note_stage_failure = [&](std::size_t i, const Error& e) -> bool {
    RequestState& s = state[i];
    ++s.retries;
    if (s.span)
      s.span.event(TraceEventKind::kStageError, clock.now_ms(),
                   static_cast<std::uint32_t>(s.stages_done));
    if (s.retries > config_.max_stage_retries) {
      EUGENE_LOG(Warn) << "serving: request " << i
                       << " exhausted stage retries; degrading: " << e.what();
      s.done = true;
      s.degraded = true;
      s.finish_ms = clock.now_ms();
      s.span.event(TraceEventKind::kDegrade, s.finish_ms);
      end_span(s, s.finish_ms);
      return false;
    }
    if (s.span)
      s.span.event(TraceEventKind::kRetry, clock.now_ms(),
                   static_cast<std::uint32_t>(s.stages_done));
    return true;
  };

  // Runs one stage for request `i`, absorbing injected or real stage
  // failures: a throwing stage is retried up to max_stage_retries times;
  // past the budget the request completes degraded with its best result so
  // far. Returns false when the request was finished by the failure path.
  auto run_stage_guarded = [&](std::size_t i) -> bool {
    RequestState& s = state[i];
    for (;;) {
      try {
        EUGENE_FAILPOINT("serving.stage.crash");
        Stopwatch stage_watch;
        const nn::StageOutput out = entry_.model.run_stage(s.stages_done, s.features);
        if (s.stages_done < stage_hists.size())
          stage_hists[s.stages_done]->record(stage_watch.elapsed_ms());
        if (s.span)
          s.span.event(TraceEventKind::kStageDone, clock.now_ms(),
                       static_cast<std::uint32_t>(s.stages_done), 0,
                       out.confidence);
        ++s.stages_done;
        s.observed.push_back(out.confidence);
        s.label = out.predicted_label;
        s.features = std::move(out.features);
        return true;
      } catch (const Error& e) {
        if (!note_stage_failure(i, e)) return false;
      }
    }
  };

  // Adaptive admission (DESIGN.md §11): the brown-out level — escalated by
  // the controller at the end of earlier batches, or forced by the
  // admit.brownout.force chaos seam — shrinks the effective capacity and
  // cheapens the shed answer. At level 0 this is exactly the static
  // admission controller; the static capacity is always the hard ceiling.
  const BrownoutConfig& bo = config_.brownout;
  if (bo.enabled && EUGENE_FAILPOINT_FIRED("admit.brownout.force"))
    brownout_level_ = std::min(brownout_level_ + 1, bo.max_level);
  const std::size_t level = bo.enabled ? brownout_level_ : 0;
  const std::size_t base_capacity = config_.admission_capacity > 0
                                        ? config_.admission_capacity
                                        : requests.size();
  std::size_t eff_capacity = base_capacity;
  double eff_shed_confidence = config_.shed_confidence;
  std::size_t eff_shed_stages = config_.shed_max_stages;
  if (level > 0) {
    const double keep =
        std::max(0.0, 1.0 - static_cast<double>(level) * bo.capacity_step);
    eff_capacity = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::floor(static_cast<double>(base_capacity) * keep)));
    eff_capacity = std::min(eff_capacity, base_capacity);
    eff_shed_confidence = std::max(
        0.0, config_.shed_confidence -
                 static_cast<double>(level) * bo.confidence_step);
    eff_shed_stages =
        config_.shed_max_stages > level ? config_.shed_max_stages - level : 1;
  }

  // Open one span per request at admission; a non-zero brown-out level is
  // part of every request's admission record (the chaos-seam trace test
  // pins this on admit.brownout.force).
  if (config_.trace != nullptr) {
    const double admit_ms = clock.now_ms();
    for (std::size_t i = 0; i < requests.size(); ++i) {
      state[i].span = config_.trace->begin_span(
          admit_ms, static_cast<std::uint32_t>(requests[i].service_class));
      if (level > 0)
        state[i].span.event(TraceEventKind::kBrownout, admit_ms, 0, 0,
                            static_cast<double>(level));
    }
  }

  // Admission control: everything past the effective capacity is shed, not
  // rejected. A shed request answers from the earliest exit that clears the
  // (possibly browned-out) shed confidence, bounded by the stage budget —
  // the cheapest valid answer the multi-exit model can give.
  const bool overloaded = requests.size() > eff_capacity;
  std::size_t remaining = requests.size();
  if (overloaded) {
    EUGENE_LOG(Warn) << "serving: batch of " << requests.size() << " exceeds "
                     << "effective admission capacity " << eff_capacity
                     << " (brown-out level " << level << "); shedding "
                     << (requests.size() - eff_capacity)
                     << " request(s) to the earliest confident exit";
    const std::size_t stage_budget = std::min(eff_shed_stages, num_stages);
    for (std::size_t i = eff_capacity; i < requests.size(); ++i) {
      RequestState& s = state[i];
      // browned_out marks the requests the *controller* shed: those the
      // static ceiling alone would have admitted.
      s.browned_out = i < base_capacity;
      if (s.span)
        s.span.event(TraceEventKind::kShed, clock.now_ms(), 0, 0,
                     s.browned_out ? 1.0 : 0.0);
      while (!s.done && s.stages_done < stage_budget) {
        if (!run_stage_guarded(i)) break;
        if (s.observed.back() >= eff_shed_confidence) break;
      }
      if (!s.done) {
        s.done = true;
        s.degraded = true;
        s.finish_ms = clock.now_ms();
        s.span.event(TraceEventKind::kDegrade, s.finish_ms);
        end_span(s, s.finish_ms);
      }
      --remaining;
    }
  }

  auto deadline_of = [&](std::size_t i) {
    return config_.classes[requests[i].service_class].deadline_ms;
  };

  // Post-stage bookkeeping shared by the per-sample loop and the batched
  // first stage: feed the policy, then finish the request on full
  // completion or confident early exit.
  auto post_stage_bookkeeping = [&](std::size_t i) {
    RequestState& s = state[i];
    policy.on_stage_complete(i, s.stages_done - 1, s.observed.back());
    if (s.stages_done == num_stages ||
        s.observed.back() >= config_.early_exit_confidence) {
      s.done = true;
      s.finish_ms = clock.now_ms();
      --remaining;
      end_span(s, s.finish_ms);
    }
  };

  // Batched first stage (DESIGN.md §14): every admitted, still-live request
  // at stage 0 whose deadline has not passed runs its first stage as one
  // arena-backed batched forward per input shape — one wide GEMM per layer
  // instead of one narrow GEMM per request. run_stage_batch is bitwise-
  // identical to run_stage per member, so confidences, labels, early exits,
  // and the policy's view of the world match the per-sample path exactly.
  // Fault semantics are preserved member-by-member: the stage-crash chaos
  // seam is consumed once per member (exactly the evaluation the per-sample
  // first attempt would make); a member whose seam fires falls back to the
  // guarded per-sample runner for its retries, and a real batched-kernel
  // failure silently leaves members at stage 0 for the main loop.
  auto run_first_stage_batched = [&](const std::vector<std::size_t>& group) {
    std::vector<std::size_t> live;
    live.reserve(group.size());
    for (std::size_t i : group) {
      try {
        EUGENE_FAILPOINT("serving.stage.crash");
        live.push_back(i);
      } catch (const Error& e) {
        if (!note_stage_failure(i, e)) {
          --remaining;
          continue;
        }
        state[i].first_stage_ms = clock.now_ms();
        if (!run_stage_guarded(i)) {
          --remaining;
          continue;
        }
        post_stage_bookkeeping(i);
      }
    }
    if (live.empty()) return;
    std::vector<const Tensor*> inputs;
    inputs.reserve(live.size());
    for (std::size_t i : live) inputs.push_back(&state[i].features);
    if (batch_items_.size() < live.size()) batch_items_.resize(live.size());
    const double start_ms = clock.now_ms();
    for (std::size_t i : live) state[i].first_stage_ms = start_ms;
    try {
      Stopwatch batch_watch;
      arena_.reset();
      entry_.model.run_stage_batch(
          0, std::span<const Tensor* const>(inputs.data(), live.size()),
          std::span<nn::StageBatchItem>(batch_items_.data(), live.size()),
          arena_);
      // The batch's cost is shared evenly across members in the per-stage
      // latency histogram — the per-member amortized cost is what capacity
      // planning reads off stage0's distribution.
      const double member_ms =
          batch_watch.elapsed_ms() / static_cast<double>(live.size());
      for (std::size_t b = 0; b < live.size(); ++b) {
        const std::size_t i = live[b];
        RequestState& s = state[i];
        nn::StageBatchItem& item = batch_items_[b];
        if (!stage_hists.empty()) stage_hists[0]->record(member_ms);
        if (s.span)
          s.span.event(TraceEventKind::kStageDone, clock.now_ms(), 0, 0,
                       item.confidence);
        s.stages_done = 1;
        s.observed.push_back(item.confidence);
        s.label = item.predicted_label;
        s.features = std::move(item.features);
        post_stage_bookkeeping(i);
      }
    } catch (const Error& e) {
      EUGENE_LOG(Warn) << "serving: batched first stage failed ("
                       << e.what() << "); falling back to per-sample runs";
      for (std::size_t i : live) state[i].first_stage_ms = -1.0;
    }
  };

  if (config_.batch_first_stage && num_stages > 0 && remaining > 0) {
    const double now = clock.now_ms();
    std::vector<std::size_t> pending;
    for (std::size_t i = 0; i < state.size(); ++i)
      if (!state[i].done && state[i].stages_done == 0 && now < deadline_of(i))
        pending.push_back(i);
    std::vector<std::size_t> group;
    for (std::size_t gi = 0; gi < pending.size(); ++gi) {
      const std::size_t rep = pending[gi];
      // Skip members a previous group already ran (or finished).
      if (state[rep].done || state[rep].stages_done != 0) continue;
      group.clear();
      for (std::size_t gj = gi; gj < pending.size(); ++gj) {
        const std::size_t j = pending[gj];
        if (!state[j].done && state[j].stages_done == 0 &&
            state[j].features.same_shape(state[rep].features))
          group.push_back(j);
      }
      if (group.size() < 2) continue;  // nothing to amortize
      run_first_stage_batched(group);
    }
  }

  while (remaining > 0) {
    const double now = clock.now_ms();
    // Latency daemon sweep: expire overdue requests.
    for (std::size_t i = 0; i < state.size(); ++i) {
      if (state[i].done) continue;
      if (now >= deadline_of(i)) {
        state[i].done = true;
        state[i].expired = true;
        state[i].finish_ms = now;
        --remaining;
        state[i].span.event(TraceEventKind::kExpire, now);
        end_span(state[i], now);
      }
    }
    if (remaining == 0) break;

    std::vector<sched::TaskView> runnable;
    for (std::size_t i = 0; i < state.size(); ++i) {
      if (state[i].done || state[i].stages_done >= num_stages) continue;
      sched::TaskView v;
      v.task_id = i;
      v.service = requests[i].service_class;
      v.stages_done = state[i].stages_done;
      v.total_stages = num_stages;
      v.arrival_ms = 0.0;
      v.deadline_ms = deadline_of(i);
      v.observed_confidence = state[i].observed;
      runnable.push_back(v);
    }
    EUGENE_CHECK(!runnable.empty())
        << "process_batch: " << remaining << " live requests but none runnable";
    const auto choice = policy.pick(runnable, now);
    EUGENE_CHECK(choice.has_value()) << "process_batch: policy returned no task";

    RequestState& s = state[*choice];
    if (s.first_stage_ms < 0.0) s.first_stage_ms = now;  // queue delay sample
    if (!run_stage_guarded(*choice)) {
      --remaining;
      continue;
    }
    post_stage_bookkeeping(*choice);
  }

  // Feed the measured queue delay back into the brown-out controller: the
  // class-weighted mean admission-to-first-stage delay of the admitted
  // requests, against the class-weighted setpoint. Over the setpoint the
  // level escalates (shedding more next batch); comfortably under it
  // (recover_ratio hysteresis) the level steps back down.
  if (bo.enabled) {
    double weighted_delay = 0.0;
    double weighted_setpoint = 0.0;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (state[i].first_stage_ms < 0.0) continue;  // shed or never scheduled
      const ServiceClassConfig& cls = config_.classes[requests[i].service_class];
      const double setpoint = std::isfinite(cls.deadline_ms)
                                  ? cls.deadline_ms * bo.setpoint_fraction
                                  : bo.setpoint_ms;
      weighted_delay += cls.utility_weight * state[i].first_stage_ms;
      weighted_setpoint += cls.utility_weight * setpoint;
    }
    if (weighted_setpoint > 0.0 || weighted_delay > 0.0) {
      const double ratio =
          weighted_setpoint > 0.0
              ? weighted_delay / weighted_setpoint
              : std::numeric_limits<double>::infinity();
      if (ratio > 1.0 && brownout_level_ < bo.max_level) {
        ++brownout_level_;
        EUGENE_LOG(Warn) << "serving: queue delay at " << ratio
                         << "x the setpoint; brown-out escalates to level "
                         << brownout_level_;
      } else if (ratio < bo.recover_ratio && brownout_level_ > 0) {
        --brownout_level_;
        EUGENE_LOG(Info) << "serving: queue delay at " << ratio
                         << "x the setpoint; brown-out recovers to level "
                         << brownout_level_;
      }
    }
  }

  if (config_.metrics != nullptr) {
    // inc(0) still registers the instrument, so every serving counter is
    // present in metrics_text() even on an uneventful batch.
    telemetry::MetricsRegistry& m = *config_.metrics;
    std::size_t expired = 0;
    std::size_t degraded = 0;
    std::size_t brownout_sheds = 0;
    std::size_t retries = 0;
    for (const RequestState& s : state) {
      expired += s.expired ? 1 : 0;
      degraded += s.degraded ? 1 : 0;
      brownout_sheds += s.browned_out ? 1 : 0;
      retries += s.retries;
    }
    m.counter("serving.requests").inc(requests.size());
    m.counter("serving.sheds").inc(overloaded ? requests.size() - eff_capacity : 0);
    m.counter("serving.brownout_sheds").inc(brownout_sheds);
    m.counter("serving.expired").inc(expired);
    m.counter("serving.degraded").inc(degraded);
    m.counter("serving.retries").inc(retries);
    m.gauge("serving.brownout.level").set(static_cast<double>(brownout_level_));
  }

  std::vector<InferenceResponse> responses(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    responses[i].label = state[i].label;
    responses[i].confidence = state[i].observed.empty() ? 0.0 : state[i].observed.back();
    responses[i].stages_run = state[i].stages_done;
    responses[i].expired = state[i].expired;
    responses[i].degraded = state[i].degraded;
    responses[i].browned_out = state[i].browned_out;
    responses[i].retries = state[i].retries;
    responses[i].latency_ms = state[i].finish_ms;
    responses[i].span_id = state[i].span.id();
  }
  return responses;
}

}  // namespace eugene::serving
