#include "serving/server.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/clock.hpp"
#include "common/failpoint.hpp"
#include "common/logging.hpp"
#include "sched/policy.hpp"

namespace eugene::serving {

using tensor::Tensor;

InferenceServer::InferenceServer(ModelEntry& entry, ServerConfig config)
    : entry_(entry), config_(std::move(config)) {
  EUGENE_REQUIRE(entry_.curves.fitted(),
                 "InferenceServer: model has no fitted confidence curves; "
                 "calibrate and fit curves before serving");
  EUGENE_REQUIRE(!config_.classes.empty(), "InferenceServer: no service classes");
  EUGENE_REQUIRE(config_.lookahead >= 1, "InferenceServer: lookahead must be >= 1");
  EUGENE_REQUIRE(config_.shed_max_stages >= 1,
                 "InferenceServer: shed requests need at least one stage");
  EUGENE_REQUIRE(config_.shed_confidence <= 1.0,
                 "InferenceServer: shed_confidence above 1 would never stop");
}

namespace {

struct RequestState {
  Tensor features;
  std::vector<double> observed;
  std::size_t stages_done = 0;
  std::size_t label = 0;
  std::size_t retries = 0;
  bool done = false;
  bool expired = false;
  bool degraded = false;
  double finish_ms = 0.0;
};

}  // namespace

std::vector<InferenceResponse> InferenceServer::process_batch(
    const std::vector<InferenceRequest>& requests) {
  // Up-front validation: reject malformed batches with typed errors before
  // any stage runs.
  EUGENE_REQUIRE(!requests.empty(), "process_batch: empty batch");
  for (const auto& r : requests) {
    EUGENE_REQUIRE(r.service_class < config_.classes.size(),
                   "process_batch: unknown service class");
    EUGENE_REQUIRE(r.input.numel() > 0, "process_batch: empty input tensor");
  }

  const std::size_t num_stages = entry_.model.num_stages();
  sched::GpUtilityEstimator estimator(entry_.curves);
  sched::GreedyUtilityPolicy policy(estimator, config_.lookahead);
  std::vector<double> weights;
  weights.reserve(config_.classes.size());
  for (const auto& c : config_.classes) weights.push_back(c.utility_weight);
  policy.set_service_weights(std::move(weights));

  std::vector<RequestState> state(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) state[i].features = requests[i].input;

  WallClock clock;

  // Runs one stage for request `i`, absorbing injected or real stage
  // failures: a throwing stage is retried up to max_stage_retries times;
  // past the budget the request completes degraded with its best result so
  // far. Returns false when the request was finished by the failure path.
  auto run_stage_guarded = [&](std::size_t i) -> bool {
    RequestState& s = state[i];
    for (;;) {
      try {
        EUGENE_FAILPOINT("serving.stage.crash");
        const nn::StageOutput out = entry_.model.run_stage(s.stages_done, s.features);
        ++s.stages_done;
        s.observed.push_back(out.confidence);
        s.label = out.predicted_label;
        s.features = std::move(out.features);
        return true;
      } catch (const Error& e) {
        ++s.retries;
        if (s.retries > config_.max_stage_retries) {
          EUGENE_LOG(Warn) << "serving: request " << i
                           << " exhausted stage retries; degrading: " << e.what();
          s.done = true;
          s.degraded = true;
          s.finish_ms = clock.now_ms();
          return false;
        }
      }
    }
  };

  // Admission control: everything past the capacity is shed, not rejected.
  // A shed request answers from the earliest exit that clears
  // shed_confidence (bounded by shed_max_stages) — the cheapest valid
  // answer the multi-exit model can give.
  const bool overloaded =
      config_.admission_capacity > 0 && requests.size() > config_.admission_capacity;
  std::size_t remaining = requests.size();
  if (overloaded) {
    EUGENE_LOG(Warn) << "serving: batch of " << requests.size() << " exceeds "
                     << "admission capacity " << config_.admission_capacity
                     << "; shedding " << (requests.size() - config_.admission_capacity)
                     << " request(s) to the earliest confident exit";
    const std::size_t stage_budget = std::min(config_.shed_max_stages, num_stages);
    for (std::size_t i = config_.admission_capacity; i < requests.size(); ++i) {
      RequestState& s = state[i];
      while (!s.done && s.stages_done < stage_budget) {
        if (!run_stage_guarded(i)) break;
        if (s.observed.back() >= config_.shed_confidence) break;
      }
      if (!s.done) {
        s.done = true;
        s.degraded = true;
        s.finish_ms = clock.now_ms();
      }
      --remaining;
    }
  }

  auto deadline_of = [&](std::size_t i) {
    return config_.classes[requests[i].service_class].deadline_ms;
  };

  while (remaining > 0) {
    const double now = clock.now_ms();
    // Latency daemon sweep: expire overdue requests.
    for (std::size_t i = 0; i < state.size(); ++i) {
      if (state[i].done) continue;
      if (now >= deadline_of(i)) {
        state[i].done = true;
        state[i].expired = true;
        state[i].finish_ms = now;
        --remaining;
      }
    }
    if (remaining == 0) break;

    std::vector<sched::TaskView> runnable;
    for (std::size_t i = 0; i < state.size(); ++i) {
      if (state[i].done || state[i].stages_done >= num_stages) continue;
      sched::TaskView v;
      v.task_id = i;
      v.service = requests[i].service_class;
      v.stages_done = state[i].stages_done;
      v.total_stages = num_stages;
      v.arrival_ms = 0.0;
      v.deadline_ms = deadline_of(i);
      v.observed_confidence = state[i].observed;
      runnable.push_back(v);
    }
    EUGENE_CHECK(!runnable.empty())
        << "process_batch: " << remaining << " live requests but none runnable";
    const auto choice = policy.pick(runnable, now);
    EUGENE_CHECK(choice.has_value()) << "process_batch: policy returned no task";

    RequestState& s = state[*choice];
    if (!run_stage_guarded(*choice)) {
      --remaining;
      continue;
    }
    policy.on_stage_complete(*choice, s.stages_done - 1, s.observed.back());
    if (s.stages_done == num_stages ||
        s.observed.back() >= config_.early_exit_confidence) {
      s.done = true;
      s.finish_ms = clock.now_ms();
      --remaining;
    }
  }

  std::vector<InferenceResponse> responses(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    responses[i].label = state[i].label;
    responses[i].confidence = state[i].observed.empty() ? 0.0 : state[i].observed.back();
    responses[i].stages_run = state[i].stages_done;
    responses[i].expired = state[i].expired;
    responses[i].degraded = state[i].degraded;
    responses[i].retries = state[i].retries;
    responses[i].latency_ms = state[i].finish_ms;
  }
  return responses;
}

}  // namespace eugene::serving
