#include "serving/snapshot.hpp"

#include <sys/stat.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <sstream>

#include "common/failpoint.hpp"
#include "common/io.hpp"
#include "common/logging.hpp"
#include "nn/serialize.hpp"

namespace eugene::serving {
namespace {

namespace fs = std::filesystem;

constexpr std::uint32_t kManifestMagic = 0x4D475545;   // "EUGM"
constexpr std::uint32_t kArtifactsMagic = 0x41475545;  // "EUGA"
constexpr std::uint32_t kManifestVersion = 1;
constexpr std::uint32_t kArtifactsVersion = 1;

struct ManifestEntry {
  std::string name;
  std::string params_file;     ///< relative to the snapshot dir
  std::string artifacts_file;  ///< relative to the snapshot dir
};

struct Manifest {
  std::uint64_t epoch = 0;
  std::vector<ManifestEntry> models;
};

std::vector<std::uint8_t> encode_manifest(const Manifest& m) {
  io::ByteWriter w;
  w.u64(m.epoch);
  w.u64(m.models.size());
  for (const auto& e : m.models) {
    w.str(e.name);
    w.str(e.params_file);
    w.str(e.artifacts_file);
  }
  return w.take();
}

Manifest decode_manifest(const std::vector<std::uint8_t>& payload) {
  io::ByteReader r(payload, "snapshot manifest");
  Manifest m;
  m.epoch = r.u64();
  const std::uint64_t count = r.u64();
  // Each entry is three length-prefixed strings, ≥ 24 bytes of prefixes
  // alone — a count the payload cannot possibly hold is corruption that
  // slipped past the CRC (or tampering), not a big snapshot; reject it
  // typed instead of letting resize() throw length_error/bad_alloc.
  if (count > r.remaining() / 24)
    throw CorruptionError("snapshot manifest: model count " + std::to_string(count) +
                          " exceeds payload capacity");
  m.models.resize(count);
  for (auto& e : m.models) {
    e.name = r.str();
    e.params_file = r.str();
    e.artifacts_file = r.str();
  }
  r.expect_exhausted();
  return m;
}

/// Serializes everything in a ModelEntry except the weights: curves (as
/// piecewise-linear profiles + priors), stage costs, α, calibrated flag.
std::vector<std::uint8_t> encode_artifacts(const ModelEntry& entry) {
  io::ByteWriter w;
  w.u8(entry.calibrated ? 1 : 0);

  const gp::ConfidenceCurveModel& curves = entry.curves;
  w.u64(curves.fitted() ? curves.num_stages() : 0);
  if (curves.fitted()) {
    w.f64_vec(curves.priors());
    const std::size_t n = curves.num_stages();
    w.u64(n * (n - 1) / 2);
    for (std::size_t from = 0; from < n; ++from) {
      for (std::size_t to = from + 1; to < n; ++to) {
        const gp::PiecewiseLinear& pl = curves.approximation(from, to);
        w.f64(pl.lo());
        w.f64(pl.hi());
        w.f64_vec(pl.knot_values());
      }
    }
  }

  w.f64_vec(entry.costs.stage_ms);
  w.f64(entry.costs.jitter_fraction);
  w.f64_vec(entry.calibration_alpha);
  return w.take();
}

/// Inverse of encode_artifacts, with semantic validation: a calibrated
/// entry must carry fitted curves, and curve/model stage counts must agree
/// (a mismatch means the files come from different snapshots).
void decode_artifacts(const std::vector<std::uint8_t>& payload, ModelEntry& entry,
                      const std::string& what) {
  io::ByteReader r(payload, what);
  const bool calibrated = r.u8() != 0;

  const std::uint64_t curve_stages = r.u64();
  if (curve_stages > 0) {
    std::vector<double> priors = r.f64_vec();
    if (priors.size() != curve_stages)
      throw CorruptionError(what + ": prior count " + std::to_string(priors.size()) +
                            " does not match curve stage count " +
                            std::to_string(curve_stages));
    const std::uint64_t num_pairs = r.u64();
    if (curve_stages < 2 || num_pairs != curve_stages * (curve_stages - 1) / 2)
      throw CorruptionError(what + ": inconsistent confidence-curve pair count");
    // Each profile is at least lo + hi + a knot-vector length prefix; a pair
    // count the remaining bytes cannot possibly hold is corruption, and
    // rejecting it here keeps a hostile count from driving a giant reserve().
    if (num_pairs > r.remaining() / 24)
      throw CorruptionError(what + ": confidence-curve pair count exceeds payload");
    std::vector<gp::PiecewiseLinear> approximations;
    approximations.reserve(num_pairs);
    for (std::uint64_t p = 0; p < num_pairs; ++p) {
      const double lo = r.f64();
      const double hi = r.f64();
      std::vector<double> knots = r.f64_vec();
      if (knots.size() < 2 || !(lo < hi))
        throw CorruptionError(what + ": malformed piecewise-linear profile");
      approximations.emplace_back(std::move(knots), lo, hi);
    }
    if (curve_stages != entry.model.num_stages())
      throw CorruptionError(what + ": curve stage count " +
                            std::to_string(curve_stages) + " does not match model (" +
                            std::to_string(entry.model.num_stages()) +
                            "); mixed-snapshot artifacts");
    entry.curves.restore(curve_stages, std::move(approximations), std::move(priors));
  } else if (calibrated) {
    throw CorruptionError(what + ": calibrated entry without fitted curves");
  }

  entry.costs.stage_ms = r.f64_vec();
  entry.costs.jitter_fraction = r.f64();
  entry.calibration_alpha = r.f64_vec();
  r.expect_exhausted();
  // Costs and α are per-stage vectors when present (empty = never profiled /
  // calibrated). Any other length means the params and artifacts files come
  // from different snapshots — fail here, typed, instead of restoring
  // successfully and dying confusingly at serving time.
  const std::size_t stages = entry.model.num_stages();
  if (!entry.costs.stage_ms.empty() && entry.costs.stage_ms.size() != stages)
    throw CorruptionError(what + ": stage cost count " +
                          std::to_string(entry.costs.stage_ms.size()) +
                          " does not match model (" + std::to_string(stages) +
                          "); mixed-snapshot artifacts");
  if (!entry.calibration_alpha.empty() && entry.calibration_alpha.size() != stages)
    throw CorruptionError(what + ": calibration alpha count " +
                          std::to_string(entry.calibration_alpha.size()) +
                          " does not match model (" + std::to_string(stages) +
                          "); mixed-snapshot artifacts");
  entry.calibrated = calibrated;
}

void ensure_dir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST)
    throw IoError("mkdir '" + dir + "': " + std::strerror(errno));
}

std::string manifest_path(const std::string& dir) { return dir + "/MANIFEST"; }

/// The committed manifest, or nullopt when none exists. Corrupt manifests
/// propagate as CorruptionError — the caller decides whether that is fatal.
std::optional<Manifest> read_manifest(const std::string& dir) {
  if (!io::file_exists(manifest_path(dir))) return std::nullopt;
  const io::Blob blob = io::read_blob_file(manifest_path(dir), kManifestMagic,
                                           kManifestVersion, "snapshot manifest");
  return decode_manifest(blob.payload);
}

/// Epoch suffix of a snapshot data file ("model-3.params.17" → 17), or
/// nullopt for MANIFEST, temp files, and anything foreign.
std::optional<std::uint64_t> file_epoch(const std::string& filename) {
  if (filename.rfind("model-", 0) != 0) return std::nullopt;
  const std::size_t dot = filename.find_last_of('.');
  if (dot == std::string::npos || dot + 1 >= filename.size()) return std::nullopt;
  std::uint64_t epoch = 0;
  for (std::size_t i = dot + 1; i < filename.size(); ++i) {
    if (filename[i] < '0' || filename[i] > '9') return std::nullopt;
    epoch = epoch * 10 + static_cast<std::uint64_t>(filename[i] - '0');
  }
  return epoch;
}

/// Removes data files from older epochs and stray ".tmp" debris left by
/// crashed writers. Best effort — GC failure never fails a snapshot.
void gc_old_epochs(const std::string& dir, std::uint64_t keep_epoch) {
  std::error_code ec;
  for (const auto& de : fs::directory_iterator(dir, ec)) {
    const std::string name = de.path().filename().string();
    const bool stale_tmp = name.find(".tmp") != std::string::npos;
    const auto epoch = file_epoch(name);
    if (stale_tmp || (epoch.has_value() && *epoch != keep_epoch))
      fs::remove(de.path(), ec);
  }
}

/// The next epoch to write: one past the committed manifest's, or — when
/// the manifest is missing or unreadable — one past any epoch visible on
/// disk, so a fresh snapshot never collides with files a previous (possibly
/// torn) snapshot left behind.
std::uint64_t next_epoch(const std::string& dir) {
  try {
    if (const auto m = read_manifest(dir)) return m->epoch + 1;
  } catch (const Error&) {
    // Unreadable manifest: fall through to the disk scan.
  }
  std::uint64_t max_seen = 0;
  std::error_code ec;
  for (const auto& de : fs::directory_iterator(dir, ec)) {
    const auto epoch = file_epoch(de.path().filename().string());
    if (epoch.has_value() && *epoch > max_seen) max_seen = *epoch;
  }
  return max_seen + 1;
}

}  // namespace

namespace detail {

std::size_t decode_manifest_payload(const std::vector<std::uint8_t>& payload) {
  return decode_manifest(payload).models.size();
}

void decode_artifacts_payload(const std::vector<std::uint8_t>& payload,
                              ModelEntry& entry, const std::string& what) {
  decode_artifacts(payload, entry, what);
}

}  // namespace detail

std::uint64_t save_snapshot(const ModelRegistry& registry, const std::string& dir) {
  ensure_dir(dir);
  const std::uint64_t epoch = next_epoch(dir);

  // Pin one registry epoch for the whole walk: every write below reads this
  // immutable view, so concurrent update/replace/reload publications cannot
  // tear the snapshot — they land in later epochs the pin never sees.
  const ModelRegistry::ViewPtr view = registry.pin();
  // Chaos seam: widen the pin-to-write window so mutator publications overlap
  // the file walk (the lifecycle chaos suite races swaps against this).
  EUGENE_FAILPOINT("snapshot.live.race");

  Manifest manifest;
  manifest.epoch = epoch;
  const std::size_t count = view->size();
  for (std::size_t i = 0; i < count; ++i) {
    ModelEntry& entry = view->entry(i);
    ManifestEntry me;
    me.name = entry.name;
    me.params_file = "model-" + std::to_string(i) + ".params." + std::to_string(epoch);
    me.artifacts_file =
        "model-" + std::to_string(i) + ".artifacts." + std::to_string(epoch);

    nn::save_params_file(entry.model.params(), dir + "/" + me.params_file);
    io::write_blob_file(dir + "/" + me.artifacts_file, kArtifactsMagic,
                        kArtifactsVersion, encode_artifacts(entry));
    manifest.models.push_back(std::move(me));
  }

  // The commit point. A crash before (or at) this line leaves the previous
  // MANIFEST — and the previous epoch's files — untouched.
  EUGENE_FAILPOINT("snapshot.manifest.crash");
  io::write_blob_file(manifest_path(dir), kManifestMagic, kManifestVersion,
                      encode_manifest(manifest));

  gc_old_epochs(dir, epoch);
  EUGENE_LOG(Info) << "snapshot: committed epoch " << epoch << " (" << count
                   << " model(s)) to " << dir;
  return epoch;
}

namespace {

/// Loads one manifest entry into a fully-built, unpublished ModelEntry:
/// factory architecture → checkpoint weights → artifacts. Publication is the
/// caller's move (add_entry for restore, replace_or_add for reload).
std::shared_ptr<ModelEntry> build_entry(const std::string& dir, const ManifestEntry& me,
                                        const ModelFactory& factory) {
  auto entry = std::make_shared<ModelEntry>(me.name, factory(me.name));
  nn::load_params_file(entry->model.params(), dir + "/" + me.params_file);
  const io::Blob blob =
      io::read_blob_file(dir + "/" + me.artifacts_file, kArtifactsMagic,
                         kArtifactsVersion, "model artifacts");
  decode_artifacts(blob.payload, *entry, "model artifacts '" + me.name + "'");
  return entry;
}

}  // namespace

std::optional<RestoreResult> restore_snapshot(ModelRegistry& registry,
                                              const std::string& dir,
                                              const ModelFactory& factory) {
  EUGENE_REQUIRE(factory != nullptr, "restore_snapshot: null model factory");
  const std::optional<Manifest> manifest = read_manifest(dir);
  if (!manifest.has_value()) return std::nullopt;

  RestoreResult result;
  result.epoch = manifest->epoch;
  for (const auto& me : manifest->models) {
    registry.add_entry(build_entry(dir, me, factory));
    ++result.models_restored;
  }
  EUGENE_LOG(Info) << "snapshot: restored epoch " << result.epoch << " ("
                   << result.models_restored << " model(s)) from " << dir;
  return result;
}

std::optional<RestoreResult> reload_snapshot(ModelRegistry& registry,
                                             const std::string& dir,
                                             const ModelFactory& factory) {
  EUGENE_REQUIRE(factory != nullptr, "reload_snapshot: null model factory");
  const std::optional<Manifest> manifest = read_manifest(dir);
  if (!manifest.has_value()) return std::nullopt;

  // Build everything off to the side first: a corrupt file aborts the reload
  // before any publication, and the batch publish below lands every model in
  // ONE registry epoch — live traffic never sees a half-reloaded set.
  std::vector<std::shared_ptr<ModelEntry>> entries;
  entries.reserve(manifest->models.size());
  for (const auto& me : manifest->models)
    entries.push_back(build_entry(dir, me, factory));

  RestoreResult result;
  result.epoch = manifest->epoch;
  result.models_restored = entries.size();
  registry.replace_or_add(std::move(entries));
  EUGENE_LOG(Info) << "snapshot: reloaded epoch " << result.epoch << " ("
                   << result.models_restored << " model(s)) from " << dir;
  return result;
}

}  // namespace eugene::serving
