#include "serving/usage.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/check.hpp"
#include "common/crc32.hpp"
#include "common/failpoint.hpp"
#include "common/io.hpp"
#include "common/metrics.hpp"

namespace eugene::serving {
namespace {

constexpr std::uint32_t kJournalMagic = 0x4A475545;  // "EUGJ"
// v1: 7-field class rows, no ops block. v2: rows gain brownout_sheds and
// every frame ends in an OpsUsage block. New journals are written v2;
// appends to an existing file stay in that file's header version.
constexpr std::uint32_t kJournalVersion = 2;

/// One journal frame: the per-class deltas of a single record() batch (plus,
/// in v2, the service-wide ops-counter delta), encoded in `version` format.
std::vector<std::uint8_t> encode_frame(const std::vector<ClassUsage>& delta,
                                       const OpsUsage& ops,
                                       std::uint32_t version) {
  io::ByteWriter w;
  std::uint64_t touched = 0;
  for (const auto& d : delta) touched += d.requests > 0 ? 1 : 0;
  w.u64(touched);
  for (std::size_t c = 0; c < delta.size(); ++c) {
    const ClassUsage& d = delta[c];
    if (d.requests == 0) continue;
    w.u32(static_cast<std::uint32_t>(c));
    w.u64(d.requests);
    w.u64(d.stages_executed);
    w.f64(d.compute_ms);
    w.u64(d.expired);
    w.u64(d.early_exits);
    w.u64(d.shed);
    w.u64(d.retries);
    if (version >= 2) w.u64(d.brownout_sheds);
  }
  if (version >= 2) {
    w.u64(ops.hedges_issued);
    w.u64(ops.hedges_won);
    w.u64(ops.breaker_trips);
  }
  return w.take();
}

/// Result of walking a journal image frame by frame.
struct JournalScan {
  std::size_t committed = 0;  ///< header + fully committed frames, in bytes
  bool truncated = false;     ///< the file ends in a torn tail
  std::uint32_t version = 0;  ///< header version (0 when headerless/torn)
  /// (payload, length) views into the scanned bytes, one per committed frame.
  std::vector<std::pair<const std::uint8_t*, std::uint32_t>> frames;
};

/// Walks `bytes` as a journal. Damage at the very end of the file — a short
/// header, a short payload, or a bad CRC on the final frame — is the
/// torn-tail signature of a crash mid-append and sets `truncated`; the same
/// damage mid-file, a bad magic, or a future version throws CorruptionError.
/// `committed` is the only prefix a writer may safely append after.
JournalScan scan_journal(const std::vector<std::uint8_t>& bytes,
                         const std::string& path) {
  JournalScan scan;
  if (bytes.size() < 8) {
    // A crash immediately after creating the journal can leave a partial
    // header; that is a torn tail with zero committed frames.
    scan.truncated = !bytes.empty();
    return scan;
  }
  io::ByteReader header(bytes.data(), 8, "usage journal");
  if (header.u32() != kJournalMagic)
    throw CorruptionError("usage journal " + path + ": bad magic");
  const std::uint32_t version = header.u32();
  if (version == 0 || version > kJournalVersion)
    throw CorruptionError("usage journal " + path + ": unsupported version " +
                          std::to_string(version));
  scan.version = version;
  scan.committed = 8;
  while (scan.committed < bytes.size()) {
    const std::size_t pos = scan.committed;
    if (bytes.size() - pos < 8) {  // torn frame header
      scan.truncated = true;
      break;
    }
    io::ByteReader fh(bytes.data() + pos, 8, "usage journal frame");
    const std::uint32_t len = fh.u32();
    const std::uint32_t stored_crc = fh.u32();
    if (bytes.size() - pos - 8 < len) {  // torn payload
      scan.truncated = true;
      break;
    }
    const std::uint8_t* payload = bytes.data() + pos + 8;
    if (crc32(payload, len) != stored_crc) {
      // A bad checksum on the last bytes of the file is the torn-tail
      // signature; anywhere else it is real corruption.
      if (pos + 8 + len == bytes.size()) {
        scan.truncated = true;
        break;
      }
      throw CorruptionError("usage journal " + path + ": CRC mismatch mid-file");
    }
    scan.frames.emplace_back(payload, len);
    scan.committed = pos + 8 + len;
  }
  return scan;
}

void write_all(int fd, const std::uint8_t* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw IoError("UsageMeter: journal write: " +
                    std::string(std::strerror(errno)));
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
}

}  // namespace

UsageMeter::UsageMeter(sched::StageCostModel costs, std::vector<std::string> class_names)
    : costs_(std::move(costs)) {
  EUGENE_REQUIRE(!class_names.empty(), "UsageMeter: no service classes");
  EUGENE_REQUIRE(costs_.num_stages() > 0, "UsageMeter: empty cost model");
  usage_.resize(class_names.size());
  for (std::size_t i = 0; i < class_names.size(); ++i)
    usage_[i].class_name = std::move(class_names[i]);
}

void UsageMeter::record(const std::vector<InferenceRequest>& requests,
                        const std::vector<InferenceResponse>& responses,
                        std::size_t model_num_stages) {
  EUGENE_REQUIRE(requests.size() == responses.size(),
                 "UsageMeter::record: request/response size mismatch");
  EUGENE_REQUIRE(model_num_stages <= costs_.num_stages(),
                 "UsageMeter::record: cost model covers fewer stages than the model");
  {
    // Metered traffic also feeds the process-wide metrics registry — bumped
    // before mutex_ so metrics never nest inside the usage lock.
    telemetry::MetricsRegistry& m = telemetry::MetricsRegistry::global();
    std::uint64_t stages = 0;
    for (const auto& r : responses) stages += r.stages_run;
    m.counter("usage.requests").inc(requests.size());
    m.counter("usage.stages_executed").inc(stages);
  }
  MutexLock lock(mutex_);
  // Accumulate the batch into a delta first: the journal persists exactly
  // what this call added, so replay reproduces the ledger frame by frame.
  std::vector<ClassUsage> delta(usage_.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EUGENE_REQUIRE(requests[i].service_class < usage_.size(),
                   "UsageMeter::record: unknown service class");
    // A response can never claim more stages than the model has.
    EUGENE_CHECK_LE(responses[i].stages_run, model_num_stages)
        << "UsageMeter::record: response claims impossible stage count";
    ClassUsage& u = delta[requests[i].service_class];
    ++u.requests;
    u.stages_executed += responses[i].stages_run;
    for (std::size_t s = 0; s < responses[i].stages_run; ++s)
      u.compute_ms += costs_.stage_ms[s];
    u.expired += responses[i].expired ? 1 : 0;
    u.shed += responses[i].degraded ? 1 : 0;
    u.brownout_sheds += responses[i].browned_out ? 1 : 0;
    u.retries += responses[i].retries;
    u.early_exits += (!responses[i].expired && !responses[i].degraded &&
                      responses[i].stages_run < model_num_stages)
                         ? 1
                         : 0;
  }
  for (std::size_t c = 0; c < usage_.size(); ++c) {
    ClassUsage& u = usage_[c];
    const ClassUsage& d = delta[c];
    u.requests += d.requests;
    u.stages_executed += d.stages_executed;
    u.compute_ms += d.compute_ms;
    u.expired += d.expired;
    u.early_exits += d.early_exits;
    u.shed += d.shed;
    u.brownout_sheds += d.brownout_sheds;
    u.retries += d.retries;
  }
  if (journal_fd_ >= 0) append_frame_locked(delta, OpsUsage{});
}

void UsageMeter::record_ops(const OpsUsage& delta) {
  MutexLock lock(mutex_);
  ops_.hedges_issued += delta.hedges_issued;
  ops_.hedges_won += delta.hedges_won;
  ops_.breaker_trips += delta.breaker_trips;
  // A v1 journal has no ops block; the delta stays in-memory only there
  // rather than making the file unreadable to v1 readers.
  if (journal_fd_ >= 0 && journal_version_ >= 2)
    append_frame_locked(std::vector<ClassUsage>(usage_.size()), delta);
}

OpsUsage UsageMeter::ops() const {
  MutexLock lock(mutex_);
  return ops_;
}

UsageMeter::~UsageMeter() {
  MutexLock lock(mutex_);
  if (journal_fd_ >= 0) ::close(journal_fd_);
}

void UsageMeter::close_journal() {
  MutexLock lock(mutex_);
  if (journal_fd_ < 0) return;
  // Every committed frame was fsynced on append, so the final fsync here is
  // belt-and-braces for the (empty) tail; failure still detaches the fd.
  const bool synced = ::fsync(journal_fd_) == 0;
  const int saved = errno;
  ::close(journal_fd_);
  journal_fd_ = -1;
  journal_version_ = 0;
  if (!synced)
    throw IoError("UsageMeter: fsync on close_journal: " + std::string(std::strerror(saved)));
}

void UsageMeter::open_journal(const std::string& path) {
  MutexLock lock(mutex_);
  // Reopening after a crash mid-append must not append after a torn tail:
  // every later replay would then meet the garbage *mid-file* and throw,
  // losing the ledger for good. Scan exactly like replay_journal and cut the
  // file back to its committed prefix first.
  std::size_t committed = 0;
  std::size_t on_disk = 0;
  std::uint32_t version = kJournalVersion;
  if (io::file_exists(path)) {
    const std::vector<std::uint8_t> bytes = io::read_file_bytes(path);
    on_disk = bytes.size();
    const JournalScan scan = scan_journal(bytes, path);
    committed = scan.committed;
    // Version gate: keep appending in the file's own header version so the
    // journal never mixes frame encodings (a torn/fresh header re-writes
    // as current).
    if (committed >= 8) version = scan.version;
  }
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0)
    throw IoError("UsageMeter: cannot open journal " + path + ": " +
                  std::strerror(errno));
  if (committed < on_disk && ::ftruncate(fd, static_cast<off_t>(committed)) != 0) {
    const int saved = errno;
    ::close(fd);
    throw IoError("UsageMeter: cannot truncate torn journal " + path + ": " +
                  std::strerror(saved));
  }
  if (journal_fd_ >= 0) ::close(journal_fd_);
  journal_fd_ = fd;
  journal_version_ = version;
  if (committed < 8) {  // brand-new file, or a header the crash tore
    const std::uint32_t header[2] = {kJournalMagic, kJournalVersion};
    write_all(journal_fd_, reinterpret_cast<const std::uint8_t*>(header),
              sizeof(header));
  }
  if (::fsync(journal_fd_) != 0)
    throw IoError("UsageMeter: fsync journal " + path + ": " +
                  std::strerror(errno));
}

void UsageMeter::append_frame_locked(const std::vector<ClassUsage>& delta,
                                     const OpsUsage& ops_delta) {
  const std::vector<std::uint8_t> payload =
      encode_frame(delta, ops_delta, journal_version_);
  io::ByteWriter frame;
  frame.u32(static_cast<std::uint32_t>(payload.size()));
  frame.u32(crc32(payload.data(), payload.size()));
  frame.raw(payload.data(), payload.size());
  const std::vector<std::uint8_t>& bytes = frame.buffer();

  if (EUGENE_FAILPOINT_FIRED("usage.journal.torn")) {
    // Simulated kill -9 mid-append: half the frame reaches the file and the
    // writer dies. Replay must keep every earlier frame and stop here.
    write_all(journal_fd_, bytes.data(), bytes.size() / 2);
    ::close(journal_fd_);
    journal_fd_ = -1;
    throw FailpointError("usage.journal.torn: simulated crash mid-append");
  }

  write_all(journal_fd_, bytes.data(), bytes.size());
  // fsync per frame: a committed frame survives power loss, not just a
  // process kill — the same guarantee the snapshot path gives.
  if (::fsync(journal_fd_) != 0)
    throw IoError("UsageMeter: fsync journal append: " +
                  std::string(std::strerror(errno)));
}

JournalReplay UsageMeter::replay_journal(const std::string& path) {
  if (!io::file_exists(path)) return {};
  return replay_journal_image(io::read_file_bytes(path), path);
}

JournalReplay UsageMeter::replay_journal_image(const std::vector<std::uint8_t>& bytes,
                                               const std::string& what) {
  JournalReplay result;
  MutexLock lock(mutex_);
  const JournalScan scan = scan_journal(bytes, what);
  for (const auto& [payload, len] : scan.frames) {
    io::ByteReader r(payload, len, "usage journal frame");
    const std::uint64_t touched = r.u64();
    for (std::uint64_t t = 0; t < touched; ++t) {
      const std::uint32_t c = r.u32();
      if (c >= usage_.size())
        throw CorruptionError("usage journal " + what + ": frame names class " +
                              std::to_string(c) + " but meter has " +
                              std::to_string(usage_.size()));
      ClassUsage& u = usage_[c];
      u.requests += r.u64();
      u.stages_executed += r.u64();
      u.compute_ms += r.f64();
      u.expired += r.u64();
      u.early_exits += r.u64();
      u.shed += r.u64();
      u.retries += r.u64();
      if (scan.version >= 2) u.brownout_sheds += r.u64();
    }
    if (scan.version >= 2) {
      ops_.hedges_issued += r.u64();
      ops_.hedges_won += r.u64();
      ops_.breaker_trips += r.u64();
    }
    r.expect_exhausted();
    ++result.frames;
  }
  result.truncated = scan.truncated;
  return result;
}

std::vector<ClassUsage> UsageMeter::usage() const {
  MutexLock lock(mutex_);
  return usage_;
}

double UsageMeter::charge(std::size_t service_class, const PricingPolicy& pricing) const {
  MutexLock lock(mutex_);
  return charge_locked(service_class, pricing);
}

double UsageMeter::total_charge(const PricingPolicy& pricing) const {
  MutexLock lock(mutex_);
  double total = 0.0;
  for (std::size_t c = 0; c < usage_.size(); ++c) total += charge_locked(c, pricing);
  return total;
}

double UsageMeter::charge_locked(std::size_t service_class,
                                 const PricingPolicy& pricing) const {
  EUGENE_REQUIRE(service_class < usage_.size(), "UsageMeter::charge: unknown class");
  const ClassUsage& u = usage_[service_class];
  return pricing.per_request * static_cast<double>(u.requests) +
         pricing.per_compute_ms * u.compute_ms;
}

}  // namespace eugene::serving
