#include "serving/usage.hpp"

#include "common/check.hpp"

namespace eugene::serving {

UsageMeter::UsageMeter(sched::StageCostModel costs, std::vector<std::string> class_names)
    : costs_(std::move(costs)) {
  EUGENE_REQUIRE(!class_names.empty(), "UsageMeter: no service classes");
  EUGENE_REQUIRE(costs_.num_stages() > 0, "UsageMeter: empty cost model");
  usage_.resize(class_names.size());
  for (std::size_t i = 0; i < class_names.size(); ++i)
    usage_[i].class_name = std::move(class_names[i]);
}

void UsageMeter::record(const std::vector<InferenceRequest>& requests,
                        const std::vector<InferenceResponse>& responses,
                        std::size_t model_num_stages) {
  EUGENE_REQUIRE(requests.size() == responses.size(),
                 "UsageMeter::record: request/response size mismatch");
  EUGENE_REQUIRE(model_num_stages <= costs_.num_stages(),
                 "UsageMeter::record: cost model covers fewer stages than the model");
  MutexLock lock(mutex_);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EUGENE_REQUIRE(requests[i].service_class < usage_.size(),
                   "UsageMeter::record: unknown service class");
    // A response can never claim more stages than the model has.
    EUGENE_CHECK_LE(responses[i].stages_run, model_num_stages)
        << "UsageMeter::record: response claims impossible stage count";
    ClassUsage& u = usage_[requests[i].service_class];
    ++u.requests;
    u.stages_executed += responses[i].stages_run;
    for (std::size_t s = 0; s < responses[i].stages_run; ++s)
      u.compute_ms += costs_.stage_ms[s];
    u.expired += responses[i].expired ? 1 : 0;
    u.shed += responses[i].degraded ? 1 : 0;
    u.retries += responses[i].retries;
    u.early_exits += (!responses[i].expired && !responses[i].degraded &&
                      responses[i].stages_run < model_num_stages)
                         ? 1
                         : 0;
  }
}

std::vector<ClassUsage> UsageMeter::usage() const {
  MutexLock lock(mutex_);
  return usage_;
}

double UsageMeter::charge(std::size_t service_class, const PricingPolicy& pricing) const {
  MutexLock lock(mutex_);
  return charge_locked(service_class, pricing);
}

double UsageMeter::total_charge(const PricingPolicy& pricing) const {
  MutexLock lock(mutex_);
  double total = 0.0;
  for (std::size_t c = 0; c < usage_.size(); ++c) total += charge_locked(c, pricing);
  return total;
}

double UsageMeter::charge_locked(std::size_t service_class,
                                 const PricingPolicy& pricing) const {
  EUGENE_REQUIRE(service_class < usage_.size(), "UsageMeter::charge: unknown class");
  const ClassUsage& u = usage_[service_class];
  return pricing.per_request * static_cast<double>(u.requests) +
         pricing.per_compute_ms * u.compute_ms;
}

}  // namespace eugene::serving
