// The run-time inference service (paper §II-E): accepts client data,
// schedules stage executions across concurrent requests with the
// utility-maximizing policy, enforces per-class latency constraints, and
// returns (label, confidence) with early exit on high confidence.
//
// Includes the paper's §V extension: multiple *service classes* with
// distinct deadlines and utility weights (an interactive chatbot vs a
// tolerant surveillance camera).
//
// Robustness contract (DESIGN.md §8): process_batch always returns one
// well-formed response per request — complete, expired, or *degraded* —
// and never lets a stage exception escape. Overload is handled by an
// admission controller that sheds excess requests to the earliest confident
// exit (the imprecise-computation answer: a degraded-but-valid result beats
// a rejection); a stage that throws is retried a bounded number of times
// before the request degrades.
#pragma once

#include <limits>

#include "common/lifecycle.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "serving/registry.hpp"

namespace eugene::serving {

/// A client-facing QoS class.
struct ServiceClassConfig {
  std::string name = "default";
  double deadline_ms = std::numeric_limits<double>::infinity();
  double utility_weight = 1.0;  ///< scales the scheduler's utility for this class
};

/// One inference request.
struct InferenceRequest {
  tensor::Tensor input;
  std::size_t service_class = 0;
};

/// One inference response.
struct InferenceResponse {
  std::size_t label = 0;
  double confidence = 0.0;
  std::size_t stages_run = 0;
  bool expired = false;    ///< deadline hit before full/confident completion
  bool degraded = false;   ///< shed under overload or stage-failure budget spent
  bool browned_out = false;  ///< shed by the adaptive admission controller
                             ///< (would have been admitted at level 0)
  bool draining = false;   ///< rejected: the server is draining/stopped — the
                           ///< typed drain response; no stage ran, resubmit
                           ///< elsewhere (never combined with degraded/shed)
  std::size_t retries = 0; ///< stage re-executions consumed by faults
  double latency_ms = 0.0;
  std::uint64_t span_id = 0;  ///< trace span (0 when the run was untraced)
};

/// Adaptive admission (brown-out) knobs, DESIGN.md §11.
///
/// The controller watches the admission-to-first-stage queue delay of each
/// batch against a class-weighted setpoint and keeps a persistent brown-out
/// *level*. Each level progressively lowers the effective admission capacity,
/// shed-confidence bar, and shed stage budget, so an overloaded server sheds
/// more work to cheaper answers instead of queueing itself past every
/// deadline. Recovery is hysteretic: the level only steps down when the
/// measured delay falls well below the setpoint (recover_ratio), preventing
/// flapping at the boundary. The static admission_capacity stays the hard
/// ceiling — brown-out only ever shrinks the effective capacity.
struct BrownoutConfig {
  bool enabled = true;
  std::size_t max_level = 3;
  /// Setpoint for a finite-deadline class: fraction of its deadline the
  /// queue delay may consume before escalation.
  double setpoint_fraction = 0.25;
  /// Absolute setpoint (ms) for classes with an infinite deadline.
  double setpoint_ms = 50.0;
  /// Fraction of the base capacity removed per level.
  double capacity_step = 0.25;
  /// Amount shed_confidence drops per level (cheaper shed answers).
  double confidence_step = 0.1;
  /// Delay/setpoint ratio below which the level steps back down.
  double recover_ratio = 0.5;
};

/// Server knobs.
struct ServerConfig {
  std::vector<ServiceClassConfig> classes = {{}};
  double early_exit_confidence = 0.92;  ///< skip remaining stages above this
  std::size_t lookahead = 1;            ///< RTDeepIoT k

  // Graceful degradation (DESIGN.md §8 "Failure model").
  std::size_t admission_capacity = 0;   ///< >0: hard ceiling; beyond it → shed
  double shed_confidence = 0.0;         ///< shed requests stop at this confidence
  std::size_t shed_max_stages = 1;      ///< stage budget for a shed request
  std::size_t max_stage_retries = 2;    ///< re-runs of a throwing stage per request

  /// Batched first stage (DESIGN.md §14): admitted same-shape requests run
  /// stage 0 as one arena-backed batched forward — one wide GEMM per layer
  /// instead of one narrow GEMM per request. Bitwise-identical outputs to
  /// the per-sample path (the Layer::forward_batch contract), so scheduling
  /// and fault semantics are unchanged.
  bool batch_first_stage = true;

  // Adaptive admission (DESIGN.md §11 "Overload & health model").
  BrownoutConfig brownout;

  // Observability (DESIGN.md §12). `trace` records one span per request
  // (admission → brownout/shed decision → stage results → exit); null
  // disables tracing. `metrics` receives serving.* counters, the
  // serving.brownout.level gauge, and per-stage latency histograms; null
  // disables, the default is the process-wide registry behind
  // EugeneService::metrics_text().
  telemetry::TraceRecorder* trace = nullptr;
  telemetry::MetricsRegistry* metrics = &telemetry::MetricsRegistry::global();

  // Lifecycle gate (DESIGN.md §13). When set, every batch is admitted
  // through ServerLifecycle::try_admit *before* any other admission logic
  // (brown-out included): a draining server answers the whole batch with
  // draining=true responses — a typed rejection, never a shed. Null means
  // "always admit" (standalone tests and benches).
  ServerLifecycle* lifecycle = nullptr;
};

/// Schedules a batch of concurrent requests over one model instance,
/// interleaving real stage executions by greedy weighted utility. Wall-clock
/// deadlines are enforced at stage granularity (a request past its class
/// deadline stops accruing stages and answers with its best result so far).
class InferenceServer {
 public:
  /// `entry` must be calibrated (curves fitted) and must outlive the server.
  InferenceServer(ModelEntry& entry, ServerConfig config);

  /// Processes all requests as one concurrent batch. Requests admitted past
  /// the effective capacity (the static admission_capacity lowered by the
  /// current brown-out level) are shed: they answer from the earliest
  /// confident exit and come back flagged degraded=true — and browned_out
  /// when the brown-out level, not the static ceiling, shed them. Each call
  /// also feeds the measured queue delay back into the brown-out controller.
  /// Chaos seam: `admit.brownout.force` escalates the level at batch start.
  std::vector<InferenceResponse> process_batch(const std::vector<InferenceRequest>& requests);

  const ServerConfig& config() const { return config_; }

  /// Current brown-out level (0 = full service). Persistent across batches.
  std::size_t brownout_level() const { return brownout_level_; }

 private:
  ModelEntry& entry_;
  ServerConfig config_;
  std::size_t brownout_level_ = 0;
  // Batched-first-stage scratch, reused across batches so a warmed server
  // stays allocation-free in its compute path (DESIGN.md §14).
  nn::ScratchArena arena_;
  std::vector<nn::StageBatchItem> batch_items_;
};

}  // namespace eugene::serving
