// The run-time inference service (paper §II-E): accepts client data,
// schedules stage executions across concurrent requests with the
// utility-maximizing policy, enforces per-class latency constraints, and
// returns (label, confidence) with early exit on high confidence.
//
// Includes the paper's §V extension: multiple *service classes* with
// distinct deadlines and utility weights (an interactive chatbot vs a
// tolerant surveillance camera).
//
// Robustness contract (DESIGN.md §8): process_batch always returns one
// well-formed response per request — complete, expired, or *degraded* —
// and never lets a stage exception escape. Overload is handled by an
// admission controller that sheds excess requests to the earliest confident
// exit (the imprecise-computation answer: a degraded-but-valid result beats
// a rejection); a stage that throws is retried a bounded number of times
// before the request degrades.
#pragma once

#include <limits>

#include "serving/registry.hpp"

namespace eugene::serving {

/// A client-facing QoS class.
struct ServiceClassConfig {
  std::string name = "default";
  double deadline_ms = std::numeric_limits<double>::infinity();
  double utility_weight = 1.0;  ///< scales the scheduler's utility for this class
};

/// One inference request.
struct InferenceRequest {
  tensor::Tensor input;
  std::size_t service_class = 0;
};

/// One inference response.
struct InferenceResponse {
  std::size_t label = 0;
  double confidence = 0.0;
  std::size_t stages_run = 0;
  bool expired = false;    ///< deadline hit before full/confident completion
  bool degraded = false;   ///< shed under overload or stage-failure budget spent
  std::size_t retries = 0; ///< stage re-executions consumed by faults
  double latency_ms = 0.0;
};

/// Server knobs.
struct ServerConfig {
  std::vector<ServiceClassConfig> classes = {{}};
  double early_exit_confidence = 0.92;  ///< skip remaining stages above this
  std::size_t lookahead = 1;            ///< RTDeepIoT k

  // Graceful degradation (DESIGN.md §8 "Failure model").
  std::size_t admission_capacity = 0;   ///< >0: requests beyond this are shed
  double shed_confidence = 0.0;         ///< shed requests stop at this confidence
  std::size_t shed_max_stages = 1;      ///< stage budget for a shed request
  std::size_t max_stage_retries = 2;    ///< re-runs of a throwing stage per request
};

/// Schedules a batch of concurrent requests over one model instance,
/// interleaving real stage executions by greedy weighted utility. Wall-clock
/// deadlines are enforced at stage granularity (a request past its class
/// deadline stops accruing stages and answers with its best result so far).
class InferenceServer {
 public:
  /// `entry` must be calibrated (curves fitted) and must outlive the server.
  InferenceServer(ModelEntry& entry, ServerConfig config);

  /// Processes all requests as one concurrent batch. Requests admitted past
  /// admission_capacity are shed: they answer from the earliest confident
  /// exit and come back flagged degraded=true instead of being rejected.
  std::vector<InferenceResponse> process_batch(const std::vector<InferenceRequest>& requests);

  const ServerConfig& config() const { return config_; }

 private:
  ModelEntry& entry_;
  ServerConfig config_;
};

}  // namespace eugene::serving
