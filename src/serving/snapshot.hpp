// Crash-safe snapshot/restore of the model registry (DESIGN.md §9).
//
// Eugene's value proposition is cached intelligence: trained weights,
// fitted confidence curves, profiled stage costs, and chosen calibration α
// (paper §II-B/§II-C/§II-D). A server crash must not turn those back into
// hours of retraining — so the registry can be snapshotted to a directory
// and restored after a kill -9:
//
//   snapshot layout (epoch N):
//     MANIFEST                     commit point: versioned CRC blob naming
//                                  every artifact file of epoch N
//     model-<i>.params.<N>         checkpoint v2 weights (nn/serialize)
//     model-<i>.artifacts.<N>      curves + costs + α + calibrated flag
//
// Every file is written through io::atomic_write_file; the MANIFEST rename
// is the atomic commit. A crash anywhere before that rename leaves the
// previous MANIFEST — and the previous epoch's files, which are only
// garbage-collected *after* a successful commit — fully intact, so restore
// falls back to the last good snapshot. Corrupt state surfaces as typed
// eugene::CorruptionError, never garbage weights or a hang.
//
// Failpoint seams: snapshot.manifest.crash fires between artifact writes and
// the MANIFEST commit (the recovery chaos suite kills the writer there);
// snapshot.live.race fires right after the registry pin, widening the window
// in which concurrent registry mutations overlap the file walk.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "serving/registry.hpp"

namespace eugene::serving {

/// Rebuilds the (untrained) architecture for a named model during restore;
/// the snapshot then fills its weights and artifacts. Restore cannot guess
/// architectures from bytes alone — the caller knows how its models were
/// built, exactly like load_params expects a matching architecture.
using ModelFactory = std::function<nn::StagedModel(const std::string& name)>;

/// What restore_snapshot recovered.
struct RestoreResult {
  std::size_t models_restored = 0;
  std::uint64_t epoch = 0;  ///< the committed snapshot epoch that was loaded
};

/// Writes a crash-consistent snapshot of every registry entry under `dir`
/// (created if missing) and returns the committed epoch. Previous-epoch
/// files are deleted only after the new MANIFEST is committed.
///
/// Concurrency: safe under live traffic and live mutation, no quiesce
/// needed. The walk pins one registry epoch (ModelRegistry::pin) and reads
/// only that immutable view; publications that race the walk land in later
/// epochs and are simply not part of this snapshot.
[[nodiscard]] std::uint64_t save_snapshot(const ModelRegistry& registry,
                                          const std::string& dir);

/// Restores every model named by `dir`'s committed MANIFEST into `registry`.
/// Each entry is fully built off to the side (architecture → weights →
/// artifacts) and only then published via ModelRegistry::add_entry — a name
/// collision with an existing entry throws InvalidArgument. Returns
/// std::nullopt when the directory holds no committed snapshot; throws
/// CorruptionError when it holds a damaged one. On failure the registry may
/// already hold the entries restored before the corrupt one — restore into a
/// fresh registry and discard it on error.
[[nodiscard]] std::optional<RestoreResult> restore_snapshot(ModelRegistry& registry,
                                              const std::string& dir,
                                              const ModelFactory& factory);

/// Hot reload under live traffic: like restore_snapshot, but same-named
/// models *replace* their existing entries (keeping their handles) instead
/// of throwing, and every change is published in ONE registry epoch — an
/// in-flight request pinned to the old epoch finishes on the old models,
/// new admissions see the complete new set, and no reader ever observes a
/// half-reloaded registry. All entries are built (and any corruption
/// thrown) before anything is published.
[[nodiscard]] std::optional<RestoreResult> reload_snapshot(ModelRegistry& registry,
                                             const std::string& dir,
                                             const ModelFactory& factory);

namespace detail {

/// Fuzz/test surface (fuzz/fuzz_snapshot.cpp): runs the production manifest
/// decoder on an arbitrary payload (the blob container already stripped).
/// Returns the number of models the manifest names; throws CorruptionError
/// on any damage. Arbitrary bytes must never produce UB or an untyped throw.
[[nodiscard]] std::size_t decode_manifest_payload(const std::vector<std::uint8_t>& payload);

/// Fuzz/test surface: runs the production artifact decoder on an arbitrary
/// payload against `entry` (whose model provides the expected stage count).
/// Throws CorruptionError on damage or mixed-snapshot mismatches.
void decode_artifacts_payload(const std::vector<std::uint8_t>& payload,
                              ModelEntry& entry, const std::string& what);

}  // namespace detail

}  // namespace eugene::serving
