#include "serving/registry.hpp"

namespace eugene::serving {

std::size_t ModelRegistry::add(std::string name, nn::StagedModel model) {
  EUGENE_REQUIRE(!name.empty(), "ModelRegistry::add: empty name");
  MutexLock lock(mutex_);
  EUGENE_REQUIRE(!find_locked(name).has_value(),
                 "ModelRegistry::add: duplicate model name '" + name + "'");
  entries_.push_back(std::make_unique<ModelEntry>(std::move(name), std::move(model)));
  return entries_.size() - 1;
}

std::size_t ModelRegistry::size() const {
  MutexLock lock(mutex_);
  return entries_.size();
}

ModelEntry& ModelRegistry::entry(std::size_t handle) {
  MutexLock lock(mutex_);
  EUGENE_REQUIRE(handle < entries_.size(), "ModelRegistry: bad handle");
  return *entries_[handle];
}

const ModelEntry& ModelRegistry::entry(std::size_t handle) const {
  MutexLock lock(mutex_);
  EUGENE_REQUIRE(handle < entries_.size(), "ModelRegistry: bad handle");
  return *entries_[handle];
}

std::optional<std::size_t> ModelRegistry::find(const std::string& name) const {
  MutexLock lock(mutex_);
  return find_locked(name);
}

std::optional<std::size_t> ModelRegistry::find_locked(const std::string& name) const {
  for (std::size_t i = 0; i < entries_.size(); ++i)
    if (entries_[i]->name == name) return i;
  return std::nullopt;
}

}  // namespace eugene::serving
