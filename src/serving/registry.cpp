#include "serving/registry.hpp"

#include "common/failpoint.hpp"
#include "common/metrics.hpp"

namespace eugene::serving {

std::shared_ptr<ModelEntry> ModelEntry::clone() const {
  auto copy = std::make_shared<ModelEntry>(name, model.clone());
  copy->curves = curves;
  copy->costs = costs;
  copy->calibration_alpha = calibration_alpha;
  copy->calibrated = calibrated;
  return copy;
}

ModelRegistry::ModelRegistry() {
  // Epoch 0: the empty set. pin() is never null.
  view_.store(std::make_shared<View>());
}

std::size_t ModelRegistry::add(std::string name, nn::StagedModel model) {
  return add_entry(std::make_shared<ModelEntry>(std::move(name), std::move(model)));
}

std::size_t ModelRegistry::add_entry(std::shared_ptr<ModelEntry> entry) {
  EUGENE_REQUIRE(entry != nullptr, "ModelRegistry::add_entry: null entry");
  EUGENE_REQUIRE(!entry->name.empty(), "ModelRegistry::add: empty name");
  MutexLock lock(mutex_);
  const ViewPtr current = pin();
  EUGENE_REQUIRE(!current->find(entry->name).has_value(),
                 "ModelRegistry::add: duplicate model name '" + entry->name + "'");
  auto next = std::make_shared<View>(*current);
  next->entries_.push_back(std::move(entry));
  const std::size_t handle = next->entries_.size() - 1;
  publish_locked(std::move(next));
  return handle;
}

void ModelRegistry::update(std::size_t handle,
                           const std::function<void(ModelEntry&)>& fn) {
  MutexLock lock(mutex_);
  const ViewPtr current = pin();
  EUGENE_REQUIRE(handle < current->size(), "ModelRegistry: bad handle");
  auto next = std::make_shared<View>(*current);
  std::shared_ptr<ModelEntry> working = next->entries_[handle]->clone();
  fn(*working);  // private clone: stages may run, curves may fit — unpublished
  next->entries_[handle] = std::move(working);
  publish_locked(std::move(next));
}

void ModelRegistry::replace(std::size_t handle, std::shared_ptr<ModelEntry> entry) {
  EUGENE_REQUIRE(entry != nullptr, "ModelRegistry::replace: null entry");
  EUGENE_REQUIRE(!entry->name.empty(), "ModelRegistry::replace: empty name");
  MutexLock lock(mutex_);
  const ViewPtr current = pin();
  EUGENE_REQUIRE(handle < current->size(), "ModelRegistry: bad handle");
  const std::optional<std::size_t> named = current->find(entry->name);
  EUGENE_REQUIRE(!named.has_value() || *named == handle,
                 "ModelRegistry::replace: name '" + entry->name +
                     "' already belongs to another handle");
  auto next = std::make_shared<View>(*current);
  next->entries_[handle] = std::move(entry);
  publish_locked(std::move(next));
}

void ModelRegistry::replace_or_add(std::vector<std::shared_ptr<ModelEntry>> entries) {
  MutexLock lock(mutex_);
  const ViewPtr current = pin();
  auto next = std::make_shared<View>(*current);
  for (std::shared_ptr<ModelEntry>& entry : entries) {
    EUGENE_REQUIRE(entry != nullptr, "ModelRegistry::replace_or_add: null entry");
    EUGENE_REQUIRE(!entry->name.empty(), "ModelRegistry::replace_or_add: empty name");
    if (const std::optional<std::size_t> existing = next->find(entry->name)) {
      next->entries_[*existing] = std::move(entry);
    } else {
      next->entries_.push_back(std::move(entry));
    }
  }
  publish_locked(std::move(next));  // every change lands in one epoch
}

void ModelRegistry::publish_locked(std::shared_ptr<View> next) {
  // Chaos seam: error aborts the publication (the old epoch stays current —
  // `next` is dropped on unwind), delay widens the build-to-publish window.
  EUGENE_FAILPOINT("registry.swap.stall");
  next->epoch_ = ++epoch_version_;
  const std::uint64_t epoch = next->epoch_;
  view_.store(std::move(next));
  if (metrics_ != nullptr) {
    metrics_->gauge("serving.registry.epoch").set(static_cast<double>(epoch));
    metrics_->counter("serving.registry.publishes").inc();
  }
}

}  // namespace eugene::serving
