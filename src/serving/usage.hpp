// Usage metering for service pricing (paper §V future work):
//
//   "An appropriate pricing structure may be needed that is informed of the
//    true resource cost imposed by clients of each class on the service."
//
// UsageMeter accumulates, per service class, the true resource consumption
// of a batch: stage executions, compute milliseconds (from the model's
// profiled stage costs), expirations, and early exits — and turns them into
// an itemized cost report.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"
#include "sched/task.hpp"
#include "serving/server.hpp"

namespace eugene::serving {

/// Accumulated per-class resource usage. The shed/retries/expired trio is
/// the per-class fault ledger (DESIGN.md §8): chaos tests reconcile these
/// against injected fault counts.
struct ClassUsage {
  std::string class_name;
  std::size_t requests = 0;
  std::size_t stages_executed = 0;
  double compute_ms = 0.0;   ///< Σ profiled stage costs actually spent
  std::size_t expired = 0;
  std::size_t early_exits = 0;
  std::size_t shed = 0;      ///< degraded responses (overload or fault budget)
  std::size_t retries = 0;   ///< stage re-executions consumed by faults
  std::size_t brownout_sheds = 0;  ///< of `shed`: shed by the brown-out
                                   ///< controller (journal v2+)

  double mean_stages() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(stages_executed) /
                               static_cast<double>(requests);
  }
};

/// Pricing knobs: cost per compute millisecond and per request admitted.
struct PricingPolicy {
  double per_compute_ms = 0.01;
  double per_request = 0.05;
};

/// Service-wide (not per-class) overload-control counters, DESIGN.md §11.
/// Journaled as the trailing ops block of v2 frames.
struct OpsUsage {
  std::size_t hedges_issued = 0;  ///< backup dispatches sent
  std::size_t hedges_won = 0;     ///< hedge races the backup won
  std::size_t breaker_trips = 0;  ///< circuit-breaker transitions to open
};

/// Outcome of replaying a usage journal (DESIGN.md §9): how many batch
/// frames were applied, and whether the file ended in a torn tail (the
/// normal signature of a crash mid-append — replay stops there, keeping
/// every fully committed frame).
struct JournalReplay {
  std::size_t frames = 0;
  bool truncated = false;
};

/// Meters batches against a model's profiled stage costs. Thread-safe: many
/// serving threads may record() batches concurrently while a billing thread
/// reads usage() or charge().
///
/// Durability: open_journal() attaches an append-only, CRC-framed journal;
/// each record() call appends one delta frame and fsyncs it, so committed
/// frames survive power loss — not just kill -9 — and a fresh meter rebuilds
/// the billing ledger with replay_journal(). Reopening an existing journal
/// truncates any torn tail left by a crash mid-append, so the recovery cycle
/// (replay, reopen, record) can repeat across any number of crashes.
/// Failpoint seam: usage.journal.torn cuts a frame short mid-append.
///
/// Journal versioning: v1 frames carry the original 7-field class rows; v2
/// (current) rows add brownout_sheds and every v2 frame ends in an ops block
/// (hedges, breaker trips). The reader accepts both. The *writer* is gated
/// on the attached file's header version: appends to an existing v1 journal
/// stay v1-encoded (mixed-version files would be unreadable to old readers),
/// which means brownout_sheds and ops deltas are not durable on a v1 file —
/// they are accumulated in memory only and dropped from the encoded frame.
class UsageMeter {
 public:
  /// `costs` is the model's profiled per-stage execution time; `classes`
  /// names the service classes (parallel to ServerConfig::classes).
  UsageMeter(sched::StageCostModel costs, std::vector<std::string> class_names);

  ~UsageMeter();
  UsageMeter(const UsageMeter&) = delete;
  UsageMeter& operator=(const UsageMeter&) = delete;

  /// Records one processed batch.
  void record(const std::vector<InferenceRequest>& requests,
              const std::vector<InferenceResponse>& responses,
              std::size_t model_num_stages) EUGENE_EXCLUDES(mutex_);

  /// Records a delta of service-wide overload-control counters (e.g. one
  /// run_live's LiveStats). Journaled as a class-less v2 frame when a v2
  /// journal is attached; accumulated in memory only on a v1 journal.
  void record_ops(const OpsUsage& delta) EUGENE_EXCLUDES(mutex_);

  /// Snapshot of the service-wide overload-control counters.
  OpsUsage ops() const EUGENE_EXCLUDES(mutex_);

  /// Attaches the append-only journal at `path` (created with a versioned
  /// header if new). An existing journal is scanned first and truncated to
  /// its last committed frame, so appends after a crash mid-append land on a
  /// clean frame boundary instead of after torn garbage. Throws IoError when
  /// the file cannot be opened or truncated, CorruptionError when it is not
  /// a journal (bad magic, future version, mid-file damage).
  void open_journal(const std::string& path) EUGENE_EXCLUDES(mutex_);

  /// Flushes and detaches the journal (drain path: every committed frame is
  /// already fsynced, so this only closes the fd). Idempotent; record() calls
  /// after close accumulate in memory only. Throws IoError when the final
  /// fsync fails — the fd is detached either way.
  void close_journal() EUGENE_EXCLUDES(mutex_);

  /// Replays a journal written by open_journal()/record() into the
  /// accumulators. Stops cleanly at a torn tail frame (crash mid-append);
  /// throws CorruptionError when the file is not a journal, has a future
  /// version, or a committed frame is semantically invalid. A missing file
  /// replays zero frames.
  JournalReplay replay_journal(const std::string& path) EUGENE_EXCLUDES(mutex_);

  /// Byte-level core of replay_journal: replays a journal *image* (the raw
  /// bytes of a journal file) into the accumulators. Exposed so the fuzz
  /// harness (fuzz/fuzz_usage_journal.cpp) can drive the exact production
  /// decode path with arbitrary bytes — the contract is success, a truncated
  /// flag, or CorruptionError, never UB. `what` names the source in errors.
  JournalReplay replay_journal_image(const std::vector<std::uint8_t>& bytes,
                                     const std::string& what)
      EUGENE_EXCLUDES(mutex_);

  /// Consistent snapshot of the per-class accumulators.
  std::vector<ClassUsage> usage() const EUGENE_EXCLUDES(mutex_);

  /// Itemized charge for one class under a pricing policy.
  double charge(std::size_t service_class, const PricingPolicy& pricing) const
      EUGENE_EXCLUDES(mutex_);

  /// Total charge across classes.
  double total_charge(const PricingPolicy& pricing) const
      EUGENE_EXCLUDES(mutex_);

 private:
  double charge_locked(std::size_t service_class,
                       const PricingPolicy& pricing) const
      EUGENE_REQUIRES(mutex_);

  void append_frame_locked(const std::vector<ClassUsage>& delta,
                           const OpsUsage& ops_delta) EUGENE_REQUIRES(mutex_);

  sched::StageCostModel costs_;  ///< immutable after construction
  mutable Mutex mutex_{LockRank::kUsageMeter, "UsageMeter::mutex_"};
  std::vector<ClassUsage> usage_ EUGENE_GUARDED_BY(mutex_);
  OpsUsage ops_ EUGENE_GUARDED_BY(mutex_);
  int journal_fd_ EUGENE_GUARDED_BY(mutex_) = -1;  ///< -1 when detached
  /// Header version of the attached journal file; frames append in this
  /// version so a file never mixes encodings.
  std::uint32_t journal_version_ EUGENE_GUARDED_BY(mutex_) = 0;
};

}  // namespace eugene::serving
