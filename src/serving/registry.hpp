// Model registry: named, versioned staged models together with the
// artifacts the serving path needs (confidence-curve model, stage cost
// model, chosen calibration α).
#pragma once

#include <optional>
#include <string>

#include "common/thread_annotations.hpp"
#include "gp/confidence_curve.hpp"
#include "nn/staged_model.hpp"
#include "sched/task.hpp"

namespace eugene::serving {

/// Everything Eugene keeps per deployed model.
struct ModelEntry {
  std::string name;
  nn::StagedModel model;
  gp::ConfidenceCurveModel curves;          ///< fitted after calibration
  sched::StageCostModel costs;              ///< per-stage execution time
  std::vector<double> calibration_alpha;    ///< Eq. 4 α chosen per stage
  bool calibrated = false;

  ModelEntry(std::string n, nn::StagedModel m) : name(std::move(n)), model(std::move(m)) {}
};

/// Owning registry; handles are stable dense indices.
///
/// Registration and lookup are thread-safe (the serving front door registers
/// and resolves models concurrently). The ModelEntry references returned by
/// entry() are stable — entries are heap-allocated and never removed — but
/// mutating an entry's contents concurrently with inference on it is the
/// caller's problem, not the registry's.
class ModelRegistry {
 public:
  /// Registers a model under a unique name; returns its handle.
  std::size_t add(std::string name, nn::StagedModel model)
      EUGENE_EXCLUDES(mutex_);

  std::size_t size() const EUGENE_EXCLUDES(mutex_);
  ModelEntry& entry(std::size_t handle) EUGENE_EXCLUDES(mutex_);
  const ModelEntry& entry(std::size_t handle) const EUGENE_EXCLUDES(mutex_);

  /// Handle of the model with the given name, if any.
  std::optional<std::size_t> find(const std::string& name) const
      EUGENE_EXCLUDES(mutex_);

 private:
  std::optional<std::size_t> find_locked(const std::string& name) const
      EUGENE_REQUIRES(mutex_);

  mutable Mutex mutex_{LockRank::kModelRegistry, "ModelRegistry::mutex_"};
  std::vector<std::unique_ptr<ModelEntry>> entries_ EUGENE_GUARDED_BY(mutex_);
};

}  // namespace eugene::serving
