// Model registry: named, versioned staged models together with the
// artifacts the serving path needs (confidence-curve model, stage cost
// model, chosen calibration α) — published by *epoch* (DESIGN.md §13).
//
// Readers never take the writer mutex. The full model set lives in an
// immutable View swapped atomically: pin() is one spin-bit-protected
// shared_ptr copy (see ViewSlot below for why not std::atomic<shared_ptr>),
// and everything
// reached through the returned view — entry table, names, curves, costs —
// stays valid and unchanging for as long as the caller holds it, no matter
// how many snapshots, restores, reloads, or swaps writers publish meanwhile.
// Writers serialize on one mutex, build the next epoch off to the side
// (copy-on-write: untouched entries are shared between epochs, mutated
// entries are deep-cloned first), and publish with a single atomic store.
//
// The concurrency contract has two halves:
//   * persistent state (weights, curves, costs, α) reached through a view is
//     immutable — mutating it after publication is a bug; update()/replace()
//     exist so writers never need to;
//   * the model's inference *scratch* (layer activation caches) is mutable
//     and thread-owned: at most one thread may run stages on a given
//     published entry at a time (the live scheduler gives each worker its
//     own replica; the in-process server runs batches sequentially).
// Cloning an entry only reads persistent state (nn::Layer::clone skips
// scratch), which is why writers may clone entries that are concurrently
// serving.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"
#include "gp/confidence_curve.hpp"
#include "nn/staged_model.hpp"
#include "sched/task.hpp"

namespace eugene::telemetry {
class MetricsRegistry;
}

namespace eugene::serving {

/// Everything Eugene keeps per deployed model.
struct ModelEntry {
  std::string name;
  nn::StagedModel model;
  gp::ConfidenceCurveModel curves;          ///< fitted after calibration
  sched::StageCostModel costs;              ///< per-stage execution time
  std::vector<double> calibration_alpha;    ///< Eq. 4 α chosen per stage
  bool calibrated = false;

  ModelEntry(std::string n, nn::StagedModel m) : name(std::move(n)), model(std::move(m)) {}

  /// Deep copy: clones the model's persistent state (nn::Layer::clone — no
  /// scratch, so safe against a concurrently-serving original) and copies
  /// the serving artifacts. The basis of every copy-on-write mutation.
  std::shared_ptr<ModelEntry> clone() const;
};

/// Epoch-published registry; handles are stable dense indices that survive
/// every mutation (replace/update/reload keep an entry's handle; add appends).
class ModelRegistry {
 public:
  /// One immutable published epoch of the full model set.
  class View {
   public:
    std::size_t size() const { return entries_.size(); }

    /// Entry lookup. The returned reference is non-const only because
    /// running inference mutates the model's scratch caches; the entry's
    /// persistent state is frozen (see the header comment).
    ModelEntry& entry(std::size_t handle) const {
      EUGENE_REQUIRE(handle < entries_.size(), "ModelRegistry: bad handle");
      return *entries_[handle];
    }

    std::optional<std::size_t> find(const std::string& name) const {
      for (std::size_t i = 0; i < entries_.size(); ++i)
        if (entries_[i]->name == name) return i;
      return std::nullopt;
    }

    /// Monotone publication counter (0 = the empty initial epoch).
    std::uint64_t epoch() const { return epoch_; }

   private:
    friend class ModelRegistry;
    std::vector<std::shared_ptr<ModelEntry>> entries_;
    std::uint64_t epoch_ = 0;
  };
  using ViewPtr = std::shared_ptr<const View>;

  ModelRegistry();

  /// Atomically pins the current epoch: one spin-bit acquire plus a refcount
  /// bump, never the writer mutex. Hold the returned view for the duration
  /// of a request (or a snapshot) and every read through it is coherent — a
  /// full model set from a single instant.
  ViewPtr pin() const { return view_.load(); }

  /// Registers a model under a unique name; returns its handle.
  std::size_t add(std::string name, nn::StagedModel model) EUGENE_EXCLUDES(mutex_);

  /// Registers a fully-built entry (restore path: construct the entry —
  /// params, artifacts, α — off to the side, then publish it in one step).
  std::size_t add_entry(std::shared_ptr<ModelEntry> entry) EUGENE_EXCLUDES(mutex_);

  /// Copy-on-write mutation: deep-clones the published entry, runs `fn` on
  /// the private clone (free to run stages, fit curves, set α — nothing is
  /// visible yet), then publishes a new epoch with the clone in place.
  /// In-flight readers keep their pinned epoch; `fn` runs under the writer
  /// mutex, so mutations serialize.
  void update(std::size_t handle,
              const std::function<void(ModelEntry&)>& fn) EUGENE_EXCLUDES(mutex_);

  /// Replaces the entry at `handle` with a pre-built one (hot model swap).
  /// The new entry's name must not collide with a *different* handle.
  void replace(std::size_t handle, std::shared_ptr<ModelEntry> entry)
      EUGENE_EXCLUDES(mutex_);

  /// Batch publish for reload: each entry replaces the same-named existing
  /// entry (keeping its handle) or is appended; all changes land in ONE new
  /// epoch, so readers never observe a half-reloaded set.
  void replace_or_add(std::vector<std::shared_ptr<ModelEntry>> entries)
      EUGENE_EXCLUDES(mutex_);

  /// Publication-epoch gauge/counter sink (optional; set once at wiring).
  void set_metrics(telemetry::MetricsRegistry* metrics) { metrics_ = metrics; }

  // -- compatibility accessors (one pin each) ----------------------------
  std::size_t size() const { return pin()->size(); }
  /// Entry of the *current* epoch. Valid until this handle is next replaced;
  /// prefer pin() when reading more than one thing coherently.
  ModelEntry& entry(std::size_t handle) { return pin()->entry(handle); }
  const ModelEntry& entry(std::size_t handle) const { return pin()->entry(handle); }
  std::optional<std::size_t> find(const std::string& name) const {
    return pin()->find(name);
  }
  std::uint64_t epoch() const { return pin()->epoch(); }

 private:
  /// The published-view slot: a shared_ptr behind a single-word spin bit
  /// with acquire on lock and release on unlock — on BOTH the reader and
  /// writer paths. libstdc++ 12's std::atomic<shared_ptr> releases the
  /// reader-side bit with a *relaxed* RMW (bits/shared_ptr_atomic.h:
  /// load() ends in unlock(memory_order_relaxed)), which leaves no
  /// happens-before edge from a reader's pointer read to the next writer's
  /// pointer swap — formally a data race, and ThreadSanitizer reports it as
  /// one under the lifecycle chaos suite. This slot is the same protocol
  /// with the ordering fixed; the critical section is one shared_ptr copy
  /// or swap (a refcount RMW), a few nanoseconds either way
  /// (BM_RegistryEpochRead).
  class ViewSlot {
   public:
    ViewPtr load() const {
      lock();
      ViewPtr copy = ptr_;
      unlock();
      return copy;
    }
    void store(ViewPtr next) {
      lock();
      ptr_.swap(next);
      unlock();
      // `next` now holds the displaced view: the old epoch's refcount drop
      // (and possible destruction) happens outside the spin bit.
    }

   private:
    void lock() const {
      std::uint32_t expected = 0;
      while (!locked_.compare_exchange_weak(expected, 1,
                                            std::memory_order_acquire,
                                            std::memory_order_relaxed))
        expected = 0;
    }
    void unlock() const { locked_.store(0, std::memory_order_release); }

    mutable std::atomic<std::uint32_t> locked_{0};
    ViewPtr ptr_;  // guarded by locked_
  };

  /// Stamps the next epoch number and atomically publishes `next`. The
  /// `registry.swap.stall` seam fires first: an error kind aborts the
  /// publication with the old epoch fully intact (the half-built view is
  /// simply dropped), a delay kind widens the build-to-publish window.
  void publish_locked(std::shared_ptr<View> next) EUGENE_REQUIRES(mutex_);

  mutable Mutex mutex_{LockRank::kModelRegistry, "ModelRegistry::mutex_"};
  ViewSlot view_;
  std::uint64_t epoch_version_ EUGENE_GUARDED_BY(mutex_) = 0;
  telemetry::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace eugene::serving
