// Model registry: named, versioned staged models together with the
// artifacts the serving path needs (confidence-curve model, stage cost
// model, chosen calibration α).
#pragma once

#include <optional>
#include <string>

#include "gp/confidence_curve.hpp"
#include "nn/staged_model.hpp"
#include "sched/task.hpp"

namespace eugene::serving {

/// Everything Eugene keeps per deployed model.
struct ModelEntry {
  std::string name;
  nn::StagedModel model;
  gp::ConfidenceCurveModel curves;          ///< fitted after calibration
  sched::StageCostModel costs;              ///< per-stage execution time
  std::vector<double> calibration_alpha;    ///< Eq. 4 α chosen per stage
  bool calibrated = false;

  ModelEntry(std::string n, nn::StagedModel m) : name(std::move(n)), model(std::move(m)) {}
};

/// Owning registry; handles are stable dense indices.
class ModelRegistry {
 public:
  /// Registers a model under a unique name; returns its handle.
  std::size_t add(std::string name, nn::StagedModel model);

  std::size_t size() const { return entries_.size(); }
  ModelEntry& entry(std::size_t handle);
  const ModelEntry& entry(std::size_t handle) const;

  /// Handle of the model with the given name, if any.
  std::optional<std::size_t> find(const std::string& name) const;

 private:
  std::vector<std::unique_ptr<ModelEntry>> entries_;
};

}  // namespace eugene::serving
