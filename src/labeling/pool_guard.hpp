// Data-pool integrity screening (paper §V future work):
//
//   "how to handle rogue devices (or insider attacks) that gain access to
//    the data [pool] for the purpose of polluting the pool with adversarial
//    inputs (e.g., bad samples or wrong labels)? ... if samples arriving
//    from one of the devices are often misclassified based on models
//    computed from other devices' data, then one may suspect rogue
//    behavior."
//
// PoolGuard implements exactly that test with leave-one-contributor-out
// cross-validation: for each contributor, a model trained on everyone
// else's data scores that contributor's samples; contributors whose
// disagreement rate exceeds the population by a configurable margin are
// flagged. Rogues that mix good data with some bad labels are caught once
// the bad fraction pushes their disagreement rate past the threshold.
#pragma once

#include <functional>

#include "data/dataset.hpp"
#include "nn/train.hpp"

namespace eugene::labeling {

/// One device's contribution to a training pool.
struct Contribution {
  std::size_t device_id = 0;
  data::Dataset data;
};

/// Screening verdict per contributor.
struct ContributorReport {
  std::size_t device_id = 0;
  std::size_t samples = 0;
  double disagreement_rate = 0.0;  ///< cross-model error on this device's data
  bool flagged = false;
};

/// Screening knobs.
struct PoolGuardConfig {
  /// Flag a contributor whose disagreement exceeds the median contributor's
  /// by this absolute margin.
  double flag_margin = 0.25;
  nn::ClassifierTrainConfig training;
};

/// Leave-one-contributor-out screening over a pool of contributions.
/// `factory(variant)` builds a fresh classifier for each held-out fold.
std::vector<ContributorReport> screen_pool(
    const std::vector<Contribution>& contributions,
    const std::function<nn::Sequential(std::uint64_t)>& factory,
    const PoolGuardConfig& config);

/// Convenience: the pool with flagged contributors removed.
data::Dataset clean_pool(const std::vector<Contribution>& contributions,
                         const std::vector<ContributorReport>& reports);

}  // namespace eugene::labeling
