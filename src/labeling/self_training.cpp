#include "labeling/self_training.hpp"

#include "common/stats.hpp"

namespace eugene::labeling {

using tensor::Tensor;

SelfTrainingLabeler::SelfTrainingLabeler(ModelFactory factory, SelfTrainingConfig config)
    : factory_(std::move(factory)), config_(config) {
  EUGENE_REQUIRE(factory_ != nullptr, "SelfTrainingLabeler: null model factory");
  EUGENE_REQUIRE(config_.rounds >= 1, "SelfTrainingLabeler: need at least one round");
  EUGENE_REQUIRE(config_.adopt_confidence > 0.0 && config_.adopt_confidence <= 1.0,
                 "SelfTrainingLabeler: adopt_confidence outside (0,1]");
}

data::Dataset SelfTrainingLabeler::run(const data::Dataset& labeled,
                                       const data::Dataset& unlabeled,
                                       LabelingReport* report) {
  EUGENE_REQUIRE(!labeled.empty(), "SelfTrainingLabeler: empty labeled set");

  data::Dataset augmented = labeled;
  std::vector<bool> adopted(unlabeled.size(), false);
  std::size_t adopted_total = 0;
  std::size_t adopted_correct = 0;
  LabelingReport local_report;

  for (std::size_t round = 0; round < config_.rounds; ++round) {
    // Fresh proposer (and, for the falsifiability check, a fresh verifier
    // with a different initialization) trained on everything adopted so far.
    nn::Sequential proposer = factory_(2 * round);
    nn::train_classifier(proposer, augmented.samples, augmented.labels, config_.training);
    nn::Sequential verifier = factory_(2 * round + 1);
    if (config_.require_agreement)
      nn::train_classifier(verifier, augmented.samples, augmented.labels,
                           config_.training);

    std::size_t adopted_this_round = 0;
    for (std::size_t i = 0; i < unlabeled.size(); ++i) {
      if (adopted[i]) continue;
      const std::vector<float> probs =
          nn::softmax_probs(proposer.forward(unlabeled.samples[i], false));
      const std::size_t label = argmax(probs);
      if (probs[label] < config_.adopt_confidence) continue;
      if (config_.require_agreement) {
        const std::vector<float> verify_probs =
            nn::softmax_probs(verifier.forward(unlabeled.samples[i], false));
        if (argmax(verify_probs) != label) continue;  // falsified
      }
      adopted[i] = true;
      ++adopted_this_round;
      ++adopted_total;
      if (label == unlabeled.labels[i]) ++adopted_correct;
      augmented.push(unlabeled.samples[i], label, unlabeled.difficulty[i]);
    }
    local_report.adopted_per_round.push_back(adopted_this_round);
    if (adopted_this_round == 0) break;  // converged
  }

  local_report.adopted_total = adopted_total;
  local_report.pseudo_label_accuracy =
      adopted_total == 0 ? 0.0
                         : static_cast<double>(adopted_correct) /
                               static_cast<double>(adopted_total);
  if (report != nullptr) *report = local_report;
  return augmented;
}

BenefitReport evaluate_labeling_benefit(const SelfTrainingLabeler::ModelFactory& factory,
                                        const data::Dataset& labeled,
                                        const data::Dataset& unlabeled,
                                        const data::Dataset& test,
                                        const SelfTrainingConfig& config) {
  EUGENE_REQUIRE(!test.empty(), "evaluate_labeling_benefit: empty test set");
  BenefitReport report;

  // (a) Small labeled set only.
  {
    nn::Sequential model = factory(1001);
    nn::train_classifier(model, labeled.samples, labeled.labels, config.training);
    report.labeled_only =
        nn::classifier_accuracy(model, test.samples, test.labels);
  }
  // (b) Labeled + pseudo-labels from the labeling service.
  {
    SelfTrainingLabeler labeler(factory, config);
    const data::Dataset augmented = labeler.run(labeled, unlabeled, &report.labeling);
    nn::Sequential model = factory(1002);
    nn::train_classifier(model, augmented.samples, augmented.labels, config.training);
    report.self_trained =
        nn::classifier_accuracy(model, test.samples, test.labels);
  }
  // (c) Fully supervised upper bound: real labels for the whole pool.
  {
    data::Dataset full = labeled;
    full.append(unlabeled);
    nn::Sequential model = factory(1003);
    nn::train_classifier(model, full.samples, full.labels, config.training);
    report.fully_supervised =
        nn::classifier_accuracy(model, test.samples, test.labels);
  }
  return report;
}

}  // namespace eugene::labeling
