#include "labeling/pool_guard.hpp"

#include <algorithm>

#include "common/stats.hpp"

namespace eugene::labeling {

std::vector<ContributorReport> screen_pool(
    const std::vector<Contribution>& contributions,
    const std::function<nn::Sequential(std::uint64_t)>& factory,
    const PoolGuardConfig& config) {
  EUGENE_REQUIRE(contributions.size() >= 3,
                 "screen_pool: need at least three contributors to vote");
  EUGENE_REQUIRE(factory != nullptr, "screen_pool: null model factory");

  std::vector<ContributorReport> reports(contributions.size());
  for (std::size_t held_out = 0; held_out < contributions.size(); ++held_out) {
    EUGENE_REQUIRE(!contributions[held_out].data.empty(),
                   "screen_pool: empty contribution");
    // Train on everyone else's data.
    data::Dataset others;
    for (std::size_t j = 0; j < contributions.size(); ++j)
      if (j != held_out) others.append(contributions[j].data);
    nn::Sequential model = factory(held_out);
    nn::train_classifier(model, others.samples, others.labels, config.training);

    // Score the held-out contributor's claimed labels.
    const data::Dataset& mine = contributions[held_out].data;
    std::size_t disagreements = 0;
    for (std::size_t i = 0; i < mine.size(); ++i) {
      const auto probs = nn::softmax_probs(model.forward(mine.samples[i], false));
      if (argmax(probs) != mine.labels[i]) ++disagreements;
    }
    reports[held_out].device_id = contributions[held_out].device_id;
    reports[held_out].samples = mine.size();
    reports[held_out].disagreement_rate =
        static_cast<double>(disagreements) / static_cast<double>(mine.size());
  }

  // Flag against the median: honest contributors share the model's natural
  // error rate; a rogue's mislabeled share sits on top of it.
  std::vector<double> rates;
  rates.reserve(reports.size());
  for (const auto& r : reports) rates.push_back(r.disagreement_rate);
  std::sort(rates.begin(), rates.end());
  const double median = rates[rates.size() / 2];
  for (auto& r : reports)
    r.flagged = r.disagreement_rate > median + config.flag_margin;
  return reports;
}

data::Dataset clean_pool(const std::vector<Contribution>& contributions,
                         const std::vector<ContributorReport>& reports) {
  EUGENE_REQUIRE(contributions.size() == reports.size(),
                 "clean_pool: contributions/reports size mismatch");
  data::Dataset pool;
  for (std::size_t i = 0; i < contributions.size(); ++i) {
    EUGENE_REQUIRE(contributions[i].device_id == reports[i].device_id,
                   "clean_pool: report order does not match contributions");
    if (!reports[i].flagged) pool.append(contributions[i].data);
  }
  return pool;
}

}  // namespace eugene::labeling
