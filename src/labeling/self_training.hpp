// Automatic data labeling (paper §II-A "Labeling").
//
// The paper proposes SenseGAN: a semi-supervised game where one network
// proposes labels for unlabeled samples and an adversary tries to tell the
// proposed labels from real ones, until the proposals are "hard to falsify".
// Training a GAN is out of this reproduction's CPU budget (DESIGN.md §2), so
// Eugene's labeling service implements the same service contract with
// confidence-thresholded self-training plus a *disagreement discriminator*:
// two independently initialized classifiers must agree on a pseudo-label
// before it is adopted — the cheap stand-in for the adversary's
// falsifiability test. The service-level behaviour matches the paper's
// claim: a few labels plus many unlabeled samples approach fully supervised
// accuracy.
#pragma once

#include <functional>

#include "data/dataset.hpp"
#include "nn/train.hpp"

namespace eugene::labeling {

/// Self-training knobs.
struct SelfTrainingConfig {
  std::size_t rounds = 4;
  double adopt_confidence = 0.85;  ///< pseudo-labels need this much confidence
  bool require_agreement = true;   ///< both classifiers must agree (the
                                   ///< falsifiability stand-in)
  nn::ClassifierTrainConfig training;
  std::uint64_t seed = 3;
};

/// What the labeler did, for analysis. `pseudo_label_accuracy` uses the
/// hidden ground truth carried by the unlabeled pool — evaluation only,
/// never visible to the labeler.
struct LabelingReport {
  std::size_t adopted_total = 0;
  std::vector<std::size_t> adopted_per_round;
  double pseudo_label_accuracy = 0.0;
};

/// Semi-supervised labeler over caller-supplied classifier architectures.
class SelfTrainingLabeler {
 public:
  /// Builds a fresh, untrained classifier; called once per model per round.
  /// The factory should vary initialization via its own internal seeding —
  /// the labeler passes a distinct `variant` index per call.
  using ModelFactory = std::function<nn::Sequential(std::uint64_t variant)>;

  SelfTrainingLabeler(ModelFactory factory, SelfTrainingConfig config);

  /// Consumes a small labeled set and an unlabeled pool (its `labels` are
  /// hidden ground truth used only for the report). Returns the labeled set
  /// augmented with adopted pseudo-labeled samples.
  data::Dataset run(const data::Dataset& labeled, const data::Dataset& unlabeled,
                    LabelingReport* report = nullptr);

 private:
  ModelFactory factory_;
  SelfTrainingConfig config_;
};

/// End-to-end benefit measurement: downstream accuracy when training on
/// (a) the small labeled set only, (b) labeled + self-training-adopted
/// pseudo-labels, (c) the fully supervised upper bound.
struct BenefitReport {
  double labeled_only = 0.0;
  double self_trained = 0.0;
  double fully_supervised = 0.0;
  LabelingReport labeling;
};

BenefitReport evaluate_labeling_benefit(const SelfTrainingLabeler::ModelFactory& factory,
                                        const data::Dataset& labeled,
                                        const data::Dataset& unlabeled,
                                        const data::Dataset& test,
                                        const SelfTrainingConfig& config);

}  // namespace eugene::labeling
