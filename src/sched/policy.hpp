// Scheduling policies (paper Section III-C "Runtime Scheduling"):
//
//   GreedyUtilityPolicy  — RTDeepIoT-k: greedy max-differential-utility with a
//                          lookahead-k planned timeline
//   RoundRobinPolicy     — RR: stage-level round robin over services
//   FifoPolicy           — FIFO: run every stage of the earliest arrival
//   EarliestDeadlinePolicy — EDF extension (not in the paper's comparison,
//                          kept as an ablation baseline)
//
// A policy is consulted whenever a worker frees up; it picks which runnable
// task should execute its next stage.
#pragma once

#include <deque>
#include <optional>

#include "sched/utility.hpp"

namespace eugene::sched {

/// Picks the next task to advance by one stage.
class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;

  /// Returns the task_id (from `runnable`) whose next stage should run, or
  /// std::nullopt to leave the worker idle. `runnable` contains arrived,
  /// unfinished, not-currently-executing tasks with stages remaining.
  virtual std::optional<std::size_t> pick(const std::vector<TaskView>& runnable,
                                          double now_ms) = 0;

  /// Invoked by the engine when a stage finishes and reveals its confidence.
  virtual void on_stage_complete(std::size_t /*task_id*/, std::size_t /*stage*/,
                                 double /*confidence*/) {}

  /// Clears internal state between simulation runs.
  virtual void reset() {}

  virtual std::string name() const = 0;
};

/// RTDeepIoT-k. Plans a timeline of k stage selections by greedy
/// differential utility, chaining the estimator over hypothetical
/// executions; replans when the timeline is exhausted or invalidated.
class GreedyUtilityPolicy final : public SchedulingPolicy {
 public:
  /// `estimator` must outlive the policy. `lookahead` is the paper's k.
  GreedyUtilityPolicy(const UtilityEstimator& estimator, std::size_t lookahead);

  /// Multi-service-class extension (paper §V future work): utility of a
  /// stage is scaled by its service's weight, so latency-critical classes
  /// (e.g. an interactive chatbot) outbid tolerant ones. Services beyond
  /// the vector default to weight 1.
  void set_service_weights(std::vector<double> weights);

  /// Deadline feasibility: with a per-stage execution-time hint, the
  /// planner skips tasks whose next stage cannot finish before their
  /// deadline — "no utility is accrued for tasks that are not completed"
  /// (paper §III), so starting a doomed stage only wastes a worker.
  /// 0 disables the check (default).
  void set_stage_cost_hint(double stage_ms);

  std::optional<std::size_t> pick(const std::vector<TaskView>& runnable,
                                  double now_ms) override;
  void on_stage_complete(std::size_t task_id, std::size_t stage,
                         double confidence) override;
  void reset() override { timeline_.clear(); }
  std::string name() const override;

 private:
  void plan(const std::vector<TaskView>& runnable, double now_ms);

  double service_weight(std::size_t service) const {
    return service < service_weights_.size() ? service_weights_[service] : 1.0;
  }

  const UtilityEstimator& estimator_;
  std::size_t lookahead_;
  std::vector<double> service_weights_;
  double stage_cost_hint_ms_ = 0.0;
  std::deque<std::size_t> timeline_;  ///< planned task ids, in execution order
};

/// Stage-level round robin across services.
class RoundRobinPolicy final : public SchedulingPolicy {
 public:
  std::optional<std::size_t> pick(const std::vector<TaskView>& runnable,
                                  double now_ms) override;
  void reset() override { next_service_ = 0; }
  std::string name() const override { return "RR"; }

 private:
  std::size_t next_service_ = 0;
};

/// First come, first served; every stage runs to the end.
class FifoPolicy final : public SchedulingPolicy {
 public:
  std::optional<std::size_t> pick(const std::vector<TaskView>& runnable,
                                  double now_ms) override;
  std::string name() const override { return "FIFO"; }
};

/// Earliest absolute deadline first (ablation extension).
class EarliestDeadlinePolicy final : public SchedulingPolicy {
 public:
  std::optional<std::size_t> pick(const std::vector<TaskView>& runnable,
                                  double now_ms) override;
  std::string name() const override { return "EDF"; }
};

}  // namespace eugene::sched
