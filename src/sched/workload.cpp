#include "sched/workload.hpp"

namespace eugene::sched {

std::vector<TaskSpec> build_workload(const calib::StagedEvaluation& eval,
                                     const WorkloadConfig& config, Rng& rng) {
  EUGENE_REQUIRE(eval.num_samples() > 0, "build_workload: empty evaluation table");
  EUGENE_REQUIRE(config.num_services > 0 && config.tasks_per_service > 0,
                 "build_workload: empty workload");
  EUGENE_REQUIRE(config.mean_interarrival_ms > 0.0,
                 "build_workload: non-positive interarrival time");

  std::vector<TaskSpec> tasks;
  tasks.reserve(config.num_services * config.tasks_per_service);
  std::size_t next_id = 0;
  for (std::size_t svc = 0; svc < config.num_services; ++svc) {
    double t = 0.0;
    for (std::size_t j = 0; j < config.tasks_per_service; ++j) {
      t += config.poisson_arrivals
               ? rng.exponential(1.0 / config.mean_interarrival_ms)
               : config.mean_interarrival_ms;
      const std::size_t row = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(eval.num_samples()) - 1));
      TaskSpec spec;
      spec.id = next_id++;
      spec.service = svc;
      spec.arrival_ms = t;
      spec.deadline_ms = t + config.deadline_ms;
      spec.stages.reserve(eval.num_stages());
      for (std::size_t s = 0; s < eval.num_stages(); ++s) {
        const calib::StageRecord& r = eval.records[s][row];
        StageOutcome outcome;
        outcome.predicted = r.predicted;
        outcome.correct = r.predicted == r.truth;
        outcome.confidence = r.confidence;
        spec.stages.push_back(outcome);
      }
      tasks.push_back(std::move(spec));
    }
  }
  return tasks;
}

StageCostModel cost_model_from_flops(const std::vector<double>& stage_flops,
                                     double flops_per_ms) {
  EUGENE_REQUIRE(!stage_flops.empty(), "cost_model_from_flops: no stages");
  EUGENE_REQUIRE(flops_per_ms > 0.0, "cost_model_from_flops: throughput must be positive");
  StageCostModel costs;
  costs.stage_ms.reserve(stage_flops.size());
  for (double f : stage_flops) {
    EUGENE_REQUIRE(f > 0.0, "cost_model_from_flops: non-positive stage FLOPs");
    costs.stage_ms.push_back(f / flops_per_ms);
  }
  return costs;
}

}  // namespace eugene::sched
