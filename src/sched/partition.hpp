// Client/server model partitioning (paper §IV-A "Distributing the Inference
// Model"):
//
//   "it may be possible to execute some stages of the neural network on the
//    client, leaving other stages to execute on the server. If the
//    confidence in results obtained on the client is sufficiently high, no
//    subsequent offloading to the server is needed. ... An ideal
//    partitioning should maximally reduce client reliance on remote
//    processing, while observing client-side resource constraints as well
//    as communication bandwidth constraints."
//
// This module makes that concrete: given per-stage FLOPs / parameter sizes /
// feature sizes, device & server throughputs, a link profile, and the
// empirical early-exit survival curve (from a calibration evaluation table),
// it enumerates every split point and picks the one minimizing expected
// per-request latency subject to the device's model-size budget.
#pragma once

#include <limits>

#include "calib/evaluation.hpp"
#include "nn/staged_model.hpp"

namespace eugene::sched {

/// Compute capability and storage budget of one side.
struct ComputeProfile {
  double flops_per_ms = 1e6;
  std::size_t max_model_bytes = std::numeric_limits<std::size_t>::max();
};

/// Client↔server link.
struct LinkProfile {
  double bytes_per_ms = 1000.0;  ///< throughput
  double rtt_ms = 10.0;          ///< fixed round-trip overhead per offload
};

/// Static description of one stage for the planner.
struct StageInfo {
  double flops = 0.0;
  std::size_t param_bytes = 0;    ///< what caching this stage on-device costs
  std::size_t output_bytes = 0;   ///< feature tensor crossing a cut after this stage
};

/// Planner inputs.
struct PartitionConfig {
  ComputeProfile device;
  ComputeProfile server;
  LinkProfile link;
  double early_exit_confidence = 0.9;  ///< client answers locally above this
  std::size_t input_bytes = 0;         ///< raw sample size (cut before stage 0)
};

/// Evaluation of one split point. Stages [0, split) run on the device;
/// split == 0 means pure offloading, split == L means fully local.
struct PartitionPlan {
  std::size_t split = 0;
  bool fits_device = true;          ///< device stages fit the storage budget
  double device_ms = 0.0;           ///< expected local compute (early exits
                                    ///< skip later device stages)
  double offload_probability = 1.0; ///< P(confidence below threshold on-device)
  double upload_ms = 0.0;           ///< link cost per offload
  double server_ms = 0.0;           ///< expected remote compute (unconditional,
                                    ///< already weighted by execution probability)
  double expected_latency_ms = 0.0; ///< device + P(offload)·upload + server
};

/// Extracts planner stage descriptions from a staged model by running one
/// forward pass of `example_input` to measure feature sizes.
std::vector<StageInfo> stage_infos(nn::StagedModel& model,
                                   const tensor::Tensor& example_input);

/// Survival curve from an evaluation table: survival[s] is the fraction of
/// samples whose confidence stayed below `threshold` at ALL stages 0..s —
/// i.e. the probability a request still needs more stages after stage s.
std::vector<double> survival_curve(const calib::StagedEvaluation& eval,
                                   double threshold);

/// Evaluates every split point (0..L inclusive). Plans that violate the
/// device budget are marked !fits_device and given infinite latency.
std::vector<PartitionPlan> evaluate_partitions(const std::vector<StageInfo>& stages,
                                               const std::vector<double>& survival,
                                               const PartitionConfig& config);

/// The feasible plan with the lowest expected latency.
/// Throws eugene::InvalidArgument if no split fits the device budget
/// (split == 0 always fits: nothing is cached on the device).
PartitionPlan plan_partition(const std::vector<StageInfo>& stages,
                             const std::vector<double>& survival,
                             const PartitionConfig& config);

}  // namespace eugene::sched
