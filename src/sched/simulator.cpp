#include "sched/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/check.hpp"
#include "common/stats.hpp"

namespace eugene::sched {

double SimulationResult::mean_accuracy() const {
  EUGENE_REQUIRE(!services.empty(), "mean_accuracy: no services");
  double sum = 0.0;
  for (const auto& s : services) sum += s.accuracy();
  return sum / static_cast<double>(services.size());
}

double SimulationResult::std_accuracy() const {
  EUGENE_REQUIRE(!services.empty(), "std_accuracy: no services");
  std::vector<double> acc;
  acc.reserve(services.size());
  for (const auto& s : services) acc.push_back(s.accuracy());
  return stddev(acc);
}

double SimulationResult::mean_stages_per_task() const {
  std::size_t tasks = 0, stages = 0;
  for (const auto& s : services) {
    tasks += s.tasks;
    stages += s.stages_executed;
  }
  return tasks == 0 ? 0.0 : static_cast<double>(stages) / static_cast<double>(tasks);
}

namespace {

enum class EventKind { Arrival, StageDone, Deadline };

struct Event {
  double time_ms = 0.0;
  std::uint64_t seq = 0;  ///< FIFO tie-break for determinism
  EventKind kind = EventKind::Arrival;
  std::size_t task_index = 0;
  std::uint64_t epoch = 0;  ///< StageDone validity check (abort support)

  bool operator>(const Event& other) const {
    if (time_ms != other.time_ms) return time_ms > other.time_ms;
    return seq > other.seq;
  }
};

struct TaskRuntime {
  const TaskSpec* spec = nullptr;
  std::size_t stages_done = 0;
  bool arrived = false;
  bool running = false;
  bool finished = false;
  bool deadline_passed = false;  ///< used when kill_at_deadline is off
  std::uint64_t epoch = 0;  ///< incremented on abort to invalidate StageDone
  std::vector<double> observed_confidence;
};

}  // namespace

SimulationResult simulate(std::vector<TaskSpec> tasks, SchedulingPolicy& policy,
                          const StageCostModel& costs, const SimulationConfig& config) {
  EUGENE_REQUIRE(!tasks.empty(), "simulate: empty task set");
  EUGENE_REQUIRE(config.num_workers >= 1, "simulate: need at least one worker");
  policy.reset();
  Rng rng(config.rng_seed);

  std::vector<TaskRuntime> runtime(tasks.size());
  std::size_t num_services = 0;
  std::size_t max_stages = 0;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EUGENE_REQUIRE(!tasks[i].stages.empty(), "simulate: task with no stages");
    runtime[i].spec = &tasks[i];
    num_services = std::max(num_services, tasks[i].service + 1);
    max_stages = std::max(max_stages, tasks[i].stages.size());
  }
  EUGENE_REQUIRE(costs.num_stages() >= max_stages,
                 "simulate: cost model covers fewer stages than tasks have");

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
  std::uint64_t seq = 0;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    events.push({tasks[i].arrival_ms, seq++, EventKind::Arrival, i, 0});
    if (std::isfinite(tasks[i].deadline_ms))
      events.push({tasks[i].deadline_ms, seq++, EventKind::Deadline, i, 0});
  }

  SimulationResult result;
  result.services.resize(num_services);
  result.exit_stage_histogram.assign(max_stages + 1, 0);
  std::size_t free_workers = config.num_workers;
  double now = 0.0;

  auto finish_task = [&](std::size_t i) {
    TaskRuntime& t = runtime[i];
    EUGENE_CHECK(!t.finished) << "finish_task: task " << t.spec->id
                              << " already finished";
    t.finished = true;
    ServiceMetrics& svc = result.services[t.spec->service];
    ++svc.tasks;
    if (t.stages_done == 0) {
      ++svc.expired_without_result;
      ++result.exit_stage_histogram[0];
      return;
    }
    const StageOutcome& last = t.spec->stages[t.stages_done - 1];
    if (last.correct) ++svc.correct;
    ++result.exit_stage_histogram[t.stages_done];
    if (t.stages_done == t.spec->stages.size())
      ++svc.completed_all_stages;
    else if (t.observed_confidence.back() >= config.early_exit_confidence)
      ++svc.early_exits;
    else
      ++svc.expired_with_result;
  };

  auto dispatch = [&]() {
    while (free_workers > 0) {
      std::vector<TaskView> runnable;
      for (std::size_t i = 0; i < runtime.size(); ++i) {
        const TaskRuntime& t = runtime[i];
        if (!t.arrived || t.finished || t.running) continue;
        if (t.stages_done >= t.spec->stages.size()) continue;
        TaskView v;
        v.task_id = t.spec->id;
        v.service = t.spec->service;
        v.stages_done = t.stages_done;
        v.total_stages = t.spec->stages.size();
        v.arrival_ms = t.spec->arrival_ms;
        v.deadline_ms = t.spec->deadline_ms;
        v.observed_confidence = t.observed_confidence;
        runnable.push_back(v);
      }
      if (runnable.empty()) return;
      const std::optional<std::size_t> choice = policy.pick(runnable, now);
      if (!choice.has_value()) return;
      // Map task_id back to the runtime index.
      std::size_t idx = runtime.size();
      for (std::size_t i = 0; i < runtime.size(); ++i)
        if (runtime[i].spec->id == *choice) {
          idx = i;
          break;
        }
      EUGENE_CHECK_LT(idx, runtime.size())
          << "policy picked unknown task id " << *choice;
      TaskRuntime& t = runtime[idx];
      EUGENE_CHECK(t.arrived && !t.finished && !t.running &&
                   t.stages_done < t.spec->stages.size())
          << "policy picked non-runnable task " << *choice;
      t.running = true;
      --free_workers;
      const double dt = costs.duration_ms(t.stages_done, rng);
      events.push({now + dt, seq++, EventKind::StageDone, idx, t.epoch});
    }
  };

  while (!events.empty()) {
    const Event ev = events.top();
    events.pop();
    now = std::max(now, ev.time_ms);
    TaskRuntime& t = runtime[ev.task_index];

    switch (ev.kind) {
      case EventKind::Arrival:
        t.arrived = true;
        break;

      case EventKind::StageDone: {
        if (ev.epoch != t.epoch || !t.running) break;  // aborted stage
        t.running = false;
        ++free_workers;
        const StageOutcome& outcome = t.spec->stages[t.stages_done];
        ++t.stages_done;
        t.observed_confidence.push_back(outcome.confidence);
        result.services[t.spec->service].stages_executed += 1;
        policy.on_stage_complete(t.spec->id, t.stages_done - 1, outcome.confidence);
        result.makespan_ms = std::max(result.makespan_ms, now);
        if (t.stages_done == t.spec->stages.size() ||
            outcome.confidence >= config.early_exit_confidence ||
            t.deadline_passed) {
          finish_task(ev.task_index);
        }
        break;
      }

      case EventKind::Deadline: {
        if (t.finished) break;
        if (t.running && !config.kill_at_deadline) {
          // Grace mode: the in-flight stage may finish and its result is
          // accepted, but no further stages are scheduled.
          t.deadline_passed = true;
          break;
        }
        if (t.running) {
          // The daemon "sends a signal to stop the current computation";
          // the partially executed stage accrues no result.
          ++t.epoch;
          t.running = false;
          ++free_workers;
          ++result.aborted_stage_executions;
        }
        result.makespan_ms = std::max(result.makespan_ms, now);
        finish_task(ev.task_index);
        break;
      }
    }
    dispatch();
  }

  // Tasks with no deadline that ran out of scheduling interest: if the event
  // queue drained and they are unfinished, close them with their current
  // result (the service answers with the best label it has).
  for (std::size_t i = 0; i < runtime.size(); ++i)
    if (!runtime[i].finished) finish_task(i);

  return result;
}

}  // namespace eugene::sched
