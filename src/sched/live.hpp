// Live scheduling mode: real staged-model inference on a worker pool, with
// end-of-stage confidence reports flowing to the user-space scheduler over a
// channel — the in-process mirror of the paper's process pool + Linux named
// pipes + latency daemon (Section III).
//
// Differences from the paper's deployment, by design (DESIGN.md §2):
//   * workers are threads with per-worker model replicas, not processes;
//   * a running stage cannot be interrupted mid-kernel, so the latency
//     daemon expires tasks at stage granularity: late results are discarded
//     and the task emits the last in-deadline result.
#pragma once

#include <functional>
#include <memory>

#include "gp/confidence_curve.hpp"
#include "nn/staged_model.hpp"
#include "sched/policy.hpp"

namespace eugene::sched {

/// Live-mode knobs.
struct LiveConfig {
  double deadline_ms = std::numeric_limits<double>::infinity();  ///< per task
  double early_exit_confidence = 2.0;  ///< >1 disables early exit
  std::size_t lookahead = 1;           ///< RTDeepIoT k
};

/// Final outcome of one live task.
struct LiveTaskResult {
  std::size_t task_id = 0;
  std::size_t label = 0;          ///< last emitted prediction
  double confidence = 0.0;
  std::size_t stages_run = 0;
  bool expired = false;           ///< deadline reached before all stages
  double latency_ms = 0.0;        ///< submission to final result
};

/// Runs a batch of inputs through per-worker replicas of a staged model,
/// scheduling stage executions with RTDeepIoT's greedy utility policy.
///
/// `worker_models` — one replica per worker, identical weights (use
/// replicate_staged_model). `curves` drives the utility estimates.
std::vector<LiveTaskResult> run_live(
    std::vector<std::unique_ptr<nn::StagedModel>>& worker_models,
    const gp::ConfidenceCurveModel& curves,
    const std::vector<tensor::Tensor>& inputs, const LiveConfig& config);

/// Builds `count` architecture-identical replicas of `source` (constructed
/// via `build` and weight-copied through serialization).
std::vector<std::unique_ptr<nn::StagedModel>> replicate_staged_model(
    nn::StagedModel& source, const std::function<nn::StagedModel()>& build,
    std::size_t count);

}  // namespace eugene::sched
