// Live scheduling mode: real staged-model inference on a worker pool, with
// end-of-stage confidence reports flowing to the user-space scheduler over a
// channel — the in-process mirror of the paper's process pool + Linux named
// pipes + latency daemon (Section III).
//
// Differences from the paper's deployment, by design (DESIGN.md §2):
//   * workers are threads with per-worker model replicas, not processes;
//   * a running stage cannot be interrupted mid-kernel, so the latency
//     daemon expires tasks at stage granularity: late results are discarded
//     and the task emits the last in-deadline result.
//
// Fault tolerance (DESIGN.md §8): the scheduler supervises its pool. A worker
// whose stage throws is marked dead (its thread exits, like a crashed worker
// process); a worker silent past worker_timeout_ms is abandoned. In both
// cases the in-flight task is re-queued to a healthy worker with bounded
// retries and exponential backoff + jitter, and — for crashes — the pool can
// respawn a replacement on the idle replica. A task whose retry budget runs
// out completes *degraded*: it answers with its best in-deadline result
// rather than failing.
//
// Overload control (DESIGN.md §11): every replica carries a CircuitBreaker
// scoring its error-rate and stage-latency EWMAs. Dispatch routes around
// open breakers (a sick replica stops eating retry budget) and prefers the
// healthiest free replica. With hedging enabled, a dispatch that outlives
// the observed stage-latency quantile gets a backup dispatch of the same
// stage on a second healthy replica; the first result wins (seq-stamped, so
// there is no result race) and the loser is cancelled cooperatively through
// the CancellationToken every dispatch carries — which also propagates the
// task's absolute deadline to the worker, so a worker never starts a stage
// whose result could not arrive in time.
//
// Chaos seams: `live.worker.crash` / `live.worker.slow` fire inside every
// worker loop; `live.worker.sick` fires only on replica 0 (the designated
// sick replica: arm kind=error for recoverable stage failures, kind=delay
// for a straggler); `hedge.lose.race` forces the primary dispatch to lose a
// hedge race; `health.breaker.trip` force-trips a breaker from record().
#pragma once

#include <functional>
#include <limits>
#include <memory>

#include "common/health.hpp"
#include "common/lifecycle.hpp"
#include "common/metrics.hpp"
#include "common/retry.hpp"
#include "common/trace.hpp"
#include "gp/confidence_curve.hpp"
#include "nn/staged_model.hpp"
#include "sched/policy.hpp"

namespace eugene::sched {

/// Live-mode knobs.
struct LiveConfig {
  double deadline_ms = std::numeric_limits<double>::infinity();  ///< per task
  double early_exit_confidence = 2.0;  ///< >1 disables early exit
  std::size_t lookahead = 1;           ///< RTDeepIoT k

  /// Grouped dispatch (DESIGN.md §14): one worker dispatch may carry up to
  /// stage_batch same-stage, same-shape tasks, and the worker runs them as
  /// one arena-backed batched stage (one wide GEMM per layer, bitwise
  /// identical per-task results). 1 = per-task dispatch, the exact legacy
  /// behavior. Grouped dispatches never hedge: a hedge would duplicate the
  /// whole group's work to chase one straggler. The group fails, retries,
  /// and cancels as a unit (it is one dispatch), but every member keeps its
  /// own retry budget, deadline, and span.
  std::size_t stage_batch = 1;

  // Worker supervision (DESIGN.md §8 "Failure model").
  std::size_t max_retries = 2;   ///< per-task re-dispatches after worker failure
  double worker_timeout_ms =
      std::numeric_limits<double>::infinity();  ///< silence → worker is dead
  std::size_t max_respawns = 0;  ///< replacement workers spawned after crashes
  RetryPolicy retry;             ///< backoff shape between re-dispatches

  // Health-scored routing (DESIGN.md §11): per-replica circuit breakers.
  // health.enabled=false falls back to PR2's route-anywhere behavior.
  HealthConfig health;

  // Hedged dispatch: when a dispatch has been out longer than the
  // hedge_quantile of recent dispatch latencies (never less than
  // hedge_min_ms), issue one backup dispatch of the same stage to a second
  // healthy replica. Needs hedge_min_samples observations before any hedge.
  bool hedging = false;
  double hedge_quantile = 0.95;
  double hedge_min_ms = 1.0;
  std::size_t hedge_min_samples = 8;

  // Observability (DESIGN.md §12). `trace` records one span per task
  // (admission → dispatch/hedge/cancel/result → exit); null disables tracing
  // at the cost of one branch per event site. `metrics` receives the
  // LiveStats counters and per-stage latency histograms
  // (sched.stage_latency_ms.stage<N>); null disables, the default is the
  // process-wide registry behind EugeneService::metrics_text().
  telemetry::TraceRecorder* trace = nullptr;
  telemetry::MetricsRegistry* metrics = &telemetry::MetricsRegistry::global();

  // Lifecycle gate (DESIGN.md §13). When set, the batch is admitted through
  // ServerLifecycle::try_admit before any worker starts: a draining server
  // answers every task with drained=true (typed rejection, zero stages run)
  // and the in-flight count covers the whole run_live call, so
  // begin_drain() waits for in-flight batches to finish. Null = always
  // admit.
  eugene::ServerLifecycle* lifecycle = nullptr;
};

/// Final outcome of one live task.
struct LiveTaskResult {
  std::size_t task_id = 0;
  std::size_t label = 0;          ///< last emitted prediction
  double confidence = 0.0;
  std::size_t stages_run = 0;
  bool expired = false;           ///< deadline reached before all stages
  bool degraded = false;          ///< retry budget exhausted; best-effort answer
  bool drained = false;           ///< rejected: server draining/stopped; no
                                  ///< stage ran, resubmit elsewhere
  std::size_t retries = 0;        ///< re-dispatches this task consumed
  double latency_ms = 0.0;        ///< submission to final result
  std::uint64_t span_id = 0;      ///< trace span (0 when the run was untraced)
};

/// Fault-handling counters for one run_live call. Chaos tests reconcile
/// these against the failpoint fire counts.
struct LiveStats {
  std::size_t worker_crashes = 0;   ///< stages that threw inside a worker
  std::size_t worker_timeouts = 0;  ///< workers abandoned for silence
  std::size_t respawns = 0;         ///< replacement workers started
  std::size_t retries = 0;          ///< task re-dispatches
  std::size_t degraded = 0;         ///< tasks finished on an exhausted budget
  std::size_t expired = 0;          ///< tasks finished by the latency daemon

  // Overload-control counters (DESIGN.md §11).
  std::size_t worker_errors = 0;    ///< recoverable stage errors (sick replica)
  std::size_t breaker_trips = 0;    ///< breaker transitions to open
  std::size_t breaker_skips = 0;    ///< dispatch scans routed around an open breaker
  std::size_t hedges_issued = 0;    ///< backup dispatches sent
  std::size_t hedges_won = 0;       ///< races the backup dispatch won
  std::size_t cancelled = 0;        ///< dispatches cancelled cooperatively
                                    ///< (hedge losers + deadline skips)
};

/// Runs a batch of inputs through per-worker replicas of a staged model,
/// scheduling stage executions with RTDeepIoT's greedy utility policy.
///
/// `worker_models` — one replica per worker, identical weights (use
/// replicate_staged_model). `curves` drives the utility estimates. Fills
/// `*stats` with supervision counters when non-null.
///
/// Robustness contract: every input receives a well-formed LiveTaskResult
/// (complete, expired, or degraded) and no worker exception escapes, for any
/// combination of worker crashes, stalls, and deadlines.
std::vector<LiveTaskResult> run_live(
    std::vector<std::unique_ptr<nn::StagedModel>>& worker_models,
    const gp::ConfidenceCurveModel& curves,
    const std::vector<tensor::Tensor>& inputs, const LiveConfig& config,
    LiveStats* stats = nullptr);

/// Builds `count` identical replicas of `source` via StagedModel::clone —
/// persistent state only, so replicating a model that is concurrently
/// serving (e.g. a published registry entry) is race-free.
std::vector<std::unique_ptr<nn::StagedModel>> replicate_staged_model(
    const nn::StagedModel& source, std::size_t count);

}  // namespace eugene::sched
