// Live scheduling mode: real staged-model inference on a worker pool, with
// end-of-stage confidence reports flowing to the user-space scheduler over a
// channel — the in-process mirror of the paper's process pool + Linux named
// pipes + latency daemon (Section III).
//
// Differences from the paper's deployment, by design (DESIGN.md §2):
//   * workers are threads with per-worker model replicas, not processes;
//   * a running stage cannot be interrupted mid-kernel, so the latency
//     daemon expires tasks at stage granularity: late results are discarded
//     and the task emits the last in-deadline result.
//
// Fault tolerance (DESIGN.md §8): the scheduler supervises its pool. A worker
// whose stage throws is marked dead (its thread exits, like a crashed worker
// process); a worker silent past worker_timeout_ms is abandoned. In both
// cases the in-flight task is re-queued to a healthy worker with bounded
// retries and exponential backoff + jitter, and — for crashes — the pool can
// respawn a replacement on the idle replica. A task whose retry budget runs
// out completes *degraded*: it answers with its best in-deadline result
// rather than failing. Chaos seams: failpoints `live.worker.crash` and
// `live.worker.slow` fire inside the worker loop.
#pragma once

#include <functional>
#include <limits>
#include <memory>

#include "common/retry.hpp"
#include "gp/confidence_curve.hpp"
#include "nn/staged_model.hpp"
#include "sched/policy.hpp"

namespace eugene::sched {

/// Live-mode knobs.
struct LiveConfig {
  double deadline_ms = std::numeric_limits<double>::infinity();  ///< per task
  double early_exit_confidence = 2.0;  ///< >1 disables early exit
  std::size_t lookahead = 1;           ///< RTDeepIoT k

  // Worker supervision (DESIGN.md §8 "Failure model").
  std::size_t max_retries = 2;   ///< per-task re-dispatches after worker failure
  double worker_timeout_ms =
      std::numeric_limits<double>::infinity();  ///< silence → worker is dead
  std::size_t max_respawns = 0;  ///< replacement workers spawned after crashes
  RetryPolicy retry;             ///< backoff shape between re-dispatches
};

/// Final outcome of one live task.
struct LiveTaskResult {
  std::size_t task_id = 0;
  std::size_t label = 0;          ///< last emitted prediction
  double confidence = 0.0;
  std::size_t stages_run = 0;
  bool expired = false;           ///< deadline reached before all stages
  bool degraded = false;          ///< retry budget exhausted; best-effort answer
  std::size_t retries = 0;        ///< re-dispatches this task consumed
  double latency_ms = 0.0;        ///< submission to final result
};

/// Fault-handling counters for one run_live call. Chaos tests reconcile
/// these against the failpoint fire counts.
struct LiveStats {
  std::size_t worker_crashes = 0;   ///< stages that threw inside a worker
  std::size_t worker_timeouts = 0;  ///< workers abandoned for silence
  std::size_t respawns = 0;         ///< replacement workers started
  std::size_t retries = 0;          ///< task re-dispatches
  std::size_t degraded = 0;         ///< tasks finished on an exhausted budget
  std::size_t expired = 0;          ///< tasks finished by the latency daemon
};

/// Runs a batch of inputs through per-worker replicas of a staged model,
/// scheduling stage executions with RTDeepIoT's greedy utility policy.
///
/// `worker_models` — one replica per worker, identical weights (use
/// replicate_staged_model). `curves` drives the utility estimates. Fills
/// `*stats` with supervision counters when non-null.
///
/// Robustness contract: every input receives a well-formed LiveTaskResult
/// (complete, expired, or degraded) and no worker exception escapes, for any
/// combination of worker crashes, stalls, and deadlines.
std::vector<LiveTaskResult> run_live(
    std::vector<std::unique_ptr<nn::StagedModel>>& worker_models,
    const gp::ConfidenceCurveModel& curves,
    const std::vector<tensor::Tensor>& inputs, const LiveConfig& config,
    LiveStats* stats = nullptr);

/// Builds `count` architecture-identical replicas of `source` (constructed
/// via `build` and weight-copied through serialization).
std::vector<std::unique_ptr<nn::StagedModel>> replicate_staged_model(
    nn::StagedModel& source, const std::function<nn::StagedModel()>& build,
    std::size_t count);

}  // namespace eugene::sched
