#include "sched/live.hpp"

#include <sstream>
#include <thread>

#include "common/channel.hpp"
#include "common/check.hpp"
#include "common/clock.hpp"
#include "common/fifo_channel.hpp"
#include "common/logging.hpp"
#include "nn/serialize.hpp"

namespace eugene::sched {

using tensor::Tensor;

std::vector<std::unique_ptr<nn::StagedModel>> replicate_staged_model(
    nn::StagedModel& source, const std::function<nn::StagedModel()>& build,
    std::size_t count) {
  EUGENE_REQUIRE(count > 0, "replicate_staged_model: count must be positive");
  std::stringstream weights;
  nn::save_params(source.params(), weights);
  std::vector<std::unique_ptr<nn::StagedModel>> replicas;
  replicas.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto model = std::make_unique<nn::StagedModel>(build());
    weights.clear();
    weights.seekg(0);
    nn::load_params(model->params(), weights);
    replicas.push_back(std::move(model));
  }
  return replicas;
}

namespace {

/// Scheduler → worker: run stage `stage` of task `task_id` on `features`.
struct Job {
  std::size_t task_id = 0;
  std::size_t stage = 0;
  Tensor features;  ///< previous stage output (or the raw input for stage 0)
};

/// Worker → scheduler: the paper's end-of-stage report, plus the features
/// the next stage needs (kept in-process; only the StageReport crosses the
/// paper's named pipe).
struct WorkerResult {
  std::size_t worker = 0;
  StageReport report;
  Tensor features;
};

struct LiveTaskState {
  Tensor features;
  std::vector<double> observed_confidence;
  std::size_t stages_done = 0;
  std::size_t last_label = 0;
  bool running = false;
  bool done = false;
  bool expired = false;
  double submit_ms = 0.0;
  double finish_ms = 0.0;
};

}  // namespace

std::vector<LiveTaskResult> run_live(
    std::vector<std::unique_ptr<nn::StagedModel>>& worker_models,
    const gp::ConfidenceCurveModel& curves, const std::vector<Tensor>& inputs,
    const LiveConfig& config) {
  EUGENE_REQUIRE(!worker_models.empty(), "run_live: need at least one worker model");
  EUGENE_REQUIRE(!inputs.empty(), "run_live: empty input batch");
  const std::size_t num_workers = worker_models.size();
  const std::size_t num_stages = worker_models.front()->num_stages();

  GpUtilityEstimator estimator(curves);
  GreedyUtilityPolicy policy(estimator, config.lookahead);

  std::vector<Channel<Job>> job_channels(num_workers);
  Channel<WorkerResult> results;

  // Worker threads: block on their job channel, run one stage on their own
  // replica, report (task, stage, label, confidence) back.
  std::vector<std::thread> workers;
  workers.reserve(num_workers);
  for (std::size_t w = 0; w < num_workers; ++w) {
    workers.emplace_back([&, w] {
      nn::StagedModel& model = *worker_models[w];
      while (auto job = job_channels[w].receive()) {
        nn::StageOutput out = model.run_stage(job->stage, job->features);
        WorkerResult res;
        res.worker = w;
        res.report.task_id = static_cast<std::uint32_t>(job->task_id);
        res.report.stage = static_cast<std::uint32_t>(job->stage);
        res.report.predicted_label = static_cast<std::uint32_t>(out.predicted_label);
        res.report.confidence = out.confidence;
        res.features = std::move(out.features);
        results.send(std::move(res));
      }
    });
  }

  WallClock clock;
  std::vector<LiveTaskState> tasks(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    tasks[i].features = inputs[i];
    tasks[i].submit_ms = clock.now_ms();
  }

  std::vector<bool> worker_busy(num_workers, false);
  std::size_t unfinished = inputs.size();

  auto expire_if_due = [&](std::size_t i) {
    LiveTaskState& t = tasks[i];
    if (t.done || t.running) return;
    if (clock.now_ms() - t.submit_ms >= config.deadline_ms) {
      // Latency daemon: the task leaves the system with its current result.
      t.done = true;
      t.expired = true;
      t.finish_ms = clock.now_ms();
      --unfinished;
    }
  };

  auto dispatch = [&]() {
    for (std::size_t w = 0; w < num_workers; ++w) {
      if (worker_busy[w]) continue;
      std::vector<TaskView> runnable;
      for (std::size_t i = 0; i < tasks.size(); ++i) {
        expire_if_due(i);
        const LiveTaskState& t = tasks[i];
        if (t.done || t.running || t.stages_done >= num_stages) continue;
        TaskView v;
        v.task_id = i;
        v.service = 0;
        v.stages_done = t.stages_done;
        v.total_stages = num_stages;
        v.arrival_ms = t.submit_ms;
        v.deadline_ms = t.submit_ms + config.deadline_ms;
        v.observed_confidence = t.observed_confidence;
        runnable.push_back(v);
      }
      if (runnable.empty()) return;
      const auto choice = policy.pick(runnable, clock.now_ms());
      if (!choice.has_value()) return;
      LiveTaskState& t = tasks[*choice];
      t.running = true;
      Job job;
      job.task_id = *choice;
      job.stage = t.stages_done;
      job.features = t.features;
      worker_busy[w] = true;
      job_channels[w].send(std::move(job));
    }
  };

  dispatch();
  while (unfinished > 0) {
    // If everything left is waiting on deadlines rather than workers, poll.
    bool any_running = false;
    for (const auto& t : tasks) any_running |= t.running;
    if (!any_running) {
      for (std::size_t i = 0; i < tasks.size(); ++i) expire_if_due(i);
      dispatch();
      bool still_none = true;
      for (const auto& t : tasks) still_none &= !t.running;
      if (still_none && unfinished > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
    }
    if (unfinished == 0) break;

    auto res = results.receive();
    EUGENE_CHECK(res.has_value()) << "live scheduler: result channel closed early";
    // The report crosses a (possibly named-pipe) channel boundary: validate it
    // before indexing scheduler state with it.
    EUGENE_CHECK_LT(res->worker, num_workers) << "stage report from unknown worker";
    EUGENE_CHECK_LT(res->report.task_id, tasks.size())
        << "stage report for unknown task";
    worker_busy[res->worker] = false;
    LiveTaskState& t = tasks[res->report.task_id];
    EUGENE_CHECK(t.running) << "stage report for task " << res->report.task_id
                            << " which has no stage in flight";
    EUGENE_CHECK_EQ(res->report.stage, t.stages_done)
        << "out-of-order stage report for task " << res->report.task_id;
    t.running = false;
    const double now = clock.now_ms();
    const bool late = now - t.submit_ms >= config.deadline_ms;
    if (!t.done) {
      if (!late) {
        // In-deadline result: accept it.
        ++t.stages_done;
        t.observed_confidence.push_back(res->report.confidence);
        t.last_label = res->report.predicted_label;
        t.features = std::move(res->features);
        policy.on_stage_complete(res->report.task_id, res->report.stage,
                                 res->report.confidence);
        if (t.stages_done == num_stages ||
            res->report.confidence >= config.early_exit_confidence) {
          t.done = true;
          t.finish_ms = now;
          --unfinished;
        }
      } else {
        // The daemon's stage-granularity kill: discard the late result.
        t.done = true;
        t.expired = true;
        t.finish_ms = now;
        --unfinished;
      }
    }
    dispatch();
  }

  for (auto& ch : job_channels) ch.close();
  for (auto& th : workers) th.join();
  results.close();

  std::vector<LiveTaskResult> out(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    out[i].task_id = i;
    out[i].label = tasks[i].last_label;
    out[i].confidence = tasks[i].observed_confidence.empty()
                            ? 0.0
                            : tasks[i].observed_confidence.back();
    out[i].stages_run = tasks[i].stages_done;
    out[i].expired = tasks[i].expired;
    out[i].latency_ms = tasks[i].finish_ms - tasks[i].submit_ms;
  }
  return out;
}

}  // namespace eugene::sched
