#include "sched/live.hpp"

#include <cmath>
#include <sstream>
#include <thread>

#include "common/channel.hpp"
#include "common/check.hpp"
#include "common/clock.hpp"
#include "common/failpoint.hpp"
#include "common/fifo_channel.hpp"
#include "common/logging.hpp"
#include "nn/serialize.hpp"

namespace eugene::sched {

using tensor::Tensor;

std::vector<std::unique_ptr<nn::StagedModel>> replicate_staged_model(
    nn::StagedModel& source, const std::function<nn::StagedModel()>& build,
    std::size_t count) {
  EUGENE_REQUIRE(count > 0, "replicate_staged_model: count must be positive");
  std::stringstream weights;
  nn::save_params(source.params(), weights);
  std::vector<std::unique_ptr<nn::StagedModel>> replicas;
  replicas.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto model = std::make_unique<nn::StagedModel>(build());
    weights.clear();
    weights.seekg(0);
    nn::load_params(model->params(), weights);
    replicas.push_back(std::move(model));
  }
  return replicas;
}

namespace {

/// Scheduler → worker: run stage `stage` of task `task_id` on `features`.
struct Job {
  std::size_t task_id = 0;
  std::size_t stage = 0;
  std::uint64_t seq = 0;  ///< dispatch sequence; stale results are discarded
  Tensor features;  ///< previous stage output (or the raw input for stage 0)
};

/// Worker → scheduler: the paper's end-of-stage report, plus the features
/// the next stage needs (kept in-process; only the StageReport crosses the
/// paper's named pipe). ok=false is a crash report: the stage threw and the
/// worker thread is exiting, like a worker process dying.
struct WorkerResult {
  std::size_t worker = 0;
  std::uint64_t seq = 0;
  bool ok = true;
  std::string error;  ///< what() of the crash, when !ok
  StageReport report;
  Tensor features;
};

struct LiveTaskState {
  Tensor features;
  std::vector<double> observed_confidence;
  std::size_t stages_done = 0;
  std::size_t last_label = 0;
  std::size_t retries = 0;
  double eligible_ms = 0.0;  ///< backoff gate: no dispatch before this time
  bool running = false;
  bool done = false;
  bool expired = false;
  bool degraded = false;
  double submit_ms = 0.0;
  double finish_ms = 0.0;
};

/// Scheduler-side view of one worker. `seq` identifies the in-flight
/// dispatch so a report from an abandoned worker is recognizably stale.
struct WorkerSlot {
  bool busy = false;
  bool dead = false;
  std::uint64_t seq = 0;
  std::size_t task = 0;
  double dispatched_ms = 0.0;
};

}  // namespace

std::vector<LiveTaskResult> run_live(
    std::vector<std::unique_ptr<nn::StagedModel>>& worker_models,
    const gp::ConfidenceCurveModel& curves, const std::vector<Tensor>& inputs,
    const LiveConfig& config, LiveStats* stats) {
  // Validate everything a caller can get wrong *before* any thread starts,
  // so bad input surfaces as InvalidArgument here rather than an
  // InternalError deep inside a worker.
  EUGENE_REQUIRE(!worker_models.empty(), "run_live: need at least one worker model");
  EUGENE_REQUIRE(!inputs.empty(), "run_live: empty input batch");
  for (const auto& m : worker_models)
    EUGENE_REQUIRE(m != nullptr, "run_live: null worker model replica");
  const std::size_t num_workers = worker_models.size();
  const std::size_t num_stages = worker_models.front()->num_stages();
  EUGENE_REQUIRE(num_stages > 0, "run_live: model has no stages");
  for (const auto& m : worker_models)
    EUGENE_REQUIRE(m->num_stages() == num_stages,
                   "run_live: worker replicas disagree on stage count");
  for (const Tensor& input : inputs) {
    EUGENE_REQUIRE(input.numel() > 0, "run_live: empty input tensor in batch");
    EUGENE_REQUIRE(input.same_shape(inputs.front()),
                   "run_live: mismatched input shapes within batch");
  }
  EUGENE_REQUIRE(config.lookahead >= 1, "run_live: lookahead must be >= 1");
  EUGENE_REQUIRE(config.deadline_ms > 0.0, "run_live: deadline must be positive");

  GpUtilityEstimator estimator(curves);
  GreedyUtilityPolicy policy(estimator, config.lookahead);

  std::vector<Channel<Job>> job_channels(num_workers);
  Channel<WorkerResult> results;

  // Worker body: block on the job channel, run one stage on this worker's
  // replica, report (task, stage, label, confidence) back. A throwing stage
  // — real bug or armed failpoint — becomes a crash report and thread exit,
  // mirroring a worker process dying; the supervisor handles the rest.
  auto worker_main = [&](std::size_t w) {
    nn::StagedModel& model = *worker_models[w];
    while (auto job = job_channels[w].receive()) {
      WorkerResult res;
      res.worker = w;
      res.seq = job->seq;
      try {
        EUGENE_FAILPOINT("live.worker.slow");
        EUGENE_FAILPOINT("live.worker.crash");
        nn::StageOutput out = model.run_stage(job->stage, job->features);
        res.report.task_id = static_cast<std::uint32_t>(job->task_id);
        res.report.stage = static_cast<std::uint32_t>(job->stage);
        res.report.predicted_label = static_cast<std::uint32_t>(out.predicted_label);
        res.report.confidence = out.confidence;
        res.features = std::move(out.features);
      } catch (const std::exception& e) {
        res.ok = false;
        res.error = e.what();
      }
      const bool crashed = !res.ok;
      results.send(std::move(res));
      if (crashed) return;  // the "process" is gone; supervisor may respawn
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(num_workers);
  for (std::size_t w = 0; w < num_workers; ++w) workers.emplace_back(worker_main, w);

  WallClock clock;
  Rng backoff_rng(0xbacc0ff);
  LiveStats local_stats;
  std::vector<LiveTaskState> tasks(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    tasks[i].features = inputs[i];
    tasks[i].submit_ms = clock.now_ms();
  }

  std::vector<WorkerSlot> slots(num_workers);
  std::size_t respawns_left = config.max_respawns;
  std::size_t unfinished = inputs.size();

  auto expire_if_due = [&](std::size_t i) {
    LiveTaskState& t = tasks[i];
    if (t.done || t.running) return;
    if (clock.now_ms() - t.submit_ms >= config.deadline_ms) {
      // Latency daemon: the task leaves the system with its current result.
      t.done = true;
      t.expired = true;
      t.finish_ms = clock.now_ms();
      ++local_stats.expired;
      --unfinished;
    }
  };

  // The in-flight task of worker `w` lost its stage execution (crash or
  // silence). Re-queue it after a jittered backoff while the retry budget
  // lasts; past the budget it completes degraded with its best result so
  // far. Marks the worker dead either way.
  auto fail_inflight = [&](std::size_t w) {
    WorkerSlot& slot = slots[w];
    slot.dead = true;
    if (!slot.busy) return;
    slot.busy = false;
    LiveTaskState& t = tasks[slot.task];
    if (t.done) return;
    t.running = false;
    const double now = clock.now_ms();
    if (now - t.submit_ms >= config.deadline_ms) {
      t.done = true;
      t.expired = true;
      t.finish_ms = now;
      ++local_stats.expired;
      --unfinished;
    } else if (t.retries < config.max_retries) {
      ++t.retries;
      ++local_stats.retries;
      t.eligible_ms = now + backoff_delay_ms(config.retry, t.retries, backoff_rng);
    } else {
      t.done = true;
      t.degraded = true;
      t.finish_ms = now;
      ++local_stats.degraded;
      --unfinished;
    }
  };

  // Replaces a *crashed* worker with a fresh thread on the same (now idle)
  // replica. Workers abandoned for silence are never respawned: their thread
  // may still be touching the replica.
  auto maybe_respawn = [&](std::size_t w) {
    if (respawns_left == 0) return;
    --respawns_left;
    ++local_stats.respawns;
    slots[w] = WorkerSlot{};
    workers.emplace_back(worker_main, w);
  };

  std::uint64_t next_seq = 1;
  auto dispatch = [&]() {
    for (std::size_t w = 0; w < num_workers; ++w) {
      if (slots[w].busy || slots[w].dead) continue;
      const double now = clock.now_ms();
      std::vector<TaskView> runnable;
      for (std::size_t i = 0; i < tasks.size(); ++i) {
        expire_if_due(i);
        const LiveTaskState& t = tasks[i];
        if (t.done || t.running || t.stages_done >= num_stages) continue;
        if (now < t.eligible_ms) continue;  // still backing off
        TaskView v;
        v.task_id = i;
        v.service = 0;
        v.stages_done = t.stages_done;
        v.total_stages = num_stages;
        v.arrival_ms = t.submit_ms;
        v.deadline_ms = t.submit_ms + config.deadline_ms;
        v.observed_confidence = t.observed_confidence;
        runnable.push_back(v);
      }
      if (runnable.empty()) return;
      const auto choice = policy.pick(runnable, now);
      if (!choice.has_value()) return;
      LiveTaskState& t = tasks[*choice];
      t.running = true;
      Job job;
      job.task_id = *choice;
      job.stage = t.stages_done;
      job.seq = next_seq++;
      job.features = t.features;
      WorkerSlot& slot = slots[w];
      slot.busy = true;
      slot.seq = job.seq;
      slot.task = *choice;
      slot.dispatched_ms = now;
      job_channels[w].send(std::move(job));
    }
  };

  dispatch();
  while (unfinished > 0) {
    for (std::size_t i = 0; i < tasks.size(); ++i) expire_if_due(i);
    if (unfinished == 0) break;

    // Heartbeat supervision: a busy worker silent past the timeout is
    // abandoned — its task is re-queued and any later report from it is
    // stale (sequence mismatch) and dropped.
    if (std::isfinite(config.worker_timeout_ms)) {
      const double now = clock.now_ms();
      for (std::size_t w = 0; w < num_workers; ++w) {
        if (slots[w].busy && !slots[w].dead &&
            now - slots[w].dispatched_ms >= config.worker_timeout_ms) {
          ++local_stats.worker_timeouts;
          EUGENE_LOG(Warn) << "live: worker " << w << " silent for "
                           << (now - slots[w].dispatched_ms)
                           << " ms; abandoning it and re-queueing task "
                           << slots[w].task;
          fail_inflight(w);
        }
      }
    }

    // Degrade-never-fail: with every worker dead, remaining tasks answer
    // with what they have instead of waiting forever.
    bool any_alive = false;
    for (const WorkerSlot& s : slots) any_alive |= !s.dead;
    if (!any_alive) {
      const double now = clock.now_ms();
      for (LiveTaskState& t : tasks) {
        if (t.done) continue;
        t.done = true;
        t.degraded = true;
        t.finish_ms = now;
        ++local_stats.degraded;
        --unfinished;
      }
      break;
    }

    dispatch();

    bool any_running = false;
    for (const auto& t : tasks) any_running |= t.running;
    if (!any_running) {
      if (unfinished > 0) {
        // Everything left waits on a deadline or a backoff window: poll.
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      break;
    }

    // Bounded wait so deadline expiry and heartbeat sweeps run even when
    // every worker has gone silent.
    auto res = results.receive_for(5.0);
    if (!res.has_value()) continue;
    EUGENE_CHECK_LT(res->worker, num_workers) << "stage report from unknown worker";
    WorkerSlot& slot = slots[res->worker];
    const bool current = slot.busy && !slot.dead && res->seq == slot.seq;
    if (!current) continue;  // stale report from an abandoned worker

    if (!res->ok) {
      ++local_stats.worker_crashes;
      EUGENE_LOG(Warn) << "live: worker " << res->worker
                       << " crashed running task " << slot.task << ": "
                       << res->error;
      fail_inflight(res->worker);
      maybe_respawn(res->worker);
      dispatch();
      continue;
    }

    // The report crosses a (possibly named-pipe) channel boundary: validate
    // it before indexing scheduler state with it.
    EUGENE_CHECK_LT(res->report.task_id, tasks.size())
        << "stage report for unknown task";
    slot.busy = false;
    LiveTaskState& t = tasks[res->report.task_id];
    EUGENE_CHECK(t.running) << "stage report for task " << res->report.task_id
                            << " which has no stage in flight";
    EUGENE_CHECK_EQ(res->report.stage, t.stages_done)
        << "out-of-order stage report for task " << res->report.task_id;
    t.running = false;
    const double now = clock.now_ms();
    const bool late = now - t.submit_ms >= config.deadline_ms;
    if (!t.done) {
      if (!late) {
        // In-deadline result: accept it.
        ++t.stages_done;
        t.observed_confidence.push_back(res->report.confidence);
        t.last_label = res->report.predicted_label;
        t.features = std::move(res->features);
        policy.on_stage_complete(res->report.task_id, res->report.stage,
                                 res->report.confidence);
        if (t.stages_done == num_stages ||
            res->report.confidence >= config.early_exit_confidence) {
          t.done = true;
          t.finish_ms = now;
          --unfinished;
        }
      } else {
        // The daemon's stage-granularity kill: discard the late result.
        t.done = true;
        t.expired = true;
        t.finish_ms = now;
        ++local_stats.expired;
        --unfinished;
      }
    }
    dispatch();
  }

  for (auto& ch : job_channels) ch.close();
  for (auto& th : workers) th.join();
  results.close();

  if (stats != nullptr) *stats = local_stats;

  std::vector<LiveTaskResult> out(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    out[i].task_id = i;
    out[i].label = tasks[i].last_label;
    out[i].confidence = tasks[i].observed_confidence.empty()
                            ? 0.0
                            : tasks[i].observed_confidence.back();
    out[i].stages_run = tasks[i].stages_done;
    out[i].expired = tasks[i].expired;
    out[i].degraded = tasks[i].degraded;
    out[i].retries = tasks[i].retries;
    out[i].latency_ms = tasks[i].finish_ms - tasks[i].submit_ms;
  }
  return out;
}

}  // namespace eugene::sched
