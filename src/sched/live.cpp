#include "sched/live.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <optional>
#include <thread>

#include "common/cancellation.hpp"
#include "common/channel.hpp"
#include "common/check.hpp"
#include "common/clock.hpp"
#include "common/failpoint.hpp"
#include "common/fifo_channel.hpp"
#include "common/histogram.hpp"
#include "common/logging.hpp"

namespace eugene::sched {

using tensor::Tensor;

std::vector<std::unique_ptr<nn::StagedModel>> replicate_staged_model(
    const nn::StagedModel& source, std::size_t count) {
  EUGENE_REQUIRE(count > 0, "replicate_staged_model: count must be positive");
  std::vector<std::unique_ptr<nn::StagedModel>> replicas;
  replicas.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    replicas.push_back(std::make_unique<nn::StagedModel>(source.clone()));
  return replicas;
}

namespace {

/// Scheduler → worker: run stage `stage` of task group `task_ids` on
/// `features` (one tensor per member; a singleton group is the classic
/// per-task dispatch). The token carries the group's tightest absolute
/// deadline and the scheduler's cancel handle; the worker checks it before
/// starting the stage.
struct Job {
  std::vector<std::size_t> task_ids;
  std::size_t stage = 0;
  std::uint64_t seq = 0;  ///< dispatch sequence; stale results are discarded
  std::vector<Tensor> features;  ///< previous stage outputs, one per member
  CancellationToken token;
};

/// Worker → scheduler: the paper's end-of-stage reports (one per group
/// member), plus the features the next stage needs (kept in-process; only
/// the StageReports cross the paper's named pipe). ok=false with
/// recoverable=false is a crash report: the stage threw and the worker
/// thread is exiting, like a worker process dying. recoverable=true is a
/// sick-replica stage error: the worker lives. cancelled=true means the
/// worker skipped the stage cooperatively (token cancelled, or the
/// propagated deadline had already passed). Failure reports apply to the
/// whole group — it is one dispatch.
struct WorkerResult {
  std::size_t worker = 0;
  std::uint64_t seq = 0;
  bool ok = true;
  bool recoverable = false;
  bool cancelled = false;
  std::string error;   ///< what() of the failure, when !ok
  double stage_ms = 0.0;  ///< worker-measured stage execution time
  std::vector<StageReport> reports;  ///< one per member, on success
  std::vector<Tensor> features;      ///< one per member, on success
};

/// One outstanding dispatch of a task's current stage. A task has one entry
/// normally, two while a hedge race is in flight.
struct InFlightDispatch {
  std::size_t worker = 0;
  std::uint64_t seq = 0;
  bool hedge = false;  ///< this is the backup dispatch of a hedge pair
  CancellationToken token;
};

struct LiveTaskState {
  Tensor features;
  std::vector<double> observed_confidence;
  std::vector<InFlightDispatch> inflight;  ///< current-stage dispatches (≤ 2)
  std::size_t stages_done = 0;
  std::size_t last_label = 0;
  std::size_t retries = 0;
  double eligible_ms = 0.0;  ///< backoff gate: no dispatch before this time
  bool hedged_this_stage = false;
  bool done = false;
  bool expired = false;
  bool degraded = false;
  double submit_ms = 0.0;
  double finish_ms = 0.0;
  telemetry::SpanHandle span;  ///< per-request timeline (null when untraced)
};

/// Scheduler-side view of one worker. `seq` identifies the in-flight
/// dispatch so a report from an abandoned worker is recognizably stale.
/// `tasks` is the dispatched group (singleton outside grouped mode).
struct WorkerSlot {
  bool busy = false;
  bool dead = false;
  std::uint64_t seq = 0;
  std::vector<std::size_t> tasks;
  double dispatched_ms = 0.0;
};

}  // namespace

std::vector<LiveTaskResult> run_live(
    std::vector<std::unique_ptr<nn::StagedModel>>& worker_models,
    const gp::ConfidenceCurveModel& curves, const std::vector<Tensor>& inputs,
    const LiveConfig& config, LiveStats* stats) {
  // Validate everything a caller can get wrong *before* any thread starts,
  // so bad input surfaces as InvalidArgument here rather than an
  // InternalError deep inside a worker.
  EUGENE_REQUIRE(!worker_models.empty(), "run_live: need at least one worker model");
  EUGENE_REQUIRE(!inputs.empty(), "run_live: empty input batch");
  for (const auto& m : worker_models)
    EUGENE_REQUIRE(m != nullptr, "run_live: null worker model replica");
  const std::size_t num_workers = worker_models.size();
  const std::size_t num_stages = worker_models.front()->num_stages();
  EUGENE_REQUIRE(num_stages > 0, "run_live: model has no stages");
  for (const auto& m : worker_models)
    EUGENE_REQUIRE(m->num_stages() == num_stages,
                   "run_live: worker replicas disagree on stage count");
  for (const Tensor& input : inputs) {
    EUGENE_REQUIRE(input.numel() > 0, "run_live: empty input tensor in batch");
    EUGENE_REQUIRE(input.same_shape(inputs.front()),
                   "run_live: mismatched input shapes within batch");
  }
  EUGENE_REQUIRE(config.lookahead >= 1, "run_live: lookahead must be >= 1");
  EUGENE_REQUIRE(config.stage_batch >= 1, "run_live: stage_batch must be >= 1");
  EUGENE_REQUIRE(config.deadline_ms > 0.0, "run_live: deadline must be positive");
  EUGENE_REQUIRE(config.hedge_quantile > 0.0 && config.hedge_quantile <= 1.0,
                 "run_live: hedge_quantile outside (0, 1]");
  EUGENE_REQUIRE(config.hedge_min_samples >= 1,
                 "run_live: hedge_min_samples must be >= 1");

  // Lifecycle gate (DESIGN.md §13): checked before any worker thread starts.
  // A draining server answers the whole batch with typed drained=true
  // results; an admitted batch holds `inputs.size()` in-flight units for the
  // duration of this call, so begin_drain() waits for it.
  if (config.lifecycle != nullptr && !config.lifecycle->try_admit(inputs.size())) {
    WallClock reject_clock;
    const double now = reject_clock.now_ms();
    std::vector<LiveTaskResult> rejected(inputs.size());
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      rejected[i].task_id = i;
      rejected[i].drained = true;
      if (config.trace != nullptr) {
        telemetry::SpanHandle span = config.trace->begin_span(now);
        span.event(telemetry::TraceEventKind::kDrain, now);
        rejected[i].span_id = span.id();
      }
    }
    if (config.metrics != nullptr)
      config.metrics->counter("sched.live.drain.rejections").inc(inputs.size());
    return rejected;
  }
  struct LifecycleFinisher {
    eugene::ServerLifecycle* lifecycle;
    std::size_t units;
    ~LifecycleFinisher() {
      if (lifecycle != nullptr) lifecycle->finish(units);
    }
  } lifecycle_finisher{config.lifecycle, inputs.size()};

  GpUtilityEstimator estimator(curves);
  GreedyUtilityPolicy policy(estimator, config.lookahead);

  std::vector<Channel<Job>> job_channels(num_workers);
  Channel<WorkerResult> results;
  WallClock clock;

  // Worker body: block on the job channel, run one stage on this worker's
  // replica, report (task, stage, label, confidence) back. A throwing stage
  // — real bug or armed failpoint — becomes a crash report and thread exit,
  // mirroring a worker process dying; the supervisor handles the rest.
  auto worker_main = [&](std::size_t w) {
    nn::StagedModel& model = *worker_models[w];
    // Grouped-dispatch scratch, owned by this worker thread: the arena and
    // item slots are reused across jobs, so a warmed worker runs batched
    // stages without heap allocations (DESIGN.md §14).
    nn::ScratchArena arena;
    std::vector<nn::StageBatchItem> items;
    std::vector<const Tensor*> ptrs;
    while (auto job = job_channels[w].receive()) {
      WorkerResult res;
      res.worker = w;
      res.seq = job->seq;
      // Designated-replica chaos seam: replica 0 is "the sick replica".
      // kind=error injects a *recoverable* stage failure (the worker
      // reports it and keeps serving, unlike a crash); kind=delay makes
      // this replica a straggler.
      if (w == 0) {
        bool sick = false;
        try {
          EUGENE_FAILPOINT("live.worker.sick");
        } catch (const FailpointError& e) {
          res.ok = false;
          res.recoverable = true;
          res.error = e.what();
          sick = true;
        }
        if (sick) {
          results.send(std::move(res));
          continue;  // sick, not dead: keep draining the job channel
        }
      }
      // Cooperative cancellation + propagated deadline: never start a stage
      // whose result is unwanted (hedge race already decided) or could not
      // arrive in time (deadline passed). Stages cannot be interrupted
      // mid-kernel, so this pre-stage check is the cancellation point.
      if (job->token.should_stop(clock.now_ms())) {
        res.cancelled = true;
        results.send(std::move(res));
        continue;
      }
      try {
        EUGENE_FAILPOINT("live.worker.slow");
        EUGENE_FAILPOINT("live.worker.crash");
        Stopwatch stage_watch;
        const std::size_t members = job->task_ids.size();
        res.reports.resize(members);
        res.features.resize(members);
        if (members == 1) {
          nn::StageOutput out = model.run_stage(job->stage, job->features.front());
          res.stage_ms = stage_watch.elapsed_ms();
          res.reports[0].predicted_label =
              static_cast<std::uint32_t>(out.predicted_label);
          res.reports[0].confidence = out.confidence;
          res.features[0] = std::move(out.features);
        } else {
          // Grouped dispatch: one arena-backed batched stage over the whole
          // group — bitwise identical per member to the per-task path.
          ptrs.clear();
          for (const Tensor& f : job->features) ptrs.push_back(&f);
          if (items.size() < members) items.resize(members);
          arena.reset();
          model.run_stage_batch(
              job->stage, std::span<const Tensor* const>(ptrs.data(), members),
              std::span<nn::StageBatchItem>(items.data(), members), arena);
          res.stage_ms = stage_watch.elapsed_ms();
          for (std::size_t b = 0; b < members; ++b) {
            res.reports[b].predicted_label =
                static_cast<std::uint32_t>(items[b].predicted_label);
            res.reports[b].confidence = items[b].confidence;
            res.features[b] = std::move(items[b].features);
          }
        }
        for (std::size_t b = 0; b < members; ++b) {
          res.reports[b].task_id = static_cast<std::uint32_t>(job->task_ids[b]);
          res.reports[b].stage = static_cast<std::uint32_t>(job->stage);
        }
      } catch (const std::exception& e) {
        res.ok = false;
        res.error = e.what();
        res.reports.clear();
        res.features.clear();
      }
      const bool crashed = !res.ok;
      results.send(std::move(res));
      if (crashed) return;  // the "process" is gone; supervisor may respawn
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(num_workers);
  for (std::size_t w = 0; w < num_workers; ++w) workers.emplace_back(worker_main, w);

  Rng backoff_rng(0xbacc0ff);
  LiveStats local_stats;
  std::vector<LiveTaskState> tasks(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    tasks[i].features = inputs[i];
    tasks[i].submit_ms = clock.now_ms();
    if (config.trace != nullptr)
      tasks[i].span = config.trace->begin_span(tasks[i].submit_ms);
  }

  using telemetry::TraceEventKind;
  // Per-stage latency histograms, resolved once — record() on them is
  // lock-free, so the hot result path never touches the registry mutex.
  std::vector<telemetry::LatencyHistogram*> stage_hists;
  if (config.metrics != nullptr) {
    stage_hists.reserve(num_stages);
    for (std::size_t s = 0; s < num_stages; ++s)
      stage_hists.push_back(&config.metrics->histogram(
          "sched.stage_latency_ms.stage" + std::to_string(s)));
  }

  // Closes a task's span: stage = stages completed, value = last confidence.
  auto end_span = [](LiveTaskState& t, double now) {
    t.span.event(TraceEventKind::kExit, now,
                 static_cast<std::uint32_t>(t.stages_done), 0,
                 t.observed_confidence.empty() ? 0.0
                                               : t.observed_confidence.back());
  };

  std::vector<WorkerSlot> slots(num_workers);
  // One breaker per replica, living as long as the pool: a respawned worker
  // inherits its replica's history, so a persistently sick replica stays
  // routed around even across respawns.
  std::deque<CircuitBreaker> breakers;
  for (std::size_t w = 0; w < num_workers; ++w) breakers.emplace_back(config.health);
  std::size_t respawns_left = config.max_respawns;
  std::size_t unfinished = inputs.size();

  auto expire_if_due = [&](std::size_t i) {
    LiveTaskState& t = tasks[i];
    if (t.done || !t.inflight.empty()) return;
    if (clock.now_ms() - t.submit_ms >= config.deadline_ms) {
      // Latency daemon: the task leaves the system with its current result.
      t.done = true;
      t.expired = true;
      t.finish_ms = clock.now_ms();
      ++local_stats.expired;
      --unfinished;
      t.span.event(TraceEventKind::kExpire, t.finish_ms);
      end_span(t, t.finish_ms);
    }
  };

  // Removes the (worker, seq) dispatch from the task's in-flight set;
  // returns it if it was still there (i.e. the race was not yet decided).
  auto take_inflight = [&](LiveTaskState& t, std::size_t w,
                           std::uint64_t seq) -> std::optional<InFlightDispatch> {
    for (auto it = t.inflight.begin(); it != t.inflight.end(); ++it) {
      if (it->worker == w && it->seq == seq) {
        InFlightDispatch d = *it;
        t.inflight.erase(it);
        return d;
      }
    }
    return std::nullopt;
  };

  // Worker `w`'s in-flight dispatch failed (crash, silence, or recoverable
  // stage error). Frees the slot; if this was the task's last outstanding
  // dispatch, re-queue it after a jittered backoff while the retry budget
  // lasts — past the budget it completes degraded with its best result so
  // far. A still-racing hedge twin keeps the task alive without charging
  // the budget. The caller decides deadness and breaker bookkeeping.
  auto fail_dispatch = [&](std::size_t w) {
    WorkerSlot& slot = slots[w];
    if (!slot.busy) return;
    slot.busy = false;
    // Every group member charges its own retry budget: the group failed as
    // one dispatch, but supervision stays per task.
    for (const std::size_t task_id : slot.tasks) {
      LiveTaskState& t = tasks[task_id];
      const auto entry = take_inflight(t, w, slot.seq);
      if (!entry.has_value() || t.done) continue;
      if (!t.inflight.empty()) continue;  // the hedge twin is still racing
      const double now = clock.now_ms();
      if (now - t.submit_ms >= config.deadline_ms) {
        t.done = true;
        t.expired = true;
        t.finish_ms = now;
        ++local_stats.expired;
        --unfinished;
        t.span.event(TraceEventKind::kExpire, now);
        end_span(t, now);
      } else if (t.retries < config.max_retries) {
        ++t.retries;
        ++local_stats.retries;
        const double backoff = backoff_delay_ms(config.retry, t.retries, backoff_rng);
        t.eligible_ms = now + backoff;
        t.hedged_this_stage = false;  // the re-dispatch may hedge again
        t.span.event(TraceEventKind::kRetry, now,
                     static_cast<std::uint32_t>(t.stages_done), 0, backoff);
      } else {
        t.done = true;
        t.degraded = true;
        t.finish_ms = now;
        ++local_stats.degraded;
        --unfinished;
        t.span.event(TraceEventKind::kDegrade, now);
        end_span(t, now);
      }
    }
  };

  // Replaces a *crashed* worker with a fresh thread on the same (now idle)
  // replica. Workers abandoned for silence are never respawned: their thread
  // may still be touching the replica.
  auto maybe_respawn = [&](std::size_t w) {
    if (respawns_left == 0) return;
    --respawns_left;
    ++local_stats.respawns;
    slots[w] = WorkerSlot{};
    workers.emplace_back(worker_main, w);
  };

  std::uint64_t next_seq = 1;
  auto dispatch_to = [&](std::size_t w, std::vector<std::size_t> group,
                         bool hedge) {
    Job job;
    job.stage = tasks[group.front()].stages_done;
    job.seq = next_seq++;
    // Deadline propagation: the worker sees the group's tightest absolute
    // deadline and the scheduler keeps a cancel handle for the hedge race.
    double abs_deadline = std::numeric_limits<double>::infinity();
    for (const std::size_t task_id : group) {
      LiveTaskState& t = tasks[task_id];
      job.features.push_back(t.features);
      abs_deadline = std::min(abs_deadline, t.submit_ms + config.deadline_ms);
    }
    job.token = CancellationToken(abs_deadline);
    WorkerSlot& slot = slots[w];
    slot.busy = true;
    slot.seq = job.seq;
    slot.dispatched_ms = clock.now_ms();
    for (const std::size_t task_id : group) {
      LiveTaskState& t = tasks[task_id];
      t.inflight.push_back({w, job.seq, hedge, job.token});
      t.span.event(hedge ? TraceEventKind::kHedge : TraceEventKind::kDispatch,
                   slot.dispatched_ms, static_cast<std::uint32_t>(job.stage),
                   static_cast<std::uint32_t>(w));
    }
    job.task_ids = group;
    slot.tasks = std::move(group);
    job_channels[w].send(std::move(job));
  };

  // Free workers whose breakers admit traffic, healthiest first (error-rate
  // EWMA dominates, latency EWMA breaks ties). Routing around an open
  // breaker is what spares the retry budget on a sick replica.
  auto ready_workers_ranked = [&](double now) {
    std::vector<std::size_t> ready;
    for (std::size_t w = 0; w < num_workers; ++w) {
      if (slots[w].busy || slots[w].dead) continue;
      if (config.health.enabled && !breakers[w].allow(now)) {
        ++local_stats.breaker_skips;
        continue;
      }
      ready.push_back(w);
    }
    std::stable_sort(ready.begin(), ready.end(),
                     [&](std::size_t a, std::size_t b) {
                       return breakers[a].score() < breakers[b].score();
                     });
    return ready;
  };

  auto dispatch = [&]() {
    for (;;) {
      const double now = clock.now_ms();
      const auto ready = ready_workers_ranked(now);
      if (ready.empty()) return;
      std::vector<TaskView> runnable;
      for (std::size_t i = 0; i < tasks.size(); ++i) {
        expire_if_due(i);
        const LiveTaskState& t = tasks[i];
        if (t.done || !t.inflight.empty() || t.stages_done >= num_stages) continue;
        if (now < t.eligible_ms) continue;  // still backing off
        TaskView v;
        v.task_id = i;
        v.service = 0;
        v.stages_done = t.stages_done;
        v.total_stages = num_stages;
        v.arrival_ms = t.submit_ms;
        v.deadline_ms = t.submit_ms + config.deadline_ms;
        v.observed_confidence = t.observed_confidence;
        runnable.push_back(v);
      }
      if (runnable.empty()) return;
      const auto choice = policy.pick(runnable, now);
      if (!choice.has_value()) return;
      // Grouped dispatch: ride other runnable tasks at the same stage (and
      // feature shape) along with the policy's pick, up to stage_batch. The
      // pick stays the policy's; the riders only amortize the stage's GEMMs.
      std::vector<std::size_t> group = {*choice};
      if (config.stage_batch > 1) {
        const LiveTaskState& lead = tasks[*choice];
        for (const TaskView& v : runnable) {
          if (group.size() >= config.stage_batch) break;
          if (v.task_id == *choice) continue;
          const LiveTaskState& t = tasks[v.task_id];
          if (t.stages_done == lead.stages_done &&
              t.features.same_shape(lead.features))
            group.push_back(v.task_id);
        }
      }
      dispatch_to(ready.front(), std::move(group), /*hedge=*/false);
    }
  };

  // Dispatch-to-result latencies feeding the hedge threshold. A lock-free
  // log-bucketed histogram replaces the old 64-sample window: record is two
  // relaxed atomic adds and quantile() walks 98 fixed buckets — no
  // copy-and-nth_element per sweep (BM_HedgeQuantileLegacyWindow in
  // bench_micro.cpp keeps the before/after comparison honest). Nearest-rank
  // (ceil) semantics also fix the old floor-rank bias that under-read the
  // quantile (q=0.5 of two samples returned the max, not the median).
  telemetry::LatencyHistogram lat_hist;
  auto note_latency = [&](double ms, std::size_t stage) {
    lat_hist.record(ms);
    if (stage < stage_hists.size()) stage_hists[stage]->record(ms);
  };
  // One threshold per wake (satellite fix: the sweep used to recompute the
  // quantile in maybe_hedge *and* in the hedge-aware wake computation — two
  // full window copies per loop iteration, and the two could disagree when
  // a result landed between them). nullopt = hedging off or warming up.
  auto hedge_threshold = [&]() -> std::optional<double> {
    if (!config.hedging || lat_hist.count() < config.hedge_min_samples)
      return std::nullopt;
    return std::max(lat_hist.quantile(config.hedge_quantile),
                    config.hedge_min_ms);
  };

  // Hedge sweep: a dispatch out longer than the observed latency quantile
  // gets one backup dispatch of the same stage on the healthiest free
  // replica. First result wins; the loser is cancelled through its token
  // and its eventual report is recognized by sequence number and dropped.
  auto maybe_hedge = [&](std::optional<double> threshold_opt) {
    if (!threshold_opt.has_value()) return;
    const double threshold = *threshold_opt;
    const double now = clock.now_ms();
    for (std::size_t w = 0; w < num_workers; ++w) {
      WorkerSlot& slot = slots[w];
      if (!slot.busy || slot.dead) continue;
      if (now - slot.dispatched_ms < threshold) continue;
      if (slot.tasks.size() != 1) continue;  // grouped dispatches never hedge
      LiveTaskState& t = tasks[slot.tasks.front()];
      if (t.done || t.hedged_this_stage || t.inflight.size() != 1) continue;
      if (t.inflight.front().worker != w || t.inflight.front().seq != slot.seq)
        continue;
      const auto ready = ready_workers_ranked(now);
      if (ready.empty()) continue;  // no spare healthy replica: no hedge
      t.hedged_this_stage = true;
      ++local_stats.hedges_issued;
      const std::size_t task = slot.tasks.front();
      dispatch_to(ready.front(), {task}, /*hedge=*/true);
      EUGENE_LOG(Debug) << "live: hedging task " << task << " stage "
                        << t.stages_done << " (worker " << w << " out "
                        << (now - slot.dispatched_ms) << " ms, threshold "
                        << threshold << " ms) on worker " << ready.front();
      if (EUGENE_FAILPOINT_FIRED("hedge.lose.race")) {
        // Chaos seam: force the primary to lose so the loser-cancellation
        // path runs deterministically.
        for (auto& d : tasks[task].inflight)
          if (d.worker == w) d.token.cancel();
      }
    }
  };

  dispatch();
  while (unfinished > 0) {
    for (std::size_t i = 0; i < tasks.size(); ++i) expire_if_due(i);
    if (unfinished == 0) break;

    // Heartbeat supervision: a busy worker silent past the timeout is
    // abandoned — its task is re-queued and any later report from it is
    // stale (sequence mismatch) and dropped.
    if (std::isfinite(config.worker_timeout_ms)) {
      const double now = clock.now_ms();
      for (std::size_t w = 0; w < num_workers; ++w) {
        if (slots[w].busy && !slots[w].dead &&
            now - slots[w].dispatched_ms >= config.worker_timeout_ms) {
          ++local_stats.worker_timeouts;
          EUGENE_LOG(Warn) << "live: worker " << w << " silent for "
                           << (now - slots[w].dispatched_ms)
                           << " ms; abandoning it and re-queueing "
                           << slots[w].tasks.size() << " task(s)";
          slots[w].dead = true;
          breakers[w].record_failure(now);
          for (const std::size_t task_id : slots[w].tasks)
            tasks[task_id].span.event(
                TraceEventKind::kStageError, now,
                static_cast<std::uint32_t>(tasks[task_id].stages_done),
                static_cast<std::uint32_t>(w));
          fail_dispatch(w);
        }
      }
    }

    // Degrade-never-fail: with every worker dead, remaining tasks answer
    // with what they have instead of waiting forever.
    bool any_alive = false;
    for (const WorkerSlot& s : slots) any_alive |= !s.dead;
    if (!any_alive) {
      const double now = clock.now_ms();
      for (LiveTaskState& t : tasks) {
        if (t.done) continue;
        t.done = true;
        t.degraded = true;
        t.finish_ms = now;
        ++local_stats.degraded;
        --unfinished;
        t.span.event(TraceEventKind::kDegrade, now);
        end_span(t, now);
      }
      break;
    }

    // Compute the hedge threshold once per wake and share it between the
    // hedge sweep and the hedge-aware wake window below.
    const std::optional<double> threshold = hedge_threshold();
    maybe_hedge(threshold);
    dispatch();

    bool any_running = false;
    for (const WorkerSlot& s : slots) any_running |= s.busy && !s.dead;

    // Bounded wait so deadline expiry, heartbeat sweeps, breaker cooldowns,
    // and hedge decisions all run even when every worker has gone silent.
    // With nothing in flight (everything waits on a deadline, a backoff
    // window, or a breaker cooldown) poll faster; the CondVar inside the
    // channel keeps this cancellation-aware — a result or close() wakes it
    // immediately, unlike the raw sleep this replaces.
    double wait_ms = any_running ? 5.0 : 1.0;
    // Hedge-aware wake: when a spare healthy replica exists, wake exactly
    // when the oldest hedgeable dispatch crosses the hedge threshold —
    // otherwise a quiet pool (every task pending on one straggler) would
    // snooze the full fallback and hedge late. With no spare replica there
    // is nothing to hedge onto, and the result that frees one wakes us.
    if (threshold.has_value()) {
      const double now = clock.now_ms();
      if (!ready_workers_ranked(now).empty()) {
        for (std::size_t w = 0; w < num_workers; ++w) {
          const WorkerSlot& s = slots[w];
          if (!s.busy || s.dead) continue;
          if (s.tasks.size() != 1) continue;  // grouped dispatches never hedge
          const LiveTaskState& t = tasks[s.tasks.front()];
          if (t.done || t.hedged_this_stage) continue;
          const double until = s.dispatched_ms + *threshold - now;
          wait_ms = std::min(wait_ms, std::max(until, 0.1));
        }
      }
    }
    auto res = results.receive_for(wait_ms);
    if (!res.has_value()) continue;
    EUGENE_CHECK_LT(res->worker, num_workers) << "stage report from unknown worker";
    WorkerSlot& slot = slots[res->worker];
    const bool current = slot.busy && !slot.dead && res->seq == slot.seq;
    if (!current) continue;  // stale report from an abandoned worker

    const double now = clock.now_ms();

    if (res->cancelled) {
      // The worker honored a cancellation (hedge race decided against it,
      // or the propagated deadline had passed). No breaker penalty: the
      // replica did nothing wrong. Only a dispatch still in the in-flight
      // set counts as newly cancelled — a decided hedge race already
      // counted its loser when the winner was processed.
      slot.busy = false;
      for (const std::size_t task_id : slot.tasks) {
        LiveTaskState& t = tasks[task_id];
        if (take_inflight(t, res->worker, res->seq).has_value()) {
          ++local_stats.cancelled;
          t.span.event(TraceEventKind::kCancel, now,
                       static_cast<std::uint32_t>(t.stages_done),
                       static_cast<std::uint32_t>(res->worker));
        }
      }
      dispatch();
      continue;
    }

    if (!res->ok && res->recoverable) {
      // Sick-replica stage error: the worker lives, the dispatch failed.
      ++local_stats.worker_errors;
      breakers[res->worker].record_failure(now);
      EUGENE_LOG(Warn) << "live: worker " << res->worker << " failed a stage of "
                       << slot.tasks.size() << " task(s) (recoverable): "
                       << res->error;
      for (const std::size_t task_id : slot.tasks)
        tasks[task_id].span.event(
            TraceEventKind::kStageError, now,
            static_cast<std::uint32_t>(tasks[task_id].stages_done),
            static_cast<std::uint32_t>(res->worker));
      fail_dispatch(res->worker);
      dispatch();
      continue;
    }

    if (!res->ok) {
      ++local_stats.worker_crashes;
      breakers[res->worker].record_failure(now);
      EUGENE_LOG(Warn) << "live: worker " << res->worker
                       << " crashed running " << slot.tasks.size()
                       << " task(s): " << res->error;
      slot.dead = true;
      for (const std::size_t task_id : slot.tasks)
        tasks[task_id].span.event(
            TraceEventKind::kStageError, now,
            static_cast<std::uint32_t>(tasks[task_id].stages_done),
            static_cast<std::uint32_t>(res->worker));
      fail_dispatch(res->worker);
      maybe_respawn(res->worker);
      dispatch();
      continue;
    }

    // Successful stage execution: good for the replica's health either way,
    // and a fresh latency observation for the hedge threshold. The reports
    // cross a (possibly named-pipe) channel boundary: validate the envelope
    // before indexing scheduler state with its contents.
    EUGENE_CHECK_EQ(res->reports.size(), slot.tasks.size())
        << "stage report count disagrees with the dispatched group";
    EUGENE_CHECK_EQ(res->features.size(), slot.tasks.size())
        << "stage feature count disagrees with the dispatched group";
    breakers[res->worker].record_success(res->stage_ms, now);
    note_latency(now - slot.dispatched_ms,
                 static_cast<std::size_t>(res->reports.front().stage));
    slot.busy = false;
    for (std::size_t b = 0; b < slot.tasks.size(); ++b) {
      const std::size_t task_id = slot.tasks[b];
      LiveTaskState& t = tasks[task_id];
      const auto won = take_inflight(t, res->worker, res->seq);
      if (!won.has_value()) {
        // Hedge-race loser: its twin already advanced the task. The result
        // is valid but redundant; the sequence bookkeeping keeps it out of
        // task state (no result races).
        continue;
      }
      if (won->hedge) ++local_stats.hedges_won;
      // Decide the race: cancel any still-outstanding twin cooperatively
      // (counted now, when the race is decided — the loser's acknowledgment
      // may arrive after the batch completes). Its eventual report (success,
      // cancelled, or crash) is handled above as a non-in-flight event.
      local_stats.cancelled += t.inflight.size();
      for (auto& d : t.inflight) {
        d.token.cancel();
        t.span.event(TraceEventKind::kCancel, now,
                     static_cast<std::uint32_t>(t.stages_done),
                     static_cast<std::uint32_t>(d.worker));
      }
      t.inflight.clear();
      t.hedged_this_stage = false;

      const StageReport& report = res->reports[b];
      EUGENE_CHECK_EQ(report.task_id, task_id)
          << "stage report names a task other than its dispatch";
      EUGENE_CHECK_EQ(report.stage, t.stages_done)
          << "out-of-order stage report for task " << task_id;
      const bool late = now - t.submit_ms >= config.deadline_ms;
      if (t.done) continue;
      if (!late) {
        // In-deadline result: accept it.
        t.span.event(TraceEventKind::kStageDone, now, report.stage,
                     static_cast<std::uint32_t>(res->worker),
                     report.confidence);
        ++t.stages_done;
        t.observed_confidence.push_back(report.confidence);
        t.last_label = report.predicted_label;
        t.features = std::move(res->features[b]);
        policy.on_stage_complete(report.task_id, report.stage,
                                 report.confidence);
        if (t.stages_done == num_stages ||
            report.confidence >= config.early_exit_confidence) {
          t.done = true;
          t.finish_ms = now;
          --unfinished;
          end_span(t, now);
        }
      } else {
        // The daemon's stage-granularity kill: discard the late result.
        t.done = true;
        t.expired = true;
        t.finish_ms = now;
        ++local_stats.expired;
        --unfinished;
        t.span.event(TraceEventKind::kExpire, now);
        end_span(t, now);
      }
    }
    dispatch();
  }

  for (auto& ch : job_channels) ch.close();
  for (auto& th : workers) th.join();
  results.close();

  for (const auto& b : breakers) local_stats.breaker_trips += b.trips();
  if (stats != nullptr) *stats = local_stats;

  if (config.metrics != nullptr) {
    // inc(0) still registers the instrument, so metrics_text() lists every
    // counter even on an uneventful run (the parse test relies on that).
    telemetry::MetricsRegistry& m = *config.metrics;
    m.counter("sched.live.tasks").inc(tasks.size());
    m.counter("sched.live.worker_crashes").inc(local_stats.worker_crashes);
    m.counter("sched.live.worker_timeouts").inc(local_stats.worker_timeouts);
    m.counter("sched.live.worker_errors").inc(local_stats.worker_errors);
    m.counter("sched.live.respawns").inc(local_stats.respawns);
    m.counter("sched.live.retries").inc(local_stats.retries);
    m.counter("sched.live.degraded").inc(local_stats.degraded);
    m.counter("sched.live.expired").inc(local_stats.expired);
    m.counter("sched.live.breaker_trips").inc(local_stats.breaker_trips);
    m.counter("sched.live.breaker_skips").inc(local_stats.breaker_skips);
    m.counter("sched.live.hedges_issued").inc(local_stats.hedges_issued);
    m.counter("sched.live.hedges_won").inc(local_stats.hedges_won);
    m.counter("sched.live.cancelled").inc(local_stats.cancelled);
  }

  std::vector<LiveTaskResult> out(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    out[i].task_id = i;
    out[i].label = tasks[i].last_label;
    out[i].confidence = tasks[i].observed_confidence.empty()
                            ? 0.0
                            : tasks[i].observed_confidence.back();
    out[i].stages_run = tasks[i].stages_done;
    out[i].expired = tasks[i].expired;
    out[i].degraded = tasks[i].degraded;
    out[i].retries = tasks[i].retries;
    out[i].latency_ms = tasks[i].finish_ms - tasks[i].submit_ms;
    out[i].span_id = tasks[i].span.id();
  }
  return out;
}

}  // namespace eugene::sched
