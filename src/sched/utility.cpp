#include "sched/utility.hpp"

#include "common/stats.hpp"

namespace eugene::sched {

GpUtilityEstimator::GpUtilityEstimator(const gp::ConfidenceCurveModel& curves)
    : curves_(curves) {
  EUGENE_REQUIRE(curves.fitted(), "GpUtilityEstimator: curve model not fitted");
}

double GpUtilityEstimator::predict_confidence_after(std::span<const double> conf_so_far,
                                                    std::size_t next_stage) const {
  EUGENE_REQUIRE(next_stage < curves_.num_stages(),
                 "GpUtilityEstimator: stage out of range");
  EUGENE_REQUIRE(conf_so_far.size() <= next_stage,
                 "GpUtilityEstimator: history already covers the requested stage");
  if (conf_so_far.empty()) return curves_.prior_confidence(next_stage);
  // Multi-hop GP (e.g. GP1→3): project from the last executed stage.
  return curves_.predict(conf_so_far.size() - 1, next_stage, conf_so_far.back());
}

ConstantSlopeEstimator::ConstantSlopeEstimator(std::vector<double> stage_priors,
                                               double baseline_confidence)
    : stage_priors_(std::move(stage_priors)), baseline_(baseline_confidence) {
  EUGENE_REQUIRE(!stage_priors_.empty(), "ConstantSlopeEstimator: empty priors");
  EUGENE_REQUIRE(baseline_ > 0.0 && baseline_ <= 1.0,
                 "ConstantSlopeEstimator: baseline outside (0,1]");
}

double ConstantSlopeEstimator::predict_confidence_after(std::span<const double> conf_so_far,
                                                        std::size_t next_stage) const {
  EUGENE_REQUIRE(next_stage < stage_priors_.size(),
                 "ConstantSlopeEstimator: stage out of range");
  EUGENE_REQUIRE(conf_so_far.size() <= next_stage,
                 "ConstantSlopeEstimator: history already covers the requested stage");
  if (conf_so_far.empty()) return stage_priors_[next_stage];
  // Slope of the most recent stage (before any second point, the rise from
  // the random-guess baseline), extrapolated one step per remaining hop.
  const double last = conf_so_far.back();
  const double previous = conf_so_far.size() >= 2 ? conf_so_far[conf_so_far.size() - 2]
                                                  : baseline_;
  const double slope = last - previous;
  const double hops = static_cast<double>(next_stage - (conf_so_far.size() - 1));
  return clamp(last + slope * hops, 0.0, 1.0);
}

}  // namespace eugene::sched
