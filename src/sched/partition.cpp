#include "sched/partition.hpp"

namespace eugene::sched {

using tensor::Tensor;

std::vector<StageInfo> stage_infos(nn::StagedModel& model, const Tensor& example_input) {
  std::vector<StageInfo> infos(model.num_stages());
  const Tensor* current = &example_input;
  nn::StageOutput out;
  for (std::size_t s = 0; s < model.num_stages(); ++s) {
    out = model.run_stage(s, *current);
    infos[s].flops = model.stage_flops(s);
    infos[s].param_bytes = model.stage_param_bytes(s);
    infos[s].output_bytes = out.features.numel() * sizeof(float);
    current = &out.features;
  }
  return infos;
}

std::vector<double> survival_curve(const calib::StagedEvaluation& eval,
                                   double threshold) {
  EUGENE_REQUIRE(eval.num_stages() > 0 && eval.num_samples() > 0,
                 "survival_curve: empty evaluation");
  std::vector<double> survival(eval.num_stages(), 0.0);
  const std::size_t n = eval.num_samples();
  for (std::size_t i = 0; i < n; ++i) {
    bool alive = true;
    for (std::size_t s = 0; s < eval.num_stages(); ++s) {
      alive = alive && eval.records[s][i].confidence < threshold;
      if (alive) survival[s] += 1.0;
    }
  }
  for (double& v : survival) v /= static_cast<double>(n);
  return survival;
}

std::vector<PartitionPlan> evaluate_partitions(const std::vector<StageInfo>& stages,
                                               const std::vector<double>& survival,
                                               const PartitionConfig& config) {
  EUGENE_REQUIRE(!stages.empty(), "evaluate_partitions: no stages");
  EUGENE_REQUIRE(survival.size() == stages.size(),
                 "evaluate_partitions: survival curve size mismatch");
  EUGENE_REQUIRE(config.device.flops_per_ms > 0.0 && config.server.flops_per_ms > 0.0,
                 "evaluate_partitions: non-positive throughput");
  EUGENE_REQUIRE(config.link.bytes_per_ms > 0.0,
                 "evaluate_partitions: non-positive link throughput");

  const std::size_t num_stages = stages.size();
  // alive[s]: probability stage s executes at all — 1 for stage 0, then the
  // survival after the previous stage (a request that already exited never
  // runs later stages, on either side).
  std::vector<double> alive(num_stages, 1.0);
  for (std::size_t s = 1; s < num_stages; ++s) alive[s] = survival[s - 1];

  std::vector<PartitionPlan> plans;
  plans.reserve(num_stages + 1);
  for (std::size_t split = 0; split <= num_stages; ++split) {
    PartitionPlan plan;
    plan.split = split;

    std::size_t device_bytes = 0;
    for (std::size_t s = 0; s < split; ++s) {
      plan.device_ms += alive[s] * stages[s].flops / config.device.flops_per_ms;
      device_bytes += stages[s].param_bytes;
    }
    plan.fits_device = device_bytes <= config.device.max_model_bytes;

    // Probability the request still needs the server after the device part:
    // survival after the last device stage (1 when nothing ran locally —
    // there is no local confidence to exit on).
    plan.offload_probability = split == 0 ? 1.0 : survival[split - 1];

    if (split < num_stages) {
      const std::size_t cut_bytes =
          split == 0 ? config.input_bytes : stages[split - 1].output_bytes;
      plan.upload_ms = static_cast<double>(cut_bytes) / config.link.bytes_per_ms +
                       config.link.rtt_ms;
      // Server stages are also weighted by their execution probability: the
      // server keeps exiting early on confident intermediate results.
      for (std::size_t s = split; s < num_stages; ++s)
        plan.server_ms += alive[s] * stages[s].flops / config.server.flops_per_ms;
    }

    plan.expected_latency_ms =
        plan.fits_device
            ? plan.device_ms + plan.offload_probability * plan.upload_ms +
                  plan.server_ms
            : std::numeric_limits<double>::infinity();
    plans.push_back(plan);
  }
  return plans;
}

PartitionPlan plan_partition(const std::vector<StageInfo>& stages,
                             const std::vector<double>& survival,
                             const PartitionConfig& config) {
  const auto plans = evaluate_partitions(stages, survival, config);
  const PartitionPlan* best = nullptr;
  for (const auto& plan : plans) {
    if (!plan.fits_device) continue;
    if (best == nullptr || plan.expected_latency_ms < best->expected_latency_ms)
      best = &plan;
  }
  EUGENE_REQUIRE(best != nullptr, "plan_partition: no feasible split");
  return *best;
}

}  // namespace eugene::sched
