// Discrete-event simulation engine for the scheduling experiments (Fig. 4).
//
// The engine owns a pool of homogeneous workers, a virtual clock, and the
// task set; the policy owns only the pick-next decision. Per the paper's
// architecture: stages run to completion once dispatched (stage-granularity
// preemption), and a latency daemon kills tasks whose deadline expires —
// including aborting a stage mid-execution, wasting that worker time.
#pragma once

#include <memory>

#include "sched/policy.hpp"

namespace eugene::sched {

/// Engine knobs.
struct SimulationConfig {
  std::size_t num_workers = 4;
  /// Tasks whose revealed confidence reaches this value complete early
  /// ("once a high-enough confidence is reported, skip remaining stages",
  /// paper §II-D). Values > 1 disable early exit.
  double early_exit_confidence = 2.0;
  /// If true, the latency daemon aborts running stages at the deadline.
  bool kill_at_deadline = true;
  std::uint64_t rng_seed = 99;
};

/// Outcome counters for one service (client stream).
struct ServiceMetrics {
  std::size_t tasks = 0;
  std::size_t correct = 0;            ///< final emitted label was right
  std::size_t completed_all_stages = 0;
  std::size_t early_exits = 0;
  std::size_t expired_with_result = 0;   ///< deadline hit after >=1 stage
  std::size_t expired_without_result = 0;  ///< deadline hit with 0 stages
  std::size_t stages_executed = 0;

  double accuracy() const {
    return tasks == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(tasks);
  }
};

/// Aggregate simulation outputs.
struct SimulationResult {
  std::vector<ServiceMetrics> services;
  std::size_t aborted_stage_executions = 0;  ///< stages killed mid-run
  double makespan_ms = 0.0;
  std::vector<std::size_t> exit_stage_histogram;  ///< index s: tasks whose last
                                                  ///< executed stage was s; [0] = none

  /// Mean of per-service accuracies (Fig. 4a/4b y-axis).
  double mean_accuracy() const;
  /// Population std of per-service accuracies (Fig. 4c y-axis; fairness).
  double std_accuracy() const;
  /// Mean executed stages per task.
  double mean_stages_per_task() const;
};

/// Runs `policy` over `tasks` and returns the metrics. The policy is reset()
/// before the run. Task ids must be unique; stage costs must cover the
/// maximum stage count in the task set.
SimulationResult simulate(std::vector<TaskSpec> tasks, SchedulingPolicy& policy,
                          const StageCostModel& costs, const SimulationConfig& config);

}  // namespace eugene::sched
