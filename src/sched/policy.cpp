#include "sched/policy.hpp"

#include <algorithm>
#include <limits>

namespace eugene::sched {

// ------------------------------------------------------ GreedyUtilityPolicy

GreedyUtilityPolicy::GreedyUtilityPolicy(const UtilityEstimator& estimator,
                                         std::size_t lookahead)
    : estimator_(estimator), lookahead_(lookahead) {
  EUGENE_REQUIRE(lookahead >= 1, "GreedyUtilityPolicy: lookahead must be >= 1");
}

void GreedyUtilityPolicy::set_service_weights(std::vector<double> weights) {
  for (double w : weights)
    EUGENE_REQUIRE(w > 0.0, "set_service_weights: weights must be positive");
  service_weights_ = std::move(weights);
}

void GreedyUtilityPolicy::set_stage_cost_hint(double stage_ms) {
  EUGENE_REQUIRE(stage_ms >= 0.0, "set_stage_cost_hint: negative stage time");
  stage_cost_hint_ms_ = stage_ms;
}

std::string GreedyUtilityPolicy::name() const {
  return "RTDeepIoT(" + estimator_.name() + ")-" + std::to_string(lookahead_);
}

void GreedyUtilityPolicy::plan(const std::vector<TaskView>& runnable, double now_ms) {
  timeline_.clear();

  // Per-task hypothetical state: confidence history extended by predicted
  // values as the plan commits stages to the timeline.
  struct Hypothetical {
    std::size_t task_id;
    std::size_t service;
    std::size_t total_stages;
    double arrival_ms;
    std::vector<double> conf;  ///< observed then predicted
  };
  std::vector<Hypothetical> state;
  state.reserve(runnable.size());
  for (const auto& t : runnable) {
    // Deadline feasibility: never plan a stage that cannot complete
    // ("no utility is accrued for tasks that are not completed").
    if (stage_cost_hint_ms_ > 0.0 && now_ms + stage_cost_hint_ms_ > t.deadline_ms)
      continue;
    Hypothetical h;
    h.task_id = t.task_id;
    h.service = t.service;
    h.total_stages = t.total_stages;
    h.arrival_ms = t.arrival_ms;
    h.conf.assign(t.observed_confidence.begin(), t.observed_confidence.end());
    state.push_back(std::move(h));
  }

  for (std::size_t step = 0; step < lookahead_; ++step) {
    // Utilities may be negative (the estimator can predict a confidence
    // drop); the greedy rule still picks the max, so the floor is -inf.
    double best_utility = -std::numeric_limits<double>::infinity();
    Hypothetical* best = nullptr;
    for (auto& h : state) {
      if (h.conf.size() >= h.total_stages) continue;  // plan already completes it
      const double predicted =
          estimator_.predict_confidence_after(h.conf, h.conf.size());
      const double current = h.conf.empty() ? 0.0 : h.conf.back();
      const double utility = (predicted - current) * service_weight(h.service);
      // Utility ties are common (every cold task shares the same prior);
      // breaking them by iteration order would systematically starve
      // higher-numbered services, so ties go to the earliest arrival.
      constexpr double kTie = 1e-12;
      const bool wins = best == nullptr || utility > best_utility + kTie ||
                        (utility > best_utility - kTie &&
                         h.arrival_ms < best->arrival_ms);
      if (wins) {
        best_utility = std::max(utility, best_utility);
        best = &h;
      }
    }
    if (best == nullptr) break;  // every runnable task fully planned
    timeline_.push_back(best->task_id);
    best->conf.push_back(
        estimator_.predict_confidence_after(best->conf, best->conf.size()));
  }
}

std::optional<std::size_t> GreedyUtilityPolicy::pick(
    const std::vector<TaskView>& runnable, double now_ms) {
  if (runnable.empty()) return std::nullopt;

  // Serve the planned timeline first. Entries whose task is temporarily
  // blocked (its previous stage is still executing on another worker) are
  // kept in place for a later pick; only the entry actually dispatched is
  // removed.
  for (auto it = timeline_.begin(); it != timeline_.end(); ++it) {
    const std::size_t id = *it;
    const bool runnable_now =
        std::any_of(runnable.begin(), runnable.end(),
                    [id](const TaskView& t) { return t.task_id == id; });
    if (runnable_now) {
      timeline_.erase(it);
      return id;
    }
  }

  // No dispatchable entry left: replan "with the most recent utility
  // estimates" (stale entries for finished or still-running tasks are
  // discarded; running tasks re-enter consideration once their stage ends).
  plan(runnable, now_ms);
  if (timeline_.empty()) return std::nullopt;
  const std::size_t id = timeline_.front();
  timeline_.pop_front();
  return id;
}

void GreedyUtilityPolicy::on_stage_complete(std::size_t /*task_id*/, std::size_t /*stage*/,
                                            double /*confidence*/) {
  // Lookahead semantics (paper §III): the planned timeline runs to
  // exhaustion before replanning, so fresh observations are deliberately
  // not folded in mid-plan — that staleness is exactly what the k sweep
  // in Fig. 4a measures.
}

// --------------------------------------------------------- RoundRobinPolicy

std::optional<std::size_t> RoundRobinPolicy::pick(const std::vector<TaskView>& runnable,
                                                  double /*now_ms*/) {
  if (runnable.empty()) return std::nullopt;
  // Pick the runnable task whose service id is the smallest value >=
  // next_service_ (cyclically); within a service, the earliest arrival.
  const TaskView* best = nullptr;
  auto cyclic_key = [this](std::size_t service) {
    return service >= next_service_ ? service - next_service_
                                    : service + (1u << 20) - next_service_;
  };
  for (const auto& t : runnable) {
    if (best == nullptr || cyclic_key(t.service) < cyclic_key(best->service) ||
        (t.service == best->service && t.arrival_ms < best->arrival_ms)) {
      best = &t;
    }
  }
  next_service_ = best->service + 1;
  return best->task_id;
}

// --------------------------------------------------------------- FifoPolicy

std::optional<std::size_t> FifoPolicy::pick(const std::vector<TaskView>& runnable,
                                            double /*now_ms*/) {
  if (runnable.empty()) return std::nullopt;
  const TaskView* best = &runnable.front();
  for (const auto& t : runnable) {
    if (t.arrival_ms < best->arrival_ms ||
        (t.arrival_ms == best->arrival_ms && t.task_id < best->task_id)) {
      best = &t;
    }
  }
  return best->task_id;
}

// ----------------------------------------------------- EarliestDeadlinePolicy

std::optional<std::size_t> EarliestDeadlinePolicy::pick(
    const std::vector<TaskView>& runnable, double /*now_ms*/) {
  if (runnable.empty()) return std::nullopt;
  const TaskView* best = &runnable.front();
  for (const auto& t : runnable) {
    if (t.deadline_ms < best->deadline_ms ||
        (t.deadline_ms == best->deadline_ms && t.arrival_ms < best->arrival_ms)) {
      best = &t;
    }
  }
  return best->task_id;
}

}  // namespace eugene::sched
