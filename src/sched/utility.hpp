// Utility estimation: "the utility of executing a stage is the expected
// increase in output confidence" (paper Section III-B).
//
// Estimators predict the confidence a task would reach after its next stage.
// The greedy planner chains them: hypothetically executed stages feed
// predicted confidences back in as if observed.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "gp/confidence_curve.hpp"
#include "sched/task.hpp"

namespace eugene::sched {

/// Interface for confidence forecasting.
class UtilityEstimator {
 public:
  virtual ~UtilityEstimator() = default;

  /// Predicted confidence after executing stage `next_stage`, given the
  /// confidences of executed stages 0..conf_so_far.size()-1 (observed or,
  /// during lookahead planning, hypothesized). Requires
  /// conf_so_far.size() <= next_stage; an empty history yields the
  /// cold-start prior. Multi-hop prediction (e.g. the paper's GP1→3) is
  /// supported: the estimator projects from the last available stage.
  virtual double predict_confidence_after(std::span<const double> conf_so_far,
                                          std::size_t next_stage) const = 0;

  virtual std::string name() const = 0;
};

/// RTDeepIoT's estimator: piecewise-linear-approximated Gaussian-process
/// regression from the last executed stage's confidence, with the
/// training-set prior as the cold start.
class GpUtilityEstimator final : public UtilityEstimator {
 public:
  /// `curves` must outlive the estimator.
  explicit GpUtilityEstimator(const gp::ConfidenceCurveModel& curves);

  double predict_confidence_after(std::span<const double> conf_so_far,
                                  std::size_t next_stage) const override;
  std::string name() const override { return "gp"; }

 private:
  const gp::ConfidenceCurveModel& curves_;
};

/// RTDeepIoT-DC's estimator: assumes confidence keeps increasing with the
/// same slope as in the most recent executed stage.
class ConstantSlopeEstimator final : public UtilityEstimator {
 public:
  /// `stage_priors` are mean training confidences per stage (cold start);
  /// `baseline_confidence` is the pre-execution confidence (1/num_classes).
  ConstantSlopeEstimator(std::vector<double> stage_priors, double baseline_confidence);

  double predict_confidence_after(std::span<const double> conf_so_far,
                                  std::size_t next_stage) const override;
  std::string name() const override { return "constant-slope"; }

 private:
  std::vector<double> stage_priors_;
  double baseline_;
};

}  // namespace eugene::sched
