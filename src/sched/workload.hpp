// Workload synthesis for scheduling experiments: turns a per-stage
// evaluation table (real model outputs) into streams of timed inference
// tasks, one stream per client service — the Fig. 4 setup where several
// processes each classify a shuffled stream of CIFAR-10 images.
#pragma once

#include "calib/evaluation.hpp"
#include "sched/task.hpp"

namespace eugene::sched {

/// Stream shape knobs.
struct WorkloadConfig {
  std::size_t num_services = 5;        ///< concurrent client streams (Fig. 4 x-axis)
  std::size_t tasks_per_service = 40;  ///< images per stream
  double mean_interarrival_ms = 30.0;  ///< per-service arrival spacing
  bool poisson_arrivals = true;        ///< exponential vs fixed spacing
  double deadline_ms = 120.0;          ///< relative latency constraint per task
};

/// Builds the task set by sampling rows of `eval` (with replacement) for
/// every service. Task ids are unique and dense from 0.
std::vector<TaskSpec> build_workload(const calib::StagedEvaluation& eval,
                                     const WorkloadConfig& config, Rng& rng);

/// Derives a stage cost model from per-stage FLOPs and a throughput in
/// FLOP/ms, the knob that sets system load relative to deadlines.
StageCostModel cost_model_from_flops(const std::vector<double>& stage_flops,
                                     double flops_per_ms);

}  // namespace eugene::sched
