// Task model for Eugene's utility-maximizing inference scheduler
// (paper Section III).
//
// An inference task is one input (e.g. an image) owned by a *service* (one
// client stream). Its neural network is split into stages; executing stage s
// reveals that stage's (label, confidence). The scheduler sees only revealed
// confidences — the ground-truth playback in TaskSpec is engine-private.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace eugene::sched {

/// What executing one stage of one task would reveal (precomputed from a
/// real model run; see DESIGN.md §5 "Real model, simulated time").
struct StageOutcome {
  std::size_t predicted = 0;  ///< label emitted by this stage's head
  bool correct = false;       ///< predicted == ground truth
  double confidence = 0.0;    ///< head's calibrated confidence
};

/// Immutable description of one inference task.
struct TaskSpec {
  std::size_t id = 0;
  std::size_t service = 0;    ///< owning client stream
  double arrival_ms = 0.0;    ///< absolute arrival time
  double deadline_ms = std::numeric_limits<double>::infinity();  ///< absolute
  std::vector<StageOutcome> stages;  ///< playback, one entry per model stage
};

/// Read-only task snapshot handed to scheduling policies. Exposes only what
/// the paper's scheduler can observe: progress, timing, and the confidences
/// of *executed* stages.
struct TaskView {
  std::size_t task_id = 0;
  std::size_t service = 0;
  std::size_t stages_done = 0;
  std::size_t total_stages = 0;
  double arrival_ms = 0.0;
  double deadline_ms = 0.0;
  std::span<const double> observed_confidence;  ///< size == stages_done

  double current_confidence() const {
    return observed_confidence.empty() ? 0.0 : observed_confidence.back();
  }
};

/// Per-stage execution-time model. The default derives nothing; callers set
/// per-stage milliseconds (typically from stage FLOPs via the profiler).
struct StageCostModel {
  std::vector<double> stage_ms;  ///< one entry per stage
  double jitter_fraction = 0.0;  ///< uniform ±fraction noise, 0 = deterministic

  double duration_ms(std::size_t stage, Rng& rng) const {
    EUGENE_REQUIRE(stage < stage_ms.size(), "StageCostModel: stage out of range");
    double d = stage_ms[stage];
    if (jitter_fraction > 0.0)
      d *= 1.0 + rng.uniform(-jitter_fraction, jitter_fraction);
    return d;
  }

  std::size_t num_stages() const { return stage_ms.size(); }
};

}  // namespace eugene::sched
