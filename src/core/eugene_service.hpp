// EugeneService — the facade over the whole service suite, mapping the
// paper's §II taxonomy onto one object:
//
//   train()        §II-A  train a staged model from client data
//   label()        §II-A  semi-supervised labeling of client data
//   reduce/cache   §II-B  via build_device_cache()
//   profile()      §II-C  execution profiling of the deployed model
//   calibrate()    §II-D  confidence calibration + confidence-curve fitting
//   infer()/batch  §II-E + §III  utility-scheduled run-time inference
//
// Models live in a registry; handles are returned by train() (or
// register_model() for externally trained models).
#pragma once

#include "calib/calibrators.hpp"
#include "labeling/self_training.hpp"
#include "profile/timing.hpp"
#include "reduce/cache.hpp"
#include "serving/server.hpp"
#include "serving/snapshot.hpp"

namespace eugene::core {

/// Outcome of calibrate(): the chosen Eq. 4 α per stage and the per-stage
/// ECE after calibration.
struct CalibrationReport {
  std::vector<double> stage_alpha;
  std::vector<double> stage_ece;
};

/// Per-stage profiling result.
struct StageProfile {
  std::vector<double> stage_ms;     ///< measured median forward time
  std::vector<double> stage_flops;  ///< analytic FLOPs
};

/// The Eugene deep-intelligence service.
class EugeneService {
 public:
  EugeneService() = default;

  // ---- §II-A: training --------------------------------------------------
  /// Trains a staged ResNet on client data and registers it. Returns the
  /// model handle.
  std::size_t train(const std::string& name, const data::Dataset& train_set,
                    const nn::StagedResNetConfig& architecture,
                    const nn::StagedTrainConfig& training);

  /// Registers an externally trained model.
  std::size_t register_model(const std::string& name, nn::StagedModel model);

  // ---- §II-A: labeling ----------------------------------------------------
  /// Labels an unlabeled pool using a small labeled seed set (self-training
  /// with a disagreement discriminator; see labeling/self_training.hpp).
  data::Dataset label(const data::Dataset& labeled_seed, const data::Dataset& unlabeled,
                      const labeling::SelfTrainingLabeler::ModelFactory& factory,
                      const labeling::SelfTrainingConfig& config,
                      labeling::LabelingReport* report = nullptr);

  // ---- §II-B: model reduction & caching -----------------------------------
  /// Builds a reduced cache model for a device from the traffic's frequent
  /// classes (paper's smart-refrigerator scenario).
  reduce::CacheModel build_device_cache(const data::Dataset& train_set,
                                        const std::vector<std::size_t>& frequent_classes,
                                        const reduce::CacheBuildConfig& config);

  // ---- §II-C: execution profiling -----------------------------------------
  /// Measures real per-stage execution times of a registered model and
  /// installs them as the model's stage cost model. Returns the profile.
  StageProfile profile(std::size_t handle, const tensor::Shape& input_shape,
                       const profile::TimingConfig& timing = {});

  // ---- §II-D: calibration / result quality --------------------------------
  /// Entropy-calibrates the model's heads (Eq. 4) on `calib_set`, fits the
  /// GP confidence-curve model, and marks the model serve-ready.
  CalibrationReport calibrate(std::size_t handle, const data::Dataset& calib_set,
                              const calib::EntropyCalibConfig& config = {});

  // ---- §II-E + §III: run-time inference -----------------------------------
  /// Schedules a batch of concurrent requests on the model. When
  /// `config.trace` is null the service's own recorder is injected, so
  /// every response carries a span_id resolvable through trace().
  std::vector<serving::InferenceResponse> infer_batch(
      std::size_t handle, const std::vector<serving::InferenceRequest>& requests,
      const serving::ServerConfig& config);

  /// Single-input convenience wrapper (default service class, no deadline).
  serving::InferenceResponse infer(std::size_t handle, const tensor::Tensor& input,
                                   double early_exit_confidence = 0.92);

  // ---- observability (DESIGN.md §12) --------------------------------------
  /// Snapshot of the process-wide metrics registry in the eugene-metrics v1
  /// text format (round-trippable through telemetry::parse_metrics_text).
  std::string metrics_text() const;

  /// The service's trace recorder: spans for every infer()/infer_batch()
  /// call that did not supply its own recorder.
  telemetry::TraceRecorder& trace() { return trace_; }

  // ---- durability (DESIGN.md §9) ------------------------------------------
  /// Snapshots every registered model — weights, confidence curves, stage
  /// costs, calibration α — crash-consistently under `dir`; returns the
  /// committed epoch. Model state is read unsynchronized: do not snapshot
  /// while train()/profile()/calibrate() is mutating a registered model
  /// (see serving/snapshot.hpp). Concurrent inference is fine — serving
  /// never mutates entries.
  std::uint64_t snapshot(const std::string& dir);

  /// Warm restart: restores every model from `dir`'s last committed
  /// snapshot (the factory rebuilds each architecture by name), so a fresh
  /// process serves without retraining, recalibrating, or reprofiling.
  /// Returns the number of models restored (0 when no snapshot exists).
  std::size_t restore(const std::string& dir, const serving::ModelFactory& factory);

  serving::ModelRegistry& registry() { return registry_; }

 private:
  serving::ModelRegistry registry_;
  telemetry::TraceRecorder trace_;
};

}  // namespace eugene::core
