// EugeneService — the facade over the whole service suite, mapping the
// paper's §II taxonomy onto one object:
//
//   train()        §II-A  train a staged model from client data
//   label()        §II-A  semi-supervised labeling of client data
//   reduce/cache   §II-B  via build_device_cache()
//   profile()      §II-C  execution profiling of the deployed model
//   calibrate()    §II-D  confidence calibration + confidence-curve fitting
//   infer()/batch  §II-E + §III  utility-scheduled run-time inference
//
// Models live in a registry; handles are returned by train() (or
// register_model() for externally trained models).
#pragma once

#include "calib/calibrators.hpp"
#include "common/lifecycle.hpp"
#include "labeling/self_training.hpp"
#include "profile/timing.hpp"
#include "reduce/cache.hpp"
#include "serving/server.hpp"
#include "serving/snapshot.hpp"
#include "serving/usage.hpp"

namespace eugene::core {

/// Outcome of calibrate(): the chosen Eq. 4 α per stage and the per-stage
/// ECE after calibration.
struct CalibrationReport {
  std::vector<double> stage_alpha;
  std::vector<double> stage_ece;
};

/// Per-stage profiling result.
struct StageProfile {
  std::vector<double> stage_ms;     ///< measured median forward time
  std::vector<double> stage_flops;  ///< analytic FLOPs
};

/// What begin_drain() should do after in-flight work stops (DESIGN.md §13).
struct DrainOptions {
  double timeout_ms = 5000.0;  ///< bound on waiting for in-flight requests
  /// Non-empty: write a final crash-consistent snapshot here once drained.
  std::string snapshot_dir;
  /// Non-null: flush + detach this meter's usage journal once drained, so a
  /// restart replays a complete billing ledger.
  serving::UsageMeter* usage = nullptr;
};

/// Outcome of the full drain sequence.
struct DrainOutcome {
  DrainReport report;                ///< what the lifecycle machine observed
  std::uint64_t snapshot_epoch = 0;  ///< committed epoch (0: no snapshot asked)
  bool journal_flushed = false;      ///< a usage journal was flushed + closed
};

/// The Eugene deep-intelligence service.
class EugeneService {
 public:
  EugeneService();

  // ---- §II-A: training --------------------------------------------------
  /// Trains a staged ResNet on client data and registers it. Returns the
  /// model handle.
  std::size_t train(const std::string& name, const data::Dataset& train_set,
                    const nn::StagedResNetConfig& architecture,
                    const nn::StagedTrainConfig& training);

  /// Registers an externally trained model.
  std::size_t register_model(const std::string& name, nn::StagedModel model);

  // ---- §II-A: labeling ----------------------------------------------------
  /// Labels an unlabeled pool using a small labeled seed set (self-training
  /// with a disagreement discriminator; see labeling/self_training.hpp).
  data::Dataset label(const data::Dataset& labeled_seed, const data::Dataset& unlabeled,
                      const labeling::SelfTrainingLabeler::ModelFactory& factory,
                      const labeling::SelfTrainingConfig& config,
                      labeling::LabelingReport* report = nullptr);

  // ---- §II-B: model reduction & caching -----------------------------------
  /// Builds a reduced cache model for a device from the traffic's frequent
  /// classes (paper's smart-refrigerator scenario).
  reduce::CacheModel build_device_cache(const data::Dataset& train_set,
                                        const std::vector<std::size_t>& frequent_classes,
                                        const reduce::CacheBuildConfig& config);

  // ---- §II-C: execution profiling -----------------------------------------
  /// Measures real per-stage execution times of a registered model and
  /// installs them as the model's stage cost model. Returns the profile.
  StageProfile profile(std::size_t handle, const tensor::Shape& input_shape,
                       const profile::TimingConfig& timing = {});

  // ---- §II-D: calibration / result quality --------------------------------
  /// Entropy-calibrates the model's heads (Eq. 4) on `calib_set`, fits the
  /// GP confidence-curve model, and marks the model serve-ready.
  CalibrationReport calibrate(std::size_t handle, const data::Dataset& calib_set,
                              const calib::EntropyCalibConfig& config = {});

  // ---- §II-E + §III: run-time inference -----------------------------------
  /// Schedules a batch of concurrent requests on the model. The batch pins
  /// one registry epoch for its whole duration, so a concurrent swap or
  /// reload never changes the model mid-request. When `config.trace` is null
  /// the service's own recorder is injected, so every response carries a
  /// span_id resolvable through trace(); when `config.lifecycle` is null the
  /// service's own lifecycle machine gates admission.
  std::vector<serving::InferenceResponse> infer_batch(
      std::size_t handle, const std::vector<serving::InferenceRequest>& requests,
      const serving::ServerConfig& config);

  /// Single-input convenience wrapper (default service class, no deadline).
  serving::InferenceResponse infer(std::size_t handle, const tensor::Tensor& input,
                                   double early_exit_confidence = 0.92);

  // ---- observability (DESIGN.md §12) --------------------------------------
  /// Snapshot of the process-wide metrics registry in the eugene-metrics v1
  /// text format (round-trippable through telemetry::parse_metrics_text).
  std::string metrics_text() const;

  /// The service's trace recorder: spans for every infer()/infer_batch()
  /// call that did not supply its own recorder.
  telemetry::TraceRecorder& trace() { return trace_; }

  // ---- durability (DESIGN.md §9) ------------------------------------------
  /// Snapshots every registered model — weights, confidence curves, stage
  /// costs, calibration α — crash-consistently under `dir`; returns the
  /// committed epoch. Safe under live traffic: the snapshot pins one
  /// registry epoch and reads only immutable published state, so no quiesce
  /// is needed and concurrent infer/profile/calibrate/swap are all fine.
  std::uint64_t snapshot(const std::string& dir);

  /// Warm restart: restores every model from `dir`'s last committed
  /// snapshot (the factory rebuilds each architecture by name), so a fresh
  /// process serves without retraining, recalibrating, or reprofiling.
  /// Returns the number of models restored (0 when no snapshot exists).
  std::size_t restore(const std::string& dir, const serving::ModelFactory& factory);

  // ---- zero-downtime lifecycle (DESIGN.md §13) ----------------------------
  /// Hot reload under live traffic: rebuilds every model in `dir`'s last
  /// committed snapshot off to the side, then publishes them as ONE new
  /// registry epoch (same-named entries keep their handles; new names
  /// append). In-flight requests keep serving their pinned epoch. Records a
  /// kSwap trace event carrying the new epoch. Returns the number of models
  /// published (0 when no snapshot exists).
  std::size_t reload(const std::string& dir, const serving::ModelFactory& factory);

  /// Hot model swap under live traffic: atomically publishes `model` as the
  /// new version behind `handle`. With keep_artifacts (the default) the
  /// entry's curves, stage costs, and calibration α carry over — the new
  /// model must then have the same stage count (retrained weights, same
  /// architecture). Pass keep_artifacts=false for a different architecture
  /// and re-profile/re-calibrate before serving it.
  void swap_model(std::size_t handle, nn::StagedModel model,
                  bool keep_artifacts = true);

  /// Graceful drain (SIGTERM path): rejects new admissions with typed drain
  /// responses, waits (bounded) for in-flight work, flushes the usage
  /// journal, writes the final snapshot, then transitions to Stopped.
  /// Idempotent — a second call finds the machine already stopped and only
  /// re-runs the flush/snapshot steps it was asked for.
  DrainOutcome begin_drain(const DrainOptions& options = {});

  /// The service's lifecycle machine. infer_batch() injects it into every
  /// ServerConfig that does not carry its own, so service-level traffic is
  /// always gated; external schedulers (run_live) can share it via
  /// LiveConfig::lifecycle.
  ServerLifecycle& lifecycle() { return lifecycle_; }

  serving::ModelRegistry& registry() { return registry_; }

 private:
  serving::ModelRegistry registry_;
  telemetry::TraceRecorder trace_;
  ServerLifecycle lifecycle_;
};

}  // namespace eugene::core
