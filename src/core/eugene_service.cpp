#include "core/eugene_service.hpp"

#include <algorithm>

#include "calib/ece.hpp"
#include "common/clock.hpp"
#include "common/logging.hpp"
#include "nn/train.hpp"

namespace eugene::core {

using tensor::Tensor;

namespace {

/// One kSwap trace marker: a publication event carrying the new epoch.
void record_swap(telemetry::TraceRecorder& trace, std::uint64_t epoch) {
  WallClock clock;
  const double now = clock.now_ms();
  telemetry::SpanHandle span = trace.begin_span(now);
  span.event(telemetry::TraceEventKind::kSwap, now, 0, 0,
             static_cast<double>(epoch));
}

}  // namespace

EugeneService::EugeneService() {
  // Publication epochs and the lifecycle gauge land in the process-wide
  // registry alongside the serving.* counters.
  registry_.set_metrics(&telemetry::MetricsRegistry::global());
  telemetry::MetricsRegistry::global()
      .gauge("serving.lifecycle.state")
      .set(static_cast<double>(lifecycle_.state()));
}

std::size_t EugeneService::train(const std::string& name, const data::Dataset& train_set,
                                 const nn::StagedResNetConfig& architecture,
                                 const nn::StagedTrainConfig& training) {
  EUGENE_REQUIRE(!train_set.empty(), "EugeneService::train: empty training set");
  nn::StagedModel model = nn::build_staged_resnet(architecture);
  nn::StagedTrainer trainer(model, training);
  trainer.fit(train_set.samples, train_set.labels);
  EUGENE_LOG(Info) << "trained model '" << name << "' (" << model.num_stages()
                   << " stages)";
  return registry_.add(name, std::move(model));
}

std::size_t EugeneService::register_model(const std::string& name, nn::StagedModel model) {
  return registry_.add(name, std::move(model));
}

data::Dataset EugeneService::label(const data::Dataset& labeled_seed,
                                   const data::Dataset& unlabeled,
                                   const labeling::SelfTrainingLabeler::ModelFactory& factory,
                                   const labeling::SelfTrainingConfig& config,
                                   labeling::LabelingReport* report) {
  labeling::SelfTrainingLabeler labeler(factory, config);
  return labeler.run(labeled_seed, unlabeled, report);
}

reduce::CacheModel EugeneService::build_device_cache(
    const data::Dataset& train_set, const std::vector<std::size_t>& frequent_classes,
    const reduce::CacheBuildConfig& config) {
  Rng rng(config.architecture.seed + 17);
  return reduce::build_cache_model(train_set, frequent_classes, config, rng);
}

StageProfile EugeneService::profile(std::size_t handle, const tensor::Shape& input_shape,
                                    const profile::TimingConfig& timing) {
  Rng rng(timing.seed);
  const Tensor input = Tensor::randn(input_shape, rng);

  // Copy-on-write: the timing runs (and the cost install) happen on a
  // private clone of the entry; concurrent inference keeps serving the
  // pinned epoch untouched until the new costs publish atomically.
  StageProfile result;
  registry_.update(handle, [&](serving::ModelEntry& entry) {
    nn::StagedModel& model = entry.model;
    result.stage_ms.assign(model.num_stages(), 0.0);
    result.stage_flops.resize(model.num_stages());
    for (std::size_t s = 0; s < model.num_stages(); ++s)
      result.stage_flops[s] = model.stage_flops(s);

    std::vector<std::vector<double>> samples(model.num_stages());
    for (std::size_t rep = 0; rep < timing.warmup + timing.repeats; ++rep) {
      const Tensor* current = &input;
      nn::StageOutput out;
      for (std::size_t s = 0; s < model.num_stages(); ++s) {
        Stopwatch watch;
        out = model.run_stage(s, *current);
        const double ms = watch.elapsed_ms();
        if (rep >= timing.warmup) samples[s].push_back(ms);
        current = &out.features;
      }
    }
    for (std::size_t s = 0; s < model.num_stages(); ++s) {
      std::sort(samples[s].begin(), samples[s].end());
      result.stage_ms[s] = samples[s][samples[s].size() / 2];
    }
    entry.costs.stage_ms = result.stage_ms;
  });
  return result;
}

CalibrationReport EugeneService::calibrate(std::size_t handle,
                                           const data::Dataset& calib_set,
                                           const calib::EntropyCalibConfig& config) {
  // Copy-on-write, like profile(): heads are tuned and curves fitted on a
  // private clone, then the calibrated entry publishes as one new epoch.
  CalibrationReport report;
  registry_.update(handle, [&](serving::ModelEntry& entry) {
    report.stage_alpha = calib::calibrate_heads_entropy(entry.model, calib_set, config);

    const calib::StagedEvaluation eval = calib::evaluate_staged(entry.model, calib_set);
    report.stage_ece.resize(eval.num_stages());
    for (std::size_t s = 0; s < eval.num_stages(); ++s)
      report.stage_ece[s] = calib::expected_calibration_error(
          eval.predicted(s), eval.truth(s), eval.confidence(s), config.ece_bins);

    entry.curves.fit(eval);
    entry.calibration_alpha = report.stage_alpha;
    entry.calibrated = true;
  });
  return report;
}

std::vector<serving::InferenceResponse> EugeneService::infer_batch(
    std::size_t handle, const std::vector<serving::InferenceRequest>& requests,
    const serving::ServerConfig& config) {
  serving::ServerConfig effective = config;
  if (effective.trace == nullptr) effective.trace = &trace_;
  if (effective.lifecycle == nullptr) effective.lifecycle = &lifecycle_;
  // Pin one epoch for the whole batch: a concurrent swap/reload publishes a
  // new epoch without disturbing this request's model or artifacts.
  const serving::ModelRegistry::ViewPtr view = registry_.pin();
  serving::InferenceServer server(view->entry(handle), effective);
  return server.process_batch(requests);
}

serving::InferenceResponse EugeneService::infer(std::size_t handle, const Tensor& input,
                                                double early_exit_confidence) {
  serving::ServerConfig config;
  config.early_exit_confidence = early_exit_confidence;
  serving::InferenceRequest request;
  request.input = input;
  return infer_batch(handle, {request}, config).front();
}

std::string EugeneService::metrics_text() const {
  return telemetry::MetricsRegistry::global().snapshot_text();
}

std::uint64_t EugeneService::snapshot(const std::string& dir) {
  return serving::save_snapshot(registry_, dir);
}

std::size_t EugeneService::restore(const std::string& dir,
                                   const serving::ModelFactory& factory) {
  const auto result = serving::restore_snapshot(registry_, dir, factory);
  return result.has_value() ? result->models_restored : 0;
}

std::size_t EugeneService::reload(const std::string& dir,
                                  const serving::ModelFactory& factory) {
  const auto result = serving::reload_snapshot(registry_, dir, factory);
  if (!result.has_value()) return 0;
  record_swap(trace_, registry_.epoch());
  return result->models_restored;
}

void EugeneService::swap_model(std::size_t handle, nn::StagedModel model,
                               bool keep_artifacts) {
  const serving::ModelRegistry::ViewPtr view = registry_.pin();
  const serving::ModelEntry& old_entry = view->entry(handle);
  if (keep_artifacts)
    EUGENE_REQUIRE(model.num_stages() == old_entry.model.num_stages(),
                   "swap_model: stage count changed — pass keep_artifacts=false "
                   "and re-profile/re-calibrate the new architecture");
  auto next = std::make_shared<serving::ModelEntry>(old_entry.name, std::move(model));
  if (keep_artifacts) {
    next->curves = old_entry.curves;
    next->costs = old_entry.costs;
    next->calibration_alpha = old_entry.calibration_alpha;
    next->calibrated = old_entry.calibrated;
  }
  registry_.replace(handle, std::move(next));
  record_swap(trace_, registry_.epoch());
}

DrainOutcome EugeneService::begin_drain(const DrainOptions& options) {
  telemetry::MetricsRegistry& metrics = telemetry::MetricsRegistry::global();
  WallClock clock;
  telemetry::SpanHandle span = trace_.begin_span(clock.now_ms());
  span.event(telemetry::TraceEventKind::kDrain, clock.now_ms());

  DrainOutcome outcome;
  outcome.report = lifecycle_.begin_drain(options.timeout_ms);
  metrics.gauge("serving.lifecycle.state")
      .set(static_cast<double>(lifecycle_.state()));
  metrics.histogram("serving.drain.duration_ms").record(outcome.report.duration_ms);
  if (!outcome.report.completed)
    EUGENE_LOG(Warn) << "drain timed out with " << outcome.report.inflight_abandoned
                     << " task(s) still in flight after " << options.timeout_ms
                     << " ms";

  // Admissions are now rejected (or stragglers abandoned): flush the billing
  // ledger first so a restart replays a complete journal, then write the
  // final snapshot.
  if (options.usage != nullptr) {
    options.usage->close_journal();
    outcome.journal_flushed = true;
  }
  if (!options.snapshot_dir.empty())
    outcome.snapshot_epoch = serving::save_snapshot(registry_, options.snapshot_dir);

  lifecycle_.set_stopped();
  metrics.gauge("serving.lifecycle.state")
      .set(static_cast<double>(lifecycle_.state()));
  span.event(telemetry::TraceEventKind::kExit, clock.now_ms());
  EUGENE_LOG(Info) << "drain " << (outcome.report.completed ? "completed" : "timed out")
                   << " in " << outcome.report.duration_ms << " ms; server stopped";
  return outcome;
}

}  // namespace eugene::core
