#include "core/eugene_service.hpp"

#include <algorithm>

#include "calib/ece.hpp"
#include "common/clock.hpp"
#include "common/logging.hpp"
#include "nn/train.hpp"

namespace eugene::core {

using tensor::Tensor;

std::size_t EugeneService::train(const std::string& name, const data::Dataset& train_set,
                                 const nn::StagedResNetConfig& architecture,
                                 const nn::StagedTrainConfig& training) {
  EUGENE_REQUIRE(!train_set.empty(), "EugeneService::train: empty training set");
  nn::StagedModel model = nn::build_staged_resnet(architecture);
  nn::StagedTrainer trainer(model, training);
  trainer.fit(train_set.samples, train_set.labels);
  EUGENE_LOG(Info) << "trained model '" << name << "' (" << model.num_stages()
                   << " stages)";
  return registry_.add(name, std::move(model));
}

std::size_t EugeneService::register_model(const std::string& name, nn::StagedModel model) {
  return registry_.add(name, std::move(model));
}

data::Dataset EugeneService::label(const data::Dataset& labeled_seed,
                                   const data::Dataset& unlabeled,
                                   const labeling::SelfTrainingLabeler::ModelFactory& factory,
                                   const labeling::SelfTrainingConfig& config,
                                   labeling::LabelingReport* report) {
  labeling::SelfTrainingLabeler labeler(factory, config);
  return labeler.run(labeled_seed, unlabeled, report);
}

reduce::CacheModel EugeneService::build_device_cache(
    const data::Dataset& train_set, const std::vector<std::size_t>& frequent_classes,
    const reduce::CacheBuildConfig& config) {
  Rng rng(config.architecture.seed + 17);
  return reduce::build_cache_model(train_set, frequent_classes, config, rng);
}

StageProfile EugeneService::profile(std::size_t handle, const tensor::Shape& input_shape,
                                    const profile::TimingConfig& timing) {
  serving::ModelEntry& entry = registry_.entry(handle);
  nn::StagedModel& model = entry.model;
  Rng rng(timing.seed);
  const Tensor input = Tensor::randn(input_shape, rng);

  StageProfile result;
  result.stage_ms.resize(model.num_stages());
  result.stage_flops.resize(model.num_stages());
  for (std::size_t s = 0; s < model.num_stages(); ++s)
    result.stage_flops[s] = model.stage_flops(s);

  std::vector<std::vector<double>> samples(model.num_stages());
  for (std::size_t rep = 0; rep < timing.warmup + timing.repeats; ++rep) {
    const Tensor* current = &input;
    nn::StageOutput out;
    for (std::size_t s = 0; s < model.num_stages(); ++s) {
      Stopwatch watch;
      out = model.run_stage(s, *current);
      const double ms = watch.elapsed_ms();
      if (rep >= timing.warmup) samples[s].push_back(ms);
      current = &out.features;
    }
  }
  for (std::size_t s = 0; s < model.num_stages(); ++s) {
    std::sort(samples[s].begin(), samples[s].end());
    result.stage_ms[s] = samples[s][samples[s].size() / 2];
  }
  entry.costs.stage_ms = result.stage_ms;
  return result;
}

CalibrationReport EugeneService::calibrate(std::size_t handle,
                                           const data::Dataset& calib_set,
                                           const calib::EntropyCalibConfig& config) {
  serving::ModelEntry& entry = registry_.entry(handle);
  CalibrationReport report;
  report.stage_alpha = calib::calibrate_heads_entropy(entry.model, calib_set, config);

  const calib::StagedEvaluation eval = calib::evaluate_staged(entry.model, calib_set);
  report.stage_ece.resize(eval.num_stages());
  for (std::size_t s = 0; s < eval.num_stages(); ++s)
    report.stage_ece[s] = calib::expected_calibration_error(
        eval.predicted(s), eval.truth(s), eval.confidence(s), config.ece_bins);

  entry.curves.fit(eval);
  entry.calibration_alpha = report.stage_alpha;
  entry.calibrated = true;
  return report;
}

std::vector<serving::InferenceResponse> EugeneService::infer_batch(
    std::size_t handle, const std::vector<serving::InferenceRequest>& requests,
    const serving::ServerConfig& config) {
  serving::ServerConfig effective = config;
  if (effective.trace == nullptr) effective.trace = &trace_;
  serving::InferenceServer server(registry_.entry(handle), effective);
  return server.process_batch(requests);
}

serving::InferenceResponse EugeneService::infer(std::size_t handle, const Tensor& input,
                                                double early_exit_confidence) {
  serving::ServerConfig config;
  config.early_exit_confidence = early_exit_confidence;
  serving::InferenceRequest request;
  request.input = input;
  return infer_batch(handle, {request}, config).front();
}

std::string EugeneService::metrics_text() const {
  return telemetry::MetricsRegistry::global().snapshot_text();
}

std::uint64_t EugeneService::snapshot(const std::string& dir) {
  return serving::save_snapshot(registry_, dir);
}

std::size_t EugeneService::restore(const std::string& dir,
                                   const serving::ModelFactory& factory) {
  const auto result = serving::restore_snapshot(registry_, dir, factory);
  return result.has_value() ? result->models_restored : 0;
}

}  // namespace eugene::core
