// Server lifecycle state machine (DESIGN.md §13 "Zero-downtime lifecycle").
//
// A serving process moves through exactly four states:
//
//   Starting ──first admission──▶ Serving ──begin_drain()──▶ Draining
//                                    │                           │
//                                    └────────set_stopped()──────┴──▶ Stopped
//
// The machine is the *single* authority on whether new work may enter the
// process: every admission path (serving::InferenceServer::process_batch,
// sched::LiveScheduler::submit) calls try_admit() before accepting a task and
// finish() when the task's response has been emitted. Draining therefore
// means "reject new admissions with a typed drain response, let the in-flight
// count fall to zero" — nothing in flight is ever dropped by the drain
// itself; the bounded wait in begin_drain() only limits how long we wait for
// stragglers before reporting them abandoned.
//
// Concurrency: one mutex (LockRank::kLifecycle) guards the state + in-flight
// count; a condition variable wakes the drainer whenever the count reaches
// zero. try_admit()/finish() are a lock, a branch, and a counter update —
// cheap enough for every request. Nothing nests inside the lifecycle mutex
// (the `lifecycle.drain.hang` failpoint deliberately fires *outside* it).
#pragma once

#include <cstdint>

#include "common/thread_annotations.hpp"

namespace eugene {

/// Lifecycle states, in the only order they can be visited.
enum class ServerState : std::uint8_t {
  kStarting = 0,  ///< constructed, no request admitted yet
  kServing = 1,   ///< live traffic
  kDraining = 2,  ///< rejecting admissions, waiting for in-flight work
  kStopped = 3,   ///< terminal; nothing runs, journal flushed
};

/// Stable lower-case name ("starting", "serving", "draining", "stopped").
const char* server_state_name(ServerState state);

/// What begin_drain() observed and achieved.
struct DrainReport {
  bool completed = false;            ///< in-flight count reached zero in time
  double duration_ms = 0.0;          ///< wall time spent draining
  std::size_t inflight_at_begin = 0; ///< tasks in flight when the drain started
  std::size_t inflight_abandoned = 0;///< tasks still running at timeout (never
                                     ///< cancelled — they just outlived the wait)
};

/// The state machine. One instance per serving process, shared by pointer
/// with every admission path (ServerConfig::lifecycle,
/// LiveConfig::lifecycle); a null pointer in those configs means "always
/// admit", preserving standalone construction in tests and benches.
class ServerLifecycle {
 public:
  ServerLifecycle() = default;
  ServerLifecycle(const ServerLifecycle&) = delete;
  ServerLifecycle& operator=(const ServerLifecycle&) = delete;

  /// Attempts to admit `units` units of new work (a batch admits its size in
  /// one call). Returns true and increments the in-flight count in Starting
  /// (auto-promoting to Serving — the first admission is what marks the
  /// process live) and Serving; returns false without side effects in
  /// Draining and Stopped. Every true return must be paired with exactly one
  /// finish() of the same unit count.
  bool try_admit(std::size_t units = 1) EUGENE_EXCLUDES(mutex_);

  /// Marks `units` units of admitted work complete and wakes the drainer
  /// when the in-flight count reaches zero.
  void finish(std::size_t units = 1) EUGENE_EXCLUDES(mutex_);

  /// Explicitly promotes Starting → Serving (admissions do this implicitly;
  /// daemons call it once wiring is done so metrics show "serving" before
  /// the first request). No-op in any other state.
  void set_serving() EUGENE_EXCLUDES(mutex_);

  /// Rejects new admissions and waits (bounded by `timeout_ms`) for the
  /// in-flight count to reach zero. Legal from Starting, Serving, or
  /// Draining (re-entry continues waiting on the same drain); returns an
  /// already-completed report in Stopped. Does NOT transition to Stopped —
  /// the caller flushes journals / writes the final snapshot between
  /// begin_drain() and set_stopped() (core::EugeneService::begin_drain
  /// sequences all three).
  DrainReport begin_drain(double timeout_ms) EUGENE_EXCLUDES(mutex_);

  /// Terminal transition; legal from any state. Idempotent.
  void set_stopped() EUGENE_EXCLUDES(mutex_);

  ServerState state() const EUGENE_EXCLUDES(mutex_);
  std::size_t inflight() const EUGENE_EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_{LockRank::kLifecycle, "ServerLifecycle::mutex_"};
  CondVar drained_cv_;
  ServerState state_ EUGENE_GUARDED_BY(mutex_) = ServerState::kStarting;
  std::size_t inflight_ EUGENE_GUARDED_BY(mutex_) = 0;
};

}  // namespace eugene
