#include "common/health.hpp"

#include "common/check.hpp"
#include "common/failpoint.hpp"
#include "common/logging.hpp"

namespace eugene {

const char* breaker_state_name(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

CircuitBreaker::CircuitBreaker(HealthConfig config) : config_(config) {
  EUGENE_REQUIRE(config_.ewma_alpha > 0.0 && config_.ewma_alpha <= 1.0,
                 "CircuitBreaker: ewma_alpha outside (0, 1]");
  EUGENE_REQUIRE(config_.error_threshold > 0.0 && config_.error_threshold <= 1.0,
                 "CircuitBreaker: error_threshold outside (0, 1]");
  EUGENE_REQUIRE(config_.latency_threshold_ms > 0.0,
                 "CircuitBreaker: latency_threshold_ms must be positive");
  EUGENE_REQUIRE(config_.open_cooldown_ms > 0.0,
                 "CircuitBreaker: open_cooldown_ms must be positive");
  EUGENE_REQUIRE(config_.half_open_probes >= 1,
                 "CircuitBreaker: need at least one half-open probe");
}

bool CircuitBreaker::allow_slow(double now_ms) {
  MutexLock lock(mutex_);
  // Re-read under the lock: the fast path raced an in-progress transition.
  switch (static_cast<BreakerState>(state_.load(std::memory_order_relaxed))) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kHalfOpen:
      return true;  // a probe
    case BreakerState::kOpen:
      if (now_ms - opened_at_ms_ >= config_.open_cooldown_ms) {
        state_.store(static_cast<std::uint8_t>(BreakerState::kHalfOpen),
                     std::memory_order_relaxed);
        probe_successes_ = 0;
        return true;  // the first probe
      }
      return false;
  }
  return true;
}

void CircuitBreaker::record_success(double latency_ms, double now_ms) {
  if (!config_.enabled) return;
  MutexLock lock(mutex_);
  ++samples_;
  error_ewma_ += config_.ewma_alpha * (0.0 - error_ewma_);
  if (latency_seeded_) {
    latency_ewma_ms_ += config_.ewma_alpha * (latency_ms - latency_ewma_ms_);
  } else {
    latency_ewma_ms_ = latency_ms;
    latency_seeded_ = true;
  }
  // Chaos seam: force a trip without manufacturing real failures, so tests
  // exercise open-breaker routing deterministically.
  if (EUGENE_FAILPOINT_FIRED("health.breaker.trip")) {
    trip_locked(now_ms);
    return;
  }
  const auto s = static_cast<BreakerState>(state_.load(std::memory_order_relaxed));
  if (s == BreakerState::kHalfOpen) {
    if (++probe_successes_ >= config_.half_open_probes) {
      state_.store(static_cast<std::uint8_t>(BreakerState::kClosed),
                   std::memory_order_relaxed);
      // Forget the sick-era error estimate: the target earned a clean slate,
      // so one post-recovery blip does not immediately re-trip.
      error_ewma_ = 0.0;
    }
    return;
  }
  if (s == BreakerState::kClosed && samples_ >= config_.min_samples &&
      latency_ewma_ms_ >= config_.latency_threshold_ms) {
    trip_locked(now_ms);
  }
}

void CircuitBreaker::record_failure(double now_ms) {
  if (!config_.enabled) return;
  MutexLock lock(mutex_);
  ++samples_;
  error_ewma_ += config_.ewma_alpha * (1.0 - error_ewma_);
  if (EUGENE_FAILPOINT_FIRED("health.breaker.trip")) {
    trip_locked(now_ms);
    return;
  }
  const auto s = static_cast<BreakerState>(state_.load(std::memory_order_relaxed));
  if (s == BreakerState::kHalfOpen) {
    trip_locked(now_ms);  // the probe failed: straight back to open
    return;
  }
  if (s == BreakerState::kClosed && samples_ >= config_.min_samples &&
      error_ewma_ >= config_.error_threshold) {
    trip_locked(now_ms);
  }
}

void CircuitBreaker::trip_locked(double now_ms) {
  state_.store(static_cast<std::uint8_t>(BreakerState::kOpen),
               std::memory_order_relaxed);
  opened_at_ms_ = now_ms;
  probe_successes_ = 0;
  ++trips_;
  EUGENE_LOG(Warn) << "breaker tripped open (error ewma " << error_ewma_
                   << ", latency ewma " << latency_ewma_ms_ << " ms, "
                   << samples_ << " samples)";
}

double CircuitBreaker::error_rate() const {
  MutexLock lock(mutex_);
  return error_ewma_;
}

double CircuitBreaker::latency_ewma_ms() const {
  MutexLock lock(mutex_);
  return latency_ewma_ms_;
}

double CircuitBreaker::score() const {
  MutexLock lock(mutex_);
  // Error rate dominates (a reliable-but-slow target beats a fast-but-flaky
  // one); latency breaks ties among equally reliable targets.
  return error_ewma_ * 1.0e6 + latency_ewma_ms_;
}

std::size_t CircuitBreaker::trips() const {
  MutexLock lock(mutex_);
  return trips_;
}

}  // namespace eugene
