#include "common/lock_rank.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <type_traits>

namespace eugene {

const char* lock_rank_name(LockRank rank) {
  switch (rank) {
    case LockRank::kModelRegistry: return "kModelRegistry";
    case LockRank::kLifecycle: return "kLifecycle";
    case LockRank::kUsageMeter: return "kUsageMeter";
    case LockRank::kThreadPool: return "kThreadPool";
    case LockRank::kChannel: return "kChannel";
    case LockRank::kFifo: return "kFifo";
    case LockRank::kHealth: return "kHealth";
    case LockRank::kTrace: return "kTrace";
    case LockRank::kMetrics: return "kMetrics";
    case LockRank::kFailpointRegistry: return "kFailpointRegistry";
    case LockRank::kLogging: return "kLogging";
  }
  return "?";
}

namespace lock_rank {
namespace {

/// One acquisition the current thread has not yet released.
struct Held {
  const void* mutex = nullptr;
  const char* name = "";
  std::uint16_t rank = 0;
  std::source_location loc;
};

/// No thread in this codebase legitimately nests anywhere near this deep; a
/// deeper stack means runaway recursion under locks and aborts loudly.
constexpr std::size_t kMaxHeld = 64;

/// The per-thread held-lock set, in acquisition order. Deliberately a
/// fixed-capacity aggregate, NOT a std::vector: it must be trivially
/// destructible so no TLS destructor ever runs. Statics with eugene::Mutex
/// members (meters, registries, fuzz-harness fixtures) are destroyed by
/// atexit *after* __call_tls_dtors has torn down thread_local objects, and
/// their destructors still lock — a heap-backed stack here is a
/// use-after-free at shutdown (found by FuzzReplay.usage_journal under
/// ASan).
struct HeldStack {
  Held entries[kMaxHeld];
  std::size_t size;
};
static_assert(std::is_trivially_destructible_v<HeldStack>,
              "the held-lock stack must not have a TLS destructor; "
              "see the comment above");

HeldStack& held_stack() {
  thread_local HeldStack stack;
  return stack;
}

std::atomic<ViolationHandler> g_handler{nullptr};

void append_entry(std::string& out, const char* name, std::uint16_t rank,
                  const std::source_location& loc) {
  out += "  ";
  out += name;
  out += " (rank ";
  out += std::to_string(rank);
  out += " ";
  out += lock_rank_name(static_cast<LockRank>(rank));
  out += ") acquired at ";
  out += loc.file_name();
  out += ":";
  out += std::to_string(loc.line());
  out += "\n";
}

void report_violation(const Held& blocker, std::uint16_t rank, const char* name,
                      const std::source_location& loc) {
  std::string report =
      "lock-rank violation: acquiring a mutex whose rank is not above every "
      "held lock (potential deadlock cycle)\n"
      "offending acquisition:\n";
  append_entry(report, name, rank, loc);
  report += "highest-ranked lock already held:\n";
  append_entry(report, blocker.name, blocker.rank, blocker.loc);
  report += "full held-lock stack of this thread (acquisition order):\n";
  const HeldStack& stack = held_stack();
  for (std::size_t i = 0; i < stack.size; ++i)
    append_entry(report, stack.entries[i].name, stack.entries[i].rank,
                 stack.entries[i].loc);
  report +=
      "fix: acquire in increasing rank order, or move the inner lock to a "
      "higher rank in common/lock_rank.hpp\n";

  if (ViolationHandler handler = g_handler.load(std::memory_order_acquire)) {
    handler(report);
    return;
  }
  std::fputs(report.c_str(), stderr);
  std::fflush(stderr);
  std::abort();
}

void push_held(HeldStack& stack, const Held& held) {
  if (stack.size >= kMaxHeld) {
    std::fputs(
        "lock-rank checker: more than 64 locks held by one thread — "
        "runaway recursion under locks\n",
        stderr);
    std::abort();
  }
  stack.entries[stack.size++] = held;
}

}  // namespace

ViolationHandler set_violation_handler(ViolationHandler handler) {
  return g_handler.exchange(handler, std::memory_order_acq_rel);
}

void note_acquire(std::uint16_t rank, const char* name, const void* mutex,
                  std::source_location loc) {
  HeldStack& stack = held_stack();
  const Held* blocker = nullptr;
  for (std::size_t i = 0; i < stack.size; ++i) {
    const Held& h = stack.entries[i];
    if (h.rank >= rank && (blocker == nullptr || h.rank > blocker->rank))
      blocker = &h;
  }
  if (blocker != nullptr) report_violation(*blocker, rank, name, loc);
  push_held(stack, Held{mutex, name, rank, loc});
}

void note_acquire_nonblocking(std::uint16_t rank, const char* name,
                              const void* mutex, std::source_location loc) {
  push_held(held_stack(), Held{mutex, name, rank, loc});
}

void note_release(const void* mutex) {
  HeldStack& stack = held_stack();
  for (std::size_t i = stack.size; i > 0; --i) {
    if (stack.entries[i - 1].mutex == mutex) {
      for (std::size_t j = i - 1; j + 1 < stack.size; ++j)
        stack.entries[j] = stack.entries[j + 1];
      --stack.size;
      return;
    }
  }
  // Releasing a lock we never saw acquired: only possible if checks were
  // toggled mid-flight or the mutex was locked through the raw std::mutex.
  // Ignore rather than abort — the acquire-side check is the load-bearing one.
}

std::size_t held_count() { return held_stack().size; }

}  // namespace lock_rank
}  // namespace eugene
