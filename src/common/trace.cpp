#include "common/trace.hpp"

#include "common/check.hpp"

namespace eugene::telemetry {

const char* trace_event_kind_name(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kAdmit: return "admit";
    case TraceEventKind::kBrownout: return "brownout";
    case TraceEventKind::kShed: return "shed";
    case TraceEventKind::kDispatch: return "dispatch";
    case TraceEventKind::kHedge: return "hedge";
    case TraceEventKind::kCancel: return "cancel";
    case TraceEventKind::kStageDone: return "stage_done";
    case TraceEventKind::kStageError: return "stage_error";
    case TraceEventKind::kRetry: return "retry";
    case TraceEventKind::kExpire: return "expire";
    case TraceEventKind::kDegrade: return "degrade";
    case TraceEventKind::kExit: return "exit";
    case TraceEventKind::kDrain: return "drain";
    case TraceEventKind::kSwap: return "swap";
  }
  return "?";
}

TraceRecorder::TraceRecorder(std::size_t capacity) : capacity_(capacity) {
  EUGENE_REQUIRE(capacity > 0, "TraceRecorder: capacity must be positive");
  ring_.resize(capacity_);
}

SpanHandle TraceRecorder::begin_span(double t_ms, std::uint32_t service_class) {
  std::uint64_t id = 0;
  {
    MutexLock lock(mutex_);
    id = next_span_++;
  }
  SpanHandle handle(this, id);
  handle.event(TraceEventKind::kAdmit, t_ms, 0, 0,
               static_cast<double>(service_class));
  return handle;
}

void TraceRecorder::record(const TraceEvent& ev) {
  MutexLock lock(mutex_);
  ring_[next_] = ev;
  next_ = (next_ + 1) % capacity_;
  if (size_ < capacity_) {
    ++size_;
  } else {
    ++dropped_;  // the slot we just wrote held the oldest retained event
  }
}

std::vector<TraceEvent> TraceRecorder::events() const {
  MutexLock lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(size_);
  const std::size_t start = (next_ + capacity_ - size_) % capacity_;
  for (std::size_t i = 0; i < size_; ++i)
    out.push_back(ring_[(start + i) % capacity_]);
  return out;
}

std::vector<TraceEvent> TraceRecorder::span(std::uint64_t id) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& ev : events())
    if (ev.span == id) out.push_back(ev);
  return out;
}

std::uint64_t TraceRecorder::dropped() const {
  MutexLock lock(mutex_);
  return dropped_;
}

void TraceRecorder::clear() {
  MutexLock lock(mutex_);
  next_ = 0;
  size_ = 0;
  dropped_ = 0;
}

}  // namespace eugene::telemetry
