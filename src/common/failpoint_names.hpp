// Central registry of every failpoint site name in src/.
//
// Failpoints are armed by *string* — from tests, CI job matrices, and the
// EUGENE_FAILPOINTS environment variable — so a renamed or deleted site
// silently turns a chaos job into a no-op. This header is the single source
// of truth: scripts/check_invariants.py (rule `failpoint-registry`) verifies
// that the set of EUGENE_FAILPOINT / EUGENE_FAILPOINT_FIRED literals in src/
// equals this list, both directions. Adding a site means adding it here;
// removing one means deleting it here (and from any CI spec that arms it).
//
// Naming convention: `<subsystem>.<object>.<fault>`, all lower-case.
#pragma once

namespace eugene::failpoint_names {

inline constexpr const char* kAll[] = {
    "admit.brownout.force",     // InferenceServer: escalate the brownout level
    "fifo.write.corrupt",       // FifoWriter: flip a frame byte post-CRC
    "fifo.write.torn",          // FifoWriter: drop the second half of a frame
    "health.breaker.trip",      // CircuitBreaker: force a trip on record()
    "hedge.lose.race",          // live scheduler: primary dispatch forced to
                                // lose the hedge race (loser-cancel path)
    "io.atomic.corrupt",        // atomic_write_file: commit with one bit flipped
    "io.atomic.short",          // atomic_write_file: commit missing tail bytes
    "io.atomic.torn",           // atomic_write_file: crash before the rename
    "lifecycle.drain.hang",     // ServerLifecycle::begin_drain: stall (delay)
                                // or die (error) before the in-flight wait
    "live.worker.crash",        // live scheduler: worker stage throws
    "live.worker.sick",         // live scheduler: replica 0 is the designated
                                // sick replica (error: recoverable stage
                                // failures; delay: a straggler)
    "live.worker.slow",         // live scheduler: worker stage stalls
    "registry.swap.stall",      // ModelRegistry: stall (delay) or abort
                                // (error) between building a new epoch and
                                // publishing it — the old epoch must stay
                                // intact either way
    "serving.stage.crash",      // serving front door: stage execution throws
    "snapshot.live.race",       // snapshot: widen the pin-to-write window so
                                // concurrent mutations overlap the file walk
    "snapshot.manifest.crash",  // snapshot: die between artifacts and commit
    "usage.journal.torn",       // usage journal: kill -9 mid-append
};

}  // namespace eugene::failpoint_names
