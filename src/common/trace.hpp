// Per-request trace spans (DESIGN.md §12 "Observability model").
//
// Aggregate counters (LiveStats, usage-journal rows) explain what the fleet
// did; they cannot answer "why did request R exit at stage 2, degraded,
// after a hedge?". A TraceRecorder captures that per-request timeline: one
// *span* per request, a flat stream of timestamped events appended as the
// request moves admission → brownout decision → stage dispatch / hedge /
// cancel / result → exit. Events live in a fixed-capacity ring buffer —
// recording never allocates after construction and never blocks progress on
// a full buffer (the oldest events are overwritten and counted in
// dropped()).
//
// Plumbing: the scheduler and server take an optional TraceRecorder* in
// their configs and carry a SpanHandle on each task/request state struct.
// A default (null) SpanHandle makes every event() call a no-op branch, so
// untraced runs pay one predictable-not-taken branch per event site —
// BM_TracedRequest in bench_micro.cpp pins the traced-vs-untraced delta
// under 5% per request. Timestamps come from the caller's Clock (the same
// time base as deadlines), never from a clock read inside the recorder.
//
// Thread-safety: record() may be called from any thread (one ranked mutex,
// LockRank::kTrace, nothing nests inside it); events()/span() snapshot
// under the same mutex. Span ids are unique per recorder and never 0 — a
// zero id on a response means the run was not traced.
#pragma once

#include <cstdint>
#include <vector>

#include "common/thread_annotations.hpp"

namespace eugene::telemetry {

/// One step in a request's lifecycle. `stage`/`worker`/`value` are
/// kind-specific (documented per enumerator); unused fields are 0.
enum class TraceEventKind : std::uint8_t {
  kAdmit = 0,    ///< request entered the system; value = service class
  kBrownout,     ///< admission under brown-out; value = level (> 0)
  kShed,         ///< admission controller shed it; value = 1 if the brown-out
                 ///< level (not the static ceiling) shed it
  kDispatch,     ///< stage sent to a worker; stage, worker
  kHedge,        ///< backup dispatch issued; stage, worker = backup replica
  kCancel,       ///< in-flight dispatch cancelled (hedge loser / deadline);
                 ///< stage, worker = cancelled replica
  kStageDone,    ///< stage result accepted; stage, worker, value = confidence
  kStageError,   ///< stage failed (crash / sick replica / timeout); stage,
                 ///< worker
  kRetry,        ///< re-queued after a failure; value = backoff delay ms
  kExpire,       ///< latency daemon expired the request
  kDegrade,      ///< budget exhausted; answering with best result so far
  kExit,         ///< final response emitted; stage = stages_run,
                 ///< value = confidence
  kDrain,        ///< request rejected because the server is draining
  kSwap,         ///< registry mutation published a new epoch while this
                 ///< request was in flight; value = new epoch number
};

/// Stable lower-case name of a kind ("admit", "stage_done", ...).
const char* trace_event_kind_name(TraceEventKind kind);

/// One ring-buffer entry: 32 bytes, trivially copyable.
struct TraceEvent {
  std::uint64_t span = 0;  ///< owning span id (never 0 for recorded events)
  double t_ms = 0.0;       ///< caller-provided Clock timestamp
  double value = 0.0;      ///< kind-specific payload
  std::uint32_t stage = 0;
  std::uint32_t worker = 0;
  TraceEventKind kind = TraceEventKind::kAdmit;
};

class TraceRecorder;

/// Null-safe handle carried on task/request structs. Default-constructed
/// handles are inert: event() is a single branch, id() is 0.
class SpanHandle {
 public:
  SpanHandle() = default;

  std::uint64_t id() const { return id_; }
  explicit operator bool() const { return recorder_ != nullptr; }

  /// Appends one event to the owning span; no-op on a null handle.
  void event(TraceEventKind kind, double t_ms, std::uint32_t stage = 0,
             std::uint32_t worker = 0, double value = 0.0) const;

 private:
  friend class TraceRecorder;
  SpanHandle(TraceRecorder* recorder, std::uint64_t id)
      : recorder_(recorder), id_(id) {}

  TraceRecorder* recorder_ = nullptr;
  std::uint64_t id_ = 0;
};

/// Fixed-capacity ring of TraceEvents shared by every span of a recorder.
class TraceRecorder {
 public:
  /// `capacity` bounds the retained event count; older events are
  /// overwritten (and counted in dropped()) once it is exceeded.
  explicit TraceRecorder(std::size_t capacity = 4096);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Opens a new span and records its kAdmit event. Span ids are unique for
  /// the life of the recorder and never 0.
  SpanHandle begin_span(double t_ms, std::uint32_t service_class = 0)
      EUGENE_EXCLUDES(mutex_);

  /// Appends one event (called through SpanHandle::event).
  void record(const TraceEvent& ev) EUGENE_EXCLUDES(mutex_);

  /// Snapshot of retained events, oldest first.
  std::vector<TraceEvent> events() const EUGENE_EXCLUDES(mutex_);

  /// Retained events of one span, oldest first (empty for unknown ids or
  /// spans whose events were all overwritten).
  std::vector<TraceEvent> span(std::uint64_t id) const EUGENE_EXCLUDES(mutex_);

  /// Events overwritten because the ring was full.
  std::uint64_t dropped() const EUGENE_EXCLUDES(mutex_);

  /// Forgets all retained events (span ids keep advancing).
  void clear() EUGENE_EXCLUDES(mutex_);

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable Mutex mutex_{LockRank::kTrace, "TraceRecorder::mutex_"};
  std::vector<TraceEvent> ring_ EUGENE_GUARDED_BY(mutex_);
  std::size_t next_ EUGENE_GUARDED_BY(mutex_) = 0;  ///< next write slot
  std::size_t size_ EUGENE_GUARDED_BY(mutex_) = 0;  ///< retained (≤ capacity)
  std::uint64_t next_span_ EUGENE_GUARDED_BY(mutex_) = 1;
  std::uint64_t dropped_ EUGENE_GUARDED_BY(mutex_) = 0;
};

inline void SpanHandle::event(TraceEventKind kind, double t_ms,
                              std::uint32_t stage, std::uint32_t worker,
                              double value) const {
  if (recorder_ == nullptr) return;
  TraceEvent ev;
  ev.span = id_;
  ev.kind = kind;
  ev.t_ms = t_ms;
  ev.stage = stage;
  ev.worker = worker;
  ev.value = value;
  recorder_->record(ev);
}

}  // namespace eugene::telemetry
