// Cooperative cancellation with deadline propagation (DESIGN.md §11).
//
// A CancellationToken is the scheduler's handle on work it handed to someone
// else: the dispatch carries a copy of the token to the worker, and the
// worker checks should_stop() at its next safe point (Eugene's stages cannot
// be interrupted mid-kernel, so "safe point" means before running a stage).
// The token also carries the request's absolute deadline, so a worker about
// to run a stage whose result could never arrive in time skips the work —
// deadline propagation without a second channel.
//
// Tokens are cheap value types over a shared atomic: copy freely, cancel()
// from any thread, read cancelled()/should_stop() from any thread. A
// default-constructed token is *detached*: it never reports cancellation and
// carries no deadline (for code paths that have nothing to propagate).
#pragma once

#include <atomic>
#include <limits>
#include <memory>

namespace eugene {

/// Shared cancellation flag + absolute deadline for one unit of dispatched
/// work. See the header comment for the cooperative contract.
class CancellationToken {
 public:
  /// Detached token: never cancelled, deadline at infinity.
  CancellationToken() = default;

  /// Live token carrying `deadline_ms` (absolute, in the issuing clock's
  /// domain; +infinity for no deadline).
  explicit CancellationToken(double deadline_ms)
      : state_(std::make_shared<State>(deadline_ms)) {}

  /// Requests cancellation. Safe from any thread; no-op on a detached token.
  void cancel() {
    if (state_) state_->cancelled.store(true, std::memory_order_relaxed);
  }

  /// Has cancel() been called?
  bool cancelled() const {
    return state_ && state_->cancelled.load(std::memory_order_relaxed);
  }

  /// The absolute deadline this work inherited (+infinity when detached).
  double deadline_ms() const {
    return state_ ? state_->deadline_ms
                  : std::numeric_limits<double>::infinity();
  }

  /// The worker-side check: true when the work should be abandoned, either
  /// because the issuer cancelled it or because its deadline has passed.
  bool should_stop(double now_ms) const {
    return state_ && (state_->cancelled.load(std::memory_order_relaxed) ||
                      now_ms >= state_->deadline_ms);
  }

  /// False for a default-constructed (detached) token.
  bool valid() const { return state_ != nullptr; }

 private:
  struct State {
    explicit State(double deadline) : deadline_ms(deadline) {}
    std::atomic<bool> cancelled{false};
    const double deadline_ms;
  };
  std::shared_ptr<State> state_;
};

}  // namespace eugene
