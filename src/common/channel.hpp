// In-memory multi-producer/multi-consumer channel.
//
// The paper's workers report end-of-stage confidence to the user-space
// scheduler over Linux named pipes. Eugene abstracts that hop behind a
// channel: this header provides the hermetic in-memory implementation used by
// tests and the live threaded mode; fifo_channel.hpp provides the POSIX FIFO
// implementation that mirrors the paper's transport byte-for-byte.
#pragma once

#include <deque>
#include <optional>

#include "common/thread_annotations.hpp"

namespace eugene {

/// Blocking unbounded MPMC queue with close semantics.
/// After close(), sends are rejected and receives drain remaining items then
/// return std::nullopt.
template <typename T>
class Channel {
 public:
  /// Enqueues a value. Returns false if the channel is closed.
  bool send(T value) EUGENE_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(value));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the channel is closed and drained.
  std::optional<T> receive() EUGENE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    cv_.wait(mutex_, [this]() EUGENE_REQUIRES(mutex_) {
      return closed_ || !items_.empty();
    });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  /// Blocks up to `timeout_ms` for an item; std::nullopt on timeout or when
  /// the channel is closed and drained. Lets a supervisor keep running its
  /// health sweep even when every producer has gone silent.
  std::optional<T> receive_for(double timeout_ms) EUGENE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    cv_.wait_for(mutex_, timeout_ms, [this]() EUGENE_REQUIRES(mutex_) {
      return closed_ || !items_.empty();
    });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  /// Non-blocking receive; std::nullopt when nothing is pending.
  std::optional<T> try_receive() EUGENE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  /// Marks the channel closed and wakes all blocked receivers.
  void close() EUGENE_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const EUGENE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return closed_;
  }

  std::size_t pending() const EUGENE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return items_.size();
  }

 private:
  mutable Mutex mutex_{LockRank::kChannel, "Channel::mutex_"};
  CondVar cv_;
  std::deque<T> items_ EUGENE_GUARDED_BY(mutex_);
  bool closed_ EUGENE_GUARDED_BY(mutex_) = false;
};

}  // namespace eugene
