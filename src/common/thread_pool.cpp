#include "common/thread_pool.hpp"

#include "common/error.hpp"

namespace eugene {

ThreadPool::ThreadPool(std::size_t num_threads) {
  EUGENE_REQUIRE(num_threads > 0, "ThreadPool needs at least one thread");
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

}  // namespace eugene
