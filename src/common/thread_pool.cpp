#include "common/thread_pool.hpp"

#include "common/error.hpp"

namespace eugene {

ThreadPool::ThreadPool(std::size_t num_threads) {
  EUGENE_REQUIRE(num_threads > 0, "ThreadPool needs at least one thread");
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

std::size_t ThreadPool::pending() const {
  MutexLock lock(mutex_);
  return queue_.size();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      MutexLock lock(mutex_);
      cv_.wait(mutex_, [this]() EUGENE_REQUIRES(mutex_) {
        return stopping_ || !queue_.empty();
      });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

}  // namespace eugene
