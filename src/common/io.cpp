#include "common/io.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/crc32.hpp"
#include "common/failpoint.hpp"

namespace eugene::io {
namespace {

[[noreturn]] void raise_errno(const std::string& op, const std::string& path) {
  throw IoError(op + " '" + path + "': " + std::strerror(errno));
}

void write_all(int fd, const std::uint8_t* data, std::size_t n, const std::string& path) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      errno = saved;
      raise_errno("write", path);
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
}

/// fsync the directory containing `path` so a completed rename survives a
/// power cut, not just a process kill. Best effort: some filesystems reject
/// directory fsync; the rename is still atomic with respect to crashes.
void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

void atomic_write_file(const std::string& path, const std::uint8_t* data, std::size_t n) {
  // Failpoint seams mutate what reaches the disk, simulating the three ways
  // hardware and kernels betray writers (DESIGN.md §9): a short write that
  // still commits, a flipped bit that still commits, and a crash that leaves
  // only a partial temp file.
  std::vector<std::uint8_t> mutated;
  bool torn_crash = false;
  if (FailpointRegistry::any_armed()) [[unlikely]] {
    if (EUGENE_FAILPOINT_FIRED("io.atomic.short") && n > 0) {
      mutated.assign(data, data + n - (n + 3) / 4);  // drop the last quarter
      data = mutated.data();
      n = mutated.size();
    }
    if (EUGENE_FAILPOINT_FIRED("io.atomic.corrupt") && n > 0) {
      if (mutated.empty()) mutated.assign(data, data + n);
      mutated[mutated.size() / 2] ^= 0x20;
      data = mutated.data();
      n = mutated.size();
    }
    torn_crash = EUGENE_FAILPOINT_FIRED("io.atomic.torn");
  }

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) raise_errno("open", tmp);

  if (torn_crash) {
    // Simulated kill -9 mid-write: half the payload reaches the temp file,
    // no rename, no cleanup — exactly the debris a real crash leaves.
    write_all(fd, data, n / 2, tmp);
    ::close(fd);
    throw FailpointError("io.atomic.torn: simulated crash while writing " + tmp);
  }

  write_all(fd, data, n, tmp);
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    errno = saved;
    raise_errno("fsync", tmp);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    raise_errno("close", tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    raise_errno("rename", path);
  }
  fsync_parent_dir(path);
}

void atomic_write_file(const std::string& path, const std::vector<std::uint8_t>& payload) {
  atomic_write_file(path, payload.data(), payload.size());
}

std::vector<std::uint8_t> read_file_bytes(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) raise_errno("open", path);
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[1 << 16];
  for (;;) {
    const ssize_t r = ::read(fd, chunk, sizeof(chunk));
    if (r < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      errno = saved;
      raise_errno("read", path);
    }
    if (r == 0) break;
    bytes.insert(bytes.end(), chunk, chunk + r);
  }
  ::close(fd);
  return bytes;
}

std::vector<std::uint8_t> encode_blob(std::uint32_t magic, std::uint32_t version,
                                      const std::vector<std::uint8_t>& payload) {
  ByteWriter w;
  w.u32(magic);
  w.u32(version);
  w.u64(payload.size());
  w.raw(payload.data(), payload.size());
  w.u32(crc32(payload.data(), payload.size()));
  return w.take();
}

Blob decode_blob(const std::vector<std::uint8_t>& bytes, std::uint32_t magic,
                 std::uint32_t max_version, const std::string& what) {
  ByteReader r(bytes, what);
  if (r.remaining() < 16)
    throw CorruptionError(what + ": file too small to hold a blob header (" +
                          std::to_string(r.remaining()) + " byte(s))");
  const std::uint32_t got_magic = r.u32();
  if (got_magic != magic)
    throw CorruptionError(what + ": bad magic (not this artifact type, or garbage)");
  Blob blob;
  blob.version = r.u32();
  if (blob.version == 0 || blob.version > max_version)
    throw CorruptionError(what + ": unsupported format version " +
                          std::to_string(blob.version) + " (this build reads <= " +
                          std::to_string(max_version) + ")");
  const std::uint64_t len = r.u64();
  if (len > r.remaining() || len + 4 != r.remaining())
    throw CorruptionError(what + ": payload length " + std::to_string(len) +
                          " does not match file size (torn or truncated write)");
  blob.payload.assign(bytes.begin() + 16,
                      bytes.begin() + 16 + static_cast<std::ptrdiff_t>(len));
  const std::uint32_t computed = crc32(blob.payload.data(), blob.payload.size());
  ByteReader footer(bytes.data() + 16 + len, 4, what);
  if (footer.u32() != computed)
    throw CorruptionError(what + ": CRC32 mismatch (bit flip or torn write)");
  return blob;
}

void write_blob_file(const std::string& path, std::uint32_t magic, std::uint32_t version,
                     const std::vector<std::uint8_t>& payload) {
  atomic_write_file(path, encode_blob(magic, version, payload));
}

Blob read_blob_file(const std::string& path, std::uint32_t magic,
                    std::uint32_t max_version, const std::string& what) {
  return decode_blob(read_file_bytes(path), magic, max_version, what + " (" + path + ")");
}

}  // namespace eugene::io
