// Lock-free fixed-bucket latency histogram (DESIGN.md §12 "Observability
// model").
//
// The scheduler's hedge threshold and the metrics registry's per-stage
// latency quantiles both need "what is the p95 of recent latencies?" answered
// on a hot path. The previous implementation copied a 64-sample window and
// ran nth_element per query (O(n log n) allocations per sweep); this replaces
// it with a fixed array of atomic counters over log-spaced buckets:
//
//   * record() is O(1): extract the value's binary exponent and the top two
//     mantissa bits straight from the double's bit pattern (no log() call),
//     then two relaxed fetch_adds — ≤ ~2× the cost of a bare atomic add
//     (BM_HistogramRecord vs BM_AtomicAddBaseline in bench_micro.cpp).
//   * Buckets are log-spaced: 4 sub-buckets per power of two (~19% relative
//     resolution) from 2^-10 ms (~1 µs) to 2^14 ms (~16.4 s), plus an
//     underflow and an overflow bucket. 98 counters, 784 bytes.
//   * Counts are exact; only the reported *value* is quantized to its
//     bucket. quantile() returns the upper edge of the bucket holding the
//     nearest-rank sample — a ≤19% conservative over-estimate, which for
//     hedge thresholds errs toward fewer spurious hedges.
//   * Histograms merge bucket-wise (merge()), so per-worker or per-run
//     histograms can be aggregated without losing quantile fidelity.
//
// Quantile semantics — nearest-rank (ceil), pinned by Histogram.* tests:
//
//   rank(q) = clamp(ceil(q · N), 1, N)   (1-based)
//
// so quantile(0.5) over two samples is the *first* (the lower median),
// quantile(1.0) is always the maximum, and a single sample answers every q
// with itself. The floor-rank form this replaces (min(N-1, ⌊q·N⌋)) biased
// small windows low-to-high inconsistently: q=0.5 over 2 samples returned
// the max, and q=0.95 over 10 samples only reached rank 9 by clamping.
//
// Thread-safety: record() and merge() may race freely with each other and
// with quantile()/count() — readers see some interleaving of concurrent
// updates, exactly like any counter snapshot.
#pragma once

#include <atomic>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>

namespace eugene::telemetry {

/// Fixed-footprint, wait-free latency histogram over milliseconds.
class LatencyHistogram {
 public:
  /// Sub-buckets per power of two: 2 mantissa bits → 4 → ~19% resolution.
  static constexpr int kSubBits = 2;
  static constexpr int kSubBuckets = 1 << kSubBits;
  /// Covered exponent range, in ms: [2^kMinExp, 2^kMaxExp).
  static constexpr int kMinExp = -10;  ///< 2^-10 ms ≈ 0.98 µs
  static constexpr int kMaxExp = 14;   ///< 2^14 ms ≈ 16.4 s
  static constexpr std::size_t kBuckets =
      static_cast<std::size_t>(kMaxExp - kMinExp) * kSubBuckets;
  /// Slot 0 is underflow (≤ 0, NaN, or below 2^kMinExp); slot kBuckets+1 is
  /// overflow; slots 1..kBuckets are the log-spaced range.
  static constexpr std::size_t kSlots = kBuckets + 2;

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// O(1), wait-free: bucket index from the double's bit pattern plus two
  /// relaxed fetch_adds.
  void record(double ms) noexcept {
    buckets_[slot_of(ms)].fetch_add(1, std::memory_order_relaxed);
    total_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Samples recorded (including under/overflow).
  std::uint64_t count() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }

  /// Nearest-rank quantile (see the header comment for the exact semantics).
  /// Returns the upper edge of the bucket containing the rank-⌈qN⌉ sample —
  /// within one bucket width (~19%) above the exact order statistic. An
  /// empty histogram returns 0; q is clamped into [0, 1]. Samples in the
  /// overflow bucket answer with the range maximum (2^kMaxExp).
  double quantile(double q) const noexcept {
    std::uint64_t counts[kSlots];
    std::uint64_t n = 0;
    for (std::size_t s = 0; s < kSlots; ++s) {
      counts[s] = buckets_[s].load(std::memory_order_relaxed);
      n += counts[s];
    }
    if (n == 0) return 0.0;
    q = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
    auto rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(n)));
    if (rank < 1) rank = 1;
    if (rank > n) rank = n;
    std::uint64_t cum = 0;
    for (std::size_t s = 0; s < kSlots; ++s) {
      cum += counts[s];
      if (cum >= rank) return bucket_upper(s);
    }
    return bucket_upper(kSlots - 1);  // unreachable: cum == n >= rank
  }

  /// Bucket-wise aggregation of another histogram's counts.
  void merge(const LatencyHistogram& other) noexcept {
    std::uint64_t added = 0;
    for (std::size_t s = 0; s < kSlots; ++s) {
      const std::uint64_t c = other.buckets_[s].load(std::memory_order_relaxed);
      if (c != 0) buckets_[s].fetch_add(c, std::memory_order_relaxed);
      added += c;
    }
    if (added != 0) total_.fetch_add(added, std::memory_order_relaxed);
  }

  /// Zeroes every bucket (not linearizable against concurrent record()).
  void reset() noexcept {
    for (std::size_t s = 0; s < kSlots; ++s)
      buckets_[s].store(0, std::memory_order_relaxed);
    total_.store(0, std::memory_order_relaxed);
  }

  /// Raw count of one slot (text codec + tests).
  std::uint64_t bucket_count(std::size_t slot) const noexcept {
    return buckets_[slot].load(std::memory_order_relaxed);
  }

  /// Adds `n` samples directly to `slot` — the decode half of the text
  /// round trip (parse_metrics_text rebuilds histograms bucket-by-bucket).
  void add_to_bucket(std::size_t slot, std::uint64_t n) noexcept {
    if (slot >= kSlots) slot = kSlots - 1;
    buckets_[slot].fetch_add(n, std::memory_order_relaxed);
    total_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Slot index for a value: 0 for underflow (≤ 0, NaN, < 2^kMinExp),
  /// kBuckets+1 for overflow (≥ 2^kMaxExp, +inf), else 1-based log bucket.
  static std::size_t slot_of(double ms) noexcept {
    if (!(ms > 0.0)) return 0;  // NaN compares false and lands here too
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(ms);
    const int exp = static_cast<int>((bits >> 52) & 0x7ff) - 1023;
    if (exp < kMinExp) return 0;  // subnormals have raw exponent 0 → here
    if (exp >= kMaxExp) return kBuckets + 1;
    const auto sub = static_cast<std::size_t>(
        (bits >> (52 - kSubBits)) & (kSubBuckets - 1));
    return 1 + static_cast<std::size_t>(exp - kMinExp) * kSubBuckets + sub;
  }

  /// Inclusive lower edge of a slot. Underflow answers 0; overflow answers
  /// the range maximum 2^kMaxExp.
  static double bucket_lower(std::size_t slot) noexcept {
    if (slot == 0) return 0.0;
    if (slot >= kBuckets + 1) return std::ldexp(1.0, kMaxExp);
    const std::size_t i = slot - 1;
    const int octave = kMinExp + static_cast<int>(i / kSubBuckets);
    const auto sub = static_cast<double>(i % kSubBuckets);
    return std::ldexp(1.0 + sub / kSubBuckets, octave);
  }

  /// Exclusive upper edge of a slot. Underflow answers the range minimum
  /// 2^kMinExp; overflow answers the range maximum (it has no upper edge).
  static double bucket_upper(std::size_t slot) noexcept {
    if (slot == 0) return std::ldexp(1.0, kMinExp);
    if (slot >= kBuckets + 1) return std::ldexp(1.0, kMaxExp);
    return bucket_lower(slot + 1);
  }

 private:
  std::atomic<std::uint64_t> buckets_[kSlots]{};
  std::atomic<std::uint64_t> total_{0};
};

}  // namespace eugene::telemetry
