// Deterministic random number generation.
//
// Every stochastic Eugene component takes an explicit `Rng&` so experiments
// are reproducible run-to-run (DESIGN.md §5 "Determinism first").
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "common/error.hpp"

namespace eugene {

/// A seeded pseudo-random source with convenience samplers.
/// Not thread-safe: share one per thread, or split() per worker.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    EUGENE_REQUIRE(lo <= hi, "uniform: lo must be <= hi");
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    EUGENE_REQUIRE(lo <= hi, "uniform_int: lo must be <= hi");
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Gaussian with the given mean and standard deviation.
  double normal(double mean = 0.0, double stddev = 1.0) {
    EUGENE_REQUIRE(stddev >= 0.0, "normal: stddev must be non-negative");
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli draw with success probability p.
  bool bernoulli(double p) {
    EUGENE_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli: p outside [0,1]");
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Exponentially distributed inter-arrival time with the given rate.
  double exponential(double rate) {
    EUGENE_REQUIRE(rate > 0.0, "exponential: rate must be positive");
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Index drawn from a discrete distribution proportional to `weights`.
  std::size_t categorical(const std::vector<double>& weights) {
    EUGENE_REQUIRE(!weights.empty(), "categorical: empty weights");
    std::discrete_distribution<std::size_t> dist(weights.begin(), weights.end());
    return dist(engine_);
  }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    std::shuffle(values.begin(), values.end(), engine_);
  }

  /// Derives an independent child generator; the parent advances one draw.
  Rng split() { return Rng(engine_()); }

  /// Exposes the engine for use with <random> distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace eugene
